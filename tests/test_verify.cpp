// Negative tests for the on-demand IR verifier (src/ir/verify.h): programs
// seeded with deliberate structural violations — level-discipline breakage,
// an intra-group code version with no feasible fallback arm, dangling or
// malformed seg-space bindings — must each be caught with a diagnostic that
// names the failed check and the pipeline position it is attributed to.
#include <gtest/gtest.h>

#include <string>

#include "src/ir/builder.h"
#include "src/ir/typecheck.h"
#include "src/ir/verify.h"

namespace incflat {
namespace {

using namespace ib;

Type mat_f32() {
  return Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")});
}

/// segmap^1 <xs in xss> BODY, the standard outer nest for these tests.
ExprP seg1(ExprP body) {
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"xs"}, {"xss"}, Dim::v("n")}};
  so.body = std::move(body);
  return mk(std::move(so));
}

/// segred^0 <x in xs> (+) 0 (x): a parallel inner seg-op.
ExprP segred0_over_xs() {
  SegOpE so;
  so.op = SegOpE::Op::Red;
  so.level = 0;
  so.space = {SegBind{{"x"}, {"xs"}, Dim::v("m")}};
  so.combine = binlam("+", Scalar::F32);
  so.neutral = {cf32(0)};
  so.body = var("x");
  return mk(std::move(so));
}

Program target_program(ExprP body) {
  Program p;
  p.name = "seeded";
  p.inputs = {{"xss", mat_f32()}};
  p.body = std::move(body);
  return p;
}

VerifyOptions only(bool types, bool levels, bool guards, bool segbinds) {
  VerifyOptions o;
  o.types = types;
  o.levels = levels;
  o.guards = guards;
  o.segbinds = segbinds;
  return o;
}

TEST(Verify, CleanTargetProgramPasses) {
  // segmap^1 over a sequentially-executed redomap — the shape moderate
  // flattening produces.  Sequential SOACs in the body are not seg-ops, so
  // this is not an intra-group version and needs no guard.
  Program p = target_program(
      seg1(redomap(binlam("+", Scalar::F32),
                   lam({ib::p("x", Type::scalar(Scalar::F32))}, var("x")),
                   {cf32(0)}, {var("xs")})));
  p = typecheck_program(std::move(p));
  EXPECT_NO_THROW(verify_program(p));
}

TEST(Verify, TypeErrorIsAttributed) {
  Program p = target_program(add(var("xss"), cf32(1)));  // array + scalar
  try {
    verify_program(p, "after pass 'normalize'");
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.check(), "types");
    EXPECT_EQ(e.context(), "after pass 'normalize'");
    EXPECT_NE(std::string(e.what()).find("after pass 'normalize'"),
              std::string::npos);
  }
}

TEST(Verify, LevelDisciplineViolationCaught) {
  // segmap^1 directly containing segmap^1: a level-l seg-op may directly
  // contain only level-(l-1) seg-ops.
  SegOpE inner;
  inner.op = SegOpE::Op::Map;
  inner.level = 1;
  inner.space = {SegBind{{"x"}, {"xs"}, Dim::v("m")}};
  inner.body = add(var("x"), cf32(1));
  Program p = target_program(seg1(mk(std::move(inner))));
  p = typecheck_program(std::move(p));
  try {
    verify_program(p, "after pass 'tiling'");
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.check(), "levels");
    EXPECT_EQ(e.context(), "after pass 'tiling'");
  }
}

TEST(Verify, UnguardedIntraGroupVersionCaught) {
  // A level-1 seg-op whose body contains a level-0 seg-op over *parallel*
  // work is an intra-group version: running it requires the inner
  // parallelism to fit one workgroup, so reaching it without a
  // workgroup-fit guard means there is no feasible fallback arm.
  SegOpE inner;
  inner.op = SegOpE::Op::Map;
  inner.level = 0;
  inner.space = {SegBind{{"x"}, {"xs"}, Dim::v("m")}};
  inner.body = segred0_over_xs();  // parallel body -> intra-group version
  Program p = target_program(seg1(mk(std::move(inner))));
  try {
    verify_program(p, "after pass 'incremental'",
                   only(false, false, true, false));
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.check(), "guards");
    EXPECT_NE(std::string(e.what()).find("no feasible fallback arm"),
              std::string::npos);
  }
}

TEST(Verify, GuardWithoutFitBoundIsNoFallback) {
  // Guarding the intra-group version with a threshold comparison that does
  // NOT carry a workgroup-fit bound is still a violation: such a guard can
  // be taken on any device, so the intra-group arm has no feasibility
  // escape hatch.
  SegOpE inner;
  inner.op = SegOpE::Op::Map;
  inner.level = 0;
  inner.space = {SegBind{{"x"}, {"xs"}, Dim::v("m")}};
  inner.body = segred0_over_xs();
  ExprP intra = seg1(mk(std::move(inner)));
  ExprP flat = seg1(add(cf32(0), cf32(0)));
  ExprP cmp = mk(ThresholdCmpE{"suff_intra_par_0",
                               SizeExpr::of(Dim::v("n")), SizeExpr{}});
  Program p = target_program(iff(cmp, intra, flat));
  EXPECT_THROW(verify_program(p, "verify", only(false, false, true, false)),
               VerifyError);

  // The same shape with the fit bound present is accepted.
  ExprP cmp_fit = mk(ThresholdCmpE{"suff_intra_par_0",
                                   SizeExpr::of(Dim::v("n")),
                                   SizeExpr::of(Dim::v("m"))});
  SegOpE inner2;
  inner2.op = SegOpE::Op::Map;
  inner2.level = 0;
  inner2.space = {SegBind{{"x"}, {"xs"}, Dim::v("m")}};
  inner2.body = segred0_over_xs();
  Program ok = target_program(
      iff(cmp_fit, seg1(mk(std::move(inner2))), seg1(add(cf32(0), cf32(0)))));
  EXPECT_NO_THROW(
      verify_program(ok, "verify", only(false, false, true, false)));
}

TEST(Verify, ThresholdCmpOutsideIfConditionCaught) {
  ExprP cmp = mk(ThresholdCmpE{"suff_outer_par_0", SizeExpr::of(Dim::v("n")),
                               SizeExpr{}});
  Program p = target_program(let1("c", cmp, cf32(1)));
  try {
    verify_program(p, "verify", only(false, false, true, false));
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.check(), "guards");
  }
}

TEST(Verify, DanglingSegBindingCaught) {
  // The space's source array "nowhere" is bound neither by an enclosing
  // binder nor by an outer level of the space.
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"x"}, {"nowhere"}, Dim::v("n")}};
  so.body = add(var("x"), cf32(1));
  Program p = target_program(mk(std::move(so)));
  try {
    verify_program(p, "after pass 'prune-segbinds'",
                   only(false, false, false, true));
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.check(), "segbinds");
    EXPECT_EQ(e.context(), "after pass 'prune-segbinds'");
    EXPECT_NE(std::string(e.what()).find("dangling"), std::string::npos);
  }
}

TEST(Verify, SegSpaceArityMismatchCaught) {
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"x", "y"}, {"xss"}, Dim::v("n")}};
  so.body = var("x");
  Program p = target_program(mk(std::move(so)));
  try {
    verify_program(p, "verify", only(false, false, false, true));
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.check(), "segbinds");
  }
}

TEST(Verify, DuplicateSegSpaceParamCaught) {
  // Two levels of the same space binding the same parameter name.
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"x"}, {"xss"}, Dim::v("n")},
              SegBind{{"x"}, {"x"}, Dim::v("m")}};
  so.body = var("x");
  Program p = target_program(mk(std::move(so)));
  EXPECT_THROW(verify_program(p, "verify", only(false, false, false, true)),
               VerifyError);
}

TEST(Verify, InnerBindingMayChainThroughOuterLevel) {
  // The legal chained shape G6 produces: level 2 binds xs from xss, the
  // deeper level binds x from xs.
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"xs"}, {"xss"}, Dim::v("n")},
              SegBind{{"x"}, {"xs"}, Dim::v("m")}};
  so.body = add(var("x"), cf32(1));
  Program p = target_program(mk(std::move(so)));
  p = typecheck_program(std::move(p));
  EXPECT_NO_THROW(verify_program(p));
}

TEST(Verify, AllViolationsAreCollectedNotJustTheFirst) {
  // Two independent dangling seg bindings in separate seg-ops: the verifier
  // must report both findings in one throw, with distinct IR paths.
  SegOpE a;
  a.op = SegOpE::Op::Map;
  a.level = 1;
  a.space = {SegBind{{"x"}, {"nowhere1"}, Dim::v("n")}};
  a.body = add(var("x"), cf32(1));
  SegOpE b;
  b.op = SegOpE::Op::Map;
  b.level = 1;
  b.space = {SegBind{{"y"}, {"nowhere2"}, Dim::v("n")}};
  b.body = add(var("y"), cf32(2));
  Program p = target_program(tuple({mk(std::move(a)), mk(std::move(b))}));
  const std::vector<Diagnostic> ds =
      verify_diagnostics(p, "after pass 'prune-segbinds'",
                         only(false, false, false, true));
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_NE(ds[0].path, ds[1].path);
  for (const auto& d : ds) {
    EXPECT_EQ(d.check, "segbinds");
    EXPECT_EQ(d.severity, Severity::Error);
    EXPECT_EQ(d.context, "after pass 'prune-segbinds'");
    EXPECT_NE(d.message.find("dangling"), std::string::npos);
  }
  try {
    verify_program(p, "after pass 'prune-segbinds'",
                   only(false, false, false, true));
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.diagnostics().size(), 2u);
    // what() advertises the extra findings beyond the first.
    EXPECT_NE(std::string(e.what()).find("more finding"), std::string::npos);
  }
}

TEST(Verify, CleanProgramYieldsNoDiagnostics) {
  Program p = target_program(
      seg1(redomap(binlam("+", Scalar::F32),
                   lam({ib::p("x", Type::scalar(Scalar::F32))}, var("x")),
                   {cf32(0)}, {var("xs")})));
  p = typecheck_program(std::move(p));
  EXPECT_TRUE(verify_diagnostics(p, "verify").empty());
}

TEST(Verify, SourceProgramsAreVacuouslyClean) {
  // Source programs contain no seg-ops and no thresholds, so every check
  // (beyond types) is vacuous — a verifier can run after any pass.
  Program p = target_program(map1(
      lam({ib::p("xs", Type())},
          reduce(binlam("+", Scalar::F32), {cf32(0)}, {var("xs")})),
      var("xss")));
  p = typecheck_program(std::move(p));
  EXPECT_NO_THROW(verify_program(p, "after pass 'normalize'"));
}

}  // namespace
}  // namespace incflat
