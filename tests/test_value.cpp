// Unit tests: the interpreter's value model.
#include <gtest/gtest.h>

#include "src/interp/value.h"
#include "src/support/error.h"

namespace incflat {
namespace {

TEST(Value, ScalarConstruction) {
  EXPECT_EQ(Value::i64(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value::f32(1.5).as_float(), 1.5);
  EXPECT_TRUE(Value::scalar_bool(true).as_bool());
  EXPECT_FALSE(Value::scalar_bool(false).as_bool());
}

TEST(Value, ScalarAccessorsEnforceKinds) {
  EXPECT_THROW(Value::f32(1.0).as_bool(), EvalError);
  EXPECT_THROW(Value::zeros(Scalar::F32, {2}).as_float(), EvalError);
}

TEST(Value, ZerosShapeAndCount) {
  Value v = Value::zeros(Scalar::F32, {2, 3});
  EXPECT_EQ(v.rank(), 2);
  EXPECT_EQ(v.count(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(v.fget(i), 0.0);
}

TEST(Value, RowCopiesCorrectSlice) {
  Value v = Value::zeros(Scalar::I64, {2, 3});
  for (int64_t i = 0; i < 6; ++i) v.iset(i, i * 10);
  Value r1 = v.row(1);
  ASSERT_EQ(r1.shape(), (std::vector<int64_t>{3}));
  EXPECT_EQ(r1.iget(0), 30);
  EXPECT_EQ(r1.iget(2), 50);
}

TEST(Value, RowBoundsChecked) {
  Value v = Value::zeros(Scalar::I64, {2});
  EXPECT_THROW(v.row(2), EvalError);
  EXPECT_THROW(v.row(-1), EvalError);
  EXPECT_THROW(Value::i64(1).row(0), EvalError);
}

TEST(Value, StackRoundTripsRows) {
  Value a = Value::zeros(Scalar::F32, {2});
  a.fset(0, 1);
  a.fset(1, 2);
  Value b = Value::zeros(Scalar::F32, {2});
  b.fset(0, 3);
  b.fset(1, 4);
  Value s = Value::stack({a, b});
  ASSERT_EQ(s.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_TRUE(s.row(0).approx_equal(a));
  EXPECT_TRUE(s.row(1).approx_equal(b));
}

TEST(Value, StackRejectsIrregular) {
  Value a = Value::zeros(Scalar::F32, {2});
  Value b = Value::zeros(Scalar::F32, {3});
  EXPECT_THROW(Value::stack({a, b}), EvalError);
  EXPECT_THROW(Value::stack({}), EvalError);
}

TEST(Value, IndexPeelsDimensions) {
  Value v = Value::zeros(Scalar::I64, {2, 2});
  v.iset(3, 99);
  EXPECT_EQ(v.index({1, 1}).as_int(), 99);
  EXPECT_EQ(v.index({1}).shape(), (std::vector<int64_t>{2}));
}

TEST(Value, RearrangeTransposes) {
  Value v = Value::zeros(Scalar::I64, {2, 3});
  for (int64_t i = 0; i < 6; ++i) v.iset(i, i);
  Value t = v.rearrange({1, 0});
  ASSERT_EQ(t.shape(), (std::vector<int64_t>{3, 2}));
  // element (r, c) of the transpose equals element (c, r) of the original
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 2; ++c) {
      EXPECT_EQ(t.index({r, c}).as_int(), v.index({c, r}).as_int());
    }
  }
}

TEST(Value, Rearrange3dPermutation) {
  Value v = Value::zeros(Scalar::F32, {2, 3, 4});
  for (int64_t i = 0; i < 24; ++i) v.fset(i, static_cast<double>(i));
  Value p = v.rearrange({2, 0, 1});
  ASSERT_EQ(p.shape(), (std::vector<int64_t>{4, 2, 3}));
  for (int64_t a = 0; a < 2; ++a) {
    for (int64_t b = 0; b < 3; ++b) {
      for (int64_t c = 0; c < 4; ++c) {
        EXPECT_EQ(p.index({c, a, b}).as_float(),
                  v.index({a, b, c}).as_float());
      }
    }
  }
}

TEST(Value, ApproxEqualToleratesRoundoff) {
  Value a = Value::f32(1.0);
  Value b = Value::f32(1.0 + 1e-7);
  EXPECT_TRUE(a.approx_equal(b));
  EXPECT_FALSE(a.approx_equal(Value::f32(1.1)));
}

TEST(Value, ApproxEqualIsRelativeForLargeMagnitudes) {
  Value a = Value::f32(1e10);
  Value b = Value::f32(1e10 * (1 + 1e-7));
  EXPECT_TRUE(a.approx_equal(b));
}

TEST(Value, ApproxEqualRejectsShapeMismatch) {
  EXPECT_FALSE(Value::zeros(Scalar::F32, {2})
                   .approx_equal(Value::zeros(Scalar::F32, {3})));
  EXPECT_FALSE(Value::zeros(Scalar::F32, {2})
                   .approx_equal(Value::zeros(Scalar::I64, {2})));
}

TEST(Value, SetRowWritesInPlace) {
  Value v = Value::zeros(Scalar::F32, {2, 2});
  Value r = Value::zeros(Scalar::F32, {2});
  r.fset(0, 5);
  r.fset(1, 6);
  v.set_row(1, r);
  EXPECT_EQ(v.index({1, 0}).as_float(), 5);
  EXPECT_EQ(v.index({1, 1}).as_float(), 6);
  EXPECT_EQ(v.index({0, 0}).as_float(), 0);
}

TEST(Value, StrIsHumanReadable) {
  Value v = Value::zeros(Scalar::I64, {2});
  v.iset(0, 1);
  v.iset(1, 2);
  EXPECT_EQ(v.str(), "[1, 2]");
  EXPECT_EQ(Value::scalar_bool(true).str(), "true");
}

}  // namespace
}  // namespace incflat
