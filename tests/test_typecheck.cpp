// Unit tests: type checker — positive annotation, each rejection path,
// and the target-language level discipline.
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/typecheck.h"
#include "src/support/error.h"

namespace incflat {
namespace {

using namespace ib;

Type f32s() { return Type::scalar(Scalar::F32); }
Type f32v(const char* d) { return Type::array(Scalar::F32, {Dim::v(d)}); }

TEST(Typecheck, AnnotatesScalarExpression) {
  ExprP e = typecheck_expr(add(cf32(1), cf32(2)), {});
  EXPECT_EQ(e->type(), f32s());
}

TEST(Typecheck, VarLooksUpEnvironment) {
  TypeEnv env{{"x", f32v("n")}};
  ExprP e = typecheck_expr(var("x"), env);
  EXPECT_EQ(e->type().str(), "[n]f32");
}

TEST(Typecheck, RejectsUnboundVariable) {
  EXPECT_THROW(typecheck_expr(var("x"), {}), CompilerError);
}

TEST(Typecheck, RejectsMixedScalarBinop) {
  EXPECT_THROW(typecheck_expr(add(cf32(1), ci64(2)), {}), CompilerError);
}

TEST(Typecheck, RejectsArithOnBool) {
  EXPECT_THROW(typecheck_expr(add(cbool(true), cbool(false)), {}),
               CompilerError);
}

TEST(Typecheck, RejectsLogicOnFloats) {
  EXPECT_THROW(typecheck_expr(bin("&&", cf32(1), cf32(1)), {}),
               CompilerError);
}

TEST(Typecheck, ComparisonYieldsBool) {
  ExprP e = typecheck_expr(lt(cf32(1), cf32(2)), {});
  EXPECT_EQ(e->type().elem, Scalar::Bool);
}

TEST(Typecheck, RejectsNonBoolCondition) {
  EXPECT_THROW(typecheck_expr(iff(ci64(1), ci64(1), ci64(2)), {}),
               CompilerError);
}

TEST(Typecheck, RejectsBranchTypeMismatch) {
  EXPECT_THROW(typecheck_expr(iff(cbool(true), ci64(1), cf32(2)), {}),
               CompilerError);
}

TEST(Typecheck, LetArityMustMatch) {
  EXPECT_THROW(
      typecheck_expr(letn({"a", "b"}, ci64(1), var("a")), {}),
      CompilerError);
}

TEST(Typecheck, LoopBodyMustMatchParamTypes) {
  // body yields f32 but the parameter is i64
  ExprP bad = loop({"x"}, {ci64(0)}, "i", ci64(3), cf32(1));
  EXPECT_THROW(typecheck_expr(bad, {}), CompilerError);
}

TEST(Typecheck, LoopCountMustBeInt) {
  ExprP bad = loop({"x"}, {ci64(0)}, "i", cf32(3), var("x"));
  EXPECT_THROW(typecheck_expr(bad, {}), CompilerError);
}

TEST(Typecheck, MapResultExpandsOuterDim) {
  TypeEnv env{{"xs", f32v("n")}};
  ExprP e = typecheck_expr(
      map1(lam({p("x", f32s())}, mul(var("x"), var("x"))), var("xs")), env);
  EXPECT_EQ(e->type().str(), "[n]f32");
}

TEST(Typecheck, MapRejectsScalarOperand) {
  TypeEnv env{{"x", f32s()}};
  EXPECT_THROW(
      typecheck_expr(map1(lam({p("y", f32s())}, var("y")), var("x")), env),
      CompilerError);
}

TEST(Typecheck, MapRejectsMismatchedOuterDims) {
  TypeEnv env{{"xs", f32v("n")}, {"ys", f32v("m")}};
  EXPECT_THROW(typecheck_expr(
                   map(binlam("+", Scalar::F32), {var("xs"), var("ys")}),
                   env),
               CompilerError);
}

TEST(Typecheck, ReduceChecksOperatorShape) {
  TypeEnv env{{"xs", f32v("n")}};
  // Operator returning bool instead of f32.
  Lambda bad = lam({p("a", f32s()), p("b", f32s())}, lt(var("a"), var("b")));
  EXPECT_THROW(typecheck_expr(reduce(bad, {cf32(0)}, {var("xs")}), env),
               CompilerError);
}

TEST(Typecheck, ReduceChecksNeutralType) {
  TypeEnv env{{"xs", f32v("n")}};
  EXPECT_THROW(typecheck_expr(reduce(binlam("+", Scalar::F32), {ci64(0)},
                                     {var("xs")}),
                              env),
               CompilerError);
}

TEST(Typecheck, RedomapComposesMapAndReduceTypes) {
  TypeEnv env{{"xs", f32v("n")}};
  Lambda sq = lam({p("x", f32s())}, mul(var("x"), var("x")));
  ExprP e = typecheck_expr(
      redomap(binlam("+", Scalar::F32), sq, {cf32(0)}, {var("xs")}), env);
  EXPECT_EQ(e->type(), f32s());
}

TEST(Typecheck, ScanPreservesShape) {
  TypeEnv env{{"xs", f32v("n")}};
  ExprP e = typecheck_expr(
      scan(binlam("+", Scalar::F32), {cf32(0)}, {var("xs")}), env);
  EXPECT_EQ(e->type().str(), "[n]f32");
}

TEST(Typecheck, RearrangeChecksPermutation) {
  TypeEnv env{{"m", Type::array(Scalar::F32, {Dim::v("a"), Dim::v("b")})}};
  ExprP e = typecheck_expr(transpose(var("m")), env);
  EXPECT_EQ(e->type().str(), "[b][a]f32");
  EXPECT_THROW(typecheck_expr(rearrange({0, 0}, var("m")), env),
               CompilerError);
  EXPECT_THROW(typecheck_expr(rearrange({0}, var("m")), env), CompilerError);
}

TEST(Typecheck, IndexChecksRankAndIndexTypes) {
  TypeEnv env{{"m", Type::array(Scalar::F32, {Dim::v("a"), Dim::v("b")})}};
  EXPECT_EQ(typecheck_expr(index(var("m"), {ci64(0)}), env)->type().str(),
            "[b]f32");
  EXPECT_THROW(
      typecheck_expr(index(var("m"), {ci64(0), ci64(0), ci64(0)}), env),
      CompilerError);
  EXPECT_THROW(typecheck_expr(index(var("m"), {cf32(0)}), env),
               CompilerError);
}

TEST(Typecheck, SegOpSpaceMustMatchArrayDims) {
  TypeEnv env{{"xss", Type::array(Scalar::F32, {Dim::v("a"), Dim::v("b")})}};
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"xs"}, {"xss"}, Dim::v("WRONG")}};
  so.body = var("xs");
  EXPECT_THROW(typecheck_expr(mk(std::move(so)), env), CompilerError);
}

TEST(Typecheck, SegRedDropsInnermostDim) {
  TypeEnv env{{"xss", Type::array(Scalar::F32, {Dim::v("a"), Dim::v("b")})}};
  SegOpE so;
  so.op = SegOpE::Op::Red;
  so.level = 1;
  so.space = {SegBind{{"xs"}, {"xss"}, Dim::v("a")},
              SegBind{{"x"}, {"xs"}, Dim::v("b")}};
  so.combine = binlam("+", Scalar::F32);
  so.neutral = {cf32(0)};
  so.body = var("x");
  ExprP e = typecheck_expr(mk(std::move(so)), env);
  EXPECT_EQ(e->type().str(), "[a]f32");
}

TEST(Typecheck, ProgramBindsSizeParamsAsI64) {
  Program p;
  p.name = "t";
  p.inputs = {{"xs", f32v("n")}};
  p.body = var("n");
  p = typecheck_program(std::move(p));
  EXPECT_EQ(p.body->type(), Type::scalar(Scalar::I64));
}

TEST(Typecheck, ExtraSizesAreBound) {
  Program p;
  p.name = "t";
  p.inputs = {{"xs", f32v("n")}};
  p.extra_sizes = {"steps"};
  p.body = loop({"x"}, {cf32(0)}, "i", var("steps"),
                add(var("x"), cf32(1)));
  EXPECT_NO_THROW(typecheck_program(std::move(p)));
}

TEST(LevelDiscipline, RejectsLevel0ContainingParallel) {
  SegOpE inner;
  inner.op = SegOpE::Op::Map;
  inner.level = 0;
  inner.space = {SegBind{{"x"}, {"xs"}, Dim::v("n")}};
  inner.body = var("x");
  SegOpE outer;
  outer.op = SegOpE::Op::Map;
  outer.level = 0;
  outer.space = {SegBind{{"xs"}, {"xss"}, Dim::v("m")}};
  outer.body = mk(std::move(inner));
  EXPECT_THROW(check_level_discipline(mk(std::move(outer))), CompilerError);
}

TEST(LevelDiscipline, AcceptsLevel1ContainingLevel0) {
  SegOpE inner;
  inner.op = SegOpE::Op::Map;
  inner.level = 0;
  inner.space = {SegBind{{"x"}, {"xs"}, Dim::v("n")}};
  inner.body = var("x");
  SegOpE outer;
  outer.op = SegOpE::Op::Map;
  outer.level = 1;
  outer.space = {SegBind{{"xs"}, {"xss"}, Dim::v("m")}};
  outer.body = mk(std::move(inner));
  EXPECT_NO_THROW(check_level_discipline(mk(std::move(outer))));
}

TEST(LevelDiscipline, RejectsLevel1DirectlyInsideLevel1) {
  SegOpE inner;
  inner.op = SegOpE::Op::Map;
  inner.level = 1;
  inner.space = {SegBind{{"x"}, {"xs"}, Dim::v("n")}};
  inner.body = var("x");
  SegOpE outer;
  outer.op = SegOpE::Op::Map;
  outer.level = 1;
  outer.space = {SegBind{{"xs"}, {"xss"}, Dim::v("m")}};
  outer.body = mk(std::move(inner));
  EXPECT_THROW(check_level_discipline(mk(std::move(outer))), CompilerError);
}

}  // namespace
}  // namespace incflat
