// Unit and property tests: the GPU cost model — the behaviours the paper's
// results depend on (DESIGN.md invariant 5 among them).
#include <gtest/gtest.h>

#include "src/exec/exec.h"
#include "src/flatten/flatten.h"
#include "src/gpusim/cost.h"
#include "src/ir/builder.h"
#include "src/ir/typecheck.h"
#include "src/support/error.h"

namespace incflat {
namespace {

using namespace ib;

Type f32s() { return Type::scalar(Scalar::F32); }

Program simple_map_program() {
  Program p;
  p.name = "axpy";
  p.inputs = {{"xs", Type::array(Scalar::F32, {Dim::v("n")})}};
  p.body = map1(lam({ib::p("x", f32s())},
                    add(mul(var("x"), cf32(2)), cf32(1))),
                var("xs"));
  return typecheck_program(std::move(p));
}

TEST(CostModel, EvalSizeScalar) {
  const SizeEnv env{{"n", 6}, {"m", 4}};
  EXPECT_EQ(eval_size_scalar(var("n"), env), 6);
  EXPECT_EQ(eval_size_scalar(ci64(3), env), 3);
  EXPECT_EQ(eval_size_scalar(mul(var("n"), var("m")), env), 24);
  EXPECT_EQ(eval_size_scalar(sub(var("n"), ci64(1)), env), 5);
  EXPECT_THROW(eval_size_scalar(var("zz"), env), EvalError);
}

TEST(CostModel, KernelTimeIncludesLaunchOverhead) {
  const DeviceProfile dev = device_k40();
  FlattenResult fr = flatten(simple_map_program(), FlattenMode::Moderate);
  RunEstimate est = estimate_run(dev, fr.program, {{"n", 1}}, {});
  EXPECT_GE(est.time_us, dev.launch_overhead_us);
  EXPECT_EQ(est.kernel_launches, 1);
}

TEST(CostModel, ThroughputSaturatesWithParallelism) {
  // Same per-element work; more elements must never make the kernel
  // *faster per element* and utilisation gains must taper after the
  // saturation point (DESIGN invariant 5).
  const DeviceProfile dev = device_k40();
  FlattenResult fr = flatten(simple_map_program(), FlattenMode::Moderate);
  double prev_per_elem = 1e30;
  for (int64_t n : {int64_t{1} << 8, int64_t{1} << 12, int64_t{1} << 16,
                    int64_t{1} << 20, int64_t{1} << 24}) {
    RunEstimate est = estimate_run(dev, fr.program, {{"n", n}}, {});
    const double per_elem =
        (est.time_us - dev.launch_overhead_us) / static_cast<double>(n);
    EXPECT_LE(per_elem, prev_per_elem * 1.0001) << "n=" << n;
    prev_per_elem = per_elem;
  }
}

TEST(CostModel, LoopMultipliesKernelLaunches) {
  Program p;
  p.name = "steps";
  p.inputs = {{"xs", Type::array(Scalar::F32, {Dim::v("n")})}};
  p.extra_sizes = {"k"};
  p.body = loop({"ys"}, {var("xs")}, "i", var("k"),
                map1(lam({ib::p("x", f32s())}, add(var("x"), cf32(1))),
                     var("ys")));
  p = typecheck_program(std::move(p));
  FlattenResult fr = flatten(p, FlattenMode::Moderate);
  const DeviceProfile dev = device_k40();
  RunEstimate e1 =
      estimate_run(dev, fr.program, {{"n", 64}, {"k", 1}}, {});
  RunEstimate e8 =
      estimate_run(dev, fr.program, {{"n", 64}, {"k", 8}}, {});
  EXPECT_EQ(e8.kernel_launches, 8 * e1.kernel_launches);
  EXPECT_NEAR(e8.time_us, 8 * e1.time_us, 1e-6);
}

// matmul's version (2) is marked block_tiled; its global traffic must be
// roughly tile_size times lower than the same kernel untiled.
TEST(CostModel, BlockTilingReducesGlobalTraffic) {
  Program p;
  p.name = "mm";
  p.inputs = {
      {"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})},
      {"yss", Type::array(Scalar::F32, {Dim::v("m"), Dim::v("k")})},
  };
  Lambda dot = lam({ib::p("x", f32s()), ib::p("y", f32s())},
                   mul(var("x"), var("y")));
  p.body = map1(
      lam({ib::p("xs", Type())},
          map1(lam({ib::p("ys", Type())},
                   redomap(binlam("+", Scalar::F32), dot, {cf32(0)},
                           {var("xs"), var("ys")})),
               transpose(var("yss")))),
      var("xss"));
  p = typecheck_program(std::move(p));
  const DeviceProfile dev = device_k40();
  // Moderate flattening gives the tiled version-(2) kernel.
  FlattenResult mf = flatten(p, FlattenMode::Moderate);
  const SizeEnv sz{{"n", 256}, {"m", 256}, {"k", 256}};
  RunEstimate tiled = estimate_run(dev, mf.program, sz, {});
  ASSERT_FALSE(tiled.kernels.empty());
  EXPECT_NE(tiled.kernels[0].what.find("tiled"), std::string::npos);
  // Untiled traffic would be 2*4*n*m*k bytes; tiled must be ~tile_size x
  // less (plus the result write).
  const double untiled = 2.0 * 4 * 256.0 * 256 * 256;
  EXPECT_LT(tiled.total.gbytes, untiled / (dev.tile_size / 2.0));
}

TEST(CostModel, GuardsSelectExactlyOnePath) {
  Program p;
  p.name = "mmver";
  p.inputs = {
      {"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})},
      {"yss", Type::array(Scalar::F32, {Dim::v("m"), Dim::v("k")})},
  };
  Lambda dot = lam({ib::p("x", f32s()), ib::p("y", f32s())},
                   mul(var("x"), var("y")));
  p.body = map1(
      lam({ib::p("xs", Type())},
          map1(lam({ib::p("ys", Type())},
                   redomap(binlam("+", Scalar::F32), dot, {cf32(0)},
                           {var("xs"), var("ys")})),
               transpose(var("yss")))),
      var("xss"));
  p = typecheck_program(std::move(p));
  FlattenResult inc = flatten(p, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  // Forcing all guards false must walk the full else-chain: the guard trace
  // then contains every threshold on that path exactly once.
  ThresholdEnv off;
  off.default_threshold = int64_t{1} << 62;
  RunEstimate est =
      estimate_run(dev, inc.program, {{"n", 4}, {"m", 8}, {"k", 4}}, off);
  for (const auto& [name, taken] : est.guards) {
    EXPECT_FALSE(taken) << name;
  }
  EXPECT_EQ(est.guards.size(), inc.thresholds.size());
}

TEST(CostModel, IntraGroupFallbackWhenScratchpadExceeded) {
  // One workgroup whose intra-group intermediate exceeds local memory must
  // be priced with the global-memory fallback (Sec. 4.1).
  Program p;
  p.name = "big_intra";
  p.inputs = {{"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})}};
  p.body = map1(
      lam({ib::p("xs", Type())},
          let1("ss",
               scan(binlam("+", Scalar::F32), {cf32(0)}, {var("xs")}),
               scan(binlam("+", Scalar::F32), {cf32(0)}, {var("ss")}))),
      var("xss"));
  p = typecheck_program(std::move(p));
  FlattenResult inc = flatten(p, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  // Middle version with m elements per group; m*4*2 bytes of scratchpad.
  ThresholdEnv pick_middle;
  pick_middle.default_threshold = 1;
  for (const auto& ti : inc.thresholds.all()) {
    if (ti.name.find("outer") != std::string::npos) {
      pick_middle.values[ti.name] = int64_t{1} << 62;
    }
  }
  RunEstimate small = estimate_run(dev, inc.program,
                                   {{"n", 64}, {"m", 512}}, pick_middle);
  bool small_fallback = false, small_intra = false;
  for (const auto& k : small.kernels) {
    small_fallback |= k.used_local_fallback;
    small_intra |= k.what.find("intra") != std::string::npos;
  }
  EXPECT_TRUE(small_intra);
  EXPECT_FALSE(small_fallback);
  // With m = 1024 the fit guard rejects nothing (1024 == max group), but
  // pushing m beyond the scratchpad forces the fallback only if the fit
  // accepts; use a device with a huge group limit to bypass the fit.
  DeviceProfile fat = dev;
  fat.max_group_size = 1 << 22;
  RunEstimate big = estimate_run(fat, inc.program,
                                 {{"n", 4}, {"m", 1 << 20}}, pick_middle);
  bool big_fallback = false;
  for (const auto& k : big.kernels) big_fallback |= k.used_local_fallback;
  EXPECT_TRUE(big_fallback);
}

TEST(CostModel, RooflineRespectsSingleThreadFloor) {
  const DeviceProfile dev = device_k40();
  Work w;
  w.gbytes = 1e6;  // 1 MB
  const double t1 = roofline_time(dev, w, 1, 0);
  const double tful = roofline_time(dev, w, dev.saturation_threads, 0);
  // One thread streams at st_gmem_rate, not at bandwidth/saturation.
  EXPECT_NEAR(t1, 1e6 / dev.st_gmem_rate, 1);
  EXPECT_NEAR(tful, 1e6 / dev.gmem_bw, 1e-3);
  EXPECT_GT(t1, tful);
}

TEST(CostModel, DeviceProfilesMatchPaperCharacteristics) {
  const DeviceProfile k40 = device_k40();
  const DeviceProfile vega = device_vega64();
  EXPECT_EQ(k40.max_group_size, 1024);   // Sec. 5.1
  EXPECT_EQ(vega.max_group_size, 256);   // Sec. 5.1
  // "the Vega 64 is in relative terms more memory bound" (Sec. 5.2)
  EXPECT_GT(vega.compute_intensity(), k40.compute_intensity());
  // Default threshold rationale: ~2^15 threads saturate the K40 (Sec. 4.2)
  EXPECT_NEAR(static_cast<double>(k40.saturation_threads), 1 << 15, 4096);
}

}  // namespace
}  // namespace incflat
