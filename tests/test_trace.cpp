// Unit + integration tests: the pipeline observability layer
// (src/support/trace.*) — span nesting/aggregation, counter aggregation
// across threads, zero-output disabled mode, Chrome trace-event export
// (validated by parsing it back with the repo's own JSON reader), and the
// counters the instrumented compile/tune pipeline emits.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "src/autotune/autotune.h"
#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/exec/runtime.h"
#include "src/gpusim/device.h"
#include "src/gpusim/faults.h"
#include "src/support/json.h"
#include "src/support/trace.h"

namespace incflat {
namespace {

/// Each test owns the global trace state: start clean, leave disabled.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(true);
    trace::reset();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::reset();
  }
};

TEST_F(TraceTest, SpansNestAndAggregateByName) {
  {
    trace::Span outer("outer");
    {
      trace::Span inner("inner");
    }
    {
      trace::Span inner("inner");
    }
  }
  const auto stats = trace::span_stats();
  ASSERT_EQ(stats.size(), 2u);
  // Inner spans close (and therefore record) before the outer one.
  EXPECT_EQ(stats[0].name, "inner");
  EXPECT_EQ(stats[0].calls, 2);
  EXPECT_EQ(stats[1].name, "outer");
  EXPECT_EQ(stats[1].calls, 1);
  EXPECT_GE(stats[1].total_us, stats[0].total_us);
}

TEST_F(TraceTest, CountersAggregateAcrossThreads) {
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([] {
      for (int k = 0; k < 100; ++k) trace::count("work.items");
    });
  }
  for (auto& t : ts) t.join();
  trace::count("work.items", 10);
  EXPECT_EQ(trace::counters().at("work.items"), 410);
}

TEST_F(TraceTest, CounterNamespacesAreSortedAndDistinct) {
  EXPECT_TRUE(trace::counter_namespaces().empty());
  trace::count("spesh.dispatches");
  trace::count("exec.deopts");
  trace::count("profile.runs_recorded");
  trace::count("exec.faults", 3);
  trace::count("spesh.guards_folded", 2);
  trace::gauge("plan.depth", 4);
  trace::count("bare");  // no dot: its own namespace
  EXPECT_EQ(trace::counter_namespaces(),
            (std::vector<std::string>{"bare", "exec", "plan", "profile",
                                      "spesh"}));
  // The --stats summary lists them under the counter table.
  std::ostringstream os;
  trace::print_summary(os);
  EXPECT_NE(os.str().find("namespaces: bare exec plan profile spesh"),
            std::string::npos);
}

TEST_F(TraceTest, TieredRuntimeEmitsProfileSpeshAndDeoptCounters) {
  const Benchmark b = get_benchmark("Heston");
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  TierPolicy tp;
  tp.hot_runs = 3;
  TieredRuntime rt(dev, *c.plan, tp);
  const SizeEnv sizes = b.datasets.at(0).sizes;
  for (int i = 0; i < 5; ++i) {
    FaultPlan faults;
    rt.run(sizes, {}, faults);
  }
  // A threshold flip forces one deoptimization.
  ThresholdEnv flipped;
  flipped.default_threshold = 1;
  FaultPlan faults;
  rt.run(sizes, flipped, faults);

  // Exactly the counters `incflatc --stats` surfaces.
  const auto counters = trace::counters();
  EXPECT_EQ(counters.at("profile.runs_recorded"), 3 + 1);
  EXPECT_EQ(counters.at("spesh.specializations"), 1);
  EXPECT_GT(counters.at("spesh.guards_folded") +
                counters.at("spesh.guards_elided"),
            0);
  EXPECT_EQ(counters.at("spesh.dispatches"), 2);
  EXPECT_EQ(counters.at("spesh.invalidations"), 1);
  EXPECT_EQ(counters.at("exec.deopts"), 1);
  const auto ns = trace::counter_namespaces();
  for (const std::string want : {"exec", "profile", "spesh"}) {
    EXPECT_NE(std::find(ns.begin(), ns.end(), want), ns.end()) << want;
  }
}

TEST_F(TraceTest, GaugeOverwritesInsteadOfAccumulating) {
  trace::gauge("depth", 3);
  trace::gauge("depth", 7);
  EXPECT_EQ(trace::counters().at("depth"), 7);
}

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  trace::set_enabled(false);
  {
    trace::Span s("ghost");
    trace::count("ghost.counter");
    trace::gauge("ghost.gauge", 1);
  }
  EXPECT_TRUE(trace::span_stats().empty());
  EXPECT_TRUE(trace::counters().empty());
  std::ostringstream os;
  trace::print_summary(os);
  EXPECT_NE(os.str().find("nothing recorded"), std::string::npos);
}

TEST_F(TraceTest, SpanOpenedWhileEnabledDropsIfDisabledAtClose) {
  trace::Span* s = new trace::Span("crossing");
  trace::set_enabled(false);
  delete s;
  trace::set_enabled(true);
  EXPECT_TRUE(trace::span_stats().empty());
}

TEST_F(TraceTest, ChromeJsonIsValidAndStructured) {
  {
    trace::Span s("phase.a");
  }
  trace::count("rules", 5);
  const Json doc = Json::parse(trace::chrome_json());
  ASSERT_TRUE(doc.is_object());
  const Json& events = doc.get("traceEvents");
  ASSERT_TRUE(events.is_array());
  // One complete event for the span + one counter event.
  ASSERT_EQ(events.size(), 2u);
  const Json& span_ev = events.at(0);
  EXPECT_EQ(span_ev.get("name").as_string(), "phase.a");
  EXPECT_EQ(span_ev.get("ph").as_string(), "X");
  EXPECT_GE(span_ev.get("ts").as_double(), 0.0);
  EXPECT_GE(span_ev.get("dur").as_double(), 0.0);
  EXPECT_EQ(span_ev.get("pid").as_double(), 1.0);
  const Json& counter_ev = events.at(1);
  EXPECT_EQ(counter_ev.get("ph").as_string(), "C");
  EXPECT_EQ(counter_ev.get("args").get("value").as_double(), 5.0);
  // The summary object mirrors the counters.
  EXPECT_EQ(doc.get("counters").get("rules").as_double(), 5.0);
}

TEST_F(TraceTest, ResetDropsEverything) {
  {
    trace::Span s("x");
  }
  trace::count("c");
  trace::reset();
  EXPECT_TRUE(trace::span_stats().empty());
  EXPECT_TRUE(trace::counters().empty());
}

TEST_F(TraceTest, PipelineEmitsPhaseSpansAndCounters) {
  const Benchmark b = get_benchmark("matmul");
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  std::vector<TuningDataset> train;
  for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});
  const TuningReport rep =
      exhaustive_tune(device_k40(), c.flat.program, c.flat.thresholds, train);
  simulate(device_k40(), c, b.tuning.front().sizes, rep.best);

  const auto counters = trace::counters();
  // Rule applications from flattening.
  EXPECT_GT(counters.at("flatten.rule.G3"), 0);
  EXPECT_GT(counters.at("flatten.versions"), 0);
  EXPECT_GT(counters.at("flatten.thresholds"), 0);
  // Plan-arena statistics from the plan builder.
  EXPECT_GT(counters.at("plan.arena_nodes"), 0);
  EXPECT_GT(counters.at("plan.kernels"), 0);
  EXPECT_GT(counters.at("plan.tree_depth"), 0);
  // Tuner candidates and branching-tree dedup cache hits.
  EXPECT_EQ(counters.at("tuner.candidates"), rep.trials);
  EXPECT_EQ(counters.at("tuner.evaluations"), rep.evaluations);
  EXPECT_EQ(counters.at("tuner.dedup_hits"), rep.dedup_hits);
  // Simulation totals.
  EXPECT_GT(counters.at("exec.kernel_launches"), 0);
  EXPECT_GT(counters.at("exec.global_bytes"), 0);

  // The per-phase summary names the pipeline stages.
  std::ostringstream os;
  trace::print_summary(os);
  const std::string s = os.str();
  for (const char* phase :
       {"pass.incremental", "pass.prune-segbinds", "plan.build",
        "tune.exhaustive", "exec.simulate", "compile"}) {
    EXPECT_NE(s.find(phase), std::string::npos) << "missing phase " << phase;
  }

  // And the Chrome export of the full pipeline parses back.
  const Json doc = Json::parse(trace::chrome_json());
  EXPECT_GT(doc.get("traceEvents").size(), 5u);
}

TEST_F(TraceTest, DisabledPipelineEmitsNothing) {
  trace::set_enabled(false);
  const Benchmark b = get_benchmark("matmul");
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  simulate(device_k40(), c, b.tuning.front().sizes, ThresholdEnv{});
  EXPECT_TRUE(trace::span_stats().empty());
  EXPECT_TRUE(trace::counters().empty());
}

TEST_F(TraceTest, FlushFoldsSpansIntoPersistentAggregates) {
  { trace::Span s("phase.a"); }
  { trace::Span s("phase.a"); }
  { trace::Span s("phase.b"); }
  EXPECT_EQ(trace::flush_spans(), 3);
  // The raw events are gone (chrome timeline is empty of span events)...
  EXPECT_EQ(trace::flush_spans(), 0);
  // ...but the aggregates survive and keep accumulating across flushes.
  auto find = [](const std::vector<trace::SpanStat>& stats,
                 const std::string& name) -> const trace::SpanStat* {
    for (const auto& s : stats)
      if (s.name == name) return &s;
    return nullptr;
  };
  std::vector<trace::SpanStat> stats = trace::span_stats();
  ASSERT_NE(find(stats, "phase.a"), nullptr);
  EXPECT_EQ(find(stats, "phase.a")->calls, 2);
  ASSERT_NE(find(stats, "phase.b"), nullptr);
  { trace::Span s("phase.a"); }
  EXPECT_EQ(trace::flush_spans(), 1);
  stats = trace::span_stats();
  EXPECT_EQ(find(stats, "phase.a")->calls, 3);
  // reset() clears the flushed aggregates along with everything else.
  trace::reset();
  EXPECT_TRUE(trace::span_stats().empty());
}

TEST_F(TraceTest, SpanStatsMergeFlushedAndLiveEvents) {
  { trace::Span s("merge.x"); }
  trace::flush_spans();
  { trace::Span s("merge.x"); }  // live, unflushed
  const std::vector<trace::SpanStat> stats = trace::span_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].calls, 2);
}

TEST_F(TraceTest, ResetIsSafeAgainstConcurrentSpans) {
  // A daemon calls reset() between serving generations while worker
  // threads are still constructing spans.  Under TSan this test is the
  // regression guard for the epoch read: no data race, and every span
  // either lands or is dropped — never tears.
  std::atomic<bool> stop{false};
  std::vector<std::thread> spanners;
  for (int t = 0; t < 4; ++t) {
    spanners.emplace_back([&] {
      while (!stop.load()) {
        trace::Span s("race.span");
        trace::count("race.count");
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    trace::reset();
    if (i % 3 == 0) trace::flush_spans();
  }
  stop.store(true);
  for (auto& t : spanners) t.join();
  trace::reset();
  EXPECT_TRUE(trace::span_stats().empty());
}

}  // namespace
}  // namespace incflat
