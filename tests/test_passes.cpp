// Unit tests: the pre-flattening passes — A-normalisation (SOAC hoisting)
// and producer-consumer fusion — plus block-tiling detection.
#include <gtest/gtest.h>

#include "src/flatten/fusion.h"
#include "src/flatten/normalize.h"
#include "src/flatten/tiling.h"
#include "src/interp/interp.h"
#include "src/ir/builder.h"
#include "src/ir/print.h"
#include "src/ir/traverse.h"
#include "src/ir/typecheck.h"

namespace incflat {
namespace {

using namespace ib;

Type f32s() { return Type::scalar(Scalar::F32); }

TEST(Normalize, HoistsSoacOutOfBinop) {
  // 1 + reduce(...)  ==>  let anf = reduce(...) in 1 + anf
  ExprP e = add(cf32(1),
                reduce(binlam("+", Scalar::F32), {cf32(0)}, {var("xs")}));
  ExprP n = normalize_expr(e);
  auto* l = n->as<LetE>();
  ASSERT_NE(l, nullptr) << pretty(n);
  EXPECT_TRUE(l->rhs->is<ReduceE>());
  EXPECT_TRUE(l->body->is<BinOpE>());
}

TEST(Normalize, HoistsSoacOutOfUnopChain) {
  ExprP e = exp_(neg(redomap(binlam("+", Scalar::F32),
                             lam({p("x", f32s())}, var("x")), {cf32(0)},
                             {var("xs")})));
  ExprP n = normalize_expr(e);
  EXPECT_TRUE(n->is<LetE>()) << pretty(n);
}

TEST(Normalize, LeavesBindingPositionsAlone) {
  ExprP e = let1("ys", map1(lam({p("x", f32s())}, var("x")), var("xs")),
                 var("ys"));
  ExprP n = normalize_expr(e);
  auto* l = n->as<LetE>();
  ASSERT_NE(l, nullptr);
  EXPECT_TRUE(l->rhs->is<MapE>());  // unchanged
}

TEST(Normalize, HoistsFromLoopInits) {
  ExprP e = loop({"a"}, {reduce(binlam("+", Scalar::F32), {cf32(0)},
                                {var("xs")})},
                 "i", ci64(2), add(var("a"), cf32(1)));
  ExprP n = normalize_expr(e);
  EXPECT_TRUE(n->is<LetE>()) << pretty(n);
}

TEST(Normalize, PreservesSemantics) {
  Program p;
  p.name = "norm";
  p.inputs = {{"xs", Type::array(Scalar::F32, {Dim::v("n")})}};
  p.body = divide(
      cf32(1),
      add(cf32(1), exp_(neg(reduce(binlam("+", Scalar::F32), {cf32(0)},
                                   {var("xs")})))));
  p = typecheck_program(std::move(p));
  Program np = normalize_program(p);

  InterpCtx ctx;
  ctx.sizes = {{"n", 5}};
  Value xs = Value::zeros(Scalar::F32, {5});
  for (int64_t i = 0; i < 5; ++i) xs.fset(i, 0.1 * static_cast<double>(i));
  Values a = run_program(ctx, p, {xs});
  Values b = run_program(ctx, np, {xs});
  EXPECT_TRUE(a[0].approx_equal(b[0]));
}

TEST(Fusion, MapIntoReduceBecomesRedomap) {
  ExprP e = let1("ys",
                 map1(lam({p("x", f32s())}, mul(var("x"), var("x"))),
                      var("xs")),
                 reduce(binlam("+", Scalar::F32), {cf32(0)}, {var("ys")}));
  ExprP f = fuse_expr(e);
  EXPECT_TRUE(f->is<RedomapE>()) << pretty(f);
}

TEST(Fusion, MapIntoScanBecomesScanomap) {
  ExprP e = let1("ys",
                 map1(lam({p("x", f32s())}, mul(var("x"), cf32(2))),
                      var("xs")),
                 scan(binlam("+", Scalar::F32), {cf32(0)}, {var("ys")}));
  ExprP f = fuse_expr(e);
  EXPECT_TRUE(f->is<ScanomapE>()) << pretty(f);
}

TEST(Fusion, FusesThroughInterposedLet) {
  // let ys = map f xs in let s = reduce + ys in s * 2, ys dead afterwards.
  ExprP e = let1(
      "ys", map1(lam({p("x", f32s())}, var("x")), var("xs")),
      let1("s", reduce(binlam("+", Scalar::F32), {cf32(0)}, {var("ys")}),
           mul(var("s"), cf32(2))));
  ExprP f = fuse_expr(e);
  auto* l = f->as<LetE>();
  ASSERT_NE(l, nullptr) << pretty(f);
  EXPECT_TRUE(l->rhs->is<RedomapE>()) << pretty(f);
}

TEST(Fusion, DoesNotFuseWhenProducerStillUsed) {
  // ys used both by the reduce and afterwards: no fusion.
  ExprP e = let1(
      "ys", map1(lam({p("x", f32s())}, var("x")), var("xs")),
      let1("s", reduce(binlam("+", Scalar::F32), {cf32(0)}, {var("ys")}),
           reduce(binlam("max", Scalar::F32), {cf32(-1e30)}, {var("ys")})));
  ExprP f = fuse_expr(e);
  auto* l = f->as<LetE>();
  ASSERT_NE(l, nullptr);
  EXPECT_TRUE(l->rhs->is<MapE>()) << pretty(f);
}

TEST(Fusion, DoesNotFuseDifferentArray) {
  ExprP e = let1("ys", map1(lam({p("x", f32s())}, var("x")), var("xs")),
                 reduce(binlam("+", Scalar::F32), {cf32(0)}, {var("zs")}));
  ExprP f = fuse_expr(e);
  EXPECT_FALSE(f->is<RedomapE>());
}

TEST(Fusion, PreservesSemantics) {
  Program p;
  p.name = "fuse";
  p.inputs = {{"xs", Type::array(Scalar::F32, {Dim::v("n")})}};
  p.body = let1("ys",
                map1(lam({ib::p("x", f32s())}, mul(var("x"), var("x"))),
                     var("xs")),
                reduce(binlam("+", Scalar::F32), {cf32(0)}, {var("ys")}));
  p = typecheck_program(std::move(p));
  Program fp = fuse_program(p);
  EXPECT_EQ(count_fused(fp.body), 1);

  InterpCtx ctx;
  ctx.sizes = {{"n", 4}};
  Value xs = Value::zeros(Scalar::F32, {4});
  for (int64_t i = 0; i < 4; ++i) xs.fset(i, static_cast<double>(i));
  EXPECT_TRUE(run_program(ctx, p, {xs})[0].approx_equal(
      run_program(ctx, fp, {xs})[0]));
}

TEST(Tiling, MarksMatmulStyleSegmap) {
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"xs"}, {"xss"}, Dim::v("n")},
              SegBind{{"ys"}, {"yst"}, Dim::v("k")}};
  so.body = redomap(binlam("+", Scalar::F32),
                    lam({p("x", f32s()), p("y", f32s())},
                        mul(var("x"), var("y"))),
                    {cf32(0)}, {var("xs"), var("ys")});
  Program p;
  p.name = "t";
  p.body = mk(std::move(so));
  Program marked = apply_tiling(std::move(p));
  EXPECT_EQ(count_tiled(marked.body), 1);
}

TEST(Tiling, SkipsOneDimensionalSpaces) {
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"xs"}, {"xss"}, Dim::v("n")}};
  so.body = redomap(binlam("+", Scalar::F32),
                    lam({p("x", f32s())}, var("x")), {cf32(0)},
                    {var("xs")});
  Program p;
  p.name = "t";
  p.body = mk(std::move(so));
  EXPECT_EQ(count_tiled(apply_tiling(std::move(p)).body), 0);
}

TEST(Tiling, SkipsIntraGroupKernels) {
  SegOpE inner;
  inner.op = SegOpE::Op::Red;
  inner.level = 0;
  inner.space = {SegBind{{"x"}, {"xs"}, Dim::v("m")}};
  inner.combine = binlam("+", Scalar::F32);
  inner.neutral = {cf32(0)};
  inner.body = var("x");
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"xs"}, {"xss"}, Dim::v("n")},
              SegBind{{"ys"}, {"yst"}, Dim::v("k")}};
  so.body = mk(std::move(inner));
  Program p;
  p.name = "t";
  p.body = mk(std::move(so));
  EXPECT_EQ(count_tiled(apply_tiling(std::move(p)).body), 0);
}

}  // namespace
}  // namespace incflat
