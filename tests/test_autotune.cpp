// Unit tests: the threshold registry, branching-tree signatures, and the
// autotuner (stochastic + exhaustive) with its dedup cache.
#include <gtest/gtest.h>

#include "src/autotune/autotune.h"
#include "src/benchsuite/benchmark.h"
#include "src/flatten/flatten.h"

namespace incflat {
namespace {

TEST(ThresholdRegistry, FreshNamesAreUniqueAndOrdered) {
  ThresholdRegistry reg;
  const std::string a = reg.fresh("suff_outer_par", SizeExpr::one(),
                                  SizeExpr{}, {});
  const std::string b = reg.fresh("suff_outer_par", SizeExpr::one(),
                                  SizeExpr{}, {{a, false}});
  EXPECT_NE(a, b);
  ASSERT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.all()[0].name, a);
  EXPECT_EQ(reg.info(b).path.size(), 1u);
}

TEST(ThresholdRegistry, TruncateRollsBack) {
  ThresholdRegistry reg;
  reg.fresh("a", SizeExpr::one(), SizeExpr{}, {});
  const size_t mark = reg.size();
  reg.fresh("b", SizeExpr::one(), SizeExpr{}, {});
  reg.truncate(mark);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ThresholdRegistry, PathSignatureTracksReachability) {
  // t0 guards the root; t1 is only reachable when t0 is false.
  ThresholdRegistry reg;
  const SizeExpr n = SizeExpr::of(Dim::v("n"));
  const std::string t0 = reg.fresh("t", n, SizeExpr{}, {});
  const std::string t1 = reg.fresh("t", n, SizeExpr{}, {{t0, false}});
  const SizeEnv sizes{{"n", 100}};
  // t0 taken: t1 unreachable -> false in the signature.
  auto sig = reg.path_signature(sizes, {{t0, 10}, {t1, 10}}, 1 << 15,
                                1 << 30);
  EXPECT_EQ(sig, (std::vector<bool>{true, false}));
  // t0 not taken: t1 reachable and taken.
  sig = reg.path_signature(sizes, {{t0, 1000}, {t1, 10}}, 1 << 15, 1 << 30);
  EXPECT_EQ(sig, (std::vector<bool>{false, true}));
}

TEST(ThresholdRegistry, PathSignatureHonoursFit) {
  ThresholdRegistry reg;
  const std::string t0 = reg.fresh("t", SizeExpr::of(Dim::v("n")),
                                   SizeExpr::of(Dim::v("g")), {});
  const SizeEnv sizes{{"n", 100}, {"g", 2048}};
  auto sig = reg.path_signature(sizes, {{t0, 1}}, 1 << 15, 1024);
  EXPECT_FALSE(sig[0]);  // group does not fit
  sig = reg.path_signature(sizes, {{t0, 1}}, 1 << 15, 4096);
  EXPECT_TRUE(sig[0]);
}

TEST(Autotune, ImprovesMatmulOverDefault) {
  Benchmark b = get_benchmark("matmul");
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  // The mid-range of the Fig. 2 sweep, where the default 2^15 threshold
  // picks the wrong version (the n=6..7 regime).
  std::vector<TuningDataset> train = {
      {"n6", {{"n", 64}, {"m", 256}, {"k", 64}}, 1.0},
      {"n7", {{"n", 128}, {"m", 64}, {"k", 128}}, 1.0},
  };
  TuningReport rep = autotune(dev, inc.program, inc.thresholds, train);
  EXPECT_LT(rep.best_cost_us, rep.default_cost_us);
}

TEST(Autotune, DeterministicUnderSeed) {
  Benchmark b = get_benchmark("matmul");
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  std::vector<TuningDataset> train = {
      {"d", {{"n", 64}, {"m", 256}, {"k", 64}}, 1.0}};
  TunerOptions opts;
  opts.seed = 7;
  TuningReport r1 = autotune(dev, inc.program, inc.thresholds, train, opts);
  TuningReport r2 = autotune(dev, inc.program, inc.thresholds, train, opts);
  EXPECT_EQ(r1.best_cost_us, r2.best_cost_us);
  EXPECT_EQ(r1.best.values, r2.best.values);
}

TEST(Autotune, DedupAvoidsRedundantEvaluations) {
  // The search space is highly repetitive (Sec. 4.2); most random
  // assignments repeat an existing path signature.
  Benchmark b = get_benchmark("matmul");
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  std::vector<TuningDataset> train = {
      {"d", {{"n", 64}, {"m", 256}, {"k", 64}}, 1.0}};
  TunerOptions opts;
  opts.max_trials = 300;
  TuningReport rep = autotune(dev, inc.program, inc.thresholds, train, opts);
  EXPECT_GT(rep.dedup_hits, rep.evaluations)
      << "most assignments should repeat a known dynamic behaviour";
  EXPECT_EQ(rep.trials, 300);
}

TEST(Autotune, ExhaustiveIsAtLeastAsGoodAsStochastic) {
  for (const char* name : {"matmul", "Heston", "NW"}) {
    Benchmark b = get_benchmark(name);
    FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
    const DeviceProfile dev = device_vega64();
    std::vector<TuningDataset> train;
    for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});
    TuningReport sto = autotune(dev, inc.program, inc.thresholds, train);
    TuningReport exh = exhaustive_tune(dev, inc.program, inc.thresholds,
                                       train);
    EXPECT_LE(exh.best_cost_us, sto.best_cost_us * 1.0001) << name;
  }
}

TEST(Autotune, WeightsBiasTheCostFunction) {
  // A weighted sum "permits the user to indicate which workloads are the
  // most important" (Sec. 4.2).
  Benchmark b = get_benchmark("matmul");
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  TuningDataset skinny{"skinny", {{"n", 2}, {"m", 1 << 16}, {"k", 2}}, 1.0};
  TuningDataset square{"square", {{"n", 512}, {"m", 512}, {"k", 512}}, 1.0};
  ThresholdEnv env;
  const double unweighted =
      tuning_cost(dev, inc.program, {skinny, square}, env);
  skinny.weight = 3.0;
  const double weighted =
      tuning_cost(dev, inc.program, {skinny, square}, env);
  const double skinny_only =
      tuning_cost(dev, inc.program, {skinny}, env) / 3.0;
  EXPECT_NEAR(weighted - unweighted, 2.0 * skinny_only, 1e-6);
}

TEST(Autotune, NoThresholdsIsANoOp) {
  Benchmark b = get_benchmark("matmul");
  FlattenResult mf = flatten(b.program, FlattenMode::Moderate);
  const DeviceProfile dev = device_k40();
  std::vector<TuningDataset> train = {
      {"d", {{"n", 64}, {"m", 64}, {"k", 64}}, 1.0}};
  TuningReport rep = autotune(dev, mf.program, mf.thresholds, train);
  EXPECT_EQ(rep.best_cost_us, rep.default_cost_us);
  EXPECT_TRUE(rep.best.values.empty());
}

TEST(Autotune, TunedOnTrainingGeneralisesToEvaluation) {
  // The Sec. 5.1 protocol: train on b.tuning, evaluate on b.datasets; the
  // tuned program must not lose to the default on the evaluation sets.
  for (const char* name : {"LocVolCalib", "Heston", "LavaMD"}) {
    Benchmark b = get_benchmark(name);
    FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
    const DeviceProfile dev = device_k40();
    std::vector<TuningDataset> train;
    for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});
    TuningReport rep = exhaustive_tune(dev, inc.program, inc.thresholds,
                                       train);
    for (const auto& d : b.datasets) {
      const double tuned =
          estimate_run(dev, inc.program, d.sizes, rep.best).time_us;
      const double dflt = estimate_run(dev, inc.program, d.sizes, {}).time_us;
      EXPECT_LE(tuned, dflt * 1.5) << name << "/" << d.name;
    }
  }
}

}  // namespace
}  // namespace incflat
