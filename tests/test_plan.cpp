// Property tests for the plan layer (src/plan/): traversing a KernelPlan
// must reproduce the legacy IR-walking cost model *bit for bit* — same code
// version selected, same RunEstimate down to the last ulp — across the whole
// benchmark suite, randomized dataset sizes and randomized threshold
// assignments, including the local-memory fallback path.  The legacy walker
// is the oracle; the plan is the production path.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/autotune/autotune.h"
#include "src/benchsuite/benchmark.h"
#include "src/flatten/flatten.h"
#include "src/ir/builder.h"
#include "src/ir/typecheck.h"
#include "src/plan/plan.h"
#include "src/support/rng.h"

namespace incflat {
namespace {

using namespace ib;

void expect_same_estimate(const RunEstimate& plan, const RunEstimate& walk,
                          const std::string& ctx) {
  EXPECT_EQ(plan.time_us, walk.time_us) << ctx;
  EXPECT_EQ(plan.kernel_launches, walk.kernel_launches) << ctx;
  EXPECT_EQ(plan.total.flops, walk.total.flops) << ctx;
  EXPECT_EQ(plan.total.gbytes, walk.total.gbytes) << ctx;
  EXPECT_EQ(plan.total.lbytes, walk.total.lbytes) << ctx;
  ASSERT_EQ(plan.kernels.size(), walk.kernels.size()) << ctx;
  for (size_t i = 0; i < plan.kernels.size(); ++i) {
    const std::string kctx = ctx + " kernel #" + std::to_string(i);
    EXPECT_EQ(plan.kernels[i].what, walk.kernels[i].what) << kctx;
    EXPECT_EQ(plan.kernels[i].time_us, walk.kernels[i].time_us) << kctx;
    EXPECT_EQ(plan.kernels[i].threads, walk.kernels[i].threads) << kctx;
    EXPECT_EQ(plan.kernels[i].work.flops, walk.kernels[i].work.flops) << kctx;
    EXPECT_EQ(plan.kernels[i].work.gbytes, walk.kernels[i].work.gbytes)
        << kctx;
    EXPECT_EQ(plan.kernels[i].work.lbytes, walk.kernels[i].work.lbytes)
        << kctx;
    EXPECT_EQ(plan.kernels[i].used_local_fallback,
              walk.kernels[i].used_local_fallback)
        << kctx;
  }
  ASSERT_EQ(plan.guards.size(), walk.guards.size()) << ctx;
  for (size_t i = 0; i < plan.guards.size(); ++i) {
    EXPECT_EQ(plan.guards[i].first, walk.guards[i].first) << ctx;
    EXPECT_EQ(plan.guards[i].second, walk.guards[i].second) << ctx;
  }
}

/// Randomized threshold assignment over the registry's parameter names.
ThresholdEnv random_thresholds(const ThresholdRegistry& reg, Rng& rng) {
  ThresholdEnv env;
  for (const auto& ti : reg.all()) {
    if (rng.flip(0.3)) continue;  // leave some at the default
    env.values[ti.name] = int64_t{1} << rng.uniform_int(0, 24);
  }
  if (rng.flip(0.25)) env.default_threshold = int64_t{1} << 62;
  return env;
}

/// Perturb every size in the dataset by a random factor, keeping it >= 1.
SizeEnv perturb(const SizeEnv& sizes, Rng& rng) {
  SizeEnv out;
  for (const auto& [name, v] : sizes) {
    const int64_t factors[] = {1, 2, 3, 4, 8};
    int64_t nv = v * factors[rng.uniform_int(0, 4)];
    if (rng.flip(0.3)) nv = std::max<int64_t>(1, v / 2);
    out[name] = nv;
  }
  return out;
}

// The whole benchmark suite x all three flattening modes x randomized sizes
// and thresholds: plan estimates equal walker estimates exactly.
TEST(PlanLayer, MatchesWalkerAcrossSuite) {
  Rng rng(0x9a7e11);
  const std::vector<DeviceProfile> devices{device_k40(), device_vega64()};
  int fallbacks = 0, programs = 0;
  for (const auto& name : all_benchmark_names()) {
    const Benchmark b = get_benchmark(name);
    for (FlattenMode mode : {FlattenMode::Moderate, FlattenMode::Incremental,
                             FlattenMode::Full}) {
      FlattenResult fr = flatten(b.program, mode);
      const KernelPlan plan = build_kernel_plan(fr.program);
      ++programs;
      if (plan.legacy_fallback) ++fallbacks;
      for (const auto& dev : devices) {
        for (const auto& d : b.datasets) {
          for (int round = 0; round < 3; ++round) {
            const SizeEnv sizes =
                round == 0 ? d.sizes : perturb(d.sizes, rng);
            const ThresholdEnv thr = random_thresholds(fr.thresholds, rng);
            const std::string ctx = name + "/" + mode_name(mode) + "/" +
                                    dev.name + "/" + d.name + " round " +
                                    std::to_string(round);
            const RunEstimate walk =
                estimate_run(dev, fr.program, sizes, thr);
            const RunEstimate via_plan =
                plan_estimate_run(plan, dev, sizes, thr);
            expect_same_estimate(via_plan, walk, ctx);

            // The tuner's scalar fast path agrees too.
            PlanDatasetCache cache(plan, dev, sizes);
            EXPECT_EQ(plan_cost(plan, cache, thr), walk.time_us) << ctx;
          }
        }
      }
    }
  }
  // The plan builder must cover the suite: fallbacks are allowed by the API
  // but would mean the tuner silently loses its fast path.
  EXPECT_EQ(fallbacks, 0) << "of " << programs << " programs";
}

// The local-memory fallback (paper Sec. 4.1): an intra-group kernel whose
// scratchpad need exceeds the device limit is repriced against global
// memory.  The plan bakes the spill condition into select nodes; the choice
// must match the walker on both sides of the boundary.
TEST(PlanLayer, LocalMemoryFallbackMatchesWalker) {
  Program p;
  p.name = "big_intra";
  p.inputs = {{"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})}};
  p.body = map1(
      lam({ib::p("xs", Type())},
          let1("ss",
               scan(binlam("+", Scalar::F32), {cf32(0)}, {var("xs")}),
               scan(binlam("+", Scalar::F32), {cf32(0)}, {var("ss")}))),
      var("xss"));
  p = typecheck_program(std::move(p));
  FlattenResult inc = flatten(p, FlattenMode::Incremental);
  const KernelPlan plan = build_kernel_plan(inc.program);
  ASSERT_FALSE(plan.legacy_fallback) << plan.fallback_reason;

  ThresholdEnv pick_middle;
  pick_middle.default_threshold = 1;
  for (const auto& ti : inc.thresholds.all()) {
    if (ti.name.find("outer") != std::string::npos) {
      pick_middle.values[ti.name] = int64_t{1} << 62;
    }
  }
  DeviceProfile fat = device_k40();
  fat.max_group_size = 1 << 22;
  for (const SizeEnv sizes :
       {SizeEnv{{"n", 64}, {"m", 512}}, SizeEnv{{"n", 4}, {"m", 1 << 20}}}) {
    const RunEstimate walk = estimate_run(fat, inc.program, sizes, pick_middle);
    const RunEstimate via_plan =
        plan_estimate_run(plan, fat, sizes, pick_middle);
    expect_same_estimate(via_plan, walk, "big_intra m=" +
                         std::to_string(sizes.at("m")));
  }
  // Sanity: the two datasets really are on opposite sides of the spill.
  const RunEstimate small =
      plan_estimate_run(plan, fat, {{"n", 64}, {"m", 512}}, pick_middle);
  const RunEstimate big =
      plan_estimate_run(plan, fat, {{"n", 4}, {"m", 1 << 20}}, pick_middle);
  bool small_fb = false, big_fb = false;
  for (const auto& k : small.kernels) small_fb |= k.used_local_fallback;
  for (const auto& k : big.kernels) big_fb |= k.used_local_fallback;
  EXPECT_FALSE(small_fb);
  EXPECT_TRUE(big_fb);
}

// Equal guard-path signatures must imply equal cost (the dedup soundness
// property the autotuner relies on, paper Sec. 4.2).
TEST(PlanLayer, SignatureDedupIsSound) {
  const Benchmark b = get_benchmark("matmul");
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  const KernelPlan plan = build_kernel_plan(inc.program);
  ASSERT_FALSE(plan.legacy_fallback);
  const DeviceProfile dev = device_k40();
  Rng rng(0xdedc0de);
  for (const auto& d : b.datasets) {
    PlanDatasetCache cache(plan, dev, d.sizes);
    std::map<std::vector<uint64_t>, double> seen;
    int collisions = 0;
    for (int i = 0; i < 200; ++i) {
      const ThresholdEnv thr = random_thresholds(inc.thresholds, rng);
      const PathSig sig = plan_signature(plan, cache, thr);
      const double c = plan_cost(plan, cache, thr);
      auto [it, fresh] = seen.emplace(sig.bits, c);
      if (!fresh) {
        ++collisions;
        EXPECT_EQ(it->second, c) << d.name << " trial " << i;
      }
    }
    EXPECT_GT(collisions, 0) << d.name;  // the property was actually tested
  }
}

// The plan-evaluating tuner and the legacy IR-walking tuner are the same
// search over the same costs, so they must return identical reports.
TEST(PlanLayer, TunerEquivalentToWalkerTuner) {
  for (const char* name : {"matmul", "LocVolCalib"}) {
    const Benchmark b = get_benchmark(name);
    FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
    std::vector<TuningDataset> train;
    for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});
    for (const auto& dev : {device_k40(), device_vega64()}) {
      TunerOptions plan_opts;
      plan_opts.max_trials = 120;
      TunerOptions walk_opts = plan_opts;
      walk_opts.use_plan = false;
      const TuningReport pr =
          autotune(dev, inc.program, inc.thresholds, train, plan_opts);
      const TuningReport wr =
          autotune(dev, inc.program, inc.thresholds, train, walk_opts);
      const std::string ctx = std::string(name) + "/" + dev.name;
      EXPECT_TRUE(pr.used_plan) << ctx;
      EXPECT_FALSE(wr.used_plan) << ctx;
      EXPECT_EQ(pr.best.values, wr.best.values) << ctx;
      EXPECT_EQ(pr.best_cost_us, wr.best_cost_us) << ctx;
      EXPECT_EQ(pr.default_cost_us, wr.default_cost_us) << ctx;
      EXPECT_EQ(pr.trials, wr.trials) << ctx;

      const TuningReport pe = exhaustive_tune(dev, inc.program, inc.thresholds,
                                              train, int64_t{1} << 15,
                                              plan_opts);
      const TuningReport we = exhaustive_tune(dev, inc.program, inc.thresholds,
                                              train, int64_t{1} << 15,
                                              walk_opts);
      EXPECT_EQ(pe.best.values, we.best.values) << ctx;
      EXPECT_EQ(pe.best_cost_us, we.best_cost_us) << ctx;
      EXPECT_EQ(pe.trials, we.trials) << ctx;
    }
  }
}

// A plan is built once and reused: mutating nothing between evaluations,
// repeated traversals of the same cache are stable.
TEST(PlanLayer, RepeatedTraversalIsPure) {
  const Benchmark b = get_benchmark("LocVolCalib");
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  const KernelPlan plan = build_kernel_plan(inc.program);
  ASSERT_FALSE(plan.legacy_fallback);
  const DeviceProfile dev = device_vega64();
  PlanDatasetCache cache(plan, dev, b.datasets[0].sizes);
  const ThresholdEnv thr;
  const double first = plan_cost(plan, cache, thr);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(plan_cost(plan, cache, thr), first);
  }
}

}  // namespace
}  // namespace incflat
