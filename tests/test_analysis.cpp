// Tests for the static analysis layer (src/analysis/): interval arithmetic
// and monomial dominance soundness (property-tested against concrete
// evaluation), the dataflow framework's range inference vs the reference
// interpreter on random programs, guard decisions, the simplify-guards
// pass (fold correctness, interpreter equivalence, registry shrinking,
// estimate identity on the benchsuite), the prune-segbinds bottom-up fix,
// and the lint catalogue.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/analysis/range.h"
#include "src/analysis/simplify.h"
#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/flatten/prune.h"
#include "src/interp/interp.h"
#include "src/ir/builder.h"
#include "src/ir/print.h"
#include "src/ir/traverse.h"
#include "src/ir/typecheck.h"
#include "src/ir/verify.h"
#include "src/support/diag.h"
#include "src/support/rng.h"

namespace incflat {
namespace {

using namespace ib;
using analysis::AnalysisLimits;
using analysis::GuardDecision;
using analysis::IntInterval;

// ---------------------------------------------------------------- intervals

TEST(Interval, Basics) {
  EXPECT_TRUE(IntInterval::top().is_top());
  EXPECT_TRUE(IntInterval::top().contains(-12345));
  EXPECT_TRUE(IntInterval::point(3).contains(3));
  EXPECT_FALSE(IntInterval::point(3).contains(4));
  EXPECT_TRUE(IntInterval::at_least(2).contains(1 << 30));
  EXPECT_FALSE(IntInterval::at_least(2).contains(1));
  EXPECT_EQ(interval_add(IntInterval::range(1, 2), IntInterval::range(3, 4)),
            IntInterval::range(4, 6));
  EXPECT_EQ(interval_mul(IntInterval::range(2, 3), IntInterval::range(4, 5)),
            IntInterval::range(8, 15));
  EXPECT_EQ(interval_max(IntInterval::range(1, 10), IntInterval::range(5, 7)),
            IntInterval::range(5, 10));
  EXPECT_EQ(interval_min(IntInterval::range(1, 10), IntInterval::range(5, 7)),
            IntInterval::range(1, 7));
  EXPECT_EQ(interval_neg(IntInterval::range(-2, 5)), IntInterval::range(-5, 2));
}

TEST(Interval, JoinLeqWiden) {
  const IntInterval a = IntInterval::range(1, 4);
  const IntInterval b = IntInterval::range(3, 9);
  const IntInterval j = interval_join(a, b);
  EXPECT_TRUE(interval_leq(a, j));
  EXPECT_TRUE(interval_leq(b, j));
  EXPECT_EQ(j, IntInterval::range(1, 9));
  // Widening opens the bound that grew.
  const IntInterval w = interval_widen(a, IntInterval::range(1, 5));
  EXPECT_TRUE(w.lo_finite);
  EXPECT_FALSE(w.hi_finite);
  EXPECT_EQ(interval_widen(a, a), a);
}

IntInterval random_interval(Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0: return IntInterval::top();
    case 1: return IntInterval::at_least(rng.uniform_int(-50, 50));
    case 2: return IntInterval::at_most(rng.uniform_int(-50, 50));
    default: {
      const int64_t lo = rng.uniform_int(-50, 50);
      return IntInterval::range(lo, lo + rng.uniform_int(0, 40));
    }
  }
}

int64_t sample_from(Rng& rng, const IntInterval& iv) {
  const int64_t lo = iv.lo_finite ? iv.lo : -60;
  const int64_t hi = iv.hi_finite ? iv.hi : 60;
  return rng.uniform_int(std::min(lo, hi), std::max(lo, hi));
}

TEST(Interval, ArithmeticIsSoundProperty) {
  Rng rng(7);
  for (int iter = 0; iter < 2000; ++iter) {
    const IntInterval A = random_interval(rng);
    const IntInterval B = random_interval(rng);
    const int64_t a = sample_from(rng, A);
    const int64_t b = sample_from(rng, B);
    if (!A.contains(a) || !B.contains(b)) continue;
    EXPECT_TRUE(interval_add(A, B).contains(a + b)) << A.str() << B.str();
    EXPECT_TRUE(interval_sub(A, B).contains(a - b)) << A.str() << B.str();
    EXPECT_TRUE(interval_mul(A, B).contains(a * b)) << A.str() << B.str();
    EXPECT_TRUE(interval_min(A, B).contains(std::min(a, b)));
    EXPECT_TRUE(interval_max(A, B).contains(std::max(a, b)));
    EXPECT_TRUE(interval_neg(A).contains(-a));
    EXPECT_TRUE(interval_join(A, B).contains(a));
    EXPECT_TRUE(interval_join(A, B).contains(b));
  }
}

// --------------------------------------------------- symbolic size algebra

SizeProd prod_of(int64_t k, const std::vector<std::string>& vars) {
  SizeProd p;
  p.konst = k;
  for (const auto& v : vars) p *= Dim::v(v);
  return p;
}

TEST(SizeIntervals, MirrorEvalClamp) {
  SizeBounds bounds;
  bounds["n"] = SizeBound{4, 16};
  // Empty SizeExpr evaluates to 1 (the degenerate size); its interval is
  // the point 1.
  EXPECT_EQ(analysis::interval_of(SizeExpr{}, bounds), IntInterval::point(1));
  const SizeExpr n = SizeExpr::of(Dim::v("n"));
  EXPECT_EQ(analysis::interval_of(n, bounds), IntInterval::range(4, 16));
  // Undeclared variables default to [1, inf).
  const IntInterval m = analysis::interval_of(SizeExpr::of(Dim::v("m")),
                                              bounds);
  EXPECT_TRUE(m.lo_finite);
  EXPECT_EQ(m.lo, 1);
  EXPECT_FALSE(m.hi_finite);
  // Products multiply the per-variable ranges.
  const SizeExpr nn = n.times(prod_of(2, {"n"}));
  EXPECT_EQ(analysis::interval_of(nn, bounds), IntInterval::range(32, 512));
}

TEST(SizeAlgebra, ProdLeqSoundnessProperty) {
  const std::vector<std::string> names = {"a", "b", "c"};
  Rng rng(11);
  int decided = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    SizeBounds bounds;
    for (const auto& v : names) {
      const int64_t lo = rng.uniform_int(1, 5);
      bounds[v] = rng.uniform_int(0, 1) ? SizeBound{lo, -1}
                                        : SizeBound{lo, lo + rng.uniform_int(0, 8)};
    }
    auto rand_prod = [&] {
      std::vector<std::string> vs;
      for (const auto& v : names) {
        for (int64_t r = rng.uniform_int(0, 2); r > 0; --r) vs.push_back(v);
      }
      return prod_of(rng.uniform_int(1, 8), vs);
    };
    const SizeProd p = rand_prod();
    const SizeProd q = rand_prod();
    if (!analysis::prod_leq(p, q, bounds)) continue;
    ++decided;
    for (int s = 0; s < 10; ++s) {
      SizeEnv env;
      for (const auto& v : names) {
        const SizeBound& sb = bounds[v];
        const int64_t hi = sb.bounded_above() ? sb.hi : sb.lo + 20;
        env[v] = rng.uniform_int(sb.lo, hi);
      }
      EXPECT_LE(p.eval(env), q.eval(env))
          << p.str() << " !<= " << q.str();
    }
  }
  // The dominance test must not be vacuous.
  EXPECT_GT(decided, 100);
}

TEST(SizeAlgebra, ExprLeqSoundnessProperty) {
  const std::vector<std::string> names = {"a", "b"};
  Rng rng(13);
  int decided = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    SizeBounds bounds;
    for (const auto& v : names) {
      bounds[v] = SizeBound{rng.uniform_int(1, 6), -1};
    }
    auto rand_expr = [&] {
      SizeExpr e;
      for (int64_t alts = rng.uniform_int(1, 3); alts > 0; --alts) {
        std::vector<std::string> vs;
        for (const auto& v : names) {
          for (int64_t r = rng.uniform_int(0, 2); r > 0; --r) vs.push_back(v);
        }
        e = e.max_with(SizeExpr::of(prod_of(rng.uniform_int(1, 6), vs)));
      }
      return e;
    };
    const SizeExpr x = rand_expr();
    const SizeExpr y = rand_expr();
    if (!analysis::expr_leq(x, y, bounds)) continue;
    ++decided;
    for (int s = 0; s < 10; ++s) {
      SizeEnv env;
      for (const auto& v : names) env[v] = rng.uniform_int(bounds[v].lo, 25);
      EXPECT_LE(x.eval(env), y.eval(env)) << x.str() << " !<= " << y.str();
    }
  }
  EXPECT_GT(decided, 50);
}

// ------------------------------------------------- dataflow: def-use chains

TEST(DefUse, CountsUsesAndFindsDeadBindings) {
  Program p;
  p.name = "defuse";
  p.inputs = {{"xs", Type::array(Scalar::F32, {Dim::v("n")})}};
  p.body = let1("live", add(cf32(1), cf32(2)),
                let1("dead", mul(cf32(3), cf32(4)),
                     add(var("live"), index(var("xs"), {ci64(0)}))));
  p = typecheck_program(std::move(p));
  const analysis::DefUse du = analysis::def_use(p);
  EXPECT_EQ(du.defs.at("live").uses, 1);
  EXPECT_EQ(du.defs.at("dead").uses, 0);
  EXPECT_EQ(du.defs.at("xs").uses, 1);
  EXPECT_TRUE(du.undefined.empty());
  const auto dead = analysis::dead_defs(du);
  EXPECT_NE(std::find(dead.begin(), dead.end(), "dead"), dead.end());
  // Inputs with zero uses are interface, not dead code.
  EXPECT_EQ(std::find(dead.begin(), dead.end(), "xs"), dead.end());
}

// ----------------------------------- range analysis vs interpreter (random)

/// Random closed integer-scalar program generator over size variable `n`.
/// Exercises constants, arithmetic, if, let, loop, iota/index, map and
/// reduce — each with I64 element type so the interpreter's results are
/// directly comparable to the inferred intervals.
struct ProgGen {
  Rng& rng;
  NameGen names;
  std::vector<std::string> scope;  // bound scalar variables

  ExprP leaf() {
    const int64_t c = rng.uniform_int(0, 4);
    if (c == 0) return var("n");
    if (c == 1 && !scope.empty()) {
      return var(scope[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(scope.size()) - 1))]);
    }
    return ci64(rng.uniform_int(-5, 10));
  }

  ExprP gen(int depth) {  // NOLINT(misc-no-recursion)
    if (depth <= 0) return leaf();
    switch (rng.uniform_int(0, 9)) {
      case 0: return add(gen(depth - 1), gen(depth - 1));
      case 1: return sub(gen(depth - 1), gen(depth - 1));
      case 2: return min_(gen(depth - 1), gen(depth - 1));
      case 3: return max_(gen(depth - 1), gen(depth - 1));
      case 4:
        return iff(le(gen(depth - 1), gen(depth - 1)), gen(depth - 1),
                   gen(depth - 1));
      case 5: {
        const std::string v = names.fresh("x");
        ExprP rhs = gen(depth - 1);
        scope.push_back(v);
        ExprP body = gen(depth - 1);
        scope.pop_back();
        return let1(v, std::move(rhs), std::move(body));
      }
      case 6: {
        // loop acc = init for i < n: acc + small
        const std::string acc = names.fresh("acc");
        const std::string iv = names.fresh("i");
        ExprP init = gen(depth - 1);
        scope.push_back(acc);
        scope.push_back(iv);
        ExprP body = add(var(acc), gen(0));
        scope.pop_back();
        scope.pop_back();
        return loop({acc}, {std::move(init)}, iv, var("n"), std::move(body));
      }
      case 7:
        // sum over iota(n)
        return reduce(binlam("+", Scalar::I64), {ci64(0)},
                      {iota(Dim::v("n"))});
      case 8: {
        // index into a mapped iota (exercises Map's elementwise
        // abstraction and Index).
        const std::string x = names.fresh("e");
        scope.push_back(x);
        ExprP f = add(var(x), gen(0));
        scope.pop_back();
        return index(map1(lam({ib::p(x, Type::scalar(Scalar::I64))},
                             std::move(f)),
                          iota(Dim::v("n"))),
                     {ci64(0)});
      }
      default: return leaf();
    }
  }
};

TEST(RangeAnalysis, SoundOnRandomProgramsProperty) {
  Rng rng(101);
  for (int iter = 0; iter < 150; ++iter) {
    ProgGen gen{rng, {}, {}};
    Program p;
    p.name = "random";
    p.extra_sizes = {"n"};
    p.size_bounds["n"] = SizeBound{2, 40};
    p.body = let1("result", gen.gen(3), var("result"));
    p = typecheck_program(std::move(p));

    const analysis::ProgramAnalysis pa = analysis::analyze_program(p);
    ASSERT_TRUE(pa.bindings.count("result")) << pretty(p);
    const IntInterval iv = pa.bindings.at("result").range;

    for (int s = 0; s < 5; ++s) {
      InterpCtx ctx;
      ctx.sizes["n"] = rng.uniform_int(2, 40);
      const Values out = run_program(ctx, p, {});
      ASSERT_EQ(out.size(), 1u);
      ASSERT_TRUE(out[0].is_scalar());
      EXPECT_TRUE(iv.contains(out[0].as_int()))
          << "n=" << ctx.sizes["n"] << " value=" << out[0].as_int()
          << " interval=" << iv.str() << "\n" << pretty(p);
    }
  }
}

// ----------------------------------------------------------- guard decisions

ThresholdCmpE guard(const std::string& t, SizeExpr par, SizeExpr fit) {
  return ThresholdCmpE{t, std::move(par), std::move(fit)};
}

TEST(DecideGuard, FitInfeasibilityF1) {
  SizeBounds bounds;
  bounds["np"] = SizeBound{256, -1};
  bounds["ns"] = SizeBound{8, -1};
  const SizeExpr fit = SizeExpr::of(prod_of(1, {"np", "ns"}));
  const ThresholdCmpE tc =
      guard("t0", SizeExpr::of(Dim::v("np")), fit);
  AnalysisLimits k40{1024, 48 * 1024};
  EXPECT_EQ(analysis::decide_guard(tc, k40, bounds, {}),
            GuardDecision::AlwaysFalse);
  // Without the bounds the fit's lower bound is 1: undecidable.
  EXPECT_EQ(analysis::decide_guard(tc, k40, {}, {}),
            GuardDecision::Unknown);
  // Without device limits nothing device-dependent is decided.
  EXPECT_EQ(analysis::decide_guard(tc, {}, bounds, {}),
            GuardDecision::Unknown);
}

TEST(DecideGuard, ThresholdAloneIsNeverDecided) {
  // A fit-less guard compares against a *free tuning parameter*: both
  // branches stay reachable no matter the bounds.
  SizeBounds bounds;
  bounds["n"] = SizeBound{1 << 20, 1 << 20};
  const ThresholdCmpE tc = guard("t0", SizeExpr::of(Dim::v("n")), SizeExpr{});
  EXPECT_EQ(analysis::decide_guard(tc, {1024, 48 * 1024}, bounds, {}),
            GuardDecision::Unknown);
}

TEST(DecideGuard, SameThresholdDominanceF2) {
  SizeBounds bounds;  // all vars [1, inf)
  const SizeExpr n = SizeExpr::of(Dim::v("n"));
  const SizeExpr nm = SizeExpr::of(prod_of(1, {"n", "m"}));
  analysis::GuardFacts facts;
  // Enclosing `nm >= t` (no fit) failed; n <= n*m, so `n >= t` must fail
  // here too.
  facts["t"] = {analysis::GuardFact{nm, SizeExpr{}, false}};
  EXPECT_EQ(analysis::decide_guard(guard("t", n, SizeExpr{}), {}, bounds,
                                   facts),
            GuardDecision::AlwaysFalse);
  // Enclosing `n >= t` (no fit) succeeded; n*m >= n, so `n*m >= t` holds.
  facts["t"] = {analysis::GuardFact{n, SizeExpr{}, true}};
  EXPECT_EQ(analysis::decide_guard(guard("t", nm, SizeExpr{}), {}, bounds,
                                   facts),
            GuardDecision::AlwaysTrue);
  // Different threshold name: no relation.
  EXPECT_EQ(analysis::decide_guard(guard("u", nm, SizeExpr{}), {}, bounds,
                                   facts),
            GuardDecision::Unknown);
}

TEST(DecideGuard, DecisionsMatchConcreteEvaluationProperty) {
  const std::vector<std::string> names = {"a", "b"};
  Rng rng(17);
  int decided = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    SizeBounds bounds;
    for (const auto& v : names) {
      const int64_t lo = rng.uniform_int(1, 64);
      bounds[v] = rng.uniform_int(0, 1)
                      ? SizeBound{lo, -1}
                      : SizeBound{lo, lo * rng.uniform_int(1, 4)};
    }
    auto rand_expr = [&](bool maybe_empty) {
      if (maybe_empty && rng.uniform_int(0, 3) == 0) return SizeExpr{};
      std::vector<std::string> vs;
      for (const auto& v : names) {
        for (int64_t r = rng.uniform_int(0, 2); r > 0; --r) vs.push_back(v);
      }
      return SizeExpr::of(prod_of(rng.uniform_int(1, 4), vs));
    };
    const ThresholdCmpE tc =
        guard("t", rand_expr(false), rand_expr(true));
    const AnalysisLimits lim{rng.uniform_int(16, 2048), 48 * 1024};
    const GuardDecision d = analysis::decide_guard(tc, lim, bounds, {});
    if (d == GuardDecision::Unknown) continue;
    ++decided;
    for (int s = 0; s < 8; ++s) {
      SizeEnv env;
      for (const auto& v : names) {
        const SizeBound& sb = bounds[v];
        env[v] = rng.uniform_int(sb.lo,
                                 sb.bounded_above() ? sb.hi : sb.lo + 100);
      }
      const int64_t t = rng.uniform_int(1, 1 << 20);
      const bool taken =
          tc.par.eval(env) >= t &&
          (tc.fit.alts.empty() || tc.fit.eval(env) <= lim.max_group_size);
      EXPECT_EQ(taken, d == GuardDecision::AlwaysTrue)
          << "par=" << tc.par.str() << " fit=" << tc.fit.str();
    }
  }
  EXPECT_GT(decided, 20);
}

// -------------------------------------------------------- par / local mem

ExprP seg1_body(ExprP body) {
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"xs"}, {"xss"}, Dim::v("n")}};
  so.body = std::move(body);
  return mk(std::move(so));
}

ExprP segred0() {
  SegOpE so;
  so.op = SegOpE::Op::Red;
  so.level = 0;
  so.space = {SegBind{{"x"}, {"xs"}, Dim::v("m")}};
  so.combine = binlam("+", Scalar::F32);
  so.neutral = {cf32(0)};
  so.body = var("x");
  return mk(std::move(so));
}

TEST(SymbolicFacts, ParAndLocalMemOfIntraGroupNest) {
  Program p;
  p.inputs = {{"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})}};
  p.body = seg1_body(segred0());
  p = typecheck_program(std::move(p));
  SizeEnv env{{"n", 10}, {"m", 7}};
  // Par = n * m (outer space times the inner seg-op's degree).
  EXPECT_EQ(analysis::par_of(p.body).eval(env), 70);
  // Local footprint mirrors the cost model: 2 * m points * 4 bytes (f32).
  EXPECT_EQ(analysis::local_mem_of(p.body).eval(env), 2 * 7 * 4);
  // A level-1 nest with a sequential body has no local footprint.
  Program q;
  q.inputs = p.inputs;
  q.body = seg1_body(redomap(binlam("+", Scalar::F32),
                             lam({ib::p("x", Type::scalar(Scalar::F32))},
                                 var("x")),
                             {cf32(0)}, {var("xs")}));
  q = typecheck_program(std::move(q));
  EXPECT_TRUE(analysis::local_mem_of(q.body).alts.empty());
}

// ------------------------------------------------------ prune-segbinds fix

TEST(Prune, NestedOrphanRemovedInOnePass) {
  // Outer binding `xs` is referenced only as the source array of the inner
  // seg-op's binding `x`, and `x` itself is dead.  Bottom-up pruning must
  // remove both in a single run.
  SegOpE inner;
  inner.op = SegOpE::Op::Map;
  inner.level = 0;
  inner.space = {SegBind{{"x"}, {"xs"}, Dim::v("m")}};
  inner.body = cf32(1);  // x unused
  SegOpE outer;
  outer.op = SegOpE::Op::Map;
  outer.level = 1;
  outer.space = {SegBind{{"xs"}, {"xss"}, Dim::v("n")}};
  outer.body = mk(std::move(inner));
  const ExprP pruned = prune_seg_spaces(mk(std::move(outer)));
  const auto* out = pruned->as<SegOpE>();
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->space.size(), 1u);
  EXPECT_TRUE(out->space[0].params.empty()) << pretty(pruned);
  const auto* in = out->body->as<SegOpE>();
  ASSERT_NE(in, nullptr);
  EXPECT_TRUE(in->space[0].params.empty()) << pretty(pruned);
}

TEST(Prune, Idempotent) {
  Rng rng(23);
  // Idempotence on a shape that mixes live and dead bindings at two levels.
  SegOpE inner;
  inner.op = SegOpE::Op::Map;
  inner.level = 0;
  inner.space = {SegBind{{"x", "y"}, {"xs", "ys"}, Dim::v("m")}};
  inner.body = add(var("x"), cf32(1));  // y dead
  SegOpE outer;
  outer.op = SegOpE::Op::Map;
  outer.level = 1;
  outer.space = {SegBind{{"xs", "ys"}, {"xss", "yss"}, Dim::v("n")}};
  outer.body = mk(std::move(inner));
  const ExprP once = prune_seg_spaces(mk(std::move(outer)));
  const ExprP twice = prune_seg_spaces(once);
  EXPECT_EQ(pretty(once), pretty(twice));
  // ys/y are gone, xs/x stay.
  const auto* out = once->as<SegOpE>();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->space[0].params, std::vector<std::string>{"xs"});
}

// --------------------------------------------------------- threshold retain

TEST(Registry, RetainDropsThresholdsAndPathSteps) {
  ThresholdRegistry reg;
  const std::string t0 =
      reg.fresh("suff_outer_par", SizeExpr::of(Dim::v("n")), SizeExpr{}, {});
  const std::string t1 = reg.fresh("suff_intra_par", SizeExpr::of(Dim::v("n")),
                                   SizeExpr::of(Dim::v("m")), {{t0, false}});
  const std::string t2 =
      reg.fresh("suff_outer_par", SizeExpr::of(Dim::v("m")), SizeExpr{},
                {{t0, false}, {t1, false}});
  EXPECT_EQ(reg.retain({t0, t2}), 1u);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.all()[0].name, t0);
  EXPECT_EQ(reg.all()[1].name, t2);
  // t2's path step through the folded t1 is stripped; the t0 step remains.
  ASSERT_EQ(reg.info(t2).path.size(), 1u);
  EXPECT_EQ(reg.info(t2).path[0].first, t0);
}

// -------------------------------------------------------- simplify-guards

/// A two-version target program whose intra-group arm requires fit = m:
/// `if (m >= t && fit m) then intra else flat` where both arms compute the
/// per-row sums of xss.
Program guarded_program(ThresholdRegistry& reg) {
  Program p;
  p.name = "guarded";
  p.inputs = {{"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})}};
  const std::string t =
      reg.fresh("suff_intra_par", SizeExpr::of(Dim::v("m")),
                SizeExpr::of(Dim::v("m")), {});
  ExprP cmp = mk(ThresholdCmpE{t, SizeExpr::of(Dim::v("m")),
                               SizeExpr::of(Dim::v("m"))});
  ExprP intra = seg1_body(segred0());
  ExprP flat = seg1_body(redomap(binlam("+", Scalar::F32),
                                 lam({ib::p("x", Type::scalar(Scalar::F32))},
                                     var("x")),
                                 {cf32(0)}, {var("xs")}));
  p.body = iff(std::move(cmp), std::move(intra), std::move(flat));
  return typecheck_program(std::move(p));
}

TEST(SimplifyGuards, FoldsInfeasibleIntraVersionAndPreservesValues) {
  ThresholdRegistry reg;
  Program plain = guarded_program(reg);
  // Declared: m >= 4.  On a device with max_group_size = 2 the fit bound
  // can never hold, so the guard is always-false -> keep the flat arm.
  Program simplified = plain;
  simplified.size_bounds["m"] = SizeBound{4, -1};
  ThresholdRegistry sreg = reg;
  const analysis::SimplifyStats stats =
      analysis::simplify_guards(simplified, sreg, AnalysisLimits{2, 1024});
  EXPECT_EQ(stats.guards_folded, 1);
  EXPECT_EQ(stats.versions_pruned, 2);  // the segmap^1 and its segred^0
  EXPECT_EQ(stats.thresholds_dropped, 1);
  EXPECT_TRUE(sreg.empty());
  EXPECT_EQ(collect_thresholds(simplified.body).size(), 0u);

  // Semantics are bounds-independent: even on sizes *violating* the
  // declared bounds the two programs compute identical values (all guarded
  // versions are equivalent), for any threshold assignment.
  Rng rng(31);
  for (const int64_t m : {int64_t{1}, int64_t{3}, int64_t{8}}) {
    InterpCtx ctx;
    ctx.sizes = {{"n", 3}, {"m", m}};
    ctx.max_group_size = 2;
    Value xss = Value::zeros(Scalar::F32, {3, m});
    for (int64_t i = 0; i < xss.count(); ++i) {
      xss.fset(i, static_cast<double>(rng.uniform_int(-4, 9)));
    }
    for (const int64_t t : {int64_t{1}, int64_t{4}, int64_t{1} << 20}) {
      ctx.thresholds.values = {{reg.all()[0].name, t}};
      const Values a = run_program(ctx, plain, {xss});
      const Values b = run_program(ctx, simplified, {xss});
      ASSERT_EQ(a.size(), b.size());
      EXPECT_TRUE(a[0].approx_equal(b[0], 1e-6)) << "m=" << m << " t=" << t;
    }
  }
}

TEST(SimplifyGuards, NoBoundsNoLimitsMeansNoFolds) {
  ThresholdRegistry reg;
  Program p = guarded_program(reg);
  const std::string before = pretty(p.body);
  ThresholdRegistry reg2 = reg;
  const analysis::SimplifyStats stats =
      analysis::simplify_guards(p, reg2, AnalysisLimits{});
  EXPECT_EQ(stats.guards_folded, 0);
  EXPECT_EQ(stats.versions_pruned, 0);
  EXPECT_EQ(stats.thresholds_dropped, 0);
  EXPECT_EQ(pretty(p.body), before);
}

TEST(SimplifyGuards, BenchsuiteEstimatesAndKernelChoicesUnchanged) {
  // The acceptance criterion: with --simplify the plan has strictly fewer
  // versions and thresholds, yet prices identically (same kernels, same
  // estimates) for every in-bounds dataset and *any* threshold assignment.
  const DeviceProfile dev = device_k40();
  for (const std::string name : {"Heston", "Backprop", "LavaMD"}) {
    const Benchmark b = get_benchmark(name);
    const Compiled plain = compile(b.program, FlattenMode::Incremental);
    CompileOptions sopts;
    sopts.simplify = true;
    sopts.limits = analysis::limits_for(dev);
    const Compiled simp = compile(b.program, FlattenMode::Incremental, sopts);

    EXPECT_LT(simp.flat.thresholds.size(), plain.flat.thresholds.size())
        << name;
    EXPECT_LT(count_segops(simp.flat.program.body),
              count_segops(plain.flat.program.body))
        << name;

    std::vector<ThresholdEnv> sweeps;
    sweeps.emplace_back();  // defaults
    for (const int64_t v : {int64_t{1}, int64_t{512}, int64_t{1} << 24}) {
      ThresholdEnv te;
      for (const auto& ti : plain.flat.thresholds.all()) {
        te.values[ti.name] = v;
      }
      sweeps.push_back(std::move(te));
    }
    for (const auto& ds : b.datasets) {
      for (const auto& te : sweeps) {
        const RunEstimate a = simulate(dev, plain, ds.sizes, te);
        const RunEstimate s = simulate(dev, simp, ds.sizes, te);
        EXPECT_DOUBLE_EQ(a.time_us, s.time_us) << name << "/" << ds.name;
        ASSERT_EQ(a.kernels.size(), s.kernels.size())
            << name << "/" << ds.name;
        for (size_t i = 0; i < a.kernels.size(); ++i) {
          EXPECT_EQ(a.kernels[i].what, s.kernels[i].what)
              << name << "/" << ds.name;
        }
      }
    }
  }
}

TEST(SimplifyGuards, TargetValuesUnchangedOnBenchsuite) {
  // Interpreter-level equivalence at the (deliberately out-of-bounds)
  // test sizes: folding never changes computed values.
  const DeviceProfile dev = device_k40();
  for (const std::string name : {"Heston", "Backprop", "LavaMD"}) {
    const Benchmark b = get_benchmark(name);
    const Compiled plain = compile(b.program, FlattenMode::Incremental);
    CompileOptions sopts;
    sopts.simplify = true;
    sopts.limits = analysis::limits_for(dev);
    const Compiled simp = compile(b.program, FlattenMode::Incremental, sopts);
    Rng rng(41);
    const std::vector<Value> inputs = b.gen_inputs(rng, b.test_sizes);
    const Values a = execute(dev, plain, b.test_sizes, {}, inputs);
    const Values s = execute(dev, simp, b.test_sizes, {}, inputs);
    ASSERT_EQ(a.size(), s.size()) << name;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a[i].approx_equal(s[i], 1e-4)) << name;
    }
  }
}

// ------------------------------------------------------------------- lint

TEST(Lint, FindsDeadVersionUnusedThresholdAndDeadBinding) {
  ThresholdRegistry reg;
  Program p = guarded_program(reg);
  p.size_bounds["m"] = SizeBound{4, -1};
  // A threshold no guard mentions.
  reg.fresh("suff_outer_par", SizeExpr::of(Dim::v("n")), SizeExpr{}, {});
  // A dead let binding.
  p.body = let1("unused", cf32(0), p.body);
  p = typecheck_program(std::move(p));

  analysis::LintOptions lopts;
  lopts.limits = AnalysisLimits{2, 1024};
  lopts.device_name = "tiny";
  const std::vector<Diagnostic> ds = analysis::lint_program(p, reg, lopts);
  auto has = [&](const std::string& check) {
    for (const auto& d : ds) {
      if (d.check == check) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("dead-version"));
  EXPECT_TRUE(has("unused-threshold"));
  EXPECT_TRUE(has("dead-binding"));
  EXPECT_EQ(count_at_least(ds, Severity::Error), 0);
  EXPECT_GE(count_at_least(ds, Severity::Warning), 2);

  // After simplify + prune the dead-version finding disappears.
  analysis::simplify_guards(p, reg, lopts.limits);
  p.body = prune_seg_spaces(p.body);
  const std::vector<Diagnostic> after =
      analysis::lint_program(p, reg, lopts);
  for (const auto& d : after) EXPECT_NE(d.check, "dead-version") << d.str();
}

TEST(Lint, FlagsStaticallyOverflowingLocalMemory) {
  Program p;
  p.inputs = {{"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})}};
  p.body = seg1_body(segred0());
  p.size_bounds["m"] = SizeBound{1 << 16, -1};  // >= 512 KiB of scratchpad
  p = typecheck_program(std::move(p));
  analysis::LintOptions lopts;
  lopts.limits = AnalysisLimits{1 << 20, 48 * 1024};
  const std::vector<Diagnostic> ds =
      analysis::lint_program(p, ThresholdRegistry{}, lopts);
  ASSERT_EQ(count_at_least(ds, Severity::Error), 1);
  EXPECT_EQ(ds[0].check, "local-mem-overflow");
  EXPECT_NE(ds[0].path.find("segmap^1"), std::string::npos) << ds[0].path;
}

TEST(Lint, BenchsuiteProgramsHaveNoErrorFindings) {
  // The catalogue's only error severity is local-mem-overflow; no shipped
  // benchmark statically overflows either device profile.
  for (const auto& dev : {device_k40(), device_vega64()}) {
    analysis::LintOptions lopts;
    lopts.limits = analysis::limits_for(dev);
    lopts.device_name = dev.name;
    for (const auto& name : all_benchmark_names()) {
      const Benchmark b = get_benchmark(name);
      const Compiled c = compile(b.program, FlattenMode::Incremental);
      const std::vector<Diagnostic> ds =
          analysis::lint_program(c.flat.program, c.flat.thresholds, lopts);
      EXPECT_EQ(count_at_least(ds, Severity::Error), 0)
          << name << " on " << dev.name << "\n" << diagnostics_str(ds);
    }
  }
}

// ------------------------------------------------------------- diagnostics

TEST(Diagnostics, TextAndJsonRendering) {
  const Diagnostic d{Severity::Warning, "dead-version", "lint",
                     "body.then", "one arm is dead"};
  EXPECT_EQ(d.str(),
            "warning[dead-version] at body.then: one arm is dead");
  const Json j = d.to_json();
  EXPECT_EQ(j.get("severity").as_string(), "warning");
  EXPECT_EQ(j.get("check").as_string(), "dead-version");
  EXPECT_EQ(j.get("path").as_string(), "body.then");
  const std::vector<Diagnostic> ds = {
      d, Diagnostic{Severity::Error, "types", "after pass 'normalize'", "",
                    "boom"}};
  EXPECT_EQ(count_at_least(ds, Severity::Error), 1);
  EXPECT_EQ(count_at_least(ds, Severity::Warning), 2);
  EXPECT_EQ(diagnostics_json(ds).size(), 2u);
}

}  // namespace
}  // namespace incflat
