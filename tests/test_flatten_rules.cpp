// Rule-level tests of the flattening transformation: each of the paper's
// inference rules (Fig. 3 / Fig. 4) is exercised on a minimal program and
// the generated structure plus its semantics are verified.
#include <gtest/gtest.h>

#include "src/flatten/flatten.h"
#include "src/interp/interp.h"
#include "src/ir/builder.h"
#include "src/ir/print.h"
#include "src/ir/traverse.h"
#include "src/ir/typecheck.h"
#include "src/support/rng.h"

namespace incflat {
namespace {

using namespace ib;

Type f32s() { return Type::scalar(Scalar::F32); }

Program make_program(const char* name, std::vector<Param> inputs, ExprP body,
                     std::vector<std::string> extra = {}) {
  Program p;
  p.name = name;
  p.inputs = std::move(inputs);
  p.extra_sizes = std::move(extra);
  p.body = std::move(body);
  return typecheck_program(std::move(p));
}

Value rand_arr(Rng& rng, std::vector<int64_t> shape) {
  Value v = Value::zeros(Scalar::F32, std::move(shape));
  for (int64_t i = 0; i < v.count(); ++i) v.fset(i, rng.uniform(-1, 1));
  return v;
}

/// Flatten in every mode and check value-equality with the source under a
/// few threshold assignments and group limits.
void assert_semantics(const Program& src, const SizeEnv& sizes,
                      const std::vector<Value>& inputs) {
  InterpCtx sctx;
  sctx.sizes = sizes;
  Values want = run_program(sctx, src, inputs);
  for (FlattenMode mode : {FlattenMode::Moderate, FlattenMode::Incremental,
                           FlattenMode::Full}) {
    FlattenResult fr = flatten(src, mode);
    check_level_discipline(fr.program.body);
    for (int64_t t : {int64_t{1}, int64_t{3}, int64_t{1} << 20}) {
      InterpCtx ctx = sctx;
      ctx.thresholds.default_threshold = t;
      ctx.max_group_size = t == 3 ? 2 : (int64_t{1} << 30);
      Values got = run_program(ctx, fr.program, inputs);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_TRUE(got[i].approx_equal(want[i], 1e-4))
            << src.name << " mode=" << mode_name(mode) << " t=" << t << "\n"
            << pretty(fr.program);
      }
    }
  }
}

// --------------------------------------------------------------- Rule G2

TEST(RuleG2, MapWithSequentialBodyBecomesOneSegmap) {
  // map (\x -> x*x+1) xs
  Program p = make_program(
      "g2", {{"xs", Type::array(Scalar::F32, {Dim::v("n")})}},
      map1(lam({ib::p("x", f32s())},
               add(mul(var("x"), var("x")), cf32(1))),
           var("xs")));
  FlattenResult fr = flatten(p, FlattenMode::Incremental);
  // No inner parallelism: exactly one segmap, no thresholds.
  EXPECT_EQ(count_segops(fr.program.body), 1);
  EXPECT_EQ(fr.thresholds.size(), 0u);

  Rng rng(3);
  assert_semantics(p, {{"n", 7}}, {rand_arr(rng, {7})});
}

// --------------------------------------------------------------- Rule G3

TEST(RuleG3, NestedMapProducesGuardedVersions) {
  // map (\xs -> map (\x -> x+1) xs) xss
  Program p = make_program(
      "g3",
      {{"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})}},
      map1(lam({ib::p("xs", Type())},
               map1(lam({ib::p("x", f32s())}, add(var("x"), cf32(1))),
                    var("xs"))),
           var("xss")));
  FlattenResult fr = flatten(p, FlattenMode::Incremental);
  // Three versions: outer-only, intra-group, fully flattened.
  EXPECT_EQ(fr.thresholds.size(), 2u);
  EXPECT_GE(count_segops(fr.program.body), 3);
  // The two thresholds compare Par(Σ') = n and Par(e_middle) = n*m.
  EXPECT_EQ(fr.thresholds.all()[0].par.str(), "n");
  EXPECT_EQ(fr.thresholds.all()[1].par.str(), "m*n");
  // The intra threshold carries the workgroup-fit bound m.
  EXPECT_EQ(fr.thresholds.all()[1].fit.str(), "m");

  Rng rng(4);
  assert_semantics(p, {{"n", 3}, {"m", 5}}, {rand_arr(rng, {3, 5})});
}

TEST(RuleG3, ModerateProducesNoGuards) {
  Program p = make_program(
      "g3mf",
      {{"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})}},
      map1(lam({ib::p("xs", Type())},
               map1(lam({ib::p("x", f32s())}, add(var("x"), cf32(1))),
                    var("xs"))),
           var("xss")));
  FlattenResult fr = flatten(p, FlattenMode::Moderate);
  EXPECT_EQ(fr.thresholds.size(), 0u);
  EXPECT_TRUE(collect_thresholds(fr.program.body).empty());
}

// --------------------------------------------------------------- Rule G4

TEST(RuleG4, ReduceOfMapInterchanges) {
  // reduce (map (+)) (replicate k 0) zss == map (reduce (+) 0) (transpose)
  Program p = make_program(
      "g4",
      {{"zss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("k")})}},
      reduce(lam({ib::p("as", Type()), ib::p("bs", Type())},
                 map(binlam("+", Scalar::F32), {var("as"), var("bs")})),
             {replicate(Dim::v("k"), cf32(0))}, {var("zss")}));
  FlattenResult fr = flatten(p, FlattenMode::Moderate);
  // After the G4 rewrite the program is a segred over the transpose, not a
  // vector-valued reduction.
  const std::string s = pretty(fr.program);
  EXPECT_NE(s.find("rearrange"), std::string::npos) << s;
  EXPECT_NE(s.find("segred"), std::string::npos) << s;

  Rng rng(5);
  assert_semantics(p, {{"n", 4}, {"k", 3}}, {rand_arr(rng, {4, 3})});
}

// --------------------------------------------------------------- Rule G5

TEST(RuleG5, RearrangeOfBoundVarLiftsToWholeArray) {
  // map transpose xsss == rearrange (0,2,1) xsss — no kernel at all.
  Program p = make_program(
      "g5",
      {{"xsss", Type::array(Scalar::F32,
                            {Dim::v("a"), Dim::v("b"), Dim::v("c")})}},
      map1(lam({ib::p("xs", Type())}, transpose(var("xs"))), var("xsss")));
  FlattenResult fr = flatten(p, FlattenMode::Moderate);
  EXPECT_EQ(count_segops(fr.program.body), 0)
      << pretty(fr.program);  // pure metadata

  Rng rng(6);
  assert_semantics(p, {{"a", 2}, {"b", 3}, {"c", 4}},
                   {rand_arr(rng, {2, 3, 4})});
}

// --------------------------------------------------------------- Rule G6

TEST(RuleG6, DistributionExpandsIntermediateArrays) {
  // map (\xs -> let ys = scan (+) 0 xs in scan (max) -inf ys) xss:
  // the intermediate ys must become a [n][m] array between two kernels.
  Program p = make_program(
      "g6",
      {{"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})}},
      map1(lam({ib::p("xs", Type())},
               let1("ys", scan(binlam("+", Scalar::F32), {cf32(0)},
                               {var("xs")}),
                    scan(binlam("max", Scalar::F32), {cf32(-1e30)},
                         {var("ys")}))),
           var("xss")));
  FlattenResult fr = flatten(p, FlattenMode::Moderate);
  // Moderate flattening distributes into two segscans.
  const std::string s = pretty(fr.program);
  EXPECT_EQ(count_segops(fr.program.body), 2) << s;

  Rng rng(7);
  assert_semantics(p, {{"n", 3}, {"m", 4}}, {rand_arr(rng, {3, 4})});
}

// --------------------------------------------------------------- Rule G7

TEST(RuleG7, LoopInterchangesOutwards) {
  // map (\row0 -> loop row = row0 for i < k do map (*2) row) xss  ==>
  // loop xss' = xss for i < k do (parallel double).  G7 fires because the
  // loop body contains exploitable parallelism (the paper's side
  // condition).
  Program p = make_program(
      "g7",
      {{"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})}},
      map1(lam({ib::p("row0", Type())},
               loop({"row"}, {var("row0")}, "i", var("k"),
                    map1(lam({ib::p("x", f32s())},
                             mul(var("x"), cf32(2))),
                         var("row")))),
           var("xss")),
      {"k"});
  FlattenResult fr = flatten(p, FlattenMode::Moderate);
  // The loop must now be the outermost construct.
  EXPECT_TRUE(fr.program.body->is<LoopE>()) << pretty(fr.program);

  Rng rng(8);
  assert_semantics(p, {{"n", 5}, {"m", 3}, {"k", 3}},
                   {rand_arr(rng, {5, 3})});
}

TEST(RuleG7, SequentialLoopBodyStaysInThread) {
  // Paper side condition: without parallel constructs in the body the loop
  // is NOT interchanged — the whole nest becomes one segmap.
  Program p = make_program(
      "g7s", {{"xs", Type::array(Scalar::F32, {Dim::v("n")})}},
      map1(lam({ib::p("x0", f32s())},
               loop({"x"}, {var("x0")}, "i", var("k"),
                    mul(var("x"), cf32(2)))),
           var("xs")),
      {"k"});
  FlattenResult fr = flatten(p, FlattenMode::Moderate);
  EXPECT_FALSE(fr.program.body->is<LoopE>());
  EXPECT_EQ(count_segops(fr.program.body), 1) << pretty(fr.program);

  Rng rng(8);
  assert_semantics(p, {{"n", 5}, {"k", 3}}, {rand_arr(rng, {5})});
}

TEST(RuleG7, VariantTripCountSequentialises) {
  // Trip count depends on the mapped element (via f2i) — cannot
  // interchange; the nest must be manifested sequentially instead.
  Program p = make_program(
      "g7v", {{"xs", Type::array(Scalar::F32, {Dim::v("n")})}},
      map1(lam({ib::p("x0", f32s())},
               loop({"x"}, {var("x0")}, "i",
                    un("f2i", abs_(var("x0"))),
                    add(var("x"), cf32(1)))),
           var("xs")));
  FlattenResult fr = flatten(p, FlattenMode::Moderate);
  EXPECT_FALSE(fr.program.body->is<LoopE>());
  EXPECT_EQ(count_segops(fr.program.body), 1) << pretty(fr.program);

  Rng rng(9);
  Value xs = Value::zeros(Scalar::F32, {4});
  for (int64_t i = 0; i < 4; ++i) xs.fset(i, static_cast<double>(i) + 0.5);
  assert_semantics(p, {{"n", 4}}, {xs});
}

// --------------------------------------------------------------- Rule G8

TEST(RuleG8, InvariantBranchPushesMapInwards) {
  // map (\xs -> if flag then map(+1) xs else map(*2) xs) xss with invariant
  // flag: incremental flattening hoists the branch above the kernels.
  Program p = make_program(
      "g8",
      {{"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})},
       {"flag", Type::scalar(Scalar::Bool)}},
      map1(lam({ib::p("xs", Type())},
               iff(var("flag"),
                   map1(lam({ib::p("x", f32s())}, add(var("x"), cf32(1))),
                        var("xs")),
                   map1(lam({ib::p("y", f32s())}, mul(var("y"), cf32(2))),
                        var("xs")))),
           var("xss")));
  FlattenResult inc = flatten(p, FlattenMode::Incremental);
  // The top of the flattened body must be the data If on `flag` (after the
  // G3 guards), i.e. both arms contain their own kernels.
  EXPECT_GE(count_segops(inc.program.body), 2) << pretty(inc.program);

  Rng rng(10);
  std::vector<Value> inputs{rand_arr(rng, {3, 4}), Value::scalar_bool(true)};
  assert_semantics(p, {{"n", 3}, {"m", 4}}, inputs);
  inputs[1] = Value::scalar_bool(false);
  assert_semantics(p, {{"n", 3}, {"m", 4}}, inputs);
}

// --------------------------------------------------------------- Rule G9

TEST(RuleG9, RedomapWithInnerParallelismIsVersioned) {
  // map (\xss -> redomap (+) (\row -> reduce (+) 0 row) 0 xss) xsss:
  // the redomap's map function has inner parallelism, so G9 must emit a
  // guarded segred plus a decomposed recursive version.
  Lambda row_sum =
      lam({ib::p("row", Type())},
          reduce(binlam("+", Scalar::F32), {cf32(0)}, {var("row")}));
  Program p = make_program(
      "g9",
      {{"xsss", Type::array(Scalar::F32,
                            {Dim::v("a"), Dim::v("b"), Dim::v("c")})}},
      map1(lam({ib::p("xss", Type())},
               redomap(binlam("+", Scalar::F32), row_sum, {cf32(0)},
                       {var("xss")})),
           var("xsss")));
  FlattenResult fr = flatten(p, FlattenMode::Incremental);
  EXPECT_GE(fr.thresholds.size(), 3u) << fr.thresholds.tree_str();
  const std::string s = pretty(fr.program);
  EXPECT_NE(s.find("segred"), std::string::npos);

  Rng rng(11);
  assert_semantics(p, {{"a", 2}, {"b", 3}, {"c", 4}},
                   {rand_arr(rng, {2, 3, 4})});
}

TEST(RuleG9, RedomapWithoutInnerParallelismIsDirectSegred) {
  // The "not-shown rule": no versioning needed.
  Lambda sq = lam({ib::p("x", f32s())}, mul(var("x"), var("x")));
  Program p = make_program(
      "g9d", {{"xs", Type::array(Scalar::F32, {Dim::v("n")})}},
      redomap(binlam("+", Scalar::F32), sq, {cf32(0)}, {var("xs")}));
  FlattenResult fr = flatten(p, FlattenMode::Incremental);
  EXPECT_EQ(fr.thresholds.size(), 0u);
  EXPECT_EQ(count_segops(fr.program.body), 1);

  Rng rng(12);
  assert_semantics(p, {{"n", 6}}, {rand_arr(rng, {6})});
}

// ------------------------------------------------------- structural passes

TEST(Prune, DeadSpaceBindingsAreRemoved) {
  // LocVolCalib-style: after G7+G6, manifested kernels must not bind the
  // arrays their bodies do not use.
  Program p = make_program(
      "prune",
      {{"ass", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})},
       {"bss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})}},
      map(lam({ib::p("as", Type()), ib::p("bs", Type())},
              tuple({scan(binlam("+", Scalar::F32), {cf32(0)}, {var("as")}),
                     scan(binlam("+", Scalar::F32), {cf32(0)},
                          {var("bs")})})),
          {var("ass"), var("bss")}));
  FlattenResult fr = flatten(p, FlattenMode::Moderate);
  // Each segscan must bind exactly its own input chain (one param per
  // level), not the sibling's.
  std::function<void(const ExprP&)> walk = [&](const ExprP& e) {
    if (!e) return;
    if (auto* so = e->as<SegOpE>()) {
      for (const auto& lvl : so->space) {
        EXPECT_LE(lvl.params.size(), 1u) << pretty(fr.program);
      }
      return;
    }
    if (auto* l = e->as<LetE>()) {
      walk(l->rhs);
      walk(l->body);
    } else if (auto* t = e->as<TupleE>()) {
      for (const auto& x : t->elems) walk(x);
    }
  };
  walk(fr.program.body);

  Rng rng(13);
  assert_semantics(p, {{"n", 3}, {"m", 4}},
                   {rand_arr(rng, {3, 4}), rand_arr(rng, {3, 4})});
}

TEST(ChainCollapse, IdentityNestEmitsNoCopyKernel) {
  // map (\x0 -> loop x = x0 for i < k do x) xs — the loop body returns its
  // state unchanged; flattening must not emit per-iteration copy kernels.
  Program p = make_program(
      "ident", {{"xs", Type::array(Scalar::F32, {Dim::v("n")})}},
      map1(lam({ib::p("x0", f32s())},
               loop({"x"}, {var("x0")}, "i", var("k"),
                    let1("y",
                         map1(lam({ib::p("q", f32s())}, var("q")),
                              iota(Dim::c(1))),
                         var("x")))),
           var("xs")),
      {"k"});
  // (The inner dummy map keeps the body parallel so G7 fires.)
  FlattenResult fr = flatten(p, FlattenMode::Moderate);
  Rng rng(14);
  assert_semantics(p, {{"n", 4}, {"k", 2}}, {rand_arr(rng, {4})});
}

}  // namespace
}  // namespace incflat
