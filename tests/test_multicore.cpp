// The paper's closing remark made concrete: the flattening rules and the
// tuning machinery are hardware-agnostic, so retargeting only means
// swapping the device profile.  On a SIMD-multicore profile, saturation is
// reached at ~512 threads instead of ~2^15, and the tuner's version
// selection shifts accordingly — with zero compiler changes.
#include <gtest/gtest.h>

#include "src/autotune/autotune.h"
#include "src/benchsuite/benchmark.h"
#include "src/flatten/flatten.h"

namespace incflat {
namespace {

TEST(Multicore, ProfileIsSaturatedByFarFewerThreads) {
  const DeviceProfile mc = device_multicore();
  EXPECT_LT(mc.saturation_threads, device_k40().saturation_threads / 32);
  EXPECT_LT(mc.max_group_size, 64);  // SIMD width, not a workgroup
}

TEST(Multicore, CostModelRunsUnchanged) {
  Benchmark b = get_benchmark("matmul");
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile mc = device_multicore();
  for (const auto& d : b.datasets) {
    RunEstimate est = estimate_run(mc, inc.program, d.sizes, {});
    EXPECT_GT(est.time_us, 0) << d.name;
  }
}

TEST(Multicore, OuterParallelismSufficesMuchEarlier) {
  // On the GPU, a 256-row matmul cannot saturate with outer parallelism
  // alone; on the multicore it can.  The tuned programs must diverge:
  // the multicore picks an outer (or version-2) mapping for shapes where
  // the K40 still needs the fully flattened version.
  Benchmark b = get_benchmark("matmul");
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  std::vector<TuningDataset> train = {
      {"mid", {{"n", 32}, {"m", 1024}, {"k", 32}}, 1.0},
  };
  const DeviceProfile k40 = device_k40();
  const DeviceProfile mc = device_multicore();
  TuningReport rk = exhaustive_tune(k40, inc.program, inc.thresholds, train);
  TuningReport rm = exhaustive_tune(mc, inc.program, inc.thresholds, train);
  // 32*32 = 1024 threads: double the multicore's saturation point, a
  // thirtieth of the K40's.
  RunEstimate ek = estimate_run(k40, inc.program, train[0].sizes, rk.best);
  RunEstimate em = estimate_run(mc, inc.program, train[0].sizes, rm.best);
  // A "suff_outer_par" guard firing means the tuned program declared the
  // outer parallelism sufficient and sequentialised the rest.
  auto outer_sequentialised = [](const RunEstimate& e) {
    for (const auto& [name, taken] : e.guards) {
      if (taken && name.find("outer") != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(outer_sequentialised(em))
      << "multicore should settle for outer parallelism at 1024 threads";
  EXPECT_FALSE(outer_sequentialised(ek))
      << "K40 should keep exploiting inner parallelism at this size";
}

TEST(Multicore, TuningImprovesOrMatchesDefaultEverywhere) {
  const DeviceProfile mc = device_multicore();
  for (const auto& name : all_benchmark_names()) {
    Benchmark b = get_benchmark(name);
    FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
    std::vector<TuningDataset> train;
    for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});
    TuningReport rep =
        exhaustive_tune(mc, inc.program, inc.thresholds, train);
    EXPECT_LE(rep.best_cost_us, rep.default_cost_us * 1.0001) << name;
  }
}

}  // namespace
}  // namespace incflat
