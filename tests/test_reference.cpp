// Unit tests: the hand-written-reference cost models — basic sanity
// (finite, positive, monotone in problem size) and the paper-sourced
// qualitative properties each model encodes.
#include <gtest/gtest.h>

#include "src/benchsuite/reference.h"

namespace incflat {
namespace {

const DeviceProfile k40 = device_k40();
const DeviceProfile vega = device_vega64();

TEST(ReferenceGemm, PositiveAndMonotoneInWork) {
  const double t1 = reference_gemm(k40, 256, 256, 256);
  const double t2 = reference_gemm(k40, 512, 512, 512);
  EXPECT_GT(t1, 0);
  EXPECT_GT(t2, 4 * t1);  // 8x the flops, at least 4x the time
}

TEST(ReferenceGemm, DegenerateShapesPayPadding) {
  // 1 x 2^20 by 2^20 x 1 (a dot product) must be far above the
  // bandwidth-optimal time for the same work (Fig. 2 n<3 behaviour).
  const double degenerate = reference_gemm(k40, 1, 1 << 20, 1);
  const double ideal = 2.0 * 4 * (1 << 20) / k40.gmem_bw;
  EXPECT_GT(degenerate, 3 * ideal);
}

TEST(ReferenceFinPar, AllParallelBeatsOuterOnVegaSmall) {
  // Vega favours local-memory utilisation (Sec. 5.2).
  const SizeEnv small{{"numS", 16}, {"numT", 256}, {"numX", 32},
                      {"numY", 256}};
  EXPECT_LT(reference_finpar_all(vega, small),
            reference_finpar_out(vega, small));
}

TEST(ReferenceFinPar, OuterWinsOnK40Large) {
  const SizeEnv large{{"numS", 256}, {"numT", 64}, {"numX", 256},
                      {"numY", 256}};
  EXPECT_LT(reference_finpar_out(k40, large),
            reference_finpar_all(k40, large));
}

TEST(ReferenceOptionPricing, ManyPathsScaleBetterThanFew) {
  const SizeEnv d1{{"paths", 1048576}, {"dates", 5}, {"und", 32}};
  const SizeEnv d2{{"paths", 500}, {"dates", 367}, {"und", 32}};
  const double t1 = reference_optionpricing(k40, d1);
  const double t2 = reference_optionpricing(k40, d2);
  // D1 has ~37x the work of D2 but full occupancy; per-unit-of-work time
  // must be far lower.
  const double w1 = 1048576.0 * 5 * 32;
  const double w2 = 500.0 * 367 * 32;
  EXPECT_LT(t1 / w1, 0.5 * t2 / w2);
}

TEST(ReferenceCpuReduce, ScalesWithBytes) {
  EXPECT_NEAR(cpu_reduce_cost(2e6), 2 * cpu_reduce_cost(1e6), 1e-9);
  EXPECT_GT(cpu_reduce_cost(4e6), 1000);  // several ms for megabytes
}

TEST(ReferenceRodinia, AllModelsFiniteOnTheirDatasets) {
  EXPECT_GT(reference_rodinia_backprop(
                k40, {{"n_in", 1 << 20}, {"n_out", 16}}), 0);
  EXPECT_GT(reference_rodinia_lavamd(
                k40, {{"boxes", 1000}, {"ppb", 50}, {"nbr", 27}}), 0);
  EXPECT_GT(reference_rodinia_nw(
                k40, {{"nblocks", 128}, {"bsize", 256}, {"waves", 32}}), 0);
  EXPECT_GT(reference_rodinia_nn(k40, {{"nq", 1}, {"npts", 855280}}), 0);
  EXPECT_GT(reference_rodinia_srad(
                k40, {{"nimg", 1}, {"h", 502}, {"w", 458}, {"iters", 8}}),
            0);
  EXPECT_GT(reference_rodinia_pathfinder(
                k40, {{"nbatch", 1}, {"rows", 100}, {"cols", 100000}}), 0);
}

TEST(ReferenceRodinia, BackpropDominatedByCpuReduce) {
  // The CPU leg must dominate the model (that is the paper's explanation
  // for Rodinia's slowdown).
  const SizeEnv sz{{"n_in", 1 << 20}, {"n_out", 16}};
  const double total = reference_rodinia_backprop(k40, sz);
  const double cpu = cpu_reduce_cost(4.0 * 16 * ((1 << 20) / 8.0));
  EXPECT_GT(cpu, 0.5 * total);
}

TEST(ReferenceRodinia, DeviceAffectsRuntime) {
  const SizeEnv sz{{"boxes", 1000}, {"ppb", 50}, {"nbr", 27}};
  EXPECT_NE(reference_rodinia_lavamd(k40, sz),
            reference_rodinia_lavamd(vega, sz));
}

}  // namespace
}  // namespace incflat
