// Golden tests for the pretty-printer: the concrete syntax is the
// debugging surface for the whole compiler, so its shape is pinned here.
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/print.h"
#include "src/ir/typecheck.h"

namespace incflat {
namespace {

using namespace ib;

TEST(Print, Atoms) {
  EXPECT_EQ(pretty(var("x")), "x");
  EXPECT_EQ(pretty(ci64(42)), "42");
  EXPECT_EQ(pretty(ci32(7)), "7i32");
  EXPECT_EQ(pretty(cbool(true)), "true");
  EXPECT_EQ(pretty(cf32(1.5)), "1.5000f32");
  EXPECT_EQ(pretty(cf64(2.0)), "2.0000f64");
}

TEST(Print, Operators) {
  EXPECT_EQ(pretty(add(var("a"), var("b"))), "(a + b)");
  EXPECT_EQ(pretty(exp_(var("a"))), "exp(a)");
  EXPECT_EQ(pretty(min_(ci64(1), ci64(2))), "(1 min 2)");
}

TEST(Print, ArrayOps) {
  EXPECT_EQ(pretty(iota(Dim::v("n"))), "iota n");
  EXPECT_EQ(pretty(replicate(Dim::c(4), cf32(0))),
            "replicate 4 0.0000f32");
  EXPECT_EQ(pretty(transpose(var("m"))), "rearrange (1,0) m");
  EXPECT_EQ(pretty(index(var("a"), {ci64(1), var("j")})), "a[1,j]");
  EXPECT_EQ(pretty(tuple({var("a"), var("b")})), "(a, b)");
}

TEST(Print, Soacs) {
  ExprP m = map1(lam({p("x", Type::scalar(Scalar::F32))},
                     mul(var("x"), var("x"))),
                 var("xs"));
  EXPECT_EQ(pretty(m), "map (\\x -> (x * x)) xs");
  ExprP r = reduce(binlam("+", Scalar::F32), {cf32(0)}, {var("xs")});
  EXPECT_EQ(pretty(r),
            "reduce (\\_x _y -> (_x + _y)) (0.0000f32) xs");
}

TEST(Print, SegOpsShowLevelSpaceAndTiling) {
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"xs"}, {"xss"}, Dim::v("n")},
              SegBind{{"x"}, {"xs"}, Dim::v("m")}};
  so.body = add(var("x"), cf32(1));
  so.block_tiled = true;
  const std::string s = pretty(mk(std::move(so)));
  EXPECT_NE(s.find("segmap^1"), std::string::npos);
  EXPECT_NE(s.find("[tiled]"), std::string::npos);
  EXPECT_NE(s.find("<xs in xss>"), std::string::npos);
  EXPECT_NE(s.find("<x in xs>"), std::string::npos);
}

TEST(Print, ThresholdGuards) {
  ExprP cmp = mk(ThresholdCmpE{"suff_outer_par_0",
                               SizeExpr::of(Dim::v("n")), SizeExpr{}});
  EXPECT_EQ(pretty(cmp), "n >= suff_outer_par_0");
}

TEST(Print, LoopAndLet) {
  ExprP e = let1("a", ci64(1),
                 loop({"x"}, {var("a")}, "i", ci64(3),
                      add(var("x"), var("i"))));
  const std::string s = pretty(e);
  EXPECT_NE(s.find("let a = 1"), std::string::npos);
  EXPECT_NE(s.find("loop x = a for i < 3 do"), std::string::npos);
}

TEST(Print, ProgramHeaderShowsSignature) {
  Program p;
  p.name = "f";
  p.inputs = {{"xs", Type::array(Scalar::F32, {Dim::v("n")})}};
  p.body = var("xs");
  p = typecheck_program(std::move(p));
  const std::string s = pretty(p);
  EXPECT_NE(s.find("def f (xs: [n]f32) ="), std::string::npos);
}

}  // namespace
}  // namespace incflat
