// Unit tests: JSON writer and .tuning file round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/autotune/tuning_file.h"
#include "src/support/error.h"
#include "src/support/json.h"

namespace incflat {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json(true).str(), "true");
  EXPECT_EQ(Json(42).str(), "42");
  EXPECT_EQ(Json(1.5).str(), "1.5");
  EXPECT_EQ(Json("hi").str(), "\"hi\"");
  EXPECT_EQ(Json().str(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").str(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, CompactArraysAndObjects) {
  Json a = Json::array();
  a.push(1).push(2).push("x");
  EXPECT_EQ(a.str(-1), "[1,2,\"x\"]");
  Json o = Json::object();
  o.set("k", 1).set("s", "v");
  EXPECT_EQ(o.str(-1), "{\"k\":1,\"s\":\"v\"}");
}

TEST(Json, SetOverwritesExistingKey) {
  Json o = Json::object();
  o.set("k", 1).set("k", 2);
  EXPECT_EQ(o.str(-1), "{\"k\":2}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().str(-1), "[]");
  EXPECT_EQ(Json::object().str(-1), "{}");
}

TEST(Json, NestedIndentedOutput) {
  Json o = Json::object();
  Json inner = Json::array();
  inner.push(1);
  o.set("xs", std::move(inner));
  EXPECT_EQ(o.str(2), "{\n  \"xs\": [\n    1\n  ]\n}");
}

TEST(Json, PushOnNonArrayThrows) {
  Json o = Json::object();
  EXPECT_THROW(o.push(1), std::logic_error);
  Json a = Json::array();
  EXPECT_THROW(a.set("k", 1), std::logic_error);
}

TEST(TuningFile, RoundTripsAssignments) {
  ThresholdEnv env;
  env.default_threshold = 1 << 14;
  env.values = {{"suff_outer_par_0", 128}, {"suff_intra_par_1", 1 << 20}};
  ThresholdEnv back = tuning_from_string(tuning_to_string(env));
  EXPECT_EQ(back.default_threshold, env.default_threshold);
  EXPECT_EQ(back.values, env.values);
}

TEST(TuningFile, ParsesCommentsAndBlanks) {
  ThresholdEnv env = tuning_from_string(
      "# a comment\n\n  \t\nsuff_outer_par_0=42 # trailing\n");
  EXPECT_EQ(env.values.at("suff_outer_par_0"), 42);
}

TEST(TuningFile, TrimsWhitespaceAroundKeysAndValues) {
  ThresholdEnv env = tuning_from_string(
      "  default = 16\n\t suff_outer_par_0\t=  128  \n");
  EXPECT_EQ(env.default_threshold, 16);
  EXPECT_EQ(env.values.at("suff_outer_par_0"), 128);
}

TEST(TuningFile, RejectsMalformedLines) {
  EXPECT_THROW(tuning_from_string("no_equals_sign\n"), EvalError);
  EXPECT_THROW(tuning_from_string("t0=notanumber\n"), EvalError);
  // A numeric prefix followed by garbage used to be silently accepted.
  EXPECT_THROW(tuning_from_string("t0=16abc\n"), EvalError);
  EXPECT_THROW(tuning_from_string("t0=\n"), EvalError);
  EXPECT_THROW(tuning_from_string("=16\n"), EvalError);
}

TEST(TuningFile, ErrorsNameTheOffendingLine) {
  try {
    tuning_from_string("# fine\nt0=1\nt1=2junk\n");
    FAIL() << "expected EvalError";
  } catch (const EvalError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(TuningFile, ToStringThenFromStringIsIdentity) {
  ThresholdEnv env;
  env.default_threshold = 7;
  env.values = {{"suff_outer_par_0", 1},
                {"suff_intra_par_1", 1 << 30},
                {"t_weird_name", 999}};
  ThresholdEnv back = tuning_from_string(tuning_to_string(env));
  EXPECT_EQ(back.default_threshold, env.default_threshold);
  EXPECT_EQ(back.values, env.values);
  // And once more: serialization of the reparse is a fixed point.
  EXPECT_EQ(tuning_to_string(back), tuning_to_string(env));
}

TEST(TuningFile, SaveAndLoadFile) {
  ThresholdEnv env;
  env.values["t0"] = 7;
  const std::string path = "/tmp/incflat_test.tuning";
  save_tuning(path, env);
  ThresholdEnv back = load_tuning(path);
  EXPECT_EQ(back.values.at("t0"), 7);
  std::remove(path.c_str());
  EXPECT_THROW(load_tuning("/nonexistent/dir/x.tuning"), IoError);
}

TEST(TuningFile, SaveIsAtomicAndLeavesNoTempFile) {
  ThresholdEnv env;
  env.values["t0"] = 7;
  const std::string path = "/tmp/incflat_test_atomic.tuning";
  save_tuning(path, env);
  // The temp file used for the atomic rename must be gone.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  EXPECT_EQ(load_tuning(path).values.at("t0"), 7);
  std::remove(path.c_str());
}

TEST(TuningFile, SaveSurvivesASimulatedPartialWrite) {
  // A crashed earlier save can leave (a) a stray partial .tmp and (b) the
  // destination intact.  The next save must replace both cleanly, and a
  // load between the crash and the re-save must still see the *old*
  // complete file, never a torn one.
  ThresholdEnv old_env;
  old_env.values["t0"] = 7;
  const std::string path = "/tmp/incflat_test_partial.tuning";
  save_tuning(path, old_env);

  {
    // Simulate the crash: a half-written temp file next to the target.
    std::ofstream torn(path + ".tmp");
    torn << "default=32768\nt0=1";  // cut off mid-line, no newline
  }
  EXPECT_EQ(load_tuning(path).values.at("t0"), 7);  // old file untouched

  ThresholdEnv new_env;
  new_env.values["t0"] = 99;
  save_tuning(path, new_env);
  EXPECT_EQ(load_tuning(path).values.at("t0"), 99);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(TuningFile, FailedSaveKeepsTheOldFileAndThrowsIoError) {
  ThresholdEnv env;
  env.values["t0"] = 7;
  EXPECT_THROW(save_tuning("/nonexistent/dir/x.tuning", env), IoError);
}

TEST(TuningFile, TruncatedFileFailsToLoadCleanly) {
  // A file torn mid-token (as a non-atomic writer could leave behind)
  // raises a structured parse error instead of silently loading a wrong
  // assignment.
  const std::string path = "/tmp/incflat_test_torn.tuning";
  {
    std::ofstream f(path);
    f << "default=32768\nt0=12junk";
  }
  EXPECT_THROW(load_tuning(path), EvalError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace incflat
