// The speculative tier (src/plan/specialize.*) and the tiered runtime
// (TieredRuntime): interval meets, specializer refusals, shape-guard
// soundness, deoptimization policy, and THE bit-identity property — across
// the benchsuite, both devices, and randomized dataset streams with
// adversarial shape drift, every tiered run's estimate is bit-identical to
// the always-tree oracle, with at least one specialization and one
// deoptimization actually exercised.  Also covers the golden compatibility
// mode (tiers off == plain fault runtime) and the profile-seeded autotuner.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/range.h"
#include "src/autotune/autotune.h"
#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/exec/runtime.h"
#include "src/gpusim/device.h"
#include "src/gpusim/faults.h"
#include "src/plan/plan.h"
#include "src/plan/specialize.h"
#include "src/profile/profile.h"
#include "src/support/rng.h"

namespace incflat {
namespace {

using analysis::IntInterval;
using analysis::interval_meet;

void expect_same_estimate(const RunEstimate& a, const RunEstimate& b,
                          const std::string& ctx) {
  EXPECT_EQ(a.time_us, b.time_us) << ctx;
  EXPECT_EQ(a.kernel_launches, b.kernel_launches) << ctx;
  EXPECT_EQ(a.total.flops, b.total.flops) << ctx;
  EXPECT_EQ(a.total.gbytes, b.total.gbytes) << ctx;
  EXPECT_EQ(a.total.lbytes, b.total.lbytes) << ctx;
  ASSERT_EQ(a.kernels.size(), b.kernels.size()) << ctx;
  for (size_t i = 0; i < a.kernels.size(); ++i) {
    const std::string kctx = ctx + " kernel #" + std::to_string(i);
    EXPECT_EQ(a.kernels[i].what, b.kernels[i].what) << kctx;
    EXPECT_EQ(a.kernels[i].time_us, b.kernels[i].time_us) << kctx;
    EXPECT_EQ(a.kernels[i].threads, b.kernels[i].threads) << kctx;
    EXPECT_EQ(a.kernels[i].work.flops, b.kernels[i].work.flops) << kctx;
    EXPECT_EQ(a.kernels[i].work.gbytes, b.kernels[i].work.gbytes) << kctx;
    EXPECT_EQ(a.kernels[i].work.lbytes, b.kernels[i].work.lbytes) << kctx;
    EXPECT_EQ(a.kernels[i].used_local_fallback,
              b.kernels[i].used_local_fallback)
        << kctx;
  }
  ASSERT_EQ(a.guards.size(), b.guards.size()) << ctx;
  for (size_t i = 0; i < a.guards.size(); ++i) {
    EXPECT_EQ(a.guards[i].first, b.guards[i].first) << ctx;
    EXPECT_EQ(a.guards[i].second, b.guards[i].second) << ctx;
  }
}

/// Profile `runs` identical descents of `plan` at `sizes` under
/// `thresholds` (enough to stabilize every reached guard).
profile::ExecProfile stable_profile(const KernelPlan& plan,
                                    const DeviceProfile& dev,
                                    const PlanDatasetCache& cache, int runs,
                                    const ThresholdEnv& thresholds) {
  profile::ExecProfile p =
      profile::make_profile(plan, plan.program.name, dev.name);
  for (int i = 0; i < runs; ++i) {
    profile::record_run(p, plan, cache, thresholds);
  }
  return p;
}

// ---------------------------------------------------------------------------
// interval_meet
// ---------------------------------------------------------------------------

TEST(IntervalMeet, MeetsBoundsAndDetectsEmptiness) {
  bool empty = true;
  // top ∩ x = x.
  IntInterval m = interval_meet(IntInterval::top(), IntInterval::range(3, 9),
                                &empty);
  EXPECT_FALSE(empty);
  EXPECT_TRUE(m.lo_finite && m.hi_finite);
  EXPECT_EQ(m.lo, 3);
  EXPECT_EQ(m.hi, 9);

  // Overlapping ranges intersect.
  m = interval_meet(IntInterval::range(1, 5), IntInterval::range(3, 10),
                    &empty);
  EXPECT_FALSE(empty);
  EXPECT_EQ(m.lo, 3);
  EXPECT_EQ(m.hi, 5);

  // Half-open constraints conjoin (the shape-guard case: par >= t with
  // par <= t'-1 from two folds over the same operand).
  IntInterval ge;  // [8, +inf)
  ge.lo_finite = true;
  ge.lo = 8;
  IntInterval le;  // (-inf, 100]
  le.hi_finite = true;
  le.hi = 100;
  m = interval_meet(ge, le, &empty);
  EXPECT_FALSE(empty);
  EXPECT_TRUE(m.lo_finite && m.hi_finite);
  EXPECT_EQ(m.lo, 8);
  EXPECT_EQ(m.hi, 100);

  // Disjoint ranges: empty, and the caller is told.
  interval_meet(IntInterval::range(1, 2), IntInterval::range(5, 9), &empty);
  EXPECT_TRUE(empty);
  interval_meet(IntInterval::point(4), IntInterval::point(5), &empty);
  EXPECT_TRUE(empty);

  // A single shared point is non-empty.
  m = interval_meet(IntInterval::range(1, 5), IntInterval::range(5, 9),
                    &empty);
  EXPECT_FALSE(empty);
  EXPECT_EQ(m.lo, 5);
  EXPECT_EQ(m.hi, 5);
}

// ---------------------------------------------------------------------------
// Specializer refusals
// ---------------------------------------------------------------------------

TEST(Specialize, RefusesUnstableProfilesLegacyPlansAndForeignDevices) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const KernelPlan& plan = *c.plan;
  const DeviceProfile dev = device_k40();
  const PlanDatasetCache cache(plan, dev, b.datasets.at(0).sizes);
  const ThresholdEnv thr;

  // A fresh profile has no streaks: every reachable guard is unstable.
  const profile::ExecProfile fresh =
      profile::make_profile(plan, plan.program.name, dev.name);
  spesh::SpecializeResult r = spesh::specialize_plan(plan, fresh, thr, dev);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("not stable"), std::string::npos) << r.reason;

  // One run short of the hot window still refuses; reaching it specializes.
  spesh::SpecializeOptions opts;
  opts.hot_runs = 4;
  const profile::ExecProfile warm =
      stable_profile(plan, dev, cache, 3, thr);
  EXPECT_FALSE(spesh::specialize_plan(plan, warm, thr, dev, opts).ok);
  const profile::ExecProfile hot = stable_profile(plan, dev, cache, 4, thr);
  EXPECT_TRUE(spesh::specialize_plan(plan, hot, thr, dev, opts).ok);

  // A profile recorded on another device does not transfer (fit decisions
  // are device-dependent).
  profile::ExecProfile foreign = hot;
  foreign.device = "vega64";
  r = spesh::specialize_plan(plan, foreign, thr, dev, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("device"), std::string::npos) << r.reason;

  // Legacy-fallback plans have no traversable tree to specialize.
  KernelPlan legacy = plan;
  legacy.legacy_fallback = true;
  r = spesh::specialize_plan(legacy, hot, thr, dev, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("legacy"), std::string::npos) << r.reason;
}

// ---------------------------------------------------------------------------
// Specialized replay: bit-identity under passing shape guards
// ---------------------------------------------------------------------------

class SpeshSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(SpeshSuite, SpecializedReplayIsBitIdenticalToTheTree) {
  const Benchmark b = get_benchmark(GetParam());
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const KernelPlan& plan = *c.plan;
  if (plan.legacy_fallback) GTEST_SKIP() << "legacy-fallback plan";

  spesh::SpecializeOptions opts;
  opts.hot_runs = 4;
  for (const DeviceProfile& dev : {device_k40(), device_vega64()}) {
    for (const auto& d : b.datasets) {
      const PlanDatasetCache cache(plan, dev, d.sizes);
      const ThresholdEnv thr;
      const profile::ExecProfile prof =
          stable_profile(plan, dev, cache, opts.hot_runs, thr);
      const spesh::SpecializeResult r =
          spesh::specialize_plan(plan, prof, thr, dev, opts);
      if (!r.ok) continue;  // e.g. data-dependent branches: tree-only
      const std::string ctx = b.name + "/" + dev.name + "/" + d.name;
      const spesh::SpecializedPlan& sp = r.plan;
      EXPECT_FALSE(sp.folded_guards.empty() && sp.elided_guards.empty())
          << ctx;
      EXPECT_NE(sp.str().find("folded"), std::string::npos) << ctx;

      // The profiled dataset must pass its own shape guards.
      EXPECT_TRUE(spesh::shape_guards_pass(sp, d.sizes)) << ctx;

      // Estimate, scalar cost and launch schedule are all bit-identical.
      const RunEstimate tree = plan_estimate(plan, cache, thr);
      expect_same_estimate(spesh::spec_estimate(plan, sp, cache), tree, ctx);
      EXPECT_EQ(spesh::spec_cost(plan, sp, cache),
                plan_cost(plan, cache, thr))
          << ctx;
      const auto tree_sched = plan_launch_schedule(plan, cache, thr);
      const auto spec_sched = spesh::spec_launch_schedule(plan, sp, cache);
      ASSERT_EQ(spec_sched.size(), tree_sched.size()) << ctx;
      for (size_t i = 0; i < spec_sched.size(); ++i) {
        EXPECT_EQ(spec_sched[i].kernel, tree_sched[i].kernel) << ctx;
        EXPECT_EQ(spec_sched[i].what, tree_sched[i].what) << ctx;
        EXPECT_EQ(spec_sched[i].time_us, tree_sched[i].time_us) << ctx;
        EXPECT_EQ(spec_sched[i].launches, tree_sched[i].launches) << ctx;
        // The whole point: no per-entry guard-path copies on the fast tier.
        EXPECT_TRUE(spec_sched[i].guard_path.empty()) << ctx;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SpeshSuite,
                         ::testing::ValuesIn(all_benchmark_names()),
                         [](const auto& info) { return info.param; });

// Shape-guard soundness: on randomized drifted datasets, whenever the
// guards pass the replay is bit-identical; whenever the descent would
// decide differently than the speculation, the guards must fail.
TEST(ShapeGuards, PassImpliesBitIdentityFailCatchesEveryFlip) {
  const Benchmark b = bench_heston();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const KernelPlan& plan = *c.plan;
  ASSERT_FALSE(plan.legacy_fallback);
  const DeviceProfile dev = device_k40();
  const SizeEnv base = b.datasets.at(0).sizes;
  const ThresholdEnv thr;

  spesh::SpecializeOptions opts;
  opts.hot_runs = 4;
  const PlanDatasetCache base_cache(plan, dev, base);
  const profile::ExecProfile prof =
      stable_profile(plan, dev, base_cache, opts.hot_runs, thr);
  const spesh::SpecializeResult r =
      spesh::specialize_plan(plan, prof, thr, dev, opts);
  ASSERT_TRUE(r.ok) << r.reason;
  const spesh::SpecializedPlan& sp = r.plan;

  // The speculated guard decisions, read off the profiled descent.
  const RunEstimate base_est = plan_estimate(plan, base_cache, thr);

  Rng rng(0xd61f7);
  int passed = 0, failed = 0;
  for (int it = 0; it < 60; ++it) {
    SizeEnv drifted = base;
    for (auto& [name, value] : drifted) {
      // Scale each size by 2^e, e in [-10, 2]: adversarial shrinks cross
      // the threshold boundaries, mild growth stays within them.
      const int e = static_cast<int>(rng.uniform_int(-10, 2));
      value = std::max<int64_t>(1, e < 0 ? value >> -e : value << e);
    }
    const PlanDatasetCache cache(plan, dev, drifted);
    const RunEstimate tree = plan_estimate(plan, cache, thr);
    const bool pass = spesh::shape_guards_pass(sp, drifted);
    const std::string ctx = "iteration " + std::to_string(it);
    if (pass) {
      ++passed;
      expect_same_estimate(spesh::spec_estimate(plan, sp, cache), tree, ctx);
    } else {
      ++failed;
    }
    // Contrapositive: a decision flip must never slip past the guards.
    if (tree.guards != base_est.guards) {
      EXPECT_FALSE(pass) << ctx << ": guard decisions flipped ("
                         << tree.guards.size() << " guards) but the shape "
                         << "guards still passed";
    }
  }
  // The drift distribution must exercise both outcomes for the test to
  // mean anything.
  EXPECT_GT(passed, 0);
  EXPECT_GT(failed, 0);

  // A failed dispatch reports which guard broke.
  const spesh::ShapeGuard* broke = nullptr;
  SizeEnv tiny = base;
  for (auto& [name, value] : tiny) value = 1;
  if (!spesh::shape_guards_pass(sp, tiny, &broke)) {
    ASSERT_NE(broke, nullptr);
    EXPECT_FALSE(broke->why.empty());
  }
}

// ---------------------------------------------------------------------------
// Tiered runtime: dispatch, deopt policy, fault composition
// ---------------------------------------------------------------------------

TEST(TieredRuntime, SpecializesAfterTheHotWindowAndDispatchesToTier2) {
  const Benchmark b = bench_heston();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = b.datasets.at(0).sizes;

  TierPolicy tp;
  tp.hot_runs = 4;
  TieredRuntime rt(dev, *c.plan, tp);
  for (int i = 1; i <= 10; ++i) {
    FaultPlan faults;
    const TieredOutcome t = rt.run(sizes, {}, faults);
    ASSERT_TRUE(t.run.ok) << "run " << i;
    EXPECT_FALSE(t.deopted) << "run " << i;
    // Specialization lands after `hot_runs` recorded runs; every later run
    // dispatches to the specialized schedule.
    EXPECT_EQ(t.specialized, i > 4) << "run " << i;
  }
  EXPECT_EQ(rt.stats().tree_runs, 4);
  EXPECT_EQ(rt.stats().spec_runs, 6);
  EXPECT_EQ(rt.stats().specializations, 1);
  EXPECT_EQ(rt.stats().deopts, 0);
  ASSERT_NE(rt.specialized(), nullptr);
  EXPECT_NE(rt.deopt_stats().find("spesh"), std::string::npos);
}

TEST(TieredRuntime, ThresholdChangeDeoptimizesAndDampsRespecialization) {
  const Benchmark b = bench_heston();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = b.datasets.at(0).sizes;

  TierPolicy tp;
  tp.hot_runs = 3;
  TieredRuntime rt(dev, *c.plan, tp);
  for (int i = 0; i < 5; ++i) {
    FaultPlan faults;
    rt.run(sizes, {}, faults);
  }
  ASSERT_NE(rt.specialized(), nullptr);

  // A different threshold assignment invalidates the frozen specialization.
  ThresholdEnv other;
  other.default_threshold = 1;
  FaultPlan faults;
  const TieredOutcome t = rt.run(sizes, other, faults);
  ASSERT_TRUE(t.run.ok);
  EXPECT_TRUE(t.deopted);
  EXPECT_FALSE(t.specialized);
  EXPECT_NE(t.deopt_reason.find("threshold"), std::string::npos)
      << t.deopt_reason;
  EXPECT_EQ(rt.specialized(), nullptr);
  EXPECT_EQ(rt.stats().deopts, 1);
  EXPECT_GE(rt.stats().invalidations, 1);

  // Damping: re-specializing needs a full fresh window, not one run.
  for (int i = 0; i < 2; ++i) {
    FaultPlan f2;
    const TieredOutcome u = rt.run(sizes, other, f2);
    EXPECT_FALSE(u.specialized);
  }
  for (int i = 0; i < 2; ++i) {
    FaultPlan f2;
    rt.run(sizes, other, f2);
  }
  EXPECT_NE(rt.specialized(), nullptr) << "fresh stability window ignored";
}

TEST(TieredRuntime, PersistentFaultOnTier2DeoptsAndAccountsTheDebris) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = b.datasets.at(0).sizes;

  TierPolicy tp;
  tp.hot_runs = 3;
  TieredRuntime rt(dev, *c.plan, tp);
  for (int i = 0; i < 4; ++i) {
    FaultPlan faults;
    const TieredOutcome t = rt.run(sizes, {}, faults);
    ASSERT_TRUE(t.run.ok);
  }
  ASSERT_NE(rt.specialized(), nullptr);

  // The next run's first launch alloc-fails: persistent on the specialized
  // tier, so it deoptimizes mid-run and the tree rerun (whose own first
  // consultation is past the scripted index) completes — with the wasted
  // specialized attempt carried in the overhead, never dropped.
  FaultPlan faults;
  faults.script(0, FaultKind::LocalAllocFailed);
  const TieredOutcome t = rt.run(sizes, {}, faults);
  ASSERT_TRUE(t.run.ok);
  EXPECT_TRUE(t.deopted);
  EXPECT_FALSE(t.specialized);
  EXPECT_NE(t.deopt_reason.find("persistent fault"), std::string::npos)
      << t.deopt_reason;
  EXPECT_GE(t.run.faults, 1);
  EXPECT_GT(t.run.overhead_us, 0) << "specialized debris vanished";
  EXPECT_EQ(rt.specialized(), nullptr);
  EXPECT_EQ(rt.stats().deopts, 1);
  ASSERT_FALSE(t.run.events.empty());
  EXPECT_EQ(t.run.events.front().action, "deopt");
}

TEST(TieredRuntime, DegradationInvalidatesSpecializationAndResetsStreaks) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = b.datasets.at(0).sizes;

  TierPolicy tp;
  tp.hot_runs = 3;
  TieredRuntime rt(dev, *c.plan, tp);
  for (int i = 0; i < 4; ++i) {
    FaultPlan faults;
    ASSERT_TRUE(rt.run(sizes, {}, faults).run.ok);
  }
  ASSERT_NE(rt.specialized(), nullptr);

  // Two scripted alloc failures: the first kills the specialized attempt
  // (deopt), the second hits the tree rerun and degrades it.  A degraded
  // run must not feed the profile, and no specialization survives it.
  FaultPlan faults;
  faults.script(0, FaultKind::LocalAllocFailed);
  faults.script(1, FaultKind::LocalAllocFailed);
  const TieredOutcome t = rt.run(sizes, {}, faults);
  ASSERT_TRUE(t.run.ok);
  EXPECT_TRUE(t.deopted);
  EXPECT_GE(t.run.degradations, 1);
  EXPECT_EQ(rt.specialized(), nullptr)
      << "a specialized plan survived a degradation";
  for (const auto& g : rt.prof().guards) {
    EXPECT_EQ(g.streak, 0) << "streaks not reset after degradation";
  }
}

// ---------------------------------------------------------------------------
// Golden compatibility: tiers off == the plain fault runtime
// ---------------------------------------------------------------------------

TEST(TieredRuntime, TiersOffIsBitIdenticalToThePlainRuntime) {
  TierPolicy off;
  off.profile = false;
  off.specialize = false;
  for (const auto& name : all_benchmark_names()) {
    const Benchmark b = get_benchmark(name);
    const Compiled c = compile(b.program, FlattenMode::Incremental);
    for (const DeviceProfile& dev : {device_k40(), device_vega64()}) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        const std::string ctx =
            name + "/" + dev.name + " seed " + std::to_string(seed);
        const FaultSpec spec = parse_fault_spec("all=0.05");
        FaultPlan plain_faults(spec, seed);
        FaultPlan tiered_faults(spec, seed);
        const RunOutcome plain = run_with_faults(
            dev, c, b.test_sizes, {}, plain_faults, off.run);
        TieredRuntime rt(dev, *c.plan, off);
        const TieredOutcome t = rt.run(b.test_sizes, {}, tiered_faults);
        EXPECT_FALSE(t.specialized) << ctx;
        EXPECT_FALSE(t.deopted) << ctx;
        EXPECT_EQ(t.run.ok, plain.ok) << ctx;
        EXPECT_EQ(t.run.time_us, plain.time_us) << ctx;
        EXPECT_EQ(t.run.overhead_us, plain.overhead_us) << ctx;
        EXPECT_EQ(t.run.faults, plain.faults) << ctx;
        EXPECT_EQ(t.run.retries, plain.retries) << ctx;
        EXPECT_EQ(t.run.degradations, plain.degradations) << ctx;
        EXPECT_EQ(t.run.degraded, plain.degraded) << ctx;
        EXPECT_EQ(t.run.thresholds.values, plain.thresholds.values) << ctx;
        if (plain.ok) {
          expect_same_estimate(t.run.estimate, plain.estimate, ctx);
        }
        EXPECT_EQ(rt.prof().runs, 0) << ctx << ": profiling not off";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// THE acceptance property: randomized drifting streams, both devices,
// whole benchsuite — bit-identical to always-tree, with specializations
// and deopts actually exercised.
// ---------------------------------------------------------------------------

TEST(TieredRuntime, DriftingStreamsStayBitIdenticalToTheTreeOracle) {
  int64_t total_specializations = 0;
  int64_t total_deopts = 0;
  int64_t total_spec_runs = 0;

  Rng rng(0x57e91);
  for (const auto& name : all_benchmark_names()) {
    const Benchmark b = get_benchmark(name);
    const Compiled c = compile(b.program, FlattenMode::Incremental);
    const KernelPlan& plan = *c.plan;
    if (plan.legacy_fallback) continue;
    for (const DeviceProfile& dev : {device_k40(), device_vega64()}) {
      TierPolicy tp;
      tp.hot_runs = 3;
      TieredRuntime rt(dev, plan, tp);
      const ThresholdEnv thr;

      // A 24-run stream: stretches of the stable Table 1 dataset, broken by
      // adversarial drift — the other dataset, interpreter-tiny sizes, and
      // random power-of-two rescalings.
      const SizeEnv stable = b.datasets.at(0).sizes;
      for (int i = 0; i < 24; ++i) {
        SizeEnv sizes = stable;
        if (i >= 8 && rng.flip(0.25)) {
          const int pick = static_cast<int>(rng.uniform_int(0, 2));
          if (pick == 0 && b.datasets.size() > 1) {
            sizes = b.datasets.at(1).sizes;
          } else if (pick == 1) {
            sizes = b.test_sizes;
          } else {
            for (auto& [n, v] : sizes) {
              const int e = static_cast<int>(rng.uniform_int(-8, 1));
              v = std::max<int64_t>(1, e < 0 ? v >> -e : v << e);
            }
          }
        }
        FaultPlan faults;
        const TieredOutcome t = rt.run(sizes, thr, faults);
        const std::string ctx = name + "/" + dev.name + " run " +
                                std::to_string(i) +
                                (t.specialized ? " (spesh)" : " (tree)");
        ASSERT_TRUE(t.run.ok) << ctx;
        // The oracle: a plain tree descent of the same plan.
        expect_same_estimate(t.run.estimate,
                             plan_estimate_run(plan, dev, sizes, thr), ctx);
      }

      // A threshold flip after a stable tail guarantees a deopt wherever a
      // specialization is live.
      for (int i = 0; i < 4; ++i) {
        FaultPlan faults;
        rt.run(stable, thr, faults);
      }
      ThresholdEnv flipped;
      flipped.default_threshold = 1;
      FaultPlan faults;
      const TieredOutcome t = rt.run(stable, flipped, faults);
      ASSERT_TRUE(t.run.ok) << name << "/" << dev.name;
      expect_same_estimate(
          t.run.estimate, plan_estimate_run(plan, dev, stable, flipped),
          name + "/" + dev.name + " threshold flip");

      total_specializations += rt.stats().specializations;
      total_deopts += rt.stats().deopts;
      total_spec_runs += rt.stats().spec_runs;
    }
  }

  // The stream must actually exercise the tiers, or the identity above is
  // vacuous.
  EXPECT_GE(total_specializations, 1) << "no plan ever specialized";
  EXPECT_GE(total_deopts, 1) << "no run ever deoptimized";
  EXPECT_GE(total_spec_runs, 1) << "the specialized tier never ran";
}

// ---------------------------------------------------------------------------
// Profile-seeded autotuning
// ---------------------------------------------------------------------------

TEST(ProfileSeededTuning, ColdThresholdsArePrunedAndResultsStayValid) {
  const Benchmark b = bench_heston();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const KernelPlan& plan = *c.plan;
  const DeviceProfile dev = device_k40();
  std::vector<TuningDataset> train;
  for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});

  // Profile the training workloads under the default assignment: nested
  // guards under never-taken branches stay cold.
  profile::ExecProfile prof =
      profile::make_profile(plan, plan.program.name, dev.name);
  for (const auto& d : train) {
    const PlanDatasetCache cache(plan, dev, d.sizes);
    for (int i = 0; i < 3; ++i) {
      profile::record_run(prof, plan, cache, ThresholdEnv{});
    }
  }
  bool any_cold = false;
  for (const auto& g : prof.guards) any_cold = any_cold || !g.reached();
  ASSERT_TRUE(any_cold) << "fixture lost its cold guards";

  TunerOptions seeded;
  seeded.max_trials = 120;
  seeded.profile = &prof;
  const TuningReport rep =
      autotune(dev, c.flat.program, c.flat.thresholds, train, seeded);
  EXPECT_TRUE(rep.profile_seeded);
  EXPECT_GT(rep.cold_pruned, 0);
  // The reported best cost is a real cost: the legacy walker reprices the
  // returned assignment to the same number, and tuning never loses to the
  // untuned default.
  EXPECT_DOUBLE_EQ(tuning_cost(dev, c.flat.program, train, rep.best),
                   rep.best_cost_us);
  EXPECT_LE(rep.best_cost_us, rep.default_cost_us);

  // Without a profile the same options leave the search unseeded.
  TunerOptions unseeded = seeded;
  unseeded.profile = nullptr;
  const TuningReport plain =
      autotune(dev, c.flat.program, c.flat.thresholds, train, unseeded);
  EXPECT_FALSE(plain.profile_seeded);
  EXPECT_EQ(plain.cold_pruned, 0);
}

}  // namespace
}  // namespace incflat
