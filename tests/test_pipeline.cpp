// The pass-manager pipeline (src/pass/pass.h) against its contract:
//
//  * golden output identity — for every benchsuite program and all three
//    modes, the canned flatten() pipeline, an explicitly composed pass
//    list, and exec::compile() produce the same pretty-printed target IR,
//    the same threshold tree, and bit-identical plan estimates;
//  * --verify-each equivalent: verification passes clean after every pass
//    on the whole suite (and is recorded in PipelineState::history);
//  * registry behaviour: mode_from_name round-trips, unknown pass/mode
//    names fail with messages listing the valid ones, omitting plan-build
//    leaves Compiled::plan null and simulate() falls back to the IR walker.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/gpusim/device.h"
#include "src/ir/print.h"
#include "src/pass/pass.h"
#include "src/support/error.h"

namespace incflat {
namespace {

const std::vector<FlattenMode> kModes{
    FlattenMode::Moderate, FlattenMode::Incremental, FlattenMode::Full};

CompileOptions opts_for(const Benchmark& b, FlattenMode mode) {
  CompileOptions o;
  o.flatten.fuse = mode != FlattenMode::Moderate || b.fuse_moderate;
  return o;
}

TEST(Pipeline, CannedFlattenMatchesExplicitPassComposition) {
  // The refactor's golden identity: flatten() is nothing but the canned
  // pass sequence, so composing the same passes by name must reproduce its
  // output exactly, program for program, mode for mode.
  for (const auto& name : all_benchmark_names()) {
    const Benchmark b = get_benchmark(name);
    for (FlattenMode mode : kModes) {
      CompileOptions o = opts_for(b, mode);
      const FlattenResult canned = flatten(b.program, mode, o.flatten);

      o.passes = {"fusion", "normalize", "transform", "prune-segbinds",
                  "tiling"};
      const Compiled explicit_c = compile(b.program, mode, o);

      EXPECT_EQ(pretty(canned.program), pretty(explicit_c.flat.program))
          << name << " / " << mode_name(mode);
      EXPECT_EQ(canned.thresholds.tree_str(),
                explicit_c.flat.thresholds.tree_str())
          << name << " / " << mode_name(mode);
      EXPECT_EQ(explicit_c.plan, nullptr);  // plan-build was not requested
    }
  }
}

TEST(Pipeline, CompileEstimatesAreBitIdenticalAcrossCompositions) {
  // Plan estimates from the default compile() pipeline equal (double ==)
  // those from an explicitly composed pipeline and from the legacy IR
  // walker, for every benchmark dataset and device.
  for (const auto& name : all_benchmark_names()) {
    const Benchmark b = get_benchmark(name);
    for (FlattenMode mode : {FlattenMode::Moderate, FlattenMode::Incremental}) {
      CompileOptions o = opts_for(b, mode);
      const Compiled canned = compile(b.program, mode, o);
      o.passes = {"fusion", "normalize", "transform", "prune-segbinds",
                  "tiling", "plan-build"};
      const Compiled explicit_c = compile(b.program, mode, o);
      ASSERT_NE(canned.plan, nullptr);
      ASSERT_NE(explicit_c.plan, nullptr);
      for (const auto& dev : {device_k40(), device_vega64()}) {
        for (const auto& d : b.datasets) {
          const RunEstimate a = simulate(dev, canned, d.sizes);
          const RunEstimate c = simulate(dev, explicit_c, d.sizes);
          const RunEstimate w =
              estimate_run(dev, canned.flat.program, d.sizes, {});
          EXPECT_EQ(a.time_us, c.time_us) << name << "/" << d.name;
          EXPECT_EQ(a.time_us, w.time_us) << name << "/" << d.name;
          EXPECT_EQ(a.kernel_launches, w.kernel_launches)
              << name << "/" << d.name;
          EXPECT_EQ(a.total.gbytes, w.total.gbytes) << name << "/" << d.name;
        }
      }
    }
  }
}

TEST(Pipeline, VerifyEachPassesCleanOnWholeSuite) {
  for (const auto& name : all_benchmark_names()) {
    const Benchmark b = get_benchmark(name);
    for (FlattenMode mode : kModes) {
      CompileOptions o = opts_for(b, mode);
      o.verify_each = true;
      EXPECT_NO_THROW(compile(b.program, mode, o))
          << name << " / " << mode_name(mode);
    }
  }
}

TEST(Pipeline, HistoryRecordsPassesAndVerification) {
  const Benchmark b = get_benchmark("matmul");
  PipelineState st;
  st.program = b.program;
  st.mode = FlattenMode::Incremental;
  PassManagerOptions po;
  po.verify_each = true;
  flatten_pipeline(FlattenMode::Incremental).run(st, po);
  ASSERT_EQ(st.history.size(), 5u);
  const std::vector<std::string> expect{"fusion", "normalize", "incremental",
                                        "prune-segbinds", "tiling"};
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(st.history[i].name, expect[i]);
    EXPECT_TRUE(st.history[i].verified);
    EXPECT_GE(st.history[i].wall_us, 0.0);
  }
}

TEST(Pipeline, VerifyEachEnvironmentVariableForcesVerification) {
  ::setenv("INCFLAT_VERIFY_EACH", "1", 1);
  const Benchmark b = get_benchmark("matmul");
  PipelineState st;
  st.program = b.program;
  flatten_pipeline(FlattenMode::Moderate).run(st);
  ::unsetenv("INCFLAT_VERIFY_EACH");
  ASSERT_FALSE(st.history.empty());
  for (const auto& rec : st.history) EXPECT_TRUE(rec.verified);
}

TEST(Pipeline, AfterPassObserverSeesEveryPassInOrder) {
  const Benchmark b = get_benchmark("matmul");
  CompileOptions o;
  std::vector<std::string> seen;
  o.after_pass = [&seen](const std::string& pass, const Program&) {
    seen.push_back(pass);
  };
  compile(b.program, FlattenMode::Incremental, o);
  EXPECT_EQ(seen, (std::vector<std::string>{"fusion", "normalize",
                                            "incremental", "prune-segbinds",
                                            "tiling", "plan-build"}));
}

TEST(Pipeline, MissingPlanBuildFallsBackToWalker) {
  const Benchmark b = get_benchmark("matmul");
  CompileOptions o;
  o.passes = {"fusion", "normalize", "transform", "prune-segbinds", "tiling"};
  const Compiled c = compile(b.program, FlattenMode::Incremental, o);
  EXPECT_EQ(c.plan, nullptr);
  const SizeEnv sizes = b.datasets.front().sizes;
  const RunEstimate via_facade = simulate(device_k40(), c, sizes);
  const RunEstimate via_walker =
      estimate_run(device_k40(), c.flat.program, sizes, {});
  EXPECT_EQ(via_facade.time_us, via_walker.time_us);
}

TEST(Pipeline, ModeFromNameRoundTripsAndRejectsUnknown) {
  for (FlattenMode m : kModes) {
    EXPECT_EQ(mode_from_name(mode_name(m)), m);
  }
  try {
    mode_from_name("agressive");
    FAIL() << "expected CompilerError";
  } catch (const CompilerError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("moderate"), std::string::npos);
    EXPECT_NE(msg.find("incremental"), std::string::npos);
    EXPECT_NE(msg.find("full"), std::string::npos);
  }
}

TEST(Pipeline, UnknownPassNameListsRegistry) {
  try {
    make_pass("constant-folding");
    FAIL() << "expected CompilerError";
  } catch (const CompilerError& e) {
    const std::string msg = e.what();
    for (const auto& n : pass_names()) {
      EXPECT_NE(msg.find(n), std::string::npos) << n;
    }
  }
}

}  // namespace
}  // namespace incflat
