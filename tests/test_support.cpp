// Unit tests: support utilities — table printer, chart renderer, string
// formatting, deterministic RNG, JSON round-trips.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/support/chart.h"
#include "src/support/json.h"
#include "src/support/pool.h"
#include "src/support/rng.h"
#include "src/support/str.h"
#include "src/support/table.h"

namespace incflat {
namespace {

TEST(Table, AlignsColumnsToWidestCell) {
  Table t({"a", "long-header"});
  t.row({"xxxx", "y"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  // Both rows must have the second column starting at the same offset.
  const size_t h = s.find("long-header");
  const size_t v = s.find("y");
  ASSERT_NE(h, std::string::npos);
  ASSERT_NE(v, std::string::npos);
  EXPECT_EQ(h % (s.find('\n') + 1), 6u);  // "xxxx" + 2 spaces
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.row({"1"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

TEST(Chart, RendersAllSeriesOnLogAxis) {
  std::ostringstream os;
  print_log_chart(os,
                  {{"up", 'u', {1, 10, 100, 1000}},
                   {"down", 'd', {1000, 100, 10, 1}}},
                  0, 8);
  const std::string s = os.str();
  EXPECT_NE(s.find("u=up"), std::string::npos);
  EXPECT_NE(s.find("d=down"), std::string::npos);
  // Both glyphs appear at least four times (one per x, plus legend text).
  EXPECT_GE(std::count(s.begin(), s.end(), 'u'), 4);
  EXPECT_GE(std::count(s.begin(), s.end(), 'd'), 4);
}

TEST(Chart, HandlesEmptyAndNonPositive) {
  std::ostringstream os;
  print_log_chart(os, {});
  EXPECT_TRUE(os.str().empty());
  print_log_chart(os, {{"s", 's', {0, -1, 5}}}, 0, 4);
  EXPECT_FALSE(os.str().empty());  // the positive point still renders
}

TEST(Str, Formatting) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_us(12.34), "12.3us");
  EXPECT_EQ(fmt_us(12345.0), "12.35ms");
  EXPECT_EQ(fmt_us(3.2e6), "3.200s");
  EXPECT_EQ(repeat("ab", 3), "ababab");
  EXPECT_EQ(join(std::vector<std::string>{"a", "b"}, ","), "a,b");
}

TEST(Rng, DeterministicAndInRange) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = r.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
    const double d = r.uniform();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, FlipIsRoughlyFair) {
  Rng r(123);
  int heads = 0;
  for (int i = 0; i < 2000; ++i) heads += r.flip() ? 1 : 0;
  EXPECT_GT(heads, 850);
  EXPECT_LT(heads, 1150);
}

TEST(Rng, FullInt64RangeDoesNotDivideByZero) {
  // span == 2^64 used to compute `next() % 0`.  Any draw is in range by
  // construction; the point is that it terminates without UB.
  Rng r(7);
  for (int i = 0; i < 100; ++i) {
    (void)r.uniform_int(std::numeric_limits<int64_t>::min(),
                        std::numeric_limits<int64_t>::max());
  }
}

TEST(Rng, ExtremeBoundsStayInRange) {
  Rng r(11);
  const int64_t lo = std::numeric_limits<int64_t>::min();
  for (int i = 0; i < 200; ++i) {
    const int64_t v = r.uniform_int(lo, lo + 9);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, lo + 9);
  }
  const int64_t hi = std::numeric_limits<int64_t>::max();
  for (int i = 0; i < 200; ++i) {
    const int64_t v = r.uniform_int(hi - 9, hi);
    EXPECT_GE(v, hi - 9);
    EXPECT_LE(v, hi);
  }
}

TEST(Rng, SmallSpanHitsEveryValue) {
  // Rejection sampling must still cover the whole interval.
  Rng r(3);
  bool seen[5] = {};
  for (int i = 0; i < 500; ++i) seen[r.uniform_int(10, 14) - 10] = true;
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(Json, EscapesControlCharactersAndRoundTrips) {
  const std::string nasty = "line\nfeed\ttab\rret\bback\fform\x01unit\"q\\s";
  const std::string out = Json(nasty).str();
  // The serialized form must not contain raw control bytes.
  for (unsigned char c : out) EXPECT_GE(c, 0x20u) << "raw control char in: "
                                                  << out;
  EXPECT_NE(out.find("\\n"), std::string::npos);
  EXPECT_NE(out.find("\\r"), std::string::npos);
  EXPECT_NE(out.find("\\b"), std::string::npos);
  EXPECT_NE(out.find("\\f"), std::string::npos);
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
  EXPECT_EQ(Json::parse(out).as_string(), nasty);
}

TEST(Json, DoubleSerializationRoundTrips) {
  for (double d : {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324, 123456789.123456789,
                   -0.0625, 1e15 + 1, 12345.0, 0.0}) {
    const std::string out = Json(d).str();
    EXPECT_EQ(Json::parse(out).as_double(), d) << "lossy via " << out;
  }
  // Integral doubles keep printing without an exponent or fraction.
  EXPECT_EQ(Json(42.0).str(), "42");
  // Non-finite values are not valid JSON numbers; we emit null.
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).str(), "null");
}

TEST(Json, ParserHandlesEscapesAndStructure) {
  const Json doc = Json::parse(
      R"({"a": [1, 2.5, true, false, null], "s": "x\u0041\n\u00e9\ud83d\ude00"})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get("a").size(), 5u);
  EXPECT_EQ(doc.get("a").at(1).as_double(), 2.5);
  EXPECT_TRUE(doc.get("a").at(2).as_bool());
  EXPECT_TRUE(doc.get("a").at(4).is_null());
  // \u0041 = 'A', \u00e9 = e-acute (2-byte UTF-8), the surrogate pair
  // \ud83d\ude00 decodes to U+1F600 (4-byte UTF-8).
  EXPECT_EQ(doc.get("s").as_string(), "xA\n\xc3\xa9\xf0\x9f\x98\x80");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse("{} junk"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
}

TEST(Json, NumberGrammarFuzzEdges) {
  // Inputs a serving daemon actually receives over the wire: strict RFC 8259
  // grammar, so every one of these near-misses must be rejected rather than
  // silently truncated or misread.
  EXPECT_THROW(Json::parse("+1"), std::runtime_error);     // leading '+'
  EXPECT_THROW(Json::parse("-"), std::runtime_error);      // lone minus
  EXPECT_THROW(Json::parse("--1"), std::runtime_error);
  EXPECT_THROW(Json::parse("01"), std::runtime_error);     // leading zero
  EXPECT_THROW(Json::parse("-01"), std::runtime_error);
  EXPECT_THROW(Json::parse("1."), std::runtime_error);     // empty fraction
  EXPECT_THROW(Json::parse(".5"), std::runtime_error);     // empty integer
  EXPECT_THROW(Json::parse("-.5"), std::runtime_error);
  EXPECT_THROW(Json::parse("1e"), std::runtime_error);     // empty exponent
  EXPECT_THROW(Json::parse("1e+"), std::runtime_error);
  EXPECT_THROW(Json::parse("1e999"), std::runtime_error);  // overflows double
  EXPECT_THROW(Json::parse("[1, +2]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\": 007}"), std::runtime_error);
  // ...while everything the grammar does admit still parses.
  EXPECT_EQ(Json::parse("-0").as_double(), 0.0);
  EXPECT_EQ(Json::parse("0.5").as_double(), 0.5);
  EXPECT_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Json::parse("-1.25e-2").as_double(), -0.0125);
  EXPECT_EQ(Json::parse("1E+2").as_double(), 100.0);
  // Underflow is not an error: subnormal-or-zero is the correct reading.
  EXPECT_NEAR(Json::parse("1e-999").as_double(), 0.0, 1e-300);
}

TEST(Json, NumberRoundTripsExtremeDoubles) {
  for (const double d : {1.7976931348623157e308, 4.9e-324, -2.2250738585072014e-308}) {
    EXPECT_EQ(Json::parse(Json(d).str()).as_double(), d);
  }
}

TEST(Json, NestedDocumentRoundTrips) {
  Json j = Json::object();
  j.set("name", "bench\t1")
      .set("ok", true)
      .set("t", 0.1 + 0.2);
  Json arr = Json::array();
  arr.push(Json(1.0)).push(Json("two")).push(Json());
  j.set("items", std::move(arr));
  const Json back = Json::parse(j.str());
  EXPECT_EQ(back.get("name").as_string(), "bench\t1");
  EXPECT_TRUE(back.get("ok").as_bool());
  EXPECT_EQ(back.get("t").as_double(), 0.1 + 0.2);
  EXPECT_EQ(back.get("items").size(), 3u);
  EXPECT_TRUE(back.get("items").at(2).is_null());
  // Serializing the reparsed document is a fixed point.
  EXPECT_EQ(back.str(), j.str());
}

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  pool.run(64, [&](int i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, SingleFailureRethrowsTheOriginalType) {
  WorkerPool pool(4);
  try {
    pool.run(8, [&](int i) {
      if (i == 3) throw std::invalid_argument("task 3 failed");
    });
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "task 3 failed");
  }
}

TEST(WorkerPool, AggregatesEveryWorkerFailure) {
  // Four tasks on four execution slots rendezvous before throwing, so all
  // of them are in flight when the first failure lands: the pool must
  // collect every one into a single WorkerPoolError instead of dropping
  // all but the first.
  WorkerPool pool(4);
  std::atomic<int> started{0};
  try {
    pool.run(4, [&](int i) {
      ++started;
      while (started.load() < 4) std::this_thread::yield();
      throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected WorkerPoolError";
  } catch (const WorkerPoolError& e) {
    EXPECT_EQ(e.failures(), 4u);
    EXPECT_NE(std::string(e.what()).find("4 tasks failed"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(WorkerPool, StopsDispatchingAfterAFailure) {
  // One early failure cancels the undispatched tail; with 4 workers and
  // 10000 tasks, far fewer than all of them may start.
  WorkerPool pool(4);
  std::atomic<int> started{0};
  EXPECT_THROW(pool.run(10000,
                        [&](int i) {
                          ++started;
                          if (i == 0) throw std::runtime_error("first");
                        }),
               std::runtime_error);
  EXPECT_LT(started.load(), 10000);
}

TEST(WorkerPool, PickWidthClampsZeroHardwareToOne) {
  // hardware_concurrency() == 0 means "not computable"; the derived width
  // must still be a valid pool size, never 0 or negative.
  EXPECT_EQ(WorkerPool::pick_width(0, 0u), 1);
  EXPECT_EQ(WorkerPool::pick_width(-3, 0u), 1);
  EXPECT_EQ(WorkerPool::pick_width(0, 1u), 1);
  EXPECT_EQ(WorkerPool::pick_width(0, 4u), 4);
  EXPECT_EQ(WorkerPool::pick_width(0, 64u), 8);   // capped at 8
  EXPECT_EQ(WorkerPool::pick_width(0, ~0u), 8);   // absurd platform value
  EXPECT_EQ(WorkerPool::pick_width(6, 0u), 6);    // explicit request wins
}

TEST(WorkerPool, ZeroHardwareWidthStillRunsTasks) {
  // The degraded width-1 pool executes inline on the calling thread.
  WorkerPool pool(WorkerPool::pick_width(0, 0u));
  std::atomic<int> ran{0};
  pool.run(16, [&](int) { ++ran; });
  EXPECT_EQ(ran.load(), 16);
}

TEST(WorkerPool, ReentrantRunFailsLoudly) {
  WorkerPool pool(2);
  // run() from inside a task would deadlock on the batch state; it must
  // throw logic_error instead (surfaced through the pool's own error path).
  EXPECT_THROW(pool.run(1, [&](int) { pool.run(1, [](int) {}); }),
               std::logic_error);
  // The pool stays usable after the failed batch.
  std::atomic<int> ran{0};
  pool.run(4, [&](int) { ++ran; });
  EXPECT_EQ(ran.load(), 4);
}

}  // namespace
}  // namespace incflat
