// Unit tests: support utilities — table printer, chart renderer, string
// formatting, deterministic RNG.
#include <gtest/gtest.h>

#include <sstream>

#include "src/support/chart.h"
#include "src/support/rng.h"
#include "src/support/str.h"
#include "src/support/table.h"

namespace incflat {
namespace {

TEST(Table, AlignsColumnsToWidestCell) {
  Table t({"a", "long-header"});
  t.row({"xxxx", "y"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  // Both rows must have the second column starting at the same offset.
  const size_t h = s.find("long-header");
  const size_t v = s.find("y");
  ASSERT_NE(h, std::string::npos);
  ASSERT_NE(v, std::string::npos);
  EXPECT_EQ(h % (s.find('\n') + 1), 6u);  // "xxxx" + 2 spaces
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.row({"1"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

TEST(Chart, RendersAllSeriesOnLogAxis) {
  std::ostringstream os;
  print_log_chart(os,
                  {{"up", 'u', {1, 10, 100, 1000}},
                   {"down", 'd', {1000, 100, 10, 1}}},
                  0, 8);
  const std::string s = os.str();
  EXPECT_NE(s.find("u=up"), std::string::npos);
  EXPECT_NE(s.find("d=down"), std::string::npos);
  // Both glyphs appear at least four times (one per x, plus legend text).
  EXPECT_GE(std::count(s.begin(), s.end(), 'u'), 4);
  EXPECT_GE(std::count(s.begin(), s.end(), 'd'), 4);
}

TEST(Chart, HandlesEmptyAndNonPositive) {
  std::ostringstream os;
  print_log_chart(os, {});
  EXPECT_TRUE(os.str().empty());
  print_log_chart(os, {{"s", 's', {0, -1, 5}}}, 0, 4);
  EXPECT_FALSE(os.str().empty());  // the positive point still renders
}

TEST(Str, Formatting) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_us(12.34), "12.3us");
  EXPECT_EQ(fmt_us(12345.0), "12.35ms");
  EXPECT_EQ(fmt_us(3.2e6), "3.200s");
  EXPECT_EQ(repeat("ab", 3), "ababab");
  EXPECT_EQ(join(std::vector<std::string>{"a", "b"}, ","), "a,b");
}

TEST(Rng, DeterministicAndInRange) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = r.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
    const double d = r.uniform();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, FlipIsRoughlyFair) {
  Rng r(123);
  int heads = 0;
  for (int i = 0; i < 2000; ++i) heads += r.flip() ? 1 : 0;
  EXPECT_GT(heads, 850);
  EXPECT_LT(heads, 1150);
}

}  // namespace
}  // namespace incflat
