// Unit tests: reference interpreter — scalar operators, control flow,
// SOAC semantics (against the paper's equations), and target seg-ops.
#include <gtest/gtest.h>

#include "src/interp/interp.h"
#include "src/ir/builder.h"
#include "src/support/error.h"

namespace incflat {
namespace {

using namespace ib;

Value ev1(const ExprP& e, Env env = {}, InterpCtx ctx = {}) {
  Values vs = eval(ctx, e, env);
  EXPECT_EQ(vs.size(), 1u);
  return vs[0];
}

Value arr_f32(std::initializer_list<double> xs) {
  Value v = Value::zeros(Scalar::F32, {static_cast<int64_t>(xs.size())});
  int64_t i = 0;
  for (double x : xs) v.fset(i++, x);
  return v;
}

// ------------------------------------------------------------- scalar ops

struct BinCase {
  const char* op;
  double a, b, want;
};

class FloatBinOps : public ::testing::TestWithParam<BinCase> {};

TEST_P(FloatBinOps, ComputesExpected) {
  const BinCase c = GetParam();
  Value got = ev1(bin(c.op, cf32(c.a), cf32(c.b)));
  EXPECT_NEAR(got.as_float(), c.want, 1e-9) << c.op;
}

INSTANTIATE_TEST_SUITE_P(
    Table, FloatBinOps,
    ::testing::Values(BinCase{"+", 2, 3, 5}, BinCase{"-", 2, 3, -1},
                      BinCase{"*", 2, 3, 6}, BinCase{"/", 3, 2, 1.5},
                      BinCase{"min", 2, 3, 2}, BinCase{"max", 2, 3, 3},
                      BinCase{"pow", 2, 10, 1024}));

struct IntBinCase {
  const char* op;
  int64_t a, b, want;
};

class IntBinOps : public ::testing::TestWithParam<IntBinCase> {};

TEST_P(IntBinOps, ComputesExpected) {
  const IntBinCase c = GetParam();
  Value got = ev1(bin(c.op, ci64(c.a), ci64(c.b)));
  EXPECT_EQ(got.as_int(), c.want) << c.op;
}

INSTANTIATE_TEST_SUITE_P(
    Table, IntBinOps,
    ::testing::Values(IntBinCase{"+", 2, 3, 5}, IntBinCase{"-", 2, 3, -1},
                      IntBinCase{"*", 4, 3, 12}, IntBinCase{"/", 7, 2, 3},
                      IntBinCase{"%", 7, 2, 1}, IntBinCase{"min", -1, 1, -1},
                      IntBinCase{"max", -1, 1, 1}));

TEST(Interp, Comparisons) {
  EXPECT_TRUE(ev1(lt(ci64(1), ci64(2))).as_bool());
  EXPECT_FALSE(ev1(lt(ci64(2), ci64(2))).as_bool());
  EXPECT_TRUE(ev1(le(ci64(2), ci64(2))).as_bool());
  EXPECT_TRUE(ev1(eq(cf32(1.5), cf32(1.5))).as_bool());
}

TEST(Interp, Logic) {
  EXPECT_TRUE(ev1(bin("&&", cbool(true), cbool(true))).as_bool());
  EXPECT_FALSE(ev1(bin("&&", cbool(true), cbool(false))).as_bool());
  EXPECT_TRUE(ev1(bin("||", cbool(false), cbool(true))).as_bool());
  EXPECT_FALSE(ev1(un("!", cbool(true))).as_bool());
}

TEST(Interp, UnaryOps) {
  EXPECT_NEAR(ev1(exp_(cf32(0))).as_float(), 1.0, 1e-9);
  EXPECT_NEAR(ev1(un("log", cf32(1))).as_float(), 0.0, 1e-9);
  EXPECT_NEAR(ev1(sqrt_(cf32(9))).as_float(), 3.0, 1e-9);
  EXPECT_NEAR(ev1(abs_(cf32(-2))).as_float(), 2.0, 1e-9);
  EXPECT_NEAR(ev1(neg(cf32(2))).as_float(), -2.0, 1e-9);
  EXPECT_NEAR(ev1(un("i2f", ci64(3))).as_float(), 3.0, 1e-9);
  EXPECT_EQ(ev1(un("f2i", cf32(3.7))).as_int(), 3);
}

TEST(Interp, DivisionByZeroThrows) {
  EXPECT_THROW(ev1(divide(ci64(1), ci64(0))), EvalError);
  EXPECT_THROW(ev1(bin("%", ci64(1), ci64(0))), EvalError);
}

// ------------------------------------------------------------ control flow

TEST(Interp, IfSelectsBranch) {
  EXPECT_EQ(ev1(iff(cbool(true), ci64(1), ci64(2))).as_int(), 1);
  EXPECT_EQ(ev1(iff(cbool(false), ci64(1), ci64(2))).as_int(), 2);
}

TEST(Interp, LetBindsMultipleNames) {
  ExprP e = letn({"a", "b"}, tuple({ci64(2), ci64(3)}),
                 mul(var("a"), var("b")));
  EXPECT_EQ(ev1(e).as_int(), 6);
}

TEST(Interp, UnboundVariableThrows) {
  EXPECT_THROW(ev1(var("nope")), EvalError);
}

TEST(Interp, LoopIteratesFixedCount) {
  // loop x = 1 for i < 5 do x * 2  ==>  32
  ExprP e = loop({"x"}, {ci64(1)}, "i", ci64(5), mul(var("x"), ci64(2)));
  EXPECT_EQ(ev1(e).as_int(), 32);
}

TEST(Interp, LoopIndexIsVisible) {
  // loop s = 0 for i < 5 do s + i  ==>  0+1+2+3+4 = 10
  ExprP e = loop({"s"}, {ci64(0)}, "i", ci64(5), add(var("s"), var("i")));
  EXPECT_EQ(ev1(e).as_int(), 10);
}

TEST(Interp, LoopZeroTripsReturnsInit) {
  ExprP e = loop({"x"}, {ci64(7)}, "i", ci64(0), mul(var("x"), ci64(2)));
  EXPECT_EQ(ev1(e).as_int(), 7);
}

// ----------------------------------------------------------------- SOACs

TEST(Interp, MapAppliesElementwise) {
  Env env{{"xs", arr_f32({1, 2, 3})}};
  ExprP e = map1(lam({ib::p("x", Type::scalar(Scalar::F32))},
                     mul(var("x"), cf32(2))),
                 var("xs"));
  EXPECT_TRUE(ev1(e, env).approx_equal(arr_f32({2, 4, 6})));
}

TEST(Interp, MapOverTwoArraysZips) {
  Env env{{"xs", arr_f32({1, 2})}, {"ys", arr_f32({10, 20})}};
  ExprP e = map(binlam("+", Scalar::F32), {var("xs"), var("ys")});
  EXPECT_TRUE(ev1(e, env).approx_equal(arr_f32({11, 22})));
}

TEST(Interp, MapMultiResultProducesTupleOfArrays) {
  // The paper's Sec. 2 example: map (\x y -> (2*x, 3+y)) xs ys.
  Env env{{"xs", arr_f32({1, 2})}, {"ys", arr_f32({10, 20})}};
  ExprP e = map(lam({ib::p("x", Type::scalar(Scalar::F32)),
                     ib::p("y", Type::scalar(Scalar::F32))},
                    tuple({mul(cf32(2), var("x")), add(cf32(3), var("y"))})),
                {var("xs"), var("ys")});
  InterpCtx ctx;
  Values vs = eval(ctx, e, env);
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_TRUE(vs[0].approx_equal(arr_f32({2, 4})));
  EXPECT_TRUE(vs[1].approx_equal(arr_f32({13, 23})));
}

TEST(Interp, ReduceFoldsWithNeutral) {
  Env env{{"xs", arr_f32({1, 2, 3, 4})}};
  ExprP e = reduce(binlam("+", Scalar::F32), {cf32(0)}, {var("xs")});
  EXPECT_NEAR(ev1(e, env).as_float(), 10, 1e-6);
}

TEST(Interp, ScanIsInclusivePrefix) {
  Env env{{"xs", arr_f32({1, 2, 3})}};
  ExprP e = scan(binlam("+", Scalar::F32), {cf32(0)}, {var("xs")});
  EXPECT_TRUE(ev1(e, env).approx_equal(arr_f32({1, 3, 6})));
}

TEST(Interp, RedomapEqualsReduceOfMap) {
  // redomap ⊕ f d xs == reduce ⊕ d (map f xs)  (paper Sec. 2)
  Env env{{"xs", arr_f32({1, 2, 3})}};
  Lambda sq = lam({ib::p("x", Type::scalar(Scalar::F32))},
                  mul(var("x"), var("x")));
  ExprP rm = redomap(binlam("+", Scalar::F32), sq, {cf32(0)}, {var("xs")});
  EXPECT_NEAR(ev1(rm, env).as_float(), 14, 1e-6);
}

TEST(Interp, ScanomapEqualsScanOfMap) {
  Env env{{"xs", arr_f32({1, 2, 3})}};
  Lambda dbl = lam({ib::p("x", Type::scalar(Scalar::F32))},
                   mul(cf32(2), var("x")));
  ExprP sm = scanomap(binlam("+", Scalar::F32), dbl, {cf32(0)}, {var("xs")});
  EXPECT_TRUE(ev1(sm, env).approx_equal(arr_f32({2, 6, 12})));
}

TEST(Interp, ReplicateAndIota) {
  InterpCtx ctx;
  ctx.sizes["n"] = 3;
  Value r = ev1(replicate(Dim::v("n"), cf32(5)), {}, ctx);
  EXPECT_TRUE(r.approx_equal(arr_f32({5, 5, 5})));
  Value io = ev1(iota(Dim::v("n")), {}, ctx);
  EXPECT_EQ(io.iget(0), 0);
  EXPECT_EQ(io.iget(2), 2);
}

TEST(Interp, IndexAndRearrange) {
  Value m = Value::zeros(Scalar::F32, {2, 2});
  m.fset(0, 1);
  m.fset(1, 2);
  m.fset(2, 3);
  m.fset(3, 4);
  Env env{{"m", m}};
  EXPECT_NEAR(ev1(index(var("m"), {ci64(1), ci64(0)}), env).as_float(), 3,
              1e-9);
  Value t = ev1(transpose(var("m")), env);
  EXPECT_NEAR(t.index({0, 1}).as_float(), 3, 1e-9);
}

// -------------------------------------------------------- target seg-ops

TEST(Interp, SegMapMatchesPaperExample) {
  // segmap^1 <xs in xss> <x in xs> (x + 1) on [[1,2],[3,4]] == [[2,3],[4,5]]
  Value xss = Value::zeros(Scalar::F32, {2, 2});
  for (int64_t i = 0; i < 4; ++i) xss.fset(i, static_cast<double>(i + 1));
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"xs"}, {"xss"}, Dim::c(2)},
              SegBind{{"x"}, {"xs"}, Dim::c(2)}};
  so.body = add(var("x"), cf32(1));
  Env env{{"xss", xss}};
  Value out = ev1(mk(std::move(so)), env);
  EXPECT_NEAR(out.index({0, 0}).as_float(), 2, 1e-9);
  EXPECT_NEAR(out.index({1, 1}).as_float(), 5, 1e-9);
}

TEST(Interp, SegScanMatchesPaperExample) {
  // segscan^1 <xs in xss> <x in xs> (+) 0 (x) on [[1,2],[3,4]] ==
  // [[1,3],[3,7]]
  Value xss = Value::zeros(Scalar::F32, {2, 2});
  for (int64_t i = 0; i < 4; ++i) xss.fset(i, static_cast<double>(i + 1));
  SegOpE so;
  so.op = SegOpE::Op::Scan;
  so.level = 1;
  so.space = {SegBind{{"xs"}, {"xss"}, Dim::c(2)},
              SegBind{{"x"}, {"xs"}, Dim::c(2)}};
  so.combine = binlam("+", Scalar::F32);
  so.neutral = {cf32(0)};
  so.body = var("x");
  Env env{{"xss", xss}};
  Value out = ev1(mk(std::move(so)), env);
  EXPECT_NEAR(out.index({0, 1}).as_float(), 3, 1e-9);
  EXPECT_NEAR(out.index({1, 0}).as_float(), 3, 1e-9);
  EXPECT_NEAR(out.index({1, 1}).as_float(), 7, 1e-9);
}

TEST(Interp, SegRedReducesInnermostDim) {
  Value xss = Value::zeros(Scalar::F32, {2, 3});
  for (int64_t i = 0; i < 6; ++i) xss.fset(i, 1.0);
  SegOpE so;
  so.op = SegOpE::Op::Red;
  so.level = 1;
  so.space = {SegBind{{"xs"}, {"xss"}, Dim::c(2)},
              SegBind{{"x"}, {"xs"}, Dim::c(3)}};
  so.combine = binlam("+", Scalar::F32);
  so.neutral = {cf32(0)};
  so.body = var("x");
  Env env{{"xss", xss}};
  Value out = ev1(mk(std::move(so)), env);
  ASSERT_EQ(out.shape(), (std::vector<int64_t>{2}));
  EXPECT_NEAR(out.index({0}).as_float(), 3, 1e-9);
}

// -------------------------------------------------------- guard predicates

TEST(Interp, ThresholdCmpUsesSizesAndAssignment) {
  InterpCtx ctx;
  ctx.sizes = {{"n", 100}};
  ctx.thresholds.values["t0"] = 50;
  ExprP cmp = mk(ThresholdCmpE{"t0", SizeExpr::of(Dim::v("n")), SizeExpr{}});
  EXPECT_TRUE(ev1(cmp, {}, ctx).as_bool());
  ctx.thresholds.values["t0"] = 200;
  EXPECT_FALSE(ev1(cmp, {}, ctx).as_bool());
}

TEST(Interp, ThresholdCmpDefaultsTo2To15) {
  InterpCtx ctx;
  ctx.sizes = {{"n", (1 << 15) + 1}};
  ExprP cmp = mk(ThresholdCmpE{"t0", SizeExpr::of(Dim::v("n")), SizeExpr{}});
  EXPECT_TRUE(ev1(cmp, {}, ctx).as_bool());
  ctx.sizes["n"] = (1 << 15) - 1;
  EXPECT_FALSE(ev1(cmp, {}, ctx).as_bool());
}

TEST(Interp, ThresholdCmpFitConstraintRespectsGroupLimit) {
  InterpCtx ctx;
  ctx.sizes = {{"n", 1 << 20}, {"g", 2048}};
  ctx.thresholds.values["t0"] = 1;
  ctx.max_group_size = 1024;
  ExprP cmp = mk(ThresholdCmpE{"t0", SizeExpr::of(Dim::v("n")),
                               SizeExpr::of(Dim::v("g"))});
  EXPECT_FALSE(ev1(cmp, {}, ctx).as_bool());  // 2048 > 1024: infeasible
  ctx.sizes["g"] = 512;
  EXPECT_TRUE(ev1(cmp, {}, ctx).as_bool());
}

}  // namespace
}  // namespace incflat
