// Integration tests over the whole benchmark suite: every paper program
// must (1) match its independent golden C++ implementation under the
// reference interpreter, and (2) keep its semantics through all three
// flattening modes under arbitrary threshold assignments and workgroup
// limits — the paper's central correctness property.
#include <gtest/gtest.h>

#include <cmath>

#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/flatten/flatten.h"
#include "src/interp/interp.h"
#include "src/ir/traverse.h"
#include "src/ir/print.h"
#include "src/ir/typecheck.h"
#include "src/support/rng.h"

namespace incflat {
namespace {

class BenchSuite : public ::testing::TestWithParam<std::string> {
 protected:
  Benchmark bench() const { return get_benchmark(GetParam()); }
};

TEST_P(BenchSuite, GoldenMatchesInterpreter) {
  Benchmark b = bench();
  ASSERT_TRUE(b.gen_inputs);
  if (!b.golden) GTEST_SKIP() << "no golden for " << b.name;
  Rng rng(7);
  std::vector<Value> inputs = b.gen_inputs(rng, b.test_sizes);
  InterpCtx ctx;
  ctx.sizes = b.test_sizes;
  Values got = run_program(ctx, b.program, inputs);
  Values want = b.golden(b.test_sizes, inputs);
  ASSERT_EQ(got.size(), want.size()) << b.name;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].approx_equal(want[i], 1e-4))
        << b.name << " result " << i << "\n got: " << got[i].str()
        << "\nwant: " << want[i].str();
  }
}

TEST_P(BenchSuite, FlatteningPreservesSemantics) {
  Benchmark b = bench();
  Rng rng(13);
  std::vector<Value> inputs = b.gen_inputs(rng, b.test_sizes);
  InterpCtx sctx;
  sctx.sizes = b.test_sizes;
  Values want = run_program(sctx, b.program, inputs);

  for (FlattenMode mode : {FlattenMode::Moderate, FlattenMode::Incremental,
                           FlattenMode::Full}) {
    FlattenResult fr = flatten(b.program, mode);
    ASSERT_NO_THROW(check_level_discipline(fr.program.body))
        << b.name << " " << mode_name(mode);
    for (int64_t t : {int64_t{1}, int64_t{4}, int64_t{1} << 15}) {
      for (int64_t group : {int64_t{2}, int64_t{1} << 30}) {
        InterpCtx tctx = sctx;
        tctx.thresholds.default_threshold = t;
        tctx.max_group_size = group;
        Values got = run_program(tctx, fr.program, inputs);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_TRUE(got[i].approx_equal(want[i], 1e-4))
              << b.name << " mode=" << mode_name(mode) << " t=" << t
              << " group=" << group;
        }
      }
    }
  }
}

TEST_P(BenchSuite, IncrementalEmitsMoreVersionsThanModerate) {
  Benchmark b = bench();
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  FlattenResult mod = flatten(b.program, FlattenMode::Moderate);
  EXPECT_GE(count_segops(inc.program.body), count_segops(mod.program.body))
      << b.name;
  EXPECT_EQ(mod.thresholds.size(), 0u);
}

TEST_P(BenchSuite, CostModelProducesFiniteTimes) {
  Benchmark b = bench();
  for (FlattenMode mode : {FlattenMode::Moderate, FlattenMode::Incremental,
                           FlattenMode::Full}) {
    FlattenResult fr = flatten(b.program, mode);
    for (const auto& dev : {device_k40(), device_vega64()}) {
      for (const auto& d : b.datasets) {
        RunEstimate est = estimate_run(dev, fr.program, d.sizes, {});
        EXPECT_GT(est.time_us, 0) << b.name << " " << d.name;
        EXPECT_TRUE(std::isfinite(est.time_us)) << b.name << " " << d.name;
        EXPECT_GE(est.kernel_launches, 1) << b.name << " " << d.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchSuite, ::testing::ValuesIn(all_benchmark_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace incflat
