// Unit tests: the exec facade — compile/simulate/execute coherence with
// the underlying APIs, and runtime failure injection in the interpreter.
#include <gtest/gtest.h>

#include "src/exec/exec.h"
#include "src/ir/builder.h"
#include "src/ir/typecheck.h"
#include "src/support/error.h"
#include "src/support/rng.h"

namespace incflat {
namespace {

using namespace ib;

Program square_program() {
  Program p;
  p.name = "sq";
  p.inputs = {{"xs", Type::array(Scalar::F32, {Dim::v("n")})}};
  p.body = map1(lam({ib::p("x", Type::scalar(Scalar::F32))},
                    mul(var("x"), var("x"))),
                var("xs"));
  return typecheck_program(std::move(p));
}

TEST(Exec, CompileMatchesDirectFlatten) {
  Program p = square_program();
  Compiled c = compile(p, FlattenMode::Incremental);
  FlattenResult direct = flatten(p, FlattenMode::Incremental);
  EXPECT_EQ(c.flat.thresholds.size(), direct.thresholds.size());
  EXPECT_EQ(c.mode, FlattenMode::Incremental);
}

TEST(Exec, SimulateEqualsEstimateRun) {
  Compiled c = compile(square_program(), FlattenMode::Moderate);
  const DeviceProfile dev = device_k40();
  const SizeEnv sz{{"n", 4096}};
  EXPECT_EQ(simulate(dev, c, sz).time_us,
            estimate_run(dev, c.flat.program, sz, {}).time_us);
}

TEST(Exec, ExecuteMatchesSourceSemantics) {
  Compiled c = compile(square_program(), FlattenMode::Incremental);
  const SizeEnv sz{{"n", 5}};
  Value xs = Value::zeros(Scalar::F32, {5});
  for (int64_t i = 0; i < 5; ++i) xs.fset(i, static_cast<double>(i));
  Values src = execute_source(c, sz, {xs});
  Values tgt = execute(device_k40(), c, sz, {}, {xs});
  EXPECT_TRUE(tgt[0].approx_equal(src[0]));
}

TEST(Exec, ExecuteRespectsDeviceGroupLimit) {
  // The fit constraint consults the device's max_group_size; both devices
  // must still compute the same values.
  Compiled c = compile(square_program(), FlattenMode::Incremental);
  const SizeEnv sz{{"n", 3}};
  Value xs = Value::zeros(Scalar::F32, {3});
  Values a = execute(device_k40(), c, sz, {}, {xs});
  Values b = execute(device_vega64(), c, sz, {}, {xs});
  EXPECT_TRUE(a[0].approx_equal(b[0]));
}

TEST(Exec, EstimateStrIsInformative) {
  Compiled c = compile(square_program(), FlattenMode::Moderate);
  RunEstimate est = simulate(device_k40(), c, {{"n", 1024}});
  const std::string s = estimate_str(est);
  EXPECT_NE(s.find("launches"), std::string::npos);
  EXPECT_NE(s.find("MB"), std::string::npos);
}

TEST(Exec, InputArityAndShapeChecked) {
  Compiled c = compile(square_program(), FlattenMode::Moderate);
  const SizeEnv sz{{"n", 5}};
  EXPECT_THROW(execute_source(c, sz, {}), EvalError);          // arity
  Value wrong = Value::zeros(Scalar::F32, {4});
  EXPECT_THROW(execute_source(c, sz, {wrong}), EvalError);     // shape
  Value wrong_rank = Value::zeros(Scalar::F32, {5, 1});
  EXPECT_THROW(execute_source(c, sz, {wrong_rank}), EvalError);
}

TEST(Exec, MultiResultProgramsRoundTrip) {
  Program p;
  p.name = "split";
  p.inputs = {{"xs", Type::array(Scalar::F32, {Dim::v("n")})}};
  p.body = map1(lam({ib::p("x", Type::scalar(Scalar::F32))},
                    tuple({add(var("x"), cf32(1)), mul(var("x"), cf32(2))})),
                var("xs"));
  p = typecheck_program(std::move(p));
  Compiled c = compile(p, FlattenMode::Incremental);
  const SizeEnv sz{{"n", 4}};
  Rng rng(2);
  Value xs = Value::zeros(Scalar::F32, {4});
  for (int64_t i = 0; i < 4; ++i) xs.fset(i, rng.uniform(-1, 1));
  Values src = execute_source(c, sz, {xs});
  Values tgt = execute(device_k40(), c, sz, {}, {xs});
  ASSERT_EQ(src.size(), 2u);
  ASSERT_EQ(tgt.size(), 2u);
  EXPECT_TRUE(tgt[0].approx_equal(src[0]));
  EXPECT_TRUE(tgt[1].approx_equal(src[1]));
}

}  // namespace
}  // namespace incflat
