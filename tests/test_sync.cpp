// Tests for the annotated sync layer (src/support/sync.h): primitive
// semantics, the lockdep lock-order validator, and seeded multi-thread
// stress reconstructing the PR-7 trace-flush bug shape.  The stress tests
// double as ThreadSanitizer fodder: the TSan CI job runs this binary.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/support/pool.h"
#include "src/support/sync.h"
#include "src/support/trace.h"

// The deliberate-inversion tests below construct real reverse-order
// acquisitions, which ThreadSanitizer's own potential-deadlock detector
// (watching the same property as lockdep) correctly reports before the
// lockdep assertion can run.  Under TSan those tests are skipped; the
// plain-build CI job asserts the lockdep reports instead.
#if defined(__SANITIZE_THREAD__)
#define INCFLAT_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define INCFLAT_UNDER_TSAN 1
#endif
#endif
#ifndef INCFLAT_UNDER_TSAN
#define INCFLAT_UNDER_TSAN 0
#endif

namespace incflat {
namespace {

using sync::lockdep::Violation;

/// Every lockdep test starts from a clean order graph with the validator
/// on, and leaves it off so unrelated tests pay nothing.  The class
/// registry deliberately survives reset() (ids must stay stable for live
/// mutexes), so tests assert on deltas, not absolute class counts.
class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sync::lockdep::reset();
    sync::lockdep::set_enabled(true);
  }
  void TearDown() override {
    sync::lockdep::set_enabled(false);
    sync::lockdep::reset();
  }
};

TEST(SyncPrimitives, MutexLockUnlockTryLock) {
  sync::Mutex mu("test.basic");
  mu.lock();
  EXPECT_FALSE(mu.try_lock());  // std::mutex: relock of a held lock fails
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncPrimitives, SharedMutexAllowsConcurrentReaders) {
  sync::SharedMutex mu("test.shared");
  mu.lock_shared();
  std::atomic<bool> second_reader_entered{false};
  std::thread t([&] {
    sync::ReaderMutexLock lk(mu);
    second_reader_entered.store(true);
  });
  t.join();
  EXPECT_TRUE(second_reader_entered.load());
  mu.unlock_shared();
  sync::WriterMutexLock wlk(mu);  // and a writer still gets through
}

TEST(SyncPrimitives, CondVarWakesExplicitWaitLoop) {
  sync::Mutex mu("test.cv");
  sync::CondVar cv;
  bool ready = false;
  std::thread t([&] {
    sync::MutexLock lk(mu);
    ready = true;
    cv.notify_one();
  });
  {
    sync::MutexLock lk(mu);
    while (!ready) cv.wait(mu);
  }
  t.join();
  EXPECT_TRUE(ready);
}

TEST(SyncPrimitives, ExclusiveRegionDetectsNestedEntry) {
  sync::ExclusiveRegion region("TestComponent");
  {
    sync::ExclusiveRegion::Scope outer(region);
    // Deterministic misuse: a second entry while the first is live is
    // exactly what two threads racing into a TieredRuntime would do.
    EXPECT_THROW(sync::ExclusiveRegion::Scope inner(region),
                 std::logic_error);
  }
  // The failed entry must not have poisoned the region.
  sync::ExclusiveRegion::Scope again(region);
}

TEST_F(LockdepTest, ConsistentOrderReportsNothing) {
  sync::Mutex a("test.order_a");
  sync::Mutex b("test.order_b");
  for (int i = 0; i < 3; ++i) {
    sync::MutexLock la(a);
    sync::MutexLock lb(b);
  }
  EXPECT_TRUE(sync::lockdep::violations().empty());
  const auto st = sync::lockdep::stats();
  EXPECT_GE(st.acquisitions, 6);
  EXPECT_GE(st.edges, 1);  // a->b observed
}

TEST_F(LockdepTest, InversionIsReportedAtAcquireTimeWithBothChains) {
#if INCFLAT_UNDER_TSAN
  GTEST_SKIP() << "deliberate inversion: TSan's deadlock detector fires first";
#endif
  sync::Mutex a("test.inv_a");
  sync::Mutex b("test.inv_b");
  {
    sync::MutexLock la(a);
    sync::MutexLock lb(b);  // establishes a -> b
  }
  {
    // The inverted order on a *single* thread: no deadlock is possible
    // here, yet lockdep must still report — that is the whole point of
    // detection at acquire time, before an unlucky interleaving hangs.
    sync::MutexLock lb(b);
    sync::MutexLock la(a);  // b -> a closes the cycle
  }
  const std::vector<Violation> vs = sync::lockdep::violations();
  ASSERT_EQ(vs.size(), 1u);
  const Violation& v = vs[0];
  EXPECT_EQ(v.held_class, "test.inv_b");
  EXPECT_EQ(v.acquire_class, "test.inv_a");
  // This thread's chain: what it held walking into the inversion.
  ASSERT_EQ(v.current_chain.size(), 2u);
  EXPECT_EQ(v.current_chain[0], "test.inv_b");
  EXPECT_EQ(v.current_chain[1], "test.inv_a");
  // The historical chain that established the reverse ordering.
  ASSERT_EQ(v.prior_chain.size(), 2u);
  EXPECT_EQ(v.prior_chain[0], "test.inv_a");
  EXPECT_EQ(v.prior_chain[1], "test.inv_b");
  // And the Diagnostic rendering names both.
  const std::string msg = v.str();
  EXPECT_NE(msg.find("test.inv_a"), std::string::npos);
  EXPECT_NE(msg.find("test.inv_b"), std::string::npos);
  EXPECT_NE(msg.find("lock-order-inversion"), std::string::npos);
}

TEST_F(LockdepTest, InversionReportedOncePerPair) {
#if INCFLAT_UNDER_TSAN
  GTEST_SKIP() << "deliberate inversion: TSan's deadlock detector fires first";
#endif
  sync::Mutex a("test.once_a");
  sync::Mutex b("test.once_b");
  {
    sync::MutexLock la(a);
    sync::MutexLock lb(b);
  }
  for (int i = 0; i < 4; ++i) {
    sync::MutexLock lb(b);
    sync::MutexLock la(a);
  }
  EXPECT_EQ(sync::lockdep::violations().size(), 1u);
}

TEST_F(LockdepTest, TransitiveThreeLockCycle) {
#if INCFLAT_UNDER_TSAN
  GTEST_SKIP() << "deliberate inversion: TSan's deadlock detector fires first";
#endif
  sync::Mutex a("test.tri_a");
  sync::Mutex b("test.tri_b");
  sync::Mutex c("test.tri_c");
  {
    sync::MutexLock la(a);
    sync::MutexLock lb(b);  // a -> b
  }
  {
    sync::MutexLock lb(b);
    sync::MutexLock lc(c);  // b -> c
  }
  {
    sync::MutexLock lc(c);
    sync::MutexLock la(a);  // c -> a: closes a -> b -> c -> a
  }
  const std::vector<Violation> vs = sync::lockdep::violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].held_class, "test.tri_c");
  EXPECT_EQ(vs[0].acquire_class, "test.tri_a");
}

TEST_F(LockdepTest, SameClassTwiceOnOneStackIsAViolation) {
  // Two *instances* of one class nested: order within a class is undefined
  // (think two PlanCache shards), so the discipline bans it outright.
  sync::Mutex first("test.twice");
  sync::Mutex second("test.twice");
  sync::MutexLock l1(first);
  sync::MutexLock l2(second);
  const std::vector<Violation> vs = sync::lockdep::violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].held_class, "test.twice");
  EXPECT_EQ(vs[0].acquire_class, "test.twice");
}

TEST_F(LockdepTest, ResetClearsGraphAndViolations) {
#if INCFLAT_UNDER_TSAN
  GTEST_SKIP() << "deliberate inversion: TSan's deadlock detector fires first";
#endif
  sync::Mutex a("test.reset_a");
  sync::Mutex b("test.reset_b");
  {
    sync::MutexLock la(a);
    sync::MutexLock lb(b);
  }
  {
    sync::MutexLock lb(b);
    sync::MutexLock la(a);
  }
  ASSERT_EQ(sync::lockdep::violations().size(), 1u);
  sync::lockdep::reset();
  EXPECT_TRUE(sync::lockdep::violations().empty());
  EXPECT_EQ(sync::lockdep::stats().edges, 0);
  // Classes survive reset: ids must stay stable for live mutexes.
  EXPECT_EQ(sync::lockdep::class_name(a.lock_class()), "test.reset_a");
  // And the graph genuinely restarts: the old a->b history is gone, so the
  // reverse order alone is fine now.
  {
    sync::MutexLock lb(b);
    sync::MutexLock la(a);
  }
  EXPECT_TRUE(sync::lockdep::violations().empty());
}

TEST_F(LockdepTest, CondVarWaitDropsAndReacquiresHeldStack) {
  // While a thread waits on a cv its mutex is *not* held; the held stack
  // must reflect that, or the waiter's re-acquisition would spuriously
  // order every lock the wakeup path holds.  notify under b while the
  // waiter re-acquires a: no a<->b edge in either direction may form.
  sync::Mutex a("test.cvdep_a");
  sync::Mutex b("test.cvdep_b");
  sync::CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    sync::MutexLock la(a);
    while (!ready) cv.wait(a);
  });
  {
    sync::MutexLock lb(b);
    {
      sync::MutexLock la(a);
      ready = true;
    }
    cv.notify_all();
  }
  waiter.join();
  // b->a was recorded by the notifier; the waiter must not have recorded
  // a->anything while asleep.  A clean report is the assertion.
  EXPECT_TRUE(sync::lockdep::violations().empty());
}

TEST_F(LockdepTest, DisabledCostsNoEdges) {
#if INCFLAT_UNDER_TSAN
  GTEST_SKIP() << "deliberate inversion: TSan's deadlock detector fires first";
#endif
  sync::lockdep::set_enabled(false);
  sync::Mutex a("test.off_a");
  sync::Mutex b("test.off_b");
  {
    sync::MutexLock lb(b);
    sync::MutexLock la(a);
  }
  {
    sync::MutexLock la(a);
    sync::MutexLock lb(b);
  }
  EXPECT_TRUE(sync::lockdep::violations().empty());
  EXPECT_EQ(sync::lockdep::stats().edges, 0);
}

TEST_F(LockdepTest, PublishTraceCountersEmitsGauges) {
  trace::reset();
  trace::set_enabled(true);
  sync::Mutex a("test.pub_a");
  { sync::MutexLock la(a); }
  sync::lockdep::publish_trace_counters();
  const auto counters = trace::counters();
  bool saw_acq = false;
  for (const auto& [name, value] : counters) {
    if (name == "sync.lock_acquisitions") {
      saw_acq = true;
      EXPECT_GE(value, 1);
    }
  }
  EXPECT_TRUE(saw_acq);
  trace::set_enabled(false);
  trace::reset();
}

// The PR-7 trace bug shape: counter bumps racing a concurrent span flush
// corrupted the aggregate buffers.  Reconstructed as a seeded stress —
// fixed thread count and iteration schedule — so a regression fails
// deterministically under TSan (and lockdep certifies the trace.state
// lock class stays a leaf).
TEST_F(LockdepTest, TraceFlushRaceStress) {
  trace::reset();
  trace::set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        trace::Span span("sync_stress.span", "test");
        trace::count("sync_stress.counter");
        if (t == 0 && i % 16 == 0) trace::flush_spans();  // the racing flush
      }
    });
  }
  for (auto& t : ts) t.join();
  trace::flush_spans();
  int64_t bumps = 0;
  for (const auto& [name, value] : trace::counters())
    if (name == "sync_stress.counter") bumps = value;
  EXPECT_EQ(bumps, int64_t{kThreads} * kIters);  // no lost updates
  EXPECT_TRUE(sync::lockdep::violations().empty());
  trace::set_enabled(false);
  trace::reset();
}

// WorkerPool under tracing exercises the layer's one sanctioned cross-class
// edge (pool.mu -> trace.state) from many threads at once; lockdep must
// certify it and nothing else.
TEST_F(LockdepTest, WorkerPoolWithTracingIsLockdepClean) {
  trace::reset();
  trace::set_enabled(true);
  {
    WorkerPool pool(4);
    std::atomic<int> total{0};
    for (int round = 0; round < 8; ++round) {
      pool.run(32, [&](int) { total.fetch_add(1, std::memory_order_relaxed); });
    }
    EXPECT_EQ(total.load(), 8 * 32);
  }
  EXPECT_TRUE(sync::lockdep::violations().empty());
  trace::set_enabled(false);
  trace::reset();
}

}  // namespace
}  // namespace incflat
