// Edge cases and failure injection across the stack: multi-result
// distribution, irregular runtime values, degenerate sizes, and malformed
// target programs.
#include <gtest/gtest.h>

#include "src/benchsuite/benchmark.h"
#include "src/benchsuite/reference.h"
#include "src/flatten/flatten.h"
#include "src/gpusim/cost.h"
#include "src/interp/interp.h"
#include "src/ir/builder.h"
#include "src/ir/print.h"
#include "src/ir/typecheck.h"
#include "src/support/error.h"
#include "src/support/rng.h"

namespace incflat {
namespace {

using namespace ib;

Type f32s() { return Type::scalar(Scalar::F32); }

TEST(EdgeCases, MultiResultMapDistributesBothArrays) {
  // map (\xs -> let (as, bs) = (scan + xs, scan max xs) used separately)
  // — a multi-result producer whose two results feed different consumers.
  Program p;
  p.name = "multi";
  p.inputs = {{"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})}};
  Lambda two = lam(
      {ib::p("x", f32s())},
      tuple({add(var("x"), cf32(1)), mul(var("x"), cf32(2))}));
  p.body = map1(
      lam({ib::p("xs", Type())},
          letn({"as", "bs"}, map(two, {var("xs")}),
               tuple({scan(binlam("+", Scalar::F32), {cf32(0)}, {var("as")}),
                      scan(binlam("max", Scalar::F32), {cf32(-1e30)},
                           {var("bs")})}))),
      var("xss"));
  p = typecheck_program(std::move(p));

  Rng rng(21);
  Value xss = Value::zeros(Scalar::F32, {3, 4});
  for (int64_t i = 0; i < 12; ++i) xss.fset(i, rng.uniform(-1, 1));
  InterpCtx sctx;
  sctx.sizes = {{"n", 3}, {"m", 4}};
  Values want = run_program(sctx, p, {xss});
  for (FlattenMode mode : {FlattenMode::Moderate, FlattenMode::Incremental,
                           FlattenMode::Full}) {
    FlattenResult fr = flatten(p, mode);
    for (int64_t t : {int64_t{1}, int64_t{1} << 20}) {
      InterpCtx ctx = sctx;
      ctx.thresholds.default_threshold = t;
      Values got = run_program(ctx, fr.program, {xss});
      ASSERT_EQ(got.size(), 2u);
      EXPECT_TRUE(got[0].approx_equal(want[0], 1e-4)) << mode_name(mode);
      EXPECT_TRUE(got[1].approx_equal(want[1], 1e-4)) << mode_name(mode);
    }
  }
}

TEST(EdgeCases, SizeOneDimensionsEverywhere) {
  // Degenerate sizes must not break flattening, interpretation, or the
  // cost model.
  Program p;
  p.name = "tiny";
  p.inputs = {{"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})}};
  p.body = map1(
      lam({ib::p("xs", Type())},
          redomap(binlam("+", Scalar::F32),
                  lam({ib::p("x", f32s())}, var("x")), {cf32(0)},
                  {var("xs")})),
      var("xss"));
  p = typecheck_program(std::move(p));
  FlattenResult fr = flatten(p, FlattenMode::Incremental);
  InterpCtx ctx;
  ctx.sizes = {{"n", 1}, {"m", 1}};
  Value xss = Value::zeros(Scalar::F32, {1, 1});
  xss.fset(0, 5);
  Values got = run_program(ctx, fr.program, {xss});
  EXPECT_NEAR(got[0].index({0}).as_float(), 5, 1e-6);
  RunEstimate est = estimate_run(device_k40(), fr.program, ctx.sizes, {});
  EXPECT_GT(est.time_us, 0);
}

TEST(EdgeCases, SegOpRuntimeShapeMismatchThrows) {
  // A seg-op whose space dim disagrees with the actual array shape must
  // fail loudly at run time.
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"x"}, {"xs"}, Dim::c(5)}};
  so.body = var("x");
  Env env{{"xs", Value::zeros(Scalar::F32, {3})}};
  InterpCtx ctx;
  EXPECT_THROW(eval(ctx, mk(std::move(so)), env), EvalError);
}

TEST(EdgeCases, SegOpUnboundSpaceArrayThrows) {
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"x"}, {"nowhere"}, Dim::c(2)}};
  so.body = var("x");
  InterpCtx ctx;
  EXPECT_THROW(eval(ctx, mk(std::move(so)), {}), EvalError);
}

TEST(EdgeCases, IndexOutOfBoundsThrows) {
  Env env{{"a", Value::zeros(Scalar::F32, {2})}};
  InterpCtx ctx;
  EXPECT_THROW(eval(ctx, index(var("a"), {ci64(2)}), env), EvalError);
}

TEST(EdgeCases, GuardedProgramWithAllVersionsInfeasibleFallsThrough) {
  // max_group_size = 1 makes every intra-group version infeasible; the
  // fallback (fully flattened / outer) arm must still compute correctly.
  Program p;
  p.name = "fallthrough";
  p.inputs = {{"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})}};
  p.body = map1(
      lam({ib::p("xs", Type())},
          map1(lam({ib::p("x", f32s())}, add(var("x"), cf32(1))),
               var("xs"))),
      var("xss"));
  p = typecheck_program(std::move(p));
  FlattenResult fr = flatten(p, FlattenMode::Incremental);
  InterpCtx ctx;
  ctx.sizes = {{"n", 2}, {"m", 3}};
  ctx.max_group_size = 1;
  ctx.thresholds.default_threshold = 1;  // every par test succeeds
  Value xss = Value::zeros(Scalar::F32, {2, 3});
  Values got = run_program(ctx, fr.program, {xss});
  EXPECT_NEAR(got[0].index({1, 2}).as_float(), 1, 1e-6);
}

TEST(EdgeCases, AmdFootnoteParboilComparison) {
  // Fig. 2's AMD footnote: on the Vega profile, tuned IF outperforms the
  // register-tiled Parboil baseline for small n while the baseline is up
  // to 2x faster at n = 10 (k = 25).
  Benchmark b = get_benchmark("matmul");
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_vega64();
  auto best_compiler_time = [&](int n_exp) {
    const int m_exp = 25 - 2 * n_exp;
    const SizeEnv sz{{"n", int64_t{1} << n_exp},
                     {"m", int64_t{1} << m_exp},
                     {"k", int64_t{1} << n_exp}};
    ThresholdEnv off;
    off.default_threshold = int64_t{1} << 62;
    const double aif =
        std::min(estimate_run(dev, inc.program, sz, {}).time_us,
                 estimate_run(dev, inc.program, sz, off).time_us);
    const double ref = reference_gemm(dev, sz.at("n"), sz.at("m"),
                                      sz.at("k"));
    return std::make_pair(aif, ref);
  };
  auto [aif2, ref2] = best_compiler_time(2);
  EXPECT_LT(aif2, ref2 * 1.01) << "IF wins for small n on Vega";
  auto [aif10, ref10] = best_compiler_time(10);
  EXPECT_GT(aif10, ref10) << "Parboil wins at n=10 on Vega";
}

}  // namespace
}  // namespace incflat
