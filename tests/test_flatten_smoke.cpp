// Early end-to-end smoke tests: flattening must preserve the semantics of
// matmul-like programs under arbitrary threshold assignments.
#include <gtest/gtest.h>

#include "src/flatten/flatten.h"
#include "src/interp/interp.h"
#include "src/ir/builder.h"
#include "src/ir/print.h"
#include "src/ir/traverse.h"
#include "src/ir/typecheck.h"
#include "src/support/rng.h"

namespace incflat {
namespace {

using namespace ib;

Type f32s() { return Type::scalar(Scalar::F32); }

// map (\xs -> map (\ys -> redomap (+) (*) 0 xs ys) (transpose yss)) xss
Program matmul_program() {
  Program p;
  p.name = "matmul";
  p.inputs = {
      {"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})},
      {"yss", Type::array(Scalar::F32, {Dim::v("m"), Dim::v("k")})},
  };
  Lambda dot_map = lam({ib::p("x", f32s()), ib::p("y", f32s())},
                       mul(var("x"), var("y")));
  Lambda inner = lam({ib::p("ys", Type())},
                     redomap(binlam("+", Scalar::F32), dot_map, {cf32(0)},
                             {var("xs"), var("ys")}));
  Lambda outer =
      lam({ib::p("xs", Type())}, map1(inner, transpose(var("yss"))));
  p.body = map1(outer, var("xss"));
  return typecheck_program(std::move(p));
}

Value random_matrix(Rng& rng, int64_t r, int64_t c) {
  Value m = Value::zeros(Scalar::F32, {r, c});
  for (int64_t i = 0; i < r * c; ++i) {
    m.fset(i, rng.uniform(-1.0, 1.0));
  }
  return m;
}

class MatmulFlatten : public ::testing::TestWithParam<FlattenMode> {};

TEST_P(MatmulFlatten, PreservesSemantics) {
  Program src = matmul_program();
  FlattenResult fr = flatten(src, GetParam());
  check_level_discipline(fr.program.body);

  Rng rng(42);
  InterpCtx ctx;
  ctx.sizes = {{"n", 4}, {"m", 6}, {"k", 3}};
  Value xss = random_matrix(rng, 4, 6);
  Value yss = random_matrix(rng, 6, 3);
  Values want = run_program(ctx, src, {xss, yss});

  // Try several threshold assignments; all versions must agree.
  for (int64_t t : {int64_t{1}, int64_t{8}, int64_t{1} << 15}) {
    InterpCtx tctx = ctx;
    tctx.thresholds.default_threshold = t;
    Values got = run_program(tctx, fr.program, {xss, yss});
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_TRUE(got[i].approx_equal(want[i]))
          << "mode=" << mode_name(GetParam()) << " t=" << t << "\n"
          << pretty(fr.program);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, MatmulFlatten,
                         ::testing::Values(FlattenMode::Moderate,
                                           FlattenMode::Incremental,
                                           FlattenMode::Full));

TEST(FlattenSmoke, IncrementalGeneratesVersions) {
  Program src = matmul_program();
  FlattenResult fr = flatten(src, FlattenMode::Incremental);
  // Incremental flattening must generate multiple guarded versions.
  EXPECT_GE(fr.thresholds.size(), 2u);
  EXPECT_GT(count_segops(fr.program.body), 2);
  // Moderate flattening generates exactly one version, no thresholds.
  FlattenResult mf = flatten(src, FlattenMode::Moderate);
  EXPECT_EQ(mf.thresholds.size(), 0u);
}

}  // namespace
}  // namespace incflat
