// Unit + integration tests: the compile-and-serve daemon (src/serve/*) —
// frame codec edge cases, sharded LRU plan cache semantics, the priority
// job scheduler (promotion, cancellation, expiry, drop notification),
// ServerCore request handling with same-plan run batching, the socket
// front-end over unix and tcp endpoints, and the property that cache-served
// plans answer bit-identically to freshly compiled ones.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/exec/runtime.h"
#include "src/serve/chaos.h"
#include "src/serve/net.h"
#include "src/serve/plan_cache.h"
#include "src/serve/protocol.h"
#include "src/serve/scheduler.h"
#include "src/serve/server.h"
#include "src/support/error.h"
#include "src/support/json.h"
#include "src/support/sync.h"

namespace incflat {
namespace {

using serve::CacheStats;
using serve::CacheValue;
using serve::FrameReader;
using serve::JobContext;
using serve::JobPriority;
using serve::JobScheduler;
using serve::JobState;
using serve::PlanCache;
using serve::ProtocolError;
using serve::ServeClient;
using serve::ServeOptions;
using serve::ServerCore;
using serve::ServeSocket;

// ---------------------------------------------------------------------------
// Lockdep certification: the whole suite — every cache, scheduler, server
// and socket test — runs with the lock-order validator on, and the suite
// fails if any test drove the serve layer through an order inversion.  This
// is the machine-checked form of DESIGN.md's sanctioned acquisition order.
// ---------------------------------------------------------------------------

class LockdepEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    sync::lockdep::reset();
    sync::lockdep::set_enabled(true);
  }
  void TearDown() override {
    const auto violations = sync::lockdep::violations();
    for (const auto& v : violations) {
      ADD_FAILURE() << "lock-order inversion in serve suite: " << v.str();
    }
    const auto st = sync::lockdep::stats();
    EXPECT_GT(st.acquisitions, 0) << "lockdep saw no acquisitions — is the "
                                     "serve layer still on sync::Mutex?";
    sync::lockdep::set_enabled(false);
  }
};

const auto* const kLockdepEnv =
    ::testing::AddGlobalTestEnvironment(new LockdepEnvironment);

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(Frames, RoundTripAndByteDribble) {
  const std::string payload = "{\"op\":\"ping\"}";
  const std::string frame = serve::encode_frame(payload);
  ASSERT_EQ(frame.size(), payload.size() + 4);

  FrameReader r;
  std::string out;
  // Feed one byte at a time: no complete frame until the very last byte.
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    r.feed(frame.data() + i, 1);
    EXPECT_FALSE(r.next(&out));
  }
  r.feed(frame.data() + frame.size() - 1, 1);
  ASSERT_TRUE(r.next(&out));
  EXPECT_EQ(out, payload);
  EXPECT_FALSE(r.next(&out));
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Frames, ManyFramesInOneFeed) {
  std::string stream;
  for (int i = 0; i < 5; ++i)
    stream += serve::encode_frame("payload-" + std::to_string(i));
  FrameReader r;
  r.feed(stream);
  std::string out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(r.next(&out));
    EXPECT_EQ(out, "payload-" + std::to_string(i));
  }
  EXPECT_FALSE(r.next(&out));
}

TEST(Frames, EmptyPayloadIsAValidFrame) {
  FrameReader r;
  r.feed(serve::encode_frame(""));
  std::string out = "sentinel";
  ASSERT_TRUE(r.next(&out));
  EXPECT_EQ(out, "");
}

TEST(Frames, OversizedLengthPrefixPoisonsBeforeBuffering) {
  // A hostile 512 MiB length prefix must throw on the *header*, before any
  // body bytes are accepted or allocated.
  FrameReader r(1024);
  const char hdr[4] = {0x20, 0x00, 0x00, 0x00};  // 0x20000000 big-endian
  EXPECT_THROW(r.feed(hdr, 4), ProtocolError);
  // The cap is inclusive: exactly max_payload is fine.
  FrameReader ok(8);
  ok.feed(serve::encode_frame("12345678"));
  std::string out;
  ASSERT_TRUE(ok.next(&out));
  EXPECT_EQ(out, "12345678");
  FrameReader over(7);
  EXPECT_THROW(over.feed(serve::encode_frame("12345678")), ProtocolError);
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

struct Blob : CacheValue {
  explicit Blob(int v) : v(v) {}
  int v;
};

std::shared_ptr<Blob> blob(int v) { return std::make_shared<Blob>(v); }

TEST(Cache, HitMissCountersAndUncountedProbes) {
  PlanCache cache(0, 1);
  EXPECT_EQ(cache.find("a"), nullptr);
  cache.insert("a", blob(1), 100);
  EXPECT_NE(cache.find("a"), nullptr);
  // Internal probes must not move the counters.
  EXPECT_NE(cache.find("a", /*count=*/false), nullptr);
  EXPECT_EQ(cache.find("b", /*count=*/false), nullptr);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.inserts, 1);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 100u);
}

TEST(Cache, EvictsFromTheLruTail) {
  PlanCache cache(300, 1);  // one shard: deterministic LRU order
  cache.insert("a", blob(1), 100);
  cache.insert("b", blob(2), 100);
  cache.insert("c", blob(3), 100);
  // Touch "a" so "b" is now least-recently-used.
  EXPECT_NE(cache.find("a"), nullptr);
  cache.insert("d", blob(4), 100);  // needs room: evicts exactly "b"
  EXPECT_EQ(cache.find("b"), nullptr);
  EXPECT_NE(cache.find("a"), nullptr);
  EXPECT_NE(cache.find("c"), nullptr);
  EXPECT_NE(cache.find("d"), nullptr);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 3u);
  EXPECT_LE(s.bytes, 300u);
}

TEST(Cache, OversizedValueIsAdmittedAlone) {
  PlanCache cache(100, 1);
  cache.insert("small", blob(1), 60);
  // Larger than the whole budget: everything else is evicted, but the new
  // entry is admitted (refusing it would make the hot plan uncacheable).
  cache.insert("huge", blob(2), 500);
  EXPECT_EQ(cache.find("small"), nullptr);
  EXPECT_NE(cache.find("huge"), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(Cache, FirstInserterWinsTheCompileRace) {
  PlanCache cache(0, 4);
  auto first = blob(1);
  auto loser = blob(2);
  EXPECT_EQ(cache.insert("k", first, 10).get(), first.get());
  // The racing second inserter gets the existing entry back and must adopt
  // it — one runtime per key, so batches never split across duplicates.
  EXPECT_EQ(cache.insert("k", loser, 10).get(), first.get());
  EXPECT_EQ(cache.stats().entries, 1u);
  auto got = std::static_pointer_cast<Blob>(cache.find("k"));
  EXPECT_EQ(got->v, 1);
}

TEST(Cache, EvictedEntrySurvivesWhileReferenced) {
  PlanCache cache(100, 1);
  cache.insert("a", blob(7), 100);
  auto held = std::static_pointer_cast<Blob>(cache.find("a"));
  cache.insert("b", blob(8), 100);  // evicts "a"
  EXPECT_EQ(cache.find("a"), nullptr);
  // The in-flight reference still works: eviction drops only the cache's ref.
  EXPECT_EQ(held->v, 7);
}

TEST(Cache, EraseAndClear) {
  PlanCache cache(0, 2);
  cache.insert("a", blob(1), 10);
  cache.insert("b", blob(2), 10);
  EXPECT_TRUE(cache.erase("a"));
  EXPECT_FALSE(cache.erase("a"));
  EXPECT_EQ(cache.stats().evictions, 1);
  cache.clear();
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(cache.find("b"), nullptr);
}

TEST(Cache, ShardedConcurrentChurnKeepsBudget) {
  PlanCache cache(8 * 1024, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        std::string key = "k";
        key += std::to_string(t);
        key += "-";
        key += std::to_string(i % 50);
        if (!cache.find(key)) cache.insert(key, blob(i), 128);
      }
    });
  }
  for (auto& t : threads) t.join();
  const CacheStats s = cache.stats();
  EXPECT_LE(s.bytes, 8u * 1024u);
  EXPECT_EQ(s.hits + s.misses, 4 * 500);
}

// ---------------------------------------------------------------------------
// Job scheduler
// ---------------------------------------------------------------------------

TEST(Scheduler, DrainsInPriorityOrder) {
  JobScheduler sched(1, /*promote_after_ms=*/0);
  std::mutex mu;
  std::vector<int> order;
  std::atomic<bool> release{false};
  // Occupy the single worker so the queue builds up behind it.
  const uint64_t gate = sched.submit([&](JobContext&) {
    while (!release.load()) std::this_thread::yield();
  });
  auto rec = [&](int tag) {
    return [&, tag](JobContext&) {
      std::lock_guard<std::mutex> lk(mu);
      order.push_back(tag);
    };
  };
  std::vector<uint64_t> ids;
  ids.push_back(sched.submit(rec(2), JobPriority::Low));
  ids.push_back(sched.submit(rec(1), JobPriority::Normal));
  ids.push_back(sched.submit(rec(0), JobPriority::High));
  ids.push_back(sched.submit(rec(10), JobPriority::High));
  release.store(true);
  EXPECT_EQ(sched.wait(gate), JobState::Done);
  for (uint64_t id : ids) EXPECT_EQ(sched.wait(id), JobState::Done);
  // High jobs first (FIFO within a class), then Normal, then Low.
  EXPECT_EQ(order, (std::vector<int>{0, 10, 1, 2}));
}

TEST(Scheduler, CancelUnschedulesQueuedJobs) {
  JobScheduler sched(1);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  sched.submit([&](JobContext&) {
    while (!release.load()) std::this_thread::yield();
  });
  const uint64_t victim = sched.submit([&](JobContext&) { ++ran; });
  EXPECT_TRUE(sched.cancel(victim));
  EXPECT_FALSE(sched.cancel(victim));  // already terminal
  release.store(true);
  EXPECT_EQ(sched.wait(victim), JobState::Cancelled);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(sched.stats().cancelled, 1);
}

TEST(Scheduler, RunningJobSeesCooperativeCancel) {
  JobScheduler sched(1);
  std::atomic<bool> started{false};
  std::atomic<bool> observed{false};
  const uint64_t id = sched.submit([&](JobContext& ctx) {
    started.store(true);
    while (!ctx.cancelled()) std::this_thread::yield();
    observed.store(true);
  });
  while (!started.load()) std::this_thread::yield();
  EXPECT_FALSE(sched.cancel(id));  // running: cooperative only
  EXPECT_EQ(sched.wait(id), JobState::Done);
  EXPECT_TRUE(observed.load());
}

TEST(Scheduler, QueueTimeoutExpiresAndNotifiesDrop) {
  JobScheduler sched(1, /*promote_after_ms=*/0);
  std::atomic<bool> release{false};
  sched.submit([&](JobContext&) {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> dropped{0};
  JobState drop_state = JobState::Done;
  const uint64_t id = sched.submit(
      [&](JobContext&) { ADD_FAILURE() << "expired job must not run"; },
      JobPriority::Low, /*queue_timeout_ms=*/5, [&](JobState st) {
        drop_state = st;
        ++dropped;
      });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);
  EXPECT_EQ(sched.wait(id), JobState::Expired);
  EXPECT_EQ(dropped.load(), 1);
  EXPECT_EQ(drop_state, JobState::Expired);
  EXPECT_EQ(sched.stats().expired, 1);
}

TEST(Scheduler, CancelNotifiesDropToo) {
  JobScheduler sched(1);
  std::atomic<bool> release{false};
  sched.submit([&](JobContext&) {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> dropped{0};
  const uint64_t id = sched.submit(
      [&](JobContext&) {}, JobPriority::Normal, 0,
      [&](JobState st) { dropped += st == JobState::Cancelled ? 1 : 100; });
  sched.cancel(id);
  release.store(true);
  EXPECT_EQ(sched.wait(id), JobState::Cancelled);
  EXPECT_EQ(dropped.load(), 1);
}

TEST(Scheduler, AgePromotionBeatsStarvation) {
  // One worker, promotion after 10 ms.  A Low job enqueued first and aged
  // past the threshold is drained ahead of a fresh High job.
  JobScheduler sched(1, /*promote_after_ms=*/10);
  std::atomic<bool> release{false};
  std::mutex mu;
  std::vector<char> order;
  sched.submit([&](JobContext&) {
    while (!release.load()) std::this_thread::yield();
  });
  const uint64_t low = sched.submit([&](JobContext&) {
    std::lock_guard<std::mutex> lk(mu);
    order.push_back('L');
  }, JobPriority::Low);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // Aged 40 ms: Low promotes through Normal to High, tying the fresh High
  // job's class — and it is older, so it drains first.
  const uint64_t high = sched.submit([&](JobContext&) {
    std::lock_guard<std::mutex> lk(mu);
    order.push_back('H');
  }, JobPriority::High);
  release.store(true);
  sched.wait(low);
  sched.wait(high);
  EXPECT_EQ(order, (std::vector<char>{'L', 'H'}));
}

TEST(Scheduler, FailedJobRethrowsOnWait) {
  JobScheduler sched(1);
  const uint64_t id = sched.submit(
      [](JobContext&) { throw std::invalid_argument("job boom"); });
  try {
    sched.wait(id);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "job boom");
  }
  EXPECT_EQ(sched.stats().failed, 1);
}

TEST(Scheduler, DestructorCancelsQueuedJobs) {
  std::atomic<int> ran{0};
  std::atomic<int> dropped{0};
  {
    JobScheduler sched(1);
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    sched.submit([&](JobContext&) {
      started.store(true);
      while (!release.load()) std::this_thread::yield();
    });
    // Wait for the gate to occupy the worker so the 8 jobs genuinely queue.
    while (!started.load()) std::this_thread::yield();
    for (int i = 0; i < 8; ++i)
      sched.submit([&](JobContext&) { ++ran; }, JobPriority::Normal, 0,
                   [&](JobState) { ++dropped; });
    release.store(true);
    // Destructor: the running gate finishes; each queued job either gets a
    // worker slot before the drain or reports its drop — never silence.
  }
  EXPECT_EQ(ran.load() + dropped.load(), 8);
}

TEST(Scheduler, QueueCapShedsNewestWithDrop) {
  // One worker occupied by a gate, cap 2: two jobs fill the Normal queue
  // and the third is rejected-newest — its DropFn fires with Shed before
  // submit even returns, and it never runs.
  JobScheduler sched(1, /*promote_after_ms=*/1000.0, /*queue_cap=*/2);
  std::atomic<bool> release{false};
  std::atomic<bool> started{false};
  sched.submit([&](JobContext&) {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  std::atomic<int> ran{0};
  const uint64_t a = sched.submit([&](JobContext&) { ++ran; });
  const uint64_t b = sched.submit([&](JobContext&) { ++ran; });
  std::atomic<int> dropped{0};
  JobState drop_state = JobState::Done;
  const uint64_t c = sched.submit(
      [&](JobContext&) { ADD_FAILURE() << "shed job must not run"; },
      JobPriority::Normal, 0, [&](JobState st) {
        drop_state = st;
        ++dropped;
      });
  EXPECT_EQ(dropped.load(), 1);
  EXPECT_EQ(drop_state, JobState::Shed);
  EXPECT_EQ(sched.wait(c), JobState::Shed);
  release.store(true);
  EXPECT_EQ(sched.wait(a), JobState::Done);
  EXPECT_EQ(sched.wait(b), JobState::Done);
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(sched.stats().shed, 1);
  EXPECT_EQ(sched.stats().submitted, 4);
}

TEST(SchedulerStress, ConcurrentEnqueueExpireExactlyOnceSeeded) {
  // Several producers enqueue jobs with sub-millisecond queue timeouts
  // while two workers drain concurrently, so expiry races execution on
  // every job.  Contracts: each job resolves to exactly one of
  // {ran, dropped} (the DropFn fires exactly once, never alongside the
  // body), and the expired counter matches the Expired waits exactly.
  constexpr int kThreads = 4, kPerThread = 64;
  constexpr int kN = kThreads * kPerThread;
  JobScheduler sched(2, /*promote_after_ms=*/1000.0);
  std::vector<std::atomic<int>> events(kN);
  std::vector<uint64_t> ids(kN);
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      std::mt19937_64 rng(0xeaf00dULL + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const int ix = t * kPerThread + i;
        const double tmo = 0.05 + static_cast<double>(rng() % 30) / 20.0;
        ids[ix] = sched.submit(
            [&events, ix](JobContext&) {
              ++events[ix];
              std::this_thread::sleep_for(std::chrono::microseconds(200));
            },
            JobPriority::Normal, tmo, [&events, ix](JobState st) {
              EXPECT_EQ(st, JobState::Expired);
              ++events[ix];
            });
      }
    });
  }
  for (auto& p : producers) p.join();
  int64_t expired_waits = 0;
  for (int i = 0; i < kN; ++i) {
    const JobState st = sched.wait(ids[i]);
    EXPECT_TRUE(st == JobState::Done || st == JobState::Expired)
        << "job " << i << " ended " << serve::job_state_name(st);
    if (st == JobState::Expired) ++expired_waits;
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(events[i].load(), 1)
        << "job " << i << " fired its body/drop " << events[i].load()
        << " times";
  }
  EXPECT_EQ(sched.stats().expired, expired_waits);
  EXPECT_EQ(sched.stats().executed, kN - expired_waits);
}

// ---------------------------------------------------------------------------
// Network chaos oracle
// ---------------------------------------------------------------------------

TEST(Chaos, ParseSpecAllShorthandAndRoundTrip) {
  EXPECT_FALSE(serve::parse_net_chaos("").enabled());
  EXPECT_FALSE(serve::parse_net_chaos("off").enabled());
  const serve::NetChaosSpec s =
      serve::parse_net_chaos("dribble=0.2,reset=0.01,stall-us=500");
  EXPECT_DOUBLE_EQ(s.dribble, 0.2);
  EXPECT_DOUBLE_EQ(s.reset, 0.01);
  EXPECT_DOUBLE_EQ(s.stall_us, 500);
  EXPECT_DOUBLE_EQ(s.partial_write, 0);
  EXPECT_TRUE(s.enabled());
  // all=R: R for the re-chunking kinds, R/10 for the destructive ones.
  const serve::NetChaosSpec all = serve::parse_net_chaos("all=0.1");
  EXPECT_DOUBLE_EQ(all.dribble, 0.1);
  EXPECT_DOUBLE_EQ(all.partial_write, 0.1);
  EXPECT_DOUBLE_EQ(all.stall, 0.01);
  EXPECT_DOUBLE_EQ(all.reset, 0.01);
  EXPECT_DOUBLE_EQ(all.accept_fail, 0.01);
  const serve::NetChaosSpec rt =
      serve::parse_net_chaos(serve::net_chaos_str(all));
  EXPECT_DOUBLE_EQ(rt.dribble, all.dribble);
  EXPECT_DOUBLE_EQ(rt.stall, all.stall);
  EXPECT_DOUBLE_EQ(rt.reset, all.reset);
  EXPECT_THROW(serve::parse_net_chaos("bogus=1"), IoError);
  EXPECT_THROW(serve::parse_net_chaos("dribble=2"), IoError);
  EXPECT_THROW(serve::parse_net_chaos("dribble"), IoError);
}

TEST(Chaos, SeedDeterminismAndCapBounds) {
  const serve::NetChaosSpec spec = serve::parse_net_chaos("all=0.3");
  serve::NetChaos a(spec, 42), b(spec, 42);
  for (int i = 0; i < 200; ++i) {
    const size_t ra = a.read_cap(4096), rb = b.read_cap(4096);
    EXPECT_EQ(ra, rb);
    EXPECT_GE(ra, 1u);  // a zero-byte read would read as EOF
    EXPECT_LE(ra, 4096u);
    const size_t wa = a.write_cap(4096), wb = b.write_cap(4096);
    EXPECT_EQ(wa, wb);
    EXPECT_GE(wa, 1u);  // partial writes always make progress
    EXPECT_LE(wa, 4096u);
    EXPECT_EQ(a.reset_conn(), b.reset_conn());
    EXPECT_DOUBLE_EQ(a.stall_us(), b.stall_us());
    EXPECT_EQ(a.accept_fail(), b.accept_fail());
  }
  EXPECT_EQ(a.counts().total(), b.counts().total());
  EXPECT_GT(a.counts().total(), 0);  // 0.3 over 200 draws: must have fired
}

TEST(Chaos, DisabledPlanIsANoop) {
  serve::NetChaos off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.read_cap(100), 100u);
  EXPECT_EQ(off.write_cap(100), 100u);
  EXPECT_FALSE(off.reset_conn());
  EXPECT_DOUBLE_EQ(off.stall_us(), 0);
  EXPECT_FALSE(off.accept_fail());
  EXPECT_EQ(off.counts().total(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end deadlines
// ---------------------------------------------------------------------------

TEST(Deadline, CancelTokenExpiryAndCancel) {
  CancelToken unbounded;
  EXPECT_FALSE(unbounded.expired());
  EXPECT_GT(unbounded.remaining_ms(), 1e17);  // effectively infinite
  CancelToken soon(0.5);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(soon.expired());
  EXPECT_LE(soon.remaining_ms(), 0.0);
  CancelToken c;
  c.cancel();
  EXPECT_TRUE(c.expired());
  EXPECT_LT(c.remaining_ms(), 0);
}

// ---------------------------------------------------------------------------
// ServerCore: ops, errors, batching
// ---------------------------------------------------------------------------

ServeOptions small_opts() {
  ServeOptions o;
  o.workers = 2;
  return o;
}

Json run_req(const std::string& b, const std::string& d) {
  Json r = Json::object();
  r.set("op", "run");
  r.set("benchmark", b);
  r.set("dataset", d);
  return r;
}

TEST(Server, PingStatsAndIdEcho) {
  ServerCore core(small_opts());
  Json ping = Json::object();
  ping.set("op", "ping");
  ping.set("id", 42);
  const Json resp = core.handle(ping);
  EXPECT_TRUE(resp.get("ok").as_bool());
  EXPECT_EQ(resp.get("id").as_double(), 42.0);
  const Json stats = core.handle(Json::object().set("op", "stats"));
  EXPECT_TRUE(stats.get("ok").as_bool());
  EXPECT_TRUE(stats.get("cache").is_object());
  EXPECT_TRUE(stats.get("scheduler").is_object());
  // The snapshot covers requests completed *before* this one: just the ping.
  EXPECT_EQ(stats.get("requests").get("total").as_double(), 1.0);
  const Json again = core.handle(Json::object().set("op", "stats"));
  EXPECT_EQ(again.get("requests").get("total").as_double(), 2.0);
  EXPECT_EQ(again.get("requests").get("stats").as_double(), 1.0);
}

TEST(Server, ErrorResponsesCarryCodes) {
  ServerCore core(small_opts());
  Json bad = Json::object();
  bad.set("op", "frobnicate");
  EXPECT_EQ(core.handle(bad).get("code").as_string(), "unknown-op");
  Json no_bench = Json::object();
  no_bench.set("op", "compile");
  EXPECT_EQ(core.handle(no_bench).get("code").as_string(), "bad-request");
  Json unknown = Json::object();
  unknown.set("op", "compile");
  unknown.set("benchmark", "no-such-benchmark");
  EXPECT_EQ(core.handle(unknown).get("code").as_string(), "bad-request");
  // handle_text: malformed JSON fails the request, not the process.
  const Json parsed = Json::parse(core.handle_text("{not json"));
  EXPECT_FALSE(parsed.get("ok").as_bool());
  EXPECT_EQ(parsed.get("code").as_string(), "bad-request");
  EXPECT_EQ(core.request_stats().errors, 4);
}

TEST(Server, CompileCachesByProgramKey) {
  ServerCore core(small_opts());
  Json req = Json::object();
  req.set("op", "compile");
  req.set("benchmark", "matmul");
  const Json cold = core.handle(req);
  ASSERT_TRUE(cold.get("ok").as_bool());
  EXPECT_FALSE(cold.get("cached").as_bool());
  EXPECT_GT(cold.get("kernels").as_double(), 0);
  const Json warm = core.handle(req);
  EXPECT_TRUE(warm.get("cached").as_bool());
  EXPECT_EQ(warm.get("program_hash").as_string(),
            cold.get("program_hash").as_string());
  EXPECT_GE(core.cache().stats().hits, 1);
}

TEST(Server, RunAdoptsCompiledPlanWithoutRecompiling) {
  ServerCore core(small_opts());
  Json c = Json::object();
  c.set("op", "compile");
  c.set("benchmark", "matmul");
  core.handle(c);
  const Json r = core.handle(run_req("matmul", "square"));
  ASSERT_TRUE(r.get("ok").as_bool());
  // The run entry was new (not "cached") but the plan came from the
  // program-level entry the compile created.
  EXPECT_FALSE(r.get("cached").as_bool());
  EXPECT_TRUE(r.get("plan_cached").as_bool());
  EXPECT_GT(r.get("time_us").as_double(), 0);
  EXPECT_GT(r.get("kernel_launches").as_double(), 0);
}

TEST(Server, ThresholdOverridesAreHonoredPerRequest) {
  ServerCore core(small_opts());
  const Json base = core.handle(run_req("matmul", "skinny"));
  ASSERT_TRUE(base.get("ok").as_bool());
  // Push every registered threshold to an absurd high value: on the skinny
  // dataset that forces different guard verdicts than the defaults.  The
  // override applies to this request only — results stay deterministic and
  // the un-overridden request still answers exactly as before.
  const Compiled compiled =
      compile(get_benchmark("matmul").program, FlattenMode::Incremental);
  Json thr = Json::object();
  for (const auto& info : compiled.flat.thresholds.all())
    thr.set(info.name, int64_t{1} << 40);
  ASSERT_GT(thr.size(), 0u);
  Json forced = run_req("matmul", "skinny");
  forced.set("thresholds", thr);
  const Json flipped = core.handle(forced);
  ASSERT_TRUE(flipped.get("ok").as_bool());
  EXPECT_EQ(core.handle(forced).get("estimate_us").as_double(),
            flipped.get("estimate_us").as_double());
  EXPECT_EQ(core.handle(run_req("matmul", "skinny"))
                .get("estimate_us")
                .as_double(),
            base.get("estimate_us").as_double());
}

TEST(Server, ConcurrentSamePlanRunsBatch) {
  ServeOptions opts = small_opts();
  ServerCore core(opts);
  core.handle(run_req("matmul", "square"));  // warm the plan entry
  constexpr int kThreads = 8;
  constexpr int kReqs = 50;
  std::atomic<int> failures{0};
  std::atomic<uint64_t> estimate_bits{0};
  int64_t issued = 1;
  // Batching needs two threads inside do_run at once; on a single-CPU box
  // that takes a preemption landing mid-run, so hammer in rounds until the
  // overlap happens (one round suffices under real parallelism).
  for (int round = 0; round < 50; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kReqs; ++i) {
          const Json r = core.handle(run_req("matmul", "square"));
          if (!r.get("ok").as_bool()) {
            ++failures;
            continue;
          }
          // Every answer for the key carries the same estimate bits,
          // batched or not.
          double est = r.get("estimate_us").as_double();
          uint64_t bits = 0;
          static_assert(sizeof bits == sizeof est);
          std::memcpy(&bits, &est, sizeof bits);
          uint64_t expect = 0;
          if (!estimate_bits.compare_exchange_strong(expect, bits))
            if (expect != bits) ++failures;
        }
      });
    }
    for (auto& t : threads) t.join();
    issued += kThreads * kReqs;
    // A lone follower drained in a size-1 batch bumps batched_runs without
    // bumping batches, so wait for a real multi-member batch: that implies
    // a follower too (only followers share a leader's swap).
    if (core.request_stats().batches > 0) break;
  }
  EXPECT_EQ(failures.load(), 0);
  const serve::RequestStats rs = core.request_stats();
  EXPECT_EQ(rs.runs, issued);
  // With 8 clients hammering one key, some requests must eventually be
  // answered as batch followers.
  EXPECT_GT(rs.batched_runs, 0);
  EXPECT_GT(rs.batches, 0);
}

TEST(Server, BatchLeaderSurvivesBadRunRequests) {
  // run_one can throw on user input (bad 'thresholds', 'tuned' with nothing
  // published).  The leader must catch per ticket and release leadership:
  // before the fix the exception escaped with leader_active still set, so
  // the *next* run on the key parked forever as a follower — this test hung.
  ServerCore core(small_opts());
  ASSERT_TRUE(core.handle(run_req("matmul", "square")).get("ok").as_bool());
  Json bad = run_req("matmul", "square");
  bad.set("thresholds", "not-an-object");
  const Json err = core.handle(bad);
  EXPECT_FALSE(err.get("ok").as_bool());
  EXPECT_EQ(err.get("code").as_string(), "bad-request");
  Json tuned = run_req("matmul", "square");
  tuned.set("tuned", true);
  const Json err2 = core.handle(tuned);
  EXPECT_FALSE(err2.get("ok").as_bool());
  EXPECT_EQ(err2.get("code").as_string(), "bad-request");
  // The key is not wedged: leadership was released on every error path.
  const Json good = core.handle(run_req("matmul", "square"));
  EXPECT_TRUE(good.get("ok").as_bool());
}

TEST(Server, BadFollowerRequestFailsOnlyItsOwnTicket) {
  // A leader executing a follower's bad request must attach the error to
  // that follower's ticket, not surface it as its own failure or abort the
  // batch.  Hammer good and bad requests concurrently: every bad request
  // answers bad-request, every good one answers ok.
  ServerCore core(small_opts());
  ASSERT_TRUE(core.handle(run_req("matmul", "square")).get("ok").as_bool());
  std::atomic<int> misattributed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      const bool bad = (t % 2) == 0;
      for (int i = 0; i < 25; ++i) {
        Json req = run_req("matmul", "square");
        if (bad) req.set("thresholds", "not-an-object");
        const Json r = core.handle(req);
        if (r.get("ok").as_bool() == bad) ++misattributed;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(misattributed.load(), 0);
}

// ---------------------------------------------------------------------------
// Seeded concurrency stress: the PR-7 bug shapes, reconstructed
// ---------------------------------------------------------------------------

/// Cache payload that poisons itself on destruction: any reader observing
/// the poison dereferenced an entry after the cache's last reference died —
/// the eviction-use-after-free shape.  The atomic makes the check itself
/// race-free under TSan.
struct Canary : CacheValue {
  explicit Canary(uint64_t v) : value(v) {}
  ~Canary() override { value.store(0xdeadbeefdeadbeefULL); }
  std::atomic<uint64_t> value;
};

TEST(CacheStress, EvictionWhileReferencedSeeded) {
  // A tiny budget forces constant eviction while readers hold and
  // dereference entries across the eviction: shared_ptr pinning is the only
  // thing between this test and a use-after-free.  Fixed seeds make every
  // thread's key/hold schedule reproducible.
  PlanCache cache(2 * 1024, 4);  // ~16 resident entries of 128 bytes
  constexpr int kThreads = 4;
  constexpr int kIters = 800;
  constexpr int kKeys = 64;
  std::atomic<int64_t> poisoned{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(0xC0FFEEu + static_cast<unsigned>(t));
      std::shared_ptr<Canary> held;  // reference surviving evictions
      uint64_t held_key = 0;
      for (int i = 0; i < kIters; ++i) {
        const uint64_t k = rng() % kKeys;
        const std::string key = "stress-" + std::to_string(k);
        auto got = std::static_pointer_cast<Canary>(cache.find(key));
        if (!got) {
          got = std::static_pointer_cast<Canary>(
              cache.insert(key, std::make_shared<Canary>(k), 128));
        }
        if (got->value.load() != k) ++poisoned;
        if (rng() % 4 == 0) {
          held = got;  // hold this one across future evictions
          held_key = k;
        }
        if (held && held->value.load() != held_key) ++poisoned;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(poisoned.load(), 0);
  const CacheStats s = cache.stats();
  EXPECT_GT(s.evictions, 0) << "budget never forced eviction — the stress "
                               "did not exercise the bug shape";
  EXPECT_LE(s.bytes, 2u * 1024u);
}

TEST(SchedulerStress, CancelVsFinishRaceSeeded) {
  // The PR-7 use-after-free: cancel() raced a worker finishing the same
  // job, and finish_locked dropping the jobs_ entry could free the Job out
  // from under cancel's reference.  Hammer exactly that window — submit
  // fast jobs while a seeded canceller fires at random ids — and check the
  // terminal-state accounting balances: every submitted job ends exactly
  // one of executed / cancelled / expired, nothing is lost or doubled.
  constexpr int kJobs = 600;
  std::atomic<int64_t> ran{0};
  std::atomic<int64_t> dropped{0};
  std::vector<uint64_t> ids;
  ids.reserve(kJobs);
  {
    JobScheduler sched(3, /*promote_after_ms=*/0);
    std::mt19937 rng(0xABCDu);
    for (int i = 0; i < kJobs; ++i) {
      ids.push_back(sched.submit(
          [&](JobContext&) { ran.fetch_add(1, std::memory_order_relaxed); },
          JobPriority::Normal, 0,
          [&](JobState) { dropped.fetch_add(1, std::memory_order_relaxed); }));
      // Fire cancels into the racing window: some hit queued jobs, some hit
      // running ones, some hit already-finished ids — all must be safe.
      if (i % 3 == 0) sched.cancel(ids[rng() % ids.size()]);
    }
    for (uint64_t id : ids) {
      const JobState st = sched.wait(id);
      EXPECT_TRUE(st == JobState::Done || st == JobState::Cancelled)
          << job_state_name(st);
    }
    const serve::SchedulerStats st = sched.stats();
    EXPECT_EQ(st.submitted, kJobs);
    EXPECT_EQ(st.executed + st.cancelled + st.expired, kJobs);
    EXPECT_EQ(st.queued, 0);
    EXPECT_EQ(st.running, 0);
    EXPECT_EQ(st.failed, 0);
    EXPECT_EQ(ran.load(), st.executed);
    EXPECT_EQ(dropped.load(), st.cancelled + st.expired);
  }
  EXPECT_EQ(ran.load() + dropped.load(), kJobs);
}

TEST(Server, LeaderAbortFailsTicketsOpenAndRecovers) {
  // Misuse-hook reconstruction of the PR-7 leader-wedge: the batch hook
  // throws outside the per-ticket barriers, exactly where an unforeseen
  // exception escaped the drain loop before the LeaderGuard existed.  The
  // guard must fail the open tickets (error responses, not hangs) and
  // release leadership so the key serves again.  Before the guard, the
  // *second* request here parked forever as a follower of a dead leader.
  ServerCore core(small_opts());
  ASSERT_TRUE(core.handle(run_req("matmul", "square")).get("ok").as_bool());

  static std::atomic<int> aborts_left{2};
  serve::testing::batch_abort_hook.store(+[] {
    if (aborts_left.fetch_sub(1) > 0)
      throw std::runtime_error("injected leader abort");
  });
  const Json aborted = core.handle(run_req("matmul", "square"));
  EXPECT_FALSE(aborted.get("ok").as_bool());
  serve::testing::batch_abort_hook.store(nullptr);

  // Not wedged: leadership was released by the guard, a new leader runs.
  const Json after = core.handle(run_req("matmul", "square"));
  EXPECT_TRUE(after.get("ok").as_bool());
}

TEST(Server, LeaderAbortFailsConcurrentFollowersOpen) {
  // Same injection under concurrency: every request racing the aborted
  // batch must come back *answered* — ok, or an injected/aborted error —
  // and the key must serve normally afterwards.  A wedge shows up as this
  // test hanging (followers waiting on a cv nobody will signal).
  ServerCore core(small_opts());
  ASSERT_TRUE(core.handle(run_req("matmul", "square")).get("ok").as_bool());

  static std::atomic<int> hook_aborts{3};
  serve::testing::batch_abort_hook.store(+[] {
    if (hook_aborts.fetch_sub(1) > 0)
      throw std::runtime_error("injected leader abort");
  });
  std::atomic<int> answered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        const Json r = core.handle(run_req("matmul", "square"));
        ASSERT_TRUE(r.find("ok") != nullptr);
        ++answered;
      }
    });
  }
  for (auto& t : threads) t.join();
  serve::testing::batch_abort_hook.store(nullptr);
  EXPECT_EQ(answered.load(), 60);
  const Json after = core.handle(run_req("matmul", "square"));
  EXPECT_TRUE(after.get("ok").as_bool());
}

// ---------------------------------------------------------------------------
// Property: cache-served plans are bit-identical to fresh compiles
// ---------------------------------------------------------------------------

TEST(Server, CacheServedPlansBitIdenticalToFreshCompiles) {
  ServeOptions opts = small_opts();
  ServerCore warm(opts);
  for (const std::string& name : all_benchmark_names()) {
    const Benchmark b = get_benchmark(name);
    ASSERT_FALSE(b.datasets.empty());
    const std::string& ds = b.datasets.front().name;
    const Json first = warm.handle(run_req(name, ds));
    ASSERT_TRUE(first.get("ok").as_bool()) << name;
    const Json served = warm.handle(run_req(name, ds));
    ASSERT_TRUE(served.get("ok").as_bool()) << name;
    EXPECT_TRUE(served.get("cached").as_bool()) << name;

    ServerCore fresh(opts);
    const Json scratch = fresh.handle(run_req(name, ds));
    ASSERT_TRUE(scratch.get("ok").as_bool()) << name;
    EXPECT_EQ(served.get("estimate_us").as_double(),
              scratch.get("estimate_us").as_double())
        << name << ": cache-served estimate differs from fresh compile";
    EXPECT_EQ(served.get("kernel_launches").as_double(),
              scratch.get("kernel_launches").as_double())
        << name;
    EXPECT_EQ(first.get("estimate_us").as_double(),
              served.get("estimate_us").as_double())
        << name;
  }
}

// ---------------------------------------------------------------------------
// Socket round trip
// ---------------------------------------------------------------------------

struct SocketFixture {
  ServerCore core;
  ServeSocket sock;
  std::thread loop;

  explicit SocketFixture(const serve::Endpoint& ep,
                         serve::SocketOptions sopts = {})
      : core(small_opts()), sock(core, ep, sopts) {
    loop = std::thread([this] { sock.serve_forever(); });
  }
  ~SocketFixture() {
    sock.stop();
    loop.join();
  }
};

TEST(Socket, UnixRoundTripWithPipelinedIds) {
  const serve::Endpoint ep =
      serve::parse_endpoint("unix:/tmp/incflat_test_serve.sock");
  SocketFixture fx(ep);
  ServeClient client(ep);
  Json ping = Json::object();
  ping.set("op", "ping");
  ping.set("id", "first");
  const Json pong = client.call(ping);
  EXPECT_TRUE(pong.get("ok").as_bool());
  EXPECT_EQ(pong.get("id").as_string(), "first");
  // A real compile + run over the wire.
  Json run = run_req("matmul", "square");
  const Json r = client.call(run);
  EXPECT_TRUE(r.get("ok").as_bool());
  EXPECT_GT(r.get("time_us").as_double(), 0);
  // Malformed JSON payload fails that one request; the connection lives.
  const Json bad = Json::parse(client.call_text("{oops"));
  EXPECT_FALSE(bad.get("ok").as_bool());
  EXPECT_EQ(bad.get("code").as_string(), "bad-request");
  const Json again = client.call(ping);
  EXPECT_TRUE(again.get("ok").as_bool());
}

TEST(Socket, TcpEphemeralPortAndConcurrentClients) {
  const serve::Endpoint ep = serve::parse_endpoint("tcp:127.0.0.1:0");
  SocketFixture fx(ep);
  ASSERT_GT(fx.sock.bound_port(), 0);
  serve::Endpoint client_ep = ep;
  client_ep.port = fx.sock.bound_port();
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      try {
        ServeClient cl(client_ep);
        for (int i = 0; i < 10; ++i) {
          const Json r = cl.call(run_req("matmul", "square"));
          if (!r.get("ok").as_bool()) ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(fx.core.request_stats().runs, 40);
}

TEST(Socket, ShutdownOpAcksThenStopsTheLoop) {
  const serve::Endpoint ep =
      serve::parse_endpoint("unix:/tmp/incflat_test_shutdown.sock");
  ServerCore core(small_opts());
  ServeSocket sock(core, ep);
  std::thread loop([&] { sock.serve_forever(); });
  {
    ServeClient client(ep);
    Json req = Json::object();
    req.set("op", "shutdown");
    const Json resp = client.call(req);
    EXPECT_TRUE(resp.get("ok").as_bool());
    EXPECT_TRUE(resp.get("shutdown").as_bool());
  }
  loop.join();  // the loop exited because of the op, not stop()
}

TEST(Socket, ProtocolErrorDrainsAfterInflightResponses) {
  // A slow request (a real run through the scheduler) followed in the same
  // burst by a poisoned length prefix: the protocol error must take the next
  // sequence number and drain *after* the run's response — the documented
  // in-order guarantee holds through the connection's final frames.
  const serve::Endpoint ep =
      serve::parse_endpoint("unix:/tmp/incflat_test_poison.sock");
  SocketFixture fx(ep);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string bytes = serve::encode_frame(run_req("matmul", "square").str(-1));
  bytes.append("\xff\xff\xff\xff", 4);  // hostile 4 GiB length prefix
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  std::string got;
  char buf[4096];
  for (;;) {  // the server closes the connection once both responses drain
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    got.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  FrameReader r;
  r.feed(got);
  std::string payload;
  ASSERT_TRUE(r.next(&payload));
  const Json first = Json::parse(payload);
  EXPECT_TRUE(first.get("ok").as_bool());
  EXPECT_GT(first.get("time_us").as_double(), 0);
  ASSERT_TRUE(r.next(&payload));
  const Json second = Json::parse(payload);
  EXPECT_FALSE(second.get("ok").as_bool());
  EXPECT_EQ(second.get("code").as_string(), "protocol");
  EXPECT_FALSE(r.next(&payload));
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Server, ExpiredDeadlineAnswersTimeoutBeforeRunning) {
  ServerCore core(small_opts());
  CancelToken tok;
  tok.cancel();  // an already-dead deadline: handle() must not start work
  Json req = run_req("matmul", "square");
  req.set("id", "d1");
  const Json resp = core.handle(req, &tok);
  EXPECT_FALSE(resp.get("ok").as_bool());
  EXPECT_EQ(resp.get("code").as_string(), "timeout");
  EXPECT_TRUE(serve::is_retriable(resp));
  EXPECT_EQ(resp.get("id").as_string(), "d1");
  EXPECT_EQ(core.request_stats().deadline_expired, 1);
  EXPECT_EQ(core.request_stats().errors, 1);
}

TEST(Socket, DeadlineExpiresInQueueOverTheWire) {
  const serve::Endpoint ep =
      serve::parse_endpoint("unix:/tmp/incflat_test_deadline.sock");
  SocketFixture fx(ep);
  // Occupy both workers so the run sits in the queue past its deadline.
  std::atomic<bool> release{false};
  std::vector<uint64_t> gates;
  for (int i = 0; i < 2; ++i) {
    gates.push_back(fx.core.scheduler().submit(
        [&](JobContext&) {
          while (!release.load()) std::this_thread::yield();
        },
        JobPriority::High));
  }
  ServeClient client(ep);
  Json req = run_req("matmul", "square");
  req.set("deadline_ms", 20.0);
  req.set("id", "dl");
  // Expiry is detected when a worker next scans the queue, so free the
  // workers well after the deadline passes — from a side thread, since
  // call() blocks until the timeout answer arrives.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    release.store(true);
  });
  const Json resp = client.call(req);
  releaser.join();
  EXPECT_FALSE(resp.get("ok").as_bool());
  EXPECT_EQ(resp.get("code").as_string(), "timeout");
  EXPECT_TRUE(serve::is_retriable(resp));
  // The drop-path answer still correlates: the request id is echoed.
  EXPECT_EQ(resp.get("id").as_string(), "dl");
  for (const uint64_t g : gates) fx.core.scheduler().wait(g);
}

TEST(Socket, ConnCapAnswersOverloadedThenCloses) {
  const serve::Endpoint ep =
      serve::parse_endpoint("unix:/tmp/incflat_test_conncap.sock");
  serve::SocketOptions so;
  so.max_conns = 1;
  SocketFixture fx(ep, so);
  ServeClient keeper(ep);
  Json ping = Json::object();
  ping.set("op", "ping");
  EXPECT_TRUE(keeper.call(ping).get("ok").as_bool());
  // The second connection gets one retriable "overloaded" frame, then EOF.
  ServeClient spill(ep);
  const Json r = spill.call(ping);
  EXPECT_FALSE(r.get("ok").as_bool());
  EXPECT_EQ(r.get("code").as_string(), "overloaded");
  EXPECT_TRUE(serve::is_retriable(r));
  EXPECT_THROW(spill.call(ping), IoError);
  // The admitted connection is unaffected.
  EXPECT_TRUE(keeper.call(ping).get("ok").as_bool());
}

TEST(Socket, InflightCapShedsPipelinedRequests) {
  const serve::Endpoint ep =
      serve::parse_endpoint("unix:/tmp/incflat_test_inflight.sock");
  serve::SocketOptions so;
  so.max_inflight_per_conn = 1;
  SocketFixture fx(ep, so);
  // Gate both workers so the first request stays in flight while the
  // second arrives pipelined on the same connection.
  std::atomic<bool> release{false};
  std::vector<uint64_t> gates;
  for (int i = 0; i < 2; ++i) {
    gates.push_back(fx.core.scheduler().submit(
        [&](JobContext&) {
          while (!release.load()) std::this_thread::yield();
        },
        JobPriority::High));
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  Json r1 = run_req("matmul", "square");
  r1.set("id", "a");
  Json r2 = run_req("matmul", "square");
  r2.set("id", "b");
  const std::string bytes =
      serve::encode_frame(r1.str(-1)) + serve::encode_frame(r2.str(-1));
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  // Give the loop time to decode both frames (the second sheds while the
  // first is still in flight), then let the first run.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.store(true);
  std::string got;
  char buf[4096];
  std::vector<Json> resps;
  FrameReader reader;
  while (resps.size() < 2) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "connection closed before both responses arrived";
    reader.feed(buf, static_cast<size_t>(n));
    std::string payload;
    while (reader.next(&payload)) resps.push_back(Json::parse(payload));
  }
  ::close(fd);
  // In order: the admitted run's answer first, then the shed answer.
  EXPECT_TRUE(resps[0].get("ok").as_bool());
  EXPECT_EQ(resps[0].get("id").as_string(), "a");
  EXPECT_FALSE(resps[1].get("ok").as_bool());
  EXPECT_EQ(resps[1].get("code").as_string(), "overloaded");
  EXPECT_TRUE(serve::is_retriable(resps[1]));
  EXPECT_EQ(resps[1].get("id").as_string(), "b");
  for (const uint64_t g : gates) fx.core.scheduler().wait(g);
}

TEST(Socket, GracefulDrainFinishesInflightAndRejectsNew) {
  const serve::Endpoint ep =
      serve::parse_endpoint("unix:/tmp/incflat_test_drain.sock");
  ServerCore core(small_opts());
  serve::SocketOptions so;
  so.drain_ms = 4000;
  ServeSocket sock(core, ep, so);
  std::thread loop([&] { sock.serve_forever(); });
  std::atomic<bool> release{false};
  std::vector<uint64_t> gates;
  for (int i = 0; i < 2; ++i) {
    gates.push_back(core.scheduler().submit(
        [&](JobContext&) {
          while (!release.load()) std::this_thread::yield();
        },
        JobPriority::High));
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // One request admitted before the drain...
  Json keep = run_req("matmul", "square");
  keep.set("id", "keep");
  std::string bytes = serve::encode_frame(keep.str(-1));
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  sock.request_drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // ...and one sent after it began: fail-fast "draining", retriable.
  Json late = run_req("matmul", "square");
  late.set("id", "late");
  bytes = serve::encode_frame(late.str(-1));
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  release.store(true);
  // The drain finishes the in-flight run, answers both in order, then
  // closes the connection and exits the loop — clean, nothing forced.
  std::string got;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    got.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  loop.join();
  FrameReader reader;
  reader.feed(got);
  std::string payload;
  ASSERT_TRUE(reader.next(&payload));
  const Json first = Json::parse(payload);
  EXPECT_TRUE(first.get("ok").as_bool());
  EXPECT_EQ(first.get("id").as_string(), "keep");
  ASSERT_TRUE(reader.next(&payload));
  const Json second = Json::parse(payload);
  EXPECT_FALSE(second.get("ok").as_bool());
  EXPECT_EQ(second.get("code").as_string(), "draining");
  EXPECT_TRUE(serve::is_retriable(second));
  EXPECT_EQ(second.get("id").as_string(), "late");
  EXPECT_FALSE(reader.next(&payload));
  const serve::DrainStats& ds = sock.drain_stats();
  EXPECT_TRUE(ds.requested);
  EXPECT_TRUE(ds.clean);
  EXPECT_EQ(ds.forced_conns, 0);
  // The listen socket is gone: new connections are refused.
  EXPECT_THROW(ServeClient{ep}, IoError);
  for (const uint64_t g : gates) core.scheduler().wait(g);
}

TEST(Socket, ClientResponseTimeoutThrowsIoError) {
  const serve::Endpoint ep =
      serve::parse_endpoint("unix:/tmp/incflat_test_clienttimeout.sock");
  SocketFixture fx(ep);
  std::atomic<bool> release{false};
  std::vector<uint64_t> gates;
  for (int i = 0; i < 2; ++i) {
    gates.push_back(fx.core.scheduler().submit(
        [&](JobContext&) {
          while (!release.load()) std::this_thread::yield();
        },
        JobPriority::High));
  }
  ServeClient client(ep, /*timeout_ms=*/60);
  EXPECT_THROW(client.call(run_req("matmul", "square")), IoError);
  release.store(true);
  for (const uint64_t g : gates) fx.core.scheduler().wait(g);
}

TEST(Socket, EndpointParsing) {
  const serve::Endpoint u = serve::parse_endpoint("unix:/tmp/x.sock");
  EXPECT_EQ(u.kind, serve::Endpoint::Kind::Unix);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  const serve::Endpoint t = serve::parse_endpoint("tcp:7465");
  EXPECT_EQ(t.kind, serve::Endpoint::Kind::Tcp);
  EXPECT_EQ(t.port, 7465);
  const serve::Endpoint h = serve::parse_endpoint("tcp:127.0.0.1:8080");
  EXPECT_EQ(h.host, "127.0.0.1");
  EXPECT_EQ(h.port, 8080);
  EXPECT_THROW(serve::parse_endpoint("unix:"), IoError);
  EXPECT_THROW(serve::parse_endpoint("tcp:notaport"), IoError);
  EXPECT_THROW(serve::parse_endpoint("smoke:signals"), IoError);
}

}  // namespace
}  // namespace incflat
