// Fault injection, graceful degradation, and the crash-safe noisy tuner.
//
// Covers the robustness contract end to end:
//   * FaultSpec / RunPolicy parsing and canonical round-trips;
//   * FaultPlan determinism (same seed => same sequence) and scripted
//     schedules;
//   * plan_launch_schedule agrees with plan_cost and carries guard paths;
//   * retry/backoff accounting to the microsecond on scripted faults;
//   * the degradation chain on every benchsuite program and both devices:
//     a degraded run's values are bit-identical to the source program's
//     (the interpreter oracle);
//   * unrecoverable runs return a structured Diagnostic, never throw;
//   * the noisy median-of-k tuner still finds the exhaustive oracle's
//     quality on the Fig. 2 matmul, candidates that time out are marked
//     infeasible, the wall-clock budget stops the search gracefully, and a
//     crash-truncated journal resumes to a bit-identical TuningReport.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/autotune/autotune.h"
#include "src/autotune/journal.h"
#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/exec/runtime.h"
#include "src/gpusim/faults.h"
#include "src/plan/plan.h"
#include "src/support/error.h"
#include "src/support/rng.h"

namespace incflat {
namespace {

// ---------------------------------------------------------------------------
// FaultSpec / RunPolicy parsing
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesKindsAndRoundTrips) {
  const FaultSpec s = parse_fault_spec(
      "launch-failed=0.1,launch-timeout=0.2,local-alloc=0.05,"
      "device-lost=0.01,noise=0.3");
  EXPECT_DOUBLE_EQ(s.launch_failed, 0.1);
  EXPECT_DOUBLE_EQ(s.launch_timeout, 0.2);
  EXPECT_DOUBLE_EQ(s.local_alloc, 0.05);
  EXPECT_DOUBLE_EQ(s.device_lost, 0.01);
  EXPECT_DOUBLE_EQ(s.noise, 0.3);
  EXPECT_TRUE(s.enabled());
  // The canonical rendering parses back to the same spec.
  const FaultSpec back = parse_fault_spec(fault_spec_str(s));
  EXPECT_DOUBLE_EQ(back.launch_failed, s.launch_failed);
  EXPECT_DOUBLE_EQ(back.launch_timeout, s.launch_timeout);
  EXPECT_DOUBLE_EQ(back.local_alloc, s.local_alloc);
  EXPECT_DOUBLE_EQ(back.device_lost, s.device_lost);
  EXPECT_DOUBLE_EQ(back.noise, s.noise);
}

TEST(FaultSpec, AllShorthandSpreadsEvenly) {
  const FaultSpec s = parse_fault_spec("all=0.02");
  EXPECT_DOUBLE_EQ(s.launch_failed, 0.005);
  EXPECT_DOUBLE_EQ(s.launch_timeout, 0.005);
  EXPECT_DOUBLE_EQ(s.local_alloc, 0.005);
  EXPECT_DOUBLE_EQ(s.device_lost, 0.005);
  EXPECT_DOUBLE_EQ(s.noise, 0.0);
}

TEST(FaultSpec, OffAndEmptyDisable) {
  EXPECT_FALSE(parse_fault_spec("").enabled());
  EXPECT_FALSE(parse_fault_spec("off").enabled());
  EXPECT_FALSE(parse_fault_spec("none").enabled());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_spec("all=zzz"), IoError);
  EXPECT_THROW(parse_fault_spec("launch-failed=1.5"), IoError);
  EXPECT_THROW(parse_fault_spec("launch-failed=-0.1"), IoError);
  EXPECT_THROW(parse_fault_spec("bogus-key=0.1"), IoError);
  EXPECT_THROW(parse_fault_spec("launch-failed"), IoError);
  // Launch rates must sum to a probability.
  EXPECT_THROW(parse_fault_spec("launch-failed=0.6,device-lost=0.6"),
               IoError);
  // Noise is a relative amplitude in [0, 1).
  EXPECT_THROW(parse_fault_spec("noise=1.0"), IoError);
  // Scripted entries need a known kind and a non-negative integer index.
  EXPECT_THROW(parse_fault_spec("bogus@0"), IoError);
  EXPECT_THROW(parse_fault_spec("local-alloc@-1"), IoError);
  EXPECT_THROW(parse_fault_spec("local-alloc@x"), IoError);
  EXPECT_THROW(parse_fault_spec("noise@0"), IoError);
}

TEST(FaultSpec, ScriptedEntriesParseRoundTripAndSeedThePlan) {
  const FaultSpec s =
      parse_fault_spec("local-alloc@0,device-lost@3,launch-failed=0.25");
  ASSERT_EQ(s.script.size(), 2u);
  EXPECT_EQ(s.script[0].first, 0);
  EXPECT_EQ(s.script[0].second, FaultKind::LocalAllocFailed);
  EXPECT_EQ(s.script[1].first, 3);
  EXPECT_EQ(s.script[1].second, FaultKind::DeviceLost);
  const FaultSpec back = parse_fault_spec(fault_spec_str(s));
  EXPECT_EQ(back.script, s.script);
  EXPECT_EQ(back.launch_failed, s.launch_failed);

  // A script-only spec has a zero launch rate but still faults launches.
  const FaultSpec only = parse_fault_spec("local-alloc@2");
  EXPECT_EQ(only.launch_rate(), 0.0);
  EXPECT_TRUE(only.faults_launches());
  EXPECT_TRUE(only.enabled());

  // The plan honours the spec's script without consuming any randomness.
  FaultPlan plan(only, 17);
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.next_launch(), FaultKind::None);
  EXPECT_EQ(plan.next_launch(), FaultKind::None);
  EXPECT_EQ(plan.next_launch(), FaultKind::LocalAllocFailed);
  EXPECT_EQ(plan.next_launch(), FaultKind::None);
}

TEST(RunPolicy, ParsesAndRoundTrips) {
  const RunPolicy p =
      parse_run_policy("retries=2,backoff=10,backoff-cap=100,timeout=500,"
                       "degradations=3");
  EXPECT_EQ(p.max_attempts, 3);  // first try + 2 retries
  EXPECT_DOUBLE_EQ(p.backoff_us, 10);
  EXPECT_DOUBLE_EQ(p.backoff_cap_us, 100);
  EXPECT_DOUBLE_EQ(p.kernel_timeout_us, 500);
  EXPECT_EQ(p.max_degradations, 3);
  const RunPolicy back = parse_run_policy(run_policy_str(p));
  EXPECT_EQ(back.max_attempts, p.max_attempts);
  EXPECT_DOUBLE_EQ(back.backoff_us, p.backoff_us);
  EXPECT_EQ(back.max_degradations, p.max_degradations);
}

TEST(RunPolicy, DefaultsAndErrors) {
  const RunPolicy d = parse_run_policy("");
  EXPECT_EQ(d.max_attempts, 4);
  EXPECT_EQ(parse_run_policy("default").max_attempts, d.max_attempts);
  EXPECT_THROW(parse_run_policy("retries=-1"), IoError);
  EXPECT_THROW(parse_run_policy("retries=1.5"), IoError);
  EXPECT_THROW(parse_run_policy("nonsense"), IoError);
  EXPECT_THROW(parse_run_policy("unknown=1"), IoError);
}

// ---------------------------------------------------------------------------
// FaultPlan determinism
// ---------------------------------------------------------------------------

TEST(FaultPlan, SameSeedSameSequence) {
  const FaultSpec spec = parse_fault_spec("all=0.2,noise=0.1");
  FaultPlan a(spec, 42), b(spec, 42), c(spec, 43);
  bool differs_from_c = false;
  for (int i = 0; i < 1000; ++i) {
    const FaultKind ka = a.next_launch();
    EXPECT_EQ(ka, b.next_launch()) << "launch " << i;
    EXPECT_DOUBLE_EQ(a.noise_factor(), b.noise_factor()) << "noise " << i;
    if (ka != c.next_launch()) differs_from_c = true;
  }
  EXPECT_TRUE(differs_from_c);  // a different seed gives a different plan
}

TEST(FaultPlan, ResetReplaysFromTheSeed) {
  const FaultSpec spec = parse_fault_spec("all=0.3");
  FaultPlan p(spec, 7);
  std::vector<FaultKind> first;
  for (int i = 0; i < 100; ++i) first.push_back(p.next_launch());
  p.reset();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(p.next_launch(), first[static_cast<size_t>(i)]) << i;
  }
}

TEST(FaultPlan, ScriptedFaultsFireAtTheirIndexOnly) {
  FaultPlan p;  // zero rates: nothing random can fire
  p.script(3, FaultKind::DeviceLost);
  p.script(5, FaultKind::LocalAllocFailed);
  for (int i = 0; i < 10; ++i) {
    const FaultKind k = p.next_launch();
    if (i == 3) {
      EXPECT_EQ(k, FaultKind::DeviceLost);
    } else if (i == 5) {
      EXPECT_EQ(k, FaultKind::LocalAllocFailed);
    } else {
      EXPECT_EQ(k, FaultKind::None);
    }
  }
  EXPECT_EQ(p.launches(), 10);
}

TEST(FaultPlan, ScriptedOverridesConsumeNoRandomness) {
  // Two plans with the same seed, one with a scripted override: the random
  // sequence after the scripted index must be unaffected.
  const FaultSpec spec = parse_fault_spec("all=0.25");
  FaultPlan plain(spec, 99), scripted(spec, 99);
  scripted.script(0, FaultKind::DeviceLost);
  EXPECT_EQ(scripted.next_launch(), FaultKind::DeviceLost);
  const FaultKind first_random = plain.next_launch();
  (void)first_random;
  // From index 1 on, `scripted` is one draw *behind* plain — replay both
  // from scratch to compare aligned sequences instead.
  plain.reset();
  scripted.reset();
  std::vector<FaultKind> seq_plain, seq_scripted;
  for (int i = 0; i < 50; ++i) seq_plain.push_back(plain.next_launch());
  for (int i = 0; i < 50; ++i) seq_scripted.push_back(scripted.next_launch());
  EXPECT_EQ(seq_scripted[0], FaultKind::DeviceLost);
  // The scripted launch consumed no draw, so scripted[i] == plain[i-1].
  for (int i = 1; i < 50; ++i) {
    EXPECT_EQ(seq_scripted[static_cast<size_t>(i)],
              seq_plain[static_cast<size_t>(i - 1)])
        << i;
  }
}

// ---------------------------------------------------------------------------
// plan_launch_schedule
// ---------------------------------------------------------------------------

TEST(LaunchSchedule, SumsToPlanCostAndCarriesGuardPaths) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  ASSERT_TRUE(c.plan && !c.plan->legacy_fallback);
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = b.datasets.at(0).sizes;
  const PlanDatasetCache cache(*c.plan, dev, sizes);

  ThresholdEnv all_on;
  all_on.default_threshold = 1;
  for (const ThresholdEnv& env : {ThresholdEnv{}, all_on}) {
    const std::vector<LaunchInfo> sched =
        plan_launch_schedule(*c.plan, cache, env);
    ASSERT_FALSE(sched.empty());
    double total = 0;
    for (const LaunchInfo& li : sched) total += li.time_us;
    const double want = plan_cost(*c.plan, cache, env);
    EXPECT_NEAR(total, want, 1e-9 * std::max(1.0, want));
  }

  // Under the all-on assignment the selected kernels sit below taken
  // guards: the degradation chain must be visible on their paths.
  bool some_taken = false;
  for (const LaunchInfo& li : plan_launch_schedule(*c.plan, cache, all_on)) {
    for (const auto& [name, taken] : li.guard_path) {
      if (taken) some_taken = true;
    }
  }
  EXPECT_TRUE(some_taken);
}

// ---------------------------------------------------------------------------
// Retry / backoff accounting (scripted, exact to the microsecond)
// ---------------------------------------------------------------------------

TEST(FaultedRun, TransientFaultsRetryWithExponentialBackoff) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();  // launch_overhead_us = 5.0
  const SizeEnv sizes = b.datasets.at(0).sizes;
  const RunEstimate fault_free = simulate(dev, c, sizes, {});

  // Launches 0 and 1 fail transiently, launch 2 (second attempt of the
  // first kernel... actually third) succeeds.
  FaultPlan faults;
  faults.script(0, FaultKind::LaunchFailed);
  faults.script(1, FaultKind::LaunchFailed);
  const RunOutcome out = run_with_faults(dev, c, sizes, {}, faults);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.faults, 2);
  EXPECT_EQ(out.retries, 2);
  EXPECT_EQ(out.degradations, 0);
  // Each failed launch burns launch_overhead_us (5); backoffs are 50 then
  // 100 (50 * 2^1), so the overhead is exactly 2*5 + 50 + 100.
  EXPECT_DOUBLE_EQ(out.overhead_us, 160.0);
  EXPECT_DOUBLE_EQ(out.time_us, fault_free.time_us + 160.0);
  EXPECT_DOUBLE_EQ(out.estimate.time_us, fault_free.time_us);
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[0].action, "retry");
  EXPECT_EQ(out.events[0].attempt, 1);
  EXPECT_EQ(out.events[1].attempt, 2);
}

TEST(FaultedRun, DeviceLostCostsAResetRoundTrip) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = b.datasets.at(0).sizes;

  FaultPlan faults;
  faults.script(0, FaultKind::DeviceLost);
  const RunOutcome out = run_with_faults(dev, c, sizes, {}, faults);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.faults, 1);
  EXPECT_EQ(out.retries, 1);
  // 10x launch overhead for the reset plus the first backoff of 50.
  EXPECT_DOUBLE_EQ(out.overhead_us, 10 * dev.launch_overhead_us + 50.0);
}

TEST(FaultedRun, BackoffIsCapped) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = b.datasets.at(0).sizes;

  // 6 transient faults in a row with a tiny cap: backoffs are
  // min(50*2^k, 80) = 50, 80, 80, 80, 80, and the 6th attempt succeeds.
  RunPolicy policy = parse_run_policy("retries=8,backoff=50,backoff-cap=80");
  FaultPlan faults;
  for (int i = 0; i < 5; ++i) faults.script(i, FaultKind::LaunchFailed);
  const RunOutcome out = run_with_faults(dev, c, sizes, {}, faults, policy);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.retries, 5);
  EXPECT_DOUBLE_EQ(out.overhead_us, 5 * 5.0 + 50 + 80 + 80 + 80 + 80);
}

// ---------------------------------------------------------------------------
// Degradation chain: every benchmark, both devices, interpreter oracle
// ---------------------------------------------------------------------------

class DegradationSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(DegradationSuite, DegradedRunsAreValueIdenticalToTheSource) {
  const Benchmark b = get_benchmark(GetParam());
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  Rng rng(0xabc);
  const std::vector<Value> inputs = b.gen_inputs(rng, b.test_sizes);
  const Values want = execute_source(c, b.test_sizes, inputs);

  // Threshold 1 turns every guard on at the interpreter-sized datasets, so
  // the run starts on the most-parallel version with the whole chain of
  // sibling versions below it.
  ThresholdEnv all_on;
  all_on.default_threshold = 1;

  for (const DeviceProfile& dev : {device_k40(), device_vega64()}) {
    // A scripted persistent fault on the first launch forces at least one
    // degradation (when a taken guard exists at these sizes).
    FaultPlan scripted;
    scripted.script(0, FaultKind::LocalAllocFailed);
    const RunOutcome one =
        run_with_faults(dev, c, b.test_sizes, all_on, scripted);
    if (one.ok && one.degradations > 0) {
      const Values got = execute(dev, c, b.test_sizes, one.thresholds, inputs);
      ASSERT_EQ(got.size(), want.size()) << b.name << " " << dev.name;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(got[i].approx_equal(want[i], 0))
            << b.name << " on " << dev.name << ": degraded run diverged";
      }
    }

    // A heavy random local-alloc rate walks further down the chain; every
    // recoverable outcome must stay bit-identical, every unrecoverable one
    // must carry a structured diagnostic.
    for (uint64_t seed : {1u, 2u, 3u}) {
      FaultPlan heavy(parse_fault_spec("local-alloc=0.5"), seed);
      const RunOutcome out =
          run_with_faults(dev, c, b.test_sizes, all_on, heavy);
      if (!out.ok) {
        ASSERT_TRUE(out.error.has_value());
        EXPECT_EQ(out.error->check, "fault-unrecoverable");
        continue;
      }
      EXPECT_EQ(static_cast<int>(out.degraded.size()), out.degradations);
      const Values got = execute(dev, c, b.test_sizes, out.thresholds, inputs);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(got[i].approx_equal(want[i], 0))
            << b.name << " on " << dev.name << " seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, DegradationSuite,
                         ::testing::ValuesIn(all_benchmark_names()),
                         [](const auto& info) { return info.param; });

TEST(FaultedRun, DegradationForcesTheInnermostTakenGuardOff) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = b.datasets.at(0).sizes;  // large: guards taken

  FaultPlan faults;
  faults.script(0, FaultKind::LocalAllocFailed);
  const RunOutcome out = run_with_faults(dev, c, sizes, {}, faults);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.degradations, 1);
  ASSERT_EQ(out.degraded.size(), 1u);
  // The forced guard reads as "always off" in the effective assignment.
  EXPECT_EQ(out.thresholds.values.at(out.degraded[0]), int64_t{1} << 62);
  // And the degrade event names it.
  ASSERT_FALSE(out.events.empty());
  EXPECT_EQ(out.events.back().action, "degrade");
  EXPECT_EQ(out.events.back().threshold, out.degraded[0]);
  // The degraded estimate prices the *sibling* version: selection changed.
  const RunEstimate fault_free = simulate(dev, c, sizes, {});
  EXPECT_NE(out.estimate.time_us, fault_free.time_us);
}

TEST(FaultedRun, AllVersionsFailingReturnsAStructuredDiagnostic) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = b.datasets.at(0).sizes;

  // Every launch alloc-fails: the chain degrades to the fully flattened
  // leaf, which then also faults persistently — no sibling remains.
  FaultPlan faults(parse_fault_spec("local-alloc=1"), 0);
  const RunOutcome out = run_with_faults(dev, c, sizes, {}, faults);
  EXPECT_FALSE(out.ok);
  ASSERT_TRUE(out.error.has_value());
  EXPECT_EQ(out.error->severity, Severity::Error);
  EXPECT_EQ(out.error->check, "fault-unrecoverable");
  EXPECT_NE(out.error->message.find("no surviving sibling"),
            std::string::npos);
  ASSERT_FALSE(out.events.empty());
  EXPECT_EQ(out.events.back().action, "abort");
  EXPECT_GT(out.time_us, 0);  // the failed attempts still cost time
}

TEST(FaultedRun, DegradationBudgetIsEnforced) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = b.datasets.at(0).sizes;

  FaultPlan faults(parse_fault_spec("local-alloc=1"), 0);
  const RunPolicy policy = parse_run_policy("degradations=1");
  const RunOutcome out = run_with_faults(dev, c, sizes, {}, faults, policy);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.degradations, 1);
  ASSERT_TRUE(out.error.has_value());
  EXPECT_NE(out.error->message.find("degradation budget"), std::string::npos);
}

TEST(FaultedRun, PolicyTimeoutDegradesKernelsThatCanNeverFinish) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = b.datasets.at(0).sizes;

  // A 1us per-kernel timeout is below every matmul kernel's fault-free
  // time: every version times out persistently and the run ends in a
  // structured failure (never an exception).
  FaultPlan faults;  // no injected faults: the timeout alone triggers
  const RunPolicy policy = parse_run_policy("timeout=1");
  const RunOutcome out = run_with_faults(dev, c, sizes, {}, faults, policy);
  EXPECT_FALSE(out.ok);
  ASSERT_TRUE(out.error.has_value());
  EXPECT_EQ(out.error->check, "fault-unrecoverable");
  EXPECT_GT(out.degradations, 0);  // it walked the chain before giving up
}

TEST(FaultedRun, DisabledFaultPlanIsBitIdenticalToSimulate) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  for (const auto& ds : b.datasets) {
    FaultPlan none;
    const RunOutcome out = run_with_faults(dev, c, ds.sizes, {}, none);
    const RunEstimate est = simulate(dev, c, ds.sizes, {});
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.faults, 0);
    EXPECT_DOUBLE_EQ(out.overhead_us, 0);
    EXPECT_DOUBLE_EQ(out.time_us, est.time_us);
    EXPECT_DOUBLE_EQ(out.estimate.time_us, est.time_us);
  }
}

// ---------------------------------------------------------------------------
// Noisy, fallible, crash-safe tuning
// ---------------------------------------------------------------------------

std::vector<TuningDataset> training_sets(const Benchmark& b) {
  std::vector<TuningDataset> train;
  for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});
  return train;
}

TEST(NoisyTuner, StillFindsTheExhaustiveOracleQualityOnMatmul) {
  const Benchmark b = bench_matmul();
  const FlattenResult fr = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const auto train = training_sets(b);

  const TuningReport oracle =
      exhaustive_tune(dev, fr.program, fr.thresholds, train);

  TunerOptions topts;
  topts.noise = 0.05;        // +-5% multiplicative measurement noise
  topts.failure_rate = 0.02; // 2% of measurements crash outright
  topts.measure_k = 5;
  TuningReport noisy = autotune(dev, fr.program, fr.thresholds, train, topts);

  // Judge the noisy search by the *true* cost of its chosen assignment:
  // median-of-5 re-measurement keeps it at the oracle's quality.
  const double true_best = tuning_cost(dev, fr.program, train, noisy.best);
  EXPECT_LE(true_best, oracle.best_cost_us * 1.02)
      << "noisy tuner lost more than 2% to the exhaustive oracle";
}

TEST(NoisyTuner, NoiseFreeOptionsAreBitIdenticalToTheDefaultSearch) {
  // A session with a journal but no noise must not change the search.
  const Benchmark b = bench_matmul();
  const FlattenResult fr = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const auto train = training_sets(b);

  const TuningReport plain =
      autotune(dev, fr.program, fr.thresholds, train, {});
  TunerOptions jopts;
  const std::string path = "/tmp/incflat_test_plainjournal.journal";
  jopts.journal = path;
  const TuningReport journaled =
      autotune(dev, fr.program, fr.thresholds, train, jopts);
  std::remove(path.c_str());

  EXPECT_EQ(journaled.best_cost_us, plain.best_cost_us);
  EXPECT_EQ(journaled.best.values, plain.best.values);
  EXPECT_EQ(journaled.trials, plain.trials);
  EXPECT_EQ(journaled.evaluations, plain.evaluations);
  EXPECT_EQ(journaled.dedup_hits, plain.dedup_hits);
}

TEST(NoisyTuner, CandidateTimeoutMarksInfeasibleInsteadOfAborting) {
  const Benchmark b = bench_matmul();
  const FlattenResult fr = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const auto train = training_sets(b);

  TunerOptions topts;
  topts.candidate_timeout_us = 1.0;  // far below any real assignment's cost
  const TuningReport rep =
      autotune(dev, fr.program, fr.thresholds, train, topts);
  EXPECT_GT(rep.infeasible, 0);
  EXPECT_EQ(rep.infeasible, rep.evaluations);
  // Nothing was adoptable: the incumbent stays the default assignment.
  EXPECT_TRUE(rep.best.values.empty());
  EXPECT_TRUE(std::isinf(rep.best_cost_us));
}

TEST(NoisyTuner, WallClockBudgetStopsGracefully) {
  const Benchmark b = bench_matmul();
  const FlattenResult fr = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const auto train = training_sets(b);

  TunerOptions topts;
  topts.max_trials = 200000;  // would take far longer than the budget
  topts.budget_ms = 5;
  const TuningReport rep =
      autotune(dev, fr.program, fr.thresholds, train, topts);
  EXPECT_TRUE(rep.early_stopped);
  EXPECT_LT(rep.trials, topts.max_trials);
  // The incumbent is still a valid report.
  EXPECT_GT(rep.best_cost_us, 0);
  EXPECT_LE(rep.best_cost_us, rep.default_cost_us);
}

// ---------------------------------------------------------------------------
// Journal: crash-truncated resume is bit-identical
// ---------------------------------------------------------------------------

TEST(Journal, ResumeAfterCrashIsBitIdentical) {
  const Benchmark b = bench_matmul();
  const FlattenResult fr = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const auto train = training_sets(b);
  const std::string path = "/tmp/incflat_test_resume.journal";

  TunerOptions topts;
  topts.noise = 0.05;
  topts.failure_rate = 0.02;
  topts.journal = path;

  // Reference: one uninterrupted journaled run.
  const TuningReport full =
      autotune(dev, fr.program, fr.thresholds, train, topts);

  // Simulate the crash: keep the header and roughly half the evaluation
  // lines, tearing the final kept line mid-token (as an interrupted append
  // would).
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 4u);  // magic + meta + a few entries
  const size_t keep = 2 + (lines.size() - 2) / 2;
  {
    std::ofstream out(path, std::ios::trunc);
    for (size_t i = 0; i < keep; ++i) out << lines[i] << "\n";
    out << lines[keep].substr(0, lines[keep].size() / 2);  // torn, no '\n'
  }

  TunerOptions ropts = topts;
  ropts.resume = true;
  const TuningReport resumed =
      autotune(dev, fr.program, fr.thresholds, train, ropts);
  std::remove(path.c_str());

  EXPECT_EQ(resumed.best_cost_us, full.best_cost_us);
  EXPECT_EQ(resumed.best.values, full.best.values);
  EXPECT_EQ(resumed.trials, full.trials);
  EXPECT_EQ(resumed.evaluations, full.evaluations);
  EXPECT_EQ(resumed.dedup_hits, full.dedup_hits);
  EXPECT_EQ(resumed.default_cost_us, full.default_cost_us);
  EXPECT_EQ(resumed.journal_replayed, static_cast<int>(keep) - 2);
  EXPECT_GT(resumed.journal_replayed, 0);
}

TEST(Journal, InterleavedAppendersNeverTearLines) {
  // Several handles appending to one journal path concurrently (two tuner
  // processes sharing a path, or a daemon journaling from its workers) may
  // interleave only at line granularity: the fd is O_APPEND and each line
  // is issued as a single write(2).  Every appended entry must replay
  // bit-identically — no torn, merged, or dropped lines.
  const std::string path = "/tmp/incflat_test_interleave.journal";
  JournalMeta meta;
  meta.program = "interleave";
  meta.device = "k40";
  meta.search_seed = 7;
  meta.max_trials = 64;
  meta.measure_seed = 11;

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  std::vector<TuneJournal> handles;
  handles.push_back(TuneJournal::open(path, meta, false, nullptr));
  for (int w = 1; w < kWriters; ++w)
    handles.push_back(TuneJournal::open(path, meta, true, nullptr));

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const uint64_t key = static_cast<uint64_t>(w) * kPerWriter +
                             static_cast<uint64_t>(i);
        // A cost whose bit pattern encodes (writer, index) so a torn or
        // cross-paired line cannot masquerade as a valid entry.
        handles[static_cast<size_t>(w)].append(
            JournalEntry::of(key, 1.0 + static_cast<double>(key) * 1e-9));
      }
    });
  }
  for (auto& t : writers) t.join();
  handles.clear();  // close every fd

  std::vector<JournalEntry> replay;
  TuneJournal resumed = TuneJournal::open(path, meta, true, &replay);
  ASSERT_EQ(replay.size(), static_cast<size_t>(kWriters * kPerWriter));
  std::vector<bool> seen(kWriters * kPerWriter, false);
  for (const JournalEntry& e : replay) {
    ASSERT_LT(e.key_hash, static_cast<uint64_t>(kWriters * kPerWriter));
    const JournalEntry want = JournalEntry::of(
        e.key_hash, 1.0 + static_cast<double>(e.key_hash) * 1e-9);
    EXPECT_EQ(e.cost_bits, want.cost_bits);  // bit-identical round trip
    EXPECT_FALSE(seen[e.key_hash]) << "entry replayed twice";
    seen[e.key_hash] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
  std::remove(path.c_str());
}

TEST(Journal, ResumeRefusesAMismatchedSearch) {
  const Benchmark b = bench_matmul();
  const FlattenResult fr = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const auto train = training_sets(b);
  const std::string path = "/tmp/incflat_test_mismatch.journal";

  TunerOptions topts;
  topts.noise = 0.05;
  topts.journal = path;
  autotune(dev, fr.program, fr.thresholds, train, topts);

  // A different search seed must refuse the resume rather than silently
  // replaying another search's measurements.
  TunerOptions other = topts;
  other.resume = true;
  other.seed = topts.seed + 1;
  EXPECT_THROW(autotune(dev, fr.program, fr.thresholds, train, other),
               IoError);
  // Resuming from a missing journal is an input error too.
  TunerOptions missing = topts;
  missing.resume = true;
  missing.journal = "/tmp/incflat_test_missing.journal";
  std::remove(missing.journal.c_str());
  EXPECT_THROW(autotune(dev, fr.program, fr.thresholds, train, missing),
               IoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace incflat
