// Torture tests: deeply nested parallelism.  The paper notes that the
// number of generated code versions is exponential in the depth of the
// parallel nest but statically bounded by the program's shape; these tests
// pin the version counts for 3- and 4-deep nests and validate semantics
// across the whole guard space.
#include <gtest/gtest.h>

#include <cmath>

#include "src/flatten/flatten.h"
#include "src/gpusim/cost.h"
#include "src/interp/interp.h"
#include "src/ir/builder.h"
#include "src/ir/traverse.h"
#include "src/ir/typecheck.h"
#include "src/support/rng.h"

namespace incflat {
namespace {

using namespace ib;

Type f32s() { return Type::scalar(Scalar::F32); }

/// depth-d nest of maps with a scalar body at the bottom.
ExprP nest_maps(int depth, const std::string& arr) {
  if (depth == 0) return add(var(arr), cf32(1));
  const std::string inner = arr + "r";
  return map1(lam({ib::p(inner, Type())}, nest_maps(depth - 1, inner)),
              var(arr));
}

Program deep_program(int depth) {
  Program p;
  p.name = "deep" + std::to_string(depth);
  std::vector<Dim> shape;
  for (int i = 0; i < depth; ++i) {
    shape.push_back(Dim::v("d" + std::to_string(i)));
  }
  p.inputs = {{"a", Type::array(Scalar::F32, shape)}};
  // nest_maps(depth) consumes one dimension per level; the innermost is a
  // scalar body.
  p.body = map1(lam({ib::p("ar", Type())}, nest_maps(depth - 1, "ar")),
                var("a"));
  return typecheck_program(std::move(p));
}

TEST(DeepNest, ThresholdCountGrowsWithDepth) {
  FlattenResult d2 = flatten(deep_program(2), FlattenMode::Incremental);
  FlattenResult d3 = flatten(deep_program(3), FlattenMode::Incremental);
  FlattenResult d4 = flatten(deep_program(4), FlattenMode::Incremental);
  EXPECT_EQ(d2.thresholds.size(), 2u);
  EXPECT_GT(d3.thresholds.size(), d2.thresholds.size());
  EXPECT_GT(d4.thresholds.size(), d3.thresholds.size());
  // The expansion is exponential in depth but statically bounded — the
  // 4-deep nest stays well under a hundred versions (paper: "manageable").
  EXPECT_LT(count_segops(d4.program.body), 100);
}

TEST(DeepNest, ModerateStaysSingleVersion) {
  FlattenResult d4 = flatten(deep_program(4), FlattenMode::Moderate);
  EXPECT_EQ(d4.thresholds.size(), 0u);
  EXPECT_EQ(count_segops(d4.program.body), 1);  // one flattened segmap
}

TEST(DeepNest, FourDeepSemanticsAcrossGuardSpace) {
  Program p = deep_program(4);
  FlattenResult fr = flatten(p, FlattenMode::Incremental);

  const SizeEnv sizes{{"d0", 2}, {"d1", 3}, {"d2", 2}, {"d3", 2}};
  Rng rng(99);
  Value a = Value::zeros(Scalar::F32, {2, 3, 2, 2});
  for (int64_t i = 0; i < a.count(); ++i) a.fset(i, rng.uniform(-1, 1));

  InterpCtx sctx;
  sctx.sizes = sizes;
  Values want = run_program(sctx, p, {a});

  // Sweep thresholds so every guard flips at least once.
  for (int64_t t : {int64_t{1}, int64_t{2}, int64_t{4}, int64_t{8},
                    int64_t{16}, int64_t{1} << 20}) {
    for (int64_t g : {int64_t{2}, int64_t{6}, int64_t{1} << 20}) {
      InterpCtx ctx = sctx;
      ctx.thresholds.default_threshold = t;
      ctx.max_group_size = g;
      Values got = run_program(ctx, fr.program, {a});
      ASSERT_TRUE(got[0].approx_equal(want[0], 1e-4))
          << "t=" << t << " g=" << g;
    }
  }
}

TEST(DeepNest, ReductionAtTheBottom) {
  // map(map(map(redomap))): the classic 4-level shape; every version must
  // agree with the source.
  Program p;
  p.name = "deepred";
  p.inputs = {{"a", Type::array(Scalar::F32,
                                {Dim::v("d0"), Dim::v("d1"), Dim::v("d2"),
                                 Dim::v("d3")})}};
  Lambda sq = lam({ib::p("x", f32s())}, mul(var("x"), var("x")));
  p.body = map1(
      lam({ib::p("a1", Type())},
          map1(lam({ib::p("a2", Type())},
                   map1(lam({ib::p("a3", Type())},
                            redomap(binlam("+", Scalar::F32), sq,
                                    {cf32(0)}, {var("a3")})),
                        var("a2"))),
               var("a1"))),
      var("a"));
  p = typecheck_program(std::move(p));
  FlattenResult fr = flatten(p, FlattenMode::Incremental);
  EXPECT_GE(fr.thresholds.size(), 5u);

  const SizeEnv sizes{{"d0", 2}, {"d1", 2}, {"d2", 3}, {"d3", 4}};
  Rng rng(7);
  Value a = Value::zeros(Scalar::F32, {2, 2, 3, 4});
  for (int64_t i = 0; i < a.count(); ++i) a.fset(i, rng.uniform(-1, 1));
  InterpCtx sctx;
  sctx.sizes = sizes;
  Values want = run_program(sctx, p, {a});
  for (int64_t t : {int64_t{1}, int64_t{5}, int64_t{12}, int64_t{1} << 18}) {
    InterpCtx ctx = sctx;
    ctx.thresholds.default_threshold = t;
    ctx.max_group_size = 8;
    Values got = run_program(ctx, fr.program, {a});
    ASSERT_TRUE(got[0].approx_equal(want[0], 1e-4)) << "t=" << t;
  }
}

TEST(DeepNest, CostModelHandlesDeepVersions) {
  Program p = deep_program(4);
  FlattenResult fr = flatten(p, FlattenMode::Incremental);
  const DeviceProfile dev = device_vega64();
  const SizeEnv sizes{{"d0", 64}, {"d1", 16}, {"d2", 8}, {"d3", 32}};
  for (int64_t t : {int64_t{1}, int64_t{1} << 10, int64_t{1} << 15,
                    int64_t{1} << 30}) {
    ThresholdEnv env;
    env.default_threshold = t;
    RunEstimate est = estimate_run(dev, fr.program, sizes, env);
    EXPECT_GT(est.time_us, 0);
    EXPECT_TRUE(std::isfinite(est.time_us));
  }
}

}  // namespace
}  // namespace incflat
