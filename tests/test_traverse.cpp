// Unit tests: structural traversals — free variables, SOAC detection,
// renaming, substitution, counting.
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/print.h"
#include "src/ir/traverse.h"

namespace incflat {
namespace {

using namespace ib;

TEST(FreeVars, BindersShadow) {
  // let x = y in x + z : free = {y, z}
  ExprP e = let1("x", var("y"), add(var("x"), var("z")));
  auto fv = free_vars(e);
  EXPECT_TRUE(fv.count("y"));
  EXPECT_TRUE(fv.count("z"));
  EXPECT_FALSE(fv.count("x"));
}

TEST(FreeVars, LambdaParamsBound) {
  ExprP e = map1(lam({p("x", Type::scalar(Scalar::F32))},
                     add(var("x"), var("c"))),
                 var("xs"));
  auto fv = free_vars(e);
  EXPECT_TRUE(fv.count("xs"));
  EXPECT_TRUE(fv.count("c"));
  EXPECT_FALSE(fv.count("x"));
}

TEST(FreeVars, LoopBindsParamsAndIndex) {
  ExprP e = loop({"acc"}, {var("init")}, "i", var("n"),
                 add(var("acc"), var("i")));
  auto fv = free_vars(e);
  EXPECT_TRUE(fv.count("init"));
  EXPECT_TRUE(fv.count("n"));
  EXPECT_FALSE(fv.count("acc"));
  EXPECT_FALSE(fv.count("i"));
}

TEST(FreeVars, SegSpaceArraysAreFreeParamsAreBound) {
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"x"}, {"xs"}, Dim::v("n")}};
  so.body = add(var("x"), var("k"));
  auto fv = free_vars(mk(std::move(so)));
  EXPECT_TRUE(fv.count("xs"));
  EXPECT_TRUE(fv.count("k"));
  EXPECT_TRUE(fv.count("n"));  // size vars count as free
  EXPECT_FALSE(fv.count("x"));
}

TEST(FreeVars, DimVarsInIotaCount) {
  EXPECT_TRUE(free_vars(iota(Dim::v("n"))).count("n"));
  EXPECT_TRUE(free_vars(replicate(Dim::v("m"), cf32(0))).count("m"));
}

TEST(HasSoacs, DetectsNestedParallelism) {
  EXPECT_FALSE(has_soacs(add(cf32(1), cf32(2))));
  EXPECT_TRUE(has_soacs(map1(lam({p("x", Type())}, var("x")), var("xs"))));
  // SOAC nested inside a scalar op / loop body.
  ExprP nested =
      add(cf32(1), reduce(binlam("+", Scalar::F32), {cf32(0)}, {var("xs")}));
  EXPECT_TRUE(has_soacs(nested));
  ExprP in_loop = loop({"a"}, {cf32(0)}, "i", ci64(3),
                       reduce(binlam("+", Scalar::F32), {cf32(0)},
                              {var("xs")}));
  EXPECT_TRUE(has_soacs(in_loop));
  EXPECT_FALSE(has_soacs(iota(Dim::v("n"))));
  EXPECT_FALSE(has_soacs(rearrange({1, 0}, var("m"))));
}

TEST(Rename, RenamesFreeRespectsShadowing) {
  // let x = a in x + a   with a -> b
  ExprP e = let1("x", var("a"), add(var("x"), var("a")));
  ExprP r = rename(e, {{"a", "b"}});
  auto fv = free_vars(r);
  EXPECT_TRUE(fv.count("b"));
  EXPECT_FALSE(fv.count("a"));
  // renaming a bound name has no effect inside its scope
  ExprP r2 = rename(e, {{"x", "y"}});
  EXPECT_EQ(pretty(r2), pretty(e));
}

TEST(Rename, SegSpaceArraysRenamed) {
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"x"}, {"xs"}, Dim::v("n")}};
  so.body = var("x");
  ExprP r = rename(mk(std::move(so)), {{"xs", "ys"}});
  EXPECT_TRUE(free_vars(r).count("ys"));
  EXPECT_FALSE(free_vars(r).count("xs"));
}

TEST(Subst, ReplacesVarWithExpression) {
  ExprP e = add(var("a"), var("a"));
  ExprP s = subst_vars(e, {{"a", mul(cf32(2), var("b"))}});
  auto fv = free_vars(s);
  EXPECT_TRUE(fv.count("b"));
  EXPECT_FALSE(fv.count("a"));
}

TEST(Subst, BindersShadowSubstitution) {
  ExprP e = let1("a", cf32(1), var("a"));
  ExprP s = subst_vars(e, {{"a", var("b")}});
  EXPECT_FALSE(free_vars(s).count("b"));
}

TEST(Counting, NodesAndSegops) {
  ExprP e = add(cf32(1), mul(cf32(2), cf32(3)));
  EXPECT_EQ(count_nodes(e), 5);
  SegOpE so;
  so.op = SegOpE::Op::Map;
  so.level = 1;
  so.space = {SegBind{{"x"}, {"xs"}, Dim::v("n")}};
  so.body = var("x");
  EXPECT_EQ(count_segops(mk(std::move(so))), 1);
  EXPECT_EQ(count_segops(e), 0);
}

TEST(Counting, CollectThresholdsInOrder) {
  ExprP g2 = mk(ThresholdCmpE{"t1", SizeExpr::one(), SizeExpr{}});
  ExprP g1 = mk(ThresholdCmpE{"t0", SizeExpr::one(), SizeExpr{}});
  ExprP e = iff(g1, cf32(1), iff(g2, cf32(2), cf32(3)));
  auto ts = collect_thresholds(e);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0], "t0");
  EXPECT_EQ(ts[1], "t1");
}

TEST(Pretty, RoundTripsKeySyntax) {
  ExprP e = map1(lam({p("x", Type::scalar(Scalar::F32))},
                     add(var("x"), cf32(1))),
                 var("xs"));
  const std::string s = pretty(e);
  EXPECT_NE(s.find("map"), std::string::npos);
  EXPECT_NE(s.find("\\x ->"), std::string::npos);
  EXPECT_NE(s.find("xs"), std::string::npos);
}

}  // namespace
}  // namespace incflat
