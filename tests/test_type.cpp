// Unit tests: types, symbolic dimensions, and the size algebra.
#include <gtest/gtest.h>

#include "src/ir/size.h"
#include "src/ir/type.h"
#include "src/support/error.h"

namespace incflat {
namespace {

TEST(Dim, ConstAndVarEvaluation) {
  const SizeEnv env{{"n", 7}};
  EXPECT_EQ(Dim::c(5).eval(env), 5);
  EXPECT_EQ(Dim::v("n").eval(env), 7);
  EXPECT_THROW(Dim::v("missing").eval(env), EvalError);
}

TEST(Dim, Equality) {
  EXPECT_EQ(Dim::c(3), Dim::c(3));
  EXPECT_NE(Dim::c(3), Dim::c(4));
  EXPECT_EQ(Dim::v("n"), Dim::v("n"));
  EXPECT_NE(Dim::v("n"), Dim::v("m"));
  EXPECT_NE(Dim::c(3), Dim::v("n"));
}

TEST(Dim, Printing) {
  EXPECT_EQ(Dim::c(42).str(), "42");
  EXPECT_EQ(Dim::v("numX").str(), "numX");
}

TEST(Type, ScalarBasics) {
  const Type t = Type::scalar(Scalar::F32);
  EXPECT_TRUE(t.is_scalar());
  EXPECT_FALSE(t.is_array());
  EXPECT_EQ(t.rank(), 0);
  EXPECT_EQ(t.str(), "f32");
}

TEST(Type, ArrayShapeOperations) {
  const Type t = Type::array(Scalar::F32, {Dim::v("n"), Dim::c(4)});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.str(), "[n][4]f32");
  EXPECT_EQ(t.row(), Type::array(Scalar::F32, {Dim::c(4)}));
  EXPECT_EQ(t.peel(2), Type::scalar(Scalar::F32));
  EXPECT_EQ(t.peel(0), t);
}

TEST(Type, RowOfScalarThrows) {
  EXPECT_THROW(Type::scalar(Scalar::I64).row(), CompilerError);
}

TEST(Type, ExpandPrependsOuterDims) {
  const Type t = Type::array(Scalar::F32, {Dim::v("k")});
  const Type e = t.expand({Dim::v("a"), Dim::v("b")});
  EXPECT_EQ(e.str(), "[a][b][k]f32");
}

TEST(Type, CountMultipliesDims) {
  const Type t = Type::array(Scalar::I32, {Dim::v("n"), Dim::c(3)});
  EXPECT_EQ(t.count(SizeEnv{{"n", 5}}), 15);
  EXPECT_EQ(Type::scalar(Scalar::I32).count({}), 1);
}

TEST(Scalar, NamesAndWidths) {
  EXPECT_STREQ(scalar_name(Scalar::F32), "f32");
  EXPECT_STREQ(scalar_name(Scalar::Bool), "bool");
  EXPECT_EQ(scalar_bytes(Scalar::F32), 4);
  EXPECT_EQ(scalar_bytes(Scalar::F64), 8);
  EXPECT_EQ(scalar_bytes(Scalar::Bool), 1);
  EXPECT_TRUE(scalar_is_float(Scalar::F64));
  EXPECT_FALSE(scalar_is_float(Scalar::I32));
  EXPECT_TRUE(scalar_is_int(Scalar::I64));
}

TEST(SizeProd, FoldsConstants) {
  SizeProd p;
  p *= Dim::c(4);
  p *= Dim::v("n");
  p *= Dim::c(2);
  EXPECT_EQ(p.konst, 8);
  EXPECT_EQ(p.vars.size(), 1u);
  EXPECT_EQ(p.eval(SizeEnv{{"n", 3}}), 24);
  EXPECT_EQ(p.str(), "8*n");
}

TEST(SizeProd, EqualityIsOrderInsensitive) {
  SizeProd a, b;
  a *= Dim::v("n");
  a *= Dim::v("m");
  b *= Dim::v("m");
  b *= Dim::v("n");
  EXPECT_EQ(a, b);
}

TEST(SizeExpr, MaxSemantics) {
  SizeExpr e = SizeExpr::of(Dim::v("n")).max_with(SizeExpr::of(Dim::v("m")));
  EXPECT_EQ(e.eval(SizeEnv{{"n", 10}, {"m", 3}}), 10);
  EXPECT_EQ(e.eval(SizeEnv{{"n", 2}, {"m", 30}}), 30);
  EXPECT_EQ(e.str(), "max(n, m)");
}

TEST(SizeExpr, TimesDistributesOverMax) {
  SizeExpr e = SizeExpr::of(Dim::v("n")).max_with(SizeExpr::of(Dim::v("m")));
  SizeExpr scaled = e.times(SizeProd::of(Dim::c(2)));
  EXPECT_EQ(scaled.eval(SizeEnv{{"n", 10}, {"m", 3}}), 20);
}

TEST(SizeExpr, EmptyIsOne) {
  SizeExpr e;
  EXPECT_EQ(e.eval({}), 1);
  EXPECT_EQ(SizeExpr::one().eval({}), 1);
}

TEST(SizeExpr, MaxDeduplicatesAlternatives) {
  SizeExpr a = SizeExpr::of(Dim::v("n"));
  SizeExpr both = a.max_with(a);
  EXPECT_EQ(both.alts.size(), 1u);
}

class SizeProdEval
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(SizeProdEval, ProductMatchesArithmetic) {
  const auto [n, m] = GetParam();
  SizeProd p;
  p *= Dim::v("n");
  p *= Dim::v("m");
  EXPECT_EQ(p.eval(SizeEnv{{"n", n}, {"m", m}}), n * m);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SizeProdEval,
    ::testing::Combine(::testing::Values<int64_t>(1, 2, 17, 1 << 20),
                       ::testing::Values<int64_t>(1, 3, 255)));

}  // namespace
}  // namespace incflat
