// Property tests over the whole benchmark suite (DESIGN.md invariants):
//
//  1. Semantics preservation under *random* threshold assignments — every
//     reachable combination of code versions computes the source values.
//  2. Type preservation — flattened programs re-typecheck in the target
//     system and respect the level discipline.
//  3. Guard invariance — the interpreter result does not depend on the
//     device's workgroup limit.
//  4. Monotonicity — for the compiled programs, more input parallelism
//     (same per-element work) never increases simulated time per element.
#include <gtest/gtest.h>

#include "src/benchsuite/benchmark.h"
#include "src/flatten/flatten.h"
#include "src/interp/interp.h"
#include "src/ir/print.h"
#include "src/ir/typecheck.h"
#include "src/support/rng.h"

namespace incflat {
namespace {

class PropertySuite : public ::testing::TestWithParam<std::string> {};

TEST_P(PropertySuite, RandomThresholdsPreserveSemantics) {
  Benchmark b = get_benchmark(GetParam());
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);

  Rng rng(0xabc);
  std::vector<Value> inputs = b.gen_inputs(rng, b.test_sizes);
  InterpCtx sctx;
  sctx.sizes = b.test_sizes;
  Values want = run_program(sctx, b.program, inputs);

  const auto thresholds = inc.thresholds.all();
  for (int trial = 0; trial < 12; ++trial) {
    InterpCtx ctx = sctx;
    for (const auto& ti : thresholds) {
      ctx.thresholds.values[ti.name] =
          int64_t{1} << rng.uniform_int(0, 24);
    }
    ctx.max_group_size = int64_t{1} << rng.uniform_int(1, 12);
    Values got = run_program(ctx, inc.program, inputs);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got[i].approx_equal(want[i], 1e-4))
          << b.name << " trial=" << trial;
    }
  }
}

TEST_P(PropertySuite, FlattenedProgramsRetypecheck) {
  Benchmark b = get_benchmark(GetParam());
  for (FlattenMode mode : {FlattenMode::Moderate, FlattenMode::Incremental,
                           FlattenMode::Full}) {
    FlattenResult fr = flatten(b.program, mode);
    // Type preservation: the emitted program type-checks from scratch and
    // its result types match the source's.
    Program rechecked;
    ASSERT_NO_THROW(rechecked = typecheck_program(fr.program)) << b.name;
    ASSERT_EQ(rechecked.body->types.size(), b.program.body->types.size());
    for (size_t i = 0; i < rechecked.body->types.size(); ++i) {
      EXPECT_EQ(rechecked.body->types[i], b.program.body->types[i])
          << b.name << " " << mode_name(mode) << " result " << i;
    }
    ASSERT_NO_THROW(check_level_discipline(fr.program.body));
  }
}

TEST_P(PropertySuite, RandomShapesPreserveSemantics) {
  Benchmark b = get_benchmark(GetParam());
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  Rng rng(0x5151 + static_cast<uint64_t>(GetParam().size()));
  for (int trial = 0; trial < 4; ++trial) {
    // Perturb every size in the benchmark's small testing environment.
    SizeEnv sizes = b.test_sizes;
    for (auto& [k, v] : sizes) {
      v = std::max<int64_t>(1, v + rng.uniform_int(-1, 3));
    }
    std::vector<Value> inputs = b.gen_inputs(rng, sizes);
    InterpCtx sctx;
    sctx.sizes = sizes;
    Values want = run_program(sctx, b.program, inputs);
    InterpCtx ctx = sctx;
    ctx.thresholds.default_threshold = rng.flip() ? 1 : 4;
    ctx.max_group_size = rng.flip() ? 3 : (int64_t{1} << 30);
    Values got = run_program(ctx, inc.program, inputs);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got[i].approx_equal(want[i], 1e-4))
          << b.name << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, PropertySuite,
    ::testing::ValuesIn(all_benchmark_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace incflat
