// The execution-profile layer (src/profile/): per-guard decision tallies,
// Par ranges and streaks recorded off real plan descents; JSON persistence
// with the strict parser's line/column errors and atomic tmp+rename saves;
// and the profile/plan validation that rejects stale files.  The round-trip
// property test randomizes whole profiles — save -> load must be `==`.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/gpusim/device.h"
#include "src/plan/plan.h"
#include "src/profile/profile.h"
#include "src/support/error.h"
#include "src/support/rng.h"

namespace incflat {
namespace {

using profile::ExecProfile;
using profile::GuardProfile;

/// A randomized but internally consistent profile (par range ordered,
/// streaks no longer than the run count).
ExecProfile random_profile(Rng& rng) {
  ExecProfile p;
  p.program = "prog" + std::to_string(rng.uniform_int(0, 99));
  p.device = rng.flip(0.5) ? "k40" : "vega64";
  p.runs = rng.uniform_int(0, 1000);
  p.deopts = rng.uniform_int(0, 50);
  const int n = static_cast<int>(rng.uniform_int(0, 6));
  for (int i = 0; i < n; ++i) {
    GuardProfile g;
    g.threshold = "t" + std::to_string(i);
    g.taken = rng.uniform_int(0, 500);
    g.not_taken = rng.uniform_int(0, 500);
    g.fit_fails = rng.uniform_int(0, g.not_taken);
    g.par_seen = rng.flip(0.7);
    if (g.par_seen) {
      g.par_lo = rng.uniform_int(1, 1 << 20);
      g.par_hi = rng.uniform_int(g.par_lo, 1 << 21);
    }
    g.streak = rng.uniform_int(0, g.taken + g.not_taken);
    g.streak_taken = rng.flip(0.5);
    g.last_fit_fail = rng.flip(0.2);
    p.guards.push_back(g);
  }
  return p;
}

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + "incflat_profile_" + stem + ".json";
}

// ---------------------------------------------------------------------------
// JSON round-trip property
// ---------------------------------------------------------------------------

TEST(ProfileJson, RandomizedProfilesRoundTripThroughSaveAndLoad) {
  Rng rng(0x9f0f11e5);
  for (int it = 0; it < 200; ++it) {
    const ExecProfile p = random_profile(rng);
    // In-memory: to_json -> serialize -> parse -> from_json.
    const ExecProfile q =
        ExecProfile::from_json(Json::parse(p.to_json().str()));
    EXPECT_TRUE(p == q) << "iteration " << it;
    // On disk: atomic save -> strict load.
    const std::string path = temp_path("roundtrip");
    profile::save_profile(path, p);
    const ExecProfile r = profile::load_profile(path);
    EXPECT_TRUE(p == r) << "iteration " << it;
    std::remove(path.c_str());
  }
}

TEST(ProfileJson, SaveIsAtomicAndLeavesNoTempFile) {
  Rng rng(0x5eed);
  const ExecProfile p = random_profile(rng);
  const std::string path = temp_path("atomic");
  profile::save_profile(path, p);
  // Overwriting an existing file also goes through tmp+rename.
  profile::save_profile(path, p);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good())
      << "temporary file survived the rename";
  EXPECT_TRUE(profile::load_profile(path) == p);
  std::remove(path.c_str());
}

TEST(ProfileJson, MalformedJsonReportsLineAndColumn) {
  const std::string path = temp_path("malformed");
  {
    std::ofstream f(path);
    f << "{\n  \"format\": \"incflat-profile\",\n  oops\n}\n";
  }
  try {
    profile::load_profile(path);
    FAIL() << "malformed profile loaded";
  } catch (const IoError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("column"), std::string::npos) << msg;
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
  }
  std::remove(path.c_str());
}

/// Replace the first occurrence of `from` (must exist) with `to`.
std::string patched(std::string text, const std::string& from,
                    const std::string& to) {
  const size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  return text.replace(pos, from.size(), to);
}

TEST(ProfileJson, SchemaViolationsAreRejected) {
  ExecProfile p;
  p.program = "x";
  p.device = "k40";
  p.runs = 7;
  GuardProfile g;
  g.threshold = "t";
  g.taken = 41;
  g.not_taken = 5;
  g.par_seen = true;
  g.par_lo = 1017;
  g.par_hi = 2033;
  p.guards.push_back(g);
  const std::string good = p.to_json().str();
  // The pristine document parses.
  EXPECT_TRUE(ExecProfile::from_json(Json::parse(good)) == p);

  // Negative tally.
  EXPECT_THROW(ExecProfile::from_json(Json::parse(
                   patched(good, "\"taken\": 41", "\"taken\": -1"))),
               IoError);
  // Inverted Par range.
  EXPECT_THROW(ExecProfile::from_json(Json::parse(
                   patched(good, "\"par_lo\": 1017", "\"par_lo\": 3000"))),
               IoError);
  // Non-numeric tally.
  EXPECT_THROW(ExecProfile::from_json(Json::parse(
                   patched(good, "\"taken\": 41", "\"taken\": \"many\""))),
               IoError);
  // Wrong format marker and unsupported version.
  EXPECT_THROW(ExecProfile::from_json(
                   Json::parse(patched(good, "incflat-profile", "tuning"))),
               IoError);
  EXPECT_THROW(ExecProfile::from_json(Json::parse(
                   patched(good, "\"version\": 1", "\"version\": 99"))),
               IoError);
}

TEST(ProfileJson, MissingFileThrowsIoError) {
  EXPECT_THROW(profile::load_profile(temp_path("does_not_exist")), IoError);
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

TEST(ProfileRecord, TalliesAndStreaksFollowTheDescent) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const KernelPlan& plan = *c.plan;
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = b.datasets.at(0).sizes;
  const PlanDatasetCache cache(plan, dev, sizes);

  ExecProfile p = profile::make_profile(plan, plan.program.name, dev.name);
  ASSERT_EQ(p.guards.size(), plan.guards.size());
  EXPECT_EQ(p.runs, 0);
  for (const auto& g : p.guards) EXPECT_FALSE(g.reached());

  // The same stable descent, five times: every reached guard's streak is 5
  // and the tallies are all on one side.
  const ThresholdEnv thr;  // paper default
  for (int i = 0; i < 5; ++i) profile::record_run(p, plan, cache, thr);
  EXPECT_EQ(p.runs, 5);
  bool any_reached = false;
  for (const auto& g : p.guards) {
    if (!g.reached()) continue;
    any_reached = true;
    EXPECT_EQ(g.streak, 5) << g.threshold;
    EXPECT_EQ(g.taken + g.not_taken, 5) << g.threshold;
    EXPECT_TRUE(g.taken == 0 || g.not_taken == 0) << g.threshold;
    EXPECT_EQ(g.streak_taken, g.taken > 0) << g.threshold;
  }
  ASSERT_TRUE(any_reached) << "no guard reached on the D1 descent";

  // The estimate evaluates exactly the guards record_run visits: reached
  // guards and the estimate's guard list must agree.
  const RunEstimate est = plan_estimate(plan, cache, thr);
  for (const auto& [name, taken] : est.guards) {
    bool found = false;
    for (const auto& g : p.guards) {
      found = found || (g.threshold == name && g.reached());
    }
    EXPECT_TRUE(found) << "estimate guard " << name << " not recorded";
  }

  // Flipping every guard (threshold 2^62 = never taken) breaks the streak:
  // it restarts at 1 with the opposite decision.
  ThresholdEnv all_off;
  all_off.default_threshold = int64_t{1} << 62;
  profile::record_run(p, plan, cache, all_off);
  for (const auto& g : p.guards) {
    if (!g.reached() || g.taken == 0) continue;
    EXPECT_EQ(g.streak, 1) << g.threshold;
    EXPECT_FALSE(g.streak_taken) << g.threshold;
  }

  // reset_streaks clears streaks but keeps tallies.
  profile::reset_streaks(p);
  for (const auto& g : p.guards) {
    EXPECT_EQ(g.streak, 0) << g.threshold;
  }
  EXPECT_EQ(p.runs, 6);
}

TEST(ProfileRecord, ParRangeCoversObservedOperands) {
  const Benchmark b = bench_matmul();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const KernelPlan& plan = *c.plan;
  const DeviceProfile dev = device_k40();

  ExecProfile p = profile::make_profile(plan, plan.program.name, dev.name);
  // Two differently sized datasets widen the observed range.
  for (const auto& d : b.datasets) {
    const PlanDatasetCache cache(plan, dev, d.sizes);
    profile::record_run(p, plan, cache, ThresholdEnv{});
  }
  for (const auto& g : p.guards) {
    if (!g.par_seen) continue;
    EXPECT_GE(g.par_lo, 1) << g.threshold;
    EXPECT_LE(g.par_lo, g.par_hi) << g.threshold;
  }
}

// ---------------------------------------------------------------------------
// Plan validation
// ---------------------------------------------------------------------------

TEST(ProfileCheck, RejectsProfilesFromAnotherPlan) {
  const Compiled mm = compile(bench_matmul().program, FlattenMode::Incremental);
  const KernelPlan& plan = *mm.plan;
  ASSERT_FALSE(plan.guards.empty());

  ExecProfile p = profile::make_profile(plan, "matmul", "k40");
  EXPECT_NO_THROW(profile::check_profile(p, plan));

  // Same guard count but a renamed threshold: stale file.
  ExecProfile renamed = p;
  renamed.guards[0].threshold += "_renamed";
  EXPECT_THROW(profile::check_profile(renamed, plan), IoError);

  // Guard count mismatch: profile from another program (or plan version).
  ExecProfile extra = p;
  extra.guards.push_back(GuardProfile{});
  EXPECT_THROW(profile::check_profile(extra, plan), IoError);
}

}  // namespace
}  // namespace incflat
