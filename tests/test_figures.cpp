// Regression tests pinning the qualitative figure shapes (the reproduction
// contract): these are the same claims the bench binaries print, kept here
// so `ctest` guards them against cost-model or compiler regressions.
#include <gtest/gtest.h>

#include "src/autotune/autotune.h"
#include "src/benchsuite/benchmark.h"
#include "src/benchsuite/reference.h"
#include "src/flatten/flatten.h"

namespace incflat {
namespace {

std::vector<TuningDataset> training_of(const Benchmark& b) {
  std::vector<TuningDataset> out;
  for (const auto& d : b.tuning) out.push_back({d.name, d.sizes, 1.0});
  return out;
}

// ---------------------------------------------------------------- Fig. 2

TEST(Fig2, TunedMatmulGetsBestOfBothWorlds) {
  Benchmark b = get_benchmark("matmul");
  FlattenResult mf = flatten(b.program, FlattenMode::Moderate);
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();

  std::vector<TuningDataset> train;
  for (int n = 0; n <= 10; ++n) {
    const int m = 20 - 2 * n;
    if (m < 0) break;
    train.push_back({"n" + std::to_string(n),
                     {{"n", int64_t{1} << n},
                      {"m", int64_t{1} << m},
                      {"k", int64_t{1} << n}},
                     1.0});
  }
  TuningReport rep = exhaustive_tune(dev, inc.program, inc.thresholds, train);

  for (const auto& d : train) {
    const double mf_t = estimate_run(dev, mf.program, d.sizes, {}).time_us;
    const double un_t = estimate_run(dev, inc.program, d.sizes, {}).time_us;
    const double aif_t =
        estimate_run(dev, inc.program, d.sizes, rep.best).time_us;
    // The tuned program is near the best of all compiler versions at
    // every point on the sweep.
    EXPECT_LE(aif_t, 1.25 * std::min(mf_t, un_t)) << d.name;
  }
  // Moderate flattening is catastrophically bad at n=0 (Fig. 2's left).
  const double mf0 = estimate_run(dev, mf.program, train[0].sizes, {}).time_us;
  const double aif0 =
      estimate_run(dev, inc.program, train[0].sizes, rep.best).time_us;
  EXPECT_GT(mf0 / aif0, 10.0);
}

TEST(Fig2, CuBlasLosesOnDegenerateWinsOnLargeK25) {
  Benchmark b = get_benchmark("matmul");
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  std::vector<TuningDataset> train;
  for (int n = 0; n <= 10; ++n) {
    const int m = 20 - 2 * n;
    if (m < 0) break;
    train.push_back({"d",
                     {{"n", int64_t{1} << n},
                      {"m", int64_t{1} << m},
                      {"k", int64_t{1} << n}},
                     1.0});
  }
  TuningReport rep = exhaustive_tune(dev, inc.program, inc.thresholds, train);
  // degenerate n=0 (k=20): library GEMM loses
  {
    const SizeEnv sz{{"n", 1}, {"m", 1 << 20}, {"k", 1}};
    const double aif = estimate_run(dev, inc.program, sz, rep.best).time_us;
    EXPECT_GT(reference_gemm(dev, 1, 1 << 20, 1), aif);
  }
  // n=10 (k=25): library GEMM wins by its richer tiling
  {
    const SizeEnv sz{{"n", 1 << 10}, {"m", 1 << 5}, {"k", 1 << 10}};
    const double aif = estimate_run(dev, inc.program, sz, rep.best).time_us;
    EXPECT_LT(reference_gemm(dev, 1 << 10, 1 << 5, 1 << 10), aif);
  }
}

// ---------------------------------------------------------------- Fig. 7

TEST(Fig7, LocVolCalibVersionSelectionMatchesPaper) {
  Benchmark b = get_benchmark("LocVolCalib");
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);

  auto count_intra = [&](const DeviceProfile& dev, const SizeEnv& sizes,
                         const ThresholdEnv& env) {
    RunEstimate est = estimate_run(dev, inc.program, sizes, env);
    int n = 0;
    for (const auto& k : est.kernels) {
      if (k.what.find("intra") != std::string::npos) ++n;
    }
    return n;
  };

  // K40, large dataset: the tuned program uses version 1 — outer
  // parallelism with a sequential tridag, no intra-group kernels.
  {
    const DeviceProfile dev = device_k40();
    TuningReport rep =
        exhaustive_tune(dev, inc.program, inc.thresholds, training_of(b));
    EXPECT_EQ(count_intra(dev, b.datasets[2].sizes, rep.best), 0);
  }
  // Vega 64: version 2 — the scans run at workgroup level — on all
  // datasets (Sec. 5.2: "AIF choses version 2 on Vega 64").
  {
    const DeviceProfile dev = device_vega64();
    TuningReport rep =
        exhaustive_tune(dev, inc.program, inc.thresholds, training_of(b));
    for (const auto& d : b.datasets) {
      EXPECT_GT(count_intra(dev, d.sizes, rep.best), 0) << d.name;
    }
  }
}

TEST(Fig7, AifBeatsModerateOnEveryDataset) {
  Benchmark b = get_benchmark("LocVolCalib");
  FlattenResult mf = flatten(b.program, FlattenMode::Moderate);
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  for (const DeviceProfile& dev : {device_k40(), device_vega64()}) {
    TuningReport rep =
        exhaustive_tune(dev, inc.program, inc.thresholds, training_of(b));
    for (const auto& d : b.datasets) {
      const double mft = estimate_run(dev, mf.program, d.sizes, {}).time_us;
      const double aif =
          estimate_run(dev, inc.program, d.sizes, rep.best).time_us;
      EXPECT_LT(aif, 1.02 * mft) << dev.name << "/" << d.name;
    }
  }
}

// ---------------------------------------------------------------- Fig. 8

TEST(Fig8, AifNeverLosesToModerateAnywhere) {
  for (const DeviceProfile& dev : {device_k40(), device_vega64()}) {
    for (const auto& base : bulk_benchmarks()) {
      FlattenOptions mo;
      mo.fuse = base.fuse_moderate;
      FlattenResult mf = flatten(base.program, FlattenMode::Moderate, mo);
      FlattenResult inc = flatten(base.program, FlattenMode::Incremental);
      TuningReport rep = exhaustive_tune(dev, inc.program, inc.thresholds,
                                         training_of(base));
      for (const auto& d : base.datasets) {
        const double mft = estimate_run(dev, mf.program, d.sizes, {}).time_us;
        const double aif =
            estimate_run(dev, inc.program, d.sizes, rep.best).time_us;
        EXPECT_LE(aif, 1.05 * mft) << dev.name << "/" << base.name << "/"
                                   << d.name;
      }
    }
  }
}

TEST(Fig8, ReferencesLoseWhereThePaperSaysTheyLose) {
  const DeviceProfile dev = device_k40();
  // OptionPricing D2: the outer-only reference slows down.
  {
    Benchmark b = get_benchmark("OptionPricing");
    FlattenResult mf = flatten(b.program, FlattenMode::Moderate);
    const double mft =
        estimate_run(dev, mf.program, b.datasets[1].sizes, {}).time_us;
    EXPECT_GT(b.reference(dev, b.datasets[1].sizes), mft);
  }
  // NN D1 and Backprop D2: the CPU-side reduction sinks Rodinia.
  for (const char* name : {"NN", "Backprop"}) {
    Benchmark b = get_benchmark(name);
    FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
    TuningReport rep = exhaustive_tune(dev, inc.program, inc.thresholds,
                                       training_of(b));
    const auto& d = b.datasets[name == std::string("NN") ? 0 : 1];
    const double aif =
        estimate_run(dev, inc.program, d.sizes, rep.best).time_us;
    EXPECT_GT(b.reference(dev, d.sizes), aif) << name;
  }
  // NW D1: Rodinia's in-place diagonal schedule wins.
  {
    Benchmark b = get_benchmark("NW");
    FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
    TuningReport rep = exhaustive_tune(dev, inc.program, inc.thresholds,
                                       training_of(b));
    const double aif =
        estimate_run(dev, inc.program, b.datasets[0].sizes, rep.best).time_us;
    EXPECT_LT(b.reference(dev, b.datasets[0].sizes), aif);
  }
}

TEST(Fig8, HestonNeedsAllThreeLayers) {
  // MF exploits only the outer map (sequentialised redomaps) and is far
  // from AIF on both datasets (Sec. 5.3).
  Benchmark b = get_benchmark("Heston");
  FlattenResult mf = flatten(b.program, FlattenMode::Moderate);
  FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
  for (const DeviceProfile& dev : {device_k40(), device_vega64()}) {
    TuningReport rep =
        exhaustive_tune(dev, inc.program, inc.thresholds, training_of(b));
    for (const auto& d : b.datasets) {
      const double mft = estimate_run(dev, mf.program, d.sizes, {}).time_us;
      const double aif =
          estimate_run(dev, inc.program, d.sizes, rep.best).time_us;
      EXPECT_GT(mft / aif, 2.0) << dev.name << "/" << d.name;
    }
  }
}

}  // namespace
}  // namespace incflat
