// Quickstart: build a nested-parallel program, flatten it incrementally,
// inspect the generated code versions, autotune the thresholds, and run it.
//
//   $ ./examples/quickstart
//
// The program is a batched dot-product — map over rows of a redomap —
// whose best mapping depends on whether the batch or the vectors carry the
// parallelism, which is exactly the ambiguity incremental flattening
// resolves at run time.
#include <iostream>

#include "src/autotune/autotune.h"
#include "src/exec/exec.h"
#include "src/ir/builder.h"
#include "src/ir/print.h"
#include "src/ir/typecheck.h"
#include "src/support/rng.h"

using namespace incflat;
using namespace incflat::ib;

int main() {
  // ---------------------------------------------------------------- 1. IR
  // batched_dot xss ys = map (\xs -> redomap (+) (*) 0 xs ys) xss
  Program p;
  p.name = "batched_dot";
  p.inputs = {
      {"xss", Type::array(Scalar::F32, {Dim::v("rows"), Dim::v("cols")})},
      {"ys", Type::array(Scalar::F32, {Dim::v("cols")})},
  };
  Lambda mul2 = lam({ib::p("x", Type::scalar(Scalar::F32)),
                     ib::p("y", Type::scalar(Scalar::F32))},
                    mul(var("x"), var("y")));
  p.body = map1(lam({ib::p("xs", Type())},
                    redomap(binlam("+", Scalar::F32), mul2, {cf32(0)},
                            {var("xs"), var("ys")})),
                var("xss"));
  p = typecheck_program(std::move(p));
  std::cout << "source program:\n" << pretty(p) << "\n";

  // ------------------------------------------------------------ 2. Flatten
  Compiled c = compile(p, FlattenMode::Incremental);
  std::cout << "incrementally flattened (every guarded version):\n"
            << pretty(c.flat.program) << "\n";
  std::cout << "threshold branching tree:\n"
            << c.flat.thresholds.tree_str() << "\n";

  // ------------------------------------------------------------- 3. Tune
  const DeviceProfile dev = device_k40();
  std::vector<TuningDataset> train = {
      {"tall", {{"rows", 1 << 18}, {"cols", 16}}, 1.0},
      {"wide", {{"rows", 4}, {"cols", 1 << 20}}, 1.0},
  };
  TuningReport rep = autotune(dev, c.flat.program, c.flat.thresholds, train);
  std::cout << "autotuned on " << train.size() << " datasets: cost "
            << rep.default_cost_us << "us (default) -> " << rep.best_cost_us
            << "us (tuned), " << rep.evaluations << " evaluations, "
            << rep.dedup_hits << " branching-tree dedup hits\n\n";

  // ------------------------------------------------ 4. Simulate both shapes
  for (const SizeEnv sizes :
       {SizeEnv{{"rows", 1 << 16}, {"cols", 64}},
        SizeEnv{{"rows", 8}, {"cols", 1 << 19}}}) {
    RunEstimate est = simulate(dev, c, sizes, rep.best);
    std::cout << "rows=" << sizes.at("rows") << " cols=" << sizes.at("cols")
              << ": " << estimate_str(est) << "\n";
    for (const auto& [t, taken] : est.guards) {
      std::cout << "    guard " << t << " -> " << (taken ? "T" : "F") << "\n";
    }
  }

  // ------------------------------------------- 5. Execute for real values
  Rng rng(1);
  const SizeEnv small{{"rows", 4}, {"cols", 6}};
  Value xss = Value::zeros(Scalar::F32, {4, 6});
  Value ys = Value::zeros(Scalar::F32, {6});
  for (int64_t i = 0; i < 24; ++i) xss.fset(i, rng.uniform(-1, 1));
  for (int64_t i = 0; i < 6; ++i) ys.fset(i, rng.uniform(-1, 1));
  Values ref = execute_source(c, small, {xss, ys});
  Values got = execute(dev, c, small, rep.best, {xss, ys});
  std::cout << "\nsource semantics:   " << ref[0].str()
            << "\nflattened semantics: " << got[0].str() << "\n"
            << (got[0].approx_equal(ref[0]) ? "MATCH" : "MISMATCH") << "\n";
  return got[0].approx_equal(ref[0]) ? 0 : 1;
}
