// Bringing your own workload: writes a new nested-parallel application
// (a small k-means-style assignment step: map over points of a redomap
// over centroids, under an outer map over batches), runs the full pipeline
// — fusion, flattening, tuning on two GPUs — and reports, per device, which
// code version each dataset class ends up on.  This mirrors the artifact
// appendix's "Adding a new Futhark implementation of a benchmark" flow.
#include <iostream>

#include "src/autotune/autotune.h"
#include "src/exec/exec.h"
#include "src/ir/builder.h"
#include "src/ir/print.h"
#include "src/ir/typecheck.h"
#include "src/support/str.h"
#include "src/support/table.h"

using namespace incflat;
using namespace incflat::ib;

namespace {

Program assignment_step() {
  // For every batch, for every point, the distance to the nearest centroid:
  //   map (\pts -> map (\p -> redomap min (\c -> (p-c)^2) inf cs) pts) batches
  Program prog;
  prog.name = "kmeans_assign";
  prog.inputs = {
      {"batches",
       Type::array(Scalar::F32, {Dim::v("nb"), Dim::v("pts")})},
      {"cs", Type::array(Scalar::F32, {Dim::v("ks")})},
  };
  Lambda dist = lam({p("c", Type::scalar(Scalar::F32))},
                    mul(sub(var("pt"), var("c")), sub(var("pt"), var("c"))));
  Lambda per_point =
      lam({p("pt", Type::scalar(Scalar::F32))},
          redomap(binlam("min", Scalar::F32), dist, {cf32(1e30)},
                  {var("cs")}));
  Lambda per_batch = lam({p("ptsv", Type())}, map1(per_point, var("ptsv")));
  prog.body = map1(per_batch, var("batches"));
  return typecheck_program(std::move(prog));
}

}  // namespace

int main() {
  Program prog = assignment_step();
  Compiled c = compile(prog, FlattenMode::Incremental);
  std::cout << "generated " << c.flat.thresholds.size()
            << " thresholds for kmeans_assign:\n"
            << c.flat.thresholds.tree_str() << "\n";

  // Two dataset classes: many small batches vs one huge batch with a large
  // centroid set.
  std::vector<TuningDataset> train = {
      {"many-batches", {{"nb", 2048}, {"pts", 256}, {"ks", 8}}, 1.0},
      {"one-batch", {{"nb", 1}, {"pts", 2048}, {"ks", 4096}}, 1.0},
  };

  Table t({"device", "dataset", "default", "tuned", "speedup"});
  for (const DeviceProfile& dev : {device_k40(), device_vega64()}) {
    TuningReport rep =
        exhaustive_tune(dev, c.flat.program, c.flat.thresholds, train);
    for (const auto& d : train) {
      const double t0 = simulate(dev, c, d.sizes, {}).time_us;
      const double t1 = simulate(dev, c, d.sizes, rep.best).time_us;
      t.row({dev.name, d.name, fmt_us(t0), fmt_us(t1),
             fmt_double(t0 / t1, 2) + "x"});
    }
  }
  t.print(std::cout);
  std::cout << "\nOne binary; the thresholds route each dataset class to "
               "its own mapping of the nest onto the hardware levels.\n";
  return 0;
}
