// LocVolCalib walkthrough (paper Sec. 5.2, Fig. 6): shows the source
// program, the generated multi-versioned target code — which reproduces the
// paper's Fig. 6c almost token for token — and executes it on a small
// dataset, checking every guarded version against the reference
// interpreter.
#include <iostream>

#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/ir/print.h"
#include "src/support/rng.h"

using namespace incflat;

int main() {
  Benchmark b = get_benchmark("LocVolCalib");
  std::cout << "source (Fig. 6a structure):\n" << pretty(b.program) << "\n";

  Compiled c = compile(b.program, FlattenMode::Incremental);
  std::cout << "incrementally flattened (compare with Fig. 6c):\n"
            << pretty(c.flat.program) << "\n";

  // Execute every version and compare against the source semantics.
  Rng rng(11);
  std::vector<Value> inputs = b.gen_inputs(rng, b.test_sizes);
  Values want = execute_source(c, b.test_sizes, inputs);

  const DeviceProfile dev = device_k40();
  int mismatches = 0;
  for (int64_t t : {int64_t{1}, int64_t{16}, int64_t{1} << 15,
                    int64_t{1} << 40}) {
    ThresholdEnv env;
    env.default_threshold = t;
    Values got = execute(dev, c, b.test_sizes, env, inputs);
    const bool ok = got[0].approx_equal(want[0]) &&
                    got[1].approx_equal(want[1]);
    std::cout << "threshold=" << t << ": "
              << (ok ? "matches reference" : "MISMATCH") << "\n";
    mismatches += ok ? 0 : 1;
  }
  std::cout << (mismatches == 0
                    ? "every code version computes the same result — the "
                      "thresholds only pick *which* one runs\n"
                    : "BUG: versions disagree\n");
  return mismatches;
}
