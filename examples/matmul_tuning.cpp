// The paper's motivating example (Sec. 2.2): matrix multiplication across
// shapes of constant total work.  Shows the generated code versions and how
// the tuned thresholds pick version (1) — the fully flattened segred — for
// small n and version (2) — outer segmap with a sequentialised, block-tiled
// redomap — for large n.
#include <iostream>

#include "src/autotune/autotune.h"
#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/ir/print.h"
#include "src/support/str.h"
#include "src/support/table.h"

using namespace incflat;

int main() {
  Benchmark b = get_benchmark("matmul");
  Compiled c = compile(b.program, FlattenMode::Incremental);
  std::cout << "matmul flattened into " << c.flat.thresholds.size()
            << " guarded versions:\n"
            << c.flat.thresholds.tree_str() << "\n";

  const DeviceProfile dev = device_k40();
  std::vector<TuningDataset> train;
  for (int n = 0; n <= 10; ++n) {
    const int m = 20 - 2 * n;
    if (m < 0) break;
    train.push_back({"n" + std::to_string(n),
                     {{"n", int64_t{1} << n},
                      {"m", int64_t{1} << m},
                      {"k", int64_t{1} << n}},
                     1.0});
  }
  TuningReport rep =
      exhaustive_tune(dev, c.flat.program, c.flat.thresholds, train);
  std::cout << "tuned thresholds (trained on the k=20 sweep):\n";
  for (const auto& [name, v] : rep.best.values) {
    std::cout << "  " << name << " = " << v << "\n";
  }

  Table t({"n", "tuned time", "version used"});
  for (const auto& d : train) {
    RunEstimate est = simulate(dev, c, d.sizes, rep.best);
    std::string version = "outer-only";
    for (const auto& [g, taken] : est.guards) {
      if (taken && g.find("intra") != std::string::npos) {
        version = "intra-group";
      }
    }
    bool any_top = false;
    for (const auto& [g, taken] : est.guards) {
      any_top |= taken;
    }
    if (!any_top) version = "fully flattened (segred)";
    for (const auto& k : est.kernels) {
      if (k.what.find("tiled") != std::string::npos) {
        version = "segmap + tiled sequential redomap";
      }
    }
    t.row({d.name, fmt_us(est.time_us), version});
  }
  t.print(std::cout);
  std::cout << "\nAs in Fig. 2: the dataset decides the version — one "
               "compiled program covers the whole sweep.\n";
  return 0;
}
