file(REMOVE_RECURSE
  "CMakeFiles/incflatc.dir/incflatc.cpp.o"
  "CMakeFiles/incflatc.dir/incflatc.cpp.o.d"
  "incflatc"
  "incflatc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incflatc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
