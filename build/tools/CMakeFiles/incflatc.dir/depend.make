# Empty dependencies file for incflatc.
# This may be replaced when dependencies are built.
