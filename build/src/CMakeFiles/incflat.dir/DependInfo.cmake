
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autotune/autotune.cpp" "src/CMakeFiles/incflat.dir/autotune/autotune.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/autotune/autotune.cpp.o.d"
  "/root/repo/src/autotune/tuning_file.cpp" "src/CMakeFiles/incflat.dir/autotune/tuning_file.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/autotune/tuning_file.cpp.o.d"
  "/root/repo/src/benchsuite/prog_financial.cpp" "src/CMakeFiles/incflat.dir/benchsuite/prog_financial.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/benchsuite/prog_financial.cpp.o.d"
  "/root/repo/src/benchsuite/prog_locvolcalib.cpp" "src/CMakeFiles/incflat.dir/benchsuite/prog_locvolcalib.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/benchsuite/prog_locvolcalib.cpp.o.d"
  "/root/repo/src/benchsuite/prog_matmul.cpp" "src/CMakeFiles/incflat.dir/benchsuite/prog_matmul.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/benchsuite/prog_matmul.cpp.o.d"
  "/root/repo/src/benchsuite/prog_rodinia1.cpp" "src/CMakeFiles/incflat.dir/benchsuite/prog_rodinia1.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/benchsuite/prog_rodinia1.cpp.o.d"
  "/root/repo/src/benchsuite/prog_rodinia2.cpp" "src/CMakeFiles/incflat.dir/benchsuite/prog_rodinia2.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/benchsuite/prog_rodinia2.cpp.o.d"
  "/root/repo/src/benchsuite/reference.cpp" "src/CMakeFiles/incflat.dir/benchsuite/reference.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/benchsuite/reference.cpp.o.d"
  "/root/repo/src/benchsuite/registry.cpp" "src/CMakeFiles/incflat.dir/benchsuite/registry.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/benchsuite/registry.cpp.o.d"
  "/root/repo/src/exec/exec.cpp" "src/CMakeFiles/incflat.dir/exec/exec.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/exec/exec.cpp.o.d"
  "/root/repo/src/flatten/flatten.cpp" "src/CMakeFiles/incflat.dir/flatten/flatten.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/flatten/flatten.cpp.o.d"
  "/root/repo/src/flatten/fusion.cpp" "src/CMakeFiles/incflat.dir/flatten/fusion.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/flatten/fusion.cpp.o.d"
  "/root/repo/src/flatten/normalize.cpp" "src/CMakeFiles/incflat.dir/flatten/normalize.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/flatten/normalize.cpp.o.d"
  "/root/repo/src/flatten/thresholds.cpp" "src/CMakeFiles/incflat.dir/flatten/thresholds.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/flatten/thresholds.cpp.o.d"
  "/root/repo/src/flatten/tiling.cpp" "src/CMakeFiles/incflat.dir/flatten/tiling.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/flatten/tiling.cpp.o.d"
  "/root/repo/src/gpusim/cost.cpp" "src/CMakeFiles/incflat.dir/gpusim/cost.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/gpusim/cost.cpp.o.d"
  "/root/repo/src/gpusim/device.cpp" "src/CMakeFiles/incflat.dir/gpusim/device.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/gpusim/device.cpp.o.d"
  "/root/repo/src/interp/interp.cpp" "src/CMakeFiles/incflat.dir/interp/interp.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/interp/interp.cpp.o.d"
  "/root/repo/src/interp/value.cpp" "src/CMakeFiles/incflat.dir/interp/value.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/interp/value.cpp.o.d"
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/incflat.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/CMakeFiles/incflat.dir/ir/expr.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/ir/expr.cpp.o.d"
  "/root/repo/src/ir/print.cpp" "src/CMakeFiles/incflat.dir/ir/print.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/ir/print.cpp.o.d"
  "/root/repo/src/ir/size.cpp" "src/CMakeFiles/incflat.dir/ir/size.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/ir/size.cpp.o.d"
  "/root/repo/src/ir/traverse.cpp" "src/CMakeFiles/incflat.dir/ir/traverse.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/ir/traverse.cpp.o.d"
  "/root/repo/src/ir/type.cpp" "src/CMakeFiles/incflat.dir/ir/type.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/ir/type.cpp.o.d"
  "/root/repo/src/ir/typecheck.cpp" "src/CMakeFiles/incflat.dir/ir/typecheck.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/ir/typecheck.cpp.o.d"
  "/root/repo/src/support/chart.cpp" "src/CMakeFiles/incflat.dir/support/chart.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/support/chart.cpp.o.d"
  "/root/repo/src/support/json.cpp" "src/CMakeFiles/incflat.dir/support/json.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/support/json.cpp.o.d"
  "/root/repo/src/support/str.cpp" "src/CMakeFiles/incflat.dir/support/str.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/support/str.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/incflat.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/incflat.dir/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
