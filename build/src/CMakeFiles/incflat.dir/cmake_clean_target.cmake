file(REMOVE_RECURSE
  "libincflat.a"
)
