# Empty compiler generated dependencies file for incflat.
# This may be replaced when dependencies are built.
