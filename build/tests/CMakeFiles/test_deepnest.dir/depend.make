# Empty dependencies file for test_deepnest.
# This may be replaced when dependencies are built.
