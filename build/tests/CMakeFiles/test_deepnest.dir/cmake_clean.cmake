file(REMOVE_RECURSE
  "CMakeFiles/test_deepnest.dir/test_deepnest.cpp.o"
  "CMakeFiles/test_deepnest.dir/test_deepnest.cpp.o.d"
  "test_deepnest"
  "test_deepnest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deepnest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
