file(REMOVE_RECURSE
  "CMakeFiles/test_flatten_smoke.dir/test_flatten_smoke.cpp.o"
  "CMakeFiles/test_flatten_smoke.dir/test_flatten_smoke.cpp.o.d"
  "test_flatten_smoke"
  "test_flatten_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flatten_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
