# Empty dependencies file for test_flatten_smoke.
# This may be replaced when dependencies are built.
