file(REMOVE_RECURSE
  "CMakeFiles/test_type.dir/test_type.cpp.o"
  "CMakeFiles/test_type.dir/test_type.cpp.o.d"
  "test_type"
  "test_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
