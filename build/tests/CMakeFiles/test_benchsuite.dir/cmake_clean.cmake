file(REMOVE_RECURSE
  "CMakeFiles/test_benchsuite.dir/test_benchsuite.cpp.o"
  "CMakeFiles/test_benchsuite.dir/test_benchsuite.cpp.o.d"
  "test_benchsuite"
  "test_benchsuite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
