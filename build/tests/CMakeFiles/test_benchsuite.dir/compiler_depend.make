# Empty compiler generated dependencies file for test_benchsuite.
# This may be replaced when dependencies are built.
