file(REMOVE_RECURSE
  "CMakeFiles/test_flatten_rules.dir/test_flatten_rules.cpp.o"
  "CMakeFiles/test_flatten_rules.dir/test_flatten_rules.cpp.o.d"
  "test_flatten_rules"
  "test_flatten_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flatten_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
