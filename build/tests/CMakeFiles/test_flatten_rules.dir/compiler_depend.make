# Empty compiler generated dependencies file for test_flatten_rules.
# This may be replaced when dependencies are built.
