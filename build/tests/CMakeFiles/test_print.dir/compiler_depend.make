# Empty compiler generated dependencies file for test_print.
# This may be replaced when dependencies are built.
