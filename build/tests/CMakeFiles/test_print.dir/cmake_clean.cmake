file(REMOVE_RECURSE
  "CMakeFiles/test_print.dir/test_print.cpp.o"
  "CMakeFiles/test_print.dir/test_print.cpp.o.d"
  "test_print"
  "test_print.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_print.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
