# Empty compiler generated dependencies file for test_traverse.
# This may be replaced when dependencies are built.
