file(REMOVE_RECURSE
  "CMakeFiles/test_traverse.dir/test_traverse.cpp.o"
  "CMakeFiles/test_traverse.dir/test_traverse.cpp.o.d"
  "test_traverse"
  "test_traverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
