# Empty compiler generated dependencies file for ablation_fullflatten.
# This may be replaced when dependencies are built.
