file(REMOVE_RECURSE
  "CMakeFiles/ablation_fullflatten.dir/ablation_fullflatten.cpp.o"
  "CMakeFiles/ablation_fullflatten.dir/ablation_fullflatten.cpp.o.d"
  "ablation_fullflatten"
  "ablation_fullflatten.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fullflatten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
