# Empty compiler generated dependencies file for fig8_bulk.
# This may be replaced when dependencies are built.
