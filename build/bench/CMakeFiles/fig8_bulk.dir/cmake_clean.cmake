file(REMOVE_RECURSE
  "CMakeFiles/fig8_bulk.dir/fig8_bulk.cpp.o"
  "CMakeFiles/fig8_bulk.dir/fig8_bulk.cpp.o.d"
  "fig8_bulk"
  "fig8_bulk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
