file(REMOVE_RECURSE
  "CMakeFiles/ablation_codesize.dir/ablation_codesize.cpp.o"
  "CMakeFiles/ablation_codesize.dir/ablation_codesize.cpp.o.d"
  "ablation_codesize"
  "ablation_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
