# Empty compiler generated dependencies file for ablation_codesize.
# This may be replaced when dependencies are built.
