file(REMOVE_RECURSE
  "CMakeFiles/fig2_matmul.dir/fig2_matmul.cpp.o"
  "CMakeFiles/fig2_matmul.dir/fig2_matmul.cpp.o.d"
  "fig2_matmul"
  "fig2_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
