# Empty dependencies file for fig2_matmul.
# This may be replaced when dependencies are built.
