# Empty dependencies file for fig7_locvolcalib.
# This may be replaced when dependencies are built.
