file(REMOVE_RECURSE
  "CMakeFiles/fig7_locvolcalib.dir/fig7_locvolcalib.cpp.o"
  "CMakeFiles/fig7_locvolcalib.dir/fig7_locvolcalib.cpp.o.d"
  "fig7_locvolcalib"
  "fig7_locvolcalib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_locvolcalib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
