file(REMOVE_RECURSE
  "CMakeFiles/ablation_tuner.dir/ablation_tuner.cpp.o"
  "CMakeFiles/ablation_tuner.dir/ablation_tuner.cpp.o.d"
  "ablation_tuner"
  "ablation_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
