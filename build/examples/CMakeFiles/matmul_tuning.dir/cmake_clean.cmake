file(REMOVE_RECURSE
  "CMakeFiles/matmul_tuning.dir/matmul_tuning.cpp.o"
  "CMakeFiles/matmul_tuning.dir/matmul_tuning.cpp.o.d"
  "matmul_tuning"
  "matmul_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
