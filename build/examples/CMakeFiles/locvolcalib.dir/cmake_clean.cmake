file(REMOVE_RECURSE
  "CMakeFiles/locvolcalib.dir/locvolcalib.cpp.o"
  "CMakeFiles/locvolcalib.dir/locvolcalib.cpp.o.d"
  "locvolcalib"
  "locvolcalib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locvolcalib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
