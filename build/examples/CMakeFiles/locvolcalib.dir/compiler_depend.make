# Empty compiler generated dependencies file for locvolcalib.
# This may be replaced when dependencies are built.
