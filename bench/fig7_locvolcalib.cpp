// Figure 7: LocVolCalib speedup over moderate flattening on both devices,
// for the small/medium/large datasets, with the hand-written FinPar-Out and
// FinPar-All OpenCL implementations as additional bars (paper Sec. 5.2).
#include "bench/harness.h"
#include "src/benchsuite/reference.h"

namespace incflat {
namespace {

using bench::Checks;
using bench::prepare;

int run() {
  const std::vector<DeviceProfile> devices{device_k40(), device_vega64()};
  bench::TunedBench t = prepare(get_benchmark("LocVolCalib"), devices);

  Checks checks;
  for (const auto& dev : devices) {
    std::cout << "\n=== Figure 7: LocVolCalib speedup vs moderate "
                 "flattening, device "
              << dev.name << " ===\n";
    Table tab({"dataset", "MF(us)", "IF", "AIF", "FinPar-Out", "FinPar-All"});
    std::map<std::string, std::map<std::string, double>> sp;
    for (const auto& d : t.bench.datasets) {
      const double mf = bench::sim(*t.moderate.plan, dev, d.sizes).time_us;
      const double un = bench::sim(*t.incremental.plan, dev, d.sizes).time_us;
      const double aif = bench::sim(*t.incremental.plan, dev, d.sizes,
                                    t.tuned.at(dev.name))
                             .time_us;
      const double fo = reference_finpar_out(dev, d.sizes);
      const double fa = reference_finpar_all(dev, d.sizes);
      sp[d.name] = {{"mf", mf}, {"if", un}, {"aif", aif},
                    {"fout", fo}, {"fall", fa}};
      tab.row({d.name, fmt_double(mf, 1), bench::ratio(mf, un),
               bench::ratio(mf, aif), bench::ratio(mf, fo),
               bench::ratio(mf, fa)});
    }
    tab.print(std::cout);

    for (const auto& d : t.bench.datasets) {
      checks.expect(sp[d.name]["aif"] <= 1.02 * sp[d.name]["mf"],
                    dev.name + "/" + d.name +
                        ": AIF outperforms (or matches) MF");
    }
    if (dev.name == "vega64") {
      // "on Vega 64, AIF is slightly slower than FinPar-All in all cases,
      // due to suboptimal memory reuse"
      for (const auto& d : t.bench.datasets) {
        checks.expect(sp[d.name]["fall"] <= sp[d.name]["aif"] * 1.05,
                      "vega64/" + d.name + ": FinPar-All at least "
                      "matches AIF");
      }
    } else {
      // "on K40 ... is outperformed by FinPar-Out on the large dataset"
      checks.expect(sp["large"]["fout"] < sp["large"]["aif"],
                    "k40/large: FinPar-Out beats AIF (work-efficient "
                    "sequential tridag)");
    }
  }

  // Paper: AIF uses version 2 on Vega (intra-group), version 1 for the
  // large dataset on K40 (outer parallelism, sequential tridag).
  {
    const DeviceProfile k40 = device_k40();
    RunEstimate big = bench::sim(*t.incremental.plan, device_k40(),
                                 t.bench.datasets[2].sizes,
                                 t.tuned.at("k40"));
    bool intra = false;
    for (const auto& k : big.kernels) {
      intra |= k.what.find("intra") != std::string::npos;
    }
    checks.expect(!intra,
                  "k40/large: tuned program selects the sequential-tridag "
                  "version (no intra-group kernels)");
    RunEstimate v = bench::sim(*t.incremental.plan, device_vega64(),
                               t.bench.datasets[0].sizes,
                               t.tuned.at("vega64"));
    bool intra_v = false;
    for (const auto& k : v.kernels) {
      intra_v |= k.what.find("intra") != std::string::npos;
    }
    checks.expect(intra_v,
                  "vega64/small: tuned program selects the intra-group "
                  "(local-memory scans) version");
    (void)k40;
  }
  return checks.print(std::cout);
}

}  // namespace
}  // namespace incflat

int main() { return incflat::run(); }
