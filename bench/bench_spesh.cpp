// Steady-state plan selection: guard-tree descent vs specialized schedule.
//
// The tree tier pays a full decision-tree descent per run — guard-operand
// lookups, branch dispatch, and a guard_path vector copied into every
// launch-schedule entry.  The specialized tier pays a handful of interval
// checks (shape guards) and a straight-line replay with no guard paths at
// all.  For each benchsuite program that specializes under the default
// assignment, this bench times both per-run selection paths back to back on
// the same dataset cache, checks the schedules agree (same entries, same
// times — the bit-identity contract), and requires the specialized path to
// be at least 5x cheaper on at least three benchmarks.  Results go to
// BENCH_spesh.json.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/plan/plan.h"
#include "src/plan/specialize.h"
#include "src/profile/profile.h"
#include "src/support/json.h"
#include "src/support/str.h"

namespace incflat {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  std::string name;
  std::string dataset;
  bool specialized = false;
  std::string refusal;
  int entries = 0;       // launch-schedule entries per run
  int shape_guards = 0;  // dispatch checks the specialized path pays
  int folded = 0;
  int elided = 0;
  double tree_ns = 0;   // per-run tree descent + schedule build
  double spesh_ns = 0;  // per-run steady-state dispatch + schedule walk
  double dispatch_build_ns = 0;  // one-time cost per shape change
  double speedup = 0;
  bool identical = false;  // schedules carry the same kernels and times
};

Row measure(const std::string& name) {
  const Benchmark b = get_benchmark(name);
  const DeviceProfile dev = device_k40();
  const Compiled c = compile(b.program, FlattenMode::Incremental);
  const KernelPlan& plan = *c.plan;
  const ThresholdEnv thr;
  const BenchDataset& d = b.datasets.front();
  const PlanDatasetCache cache(plan, dev, d.sizes);

  Row r;
  r.name = name;
  r.dataset = d.name;

  // A stable profile over the hot window, then one specialization — the
  // steady state the tiered runtime reaches on a shape-stable stream.
  spesh::SpecializeOptions opts;
  profile::ExecProfile prof =
      profile::make_profile(plan, plan.program.name, dev.name);
  for (int i = 0; i < opts.hot_runs; ++i) {
    profile::record_run(prof, plan, cache, thr);
  }
  const spesh::SpecializeResult res =
      spesh::specialize_plan(plan, prof, thr, dev, opts);
  if (!res.ok) {
    r.refusal = res.reason;
    return r;
  }
  const spesh::SpecializedPlan& sp = res.plan;
  r.specialized = true;
  r.shape_guards = static_cast<int>(sp.shape_guards.size());
  r.folded = static_cast<int>(sp.folded_guards.size());
  r.elided = static_cast<int>(sp.elided_guards.size());

  const std::vector<LaunchInfo> tree_sched =
      plan_launch_schedule(plan, cache, thr);
  const std::vector<LaunchInfo> spec_sched =
      spesh::spec_launch_schedule(plan, sp, cache);
  r.entries = static_cast<int>(tree_sched.size());
  r.identical = tree_sched.size() == spec_sched.size();
  for (size_t i = 0; r.identical && i < tree_sched.size(); ++i) {
    r.identical = tree_sched[i].kernel == spec_sched[i].kernel &&
                  tree_sched[i].what == spec_sched[i].what &&
                  tree_sched[i].time_us == spec_sched[i].time_us &&
                  tree_sched[i].launches == spec_sched[i].launches;
  }

  // Per-run selection work, as each tier's executor performs it.  The tree
  // tier must rebuild the schedule every run: guard decisions depend on the
  // run's threshold assignment, which nothing has frozen.  The specialized
  // tier froze them, so its dispatch state (verdict + precompiled schedule)
  // is built once per shape; a steady-state run reads the verdict and
  // walks the schedule.  Both loops consume every entry, like the fault
  // executor does.
  const int iters = 200000;
  double sink = 0;

  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const auto sched = plan_launch_schedule(plan, cache, thr);
    for (const LaunchInfo& li : sched) sink += li.time_us;
  }
  r.tree_ns = seconds_since(t0) * 1e9 / iters;

  // The one-time dispatch build (shape-guard evaluation + replay): paid
  // once per shape change, amortized away on a stable stream.
  const int builds = 2000;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < builds; ++i) {
    const spesh::SpecDispatch once(plan, sp, cache);
    sink += once.pass() ? 1 : 0;
  }
  r.dispatch_build_ns = seconds_since(t0) * 1e9 / builds;

  const spesh::SpecDispatch dispatch(plan, sp, cache);
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    if (!dispatch.pass()) break;
    for (const LaunchInfo& li : dispatch.schedule()) sink += li.time_us;
  }
  r.spesh_ns = seconds_since(t0) * 1e9 / iters;
  if (sink < 0) std::cout << "";  // keep the loops observable

  r.speedup = r.tree_ns / r.spesh_ns;
  return r;
}

int run() {
  Json out = Json::array();
  int fast = 0;
  int specialized = 0;
  bool all_identical = true;
  std::cout << "=== Steady-state plan selection: tree descent vs specialized "
               "schedule ===\n";
  for (const std::string& name : all_benchmark_names()) {
    const Row r = measure(name);
    if (!r.specialized) {
      std::cout << "\n" << r.name << ": tree-only (" << r.refusal << ")\n";
      out.push(Json::object()
                   .set("benchmark", r.name)
                   .set("specialized", false)
                   .set("refusal", r.refusal));
      continue;
    }
    ++specialized;
    if (r.speedup >= 5.0) ++fast;
    all_identical &= r.identical;
    std::cout << "\n" << r.name << " (" << r.dataset << ", " << r.entries
              << " launches, " << r.folded << " folded + " << r.elided
              << " elided guards, " << r.shape_guards << " shape checks):\n"
              << "  tree descent  " << fmt_double(r.tree_ns, 0) << " ns/run\n"
              << "  specialized   " << fmt_double(r.spesh_ns, 1)
              << " ns/run (+ " << fmt_double(r.dispatch_build_ns, 0)
              << " ns once per shape) -> " << fmt_double(r.speedup, 1)
              << "x\n"
              << "  schedules identical: " << (r.identical ? "yes" : "NO")
              << "\n";
    out.push(Json::object()
                 .set("benchmark", r.name)
                 .set("specialized", true)
                 .set("dataset", r.dataset)
                 .set("entries", r.entries)
                 .set("shape_guards", r.shape_guards)
                 .set("folded_guards", r.folded)
                 .set("elided_guards", r.elided)
                 .set("tree_ns_per_run", r.tree_ns)
                 .set("spesh_ns_per_run", r.spesh_ns)
                 .set("dispatch_build_ns", r.dispatch_build_ns)
                 .set("speedup", r.speedup)
                 .set("schedules_identical", r.identical));
  }
  if (std::ofstream jf("BENCH_spesh.json"); jf) {
    jf << out.str() << "\n";
    std::cout << "\nraw results written to BENCH_spesh.json\n";
  }
  std::cout << (all_identical ? "[PASS]" : "[FAIL]")
            << " specialized schedules bit-identical to the tree's\n"
            << (fast >= 3 ? "[PASS]" : "[FAIL]") << " >= 5x cheaper selection"
            << " on >= 3 benchmarks (" << fast << "/" << specialized
            << " specialized)\n";
  return all_identical && fast >= 3 ? 0 : 1;
}

}  // namespace
}  // namespace incflat

int main() { return incflat::run(); }
