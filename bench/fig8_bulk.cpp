// Figure 8: bulk validation — speedup of incremental flattening (untuned
// and autotuned) and of the hand-written reference implementations over
// moderate flattening, for the eight benchmarks of Table 1 on both device
// profiles.
#include <fstream>

#include "bench/harness.h"
#include "src/support/json.h"

namespace incflat {
namespace {

using bench::Checks;
using bench::prepare;

int run() {
  const std::vector<DeviceProfile> devices{device_k40(), device_vega64()};
  Checks checks;
  Json results = Json::array();  // artifact-style raw measurement dump

  for (const auto& dev : devices) {
    std::cout << "\n=== Figure 8: speedup vs moderate flattening, device "
              << dev.name << " ===\n";
    Table tab({"benchmark", "dataset", "MF(us)", "IF", "AIF", "reference"});
    for (const auto& base : bulk_benchmarks()) {
      bench::TunedBench t = prepare(base, {dev});
      for (const auto& d : t.bench.datasets) {
        const double mf = bench::sim(*t.moderate.plan, dev, d.sizes).time_us;
        const double un =
            bench::sim(*t.incremental.plan, dev, d.sizes).time_us;
        const double aif = bench::sim(*t.incremental.plan, dev, d.sizes,
                                      t.tuned.at(dev.name))
                               .time_us;
        const double ref =
            t.bench.reference ? t.bench.reference(dev, d.sizes) : -1;
        tab.row({t.bench.name, d.name, fmt_double(mf, 1),
                 bench::ratio(mf, un), bench::ratio(mf, aif),
                 ref > 0 ? bench::ratio(mf, ref) : "-"});
        results.push(Json::object()
                         .set("device", dev.name)
                         .set("benchmark", t.bench.name)
                         .set("dataset", d.name)
                         .set("moderate_us", mf)
                         .set("incremental_us", un)
                         .set("autotuned_us", aif)
                         .set("reference_us", ref));

        checks.expect(aif <= 1.05 * mf,
                      dev.name + "/" + t.bench.name + "/" + d.name +
                          ": AIF never loses to MF");
        checks.expect(aif <= 1.05 * un,
                      dev.name + "/" + t.bench.name + "/" + d.name +
                          ": tuning never loses to the untuned default");
      }
    }
    tab.print(std::cout);
  }

  // Raw measurements in the artifact's "simple JSON format".
  if (std::ofstream jf("fig8_results.json"); jf) {
    jf << results.str() << "\n";
    std::cout << "\nraw results written to fig8_results.json\n";
  }

  // Named claims from Sec. 5.3, checked on the K40 profile.
  {
    const DeviceProfile dev = device_k40();
    auto time_of = [&](const char* name, int ds, bool tuned_aif) {
      bench::TunedBench t = prepare(get_benchmark(name), {dev});
      const auto& d = t.bench.datasets[static_cast<size_t>(ds)];
      if (tuned_aif) {
        return bench::sim(*t.incremental.plan, dev, d.sizes,
                          t.tuned.at(dev.name))
            .time_us;
      }
      return bench::sim(*t.moderate.plan, dev, d.sizes).time_us;
    };
    auto ref_of = [&](const char* name, int ds) {
      Benchmark b = get_benchmark(name);
      return b.reference(dev, b.datasets[static_cast<size_t>(ds)].sizes);
    };
    checks.expect(ref_of("OptionPricing", 1) > time_of("OptionPricing", 1,
                                                       false),
                  "OptionPricing/D2: outer-parallel reference slows down "
                  "(needs inner layers)");
    checks.expect(ref_of("Backprop", 1) > time_of("Backprop", 1, true),
                  "Backprop/D2: Rodinia loses (reduce on the CPU)");
    checks.expect(ref_of("NN", 0) > time_of("NN", 0, true),
                  "NN/D1: Rodinia loses (reduce on the CPU)");
    checks.expect(ref_of("Pathfinder", 0) > time_of("Pathfinder", 0, true),
                  "Pathfinder/D1: pyramidal tiling does not pay off");
    checks.expect(ref_of("NW", 0) < time_of("NW", 0, true),
                  "NW/D1: Rodinia wins ~2x (in-place diagonal updates "
                  "not expressible)");
    checks.expect(time_of("LavaMD", 1, true) <
                      0.5 * time_of("LavaMD", 1, false),
                  "LavaMD/D2: AIF wins by parallelising the inner redomap "
                  "at workgroup level");
  }
  return checks.print(std::cout);
}

}  // namespace
}  // namespace incflat

int main() { return incflat::run(); }
