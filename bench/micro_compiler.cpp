// google-benchmark micro-benchmarks of the compiler pipeline itself:
// type checking, fusion, normalisation, the three flattening modes, the
// cost model, and the autotuner, on the largest real program in the suite
// (LocVolCalib) and on matmul.
#include <benchmark/benchmark.h>

#include "src/autotune/autotune.h"
#include "src/benchsuite/benchmark.h"
#include "src/flatten/flatten.h"
#include "src/flatten/fusion.h"
#include "src/flatten/normalize.h"
#include "src/ir/typecheck.h"
#include "src/plan/plan.h"

namespace incflat {
namespace {

const Benchmark& lvc() {
  static const Benchmark b = get_benchmark("LocVolCalib");
  return b;
}

const Benchmark& mm() {
  static const Benchmark b = get_benchmark("matmul");
  return b;
}

void BM_Typecheck(benchmark::State& state) {
  Program p = lvc().program;
  for (auto _ : state) {
    benchmark::DoNotOptimize(typecheck_program(p));
  }
}
BENCHMARK(BM_Typecheck);

void BM_Normalize(benchmark::State& state) {
  Program p = lvc().program;
  for (auto _ : state) {
    benchmark::DoNotOptimize(normalize_program(p));
  }
}
BENCHMARK(BM_Normalize);

void BM_Fusion(benchmark::State& state) {
  Program p = lvc().program;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuse_program(p));
  }
}
BENCHMARK(BM_Fusion);

void BM_FlattenModerate(benchmark::State& state) {
  Program p = lvc().program;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flatten(p, FlattenMode::Moderate));
  }
}
BENCHMARK(BM_FlattenModerate);

void BM_FlattenIncremental(benchmark::State& state) {
  Program p = lvc().program;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flatten(p, FlattenMode::Incremental));
  }
}
BENCHMARK(BM_FlattenIncremental);

void BM_FlattenIncrementalMatmul(benchmark::State& state) {
  Program p = mm().program;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flatten(p, FlattenMode::Incremental));
  }
}
BENCHMARK(BM_FlattenIncrementalMatmul);

void BM_CostModel(benchmark::State& state) {
  FlattenResult inc = flatten(lvc().program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = lvc().datasets[0].sizes;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_run(dev, inc.program, sizes, {}));
  }
}
BENCHMARK(BM_CostModel);

void BM_PlanBuild(benchmark::State& state) {
  FlattenResult inc = flatten(lvc().program, FlattenMode::Incremental);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_kernel_plan(inc.program));
  }
}
BENCHMARK(BM_PlanBuild);

void BM_PlanEstimate(benchmark::State& state) {
  FlattenResult inc = flatten(lvc().program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  const SizeEnv sizes = lvc().datasets[0].sizes;
  const KernelPlan plan = build_kernel_plan(inc.program);
  const PlanDatasetCache cache(plan, dev, sizes);
  const ThresholdEnv thr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_cost(plan, cache, thr));
  }
}
BENCHMARK(BM_PlanEstimate);

void BM_AutotuneStochastic(benchmark::State& state) {
  FlattenResult inc = flatten(lvc().program, FlattenMode::Incremental);
  const DeviceProfile dev = device_k40();
  std::vector<TuningDataset> train;
  for (const auto& d : lvc().tuning) train.push_back({d.name, d.sizes, 1.0});
  TunerOptions opts;
  opts.max_trials = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        autotune(dev, inc.program, inc.thresholds, train, opts));
  }
}
BENCHMARK(BM_AutotuneStochastic);

}  // namespace
}  // namespace incflat

BENCHMARK_MAIN();
