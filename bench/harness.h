// Shared harness for the per-figure benchmark binaries.
//
// Every binary compiles benchmarks under moderate / incremental flattening,
// autotunes the incremental version on the *training* datasets (Sec. 5.1:
// tuning datasets differ from evaluation datasets), evaluates on the paper's
// datasets for both device profiles, and prints the figure's rows plus a
// qualitative-shape check summary (who wins, roughly by how much, where the
// crossovers fall — the reproduction contract from DESIGN.md).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/autotune/autotune.h"
#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/exec/runtime.h"
#include "src/flatten/flatten.h"
#include "src/gpusim/faults.h"
#include "src/plan/plan.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/support/trace.h"

namespace incflat::bench {

/// Observability hook for the figure binaries: setting INCFLAT_TRACE=file
/// writes a Chrome trace-event JSON of the whole run, INCFLAT_STATS=1
/// prints the per-phase timing/counter summary to stderr alongside the
/// figure's own output.  Both are flushed at process exit.
class TraceSession {
 public:
  TraceSession() {
    // Touch the trace state before this object finishes constructing, so
    // the state singleton is destroyed after us and the destructor's flush
    // stays valid at process exit.
    trace::reset();
    const char* t = std::getenv("INCFLAT_TRACE");
    const char* s = std::getenv("INCFLAT_STATS");
    if (t && *t) trace_out_ = t;
    stats_ = s && *s;
    if (!trace_out_.empty() || stats_) trace::set_enabled(true);
  }
  ~TraceSession() {
    if (stats_) trace::print_summary(std::cerr);
    if (trace_out_.empty()) return;
    try {
      trace::write_chrome(trace_out_);
      std::cerr << "wrote trace to " << trace_out_ << "\n";
    } catch (const std::exception& e) {
      std::cerr << "trace: " << e.what() << "\n";
    }
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::string trace_out_;
  bool stats_ = false;
};

/// The process-wide session; first call decides enablement from the
/// environment.
inline TraceSession& trace_session() {
  static TraceSession s;
  return s;
}

namespace detail {
/// Every figure binary includes this header, so touching the session from
/// a static initializer wires the hook without per-binary code.
inline const bool trace_session_init = (trace_session(), true);
}  // namespace detail

/// A compiled benchmark with tuned thresholds per device.  Each flattening
/// mode is a full exec::compile() product (target program + thresholds +
/// compile-once kernel plan); all pricing below goes through the plans
/// (bit-identical to the legacy IR walker).
struct TunedBench {
  Benchmark bench;
  Compiled moderate;
  Compiled incremental;
  Compiled full;
  std::map<std::string, ThresholdEnv> tuned;  // device name -> thresholds
  std::map<std::string, TuningReport> reports;
};

/// Fault-injection hook for the figure binaries: INCFLAT_FAULTS=SPEC (the
/// same spec grammar as incflatc --faults) makes every sim() run through
/// the fault-tolerant executor, with INCFLAT_FAULT_SEED and
/// INCFLAT_RUN_POLICY pinning the seed and retry/degradation budgets.  Off
/// (the default) leaves the figures bit-identical to a fault-free build.
class FaultSession {
 public:
  FaultSession() {
    const char* f = std::getenv("INCFLAT_FAULTS");
    if (!f || !*f) return;
    try {
      spec_ = parse_fault_spec(f);
      uint64_t seed = 0xb0a7f001ULL;
      if (const char* s = std::getenv("INCFLAT_FAULT_SEED")) {
        seed = std::stoull(s, nullptr, 0);
      }
      if (const char* p = std::getenv("INCFLAT_RUN_POLICY")) {
        policy_ = parse_run_policy(p);
      }
      plan_ = FaultPlan(spec_, seed);
      enabled_ = spec_.faults_launches();
    } catch (const std::exception& e) {
      std::cerr << "INCFLAT_FAULTS: " << e.what() << "\n";
      std::exit(3);
    }
  }
  FaultSession(const FaultSession&) = delete;
  FaultSession& operator=(const FaultSession&) = delete;

  bool enabled() const { return enabled_; }
  const FaultSpec& spec() const { return spec_; }
  FaultPlan& plan() { return plan_; }
  const RunPolicy& policy() const { return policy_; }

 private:
  FaultSpec spec_;
  FaultPlan plan_;
  RunPolicy policy_;
  bool enabled_ = false;
};

inline FaultSession& fault_session() {
  static FaultSession s;
  return s;
}

/// Price one run via a kernel plan (one-off query; the tuner reuses
/// per-dataset caches internally instead).  Under INCFLAT_FAULTS the run
/// goes through the fault-tolerant executor: the returned time includes
/// retry/degradation overhead, and an unrecoverable run is reported to
/// stderr rather than thrown.
inline RunEstimate sim(const KernelPlan& plan, const DeviceProfile& dev,
                       const SizeEnv& sizes, const ThresholdEnv& thr = {}) {
  FaultSession& fs = fault_session();
  if (fs.enabled()) {
    const RunOutcome out =
        run_with_faults(dev, plan, sizes, thr, fs.plan(), fs.policy());
    if (!out.ok) {
      std::cerr << "fault injection: unrecoverable run: " << outcome_str(out)
                << "\n";
    }
    RunEstimate est = out.estimate;
    est.time_us = out.time_us;
    return est;
  }
  return plan_estimate_run(plan, dev, sizes, thr);
}

/// Compile + autotune a benchmark for the given devices.  `exhaustive`
/// uses the branch-complete oracle search (fast here because runs are
/// simulated); otherwise the stochastic OpenTuner-style search is used.
inline TunedBench prepare(const Benchmark& b,
                          const std::vector<DeviceProfile>& devices,
                          bool exhaustive = true) {
  trace_session();
  trace::Span span("bench.prepare");
  TunedBench t;
  t.bench = b;
  CompileOptions mf_opts;
  mf_opts.flatten.fuse = b.fuse_moderate;
  t.moderate = compile(b.program, FlattenMode::Moderate, mf_opts);
  t.incremental = compile(b.program, FlattenMode::Incremental);
  t.full = compile(b.program, FlattenMode::Full);
  std::vector<TuningDataset> train;
  for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});
  for (const auto& dev : devices) {
    TuningReport rep =
        exhaustive
            ? exhaustive_tune(dev, t.incremental.flat.program,
                              t.incremental.flat.thresholds, train)
            : autotune(dev, t.incremental.flat.program,
                       t.incremental.flat.thresholds, train);
    t.tuned[dev.name] = rep.best;
    t.reports[dev.name] = rep;
  }
  return t;
}

/// Simple check collector printed at the end of each binary.
class Checks {
 public:
  void expect(bool ok, const std::string& what) {
    results_.emplace_back(ok, what);
    if (!ok) ++failures_;
  }

  int print(std::ostream& os) const {
    os << "\nQualitative shape checks (paper claim -> measured):\n";
    for (const auto& [ok, what] : results_) {
      os << "  [" << (ok ? "PASS" : "FAIL") << "] " << what << "\n";
    }
    os << (failures_ == 0 ? "All" : "Some") << " shape checks "
       << (failures_ == 0 ? "passed" : "FAILED") << " (" << failures_ << "/"
       << results_.size() << " failures)\n";
    return failures_;
  }

 private:
  std::vector<std::pair<bool, std::string>> results_;
  int failures_ = 0;
};

inline std::string ratio(double num, double den) {
  return fmt_double(num / den, 2) + "x";
}

}  // namespace incflat::bench
