// Plan layer vs legacy IR walker: autotuner evaluation throughput.
//
// For LocVolCalib and matmul, runs the stochastic autotuner twice — once
// evaluating candidates against the compile-once KernelPlan (the default)
// and once against the legacy per-candidate IR walk (TunerOptions::use_plan
// = false) — and additionally times raw cost evaluations of both back ends
// in a tight loop.  Since plan costs are bit-identical to walker costs, the
// two tuner runs perform the same evaluations and find the same optimum;
// only the time differs.  Results go to BENCH_plan.json.
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "src/autotune/autotune.h"
#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/flatten/flatten.h"
#include "src/plan/plan.h"
#include "src/support/json.h"
#include "src/support/str.h"

namespace incflat {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  std::string name;
  double plan_tune_s = 0;
  double walk_tune_s = 0;
  int evaluations = 0;  // identical for both paths (same dedup behaviour)
  double plan_evals_per_s = 0;
  double walk_evals_per_s = 0;
  double raw_plan_evals_per_s = 0;
  double raw_walk_evals_per_s = 0;
  bool costs_match = false;
};

Row measure(const std::string& name) {
  const Benchmark b = get_benchmark(name);
  const DeviceProfile dev = device_k40();
  const Compiled compiled = compile(b.program, FlattenMode::Incremental);
  const FlattenResult& inc = compiled.flat;
  std::vector<TuningDataset> train;
  for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});

  TunerOptions plan_opts;  // defaults: use_plan = true
  TunerOptions walk_opts;
  walk_opts.use_plan = false;

  Row r;
  r.name = name;

  auto t0 = std::chrono::steady_clock::now();
  TuningReport plan_rep = autotune(dev, inc.program, inc.thresholds, train,
                                   plan_opts);
  r.plan_tune_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  TuningReport walk_rep = autotune(dev, inc.program, inc.thresholds, train,
                                   walk_opts);
  r.walk_tune_s = seconds_since(t0);

  // Same costs => same search trajectory => same evaluation counts.
  r.costs_match = plan_rep.best_cost_us == walk_rep.best_cost_us &&
                  plan_rep.evaluations == walk_rep.evaluations &&
                  plan_rep.used_plan && !walk_rep.used_plan;
  r.evaluations = plan_rep.evaluations;
  r.plan_evals_per_s = r.evaluations / r.plan_tune_s;
  r.walk_evals_per_s = r.evaluations / r.walk_tune_s;

  // Raw back-to-back cost evaluations, outside the tuner (no dedup, no
  // search overhead): the per-candidate cost of each back end.
  const KernelPlan& plan = *compiled.plan;
  std::vector<PlanDatasetCache> caches;
  for (const auto& d : train) caches.emplace_back(plan, dev, d.sizes);
  const ThresholdEnv thr;
  const int raw_iters = 2000;
  t0 = std::chrono::steady_clock::now();
  double sink = 0;
  for (int i = 0; i < raw_iters; ++i) {
    for (size_t j = 0; j < caches.size(); ++j) {
      sink += train[j].weight * plan_cost(plan, caches[j], thr);
    }
  }
  r.raw_plan_evals_per_s = raw_iters / seconds_since(t0);

  const int raw_walk_iters = 200;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < raw_walk_iters; ++i) {
    sink += tuning_cost(dev, inc.program, train, thr);
  }
  r.raw_walk_evals_per_s = raw_walk_iters / seconds_since(t0);
  if (sink < 0) std::cout << "";  // keep the loops observable

  return r;
}

int run() {
  Json out = Json::array();
  bool all_match = true;
  bool fast_enough = true;
  std::cout << "=== Autotuner evaluation throughput: kernel plan vs IR walk "
               "===\n";
  for (const std::string name : {"LocVolCalib", "matmul"}) {
    const Row r = measure(name);
    const double tuner_speedup = r.walk_tune_s / r.plan_tune_s;
    const double raw_speedup = r.raw_plan_evals_per_s / r.raw_walk_evals_per_s;
    std::cout << "\n" << r.name << ":\n"
              << "  tuner (" << r.evaluations << " evaluations): plan "
              << fmt_double(r.plan_tune_s * 1e3, 1) << " ms ("
              << fmt_double(r.plan_evals_per_s, 0) << " evals/s), walker "
              << fmt_double(r.walk_tune_s * 1e3, 1) << " ms ("
              << fmt_double(r.walk_evals_per_s, 0) << " evals/s) -> "
              << fmt_double(tuner_speedup, 1) << "x\n"
              << "  raw cost eval: plan "
              << fmt_double(r.raw_plan_evals_per_s, 0) << "/s, walker "
              << fmt_double(r.raw_walk_evals_per_s, 0) << "/s -> "
              << fmt_double(raw_speedup, 1) << "x\n"
              << "  costs bit-identical: " << (r.costs_match ? "yes" : "NO")
              << "\n";
    all_match &= r.costs_match;
    fast_enough &= raw_speedup >= 5.0;
    out.push(Json::object()
                 .set("benchmark", r.name)
                 .set("evaluations", r.evaluations)
                 .set("plan_tune_s", r.plan_tune_s)
                 .set("walk_tune_s", r.walk_tune_s)
                 .set("plan_evals_per_s", r.plan_evals_per_s)
                 .set("walk_evals_per_s", r.walk_evals_per_s)
                 .set("raw_plan_evals_per_s", r.raw_plan_evals_per_s)
                 .set("raw_walk_evals_per_s", r.raw_walk_evals_per_s)
                 .set("tuner_speedup", tuner_speedup)
                 .set("raw_eval_speedup", raw_speedup)
                 .set("costs_match", r.costs_match));
  }
  if (std::ofstream jf("BENCH_plan.json"); jf) {
    jf << out.str() << "\n";
    std::cout << "\nraw results written to BENCH_plan.json\n";
  }
  std::cout << (all_match ? "[PASS]" : "[FAIL]")
            << " plan costs match the IR walker\n"
            << (fast_enough ? "[PASS]" : "[FAIL]")
            << " plan evaluations at least 5x faster than IR walks\n";
  return all_match && fast_enough ? 0 : 1;
}

}  // namespace
}  // namespace incflat

int main() { return incflat::run(); }
