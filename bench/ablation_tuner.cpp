// Ablation (Sec. 4.2): the autotuner and its branching-tree deduplication.
// The paper's OpenTuner cost function short-circuits parameter assignments
// that repeat an already-measured path through the branching tree; we
// report how many of the stochastic search's trials were resolved from the
// tree cache, and how close the stochastic search gets to the exhaustive
// (branch-complete) optimum at several trial budgets.
#include "bench/harness.h"

namespace incflat {
namespace {

using bench::Checks;

int run() {
  const DeviceProfile dev = device_k40();
  Checks checks;

  std::cout << "=== Autotuner: stochastic search vs branch-complete "
               "optimum (" << dev.name << ") ===\n";
  Table tab({"benchmark", "thresholds", "budget", "trials", "evals",
             "dedup-hits", "cost vs optimum", "vs default"});
  for (const auto& name : all_benchmark_names()) {
    Benchmark b = get_benchmark(name);
    FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
    std::vector<TuningDataset> train;
    for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});
    TuningReport oracle =
        exhaustive_tune(dev, inc.program, inc.thresholds, train);
    for (int budget : {50, 400}) {
      TunerOptions opts;
      opts.max_trials = budget;
      TuningReport rep =
          autotune(dev, inc.program, inc.thresholds, train, opts);
      tab.row({name, std::to_string(inc.thresholds.size()),
               std::to_string(budget), std::to_string(rep.trials),
               std::to_string(rep.evaluations),
               std::to_string(rep.dedup_hits),
               fmt_double(rep.best_cost_us / oracle.best_cost_us, 3),
               fmt_double(rep.default_cost_us / rep.best_cost_us, 2) + "x"});
      if (budget == 400) {
        checks.expect(rep.best_cost_us <= 1.25 * oracle.best_cost_us,
                      name + ": stochastic tuner within 25% of the "
                      "branch-complete optimum at 400 trials");
        if (inc.thresholds.size() >= 2) {
          checks.expect(rep.dedup_hits > 0,
                        name + ": branching-tree dedup resolves repeated "
                        "assignments without re-measurement");
        }
      }
    }
  }
  tab.print(std::cout);
  return checks.print(std::cout);
}

}  // namespace
}  // namespace incflat

int main() { return incflat::run(); }
