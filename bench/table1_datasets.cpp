// Table 1: the D1/D2 datasets used in Figure 8, plus the (disjoint)
// datasets used for training the autotuner (Sec. 5.1).
#include "bench/harness.h"

namespace incflat {
namespace {

int run() {
  std::cout << "=== Table 1: datasets used in Figure 8 ===\n";
  Table tab({"Benchmark", "D1", "D2"});
  for (const auto& b : bulk_benchmarks()) {
    tab.row({b.name, b.datasets.at(0).summary, b.datasets.at(1).summary});
  }
  tab.print(std::cout);

  std::cout << "\n=== Size environments (simulation inputs) ===\n";
  Table sizes({"Benchmark", "dataset", "sizes"});
  for (const auto& b : bulk_benchmarks()) {
    for (const auto& d : b.datasets) {
      sizes.row({b.name, d.name,
                 join_map(d.sizes, " ", [](const auto& kv) {
                   return kv.first + "=" + std::to_string(kv.second);
                 })});
    }
    for (const auto& d : b.tuning) {
      sizes.row({b.name, d.name + " (train)",
                 join_map(d.sizes, " ", [](const auto& kv) {
                   return kv.first + "=" + std::to_string(kv.second);
                 })});
    }
  }
  sizes.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace incflat

int main() { return incflat::run(); }
