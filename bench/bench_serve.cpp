// Compile-and-serve daemon: plan-cache effectiveness and serving latency.
//
// Exercises ServerCore (the transport-independent daemon core) exactly as
// incflatd does, minus the socket: every request goes through the length-
// prefixed protocol's text path (handle_text), so JSON parse and response
// formatting are part of every measured latency.  Three phases:
//
//   1. Cold vs warm compile.  Each benchmark's first compile pays the full
//      flattening pipeline; repeats are plan-cache hits.  Gate: warm serving
//      is >= 50x faster than cold in aggregate across the suite.
//   2. Bit-identity.  A cache-served plan must answer run requests with the
//      same estimate and the same kernel launches as a freshly compiled
//      plan on a fresh core — the cache can never change results.
//   3. Mixed load.  16 concurrent clients with zipfian key skew issue a
//      run/compile/stats mix against one core; reports throughput and
//      p50/p95/p99 per op, and requires zero failed responses with a sane
//      run-latency tail.
//
// Results go to BENCH_serve.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/benchsuite/benchmark.h"
#include "src/serve/server.h"
#include "src/support/json.h"
#include "src/support/rng.h"
#include "src/support/str.h"

namespace incflat {
namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double pct(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1,
                    static_cast<size_t>(p / 100.0 *
                                        static_cast<double>(v.size())))];
}

std::string compile_req(const std::string& bench) {
  Json r = Json::object();
  r.set("op", "compile");
  r.set("benchmark", bench);
  return r.str(-1);
}

std::string run_req(const std::string& bench, const std::string& dataset) {
  Json r = Json::object();
  r.set("op", "run");
  r.set("benchmark", bench);
  r.set("dataset", dataset);
  return r.str(-1);
}

/// One timed round trip through the daemon core's text path.
Json call(serve::ServerCore& core, const std::string& req, double* us) {
  const double t0 = now_us();
  const std::string resp = core.handle_text(req);
  if (us) *us = now_us() - t0;
  return Json::parse(resp);
}

struct CompileRow {
  std::string benchmark;
  double cold_us = 0;
  double warm_us = 0;  // median of the warm repeats
  double ratio = 0;
};

int run_bench() {
  std::cout << "=== Compile-and-serve: plan cache, bit-identity, "
               "mixed load ===\n";
  serve::ServeOptions opts;
  serve::ServerCore core(opts);
  const std::vector<std::string> names = all_benchmark_names();

  // -- Phase 1: cold vs warm compile ---------------------------------------
  std::vector<CompileRow> compiles;
  double cold_total = 0, warm_total = 0;
  for (const std::string& name : names) {
    CompileRow row;
    row.benchmark = name;
    const std::string req = compile_req(name);
    Json resp = call(core, req, &row.cold_us);
    if (!resp.get("ok").as_bool() || resp.get("cached").as_bool()) {
      std::cout << "[FAIL] first compile of " << name
                << " was not a clean cache miss\n";
      return 1;
    }
    std::vector<double> warm;
    for (int i = 0; i < 50; ++i) {
      double us = 0;
      resp = call(core, req, &us);
      if (!resp.get("ok").as_bool() || !resp.get("cached").as_bool()) {
        std::cout << "[FAIL] warm compile of " << name << " missed\n";
        return 1;
      }
      warm.push_back(us);
    }
    row.warm_us = pct(warm, 50);
    row.ratio = row.warm_us > 0 ? row.cold_us / row.warm_us : 0;
    cold_total += row.cold_us;
    warm_total += row.warm_us;
    compiles.push_back(row);
    std::cout << "  " << name << ": cold " << fmt_double(row.cold_us, 0)
              << " us, warm " << fmt_double(row.warm_us, 1) << " us -> "
              << fmt_double(row.ratio, 0) << "x\n";
  }
  const double agg_ratio = warm_total > 0 ? cold_total / warm_total : 0;
  std::cout << "  aggregate: cold " << fmt_double(cold_total, 0)
            << " us vs warm " << fmt_double(warm_total, 1) << " us -> "
            << fmt_double(agg_ratio, 0) << "x\n";

  // -- Phase 2: cache-served plans are bit-identical -----------------------
  int checked = 0, identical = 0;
  Json identity_rows = Json::array();
  for (const std::string& name : names) {
    const Benchmark b = get_benchmark(name);
    for (const auto& d : b.datasets) {
      const std::string req = run_req(name, d.name);
      // Twice on the shared (warm) core: the second is fully cache-served.
      Json first = call(core, req, nullptr);
      Json served = call(core, req, nullptr);
      // Once on a brand-new core: nothing cached anywhere.
      serve::ServerCore fresh(opts);
      Json scratch = call(fresh, req, nullptr);
      ++checked;
      const bool ok = first.get("ok").as_bool() &&
                      served.get("ok").as_bool() &&
                      scratch.get("ok").as_bool();
      const bool same =
          ok &&
          served.get("estimate_us").as_double() ==
              scratch.get("estimate_us").as_double() &&
          served.get("kernel_launches").as_double() ==
              scratch.get("kernel_launches").as_double() &&
          first.get("estimate_us").as_double() ==
              served.get("estimate_us").as_double();
      if (same) ++identical;
      else
        std::cout << "  MISMATCH " << name << "/" << d.name << ": served "
                  << (ok ? served.get("estimate_us").as_double() : -1)
                  << " vs fresh "
                  << (ok ? scratch.get("estimate_us").as_double() : -1)
                  << "\n";
      identity_rows.push(Json::object()
                             .set("benchmark", name)
                             .set("dataset", d.name)
                             .set("identical", same));
    }
  }
  std::cout << "  bit-identity: " << identical << "/" << checked
            << " cache-served runs match a fresh compile\n";

  // -- Phase 3: 16 concurrent clients, zipfian key skew --------------------
  struct Key {
    std::string bench, dataset;
  };
  std::vector<Key> keys;
  for (const std::string& name : names) {
    const Benchmark b = get_benchmark(name);
    for (const auto& d : b.datasets) keys.push_back({name, d.name});
  }
  std::vector<double> cdf(keys.size());
  double acc = 0;
  for (size_t k = 0; k < keys.size(); ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), 1.1);
    cdf[k] = acc;
  }
  for (double& c : cdf) c /= acc;

  const int kClients = 16;
  const int kPerClient = 150;
  std::atomic<int64_t> failed{0};
  std::mutex agg_mu;
  std::map<std::string, std::vector<double>> lat;
  const double t0 = now_us();
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(0xbe7c + static_cast<uint64_t>(c) * 0x9e3779b97f4a7c15ULL);
        std::map<std::string, std::vector<double>> local;
        for (int r = 0; r < kPerClient; ++r) {
          const double u = rng.uniform();
          const std::string op =
              u < 0.85 ? "run" : (u < 0.95 ? "compile" : "stats");
          const size_t rank = static_cast<size_t>(
              std::lower_bound(cdf.begin(), cdf.end(), rng.uniform()) -
              cdf.begin());
          const Key& key = keys[std::min(rank, keys.size() - 1)];
          std::string req;
          if (op == "run") req = run_req(key.bench, key.dataset);
          else if (op == "compile") req = compile_req(key.bench);
          else req = "{\"op\":\"stats\"}";
          double us = 0;
          Json resp = call(core, req, &us);
          const Json* ok = resp.find("ok");
          if (!ok || !ok->is_bool() || !ok->as_bool()) ++failed;
          local[op].push_back(us);
        }
        std::lock_guard<std::mutex> lk(agg_mu);
        for (auto& [op, v] : local) {
          auto& dst = lat[op];
          dst.insert(dst.end(), v.begin(), v.end());
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  const double wall_us = now_us() - t0;
  int64_t total = 0;
  for (auto& [op, v] : lat) total += static_cast<int64_t>(v.size());
  const double rps = static_cast<double>(total) / (wall_us / 1e6);
  const serve::RequestStats rstats = core.request_stats();
  const serve::CacheStats cstats = core.cache().stats();

  Json load_ops = Json::object();
  double run_p99 = 0;
  std::cout << "  mixed load: " << total << " requests, " << kClients
            << " clients, " << fmt_double(wall_us / 1000.0, 1) << " ms ("
            << fmt_double(rps, 0) << " req/s), " << rstats.batches
            << " batches covering " << rstats.batched_runs << " runs\n";
  for (auto& [op, v] : lat) {
    Json o = Json::object();
    o.set("n", v.size());
    o.set("p50_us", pct(v, 50));
    o.set("p95_us", pct(v, 95));
    o.set("p99_us", pct(v, 99));
    if (op == "run") run_p99 = pct(v, 99);
    std::cout << "    " << op << ": n=" << v.size() << " p50="
              << fmt_double(pct(v, 50), 1) << "us p95="
              << fmt_double(pct(v, 95), 1) << "us p99="
              << fmt_double(pct(v, 99), 1) << "us\n";
    load_ops.set(op, o);
  }

  // -- Report + gates ------------------------------------------------------
  Json out = Json::object();
  Json compile_rows = Json::array();
  for (const CompileRow& r : compiles)
    compile_rows.push(Json::object()
                          .set("benchmark", r.benchmark)
                          .set("cold_us", r.cold_us)
                          .set("warm_us", r.warm_us)
                          .set("ratio", r.ratio));
  out.set("compile", compile_rows);
  out.set("compile_aggregate", Json::object()
                                   .set("cold_us", cold_total)
                                   .set("warm_us", warm_total)
                                   .set("ratio", agg_ratio));
  out.set("identity",
          Json::object().set("checked", checked).set("identical", identical));
  out.set("identity_rows", identity_rows);
  out.set("load", Json::object()
                      .set("clients", kClients)
                      .set("requests_per_client", kPerClient)
                      .set("zipf", 1.1)
                      .set("total", total)
                      .set("wall_ms", wall_us / 1000.0)
                      .set("throughput_rps", rps)
                      .set("failed", failed.load())
                      .set("batches", rstats.batches)
                      .set("batched_runs", rstats.batched_runs)
                      .set("cache_hits", cstats.hits)
                      .set("cache_misses", cstats.misses)
                      .set("ops", load_ops));
  if (std::ofstream jf("BENCH_serve.json"); jf) {
    jf << out.str() << "\n";
    std::cout << "raw results written to BENCH_serve.json\n";
  }

  const bool gate_warm = agg_ratio >= 50.0;
  const bool gate_ident = checked > 0 && identical == checked;
  const bool gate_load = failed.load() == 0 && run_p99 < 250000.0;
  std::cout << (gate_warm ? "[PASS]" : "[FAIL]")
            << " warm compile >= 50x faster than cold in aggregate ("
            << fmt_double(agg_ratio, 0) << "x)\n"
            << (gate_ident ? "[PASS]" : "[FAIL]")
            << " cache-served plans bit-identical to fresh compiles ("
            << identical << "/" << checked << ")\n"
            << (gate_load ? "[PASS]" : "[FAIL]")
            << " zero failed responses and run p99 < 250 ms under mixed "
               "16-client zipfian load (failed="
            << failed.load() << ", p99=" << fmt_double(run_p99 / 1000.0, 1)
            << " ms)\n";
  return gate_warm && gate_ident && gate_load ? 0 : 1;
}

}  // namespace
}  // namespace incflat

int main() { return incflat::run_bench(); }
