// Figure 2: matrix multiplication runtime sweep.
//
// Multiplies 2^n x 2^m by 2^m x 2^n with constant work 2^k, n = 0..10,
// m = k - 2n, for k = 20 and k = 25.  Thresholds are trained on the k = 20
// sweep and applied to the k = 25 sweep, exactly as in the paper.  Series:
// moderate flattening (the "one size fits all" green line), untuned
// incremental flattening (black), autotuned incremental flattening (red),
// and the library-GEMM reference (cuBLAS on the K40 profile, Parboil on the
// Vega 64 profile — gray).
#include "bench/harness.h"
#include "src/benchsuite/reference.h"
#include "src/support/chart.h"

namespace incflat {
namespace {

using bench::Checks;

SizeEnv mm_sizes(int n_exp, int k_total) {
  const int m_exp = k_total - 2 * n_exp;
  return SizeEnv{{"n", int64_t{1} << n_exp},
                 {"m", int64_t{1} << m_exp},
                 {"k", int64_t{1} << n_exp}};
}

int run() {
  Benchmark b = get_benchmark("matmul");
  const std::vector<DeviceProfile> devices{device_k40(), device_vega64()};

  const Compiled mf = compile(b.program, FlattenMode::Moderate);
  const Compiled inc = compile(b.program, FlattenMode::Incremental);
  const KernelPlan& mf_plan = *mf.plan;
  const KernelPlan& inc_plan = *inc.plan;

  // Train on the k=20 sweep (paper Sec. 2.2).
  std::vector<TuningDataset> train;
  for (int n = 0; n <= 10; ++n) {
    if (20 - 2 * n < 0) break;
    train.push_back({"n" + std::to_string(n), mm_sizes(n, 20), 1.0});
  }

  Checks checks;
  for (const auto& dev : devices) {
    TuningReport rep =
        exhaustive_tune(dev, inc.flat.program, inc.flat.thresholds, train);
    for (int k_total : {20, 25}) {
      std::cout << "\n=== Figure 2: matmul, constant work 2^" << k_total
                << ", device " << dev.name << " ===\n";
      Table t({"n", "moderate(us)", "IF-untuned(us)", "IF-tuned(us)",
               "reference(us)"});
      std::vector<double> mf_t, if_t, aif_t, ref_t;
      for (int n = 0; n <= 10; ++n) {
        if (k_total - 2 * n < 0) break;
        const SizeEnv sz = mm_sizes(n, k_total);
        const double m = bench::sim(mf_plan, dev, sz).time_us;
        const double u = bench::sim(inc_plan, dev, sz).time_us;
        const double a = bench::sim(inc_plan, dev, sz, rep.best).time_us;
        const double r =
            reference_gemm(dev, sz.at("n"), sz.at("m"), sz.at("k"));
        mf_t.push_back(m);
        if_t.push_back(u);
        aif_t.push_back(a);
        ref_t.push_back(r);
        t.row({std::to_string(n), fmt_double(m, 1), fmt_double(u, 1),
               fmt_double(a, 1), fmt_double(r, 1)});
      }
      t.print(std::cout);
      print_log_chart(std::cout,
                      {{"moderate", 'm', mf_t},
                       {"IF-untuned", 'u', if_t},
                       {"IF-tuned", 'T', aif_t},
                       {"reference", 'r', ref_t}});

      if (k_total == 20) {
        checks.expect(mf_t[0] / aif_t[0] > 10.0,
                      dev.name + ": moderate flattening loses badly on "
                      "degenerate shapes (n=0)");
        checks.expect(aif_t.back() < 1.3 * mf_t.back(),
                      dev.name + ": tuned IF matches moderate flattening "
                      "at large n (best of both worlds)");
        checks.expect(ref_t[0] > aif_t[0],
                      dev.name + ": library GEMM is suboptimal on the "
                      "degenerate n<3 datasets");
        // The tuned program must match the best version at every point.
        bool best_everywhere = true;
        for (size_t i = 0; i < aif_t.size(); ++i) {
          best_everywhere &= aif_t[i] <= 1.25 * std::min(mf_t[i], if_t[i]);
        }
        checks.expect(best_everywhere,
                      dev.name + ": tuned IF within 25% of best "
                      "compiler version at every n");
      } else {
        checks.expect(ref_t[9] < aif_t[9] && ref_t[10] < aif_t[10],
                      dev.name + ": library GEMM wins at n=9,10 for k=25 "
                      "(register tiling)");
      }
    }
  }
  return checks.print(std::cout);
}

}  // namespace
}  // namespace incflat

int main() { return incflat::run(); }
