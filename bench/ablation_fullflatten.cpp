// Ablation (Sec. 5.3, closing paragraph): full flattening — the moderate
// heuristic forced to always exploit all parallelism — versus untuned
// incremental flattening.  The paper reports full flattening "typically
// slower within a factor 2 of untuned incremental flattening, but for e.g.
// OptionPricing the runtime is more than an order of magnitude higher,
// because a large amount of redundant nested parallelism is being
// exploited."
#include <algorithm>

#include "bench/harness.h"

namespace incflat {
namespace {

using bench::Checks;

int run() {
  const DeviceProfile dev = device_k40();
  Checks checks;
  std::cout << "=== Full flattening vs untuned incremental flattening ("
            << dev.name << ") ===\n";
  Table tab({"benchmark", "dataset", "IF(us)", "full(us)", "full/IF"});
  // The paper's order-of-magnitude case is OptionPricing, whose blowup
  // stems from the Brownian-bridge/sobol inner maps of the proprietary
  // kernel; in this suite's synthetic port, LavaMD plays that role: full
  // flattening distributes the per-particle neighbour loop, manifesting
  // redundant nested parallelism every iteration.
  double worst = 0;
  std::vector<double> ratios;
  for (const auto& base : bulk_benchmarks()) {
    const Compiled inc = compile(base.program, FlattenMode::Incremental);
    const Compiled full = compile(base.program, FlattenMode::Full);
    const KernelPlan& inc_plan = *inc.plan;
    const KernelPlan& full_plan = *full.plan;
    for (const auto& d : base.datasets) {
      const double ti = bench::sim(inc_plan, dev, d.sizes).time_us;
      const double tf = bench::sim(full_plan, dev, d.sizes).time_us;
      tab.row({base.name, d.name, fmt_double(ti, 1), fmt_double(tf, 1),
               fmt_double(tf / ti, 2)});
      ratios.push_back(tf / ti);
      worst = std::max(worst, tf / ti);
    }
  }
  tab.print(std::cout);
  std::sort(ratios.begin(), ratios.end());
  const double median = ratios[ratios.size() / 2];
  std::cout << "\nmedian full/IF ratio: " << fmt_double(median, 2)
            << ", worst: " << fmt_double(worst, 2) << "\n";
  checks.expect(worst > 10.0,
                "at least one benchmark is more than an order of magnitude "
                "slower under full flattening (redundant nested "
                "parallelism; paper: OptionPricing, here: LavaMD)");
  checks.expect(median < 2.5,
                "typically full flattening is within a factor ~2 of "
                "untuned IF (paper Sec. 5.3)");
  return checks.print(std::cout);
}

}  // namespace
}  // namespace incflat

int main() { return incflat::run(); }
