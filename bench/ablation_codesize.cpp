// Ablation (Sec. 5.1): compilation-cost overhead of incremental flattening.
// The paper reports "on average, IF takes 4x longer to compile and
// generates 3x larger binaries than MF".  Here we measure compile time of
// the flattening pipeline and code size as AST nodes / emitted kernels.
#include <chrono>

#include "bench/harness.h"
#include "src/ir/traverse.h"

namespace incflat {
namespace {

using bench::Checks;

double time_flatten(const Program& p, FlattenMode mode, int reps) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  for (int i = 0; i < reps; ++i) {
    FlattenResult r = flatten(p, mode);
    (void)r;
  }
  return std::chrono::duration<double, std::micro>(clock::now() - t0)
             .count() /
         reps;
}

int run() {
  Checks checks;
  std::cout << "=== Code-size and compile-time expansion of IF vs MF ===\n";
  Table tab({"benchmark", "MF nodes", "IF nodes", "size x", "MF kernels",
             "IF kernels", "thresholds", "MF comp(us)", "IF comp(us)",
             "time x"});
  double total_size = 0, total_time = 0;
  int count = 0;
  std::vector<std::string> names = all_benchmark_names();
  for (const auto& name : names) {
    Benchmark b = get_benchmark(name);
    FlattenResult mf = flatten(b.program, FlattenMode::Moderate);
    FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
    const int64_t mn = count_nodes(mf.program.body);
    const int64_t in = count_nodes(inc.program.body);
    const double tm = time_flatten(b.program, FlattenMode::Moderate, 20);
    const double ti = time_flatten(b.program, FlattenMode::Incremental, 20);
    tab.row({name, std::to_string(mn), std::to_string(in),
             fmt_double(static_cast<double>(in) / mn, 2),
             std::to_string(count_segops(mf.program.body)),
             std::to_string(count_segops(inc.program.body)),
             std::to_string(inc.thresholds.size()), fmt_double(tm, 0),
             fmt_double(ti, 0), fmt_double(ti / tm, 2)});
    total_size += static_cast<double>(in) / mn;
    total_time += ti / tm;
    ++count;
  }
  tab.print(std::cout);
  const double avg_size = total_size / count;
  const double avg_time = total_time / count;
  std::cout << "\naverage code-size expansion: " << fmt_double(avg_size, 2)
            << "x; average compile-time expansion: "
            << fmt_double(avg_time, 2) << "x\n";
  checks.expect(avg_size > 1.5 && avg_size < 10.0,
                "code-size expansion is significant but manageable "
                "(paper: ~3x binaries, up to 4x)");
  checks.expect(avg_time > 1.0,
                "incremental flattening costs more compile time than "
                "moderate (paper: ~4x)");
  return checks.print(std::cout);
}

}  // namespace
}  // namespace incflat

int main() { return incflat::run(); }
