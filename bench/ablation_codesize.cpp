// Ablation (Sec. 5.1): compilation-cost overhead of incremental flattening.
// The paper reports "on average, IF takes 4x longer to compile and
// generates 3x larger binaries than MF".  Here we measure compile time of
// the flattening pipeline and code size as AST nodes / emitted kernels.
//
// The second table measures what the static size analysis claws back:
// compiling with simplify-guards (IFs) folds guards that are provably
// constant under the benchmarks' declared dataset bounds, deleting dead
// versions and their thresholds — with *identical* cost estimates and
// tuned results, which the shape checks verify.
#include <chrono>

#include "bench/harness.h"
#include "src/ir/traverse.h"

namespace incflat {
namespace {

using bench::Checks;

double time_flatten(const Program& p, FlattenMode mode, int reps) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  for (int i = 0; i < reps; ++i) {
    FlattenResult r = flatten(p, mode);
    (void)r;
  }
  return std::chrono::duration<double, std::micro>(clock::now() - t0)
             .count() /
         reps;
}

int run() {
  Checks checks;
  std::cout << "=== Code-size and compile-time expansion of IF vs MF ===\n";
  Table tab({"benchmark", "MF nodes", "IF nodes", "size x", "MF kernels",
             "IF kernels", "thresholds", "MF comp(us)", "IF comp(us)",
             "time x"});
  double total_size = 0, total_time = 0;
  int count = 0;
  std::vector<std::string> names = all_benchmark_names();
  for (const auto& name : names) {
    Benchmark b = get_benchmark(name);
    FlattenResult mf = flatten(b.program, FlattenMode::Moderate);
    FlattenResult inc = flatten(b.program, FlattenMode::Incremental);
    const int64_t mn = count_nodes(mf.program.body);
    const int64_t in = count_nodes(inc.program.body);
    const double tm = time_flatten(b.program, FlattenMode::Moderate, 20);
    const double ti = time_flatten(b.program, FlattenMode::Incremental, 20);
    tab.row({name, std::to_string(mn), std::to_string(in),
             fmt_double(static_cast<double>(in) / mn, 2),
             std::to_string(count_segops(mf.program.body)),
             std::to_string(count_segops(inc.program.body)),
             std::to_string(inc.thresholds.size()), fmt_double(tm, 0),
             fmt_double(ti, 0), fmt_double(ti / tm, 2)});
    total_size += static_cast<double>(in) / mn;
    total_time += ti / tm;
    ++count;
  }
  tab.print(std::cout);
  const double avg_size = total_size / count;
  const double avg_time = total_time / count;
  std::cout << "\naverage code-size expansion: " << fmt_double(avg_size, 2)
            << "x; average compile-time expansion: "
            << fmt_double(avg_time, 2) << "x\n";
  checks.expect(avg_size > 1.5 && avg_size < 10.0,
                "code-size expansion is significant but manageable "
                "(paper: ~3x binaries, up to 4x)");
  checks.expect(avg_time > 1.0,
                "incremental flattening costs more compile time than "
                "moderate (paper: ~4x)");

  // ---- simplify-guards: statically-pruned incremental flattening -------
  const DeviceProfile dev = device_k40();
  std::cout << "\n=== IF vs IF+simplify-guards (IFs) on " << dev.name
            << " ===\n";
  Table stab({"benchmark", "IF kernels", "IFs kernels", "IF thr", "IFs thr",
              "IF nodes", "IFs nodes", "est match", "tuned match"});
  int pruned_programs = 0;
  bool all_est_match = true, all_tuned_match = true;
  CompileOptions sopts;
  sopts.simplify = true;
  sopts.limits = analysis::limits_for(dev);
  for (const auto& name : names) {
    Benchmark b = get_benchmark(name);
    const Compiled plain = compile(b.program, FlattenMode::Incremental);
    const Compiled simp = compile(b.program, FlattenMode::Incremental, sopts);
    const int64_t pk = count_segops(plain.flat.program.body);
    const int64_t sk = count_segops(simp.flat.program.body);
    const size_t pt = plain.flat.thresholds.size();
    const size_t st = simp.flat.thresholds.size();
    if (sk < pk && st < pt) ++pruned_programs;

    // Cost-estimate identity on every evaluation dataset, for the default
    // and a sweep of uniform threshold assignments.
    bool est_match = true;
    std::vector<ThresholdEnv> sweeps(1);
    for (const int64_t v : {int64_t{1}, int64_t{256}, int64_t{1} << 22}) {
      ThresholdEnv te;
      for (const auto& ti : plain.flat.thresholds.all()) {
        te.values[ti.name] = v;
      }
      sweeps.push_back(std::move(te));
    }
    for (const auto& ds : b.datasets) {
      for (const auto& te : sweeps) {
        const RunEstimate a = bench::sim(*plain.plan, dev, ds.sizes, te);
        const RunEstimate s = bench::sim(*simp.plan, dev, ds.sizes, te);
        if (a.time_us != s.time_us || a.kernels.size() != s.kernels.size()) {
          est_match = false;
        }
      }
    }
    all_est_match = all_est_match && est_match;

    // Tuned-result identity: the exhaustive tuner must land on the same
    // best cost over the same training data.
    std::vector<TuningDataset> train;
    for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});
    const TuningReport ra = exhaustive_tune(dev, plain.flat.program,
                                            plain.flat.thresholds, train);
    const TuningReport rs = exhaustive_tune(dev, simp.flat.program,
                                            simp.flat.thresholds, train);
    const bool tuned_match = ra.best_cost_us == rs.best_cost_us;
    all_tuned_match = all_tuned_match && tuned_match;

    stab.row({name, std::to_string(pk), std::to_string(sk),
              std::to_string(pt), std::to_string(st),
              std::to_string(count_nodes(plain.flat.program.body)),
              std::to_string(count_nodes(simp.flat.program.body)),
              est_match ? "yes" : "NO", tuned_match ? "yes" : "NO"});
  }
  stab.print(std::cout);
  std::cout << "\nprograms with strictly fewer versions AND thresholds: "
            << pruned_programs << "/" << count << "\n";
  checks.expect(pruned_programs >= 2,
                "simplify-guards statically deletes versions and "
                "thresholds on at least two benchmarks");
  checks.expect(all_est_match,
                "pruned plans price identically to the full plans on "
                "every dataset and threshold assignment");
  checks.expect(all_tuned_match,
                "exhaustive tuning reaches the same best cost with the "
                "pruned search space");
  return checks.print(std::cout);
}

}  // namespace
}  // namespace incflat

int main() { return incflat::run(); }
