// incflatd — the compile-and-serve daemon.
//
// Serves compile / run / tune / stats requests over the length-prefixed
// JSON protocol (src/serve/protocol.h) on a unix or tcp endpoint, with a
// sharded LRU plan cache, a priority job scheduler, and same-plan request
// batching (src/serve/).  See DESIGN.md, "Compile-and-serve daemon".
//
//   incflatd --listen unix:/tmp/incflatd.sock
//   incflatd --listen tcp:7465 --cache-mb 128 --workers 4
//            --faults launch=1e-4 --tune-trials 128
//   incflatd --listen tcp:0 --max-conns 256 --queue-cap 512
//            --net-chaos all=0.05 --drain-ms 3000
//
// SIGTERM / SIGINT begin a graceful drain: stop accepting, fail-fast new
// requests ("draining", retriable), finish or deadline-out in-flight work,
// flush every owed response, exit 0 — within --drain-ms.  SIGPIPE is
// ignored (a dying peer must never kill the daemon).
//
// Exit codes: 0 clean shutdown/drain, 2 usage error, 3 bind/IO failure.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/serve/chaos.h"
#include "src/serve/net.h"
#include "src/serve/server.h"
#include "src/support/error.h"
#include "src/support/sync.h"
#include "src/support/trace.h"

using namespace incflat;

namespace {

struct Options {
  std::string listen = "unix:/tmp/incflatd.sock";
  serve::ServeOptions serve;
  serve::SocketOptions sock;
  bool trace = false;
  bool lockdep = false;      // runtime lock-order validation
  bool print_ready = false;  // print "READY <endpoint>" once listening
};

/// The live socket, for the signal handlers.  Plain pointer + atomic store:
/// request_drain() is async-signal-safe by contract.
std::atomic<serve::ServeSocket*> g_sock{nullptr};

extern "C" void on_term_signal(int) {
  if (serve::ServeSocket* s = g_sock.load(std::memory_order_relaxed))
    s->request_drain();
}

int usage(FILE* to) {
  std::fprintf(to,
               "usage: incflatd [options]\n"
               "\n"
               "  --listen SPEC      endpoint: unix:PATH or tcp:[HOST:]PORT\n"
               "                     (default unix:/tmp/incflatd.sock;\n"
               "                     tcp port 0 picks an ephemeral port)\n"
               "  --cache-mb N       plan cache byte budget in MiB "
               "(default 64)\n"
               "  --cache-shards N   plan cache shard count (default 8)\n"
               "  --workers N        scheduler worker threads "
               "(default: min(cores, 8))\n"
               "  --faults SPEC      fault injection for served runs\n"
               "                     (also INCFLAT_FAULTS)\n"
               "  --fault-seed N     fault stream seed "
               "(also INCFLAT_FAULT_SEED)\n"
               "  --no-specialize    disable tiered specialization\n"
               "  --hot-runs N       specialization stability window "
               "(default 8)\n"
               "  --tune-trials N    default tune trial budget (default 64)\n"
               "  --tune-timeout MS  drop tune jobs queued longer than MS\n"
               "  --max-conns N      connection cap: connections past it "
               "get one\n"
               "                     'overloaded' (retriable) frame and are "
               "closed\n"
               "  --max-inflight N   per-connection pipelined-request cap "
               "(shed past it)\n"
               "  --queue-cap N      per-priority-class scheduler queue "
               "bound\n"
               "                     (reject-newest, 'overloaded' "
               "retriable)\n"
               "  --drain-ms MS      graceful-drain bound on SIGTERM/SIGINT "
               "(default 5000)\n"
               "  --net-chaos SPEC   network chaos injection "
               "(also INCFLAT_NET_CHAOS);\n"
               "                     keys dribble, partial-write, stall, "
               "reset,\n"
               "                     accept-fail, stall-us; 'all=R' "
               "shorthand\n"
               "  --net-chaos-seed N chaos stream seed "
               "(also INCFLAT_NET_CHAOS_SEED)\n"
               "  --trace            enable the trace layer (stats op "
               "reports spans)\n"
               "  --lockdep          enable runtime lock-order validation "
               "(also INCFLAT_LOCKDEP=1);\n"
               "                     inversions print on detection and a "
               "shutdown report\n"
               "                     fails the exit status\n"
               "  --ready            print 'READY <endpoint>' on stdout "
               "once listening\n");
  return to == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const char* env = std::getenv("INCFLAT_FAULTS")) opt.serve.faults = env;
  if (const char* env = std::getenv("INCFLAT_FAULT_SEED"))
    opt.serve.fault_seed = std::strtoull(env, nullptr, 0);
  std::string chaos_spec;
  if (const char* env = std::getenv("INCFLAT_NET_CHAOS")) chaos_spec = env;
  if (const char* env = std::getenv("INCFLAT_NET_CHAOS_SEED"))
    opt.sock.chaos_seed = std::strtoull(env, nullptr, 0);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "incflatd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(stdout);
    if (arg == "--listen") {
      opt.listen = next();
    } else if (arg == "--cache-mb") {
      opt.serve.cache_bytes = static_cast<size_t>(std::atoll(next())) << 20;
    } else if (arg == "--cache-shards") {
      opt.serve.cache_shards = std::atoi(next());
    } else if (arg == "--workers") {
      opt.serve.workers = std::atoi(next());
    } else if (arg == "--faults") {
      opt.serve.faults = next();
    } else if (arg == "--fault-seed") {
      opt.serve.fault_seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--no-specialize") {
      opt.serve.specialize = false;
    } else if (arg == "--hot-runs") {
      opt.serve.hot_runs = std::atoll(next());
    } else if (arg == "--tune-trials") {
      opt.serve.tune_trials = std::atoi(next());
    } else if (arg == "--tune-timeout") {
      opt.serve.tune_queue_timeout_ms = std::atof(next());
    } else if (arg == "--max-conns") {
      opt.sock.max_conns = std::atoi(next());
    } else if (arg == "--max-inflight") {
      opt.sock.max_inflight_per_conn = std::atoi(next());
    } else if (arg == "--queue-cap") {
      opt.serve.queue_cap = std::atoll(next());
    } else if (arg == "--drain-ms") {
      opt.sock.drain_ms = std::atof(next());
    } else if (arg == "--net-chaos") {
      chaos_spec = next();
    } else if (arg == "--net-chaos-seed") {
      opt.sock.chaos_seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--trace") {
      opt.trace = true;
    } else if (arg == "--lockdep") {
      opt.lockdep = true;
    } else if (arg == "--ready") {
      opt.print_ready = true;
    } else {
      std::fprintf(stderr, "incflatd: unknown option '%s'\n", arg.c_str());
      return usage(stderr);
    }
  }

  // Env first (deploy-wide default), flag second (per-instance override).
  sync::lockdep::enable_from_env();
  if (opt.lockdep) sync::lockdep::set_enabled(true);

  try {
    if (opt.trace) trace::set_enabled(true);
    opt.sock.chaos = serve::parse_net_chaos(chaos_spec);
    const serve::Endpoint ep = serve::parse_endpoint(opt.listen);
    serve::ServerCore core(opt.serve);
    serve::ServeSocket sock(core, ep, opt.sock);

    // A dying peer mid-write must be an EPIPE errno, not a fatal signal.
    std::signal(SIGPIPE, SIG_IGN);
    // SIGTERM/SIGINT begin a graceful drain instead of killing the daemon.
    g_sock.store(&sock, std::memory_order_relaxed);
    std::signal(SIGTERM, on_term_signal);
    std::signal(SIGINT, on_term_signal);

    if (opt.print_ready) {
      if (ep.kind == serve::Endpoint::Kind::Tcp) {
        std::printf("READY tcp:%s:%u\n",
                    ep.host.empty() ? "127.0.0.1" : ep.host.c_str(),
                    static_cast<unsigned>(sock.bound_port()));
      } else {
        std::printf("READY unix:%s\n", ep.path.c_str());
      }
      std::fflush(stdout);
    }
    sock.serve_forever();
    g_sock.store(nullptr, std::memory_order_relaxed);

    const serve::DrainStats& ds = sock.drain_stats();
    if (ds.requested) {
      std::fprintf(stderr,
                   "incflatd: drained %s (%lld connection(s) forced)\n",
                   ds.clean ? "clean" : "at deadline",
                   static_cast<long long>(ds.forced_conns));
    }
    if (opt.sock.chaos.enabled()) {
      const serve::NetChaos::Counts& cc = sock.chaos_counts();
      std::fprintf(stderr,
                   "incflatd: net-chaos fired %lld event(s): %lld dribble, "
                   "%lld partial-write, %lld stall, %lld reset, %lld "
                   "accept-fail\n",
                   static_cast<long long>(cc.total()),
                   static_cast<long long>(cc.dribbles),
                   static_cast<long long>(cc.partial_writes),
                   static_cast<long long>(cc.stalls),
                   static_cast<long long>(cc.resets),
                   static_cast<long long>(cc.accept_fails));
    }
    // Shutdown certification: a clean run under --lockdep proves this
    // instance's whole traffic mix never closed an ordering cycle.  Any
    // inversion was already printed at detection time; summarize and fail.
    if (sync::lockdep::enabled()) {
      sync::lockdep::publish_trace_counters();
      const auto ls = sync::lockdep::stats();
      std::fprintf(stderr,
                   "incflatd: lockdep: %lld classes, %lld edges, %lld "
                   "acquisitions, %lld violation(s)\n",
                   static_cast<long long>(ls.classes),
                   static_cast<long long>(ls.edges),
                   static_cast<long long>(ls.acquisitions),
                   static_cast<long long>(ls.violations));
      if (ls.violations > 0) return 1;
    }
    return 0;
  } catch (const IoError& e) {
    std::fprintf(stderr, "incflatd: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "incflatd: %s\n", e.what());
    return 1;
  }
}
