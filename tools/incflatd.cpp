// incflatd — the compile-and-serve daemon.
//
// Serves compile / run / tune / stats requests over the length-prefixed
// JSON protocol (src/serve/protocol.h) on a unix or tcp endpoint, with a
// sharded LRU plan cache, a priority job scheduler, and same-plan request
// batching (src/serve/).  See DESIGN.md, "Compile-and-serve daemon".
//
//   incflatd --listen unix:/tmp/incflatd.sock
//   incflatd --listen tcp:7465 --cache-mb 128 --workers 4
//            --faults launch=1e-4 --tune-trials 128
//
// Exit codes: 0 clean shutdown, 2 usage error, 3 bind/IO failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/serve/net.h"
#include "src/serve/server.h"
#include "src/support/error.h"
#include "src/support/sync.h"
#include "src/support/trace.h"

using namespace incflat;

namespace {

struct Options {
  std::string listen = "unix:/tmp/incflatd.sock";
  serve::ServeOptions serve;
  bool trace = false;
  bool lockdep = false;      // runtime lock-order validation
  bool print_ready = false;  // print "READY <endpoint>" once listening
};

int usage(FILE* to) {
  std::fprintf(to,
               "usage: incflatd [options]\n"
               "\n"
               "  --listen SPEC      endpoint: unix:PATH or tcp:[HOST:]PORT\n"
               "                     (default unix:/tmp/incflatd.sock;\n"
               "                     tcp port 0 picks an ephemeral port)\n"
               "  --cache-mb N       plan cache byte budget in MiB "
               "(default 64)\n"
               "  --cache-shards N   plan cache shard count (default 8)\n"
               "  --workers N        scheduler worker threads "
               "(default: min(cores, 8))\n"
               "  --faults SPEC      fault injection for served runs\n"
               "                     (also INCFLAT_FAULTS)\n"
               "  --fault-seed N     fault stream seed "
               "(also INCFLAT_FAULT_SEED)\n"
               "  --no-specialize    disable tiered specialization\n"
               "  --hot-runs N       specialization stability window "
               "(default 8)\n"
               "  --tune-trials N    default tune trial budget (default 64)\n"
               "  --tune-timeout MS  drop tune jobs queued longer than MS\n"
               "  --trace            enable the trace layer (stats op "
               "reports spans)\n"
               "  --lockdep          enable runtime lock-order validation "
               "(also INCFLAT_LOCKDEP=1);\n"
               "                     inversions print on detection and a "
               "shutdown report\n"
               "                     fails the exit status\n"
               "  --ready            print 'READY <endpoint>' on stdout "
               "once listening\n");
  return to == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const char* env = std::getenv("INCFLAT_FAULTS")) opt.serve.faults = env;
  if (const char* env = std::getenv("INCFLAT_FAULT_SEED"))
    opt.serve.fault_seed = std::strtoull(env, nullptr, 0);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "incflatd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(stdout);
    if (arg == "--listen") {
      opt.listen = next();
    } else if (arg == "--cache-mb") {
      opt.serve.cache_bytes = static_cast<size_t>(std::atoll(next())) << 20;
    } else if (arg == "--cache-shards") {
      opt.serve.cache_shards = std::atoi(next());
    } else if (arg == "--workers") {
      opt.serve.workers = std::atoi(next());
    } else if (arg == "--faults") {
      opt.serve.faults = next();
    } else if (arg == "--fault-seed") {
      opt.serve.fault_seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--no-specialize") {
      opt.serve.specialize = false;
    } else if (arg == "--hot-runs") {
      opt.serve.hot_runs = std::atoll(next());
    } else if (arg == "--tune-trials") {
      opt.serve.tune_trials = std::atoi(next());
    } else if (arg == "--tune-timeout") {
      opt.serve.tune_queue_timeout_ms = std::atof(next());
    } else if (arg == "--trace") {
      opt.trace = true;
    } else if (arg == "--lockdep") {
      opt.lockdep = true;
    } else if (arg == "--ready") {
      opt.print_ready = true;
    } else {
      std::fprintf(stderr, "incflatd: unknown option '%s'\n", arg.c_str());
      return usage(stderr);
    }
  }

  // Env first (deploy-wide default), flag second (per-instance override).
  sync::lockdep::enable_from_env();
  if (opt.lockdep) sync::lockdep::set_enabled(true);

  try {
    if (opt.trace) trace::set_enabled(true);
    const serve::Endpoint ep = serve::parse_endpoint(opt.listen);
    serve::ServerCore core(opt.serve);
    serve::ServeSocket sock(core, ep);
    if (opt.print_ready) {
      if (ep.kind == serve::Endpoint::Kind::Tcp) {
        std::printf("READY tcp:%s:%u\n",
                    ep.host.empty() ? "127.0.0.1" : ep.host.c_str(),
                    static_cast<unsigned>(sock.bound_port()));
      } else {
        std::printf("READY unix:%s\n", ep.path.c_str());
      }
      std::fflush(stdout);
    }
    sock.serve_forever();
    // Shutdown certification: a clean run under --lockdep proves this
    // instance's whole traffic mix never closed an ordering cycle.  Any
    // inversion was already printed at detection time; summarize and fail.
    if (sync::lockdep::enabled()) {
      sync::lockdep::publish_trace_counters();
      const auto ls = sync::lockdep::stats();
      std::fprintf(stderr,
                   "incflatd: lockdep: %lld classes, %lld edges, %lld "
                   "acquisitions, %lld violation(s)\n",
                   static_cast<long long>(ls.classes),
                   static_cast<long long>(ls.edges),
                   static_cast<long long>(ls.acquisitions),
                   static_cast<long long>(ls.violations));
      if (ls.violations > 0) return 1;
    }
    return 0;
  } catch (const IoError& e) {
    std::fprintf(stderr, "incflatd: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "incflatd: %s\n", e.what());
    return 1;
  }
}
