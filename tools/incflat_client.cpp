// incflat_client — one-shot client for incflatd.
//
//   incflat_client --connect unix:/tmp/incflatd.sock ping
//   incflat_client compile matmul --mode incremental --device k40
//   incflat_client run matmul D1 --tuned
//   incflat_client tune matmul --trials 64
//   incflat_client stats            incflat_client shutdown
//   incflat_client raw '{"op":"run","benchmark":"matmul","dataset":"D1"}'
//
// Prints the response JSON (pretty) to stdout.  Exit codes: 0 response has
// ok=true, 1 response has ok=false, 2 usage error, 3 transport failure.
//
// --timeout-ms bounds the connect and each response wait; --retries N
// retries connect-refused / timed-out calls with jittered exponential
// backoff (fresh connection per attempt) — and also retries responses the
// daemon marked "retriable":true (shed, draining, deadline-expired).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/net.h"
#include "src/serve/protocol.h"
#include "src/support/error.h"
#include "src/support/json.h"

using namespace incflat;

namespace {

int usage(FILE* to) {
  std::fprintf(
      to,
      "usage: incflat_client [--connect SPEC] OP [args] [options]\n"
      "\n"
      "  ops: ping | stats | shutdown\n"
      "       compile BENCH            [--mode M] [--device D]\n"
      "       run BENCH DATASET        [--mode M] [--device D] [--tuned]\n"
      "                                [--threshold NAME=V]...\n"
      "       tune BENCH               [--mode M] [--device D] [--trials N]\n"
      "       raw JSON                 send a verbatim request payload\n"
      "\n"
      "  --connect SPEC   unix:PATH or tcp:[HOST:]PORT\n"
      "                   (default unix:/tmp/incflatd.sock)\n"
      "  --timeout-ms MS  bound the connect and each response wait\n"
      "  --deadline-ms MS end-to-end server-side deadline for the request\n"
      "  --retries N      retry refused/timed-out/retriable calls up to N\n"
      "                   times with jittered exponential backoff\n");
  return to == stdout ? 0 : 2;
}

/// Jittered exponential backoff before retry `attempt` (1-based):
/// base 50ms * 2^(attempt-1), capped at 2s, then scaled by a uniform
/// [0.5, 1.5) jitter so a herd of retrying clients decorrelates.
void backoff_sleep(int attempt, std::mt19937_64& rng) {
  double ms = 50.0;
  for (int i = 1; i < attempt; ++i) ms = std::min(ms * 2, 2000.0);
  std::uniform_real_distribution<double> jitter(0.5, 1.5);
  ms *= jitter(rng);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000)));
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect = "unix:/tmp/incflatd.sock";
  std::vector<std::string> pos;
  std::string mode, device;
  std::vector<std::pair<std::string, int64_t>> thresholds;
  int trials = 0;
  bool tuned = false;
  double timeout_ms = 0;
  double deadline_ms = 0;
  int retries = 0;

  // A server going away mid-write must surface as EPIPE, not kill us.
  std::signal(SIGPIPE, SIG_IGN);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "incflat_client: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(stdout);
    if (arg == "--connect") {
      connect = next();
    } else if (arg == "--mode") {
      mode = next();
    } else if (arg == "--device") {
      device = next();
    } else if (arg == "--trials") {
      trials = std::atoi(next());
    } else if (arg == "--tuned") {
      tuned = true;
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::atof(next());
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::atof(next());
    } else if (arg == "--retries") {
      retries = std::atoi(next());
    } else if (arg == "--threshold") {
      const std::string kv = next();
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr,
                     "incflat_client: --threshold wants NAME=VALUE\n");
        return 2;
      }
      thresholds.emplace_back(kv.substr(0, eq),
                              std::atoll(kv.c_str() + eq + 1));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "incflat_client: unknown option '%s'\n",
                   arg.c_str());
      return usage(stderr);
    } else {
      pos.push_back(arg);
    }
  }
  if (pos.empty()) return usage(stderr);

  const std::string& op = pos[0];
  Json req = Json::object();
  std::string raw_payload;
  if (op == "ping" || op == "stats" || op == "shutdown") {
    req.set("op", op);
  } else if (op == "compile" || op == "tune") {
    if (pos.size() != 2) return usage(stderr);
    req.set("op", op);
    req.set("benchmark", pos[1]);
    if (op == "tune" && trials > 0) req.set("trials", trials);
  } else if (op == "run") {
    if (pos.size() != 3) return usage(stderr);
    req.set("op", "run");
    req.set("benchmark", pos[1]);
    req.set("dataset", pos[2]);
    if (tuned) req.set("tuned", true);
    if (!thresholds.empty()) {
      Json t = Json::object();
      for (const auto& [k, v] : thresholds) t.set(k, v);
      req.set("thresholds", t);
    }
  } else if (op == "raw") {
    if (pos.size() != 2) return usage(stderr);
    raw_payload = pos[1];
  } else {
    std::fprintf(stderr, "incflat_client: unknown op '%s'\n", op.c_str());
    return usage(stderr);
  }
  if (raw_payload.empty()) {
    if (!mode.empty()) req.set("mode", mode);
    if (!device.empty()) req.set("device", device);
    if (deadline_ms > 0) req.set("deadline_ms", deadline_ms);
  }

  const std::string payload = raw_payload.empty() ? req.str(-1) : raw_payload;
  const serve::Endpoint ep = serve::parse_endpoint(connect);
  std::mt19937_64 rng(std::random_device{}());

  // Each attempt uses a fresh connection: a timed-out call leaves the old
  // stream with an unconsumed response in flight, unusable for a resend.
  std::string last_error;
  for (int attempt = 1; attempt <= 1 + retries; ++attempt) {
    if (attempt > 1) backoff_sleep(attempt - 1, rng);
    try {
      serve::ServeClient client(ep, timeout_ms);
      const std::string resp_text = client.call_text(payload);
      Json resp;
      try {
        resp = Json::parse(resp_text);
      } catch (const JsonParseError&) {
        std::printf("%s\n", resp_text.c_str());
        return 1;
      }
      if (serve::is_retriable(resp) && attempt <= retries) {
        const Json* code = resp.find("code");
        std::fprintf(stderr,
                     "incflat_client: retriable failure (%s), retrying "
                     "(%d/%d)\n",
                     code && code->is_string() ? code->as_string().c_str()
                                               : "?",
                     attempt, retries);
        continue;
      }
      std::printf("%s\n", resp.str(2).c_str());
      const Json* ok = resp.find("ok");
      return ok && ok->is_bool() && ok->as_bool() ? 0 : 1;
    } catch (const IoError& e) {
      last_error = e.what();
      if (attempt <= retries) {
        std::fprintf(stderr, "incflat_client: %s, retrying (%d/%d)\n",
                     e.what(), attempt, retries);
        continue;
      }
      std::fprintf(stderr, "incflat_client: %s\n", e.what());
      return 3;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "incflat_client: %s\n", e.what());
      return 1;
    }
  }
  std::fprintf(stderr, "incflat_client: retries exhausted: %s\n",
               last_error.c_str());
  return 3;
}
