// soak_faults — fault-injection soak for CI.
//
//   soak_faults [SPEC] [SEEDS]
//   soak_faults chaos              heavy network-chaos soak only
//
// Runs every benchsuite program on both device profiles under a mixed
// fault spec (default all=0.01, i.e. 1% of launches fault) across SEEDS
// seeds (default 10), checking the robustness contract end to end:
//
//   * no run crashes or throws: every outcome is either ok or a structured
//     fault-unrecoverable Diagnostic;
//   * every degraded run is value-correct: executing the interpreter under
//     the outcome's effective thresholds reproduces the source program's
//     values bit-for-bit (the paper's semantics-preservation property);
//   * the accounting adds up: overheads are non-negative and event counts
//     match the fault/retry/degradation tallies;
//   * a noisy autotuning smoke on each program completes, journals, and
//     resumes to a bit-identical report.
//
// A tiered phase drives the speculative runtime the same way: every
// benchsuite program on both devices executes a drifting-shape stream under
// injected faults through TieredRuntime, checking that deoptimized runs
// re-execute interpreter-identical, that no specialized plan survives a
// fault degradation, and that specialized-tier estimates stay bit-identical
// to the tree's.
//
// A serve phase drives a fault-injected ServerCore from concurrent threads
// — the daemon minus its sockets — with the lockdep lock-order validator
// on for the whole soak; the run fails if any acquisition anywhere closed
// an ordering cycle, certifying the daemon's lock hierarchy acyclic.
//
// A network-chaos phase runs a real ServeSocket under deterministic
// socket-level chaos (dribbled reads, partial writes, stalls, mid-stream
// resets, accept drops) with admission limits and per-request deadlines on,
// driven by reconnecting clients.  Contracts: no client ever sees a protocol
// violation, every response correlates to the request that asked for it
// (in-order, exactly-once), shed / deadline-expired outcomes are structured
// and retriable, a fresh client still gets a ping answered after the storm
// (nothing wedged), and a requested drain completes clean within its bound.
// `soak_faults chaos` runs a heavier version of just this phase.
//
// Exit code 0 only when every check passes — CI runs this under
// ASan+UBSan, so memory errors in the fault paths also fail the job.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/autotune/autotune.h"
#include "src/autotune/journal.h"
#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/exec/runtime.h"
#include "src/gpusim/faults.h"
#include "src/plan/plan.h"
#include "src/serve/net.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/support/json.h"
#include "src/support/rng.h"
#include "src/support/sync.h"
#include "src/support/trace.h"

namespace incflat {
namespace {

struct Tally {
  int runs = 0;
  int faulted = 0;
  int degraded = 0;
  int unrecoverable = 0;
  int tiered_runs = 0;
  int spec_runs = 0;        // runs the specialized schedule completed
  int specializations = 0;  // specialized plans built across all streams
  int deopts = 0;           // deoptimizations across all streams
  int failures = 0;  // contract violations (crashes the job)
};

void check(Tally& t, bool ok, const std::string& what) {
  if (ok) return;
  ++t.failures;
  std::cerr << "FAIL: " << what << "\n";
}

void soak_one(Tally& t, const Benchmark& b, const Compiled& c,
              const DeviceProfile& dev, const Values& want,
              const std::vector<Value>& inputs, const FaultSpec& spec,
              const ThresholdEnv& thresholds, uint64_t seed) {
  FaultPlan faults(spec, seed);
  RunOutcome out;
  try {
    out = run_with_faults(dev, c, b.test_sizes, thresholds, faults);
  } catch (const std::exception& e) {
    check(t, false,
          b.name + "/" + dev.name + " seed " + std::to_string(seed) +
              ": run_with_faults threw: " + e.what());
    return;
  }
  ++t.runs;
  if (out.faults > 0) ++t.faulted;
  if (out.degradations > 0) ++t.degraded;

  const std::string tag =
      b.name + "/" + dev.name + " seed " + std::to_string(seed);
  if (!out.ok) {
    ++t.unrecoverable;
    check(t, out.error.has_value(), tag + ": failed without a diagnostic");
    return;
  }
  check(t, !out.error.has_value(), tag + ": ok run carries an error");
  check(t, out.overhead_us >= 0, tag + ": negative fault overhead");
  check(t, out.time_us >= out.estimate.time_us - 1e-9,
        tag + ": total time below the fault-free estimate");
  check(t, static_cast<int>(out.degraded.size()) == out.degradations,
        tag + ": degradation tally does not match the degraded list");

  // Value correctness of the (possibly degraded) run: the interpreter under
  // the outcome's effective thresholds must reproduce the source values
  // bit-for-bit.
  Values got = execute(dev, c, b.test_sizes, out.thresholds, inputs);
  bool same = got.size() == want.size();
  for (size_t i = 0; same && i < got.size(); ++i) {
    same = got[i].approx_equal(want[i], 0);
  }
  check(t, same, tag + ": degraded run is not value-identical to the source");
}

/// Tiered-runtime soak: a drifting-shape stream through TieredRuntime under
/// injected faults.  A fault-free stable prefix lets the plan specialize;
/// the tail drifts shapes (shrinking and restoring each size) and flips the
/// threshold assignment once, forcing deopts.  Contracts: no run throws,
/// every deoptimized ok-run re-executes interpreter-identical to the source
/// under its effective thresholds, no specialized plan survives a
/// degradation, and specialized-tier estimates match the tree oracle
/// bit for bit.
void soak_tiered(Tally& t, const Benchmark& b, const Compiled& c,
                 const DeviceProfile& dev, const FaultSpec& spec,
                 uint64_t seed) {
  const KernelPlan& plan = *c.plan;
  if (plan.legacy_fallback) return;
  const std::string tag = b.name + "/" + dev.name + " tiered";

  // Threshold 1 turns every guard on at interpreter sizes, so shape drift
  // and degradation both have versions to move between.
  ThresholdEnv all_on;
  all_on.default_threshold = 1;
  ThresholdEnv flipped;  // paper default: mostly sequentialised versions

  TierPolicy tp;
  tp.hot_runs = 3;
  TieredRuntime rt(dev, plan, tp);
  Rng drift_rng(seed ^ 0x7d1f7);
  FaultPlan faults(spec, seed);

  for (int i = 0; i < 14; ++i) {
    // Stable fault-free prefix (runs 0-4), then drifting shapes under
    // faults, then one threshold flip (run 12) and a recovery run.
    SizeEnv sizes = b.test_sizes;
    if (i >= 5 && i < 12 && drift_rng.flip(0.4)) {
      for (auto& [n, v] : sizes) {
        if (drift_rng.flip(0.5)) v = std::max<int64_t>(1, v >> 1);
      }
    }
    const ThresholdEnv& thr = i == 12 ? flipped : all_on;
    FaultPlan none;
    FaultPlan& fp = i < 5 ? none : faults;

    TieredOutcome out;
    try {
      out = rt.run(sizes, thr, fp);
    } catch (const std::exception& e) {
      check(t, false, tag + " run " + std::to_string(i) +
                          ": TieredRuntime::run threw: " + e.what());
      return;
    }
    ++t.tiered_runs;
    if (out.specialized) ++t.spec_runs;
    if (out.deopted) ++t.deopts;
    if (out.run.degradations > 0) ++t.degraded;
    const std::string rtag = tag + " run " + std::to_string(i);

    if (!out.run.ok) {
      ++t.unrecoverable;
      check(t, out.run.error.has_value(), rtag + ": failed without a diagnostic");
      continue;
    }

    // No specialization survives a degradation.
    if (out.run.degradations > 0) {
      check(t, rt.specialized() == nullptr,
            rtag + ": a specialized plan survived a degradation");
    }

    // A specialized run's estimate is bit-identical to the tree descent.
    if (out.specialized) {
      const RunEstimate oracle = plan_estimate_run(plan, dev, sizes, thr);
      check(t, out.run.estimate.time_us == oracle.time_us &&
                   out.run.estimate.kernel_launches == oracle.kernel_launches,
            rtag + ": specialized estimate diverged from the tree oracle");
    }

    // Every deoptimized run re-executes interpreter-identical: the values
    // under its effective thresholds match the source program's.
    if (out.deopted) {
      Rng in_rng(0xabc);
      const std::vector<Value> inputs = b.gen_inputs(in_rng, sizes);
      const Values want = execute_source(c, sizes, inputs);
      const Values got = execute(dev, c, sizes, out.run.thresholds, inputs);
      bool same = got.size() == want.size();
      for (size_t v = 0; same && v < got.size(); ++v) {
        same = got[v].approx_equal(want[v], 0);
      }
      check(t, same, rtag + ": deoptimized run is not value-identical (" +
                         out.deopt_reason + ")");
    }
  }
  t.specializations += static_cast<int>(rt.stats().specializations);
}

/// Noisy, journaled tuning completes and resumes bit-identically.
void soak_tuning(Tally& t, const Benchmark& b, const Compiled& c,
                 const DeviceProfile& dev, const FaultSpec& spec,
                 uint64_t seed) {
  std::vector<TuningDataset> train;
  for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});
  TunerOptions topts;
  topts.max_trials = 60;
  topts.noise = spec.noise > 0 ? spec.noise : 0.05;
  topts.failure_rate = spec.launch_rate();
  topts.measure_seed = seed;
  const std::string journal =
      "/tmp/incflat_soak_" + b.name + "_" + dev.name + ".journal";
  topts.journal = journal;
  const std::string tag = b.name + "/" + dev.name + " tuning";
  try {
    const TuningReport first = autotune(dev, c.flat.program,
                                        c.flat.thresholds, train, topts);
    topts.resume = true;
    const TuningReport again = autotune(dev, c.flat.program,
                                        c.flat.thresholds, train, topts);
    check(t, again.best_cost_us == first.best_cost_us &&
                 again.best.values == first.best.values &&
                 again.trials == first.trials &&
                 again.evaluations == first.evaluations,
          tag + ": resumed report differs from the original");
    check(t, again.journal_replayed == first.evaluations,
          tag + ": resume did not replay every evaluation");
  } catch (const std::exception& e) {
    check(t, false, tag + ": threw: " + std::string(e.what()));
  }
  std::remove(journal.c_str());
}

/// Concurrent daemon-shape soak: several threads hammer one fault-injected
/// ServerCore with run/compile/stats traffic.  The point is lock-graph
/// coverage — batching (serve.entry), cache sharding, the scheduler and the
/// stats paths all interleave here, and lockdep watches every acquisition.
void soak_serve(Tally& t, const std::string& spec_str) {
  // Tracing on: the X -> trace.state ordering edges (cache shards, the
  // scheduler, the pool all count under their locks) only exist while the
  // trace layer is enabled, and the certification should cover them.
  trace::set_enabled(true);
  serve::ServeOptions o;
  o.workers = 4;
  o.faults = spec_str;
  serve::ServerCore core(o);
  const std::vector<std::string> names = all_benchmark_names();
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kReqs = 40;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kReqs; ++i) {
        const Benchmark b = get_benchmark(names[(w + i) % names.size()]);
        Json req = Json::object();
        if (i % 13 == 0) {
          req.set("op", "stats");
        } else if (i % 7 == 0) {
          req.set("op", "compile");
          req.set("benchmark", b.name);
        } else {
          req.set("op", "run");
          req.set("benchmark", b.name);
          req.set("dataset", b.datasets.empty() ? std::string("test")
                                                : b.datasets[0].name);
        }
        const Json resp = core.handle(req);
        // Injected run faults may answer ok=false (structured); a missing
        // "ok" field means the core broke protocol.
        if (resp.find("ok") == nullptr) ++bad;
      }
    });
  }
  for (auto& th : threads) th.join();
  trace::set_enabled(false);
  trace::reset();
  check(t, bad.load() == 0, "serve soak: response without an ok field");
  t.runs += kThreads * kReqs;
}

/// Network-chaos soak: a real ServeSocket under deterministic socket-level
/// chaos, admission limits and per-request deadlines, driven by
/// reconnecting clients.  See the file comment for the contracts checked.
void soak_chaos(Tally& t, bool heavy) {
  // A chaos reset severs connections mid-write on both sides; that must be
  // an EPIPE errno in this process, never a fatal signal.
  std::signal(SIGPIPE, SIG_IGN);

  serve::ServeOptions o;
  o.workers = 2;
  o.queue_cap = 64;
  serve::ServerCore core(o);
  serve::SocketOptions so;
  so.max_conns = 64;
  so.max_inflight_per_conn = 8;
  so.drain_ms = 5000;
  so.chaos = serve::parse_net_chaos(heavy ? "all=0.12" : "all=0.05");
  so.chaos_seed = 0xc4a05;
  serve::Endpoint ep;
  ep.kind = serve::Endpoint::Kind::Unix;
  ep.path = "/tmp/incflat_soak_chaos_" + std::to_string(::getpid()) + ".sock";
  serve::ServeSocket sock(core, ep, so);
  std::atomic<bool> loop_done{false};
  std::thread loop([&] {
    sock.serve_forever();
    loop_done.store(true);
  });

  const std::vector<std::string> names = all_benchmark_names();
  const int kThreads = heavy ? 8 : 4;
  const int kReqs = heavy ? 60 : 25;
  std::atomic<int> protocol_bad{0};   // framing/parse/shape violations
  std::atomic<int> id_mismatch{0};    // response for the wrong request
  std::atomic<int> bad_retriable{0};  // shed/timeout without retriable:true
  std::atomic<int> answered{0}, shed{0}, expired{0}, resets{0};
  std::atomic<int> unanswered{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(kThreads));
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      std::unique_ptr<serve::ServeClient> cli;
      for (int i = 0; i < kReqs; ++i) {
        const Benchmark b = get_benchmark(names[(w + i) % names.size()]);
        const std::string rid =
            std::to_string(w) + "-" + std::to_string(i);
        Json req = Json::object();
        if (i % 9 == 0) {
          req.set("op", "stats");
        } else {
          req.set("op", "run");
          req.set("benchmark", b.name);
          req.set("dataset", b.datasets.empty() ? std::string("test")
                                                : b.datasets[0].name);
        }
        req.set("id", rid);
        // Every third request carries a deadline; in the heavy soak it is
        // tight enough that some expire behind queued compiles, so the
        // kTimeout path sees real traffic.
        if (i % 3 == 0) req.set("deadline_ms", heavy ? 1.0 : 200.0);

        bool got = false;
        for (int attempt = 0; attempt < 6 && !got; ++attempt) {
          if (!cli) {
            try {
              cli = std::make_unique<serve::ServeClient>(ep, 10000);
            } catch (const std::exception&) {
              ++resets;
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
              continue;
            }
          }
          try {
            const Json resp = cli->call(req);
            got = true;
            ++answered;
            // Exactly-once, in order: the one response a synchronous call
            // yields must correlate to the request that asked for it —
            // a stray duplicate or dropped frame shows up here as a
            // stream-position mismatch.
            const Json* gid = resp.find("id");
            if (!gid || !gid->is_string() || gid->as_string() != rid)
              ++id_mismatch;
            const Json* ok = resp.find("ok");
            if (!ok || !ok->is_bool()) {
              ++protocol_bad;
              continue;
            }
            if (!ok->as_bool()) {
              const Json* cj = resp.find("code");
              const std::string cs =
                  cj && cj->is_string() ? cj->as_string() : "";
              if (cs == "timeout" || cs == "cancelled") {
                ++expired;
                if (!serve::is_retriable(resp)) ++bad_retriable;
              } else if (cs == "overloaded" || cs == "draining") {
                ++shed;
                if (!serve::is_retriable(resp)) ++bad_retriable;
              }
              // Other ok=false (injected run faults, unknown benchmark)
              // is ordinary structured failure — not chaos's business.
            }
          } catch (const serve::ProtocolError& e) {
            std::cerr << "chaos soak: framing violation: " << e.what()
                      << "\n";
            ++protocol_bad;
            cli.reset();
          } catch (const JsonParseError& e) {
            std::cerr << "chaos soak: unparseable response: " << e.what()
                      << "\n";
            ++protocol_bad;
            cli.reset();
          } catch (const std::exception&) {
            // IoError: chaos reset / timeout — reconnect and resend.
            ++resets;
            cli.reset();
          }
        }
        if (!got) ++unanswered;
      }
    });
  }
  for (auto& th : threads) th.join();

  // No wedge: a fresh connection must still get a ping answered after the
  // storm (chaos can still drop it — retry a few times).
  bool ping_ok = false;
  for (int attempt = 0; attempt < 8 && !ping_ok; ++attempt) {
    try {
      serve::ServeClient fresh(ep, 2000);
      Json ping = Json::object();
      ping.set("op", "ping");
      const Json resp = fresh.call(ping);
      const Json* ok = resp.find("ok");
      ping_ok = ok && ok->is_bool() && ok->as_bool();
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  check(t, ping_ok, "chaos soak: daemon wedged — ping unanswered after the "
                    "storm");

  // Graceful drain: every client is gone, so the drain must complete clean
  // well inside its bound.
  sock.request_drain();
  const auto bound =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!loop_done.load() && std::chrono::steady_clock::now() < bound) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!loop_done.load()) {
    check(t, false, "chaos soak: drain wedged — loop did not exit; forcing");
    sock.stop();
  }
  loop.join();
  const serve::DrainStats& ds = sock.drain_stats();
  check(t, ds.requested, "chaos soak: drain request was never observed");
  check(t, ds.clean && ds.forced_conns == 0,
        "chaos soak: drain was not clean (" +
            std::to_string(ds.forced_conns) + " forced)");

  const int total_sent = kThreads * kReqs;
  check(t, protocol_bad.load() == 0,
        "chaos soak: protocol violations under chaos");
  check(t, id_mismatch.load() == 0,
        "chaos soak: a response correlated to the wrong request");
  check(t, bad_retriable.load() == 0,
        "chaos soak: shed/deadline response not marked retriable");
  // Tolerate a tail of requests that exhausted their reconnect budget, but
  // the vast majority must land or the soak is vacuous.
  check(t, answered.load() >= (total_sent * 8) / 10,
        "chaos soak: too few requests answered (" +
            std::to_string(answered.load()) + "/" +
            std::to_string(total_sent) + ")");
  const serve::NetChaos::Counts& cc = sock.chaos_counts();
  check(t, cc.total() > 0, "chaos soak: chaos never fired (vacuous)");
  std::cout << "chaos soak: " << answered.load() << "/" << total_sent
            << " answered (" << shed.load() << " shed, " << expired.load()
            << " deadline-expired, " << resets.load() << " resets, "
            << unanswered.load() << " unanswered), chaos fired "
            << cc.total() << " (" << cc.dribbles << " dribble, "
            << cc.partial_writes << " partial-write, " << cc.stalls
            << " stall, " << cc.resets << " reset, " << cc.accept_fails
            << " accept-fail), drain "
            << (ds.clean ? "clean" : "FORCED") << "\n";
  t.runs += answered.load();
  std::remove(ep.path.c_str());
}

/// `soak_faults chaos`: the heavy network-chaos phase alone, still under
/// the lock-order validator.
int chaos_soak() {
  Tally t;
  soak_chaos(t, /*heavy=*/true);
  const auto violations = sync::lockdep::violations();
  for (const auto& v : violations) std::cerr << "FAIL: " << v.str() << "\n";
  check(t, violations.empty(), "lockdep: lock-order inversion(s) detected");
  std::cout << "chaos soak: " << t.failures << " contract failure(s)\n";
  return t.failures == 0 ? 0 : 1;
}

int soak(const std::string& spec_str, int n_seeds) {
  const FaultSpec spec = parse_fault_spec(spec_str);
  const std::vector<DeviceProfile> devices{device_k40(), device_vega64()};
  Tally t;
  for (const auto& name : all_benchmark_names()) {
    const Benchmark b = get_benchmark(name);
    const Compiled c = compile(b.program, FlattenMode::Incremental);
    Rng in_rng(0xabc);
    const std::vector<Value> inputs = b.gen_inputs(in_rng, b.test_sizes);
    const Values want = execute_source(c, b.test_sizes, inputs);
    // Two starting assignments: threshold 1 turns every guard on at the
    // small interpreter sizes (the run starts most-parallel, so a
    // persistent fault has the whole degradation chain below it); the
    // paper-default 2^15 mostly selects the sequentialised/flattened
    // versions, whose schedules launch many more kernels.
    ThresholdEnv all_on;
    all_on.default_threshold = 1;
    const std::vector<ThresholdEnv> envs{all_on, ThresholdEnv{}};
    for (const auto& dev : devices) {
      for (int s = 0; s < n_seeds; ++s) {
        for (size_t e = 0; e < envs.size(); ++e) {
          // Mix the run identity into the seed: short schedules only ever
          // consume the stream's first draws, so reusing seeds across
          // benchmarks would sample the same handful of fault decisions
          // everywhere.
          const std::string id = b.name + "/" + dev.name + "#" +
                                 std::to_string(e) + "#" + std::to_string(s);
          soak_one(t, b, c, dev, want, inputs, spec, envs[e],
                   journal_hash(id.data(), id.size()));
        }
      }
      soak_tuning(t, b, c, dev, spec, 0xbeef + static_cast<uint64_t>(0));
      for (int s = 0; s < std::max(1, n_seeds / 2); ++s) {
        const std::string id = b.name + "/" + dev.name + "#tiered#" +
                               std::to_string(s);
        soak_tiered(t, b, c, dev, spec, journal_hash(id.data(), id.size()));
      }
    }
  }
  soak_serve(t, spec_str);
  soak_chaos(t, /*heavy=*/false);
  // The tiered streams must actually exercise both tiers, or their checks
  // are vacuous.
  check(t, t.specializations > 0, "tiered soak: no plan ever specialized");
  check(t, t.deopts > 0, "tiered soak: no run ever deoptimized");

  // Lock-hierarchy certification: the entire soak — serve phase included —
  // ran with lockdep on; any acquisition that closed an ordering cycle is a
  // deadlock waiting for the right interleaving and fails the job.
  const auto violations = sync::lockdep::violations();
  for (const auto& v : violations) std::cerr << "FAIL: " << v.str() << "\n";
  check(t, violations.empty(), "lockdep: lock-order inversion(s) detected");
  const auto ls = sync::lockdep::stats();
  check(t, ls.acquisitions > 0, "lockdep: validator saw no acquisitions");
  std::cout << "lockdep: " << ls.classes << " lock classes, " << ls.edges
            << " order edges, " << ls.acquisitions << " acquisitions, "
            << ls.violations << " violation(s) — hierarchy "
            << (ls.violations == 0 ? "acyclic" : "CYCLIC") << "\n";
  std::cout << "soak: " << t.runs << " runs (" << t.faulted << " with faults, "
            << t.degraded << " degraded, " << t.unrecoverable
            << " unrecoverable-but-structured), " << t.tiered_runs
            << " tiered runs (" << t.spec_runs << " specialized, "
            << t.specializations << " specializations, " << t.deopts
            << " deopts), spec " << fault_spec_str(spec) << ", " << t.failures
            << " contract failure(s)\n";
  return t.failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace incflat

int main(int argc, char** argv) {
  const std::string spec = argc > 1 ? argv[1] : "all=0.01";
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 10;
  // The soak always runs under the lock-order validator: its whole job is
  // to interleave the paths production traffic takes.
  incflat::sync::lockdep::set_enabled(true);
  try {
    if (spec == "chaos") return incflat::chaos_soak();
    return incflat::soak(spec, seeds);
  } catch (const std::exception& e) {
    std::cerr << "soak: fatal: " << e.what() << "\n";
    return 1;
  }
}
