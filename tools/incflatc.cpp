// incflatc — command-line driver for the incremental-flattening pipeline.
//
//   incflatc --list
//   incflatc --benchmark matmul --mode incremental --print-ir --tree
//   incflatc --benchmark LocVolCalib --device vega64 --dataset small
//   incflatc --benchmark Heston --device k40 --tune --out heston.tuning
//   incflatc --benchmark Heston --device k40 --dataset D1 \
//            --tuning heston.tuning --json
//
// This is the "downstream user" entry point: compile a benchmark (or all of
// them), inspect the generated multi-versioned code and its branching tree,
// autotune, persist/load `.tuning` files, and price datasets on the two
// simulated device profiles.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

#include "src/analysis/lint.h"
#include "src/autotune/autotune.h"
#include "src/autotune/tuning_file.h"
#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/exec/runtime.h"
#include "src/gpusim/faults.h"
#include "src/ir/print.h"
#include "src/ir/traverse.h"
#include "src/ir/verify.h"
#include "src/plan/plan.h"
#include "src/support/diag.h"
#include "src/support/error.h"
#include "src/support/json.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/support/trace.h"

namespace incflat {
namespace {

struct Options {
  std::string benchmark;
  std::string mode = "incremental";
  std::string device = "k40";
  std::string dataset;
  std::string tuning_in;
  std::string tuning_out;
  bool list = false;
  bool print_ir = false;
  bool print_tree = false;
  bool print_plan = false;
  bool lint = false;
  bool lint_json = false;
  bool simplify = false;
  bool tune = false;
  bool exhaustive = false;
  bool oracle = false;
  bool json = false;
  bool stats = false;
  bool trace = false;
  std::string trace_out = "trace.json";
  bool no_fuse = false;
  bool verify_each = false;
  std::string passes;       // comma-separated pass list ("" = canned)
  std::string print_after;  // pass name, or "all"
  std::string faults;       // --faults SPEC (or INCFLAT_FAULTS)
  uint64_t fault_seed = 0xfa0175eedULL;
  bool fault_seed_set = false;
  std::string run_policy;   // --run-policy SPEC
  std::string tune_journal; // --tune-journal FILE
  bool resume = false;
  bool profile = false;        // --profile[=FILE]
  std::string profile_file;    // persisted execution profile
  bool specialize = false;     // --specialize
  bool deopt_stats = false;    // --deopt-stats
  int repeat = 1;              // --repeat N
  int64_t hot_runs = 8;        // --hot-runs N

  /// Any tiered-runtime surface requested: routes --dataset simulation
  /// through TieredRuntime.  When false the classic single-tier path runs,
  /// byte-identical to previous releases.
  bool tiered() const {
    return profile || specialize || deopt_stats || repeat > 1;
  }
};

/// Route a CLI-level error through the structured diagnostics layer.
void cli_error(const std::string& check, const std::string& message) {
  Diagnostic d;
  d.severity = Severity::Error;
  d.check = check;
  d.context = "cli";
  d.message = message;
  std::cerr << d.str() << "\n";
}

int usage() {
  std::cerr <<
      "usage: incflatc [options]\n"
      "  --list                      list benchmarks and datasets\n"
      "  --benchmark NAME            select a benchmark\n"
      "  --mode M                    moderate | incremental | full\n"
      "  --device D                  k40 | vega64\n"
      "  --dataset NAME              simulate one evaluation dataset\n"
      "  --tune                      autotune on the training datasets\n"
      "  --exhaustive                use the branch-complete tuner\n"
      "  --tuning FILE               load thresholds from a .tuning file\n"
      "  --out FILE                  write tuned thresholds to FILE\n"
      "  --print-ir                  print the flattened program\n"
      "  --tree                      print the threshold branching tree\n"
      "  --plan                      print kernel-plan statistics\n"
      "  --lint                      run the static-analysis lints on the\n"
      "                              compiled program (dead versions, local\n"
      "                              memory overflow, unused bindings); exit\n"
      "                              non-zero on error-severity findings\n"
      "  --lint-json                 like --lint, structured JSON output\n"
      "  --simplify                  run the simplify-guards pass: fold\n"
      "                              guards the size analysis proves\n"
      "                              constant for the device, delete dead\n"
      "                              versions and their thresholds\n"
      "  --no-fuse                   skip pre-flattening fusion (the paper's\n"
      "                              Sec. 5.3 Backprop ablation)\n"
      "  --passes LIST               run this comma-separated pass pipeline\n"
      "                              instead of the canned one ('transform'\n"
      "                              is an alias for the mode's pass)\n"
      "  --verify-each               verify IR invariants after every pass\n"
      "  --print-after PASS          print the program after PASS ran\n"
      "                              ('all' = after every pass)\n"
      "  --oracle                    price with the legacy IR walker instead\n"
      "                              of the kernel plan (debug oracle)\n"
      "  --json                      machine-readable output\n"
      "  --trace[=FILE]              write a Chrome trace-event JSON of the\n"
      "                              pipeline (default trace.json); open in\n"
      "                              chrome://tracing or ui.perfetto.dev\n"
      "  --stats                     print per-phase timings and pipeline\n"
      "                              counters after the run\n"
      "  --faults SPEC               inject simulated faults: off, or a\n"
      "                              list of key=rate (launch-failed,\n"
      "                              launch-timeout, local-alloc,\n"
      "                              device-lost, noise; all=R spreads R\n"
      "                              over the four launch kinds) and\n"
      "                              scripted kind@launch-index entries;\n"
      "                              also read from INCFLAT_FAULTS\n"
      "  --fault-seed N              fault/noise RNG seed (decimal or 0x..;\n"
      "                              also INCFLAT_FAULT_SEED)\n"
      "  --run-policy SPEC           fault handling: retries, backoff,\n"
      "                              backoff-cap, timeout, degradations\n"
      "  --tune-journal FILE         append every tuner evaluation to a\n"
      "                              crash-safe journal\n"
      "  --resume                    resume --tune from --tune-journal to a\n"
      "                              bit-identical report\n"
      "  --profile[=FILE]            record per-guard execution profiles\n"
      "                              across --repeat runs; with =FILE, seed\n"
      "                              from FILE when it exists and save back\n"
      "                              atomically (also seeds --tune: cold\n"
      "                              thresholds are pruned from the search)\n"
      "  --specialize                speculatively specialize the plan once\n"
      "                              every guard is stable for --hot-runs\n"
      "                              runs; shape drift deoptimizes back to\n"
      "                              the guard tree (implies --profile)\n"
      "  --hot-runs N                stability window for --specialize\n"
      "                              (default 8)\n"
      "  --repeat N                  run the dataset N times through the\n"
      "                              tiered runtime\n"
      "  --deopt-stats               print tier dispatch, deoptimization and\n"
      "                              per-guard profile tables after the runs\n"
      "exit codes: 0 success; 1 verification/lint/run failure; 2 usage;\n"
      "            3 input file missing, unreadable or malformed\n";
  return 2;
}

std::optional<Options> parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--list") {
      o.list = true;
    } else if (a == "--benchmark") {
      if (const char* v = next()) o.benchmark = v; else return std::nullopt;
    } else if (a == "--mode") {
      if (const char* v = next()) o.mode = v; else return std::nullopt;
    } else if (a == "--device") {
      if (const char* v = next()) o.device = v; else return std::nullopt;
    } else if (a == "--dataset") {
      if (const char* v = next()) o.dataset = v; else return std::nullopt;
    } else if (a == "--tuning") {
      if (const char* v = next()) o.tuning_in = v; else return std::nullopt;
    } else if (a == "--out") {
      if (const char* v = next()) o.tuning_out = v; else return std::nullopt;
    } else if (a == "--tune") {
      o.tune = true;
    } else if (a == "--exhaustive") {
      o.exhaustive = true;
    } else if (a == "--print-ir") {
      o.print_ir = true;
    } else if (a == "--tree") {
      o.print_tree = true;
    } else if (a == "--plan") {
      o.print_plan = true;
    } else if (a == "--lint") {
      o.lint = true;
    } else if (a == "--lint-json") {
      o.lint = true;
      o.lint_json = true;
    } else if (a == "--simplify") {
      o.simplify = true;
    } else if (a == "--no-fuse") {
      o.no_fuse = true;
    } else if (a == "--verify-each") {
      o.verify_each = true;
    } else if (a == "--passes") {
      if (const char* v = next()) o.passes = v; else return std::nullopt;
    } else if (a == "--print-after") {
      if (const char* v = next()) o.print_after = v; else return std::nullopt;
    } else if (a == "--oracle") {
      o.oracle = true;
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--stats") {
      o.stats = true;
    } else if (a == "--trace") {
      o.trace = true;
    } else if (a.rfind("--trace=", 0) == 0) {
      o.trace = true;
      o.trace_out = a.substr(std::string("--trace=").size());
      if (o.trace_out.empty()) return std::nullopt;
    } else if (a == "--faults") {
      if (const char* v = next()) o.faults = v; else return std::nullopt;
    } else if (a.rfind("--faults=", 0) == 0) {
      o.faults = a.substr(std::string("--faults=").size());
    } else if (a == "--fault-seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      try {
        o.fault_seed = std::stoull(v, nullptr, 0);
      } catch (const std::exception&) {
        cli_error("usage", std::string("bad --fault-seed: ") + v);
        return std::nullopt;
      }
      o.fault_seed_set = true;
    } else if (a == "--run-policy") {
      if (const char* v = next()) o.run_policy = v; else return std::nullopt;
    } else if (a == "--tune-journal") {
      if (const char* v = next()) o.tune_journal = v;
      else return std::nullopt;
    } else if (a == "--resume") {
      o.resume = true;
    } else if (a == "--profile") {
      o.profile = true;
    } else if (a.rfind("--profile=", 0) == 0) {
      o.profile = true;
      o.profile_file = a.substr(std::string("--profile=").size());
      if (o.profile_file.empty()) return std::nullopt;
    } else if (a == "--specialize") {
      o.specialize = true;
    } else if (a == "--deopt-stats") {
      o.deopt_stats = true;
    } else if (a == "--repeat") {
      const char* v = next();
      if (!v) return std::nullopt;
      try {
        o.repeat = std::stoi(v);
      } catch (const std::exception&) {
        o.repeat = 0;
      }
      if (o.repeat < 1) {
        cli_error("usage", std::string("bad --repeat: ") + v);
        return std::nullopt;
      }
    } else if (a == "--hot-runs") {
      const char* v = next();
      if (!v) return std::nullopt;
      try {
        o.hot_runs = std::stoll(v);
      } catch (const std::exception&) {
        o.hot_runs = 0;
      }
      if (o.hot_runs < 1) {
        cli_error("usage", std::string("bad --hot-runs: ") + v);
        return std::nullopt;
      }
    } else {
      cli_error("usage", "unknown option: " + a);
      return std::nullopt;
    }
  }
  // Environment hooks (explicit flags win): INCFLAT_FAULTS carries a fault
  // spec into runs that cannot edit the command line (CI soak, benches).
  if (o.faults.empty()) {
    if (const char* env = std::getenv("INCFLAT_FAULTS")) o.faults = env;
  }
  if (!o.fault_seed_set) {
    if (const char* env = std::getenv("INCFLAT_FAULT_SEED")) {
      try {
        o.fault_seed = std::stoull(env, nullptr, 0);
        o.fault_seed_set = true;
      } catch (const std::exception&) {
        cli_error("usage",
                  std::string("bad INCFLAT_FAULT_SEED: ") + env);
        return std::nullopt;
      }
    }
  }
  return o;
}

/// Enables the trace layer for the duration of run() and flushes the
/// requested sinks (summary table to stderr, Chrome JSON to a file) on the
/// way out, also on early returns.
struct TraceSinks {
  const Options& o;
  explicit TraceSinks(const Options& opts) : o(opts) {
    if (o.trace || o.stats) {
      trace::reset();
      trace::set_enabled(true);
    }
  }
  ~TraceSinks() {
    if (o.stats) trace::print_summary(std::cerr);
    if (o.trace) {
      try {
        trace::write_chrome(o.trace_out);
        std::cerr << "wrote trace to " << o.trace_out << "\n";
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
      }
    }
  }
};

int run(const Options& o) {
  TraceSinks sinks(o);
  if (o.list) {
    Table t({"benchmark", "datasets", "training sets", "reference"});
    for (const auto& name : all_benchmark_names()) {
      Benchmark b = get_benchmark(name);
      t.row({b.name,
             join_map(b.datasets, ",",
                      [](const BenchDataset& d) { return d.name; }),
             join_map(b.tuning, ",",
                      [](const BenchDataset& d) { return d.name; }),
             b.reference_name.empty() ? "-" : b.reference_name});
    }
    t.print(std::cout);
    return 0;
  }

  if (o.benchmark.empty()) return usage();
  Benchmark b = get_benchmark(o.benchmark);

  const FlattenMode mode = mode_from_name(o.mode);

  DeviceProfile dev = o.device == "vega64" ? device_vega64() : device_k40();
  if (o.device != "vega64" && o.device != "k40") return usage();

  CompileOptions copts;
  copts.flatten.fuse =
      !o.no_fuse && (mode != FlattenMode::Moderate || b.fuse_moderate);
  copts.verify_each = o.verify_each;
  copts.simplify = o.simplify;
  copts.limits = analysis::limits_for(dev);
  for (size_t pos = 0; pos < o.passes.size();) {
    size_t comma = o.passes.find(',', pos);
    if (comma == std::string::npos) comma = o.passes.size();
    if (comma > pos) copts.passes.push_back(o.passes.substr(pos, comma - pos));
    pos = comma + 1;
  }
  if (!o.print_after.empty()) {
    copts.after_pass = [&o](const std::string& pass, const Program& prog) {
      if (o.print_after == "all" || o.print_after == pass) {
        std::cout << "-- after " << pass << " --\n" << pretty(prog);
      }
    };
  }
  // The plan is built once per compile and shared by simulation and tuning.
  const Compiled c = compile(b.program, mode, copts);
  const FlattenResult& fr = c.flat;

  if (o.print_ir) {
    std::cout << pretty(fr.program);
  }
  if (o.print_tree) {
    std::cout << "branching tree (" << fr.thresholds.size()
              << " thresholds):\n"
              << fr.thresholds.tree_str();
  }
  if (o.print_plan) {
    if (c.plan) {
      std::cout << plan_stats(*c.plan) << "\n";
    } else {
      std::cout << "no kernel plan (pipeline did not run plan-build)\n";
    }
  }

  if (o.lint) {
    analysis::LintOptions lopts;
    lopts.limits = analysis::limits_for(dev);
    lopts.device_name = dev.name;
    const std::vector<Diagnostic> findings =
        analysis::lint_program(fr.program, fr.thresholds, lopts);
    if (o.lint_json || o.json) {
      Json j = Json::object();
      j.set("benchmark", b.name)
          .set("mode", mode_name(mode))
          .set("device", dev.name)
          .set("errors", count_at_least(findings, Severity::Error))
          .set("warnings", count_at_least(findings, Severity::Warning))
          .set("diagnostics", diagnostics_json(findings));
      std::cout << j.str() << "\n";
    } else if (findings.empty()) {
      std::cout << b.name << ": lint clean on " << dev.name << "\n";
    } else {
      std::cout << diagnostics_str(findings);
      std::cout << b.name << ": " << findings.size() << " finding(s), "
                << count_at_least(findings, Severity::Error)
                << " error(s) on " << dev.name << "\n";
    }
    if (count_at_least(findings, Severity::Error) > 0) return 1;
  }

  ThresholdEnv thresholds;
  if (!o.tuning_in.empty()) thresholds = load_tuning(o.tuning_in);

  // Persisted execution profile (--profile=FILE): seeds the tiered runtime
  // and the tuner's search-space pruning.  A missing file is not an error —
  // it is created on save; a malformed one is (exit 3, with line/column).
  std::optional<profile::ExecProfile> seeded_prof;
  if (!o.profile_file.empty() && std::ifstream(o.profile_file).good()) {
    seeded_prof = profile::load_profile(o.profile_file);
  }

  // Fault injection: spec parse errors are input errors (exit 3, via the
  // IoError handler in main), like an unreadable tuning file.
  const FaultSpec fspec = parse_fault_spec(o.faults);
  const RunPolicy policy = parse_run_policy(o.run_policy);

  if (o.tune) {
    std::vector<TuningDataset> train;
    for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});
    TunerOptions topts;
    topts.use_plan = !o.oracle;
    // Fault-injected tuning: the spec's noise amplitude perturbs every
    // measurement and its launch rate makes individual measurements fail;
    // the tuner answers with median-of-k re-measurement.
    topts.noise = fspec.noise;
    topts.failure_rate = fspec.launch_rate();
    if (o.fault_seed_set) topts.measure_seed = o.fault_seed;
    topts.journal = o.tune_journal;
    topts.resume = o.resume;
    if (seeded_prof && seeded_prof->device == dev.name) {
      topts.profile = &*seeded_prof;
    }
    TuningReport rep =
        o.exhaustive
            ? exhaustive_tune(dev, fr.program, fr.thresholds, train,
                              topts.default_threshold, topts)
            : autotune(dev, fr.program, fr.thresholds, train, topts);
    thresholds = rep.best;
    std::cout << "tuned on " << train.size() << " datasets via "
              << (rep.used_plan ? "kernel plan" : "IR walker") << ": "
              << fmt_us(rep.default_cost_us) << " -> "
              << fmt_us(rep.best_cost_us) << " (" << rep.evaluations
              << " evaluations, " << rep.dedup_hits << " dedup hits)\n";
    if (rep.journal_replayed > 0 || rep.infeasible > 0 || rep.early_stopped) {
      std::cout << "  " << rep.journal_replayed << " replayed from journal, "
                << rep.infeasible << " infeasible"
                << (rep.early_stopped ? ", stopped on budget" : "") << "\n";
    }
    if (rep.profile_seeded) {
      std::cout << "  profile-seeded search: " << rep.cold_pruned
                << " cold threshold(s) pruned\n";
    }
    if (!o.tuning_out.empty()) {
      save_tuning(o.tuning_out, thresholds);
      std::cout << "wrote " << o.tuning_out << "\n";
    }
  }

  if (!o.dataset.empty()) {
    const BenchDataset* ds = nullptr;
    for (const auto& d : b.datasets) {
      if (d.name == o.dataset) ds = &d;
    }
    for (const auto& d : b.tuning) {
      if (d.name == o.dataset) ds = &d;
    }
    if (!ds) {
      std::cerr << "unknown dataset " << o.dataset << "\n";
      return 2;
    }

    if (o.tiered()) {
      // Tiered execution: profile the guard tree across --repeat runs,
      // specialize once stable, deoptimize on drift.  Uses the kernel plan
      // (--oracle has no tiered analogue).
      if (!c.plan) {
        cli_error("input", "tiered execution needs a kernel plan, but the "
                           "pipeline did not run plan-build");
        return 1;
      }
      TierPolicy tp;
      tp.profile = true;
      tp.specialize = o.specialize;
      tp.hot_runs = o.hot_runs;
      tp.run = policy;
      TieredRuntime rt(dev, *c.plan, tp);
      if (seeded_prof && !rt.seed_profile(*seeded_prof)) {
        std::cerr << "note: profile " << o.profile_file
                  << " was recorded on '" << seeded_prof->device << "', not '"
                  << dev.name << "'; starting fresh\n";
      }
      FaultPlan fplan(fspec, o.fault_seed);
      bool all_ok = true;
      Json jruns = Json::array();
      if (!o.json) {
        std::cout << b.name << "/" << ds->name << " on " << dev.name
                  << " (tiered, " << o.repeat << " run(s)):\n";
      }
      for (int r = 0; r < o.repeat; ++r) {
        const TieredOutcome t = rt.run(ds->sizes, thresholds, fplan);
        all_ok = all_ok && t.run.ok;
        if (o.json) {
          Json jr = Json::object();
          jr.set("ok", t.run.ok)
              .set("time_us", t.run.time_us)
              .set("overhead_us", t.run.overhead_us)
              .set("tier", t.specialized ? "specialized" : "tree")
              .set("deopted", t.deopted)
              .set("faults", t.run.faults)
              .set("retries", t.run.retries)
              .set("degradations", t.run.degradations);
          if (t.deopted) jr.set("deopt_reason", t.deopt_reason);
          jruns.push(std::move(jr));
        } else {
          std::cout << "  run " << (r + 1) << " ["
                    << (t.specialized ? "spesh" : "tree")
                    << "]: " << outcome_str(t.run);
          if (t.deopted) std::cout << "  (deopt: " << t.deopt_reason << ")";
          std::cout << "\n";
          if (t.run.error) std::cout << "    " << t.run.error->str() << "\n";
        }
      }
      const TierStats& ts = rt.stats();
      if (o.json) {
        Json j = Json::object();
        j.set("benchmark", b.name)
            .set("mode", mode_name(mode))
            .set("device", dev.name)
            .set("dataset", ds->name)
            .set("runs", std::move(jruns))
            .set("tiers", Json::object()
                              .set("tree_runs", ts.tree_runs)
                              .set("spec_runs", ts.spec_runs)
                              .set("specializations", ts.specializations)
                              .set("deopts", ts.deopts)
                              .set("invalidations", ts.invalidations));
        std::cout << j.str() << "\n";
      } else if (o.deopt_stats) {
        std::cout << rt.deopt_stats() << "\n";
      }
      if (!o.profile_file.empty()) {
        profile::save_profile(o.profile_file, rt.prof());
        if (!o.json) std::cout << "wrote " << o.profile_file << "\n";
      }
      return all_ok ? 0 : 1;
    }

    // simulate() prices via the kernel plan when one exists and falls back
    // to the legacy IR walker otherwise; --oracle forces the walker.
    Compiled sim = c;
    if (o.oracle) sim.plan = nullptr;

    if (fspec.faults_launches()) {
      // Fault-injected execution: retries and graceful degradation over the
      // guard tree; an unrecoverable run reports a structured diagnostic
      // and exits 1 instead of throwing.
      FaultPlan fplan(fspec, o.fault_seed);
      const RunOutcome out =
          run_with_faults(dev, sim, ds->sizes, thresholds, fplan, policy);
      if (o.json) {
        Json j = Json::object();
        j.set("benchmark", b.name)
            .set("mode", mode_name(mode))
            .set("device", dev.name)
            .set("dataset", ds->name)
            .set("faults_spec", fault_spec_str(fspec))
            .set("fault_seed", static_cast<int64_t>(o.fault_seed))
            .set("ok", out.ok)
            .set("time_us", out.time_us)
            .set("overhead_us", out.overhead_us)
            .set("faults", out.faults)
            .set("retries", out.retries)
            .set("degradations", out.degradations);
        Json degraded = Json::array();
        for (const auto& name : out.degraded) degraded.push(Json(name));
        j.set("degraded", std::move(degraded));
        Json events = Json::array();
        for (const auto& e : out.events) {
          Json je = Json::object()
                        .set("launch", e.launch)
                        .set("kernel", e.kernel)
                        .set("fault", fault_kind_name(e.kind))
                        .set("attempt", e.attempt)
                        .set("action", e.action);
          if (!e.threshold.empty()) je.set("threshold", e.threshold);
          events.push(std::move(je));
        }
        j.set("events", std::move(events));
        if (out.error) j.set("error", out.error->to_json());
        std::cout << j.str() << "\n";
      } else {
        std::cout << b.name << "/" << ds->name << " on " << dev.name
                  << " (faults " << fault_spec_str(fspec) << ", seed 0x"
                  << std::hex << o.fault_seed << std::dec
                  << "): " << outcome_str(out) << "\n";
        if (out.error) std::cout << "  " << out.error->str() << "\n";
      }
      return out.ok ? 0 : 1;
    }

    const RunEstimate est = simulate(dev, sim, ds->sizes, thresholds);
    if (o.json) {
      Json j = Json::object();
      j.set("benchmark", b.name)
          .set("mode", mode_name(mode))
          .set("device", dev.name)
          .set("dataset", ds->name)
          .set("time_us", est.time_us)
          .set("kernel_launches", est.kernel_launches)
          .set("global_bytes", est.total.gbytes)
          .set("local_bytes", est.total.lbytes)
          .set("flops", est.total.flops);
      Json guards = Json::array();
      for (const auto& [name, taken] : est.guards) {
        guards.push(Json::object().set("threshold", name).set("taken", taken));
      }
      j.set("guards", std::move(guards));
      Json kernels = Json::array();
      for (const auto& k : est.kernels) {
        kernels.push(Json::object()
                         .set("kind", k.what)
                         .set("time_us", k.time_us)
                         .set("threads", k.threads)
                         .set("fallback", k.used_local_fallback));
      }
      j.set("kernels", std::move(kernels));
      std::cout << j.str() << "\n";
    } else {
      std::cout << b.name << "/" << ds->name << " on " << dev.name << " ("
                << mode_name(mode) << "): " << estimate_str(est) << "\n";
      for (const auto& [name, taken] : est.guards) {
        std::cout << "  guard " << name << " -> " << (taken ? "T" : "F")
                  << "\n";
      }
      for (const auto& k : est.kernels) {
        std::cout << "  kernel " << k.what << "  " << fmt_us(k.time_us)
                  << "  threads=" << k.threads
                  << (k.used_local_fallback ? "  [local-mem fallback]" : "")
                  << "\n";
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace incflat

int main(int argc, char** argv) {
  auto opts = incflat::parse(argc, argv);
  if (!opts) return incflat::usage();
  try {
    return incflat::run(*opts);
  } catch (const incflat::VerifyError& e) {
    // Verification failures carry every finding, not just the first; print
    // the full structured list so one run surfaces all violations.
    if (opts->json) {
      std::cerr << incflat::diagnostics_json(e.diagnostics()).str() << "\n";
    } else {
      std::cerr << "error: verification failed ("
                << e.diagnostics().size() << " finding(s)):\n"
                << incflat::diagnostics_str(e.diagnostics());
    }
    return 1;
  } catch (const incflat::IoError& e) {
    // Missing, unreadable or malformed input (tuning files, journals,
    // fault/policy specs): structured diagnostic, distinct exit code.
    incflat::Diagnostic d;
    d.check = "input";
    d.context = "cli";
    d.message = e.what();
    if (opts->json) {
      std::cerr << incflat::diagnostics_json({d}).str() << "\n";
    } else {
      std::cerr << d.str() << "\n";
    }
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
