// serve_loadgen — concurrent load generator for incflatd.
//
// Drives N client connections against a running daemon with a configurable
// request mix and zipfian key skew over (benchmark, dataset) pairs — the
// shape of real serving traffic, where a handful of hot models take most of
// the requests and the tail keeps the cache honest.  Reports throughput,
// per-op latency percentiles and the error/protocol-failure count; exits
// nonzero ONLY for true protocol violations (bad frame, unparseable JSON,
// a response without a boolean "ok") so CI can assert "zero protocol
// errors" directly on the exit code even while the daemon is shedding
// load, enforcing deadlines, draining, or running under network chaos —
// those outcomes are counted as distinct classes, not failures:
//
//   * retriable ok=false responses split into `shed` (overloaded /
//     draining) and `deadline_expired` (timeout / cancelled);
//   * transport drops (reset, timeout, refused connect) count as `resets`
//     and the client reconnects with a fresh connection and resends,
//     bounded per request.
//
//   serve_loadgen --connect unix:/tmp/incflatd.sock --clients 16
//       --requests 200 --zipf 1.1 --mix run=0.9,compile=0.1
//       --deadline-ms 2000 --timeout-ms 10000
//
// Exit codes: 0 no protocol violations, 1 protocol violations seen,
// 2 usage error, 3 could not connect.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/benchsuite/benchmark.h"
#include "src/serve/net.h"
#include "src/serve/protocol.h"
#include "src/support/error.h"
#include "src/support/json.h"
#include "src/support/rng.h"

using namespace incflat;

namespace {

struct Options {
  std::string connect = "unix:/tmp/incflatd.sock";
  int clients = 16;
  int requests = 100;  // per client
  double zipf = 1.1;   // key-skew exponent; 0 = uniform
  double run_frac = 0.9, compile_frac = 0.1, stats_frac = 0.0;
  uint64_t seed = 0x10adULL;
  std::string device = "k40";
  std::string json_out;  // optional machine-readable report
  double deadline_ms = 0;  // per-request end-to-end server deadline
  double timeout_ms = 0;   // client-side connect/response bound
};

int usage(FILE* to) {
  std::fprintf(to,
               "usage: serve_loadgen [options]\n"
               "  --connect SPEC    unix:PATH or tcp:[HOST:]PORT\n"
               "  --clients N       concurrent connections (default 16)\n"
               "  --requests N      requests per client (default 100)\n"
               "  --zipf S          zipfian skew exponent over keys "
               "(default 1.1; 0 = uniform)\n"
               "  --mix SPEC        op mix, e.g. run=0.9,compile=0.1\n"
               "                    (ops: run, compile, stats)\n"
               "  --device D        device profile for requests "
               "(default k40)\n"
               "  --seed N          workload seed\n"
               "  --deadline-ms MS  attach an end-to-end deadline to every "
               "request\n"
               "  --timeout-ms MS   client-side connect/response bound "
               "(reconnect on breach)\n"
               "  --json FILE       write the report as JSON\n");
  return to == stdout ? 0 : 2;
}

struct Key {
  std::string benchmark;
  std::string dataset;
};

/// Latency sample sink, one per op kind.
struct Lat {
  std::vector<double> us;
  void add(double v) { us.push_back(v); }
  double pct(double p) {
    if (us.empty()) return 0;
    std::sort(us.begin(), us.end());
    const size_t ix = std::min(
        us.size() - 1, static_cast<size_t>(p / 100.0 *
                                           static_cast<double>(us.size())));
    return us[ix];
  }
  double mean() const {
    if (us.empty()) return 0;
    double sum = 0;
    for (const double v : us) sum += v;
    return sum / static_cast<double>(us.size());
  }
  double max() const {
    double m = 0;
    for (const double v : us) m = std::max(m, v);
    return m;
  }
};

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve_loadgen: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(stdout);
    if (arg == "--connect") {
      opt.connect = next();
    } else if (arg == "--clients") {
      opt.clients = std::atoi(next());
    } else if (arg == "--requests") {
      opt.requests = std::atoi(next());
    } else if (arg == "--zipf") {
      opt.zipf = std::atof(next());
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--device") {
      opt.device = next();
    } else if (arg == "--deadline-ms") {
      opt.deadline_ms = std::atof(next());
    } else if (arg == "--timeout-ms") {
      opt.timeout_ms = std::atof(next());
    } else if (arg == "--json") {
      opt.json_out = next();
    } else if (arg == "--mix") {
      opt.run_frac = opt.compile_frac = opt.stats_frac = 0;
      std::string spec = next();
      size_t pos = 0;
      while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) comma = spec.size();
        const std::string part = spec.substr(pos, comma - pos);
        const size_t eq = part.find('=');
        if (eq == std::string::npos) {
          std::fprintf(stderr, "serve_loadgen: bad --mix part '%s'\n",
                       part.c_str());
          return 2;
        }
        const std::string op = part.substr(0, eq);
        const double f = std::atof(part.c_str() + eq + 1);
        if (op == "run") opt.run_frac = f;
        else if (op == "compile") opt.compile_frac = f;
        else if (op == "stats") opt.stats_frac = f;
        else {
          std::fprintf(stderr, "serve_loadgen: unknown mix op '%s'\n",
                       op.c_str());
          return 2;
        }
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr, "serve_loadgen: unknown option '%s'\n",
                   arg.c_str());
      return usage(stderr);
    }
  }

  // The key population: every (benchmark, evaluation dataset) pair, in a
  // fixed order so the zipf ranks are stable across runs.
  std::vector<Key> keys;
  for (const std::string& name : all_benchmark_names()) {
    const Benchmark b = get_benchmark(name);
    for (const auto& d : b.datasets) keys.push_back({name, d.name});
  }
  if (keys.empty()) {
    std::fprintf(stderr, "serve_loadgen: no benchmark datasets\n");
    return 1;
  }

  // Zipfian CDF over key ranks: P(rank k) ~ 1 / k^s.
  std::vector<double> cdf(keys.size());
  double acc = 0;
  for (size_t k = 0; k < keys.size(); ++k) {
    acc += opt.zipf > 0
               ? 1.0 / std::pow(static_cast<double>(k + 1), opt.zipf)
               : 1.0;
    cdf[k] = acc;
  }
  for (double& c : cdf) c /= acc;

  const serve::Endpoint ep = [&] {
    try {
      return serve::parse_endpoint(opt.connect);
    } catch (const IoError& e) {
      std::fprintf(stderr, "serve_loadgen: %s\n", e.what());
      std::exit(2);
    }
  }();

  // A daemon resetting a connection mid-write (chaos, drain deadline) must
  // surface as EPIPE on our side, not kill the whole load generator.
  std::signal(SIGPIPE, SIG_IGN);

  std::atomic<int64_t> protocol_errors{0};    // framing/parse/shape violations
  std::atomic<int64_t> request_errors{0};     // non-retriable ok=false
  std::atomic<int64_t> shed{0};               // retriable: overloaded/draining
  std::atomic<int64_t> deadline_expired{0};   // retriable: timeout/cancelled
  std::atomic<int64_t> resets{0};             // transport drops + reconnects
  std::atomic<int64_t> unanswered{0};         // dropped after reconnect budget
  std::mutex agg_mu;
  std::map<std::string, Lat> lat;  // per-op latency, merged under agg_mu
  int64_t total = 0;

  const double t0 = now_us();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(opt.clients));
  for (int c = 0; c < opt.clients; ++c) {
    workers.emplace_back([&, c] {
      std::map<std::string, Lat> local;
      Rng rng(opt.seed + static_cast<uint64_t>(c) * 0x9e3779b97f4a7c15ULL);
      std::unique_ptr<serve::ServeClient> client;
      for (int r = 0; r < opt.requests; ++r) {
        // Pick the op, then the key by zipf rank.
        const double u = rng.uniform();
        std::string op = "run";
        if (u >= opt.run_frac && u < opt.run_frac + opt.compile_frac)
          op = "compile";
        else if (u >= opt.run_frac + opt.compile_frac &&
                 u < opt.run_frac + opt.compile_frac + opt.stats_frac)
          op = "stats";
        const double kv = rng.uniform();
        const size_t rank = static_cast<size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), kv) - cdf.begin());
        const Key& key = keys[std::min(rank, keys.size() - 1)];

        Json req = Json::object();
        req.set("op", op);
        if (op != "stats") {
          req.set("benchmark", key.benchmark);
          req.set("device", opt.device);
        }
        if (op == "run") req.set("dataset", key.dataset);
        if (opt.deadline_ms > 0) req.set("deadline_ms", opt.deadline_ms);

        // Transport drops (chaos reset, response timeout, refused connect
        // while the daemon restarts a listen queue) reconnect and resend —
        // bounded so a dead daemon cannot hang the run.  A one-response
        // stream makes the resend safe: nothing of the old stream is
        // reusable, and the daemon treats it as a fresh request.
        Json resp;
        bool answered = false;
        for (int attempt = 0; attempt < 5 && !answered; ++attempt) {
          if (!client) {
            try {
              client = std::make_unique<serve::ServeClient>(ep,
                                                            opt.timeout_ms);
            } catch (const std::exception&) {
              ++resets;
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
              continue;
            }
          }
          const double s = now_us();
          try {
            resp = client->call(req);
            local[op].add(now_us() - s);
            answered = true;
          } catch (const serve::ProtocolError& e) {
            // Corrupt framing is exactly what chaos promises never to
            // produce: a true protocol violation.
            std::fprintf(stderr, "serve_loadgen: client %d: framing: %s\n",
                         c, e.what());
            ++protocol_errors;
            client.reset();
          } catch (const JsonParseError& e) {
            std::fprintf(stderr, "serve_loadgen: client %d: bad json: %s\n",
                         c, e.what());
            ++protocol_errors;
            client.reset();
          } catch (const std::exception&) {
            // IoError: reset / timeout / EOF — expected under chaos.
            ++resets;
            client.reset();
          }
        }
        if (!answered) {
          ++unanswered;
          continue;
        }
        const Json* ok = resp.find("ok");
        if (!ok || !ok->is_bool()) {
          ++protocol_errors;
        } else if (!ok->as_bool()) {
          if (serve::is_retriable(resp)) {
            const Json* code = resp.find("code");
            const std::string cs =
                code && code->is_string() ? code->as_string() : "";
            if (cs == "timeout" || cs == "cancelled")
              ++deadline_expired;
            else
              ++shed;  // overloaded / draining
          } else {
            ++request_errors;
          }
        }
      }
      std::lock_guard<std::mutex> lk(agg_mu);
      for (auto& [op, l] : local) {
        auto& dst = lat[op];
        dst.us.insert(dst.us.end(), l.us.begin(), l.us.end());
      }
    });
  }
  for (auto& t : workers) t.join();
  const double wall_us = now_us() - t0;
  for (auto& [op, l] : lat) total += static_cast<int64_t>(l.us.size());

  const double throughput =
      wall_us > 0 ? static_cast<double>(total) / (wall_us / 1e6) : 0;
  std::printf("serve_loadgen: %lld requests over %d clients in %.1f ms "
              "(%.0f req/s)\n",
              static_cast<long long>(total), opt.clients, wall_us / 1000.0,
              throughput);
  Json ops = Json::object();
  for (auto& [op, l] : lat) {
    std::printf("  %-8s n=%-6zu p50=%8.1fus  p95=%8.1fus  p99=%8.1fus  "
                "mean=%8.1fus  max=%8.1fus\n",
                op.c_str(), l.us.size(), l.pct(50), l.pct(95), l.pct(99),
                l.mean(), l.max());
    Json o = Json::object();
    o.set("n", l.us.size());
    o.set("p50_us", l.pct(50));
    o.set("p95_us", l.pct(95));
    o.set("p99_us", l.pct(99));
    o.set("mean_us", l.mean());
    o.set("max_us", l.max());
    ops.set(op, o);
  }
  std::printf("  errors: protocol=%lld request=%lld\n",
              static_cast<long long>(protocol_errors.load()),
              static_cast<long long>(request_errors.load()));
  std::printf("  overload: shed=%lld deadline_expired=%lld resets=%lld "
              "unanswered=%lld\n",
              static_cast<long long>(shed.load()),
              static_cast<long long>(deadline_expired.load()),
              static_cast<long long>(resets.load()),
              static_cast<long long>(unanswered.load()));

  if (!opt.json_out.empty()) {
    Json doc = Json::object();
    doc.set("clients", opt.clients);
    doc.set("requests_per_client", opt.requests);
    doc.set("zipf", opt.zipf);
    doc.set("total", total);
    doc.set("wall_ms", wall_us / 1000.0);
    doc.set("throughput_rps", throughput);
    doc.set("protocol_errors", protocol_errors.load());
    doc.set("request_errors", request_errors.load());
    doc.set("shed", shed.load());
    doc.set("deadline_expired", deadline_expired.load());
    doc.set("resets", resets.load());
    doc.set("unanswered", unanswered.load());
    doc.set("deadline_ms", opt.deadline_ms);
    doc.set("timeout_ms", opt.timeout_ms);
    doc.set("ops", ops);
    FILE* f = std::fopen(opt.json_out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "serve_loadgen: cannot write %s\n",
                   opt.json_out.c_str());
      return 1;
    }
    const std::string text = doc.str(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return protocol_errors.load() > 0 ? 1 : 0;
}
