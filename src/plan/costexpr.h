// Symbolic cost expressions: the arithmetic of the gpusim cost walker,
// captured once at plan-build time as a flat arena of DAG nodes and
// re-evaluated per dataset in a single forward pass.
//
// The cost of a kernel (flops, global/local bytes, thread count, loop trip
// multipliers, scratchpad need) depends on the dataset only through size
// variables and on the device only through a handful of profile fields
// (tile size, workgroup limit, scratchpad capacity).  A CostArena records
// every arithmetic step the legacy IR walker would perform — same
// operations, same operand order, same integer truncations — so evaluating
// the arena against a SizeEnv reproduces the walker's results bit for bit
// without touching the IR again.
//
// Node ids are indices into the arena vector; nodes only reference earlier
// nodes, so one forward sweep computes every value.  Unbound size variables
// poison their dependents (valid bit) instead of throwing, because a node
// may sit on a code-version path the current traversal never takes; the
// error surfaces only if a traversal actually reads a poisoned value —
// exactly when the legacy walker would have thrown.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/gpusim/device.h"
#include "src/ir/type.h"

namespace incflat {

enum class COp : uint8_t {
  ConstF,       // payload f
  ConstI,       // payload i
  SizeVar,      // payload i = index into the arena's size-variable table
  DevTileF,     // static_cast<double>(dev.tile_size)
  DevMaxGroupI, // int64_t(dev.max_group_size)
  DevLocalMemF, // static_cast<double>(dev.local_mem_bytes)
  AddF, SubF, MulF, DivF, MinF, MaxF,
  AddI, SubI, MulI, DivI, MinI, MaxI,  // DivI: y == 0 -> 0 (walker semantics)
  IntToF,       // static_cast<double>(int64_t)
  FToInt,       // static_cast<int64_t>(double)
  GeF, GtF,     // double comparison -> 0/1
  SelF, SelI,   // a ? b : c
  CeilF, Log2F,
  Invalid,      // build-time "this would throw": poisons dependents
};

/// One arena node; a/b/c index earlier nodes.
struct CNode {
  COp op = COp::ConstF;
  int32_t a = -1, b = -1, c = -1;
  double f = 0;
  int64_t i = 0;
};

/// Append-only expression arena.  Binary ops on two constants fold at build
/// time (computing the same operation earlier is bitwise-identical);
/// x + 0.0 and x * 1.0 fold because cost quantities are never -0.0 / NaN.
class CostArena {
 public:
  int constf(double v);
  int consti(int64_t v);
  int size_var(const std::string& name);
  int dev_tile_f();
  int dev_max_group_i();
  int dev_local_mem_f();
  int invalid();

  int addf(int a, int b);
  int subf(int a, int b);
  int mulf(int a, int b);
  int divf(int a, int b);
  int minf(int a, int b);
  int maxf(int a, int b);

  int addi(int a, int b);
  int subi(int a, int b);
  int muli(int a, int b);
  int divi(int a, int b);
  int mini(int a, int b);
  int maxi(int a, int b);

  int i2f(int a);
  int f2i(int a);
  int gef(int a, int b);
  int gtf(int a, int b);
  int self(int cond, int a, int b);
  int seli(int cond, int a, int b);
  int ceilf_(int a);
  int log2f_(int a);

  const std::vector<CNode>& nodes() const { return nodes_; }
  const std::vector<std::string>& size_vars() const { return var_names_; }
  size_t size() const { return nodes_.size(); }

 private:
  int push(CNode n);
  int fold2(COp op, int a, int b);
  bool is_constf(int id, double* v) const;
  bool is_consti(int id, int64_t* v) const;

  std::vector<CNode> nodes_;
  std::vector<std::string> var_names_;
  std::map<std::string, int> var_index_;
  std::map<double, int> constf_cache_;
  std::map<int64_t, int> consti_cache_;
};

/// All node values for one (device, dataset) pair, computed in one forward
/// sweep.  Reading a poisoned node throws EvalError (the legacy walker's
/// behaviour when its lazily-taken path hits an unbound size variable).
class CostValues {
 public:
  CostValues(const CostArena& arena, const DeviceProfile& dev,
             const SizeEnv& sizes);

  double get_f(int id) const;
  int64_t get_i(int id) const;
  bool is_valid(int id) const { return valid_[static_cast<size_t>(id)]; }

 private:
  struct Val {
    double f = 0;
    int64_t i = 0;
  };
  std::vector<Val> vals_;
  std::vector<uint8_t> valid_;
};

}  // namespace incflat
