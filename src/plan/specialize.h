// Speculative plan specialization (the upper execution tier).
//
// A KernelPlan descends its threshold guard tree on every estimate.  When a
// workload's shapes are stable, every guard decides the same way run after
// run, and the descent — guard-operand lookups, branch dispatch, per-entry
// guard-path copies in the launch schedule — is pure overhead.  Following
// the spesh blueprint (profile, speculate, guard, deoptimize), this layer
// folds guards whose profiled decision streak reached the hot-run window
// into constants, producing a SpecializedPlan: a straight-line op list that
// replays the exact tree walk the fold selects, protected by a minimal set
// of *shape guards* — interval checks on the guard operands that certify
// the folds still hold for the dataset at hand.
//
// Two soundness rules keep specialized execution bit-identical to the tree:
//
//  * The op list preserves the tree walk's accumulation structure
//    (BlockBegin/End and ScaleBegin/End frames), so floating-point sums
//    associate exactly as in plan_estimate — spec_estimate is bitwise equal
//    to plan_estimate whenever the shape guards pass.
//
//  * Shape guards are derived per fold and merged by operand expression via
//    interval meet.  Folds that analysis::decide_guard can prove from the
//    speculated decisions of enclosing folds alone (dominance over the same
//    threshold parameter, under *empty* size bounds so the proof holds for
//    every dataset) need no shape guard at all — the guard is elided.
//
// Guards that never stabilized, data-dependent (worse-of-both) branches and
// legacy-fallback plans refuse specialization; the tree tier remains the
// sole authority for them.  Threshold values are frozen into the
// SpecializedPlan: dispatching under a different assignment (or device) is
// a deoptimization, handled by the tiered runtime (src/exec/runtime.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/range.h"
#include "src/plan/plan.h"
#include "src/profile/profile.h"

namespace incflat {
namespace spesh {

/// One dispatch-time check: `expr`, evaluated on the dataset's sizes, must
/// lie in `iv`.  `why` names the originating plan guard and fold direction
/// (for --deopt-stats and tests); merged checks concatenate their reasons.
struct ShapeGuard {
  SizeExpr expr;
  analysis::IntInterval iv;
  std::string why;
};

/// One step of the straight-line schedule.  Kernel/Guard ops mirror the
/// tree walk's report entries; Block and Scale frame ops replicate its
/// accumulator nesting (see the file comment on bit-identity).
struct SpecOp {
  enum class Kind {
    Kernel,      // index = KernelPlan::kernels entry
    Guard,       // index = KernelPlan::guards entry; taken = folded branch
    BlockBegin,  // push a fresh time accumulator
    BlockEnd,    // pop it into the enclosing frame
    ScaleBegin,  // index = CostArena node id of the trip count
    ScaleEnd,    // scale the frame by the trip count, apply " xN" suffixes
  };
  Kind kind = Kind::Kernel;
  int index = -1;
  bool taken = false;
};

/// A specialized (tier-2) plan: valid only for the device and frozen
/// threshold assignment it was built under, and only for datasets whose
/// shape guards all pass.
struct SpecializedPlan {
  std::string program;
  std::string device;       // DeviceProfile::name it was specialized for
  ThresholdEnv thresholds;  // frozen assignment
  std::vector<SpecOp> ops;
  std::vector<ShapeGuard> shape_guards;
  /// Plan-guard indices folded speculatively (shape-guard protected) and
  /// folded by dominance (elided, no runtime check) — stats surface them.
  std::vector<int> folded_guards;
  std::vector<int> elided_guards;

  std::string str() const;
};

struct SpecializeOptions {
  /// Consecutive identical decisions a guard needs before it may be folded
  /// (the spesh "hot" window).
  int64_t hot_runs = 8;
};

/// Outcome of a specialization attempt: either a plan, or the reason the
/// profile/plan refused one (unstable guard, data-dependent branch, ...).
struct SpecializeResult {
  bool ok = false;
  std::string reason;
  SpecializedPlan plan;
};

/// Try to specialize `plan` against the decision streaks in `prof` under
/// the frozen `thresholds` on `dev`.  Pure: consults only streaks, never
/// mutates the profile.  The profile must describe the plan (check_profile).
SpecializeResult specialize_plan(const KernelPlan& plan,
                                 const profile::ExecProfile& prof,
                                 const ThresholdEnv& thresholds,
                                 const DeviceProfile& dev,
                                 const SpecializeOptions& opts = {});

/// Dispatch check: every shape guard holds for `sizes`.  Returns false (and
/// points `*failed` at the offending guard, when non-null) on the first
/// violation or on an unevaluable operand — both deoptimize.
bool shape_guards_pass(const SpecializedPlan& sp, const SizeEnv& sizes,
                       const ShapeGuard** failed = nullptr);

/// Straight-line replay of the specialized schedule.  Preconditions: the
/// cache was built for `plan` and the same dataset/device the dispatch
/// check passed, and `sp` came from specialize_plan on `plan`.  Bit-identical
/// to plan_estimate / plan_cost under the frozen thresholds.
RunEstimate spec_estimate(const KernelPlan& plan, const SpecializedPlan& sp,
                          const PlanDatasetCache& cache);
double spec_cost(const KernelPlan& plan, const SpecializedPlan& sp,
                 const PlanDatasetCache& cache);

/// The specialized launch schedule: same entries, times and launch counts
/// as plan_launch_schedule, but with empty guard_path vectors — the guard
/// decisions are frozen into the plan, so nothing is copied per entry (the
/// cost plan_launch_schedule pays on every run; bench/bench_spesh.cpp).
std::vector<LaunchInfo> spec_launch_schedule(const KernelPlan& plan,
                                             const SpecializedPlan& sp,
                                             const PlanDatasetCache& cache);

/// Per-dataset dispatch state, built once when a specialized plan first
/// meets a dataset cache.  Verdict, estimate and schedule are all pure
/// functions of (plan, sp, cache), so a shape-stable stream pays them once:
/// every later covered run costs a verdict read plus a reference to the
/// precompiled schedule — the steady state bench/bench_spesh.cpp measures.
/// `sp` must outlive this object (failed() points into it).
class SpecDispatch {
 public:
  SpecDispatch(const KernelPlan& plan, const SpecializedPlan& sp,
               const PlanDatasetCache& cache);

  /// The shape-guard verdict for the cache's dataset.
  bool pass() const { return pass_; }
  /// The violated guard when !pass(); nullptr otherwise.
  const ShapeGuard* failed() const { return failed_; }
  /// Precompiled replay results; valid only when pass().
  const RunEstimate& estimate() const;
  const std::vector<LaunchInfo>& schedule() const;

 private:
  bool pass_ = false;
  const ShapeGuard* failed_ = nullptr;
  RunEstimate estimate_;
  std::vector<LaunchInfo> schedule_;
};

}  // namespace spesh
}  // namespace incflat
