// Compile-once kernel plans (the plan layer).
//
// A KernelPlan is the branching tree the paper's multi-versioned binary
// embeds (Fig. 5), made explicit: internal nodes are threshold comparisons
// `Par(e) >= t_i` (with `e` kept symbolic and evaluated against a SizeEnv),
// and the code between/below guards is a flat table of KernelDesc entries —
// flops, global/local bytes, thread counts, launch counts and scratchpad
// need, everything the gpusim cost walker used to recompute by traversing
// the target IR on every estimate.
//
// PlanBuilder lowers a flattened program ONCE by partially evaluating the
// cost walk: all size-dependent arithmetic is recorded into a CostArena,
// threshold guards fork the tree, and data-dependent host branches become
// worse-of-both nodes.  Per dataset, a PlanDatasetCache evaluates the whole
// arena in one sweep and prices every kernel; after that, estimating a run
// under any threshold assignment is a pure tree walk in O(kernels-on-path)
// — the property the autotuner exploits (its per-assignment cost drops from
// an IR walk to a decision-tree descent, Sec. 4.2).
//
// The legacy walker (gpusim::estimate_run) stays available as a debug
// oracle; plan evaluation is bit-identical to it by construction
// (property-tested in tests/test_plan.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/gpusim/cost.h"
#include "src/plan/costexpr.h"

namespace incflat {

/// One priced code-version kernel: symbolic work/threads (CostArena node
/// ids) plus static launch count and label.  `fallback` is the node id of
/// the scratchpad-overflow condition (-1 when the kernel never spills);
/// the work fields already include the fallback penalty via select nodes.
struct KernelDesc {
  std::string what;   // segmap^1 / segred^1{intra} / ... (pre loop-suffix)
  int flops = -1;     // F nodes
  int gbytes = -1;
  int lbytes = -1;
  int threads = -1;   // I node
  int launches = 1;   // static per-execution launch count
  int fallback = -1;  // bool node: local-memory fallback taken
};

/// Internal decision node: `Par(par) >= t` with the workgroup-feasibility
/// bound `fit` (empty alts = unconstrained), exactly the legacy walker's
/// guard_taken.  `bit` is this node's index in path signatures.
struct GuardInfo {
  std::string threshold;
  SizeExpr par;
  SizeExpr fit;
};

struct PlanNode {
  enum class Kind { Block, Guard, DataCond, Scale };
  Kind kind = Kind::Block;
  // Block: ordered steps; each step is a kernel (is_kernel) or a child node.
  struct Step {
    bool is_kernel = false;
    int index = -1;
  };
  std::vector<Step> steps;  // Block only
  int guard = -1;           // Guard: index into KernelPlan::guards
  int then_node = -1;       // Guard / DataCond
  int else_node = -1;       // Guard / DataCond
  int count = -1;           // Scale: I node (loop trip count)
  int child = -1;           // Scale
};

/// Path signature: for every guard node, whether it was visited and which
/// branch it took — two bits per guard, packed.  Replaces the autotuner's
/// string-concatenated signature keys: equal signatures select the same
/// code versions, hence cost the same (paper Sec. 4.2 dedup).
struct PathSig {
  std::vector<uint64_t> bits;

  explicit PathSig(size_t guards = 0) : bits((2 * guards + 63) / 64, 0) {}
  void set(int guard_ix, bool taken) {
    const size_t b = 2 * static_cast<size_t>(guard_ix);
    bits[b / 64] |= uint64_t{1} << (b % 64);
    if (taken) bits[(b + 1) / 64] |= uint64_t{1} << ((b + 1) % 64);
  }
  void merge(const PathSig& o) {
    for (size_t i = 0; i < bits.size(); ++i) bits[i] |= o.bits[i];
  }
  bool operator==(const PathSig& o) const { return bits == o.bits; }
};

/// The compile-once plan for one target program.
struct KernelPlan {
  CostArena arena;
  std::vector<KernelDesc> kernels;
  std::vector<GuardInfo> guards;
  std::vector<PlanNode> nodes;
  int root = -1;

  /// Distinct threshold parameter names, in first-guard order.
  std::vector<std::string> thresholds;

  /// Set when the program uses a construct the builder cannot lower exactly
  /// (e.g. threshold guards nested inside a data-dependent branch of an
  /// intra-group body); estimates then route through the legacy IR walker.
  bool legacy_fallback = false;
  std::string fallback_reason;

  /// The target program (cheap to retain: expression trees are shared), for
  /// the legacy fallback and the debug oracle.
  Program program;
};

/// Lower a flattened target program into a plan.  Never throws on exotic
/// programs: constructs outside the supported fragment set legacy_fallback.
KernelPlan build_kernel_plan(const Program& p);

/// All per-dataset state: one forward sweep over the arena plus lazily
/// priced kernels and guard operand values.  Reusable (and read-only) across
/// any number of threshold assignments, which is what makes tuner
/// evaluations O(kernels-on-path).
class PlanDatasetCache {
 public:
  PlanDatasetCache(const KernelPlan& plan, const DeviceProfile& dev,
                   const SizeEnv& sizes);

  const DeviceProfile& dev() const { return dev_; }
  const SizeEnv& sizes() const { return sizes_; }

  struct PricedKernel {
    double time_us = 0;
    int64_t threads = 0;
    Work work;
    bool fallback = false;
    bool valid = false;
  };
  /// Priced kernel `k`; throws EvalError if its sizes are unbound.
  const PricedKernel& kernel(int k) const;

  /// Guard branch under a threshold value, mirroring the legacy
  /// guard_taken: fit failure wins, else par >= threshold.
  bool guard_taken(int guard_ix, int64_t threshold_value) const;

  /// Raw observed guard operands for this dataset (the profile layer
  /// records them): the evaluated Par value (0 when it could not be
  /// evaluated — Par values are always >= 1 otherwise) and whether the
  /// workgroup-fit bound failed.  `error` mirrors guard_taken's
  /// unbound-variable condition.
  struct GuardObs {
    int64_t par = 0;
    bool fit_fail = false;
    bool error = false;
  };
  GuardObs guard_obs(int guard_ix) const;

  /// The evaluated arena (loop trip counts live here alongside kernel work).
  const CostValues& values() const { return values_; }

 private:
  DeviceProfile dev_;
  SizeEnv sizes_;
  CostValues values_;
  std::vector<PricedKernel> kernels_;
  struct GuardVals {
    int64_t par = 0;
    bool fit_fail = false;
    bool error = false;
  };
  std::vector<GuardVals> guards_;
};

/// Full estimate via the plan: bit-identical to gpusim::estimate_run on the
/// same program.  The cache must have been built for the same plan.
RunEstimate plan_estimate(const KernelPlan& plan, const PlanDatasetCache& cache,
                          const ThresholdEnv& thresholds);

/// Tuner fast path: the run's total simulated time only, optionally
/// recording the guard-path signature.  Same arithmetic as plan_estimate,
/// minus the kernel/guard report vectors.
double plan_cost(const KernelPlan& plan, const PlanDatasetCache& cache,
                 const ThresholdEnv& thresholds, PathSig* sig = nullptr);

/// Guard-path signature alone: which guards an assignment reaches and which
/// branches they take, without pricing a single kernel.  This is the
/// autotuner's dedup key — equal signatures select identical code versions
/// and therefore cost the same (Sec. 4.2), so the cost evaluation can be
/// skipped entirely.  Not available for legacy_fallback plans.
PathSig plan_signature(const KernelPlan& plan, const PlanDatasetCache& cache,
                       const ThresholdEnv& thresholds);

/// One entry of a run's kernel-launch schedule: a kernel step the estimate
/// prices under a concrete threshold assignment, annotated with the guard
/// decisions on its tree path (outermost first).  The guard path is the raw
/// material of the executor's *degradation chain* (src/exec/runtime.h): on a
/// persistent fault the innermost taken guard is forced off, falling back
/// from the selected code version to its guarded sibling (intra-group ->
/// outer-only sequentialised -> fully flattened).
struct LaunchInfo {
  int kernel = -1;     // KernelPlan::kernels index
  std::string what;    // kernel label, with the Scale "xN" suffix applied
  double time_us = 0;  // total simulated time of this entry
  int64_t launches = 1;  // physical launches it represents (static x trips)
  /// Threshold guards on the path from the root to this kernel, with the
  /// branch each takes under the assignment.
  std::vector<std::pair<std::string, bool>> guard_path;
};

/// The ordered launch schedule plan_estimate prices under `thresholds`:
/// Guard nodes descend the selected branch, DataCond descends the worse
/// branch (the one whose report plan_estimate merges), Scale multiplies
/// time and launch counts.  Entry times sum to plan_cost.  Empty for
/// legacy_fallback plans (the executor then degrades via the estimate's
/// flat guard list instead).
std::vector<LaunchInfo> plan_launch_schedule(const KernelPlan& plan,
                                             const PlanDatasetCache& cache,
                                             const ThresholdEnv& thresholds);

/// Convenience: build a throwaway cache and estimate (one-off queries; for
/// repeated evaluation build a PlanDatasetCache per dataset and reuse it).
RunEstimate plan_estimate_run(const KernelPlan& plan, const DeviceProfile& dev,
                              const SizeEnv& sizes,
                              const ThresholdEnv& thresholds);

/// One-line plan statistics (node/kernel/guard counts) for CLI inspection.
std::string plan_stats(const KernelPlan& plan);

}  // namespace incflat
