#include "src/plan/plan.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "src/support/error.h"

namespace incflat {

PlanDatasetCache::PlanDatasetCache(const KernelPlan& plan,
                                   const DeviceProfile& dev,
                                   const SizeEnv& sizes)
    : dev_(dev), sizes_(sizes), values_(plan.arena, dev, sizes) {
  kernels_.resize(plan.kernels.size());
  for (size_t k = 0; k < plan.kernels.size(); ++k) {
    const KernelDesc& d = plan.kernels[k];
    PricedKernel& pk = kernels_[k];
    const bool ok = values_.is_valid(d.flops) && values_.is_valid(d.gbytes) &&
                    values_.is_valid(d.lbytes) && values_.is_valid(d.threads) &&
                    (d.fallback < 0 || values_.is_valid(d.fallback));
    if (!ok) continue;
    pk.work.flops = values_.get_f(d.flops);
    pk.work.gbytes = values_.get_f(d.gbytes);
    pk.work.lbytes = values_.get_f(d.lbytes);
    pk.threads = values_.get_i(d.threads);
    pk.fallback = d.fallback >= 0 && values_.get_i(d.fallback) != 0;
    pk.time_us = roofline_time(dev_, pk.work, pk.threads, d.launches);
    pk.valid = true;
  }
  guards_.resize(plan.guards.size());
  for (size_t g = 0; g < plan.guards.size(); ++g) {
    const GuardInfo& gi = plan.guards[g];
    GuardVals& gv = guards_[g];
    if (!gi.fit.alts.empty()) {
      try {
        gv.fit_fail = gi.fit.eval(sizes_) > dev_.max_group_size;
      } catch (const EvalError&) {
        gv.error = true;
      }
    }
    if (!gv.error) {
      try {
        gv.par = gi.par.eval(sizes_);
      } catch (const EvalError&) {
        // Only an error if the fit check does not already reject the guard
        // (the legacy walker short-circuits on fit failure).
        if (!gv.fit_fail) gv.error = true;
      }
    }
  }
}

const PlanDatasetCache::PricedKernel& PlanDatasetCache::kernel(int k) const {
  const PricedKernel& pk = kernels_[static_cast<size_t>(k)];
  if (!pk.valid) {
    throw EvalError("plan: kernel cost uses an unbound size variable");
  }
  return pk;
}

PlanDatasetCache::GuardObs PlanDatasetCache::guard_obs(int guard_ix) const {
  const GuardVals& gv = guards_[static_cast<size_t>(guard_ix)];
  return GuardObs{gv.par, gv.fit_fail, gv.error};
}

bool PlanDatasetCache::guard_taken(int guard_ix, int64_t threshold_value) const {
  const GuardVals& gv = guards_[static_cast<size_t>(guard_ix)];
  if (gv.error) {
    throw EvalError("plan: guard size expression uses an unbound variable");
  }
  if (gv.fit_fail) return false;
  return gv.par >= threshold_value;
}

namespace {

struct Traversal {
  const KernelPlan& plan;
  const PlanDatasetCache& cache;
  const ThresholdEnv& thr;
  PathSig* sig = nullptr;

  // Evaluates node `id`, returning its simulated-time contribution.  When
  // `out` is non-null the kernel/guard report vectors and work totals are
  // accumulated with exactly the legacy walker's operation order, so the
  // resulting RunEstimate is bit-identical to estimate_run's.
  double eval(int id, RunEstimate* out) {
    const PlanNode& n = plan.nodes[static_cast<size_t>(id)];
    switch (n.kind) {
      case PlanNode::Kind::Block: {
        double t = 0;
        for (const PlanNode::Step& s : n.steps) {
          if (s.is_kernel) {
            const KernelDesc& d = plan.kernels[static_cast<size_t>(s.index)];
            const auto& pk = cache.kernel(s.index);
            if (out) {
              out->kernel_launches += d.launches;
              out->total += pk.work;
              out->kernels.push_back(
                  KernelCost{d.what, pk.time_us, pk.threads, pk.work,
                             pk.fallback});
            }
            t += pk.time_us;
          } else {
            t += eval(s.index, out);
          }
        }
        return t;
      }
      case PlanNode::Kind::Guard: {
        const GuardInfo& g = plan.guards[static_cast<size_t>(n.guard)];
        const bool taken = cache.guard_taken(n.guard, thr.get(g.threshold));
        if (sig) sig->set(n.guard, taken);
        if (out) out->guards.emplace_back(g.threshold, taken);
        return eval(taken ? n.then_node : n.else_node, out);
      }
      case PlanNode::Kind::DataCond: {
        // The legacy walker prices both branches with fresh sub-walkers and
        // merges the worse one's report.
        RunEstimate ea, eb;
        const double ta = eval(n.then_node, out ? &ea : nullptr);
        const double tb = eval(n.else_node, out ? &eb : nullptr);
        if (out) {
          RunEstimate& worse = ta >= tb ? ea : eb;
          out->kernel_launches += worse.kernel_launches;
          out->total += worse.total;
          out->kernels.insert(out->kernels.end(), worse.kernels.begin(),
                              worse.kernels.end());
          out->guards.insert(out->guards.end(), worse.guards.begin(),
                             worse.guards.end());
        }
        return std::max(ta, tb);
      }
      case PlanNode::Kind::Scale: {
        const int64_t count = cache.values().get_i(n.count);
        const double trips = static_cast<double>(count);
        if (!out) return eval(n.child, nullptr) * trips;
        const int64_t k0 = out->kernel_launches;
        const Work w0 = out->total;
        const size_t kc0 = out->kernels.size();
        const double body_t = eval(n.child, out);
        out->kernel_launches =
            k0 + (out->kernel_launches - k0) * static_cast<int64_t>(trips);
        Work dw = out->total;
        dw.flops = w0.flops + (dw.flops - w0.flops) * trips;
        dw.gbytes = w0.gbytes + (dw.gbytes - w0.gbytes) * trips;
        dw.lbytes = w0.lbytes + (dw.lbytes - w0.lbytes) * trips;
        out->total = dw;
        for (size_t k = kc0; k < out->kernels.size(); ++k) {
          out->kernels[k].what +=
              " x" + std::to_string(static_cast<int64_t>(trips));
        }
        return body_t * trips;
      }
    }
    INCFLAT_FAIL("plan: unknown node kind");
  }
};

}  // namespace

RunEstimate plan_estimate(const KernelPlan& plan, const PlanDatasetCache& cache,
                          const ThresholdEnv& thresholds) {
  if (plan.legacy_fallback) {
    return estimate_run(cache.dev(), plan.program, cache.sizes(), thresholds);
  }
  RunEstimate out;
  Traversal tr{plan, cache, thresholds, nullptr};
  out.time_us = tr.eval(plan.root, &out);
  return out;
}

double plan_cost(const KernelPlan& plan, const PlanDatasetCache& cache,
                 const ThresholdEnv& thresholds, PathSig* sig) {
  if (plan.legacy_fallback) {
    return estimate_run(cache.dev(), plan.program, cache.sizes(), thresholds)
        .time_us;
  }
  Traversal tr{plan, cache, thresholds, sig};
  return tr.eval(plan.root, nullptr);
}

PathSig plan_signature(const KernelPlan& plan, const PlanDatasetCache& cache,
                       const ThresholdEnv& thresholds) {
  INCFLAT_CHECK(!plan.legacy_fallback,
                "plan_signature on a legacy-fallback plan");
  PathSig sig(plan.guards.size());
  // Structural descent only: kernels are skipped, so this never prices
  // anything and costs O(nodes-on-path).
  const std::function<void(int)> walk = [&](int id) {
    const PlanNode& n = plan.nodes[static_cast<size_t>(id)];
    switch (n.kind) {
      case PlanNode::Kind::Block:
        for (const PlanNode::Step& s : n.steps) {
          if (!s.is_kernel) walk(s.index);
        }
        return;
      case PlanNode::Kind::Guard: {
        const GuardInfo& g = plan.guards[static_cast<size_t>(n.guard)];
        const bool taken = cache.guard_taken(n.guard, thresholds.get(g.threshold));
        sig.set(n.guard, taken);
        walk(taken ? n.then_node : n.else_node);
        return;
      }
      case PlanNode::Kind::DataCond:
        // Both branches contribute to the cost (worse-of-both), so both
        // branches' guard decisions are part of the signature.
        walk(n.then_node);
        walk(n.else_node);
        return;
      case PlanNode::Kind::Scale:
        walk(n.child);
        return;
    }
  };
  walk(plan.root);
  return sig;
}

std::vector<LaunchInfo> plan_launch_schedule(const KernelPlan& plan,
                                             const PlanDatasetCache& cache,
                                             const ThresholdEnv& thresholds) {
  std::vector<LaunchInfo> out;
  if (plan.legacy_fallback) return out;
  std::vector<std::pair<std::string, bool>> path;
  // Walks node `id`, appending its launches to `sched` and returning its
  // simulated time (the same arithmetic as Traversal::eval, so entry times
  // sum to plan_cost).
  const std::function<double(int, std::vector<LaunchInfo>&)> walk =
      [&](int id, std::vector<LaunchInfo>& sched) -> double {
    const PlanNode& n = plan.nodes[static_cast<size_t>(id)];
    switch (n.kind) {
      case PlanNode::Kind::Block: {
        double t = 0;
        for (const PlanNode::Step& s : n.steps) {
          if (s.is_kernel) {
            const KernelDesc& d = plan.kernels[static_cast<size_t>(s.index)];
            const auto& pk = cache.kernel(s.index);
            LaunchInfo li;
            li.kernel = s.index;
            li.what = d.what;
            li.time_us = pk.time_us;
            li.launches = d.launches;
            li.guard_path = path;
            sched.push_back(std::move(li));
            t += pk.time_us;
          } else {
            t += walk(s.index, sched);
          }
        }
        return t;
      }
      case PlanNode::Kind::Guard: {
        const GuardInfo& g = plan.guards[static_cast<size_t>(n.guard)];
        const bool taken = cache.guard_taken(n.guard, thresholds.get(g.threshold));
        path.emplace_back(g.threshold, taken);
        const double t = walk(taken ? n.then_node : n.else_node, sched);
        path.pop_back();
        return t;
      }
      case PlanNode::Kind::DataCond: {
        // The estimate merges the worse branch's report; the schedule takes
        // the same branch (a deterministic stand-in for the data-dependent
        // choice a real run would make).
        std::vector<LaunchInfo> sa, sb;
        const double ta = walk(n.then_node, sa);
        const double tb = walk(n.else_node, sb);
        std::vector<LaunchInfo>& worse = ta >= tb ? sa : sb;
        sched.insert(sched.end(), std::make_move_iterator(worse.begin()),
                     std::make_move_iterator(worse.end()));
        return std::max(ta, tb);
      }
      case PlanNode::Kind::Scale: {
        const int64_t count = cache.values().get_i(n.count);
        std::vector<LaunchInfo> body;
        const double body_t = walk(n.child, body);
        for (LaunchInfo& li : body) {
          li.time_us *= static_cast<double>(count);
          li.launches *= count;
          li.what += " x" + std::to_string(count);
          sched.push_back(std::move(li));
        }
        return body_t * static_cast<double>(count);
      }
    }
    INCFLAT_FAIL("plan: unknown node kind");
  };
  walk(plan.root, out);
  return out;
}

RunEstimate plan_estimate_run(const KernelPlan& plan, const DeviceProfile& dev,
                              const SizeEnv& sizes,
                              const ThresholdEnv& thresholds) {
  if (plan.legacy_fallback) {
    return estimate_run(dev, plan.program, sizes, thresholds);
  }
  PlanDatasetCache cache(plan, dev, sizes);
  return plan_estimate(plan, cache, thresholds);
}

std::string plan_stats(const KernelPlan& plan) {
  std::ostringstream os;
  if (plan.legacy_fallback) {
    os << "plan: legacy-walker fallback (" << plan.fallback_reason << ")";
    return os.str();
  }
  os << "plan: " << plan.nodes.size() << " tree nodes, " << plan.guards.size()
     << " guards, " << plan.kernels.size() << " kernels, "
     << plan.arena.size() << " cost-expression nodes";
  return os.str();
}

}  // namespace incflat
