#include "src/plan/costexpr.h"

#include <cmath>

#include "src/support/error.h"

namespace incflat {

namespace {

double eval_f2(COp op, double x, double y) {
  switch (op) {
    case COp::AddF: return x + y;
    case COp::SubF: return x - y;
    case COp::MulF: return x * y;
    case COp::DivF: return x / y;
    case COp::MinF: return std::min(x, y);
    case COp::MaxF: return std::max(x, y);
    case COp::GeF: return x >= y ? 1.0 : 0.0;
    case COp::GtF: return x > y ? 1.0 : 0.0;
    default: INCFLAT_FAIL("costexpr: not a float binop");
  }
}

int64_t eval_i2(COp op, int64_t x, int64_t y) {
  switch (op) {
    case COp::AddI: return x + y;
    case COp::SubI: return x - y;
    case COp::MulI: return x * y;
    case COp::DivI: return y == 0 ? 0 : x / y;
    case COp::MinI: return std::min(x, y);
    case COp::MaxI: return std::max(x, y);
    default: INCFLAT_FAIL("costexpr: not an int binop");
  }
}

bool float_op(COp op) {
  switch (op) {
    case COp::AddF: case COp::SubF: case COp::MulF: case COp::DivF:
    case COp::MinF: case COp::MaxF:
      return true;
    default:
      return false;
  }
}

}  // namespace

int CostArena::push(CNode n) {
  nodes_.push_back(n);
  return static_cast<int>(nodes_.size()) - 1;
}

bool CostArena::is_constf(int id, double* v) const {
  const CNode& n = nodes_[static_cast<size_t>(id)];
  if (n.op != COp::ConstF) return false;
  *v = n.f;
  return true;
}

bool CostArena::is_consti(int id, int64_t* v) const {
  const CNode& n = nodes_[static_cast<size_t>(id)];
  if (n.op != COp::ConstI) return false;
  *v = n.i;
  return true;
}

int CostArena::constf(double v) {
  auto it = constf_cache_.find(v);
  if (it != constf_cache_.end()) return it->second;
  CNode n;
  n.op = COp::ConstF;
  n.f = v;
  const int id = push(n);
  constf_cache_[v] = id;
  return id;
}

int CostArena::consti(int64_t v) {
  auto it = consti_cache_.find(v);
  if (it != consti_cache_.end()) return it->second;
  CNode n;
  n.op = COp::ConstI;
  n.i = v;
  const int id = push(n);
  consti_cache_[v] = id;
  return id;
}

int CostArena::size_var(const std::string& name) {
  auto it = var_index_.find(name);
  if (it != var_index_.end()) return it->second;
  CNode n;
  n.op = COp::SizeVar;
  n.i = static_cast<int64_t>(var_names_.size());
  var_names_.push_back(name);
  const int id = push(n);
  var_index_[name] = id;
  return id;
}

int CostArena::dev_tile_f() { return push(CNode{COp::DevTileF}); }
int CostArena::dev_max_group_i() { return push(CNode{COp::DevMaxGroupI}); }
int CostArena::dev_local_mem_f() { return push(CNode{COp::DevLocalMemF}); }
int CostArena::invalid() { return push(CNode{COp::Invalid}); }

int CostArena::fold2(COp op, int a, int b) {
  double fa, fb;
  int64_t ia, ib;
  if (float_op(op) || op == COp::GeF || op == COp::GtF) {
    if (is_constf(a, &fa) && is_constf(b, &fb)) {
      return op == COp::GeF || op == COp::GtF
                 ? consti(static_cast<int64_t>(eval_f2(op, fa, fb)))
                 : constf(eval_f2(op, fa, fb));
    }
    // Cost quantities are non-negative and finite, so these identities are
    // bitwise-exact (x + 0.0 == x unless x is -0.0; x * 1.0 == x).
    if (op == COp::AddF && is_constf(b, &fb) && fb == 0.0) return a;
    if (op == COp::AddF && is_constf(a, &fa) && fa == 0.0) return b;
    if (op == COp::MulF && is_constf(b, &fb) && fb == 1.0) return a;
    if (op == COp::MulF && is_constf(a, &fa) && fa == 1.0) return b;
  } else {
    if (is_consti(a, &ia) && is_consti(b, &ib)) {
      return consti(eval_i2(op, ia, ib));
    }
  }
  CNode n;
  n.op = op;
  n.a = a;
  n.b = b;
  return push(n);
}

int CostArena::addf(int a, int b) { return fold2(COp::AddF, a, b); }
int CostArena::subf(int a, int b) { return fold2(COp::SubF, a, b); }
int CostArena::mulf(int a, int b) { return fold2(COp::MulF, a, b); }
int CostArena::divf(int a, int b) { return fold2(COp::DivF, a, b); }
int CostArena::minf(int a, int b) { return fold2(COp::MinF, a, b); }
int CostArena::maxf(int a, int b) { return fold2(COp::MaxF, a, b); }
int CostArena::addi(int a, int b) { return fold2(COp::AddI, a, b); }
int CostArena::subi(int a, int b) { return fold2(COp::SubI, a, b); }
int CostArena::muli(int a, int b) { return fold2(COp::MulI, a, b); }
int CostArena::divi(int a, int b) { return fold2(COp::DivI, a, b); }
int CostArena::mini(int a, int b) { return fold2(COp::MinI, a, b); }
int CostArena::maxi(int a, int b) { return fold2(COp::MaxI, a, b); }
int CostArena::gef(int a, int b) { return fold2(COp::GeF, a, b); }
int CostArena::gtf(int a, int b) { return fold2(COp::GtF, a, b); }

int CostArena::i2f(int a) {
  int64_t v;
  if (is_consti(a, &v)) return constf(static_cast<double>(v));
  CNode n;
  n.op = COp::IntToF;
  n.a = a;
  return push(n);
}

int CostArena::f2i(int a) {
  double v;
  if (is_constf(a, &v)) return consti(static_cast<int64_t>(v));
  CNode n;
  n.op = COp::FToInt;
  n.a = a;
  return push(n);
}

int CostArena::self(int cond, int a, int b) {
  int64_t c;
  if (is_consti(cond, &c)) return c ? a : b;
  if (a == b) return a;
  CNode n;
  n.op = COp::SelF;
  n.a = cond;
  n.b = a;
  n.c = b;
  return push(n);
}

int CostArena::seli(int cond, int a, int b) {
  int64_t c;
  if (is_consti(cond, &c)) return c ? a : b;
  if (a == b) return a;
  CNode n;
  n.op = COp::SelI;
  n.a = cond;
  n.b = a;
  n.c = b;
  return push(n);
}

int CostArena::ceilf_(int a) {
  double v;
  if (is_constf(a, &v)) return constf(std::ceil(v));
  CNode n;
  n.op = COp::CeilF;
  n.a = a;
  return push(n);
}

int CostArena::log2f_(int a) {
  double v;
  if (is_constf(a, &v)) return constf(std::log2(v));
  CNode n;
  n.op = COp::Log2F;
  n.a = a;
  return push(n);
}

CostValues::CostValues(const CostArena& arena, const DeviceProfile& dev,
                       const SizeEnv& sizes) {
  const std::vector<CNode>& ns = arena.nodes();
  vals_.resize(ns.size());
  valid_.assign(ns.size(), 1);
  // Resolve the size-variable table once.
  std::vector<std::pair<int64_t, bool>> var_vals;
  var_vals.reserve(arena.size_vars().size());
  for (const auto& name : arena.size_vars()) {
    auto it = sizes.find(name);
    var_vals.emplace_back(it == sizes.end() ? 0 : it->second,
                          it != sizes.end());
  }
  for (size_t k = 0; k < ns.size(); ++k) {
    const CNode& n = ns[k];
    Val& v = vals_[k];
    auto va = [&](int id) -> const Val& {
      return vals_[static_cast<size_t>(id)];
    };
    auto ok = [&](int id) { return valid_[static_cast<size_t>(id)]; };
    switch (n.op) {
      case COp::ConstF: v.f = n.f; break;
      case COp::ConstI: v.i = n.i; break;
      case COp::SizeVar: {
        const auto& [val, bound] = var_vals[static_cast<size_t>(n.i)];
        v.i = val;
        valid_[k] = bound;
        break;
      }
      case COp::DevTileF: v.f = static_cast<double>(dev.tile_size); break;
      case COp::DevMaxGroupI: v.i = dev.max_group_size; break;
      case COp::DevLocalMemF:
        v.f = static_cast<double>(dev.local_mem_bytes);
        break;
      case COp::AddF: case COp::SubF: case COp::MulF: case COp::DivF:
      case COp::MinF: case COp::MaxF:
        v.f = eval_f2(n.op, va(n.a).f, va(n.b).f);
        valid_[k] = ok(n.a) && ok(n.b);
        break;
      case COp::GeF: case COp::GtF:
        v.i = static_cast<int64_t>(eval_f2(n.op, va(n.a).f, va(n.b).f));
        valid_[k] = ok(n.a) && ok(n.b);
        break;
      case COp::AddI: case COp::SubI: case COp::MulI: case COp::DivI:
      case COp::MinI: case COp::MaxI:
        v.i = eval_i2(n.op, va(n.a).i, va(n.b).i);
        valid_[k] = ok(n.a) && ok(n.b);
        break;
      case COp::IntToF:
        v.f = static_cast<double>(va(n.a).i);
        valid_[k] = ok(n.a);
        break;
      case COp::FToInt:
        v.i = static_cast<int64_t>(va(n.a).f);
        valid_[k] = ok(n.a);
        break;
      case COp::SelF:
        v.f = va(n.a).i ? va(n.b).f : va(n.c).f;
        valid_[k] = ok(n.a) && (va(n.a).i ? ok(n.b) : ok(n.c));
        break;
      case COp::SelI:
        v.i = va(n.a).i ? va(n.b).i : va(n.c).i;
        valid_[k] = ok(n.a) && (va(n.a).i ? ok(n.b) : ok(n.c));
        break;
      case COp::CeilF:
        v.f = std::ceil(va(n.a).f);
        valid_[k] = ok(n.a);
        break;
      case COp::Log2F:
        v.f = std::log2(va(n.a).f);
        valid_[k] = ok(n.a);
        break;
      case COp::Invalid: valid_[k] = 0; break;
    }
  }
}

double CostValues::get_f(int id) const {
  if (!valid_[static_cast<size_t>(id)]) {
    throw EvalError("plan: cost expression uses an unbound size variable");
  }
  return vals_[static_cast<size_t>(id)].f;
}

int64_t CostValues::get_i(int id) const {
  if (!valid_[static_cast<size_t>(id)]) {
    throw EvalError("plan: cost expression uses an unbound size variable");
  }
  return vals_[static_cast<size_t>(id)].i;
}

}  // namespace incflat
