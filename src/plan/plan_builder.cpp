// PlanBuilder: partial evaluation of the gpusim cost walker.
//
// This file replays src/gpusim/cost.cpp's CostWalker over the target IR
// exactly once, with every dataset-dependent quantity replaced by a
// CostArena node id.  Bit-identity with the walker is the contract
// (property-tested in tests/test_plan.cpp), so each function below mirrors
// its walker counterpart operation for operation: the same accumulation
// order, the same double/int64 conversions, the same lazy error points.
// When editing cost.cpp, edit the corresponding mirror here.
//
// Threshold guards fork the tree.  At host level the walk is structured
// enough that both branches can simply be built against the pre-branch
// environment; inside an intra-group walk a guard splits the *remainder* of
// the enclosing kernel's accumulation, so the walk is written in
// continuation-passing style and the continuation is run once per branch.
// Constructs whose walker semantics cannot be expressed as a tree (guards
// under data-dependent intra-group branches, branches that rebind names)
// abort the build via PlanUnsupported and the plan falls back to the
// legacy walker.

#include <algorithm>
#include <functional>
#include <set>
#include <utility>

#include "src/ir/traverse.h"
#include "src/plan/plan.h"
#include "src/support/error.h"
#include "src/support/trace.h"

namespace incflat {

namespace {

/// Raised when the program leaves the exactly-lowerable fragment; the
/// caller converts it into KernelPlan::legacy_fallback.
struct PlanUnsupported {
  std::string reason;
};

/// Work with symbolic components (arena node ids of F nodes).
struct SymWork {
  int flops = -1;
  int gbytes = -1;
  int lbytes = -1;
};

struct Builder {
  KernelPlan& plan;
  CostArena& A;
  TypeEnv env;

  using Privates = std::set<std::string>;

  explicit Builder(KernelPlan& p) : plan(p), A(p.arena) {}

  // ---------------------------------------------------------------- nodes

  int add_node(PlanNode n) {
    plan.nodes.push_back(std::move(n));
    return static_cast<int>(plan.nodes.size()) - 1;
  }

  int empty_ = -1;
  int empty_block() {
    if (empty_ < 0) empty_ = add_node(PlanNode{});
    return empty_;
  }

  int block(std::vector<PlanNode::Step> steps) {
    PlanNode n;
    n.steps = std::move(steps);
    return add_node(std::move(n));
  }

  static PlanNode::Step child_step(int node) { return {false, node}; }

  int add_kernel(std::string what, const SymWork& w, int threads, int launches,
                 int fallback) {
    KernelDesc d;
    d.what = std::move(what);
    d.flops = w.flops;
    d.gbytes = w.gbytes;
    d.lbytes = w.lbytes;
    d.threads = threads;
    d.launches = launches;
    d.fallback = fallback;
    plan.kernels.push_back(std::move(d));
    const int k = static_cast<int>(plan.kernels.size()) - 1;
    return block({PlanNode::Step{true, k}});
  }

  std::map<std::string, int> thr_ix_;
  int add_guard(const ThresholdCmpE& tc) {
    if (!thr_ix_.count(tc.threshold)) {
      thr_ix_[tc.threshold] = static_cast<int>(plan.thresholds.size());
      plan.thresholds.push_back(tc.threshold);
    }
    plan.guards.push_back(GuardInfo{tc.threshold, tc.par, tc.fit});
    return static_cast<int>(plan.guards.size()) - 1;
  }

  int guard_node(int gix, int tn, int en) {
    PlanNode n;
    n.kind = PlanNode::Kind::Guard;
    n.guard = gix;
    n.then_node = tn;
    n.else_node = en;
    return add_node(std::move(n));
  }

  int data_node(int tn, int en) {
    PlanNode n;
    n.kind = PlanNode::Kind::DataCond;
    n.then_node = tn;
    n.else_node = en;
    return add_node(std::move(n));
  }

  int scale_node(int count, int child) {
    PlanNode n;
    n.kind = PlanNode::Kind::Scale;
    n.count = count;
    n.child = child;
    return add_node(std::move(n));
  }

  // Device parameters appear at most once each in the arena.
  int dev_tile_ = -1, dev_maxg_ = -1, dev_lmem_ = -1;
  int dev_tile() { return dev_tile_ < 0 ? dev_tile_ = A.dev_tile_f() : dev_tile_; }
  int dev_maxg() {
    return dev_maxg_ < 0 ? dev_maxg_ = A.dev_max_group_i() : dev_maxg_;
  }
  int dev_lmem() {
    return dev_lmem_ < 0 ? dev_lmem_ = A.dev_local_mem_f() : dev_lmem_;
  }

  // ------------------------------------------------------------ arithmetic

  SymWork wzero() {
    const int z = A.constf(0.0);
    return {z, z, z};
  }

  /// Mirrors Work::operator+= (component-wise adds, in member order).
  SymWork wadd(const SymWork& a, const SymWork& b) {
    return {A.addf(a.flops, b.flops), A.addf(a.gbytes, b.gbytes),
            A.addf(a.lbytes, b.lbytes)};
  }

  /// Mirrors Work::operator*(double).
  SymWork wscale(const SymWork& a, int s) {
    return {A.mulf(a.flops, s), A.mulf(a.gbytes, s), A.mulf(a.lbytes, s)};
  }

  /// Mirrors work_max: weight = flops + gbytes + lbytes, pick a if wa >= wb.
  SymWork wmax(const SymWork& a, const SymWork& b) {
    const int wa = A.addf(A.addf(a.flops, a.gbytes), a.lbytes);
    const int wb = A.addf(A.addf(b.flops, b.gbytes), b.lbytes);
    const int c = A.gef(wa, wb);
    return {A.self(c, a.flops, b.flops), A.self(c, a.gbytes, b.gbytes),
            A.self(c, a.lbytes, b.lbytes)};
  }

  int dim_i(const Dim& d) {
    return d.is_const() ? A.consti(d.cval) : A.size_var(d.var);
  }

  /// Mirrors Type::count: n = 1; n *= each dim.
  int count_i(const Type& t) {
    int n = A.consti(1);
    for (const auto& d : t.shape) n = A.muli(n, dim_i(d));
    return n;
  }

  /// Mirrors bytes_of(Type): double(count) * scalar_bytes.
  int bytes_of_f(const Type& t) {
    return A.mulf(A.i2f(count_i(t)),
                  A.constf(static_cast<double>(scalar_bytes(t.elem))));
  }

  /// Mirrors bytes_of(vector<Type>): b = 0; b += each.
  int bytes_of_f(const std::vector<Type>& ts) {
    int b = A.constf(0.0);
    for (const auto& t : ts) b = A.addf(b, bytes_of_f(t));
    return b;
  }

  /// Mirrors CostWalker::bytes_of_rows.
  int bytes_of_rows_f(const std::vector<Type>& ts) {
    int b = A.constf(0.0);
    for (const auto& t : ts) {
      b = A.addf(b, t.rank() >= 1
                        ? bytes_of_f(t.row())
                        : A.constf(static_cast<double>(scalar_bytes(t.elem))));
    }
    return b;
  }

  /// Mirrors eval_size_scalar; unsupported shapes become Invalid nodes so
  /// the EvalError fires only if a traversal actually needs the value.
  int size_scalar_i(const ExprP& e) {
    if (auto* v = e->as<VarE>()) return A.size_var(v->name);
    if (auto* c = e->as<ConstE>()) return A.consti(c->i);
    if (auto* b = e->as<BinOpE>()) {
      const int x = size_scalar_i(b->lhs);
      const int y = size_scalar_i(b->rhs);
      if (b->op == "+") return A.addi(x, y);
      if (b->op == "-") return A.subi(x, y);
      if (b->op == "*") return A.muli(x, y);
      if (b->op == "/") return A.divi(x, y);
      if (b->op == "min") return A.mini(x, y);
      if (b->op == "max") return A.maxi(x, y);
    }
    return A.invalid();
  }

  /// Mirrors soac_len (as an I node; users convert with i2f).
  int soac_len_i(const std::vector<ExprP>& arrays) {
    INCFLAT_CHECK(!arrays.empty(), "SOAC with no arrays in plan build");
    return dim_i(arrays[0]->type().shape[0]);
  }

  /// Mirrors space_points: n = 1; n *= each level dim.
  int space_points_i(const SegSpace& space) {
    int n = A.consti(1);
    for (const auto& b : space) n = A.muli(n, dim_i(b.dim));
    return n;
  }

  // ------------------------------------------------- sequential (per-thread)

  /// Mirrors CostWalker::seqp.  `tile_div` is an F node.
  SymWork seqp(const ExprP& e, int tile_div, Privates priv) {
    if (!e) return wzero();
    SymWork w = wzero();
    if (e->is<VarE>() || e->is<ConstE>() || e->is<ThresholdCmpE>() ||
        e->is<IotaE>()) {
      return w;
    }
    if (auto* b = e->as<BinOpE>()) {
      w = wadd(w, seqp(b->lhs, tile_div, priv));
      w = wadd(w, seqp(b->rhs, tile_div, priv));
      w.flops = A.addf(w.flops, A.constf(binop_flop_cost(b->op)));
      return w;
    }
    if (auto* u = e->as<UnOpE>()) {
      w = seqp(u->e, tile_div, priv);
      w.flops = A.addf(w.flops, A.constf(unop_flop_cost(u->op)));
      return w;
    }
    if (auto* i = e->as<IfE>()) {
      w = seqp(i->cond, tile_div, priv);
      w = wadd(w, wmax(seqp(i->then_e, tile_div, priv),
                       seqp(i->else_e, tile_div, priv)));
      return w;
    }
    if (auto* l = e->as<LetE>()) {
      w = seqp(l->rhs, tile_div, priv);
      priv.insert(l->vars.begin(), l->vars.end());
      w = wadd(w, seqp(l->body, tile_div, priv));
      return w;
    }
    if (auto* lp = e->as<LoopE>()) {
      for (const auto& in : lp->inits) w = wadd(w, seqp(in, tile_div, priv));
      const int trips = A.i2f(size_scalar_i(lp->count));
      priv.insert(lp->params.begin(), lp->params.end());
      priv.insert(lp->ivar);
      w = wadd(w, wscale(seqp(lp->body, tile_div, priv), trips));
      return w;
    }
    if (auto* m = e->as<MapE>()) {
      const int n = A.i2f(soac_len_i(m->arrays));
      Privates priv2 = priv;
      for (const auto& p : m->f.params) priv2.insert(p.name);
      SymWork body = seqp(m->f.body, tile_div, priv2);
      body = wadd(body, read_work(m->arrays, priv, tile_div));
      body.gbytes = A.addf(body.gbytes, bytes_of_rows_f(e->types));
      return wscale(body, n);
    }
    if (auto* r = e->as<ReduceE>()) {
      const int n = A.i2f(soac_len_i(r->arrays));
      SymWork body = seqp(r->op.body, tile_div, priv);
      body = wadd(body, read_work(r->arrays, priv, tile_div));
      return wscale(body, n);
    }
    if (auto* s = e->as<ScanE>()) {
      const int n = A.i2f(soac_len_i(s->arrays));
      SymWork body = seqp(s->op.body, tile_div, priv);
      body = wadd(body, read_work(s->arrays, priv, tile_div));
      body.gbytes = A.addf(body.gbytes, bytes_of_rows_f(e->types));
      return wscale(body, n);
    }
    if (auto* rm = e->as<RedomapE>()) {
      const int n = A.i2f(soac_len_i(rm->arrays));
      Privates priv2 = priv;
      for (const auto& p : rm->mapf.params) priv2.insert(p.name);
      SymWork body = seqp(rm->mapf.body, tile_div, priv2);
      body = wadd(body, seqp(rm->red.body, tile_div, priv));
      body = wadd(body,
                  read_work(rm->arrays, priv,
                            A.minf(tile_div, A.maxf(n, A.constf(1.0)))));
      return wscale(body, n);
    }
    if (auto* sm = e->as<ScanomapE>()) {
      const int n = A.i2f(soac_len_i(sm->arrays));
      Privates priv2 = priv;
      for (const auto& p : sm->mapf.params) priv2.insert(p.name);
      SymWork body = seqp(sm->mapf.body, tile_div, priv2);
      body = wadd(body, seqp(sm->red.body, tile_div, priv));
      body = wadd(body, read_work(sm->arrays, priv, tile_div));
      body.gbytes = A.addf(body.gbytes, bytes_of_rows_f(e->types));
      return wscale(body, n);
    }
    if (auto* rp = e->as<ReplicateE>()) {
      w = seqp(rp->elem, tile_div, priv);
      w.gbytes = A.addf(w.gbytes, bytes_of_f(e->types));
      return w;
    }
    if (auto* ra = e->as<RearrangeE>()) {
      return seqp(ra->e, tile_div, priv);
    }
    if (auto* ix = e->as<IndexE>()) {
      w = seqp(ix->arr, tile_div, priv);
      for (const auto& i : ix->idxs) w = wadd(w, seqp(i, tile_div, priv));
      auto* av = ix->arr->as<VarE>();
      if (av && priv.count(av->name)) {
        w.gbytes = A.addf(w.gbytes, bytes_of_f(e->types));
      } else {
        w.gbytes = A.addf(w.gbytes, A.divf(bytes_of_f(e->types), tile_div));
      }
      return w;
    }
    if (auto* t = e->as<TupleE>()) {
      for (const auto& x : t->elems) w = wadd(w, seqp(x, tile_div, priv));
      return w;
    }
    INCFLAT_FAIL("plan seq cost: parallel construct in sequential context");
  }

  /// Mirrors CostWalker::read_work.
  SymWork read_work(const std::vector<ExprP>& arrays, const Privates& priv,
                    int tile_div) {
    SymWork w = wzero();
    for (const auto& a : arrays) {
      if (a->is<IotaE>()) continue;
      const int b = bytes_of_f(a->type().row());
      auto* av = a->as<VarE>();
      if (av && priv.count(av->name)) {
        w.gbytes = A.addf(w.gbytes, b);
      } else {
        w.gbytes = A.addf(w.gbytes, A.divf(b, tile_div));
      }
    }
    return w;
  }

  // ------------------------------------------------------------- host level

  /// A branch of the walk that rebinds an already-typed name to a different
  /// type would make later lookups branch-dependent, which a tree cannot
  /// express; the flattener never emits such programs, but guard against it.
  void check_no_rebind(const TypeEnv& saved) {
    for (const auto& [name, ty] : saved) {
      auto it = env.find(name);
      if (it == env.end() || !(it->second == ty)) {
        throw PlanUnsupported{"branch rebinds name " + name};
      }
    }
  }

  /// Mirrors CostWalker::host; returns a plan node id.
  int build_host(const ExprP& e) {
    if (!e) return empty_block();
    if (e->is<VarE>() || e->is<ConstE>() || e->is<ThresholdCmpE>() ||
        e->is<IotaE>()) {
      return empty_block();
    }
    if (auto* l = e->as<LetE>()) {
      const int rhs_n = build_host(l->rhs);
      for (size_t i = 0; i < l->vars.size(); ++i) {
        env[l->vars[i]] = l->rhs->types[i];
      }
      const int body_n = build_host(l->body);
      return block({child_step(rhs_n), child_step(body_n)});
    }
    if (auto* lp = e->as<LoopE>()) {
      std::vector<PlanNode::Step> steps;
      for (size_t i = 0; i < lp->params.size(); ++i) {
        steps.push_back(child_step(build_host(lp->inits[i])));
        env[lp->params[i]] = lp->inits[i]->types.at(0);
      }
      env[lp->ivar] = Type::scalar(Scalar::I64);
      const int count = size_scalar_i(lp->count);
      const int body_n = build_host(lp->body);
      steps.push_back(child_step(scale_node(count, body_n)));
      return block(std::move(steps));
    }
    if (auto* i = e->as<IfE>()) {
      TypeEnv saved = env;
      if (auto* tc = i->cond->as<ThresholdCmpE>()) {
        const int gix = add_guard(*tc);
        const int tn = build_host(i->then_e);
        check_no_rebind(saved);
        env = saved;
        const int en = build_host(i->else_e);
        check_no_rebind(saved);
        env = saved;
        return guard_node(gix, tn, en);
      }
      // Data-dependent host branch: the walker prices both sides with fresh
      // sub-walkers and merges the worse; the tree keeps both children.
      const int tn = build_host(i->then_e);
      env = saved;
      const int en = build_host(i->else_e);
      env = saved;
      return data_node(tn, en);
    }
    if (auto* so = e->as<SegOpE>()) return build_kernel(*so);
    if (auto* t = e->as<TupleE>()) {
      std::vector<PlanNode::Step> steps;
      for (const auto& x : t->elems) steps.push_back(child_step(build_host(x)));
      return block(std::move(steps));
    }
    if (e->is<ReplicateE>()) {
      SymWork w = wzero();
      w.gbytes = bytes_of_f(e->types);
      return add_kernel("replicate", w, sizes_threads_i(e->types), 1, -1);
    }
    if (e->is<RearrangeE>()) return empty_block();
    if (e->is<IndexE>() || e->is<BinOpE>() || e->is<UnOpE>()) {
      return empty_block();
    }
    // Residual sequential SOACs at host level.
    SymWork w = seqp(e, A.constf(1.0), Privates{});
    return add_kernel("sequential", w, A.consti(1), 1, -1);
  }

  /// Mirrors sizes_threads: n = 0; n += each count; max(n, 1).
  int sizes_threads_i(const std::vector<Type>& ts) {
    int n = A.consti(0);
    for (const auto& t : ts) n = A.addi(n, count_i(t));
    return A.maxi(n, A.consti(1));
  }

  // --------------------------------------------------------------- kernels

  /// Mirrors scalar_param_bytes — a build-time constant (depends on types
  /// only).  Computed with the walker's exact double accumulation.
  double scalar_param_bytes(const SegSpace& space) {
    double b = 0;
    TypeEnv scratch = env;
    for (const auto& lvl : space) {
      for (size_t i = 0; i < lvl.params.size(); ++i) {
        auto it = scratch.find(lvl.arrays[i]);
        INCFLAT_CHECK(it != scratch.end(),
                      "plan: seg array untyped: " + lvl.arrays[i]);
        const Type row = it->second.row();
        scratch[lvl.params[i]] = row;
        if (row.is_scalar()) b += scalar_bytes(row.elem);
      }
    }
    return b;
  }

  /// Mirrors array_param_bytes.
  int array_param_bytes_f(const SegSpace& space) {
    std::set<std::string> pass_through;
    for (const auto& lvl : space) {
      pass_through.insert(lvl.arrays.begin(), lvl.arrays.end());
    }
    int b = A.constf(0.0);
    TypeEnv scratch = env;
    for (const auto& lvl : space) {
      for (size_t i = 0; i < lvl.params.size(); ++i) {
        auto it = scratch.find(lvl.arrays[i]);
        INCFLAT_CHECK(it != scratch.end(), "plan: seg array untyped");
        const Type row = it->second.row();
        scratch[lvl.params[i]] = row;
        if (row.is_array() && !pass_through.count(lvl.params[i])) {
          b = A.addf(b, bytes_of_f(row));
        }
      }
    }
    return b;
  }

  void bind_space(const SegSpace& space) {
    for (const auto& lvl : space) {
      for (size_t i = 0; i < lvl.params.size(); ++i) {
        env[lvl.params[i]] = env.at(lvl.arrays[i]).row();
      }
    }
  }

  /// Mirrors bytes_per_point_results.
  int bytes_per_point_results_f(const SegOpE& so) {
    int b = A.constf(0.0);
    for (const auto& t : so.body->types) {
      b = A.addf(b, t.is_scalar()
                        ? A.constf(static_cast<double>(scalar_bytes(t.elem)))
                        : bytes_of_f(t));
    }
    return b;
  }

  /// Mirrors CostWalker::kernel.
  int build_kernel(const SegOpE& so) {
    TypeEnv saved = env;
    const int points = space_points_i(so.space);
    const bool has_inner = count_segops(so.body) > 0;
    int node;
    if (has_inner) {
      INCFLAT_CHECK(so.op == SegOpE::Op::Map,
                    "only segmap kernels may contain intra-group parallelism");
      node = build_group_kernel(so, points);
    } else {
      node = build_thread_kernel(so, points);
    }
    env = saved;
    return node;
  }

  /// Mirrors thread_kernel.
  int build_thread_kernel(const SegOpE& so, int points) {
    const int tile_div = so.block_tiled ? dev_tile() : A.constf(1.0);
    const double scalar_reads = scalar_param_bytes(so.space);
    bind_space(so.space);
    SymWork per = seqp(so.body, tile_div, Privates{});
    per.gbytes = A.addf(per.gbytes, A.constf(scalar_reads));

    std::string what;
    int launches = 1;
    const int points_f = A.i2f(points);
    SymWork total = wscale(per, points_f);
    if (so.op == SegOpE::Op::Map) {
      what = "segmap^" + std::to_string(so.level);
      total.gbytes = A.addf(
          total.gbytes, A.mulf(points_f, bytes_per_point_results_f(so)));
    } else if (so.op == SegOpE::Op::Red) {
      what = "segred^" + std::to_string(so.level);
      SymWork comb = seqp(so.combine.body, A.constf(1.0), Privates{});
      total = wadd(total, wscale(comb, points_f));
      const int segments =
          A.divi(points, A.maxi(dim_i(so.space.back().dim), A.consti(1)));
      total.gbytes = A.addf(
          total.gbytes, A.mulf(A.i2f(segments), bytes_per_point_results_f(so)));
      launches = 2;
    } else {
      what = "segscan^" + std::to_string(so.level);
      SymWork comb = seqp(so.combine.body, A.constf(1.0), Privates{});
      total = wadd(total, wscale(comb, A.mulf(A.constf(2.0), points_f)));
      total.gbytes =
          A.addf(total.gbytes, A.mulf(A.mulf(A.constf(3.0), points_f),
                                      bytes_per_point_results_f(so)));
      launches = 2;
    }
    if (so.block_tiled) what += "[tiled]";
    return add_kernel(what, total, points, launches, -1);
  }

  // --------------------------------------------------------- group kernels

  /// Mirrors GroupAcc, with symbolic quantities.
  struct SymGroupAcc {
    SymWork per_group;
    int max_inner = -1;   // I node
    int local_peak = -1;  // F node
    std::set<std::string> local_names;
  };

  /// Continuation receiving the accumulated group state; builds the rest of
  /// the enclosing kernel and returns a plan node id.
  using Cont = std::function<int(SymGroupAcc)>;

  /// > 0 while synchronously walking a data-dependent intra-group branch,
  /// where a forking guard has no tree representation.
  int fork_ban = 0;

  /// Mirrors group_walk in CPS: `k` consumes the final accumulator.  A
  /// guard builds both branches (running `k` once per branch) and returns a
  /// Guard node.
  int build_group_walk(const ExprP& e, SymGroupAcc acc, const Cont& k) {
    if (!e) return k(std::move(acc));
    if (auto* so = e->as<SegOpE>()) {
      const int pts = space_points_i(so->space);
      acc.max_inner = A.maxi(acc.max_inner, pts);
      TypeEnv saved = env;
      SymWork w = wzero();
      const int pts_f = A.i2f(pts);
      for (const auto& lvl : so->space) {
        for (size_t i = 0; i < lvl.params.size(); ++i) {
          const Type row = env.at(lvl.arrays[i]).row();
          env[lvl.params[i]] = row;
          const int b = A.mulf(pts_f, bytes_of_f(row));
          if (acc.local_names.count(lvl.arrays[i])) {
            w.lbytes = A.addf(w.lbytes, b);
          } else {
            w.gbytes = A.addf(w.gbytes, b);
          }
        }
      }
      SymWork body = seqp(so->body, A.constf(1.0), Privates{});
      env = saved;
      const int elem_bytes = bytes_per_point_results_f(*so);
      w = wadd(w, wscale(body, pts_f));
      if (so->op == SegOpE::Op::Scan) {
        const int logp =
            A.maxf(A.constf(1.0), A.ceilf_(A.log2f_(pts_f)));
        w.lbytes = A.addf(
            w.lbytes,
            A.mulf(A.mulf(A.mulf(A.constf(2.0), logp), pts_f), elem_bytes));
        w = wadd(w, wscale(seqp(so->combine.body, A.constf(1.0), Privates{}),
                           A.mulf(logp, pts_f)));
      } else if (so->op == SegOpE::Op::Red) {
        w.lbytes = A.addf(
            w.lbytes, A.mulf(A.mulf(A.constf(2.0), pts_f), elem_bytes));
        w = wadd(w, wscale(seqp(so->combine.body, A.constf(1.0), Privates{}),
                           pts_f));
      } else {
        w.lbytes = A.addf(w.lbytes, A.mulf(pts_f, elem_bytes));
      }
      acc.per_group = wadd(acc.per_group, w);
      acc.local_peak = A.maxf(
          acc.local_peak, A.mulf(A.mulf(A.constf(2.0), pts_f), elem_bytes));
      return k(std::move(acc));
    }
    if (auto* l = e->as<LetE>()) {
      const ExprP rhs = l->rhs, body = l->body;
      const std::vector<std::string> vars = l->vars;
      return build_group_walk(
          rhs, std::move(acc), Cont([this, rhs, body, vars, k](SymGroupAcc a) {
            for (size_t i = 0; i < vars.size(); ++i) {
              env[vars[i]] = rhs->types[i];
              a.local_names.insert(vars[i]);
            }
            return build_group_walk(body, std::move(a), k);
          }));
    }
    if (auto* lp = e->as<LoopE>()) {
      for (size_t i = 0; i < lp->params.size(); ++i) {
        env[lp->params[i]] = lp->inits[i]->types.at(0);
        acc.local_names.insert(lp->params[i]);
      }
      env[lp->ivar] = Type::scalar(Scalar::I64);
      const int trips = A.i2f(size_scalar_i(lp->count));
      SymGroupAcc inner;
      inner.per_group = wzero();
      inner.max_inner = acc.max_inner;
      inner.local_peak = A.constf(0.0);
      inner.local_names = acc.local_names;
      const SymGroupAcc outer = acc;
      return build_group_walk(
          lp->body, std::move(inner),
          Cont([this, outer, trips, k](SymGroupAcc in) {
            SymGroupAcc a = outer;
            a.per_group = wadd(outer.per_group, wscale(in.per_group, trips));
            a.max_inner = A.maxi(outer.max_inner, in.max_inner);
            a.local_peak = A.maxf(outer.local_peak, in.local_peak);
            return k(std::move(a));
          }));
    }
    if (auto* i = e->as<IfE>()) {
      if (auto* tc = i->cond->as<ThresholdCmpE>()) {
        if (fork_ban > 0) {
          throw PlanUnsupported{
              "threshold guard inside a data-dependent intra-group branch"};
        }
        const int gix = add_guard(*tc);
        TypeEnv saved = env;
        const int tn = build_group_walk(i->then_e, acc, k);
        check_no_rebind(saved);
        env = saved;
        const int en = build_group_walk(i->else_e, acc, k);
        check_no_rebind(saved);
        env = saved;
        return guard_node(gix, tn, en);
      }
      // Data-dependent branch: the walker accumulates both sides into
      // copies and keeps the heavier one; the merge happens inside one
      // kernel, so both sides are walked synchronously here.
      SymGroupAcc a = acc, b = acc;
      sync_group_walk(i->then_e, a);
      sync_group_walk(i->else_e, b);
      if (a.local_names != b.local_names) {
        throw PlanUnsupported{
            "data-dependent intra-group branches bind different "
            "scratchpad-resident names"};
      }
      const int wa = A.addf(A.addf(a.per_group.flops, a.per_group.gbytes),
                            a.per_group.lbytes);
      const int wb = A.addf(A.addf(b.per_group.flops, b.per_group.gbytes),
                            b.per_group.lbytes);
      const int c = A.gef(wa, wb);
      SymGroupAcc m;
      m.per_group = {A.self(c, a.per_group.flops, b.per_group.flops),
                     A.self(c, a.per_group.gbytes, b.per_group.gbytes),
                     A.self(c, a.per_group.lbytes, b.per_group.lbytes)};
      m.max_inner = A.seli(c, a.max_inner, b.max_inner);
      m.local_peak = A.self(c, a.local_peak, b.local_peak);
      m.local_names = std::move(a.local_names);
      return k(std::move(m));
    }
    if (auto* t = e->as<TupleE>()) {
      return walk_elems(t->elems, 0, std::move(acc), k);
    }
    // Sequential code inside the group.
    acc.per_group = wadd(acc.per_group, seqp(e, A.constf(1.0), Privates{}));
    return k(std::move(acc));
  }

  int walk_elems(const std::vector<ExprP>& elems, size_t i, SymGroupAcc acc,
                 const Cont& k) {
    if (i == elems.size()) return k(std::move(acc));
    return build_group_walk(
        elems[i], std::move(acc),
        Cont([this, &elems, i, k](SymGroupAcc a) {
          return walk_elems(elems, i + 1, std::move(a), k);
        }));
  }

  /// Walk with forking disabled, mutating `acc` in place (the walker's
  /// plain group_walk(e, acc) shape).
  void sync_group_walk(const ExprP& e, SymGroupAcc& acc) {
    ++fork_ban;
    build_group_walk(e, acc, Cont([&acc](SymGroupAcc r) {
                       acc = std::move(r);
                       return -1;
                     }));
    --fork_ban;
  }

  /// Mirrors group_kernel.
  int build_group_kernel(const SegOpE& so, int groups) {
    TypeEnv saved = env;
    bind_space(so.space);
    const int staged_in = A.addf(array_param_bytes_f(so.space),
                                 A.constf(scalar_param_bytes(so.space)));
    SymGroupAcc acc;
    acc.per_group = wzero();
    acc.max_inner = A.consti(1);
    acc.local_peak = A.constf(0.0);
    for (const auto& lvl : so.space) {
      acc.local_names.insert(lvl.params.begin(), lvl.params.end());
    }
    const std::string what = "segmap^" + std::to_string(so.level) + "{intra}";
    const int node = build_group_walk(
        so.body, std::move(acc),
        Cont([this, staged_in, groups, what, &so](SymGroupAcc a) {
          const int group_size =
              A.mini(A.maxi(a.max_inner, A.consti(1)), dev_maxg());
          SymWork per = a.per_group;
          per.gbytes = A.addf(per.gbytes, staged_in);
          const int out_bytes = bytes_of_f(so.body->types);
          per.gbytes = A.addf(per.gbytes, out_bytes);

          const int fb = A.gtf(a.local_peak, dev_lmem());
          const int gb = A.self(
              fb, A.addf(per.gbytes, A.mulf(per.lbytes, A.constf(1.2))),
              per.gbytes);
          const int lb = A.self(fb, A.constf(0.0), per.lbytes);

          const int groups_f = A.i2f(groups);
          const SymWork total{A.mulf(per.flops, groups_f),
                              A.mulf(gb, groups_f), A.mulf(lb, groups_f)};
          const int threads = A.muli(groups, group_size);
          return add_kernel(what, total, threads, 1, fb);
        }));
    env = saved;
    return node;
  }
};

/// Depth of the decision tree under node `id` (Block steps do not add a
/// level; Guard/DataCond/Scale do), for the observability gauges.
int tree_depth(const KernelPlan& plan, int id) {
  if (id < 0) return 0;
  const PlanNode& n = plan.nodes[static_cast<size_t>(id)];
  switch (n.kind) {
    case PlanNode::Kind::Block: {
      int d = 0;
      for (const PlanNode::Step& s : n.steps) {
        if (!s.is_kernel) d = std::max(d, tree_depth(plan, s.index));
      }
      return d;
    }
    case PlanNode::Kind::Guard:
    case PlanNode::Kind::DataCond:
      return 1 + std::max(tree_depth(plan, n.then_node),
                          tree_depth(plan, n.else_node));
    case PlanNode::Kind::Scale:
      return 1 + tree_depth(plan, n.child);
  }
  return 0;
}

}  // namespace

KernelPlan build_kernel_plan(const Program& p) {
  trace::Span span("plan.build");
  KernelPlan plan;
  plan.program = p;
  Builder b(plan);
  for (const auto& in : p.inputs) b.env[in.name] = in.type;
  for (const auto& sp : p.size_params()) {
    b.env[sp] = Type::scalar(Scalar::I64);
  }
  auto fall_back = [&plan](const std::string& reason) {
    plan.arena = CostArena{};
    plan.kernels.clear();
    plan.guards.clear();
    plan.nodes.clear();
    plan.thresholds.clear();
    plan.root = -1;
    plan.legacy_fallback = true;
    plan.fallback_reason = reason;
  };
  try {
    plan.root = b.build_host(p.body);
  } catch (const PlanUnsupported& u) {
    fall_back(u.reason);
  } catch (const std::exception& ex) {
    // A build-time failure (malformed program, untyped name) would equally
    // fail in the legacy walker at estimate time; defer to it.
    fall_back(ex.what());
  }
  if (trace::enabled()) {
    trace::count("plan.builds");
    if (plan.legacy_fallback) {
      trace::count("plan.legacy_fallbacks");
    } else {
      trace::count("plan.arena_nodes", static_cast<int64_t>(plan.arena.size()));
      trace::count("plan.tree_nodes", static_cast<int64_t>(plan.nodes.size()));
      trace::count("plan.kernels", static_cast<int64_t>(plan.kernels.size()));
      trace::count("plan.guards", static_cast<int64_t>(plan.guards.size()));
      trace::gauge("plan.tree_depth",
                   static_cast<int64_t>(tree_depth(plan, plan.root)));
    }
  }
  return plan;
}

}  // namespace incflat
