#include "src/plan/specialize.h"

#include <functional>
#include <map>
#include <sstream>
#include <utility>

#include "src/support/error.h"
#include "src/support/trace.h"

namespace incflat {
namespace spesh {

using analysis::GuardDecision;
using analysis::GuardFact;
using analysis::GuardFacts;
using analysis::IntInterval;

namespace {

/// Accumulates shape guards keyed by operand-expression text, conjoining
/// repeated constraints on the same operand via interval meet.
struct GuardSet {
  std::map<std::string, size_t> by_expr;
  std::vector<ShapeGuard> guards;
  bool contradictory = false;

  void require(const SizeExpr& expr, const IntInterval& iv,
               const std::string& why) {
    const std::string key = expr.str();
    const auto it = by_expr.find(key);
    if (it == by_expr.end()) {
      by_expr.emplace(key, guards.size());
      guards.push_back(ShapeGuard{expr, iv, why});
      return;
    }
    ShapeGuard& g = guards[it->second];
    bool empty = false;
    g.iv = analysis::interval_meet(g.iv, iv, &empty);
    if (empty) contradictory = true;
    g.why += "; " + why;
  }
};

struct Specializer {
  const KernelPlan& plan;
  const profile::ExecProfile& prof;
  const ThresholdEnv& thr;
  const analysis::AnalysisLimits lim;
  const SpecializeOptions& opts;

  SpecializedPlan out;
  GuardSet shape;
  GuardFacts facts;  // decisions of already-folded guards, run-wide
  std::string refusal;

  bool walk(int id) {  // NOLINT(misc-no-recursion)
    const PlanNode& n = plan.nodes[static_cast<size_t>(id)];
    switch (n.kind) {
      case PlanNode::Kind::Block: {
        out.ops.push_back(SpecOp{SpecOp::Kind::BlockBegin, -1, false});
        for (const PlanNode::Step& s : n.steps) {
          if (s.is_kernel) {
            out.ops.push_back(SpecOp{SpecOp::Kind::Kernel, s.index, false});
          } else if (!walk(s.index)) {
            return false;
          }
        }
        out.ops.push_back(SpecOp{SpecOp::Kind::BlockEnd, -1, false});
        return true;
      }
      case PlanNode::Kind::Guard:
        return fold_guard(n);
      case PlanNode::Kind::DataCond:
        // Which branch the estimate merges is price- (hence dataset-)
        // dependent; a straight-line schedule cannot commit to either.
        refusal = "data-dependent branch reachable under the folds";
        return false;
      case PlanNode::Kind::Scale: {
        out.ops.push_back(SpecOp{SpecOp::Kind::ScaleBegin, n.count, false});
        if (!walk(n.child)) return false;
        out.ops.push_back(SpecOp{SpecOp::Kind::ScaleEnd, n.count, false});
        return true;
      }
    }
    INCFLAT_FAIL("spesh: unknown node kind");
  }

  bool fold_guard(const PlanNode& n) {  // NOLINT(misc-no-recursion)
    const GuardInfo& g = plan.guards[static_cast<size_t>(n.guard)];
    const profile::GuardProfile& gp =
        prof.guards[static_cast<size_t>(n.guard)];
    const int64_t t = thr.get(g.threshold);

    // Dominance first: a decision decide_guard derives from the speculated
    // decisions of enclosing folds under EMPTY size bounds holds for every
    // dataset (not just in-bounds ones), so it needs no runtime check.
    const ThresholdCmpE tc{g.threshold, g.par, g.fit};
    const GuardDecision d = analysis::decide_guard(tc, lim, SizeBounds{}, facts);
    bool taken = false;
    if (d != GuardDecision::Unknown) {
      taken = d == GuardDecision::AlwaysTrue;
      out.elided_guards.push_back(n.guard);
    } else if (gp.streak >= opts.hot_runs) {
      taken = gp.streak_taken;
      const std::string gname =
          "guard " + std::to_string(n.guard) + " (" + g.threshold + ")";
      if (taken) {
        // Taken needs both halves of guard_taken: no fit failure, and
        // par >= t.  (Par values are >= 1, so the lower bound never makes
        // the par operand unevaluable where the tree walk tolerated it.)
        if (!g.fit.alts.empty()) {
          shape.require(g.fit, IntInterval::at_most(lim.max_group_size),
                        gname + " taken: fit");
        }
        shape.require(g.par, IntInterval::at_least(t), gname + " taken: par");
      } else if (gp.last_fit_fail) {
        shape.require(g.fit, IntInterval::at_least(lim.max_group_size + 1),
                      gname + " not taken: fit overflow");
      } else {
        shape.require(g.par, IntInterval::at_most(t - 1),
                      gname + " not taken: par");
      }
      out.folded_guards.push_back(n.guard);
    } else {
      refusal = "guard " + std::to_string(n.guard) + " (" + g.threshold +
                ") not stable: streak " + std::to_string(gp.streak) + " < " +
                std::to_string(opts.hot_runs);
      return false;
    }

    out.ops.push_back(SpecOp{SpecOp::Kind::Guard, n.guard, taken});
    // Run-wide fact: every guard this walk visits is on the one executed
    // path, so earlier decisions constrain later guards over the same
    // threshold parameter regardless of nesting.
    facts[g.threshold].push_back(GuardFact{g.par, g.fit, taken});
    return walk(taken ? n.then_node : n.else_node);
  }
};

}  // namespace

SpecializeResult specialize_plan(const KernelPlan& plan,
                                 const profile::ExecProfile& prof,
                                 const ThresholdEnv& thresholds,
                                 const DeviceProfile& dev,
                                 const SpecializeOptions& opts) {
  SpecializeResult res;
  if (plan.legacy_fallback) {
    res.reason = "legacy-fallback plan (" + plan.fallback_reason + ")";
    return res;
  }
  profile::check_profile(prof, plan);
  if (prof.device != dev.name) {
    res.reason = "profile is for device '" + prof.device + "', not '" +
                 dev.name + "'";
    return res;
  }
  Specializer sp{plan, prof, thresholds, analysis::limits_for(dev), opts,
                 {},   {},   {},         {}};
  if (!sp.walk(plan.root)) {
    res.reason = sp.refusal;
    trace::count("spesh.refusals");
    return res;
  }
  if (sp.shape.contradictory) {
    res.reason = "contradictory shape guards (profile disagrees with itself)";
    trace::count("spesh.refusals");
    return res;
  }
  res.ok = true;
  res.plan = std::move(sp.out);
  res.plan.program = prof.program;
  res.plan.device = dev.name;
  res.plan.thresholds = thresholds;
  res.plan.shape_guards = std::move(sp.shape.guards);
  trace::count("spesh.specializations");
  trace::count("spesh.guards_folded",
               static_cast<int64_t>(res.plan.folded_guards.size()));
  trace::count("spesh.guards_elided",
               static_cast<int64_t>(res.plan.elided_guards.size()));
  return res;
}

bool shape_guards_pass(const SpecializedPlan& sp, const SizeEnv& sizes,
                       const ShapeGuard** failed) {
  if (failed) *failed = nullptr;
  for (const ShapeGuard& g : sp.shape_guards) {
    bool ok = false;
    try {
      ok = g.iv.contains(g.expr.eval(sizes));
    } catch (const EvalError&) {
      ok = false;  // unevaluable operand: let the tree tier handle it
    }
    if (!ok) {
      if (failed) *failed = &g;
      return false;
    }
  }
  return true;
}

namespace {

/// Straight-line replay engine.  The frame stack reproduces the recursive
/// walk's accumulator nesting so floating-point sums associate identically
/// (bit-identity with plan_estimate / plan_launch_schedule).
struct Replay {
  const KernelPlan& plan;
  const PlanDatasetCache& cache;
  RunEstimate* out;                 // estimate mode
  std::vector<LaunchInfo>* sched;   // schedule mode

  struct Frame {
    double t = 0;
    // Scale frames: rollback snapshots mirroring Traversal::eval.
    int64_t count = 1;
    int64_t k0 = 0;
    Work w0;
    size_t kc0 = 0;
    size_t sc0 = 0;  // schedule mode: first entry of the scaled body
  };
  std::vector<Frame> stack = {Frame{}};

  double run(const SpecializedPlan& sp) {
    for (const SpecOp& op : sp.ops) step(op);
    INCFLAT_CHECK(stack.size() == 1, "spesh: unbalanced replay frames");
    return stack.back().t;
  }

  void step(const SpecOp& op) {
    switch (op.kind) {
      case SpecOp::Kind::Kernel: {
        const KernelDesc& d = plan.kernels[static_cast<size_t>(op.index)];
        const auto& pk = cache.kernel(op.index);
        if (out) {
          out->kernel_launches += d.launches;
          out->total += pk.work;
          out->kernels.push_back(KernelCost{d.what, pk.time_us, pk.threads,
                                            pk.work, pk.fallback});
        }
        if (sched) {
          LaunchInfo li;
          li.kernel = op.index;
          li.what = d.what;
          li.time_us = pk.time_us;
          li.launches = d.launches;
          sched->push_back(std::move(li));
        }
        stack.back().t += pk.time_us;
        return;
      }
      case SpecOp::Kind::Guard: {
        if (out) {
          const GuardInfo& g = plan.guards[static_cast<size_t>(op.index)];
          out->guards.emplace_back(g.threshold, op.taken);
        }
        return;
      }
      case SpecOp::Kind::BlockBegin:
        stack.push_back(Frame{});
        return;
      case SpecOp::Kind::BlockEnd: {
        const double t = stack.back().t;
        stack.pop_back();
        stack.back().t += t;
        return;
      }
      case SpecOp::Kind::ScaleBegin: {
        Frame f;
        f.count = cache.values().get_i(op.index);
        if (out) {
          f.k0 = out->kernel_launches;
          f.w0 = out->total;
          f.kc0 = out->kernels.size();
        }
        if (sched) f.sc0 = sched->size();
        stack.push_back(f);
        return;
      }
      case SpecOp::Kind::ScaleEnd: {
        const Frame f = stack.back();
        stack.pop_back();
        const double trips = static_cast<double>(f.count);
        if (out) {
          out->kernel_launches =
              f.k0 +
              (out->kernel_launches - f.k0) * static_cast<int64_t>(trips);
          Work dw = out->total;
          dw.flops = f.w0.flops + (dw.flops - f.w0.flops) * trips;
          dw.gbytes = f.w0.gbytes + (dw.gbytes - f.w0.gbytes) * trips;
          dw.lbytes = f.w0.lbytes + (dw.lbytes - f.w0.lbytes) * trips;
          out->total = dw;
          for (size_t k = f.kc0; k < out->kernels.size(); ++k) {
            out->kernels[k].what +=
                " x" + std::to_string(static_cast<int64_t>(trips));
          }
        }
        if (sched) {
          for (size_t k = f.sc0; k < sched->size(); ++k) {
            LaunchInfo& li = (*sched)[k];
            li.time_us *= static_cast<double>(f.count);
            li.launches *= f.count;
            li.what += " x" + std::to_string(f.count);
          }
        }
        stack.back().t += f.t * trips;
        return;
      }
    }
    INCFLAT_FAIL("spesh: unknown op kind");
  }
};

}  // namespace

RunEstimate spec_estimate(const KernelPlan& plan, const SpecializedPlan& sp,
                          const PlanDatasetCache& cache) {
  RunEstimate out;
  Replay r{plan, cache, &out, nullptr};
  out.time_us = r.run(sp);
  return out;
}

double spec_cost(const KernelPlan& plan, const SpecializedPlan& sp,
                 const PlanDatasetCache& cache) {
  Replay r{plan, cache, nullptr, nullptr};
  return r.run(sp);
}

std::vector<LaunchInfo> spec_launch_schedule(const KernelPlan& plan,
                                             const SpecializedPlan& sp,
                                             const PlanDatasetCache& cache) {
  std::vector<LaunchInfo> sched;
  Replay r{plan, cache, nullptr, &sched};
  r.run(sp);
  return sched;
}

SpecDispatch::SpecDispatch(const KernelPlan& plan, const SpecializedPlan& sp,
                           const PlanDatasetCache& cache) {
  pass_ = shape_guards_pass(sp, cache.sizes(), &failed_);
  if (!pass_) return;
  estimate_ = spec_estimate(plan, sp, cache);
  schedule_ = spec_launch_schedule(plan, sp, cache);
}

const RunEstimate& SpecDispatch::estimate() const {
  INCFLAT_CHECK(pass_, "spesh: estimate of a failed dispatch");
  return estimate_;
}

const std::vector<LaunchInfo>& SpecDispatch::schedule() const {
  INCFLAT_CHECK(pass_, "spesh: schedule of a failed dispatch");
  return schedule_;
}

std::string SpecializedPlan::str() const {
  std::ostringstream os;
  os << "spesh: " << program << " on " << device << ": " << ops.size()
     << " ops, " << folded_guards.size() << " guard(s) folded, "
     << elided_guards.size() << " elided, " << shape_guards.size()
     << " shape guard(s)";
  for (const ShapeGuard& g : shape_guards) {
    os << "\n  " << g.expr.str() << " in " << g.iv.str() << "  [" << g.why
       << "]";
  }
  return os.str();
}

}  // namespace spesh
}  // namespace incflat
