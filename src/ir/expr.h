// Expression AST for the source and target languages.
//
// The source language is the paper's Fig. 1: a purely functional first-order
// expression language with second-order array combinators (SOACs): map,
// reduce, scan, redomap, scanomap, plus replicate / rearrange / iota / index,
// let, if, and a fixed-trip-count loop.  The target language (Sec. 2.1) adds
// segmap^l / segred^l / segscan^l, annotated with a hardware level l and a
// map-nest context Σ, and reinterprets the plain SOACs as *sequential*.
//
// Both languages share one AST; a target program is distinguished by using
// SegOp nodes (and guard predicates, represented as If over a ThresholdCmp
// condition).  Expressions are immutable and shared via shared_ptr, so
// flattening rules can freely reuse subtrees when emitting multiple code
// versions.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/ir/size.h"
#include "src/ir/type.h"

namespace incflat {

struct Expr;
using ExprP = std::shared_ptr<const Expr>;

/// A formal parameter (lambda or program input).
struct Param {
  std::string name;
  Type type;
};

/// First-order anonymous function passed to a SOAC.
struct Lambda {
  std::vector<Param> params;
  ExprP body;  // may evaluate to several results (TupleE)
};

/// One level ⟨x̄ ∈ ȳ⟩ of a map-nest context Σ: params drawn elementwise from
/// arrays, all of outer dimension `dim`.
struct SegBind {
  std::vector<std::string> params;  // bound names x̄
  std::vector<std::string> arrays;  // source array names ȳ
  Dim dim;                          // iteration count of this level
};

/// Map-nest context Σ, outermost level first.
using SegSpace = std::vector<SegBind>;

// ---------------------------------------------------------------------------
// Node payloads (std::variant alternatives).
// ---------------------------------------------------------------------------

struct VarE {
  std::string name;
};

struct ConstE {
  Scalar tag = Scalar::I64;
  int64_t i = 0;   // I32/I64/Bool payload (Bool: 0/1)
  double f = 0.0;  // F32/F64 payload
};

/// Binary scalar operator; `op` is one of "+","-","*","/","min","max","pow",
/// "<","<=","==","&&","||".  Division on ints truncates toward zero.
struct BinOpE {
  std::string op;
  ExprP lhs, rhs;
};

/// Unary scalar operator: "neg","exp","log","sqrt","abs","!","i2f","f2i".
struct UnOpE {
  std::string op;
  ExprP e;
};

struct IfE {
  ExprP cond, then_e, else_e;
};

/// Multi-binding let (A-normal form block): `let vars = rhs in body`.
struct LetE {
  std::vector<std::string> vars;
  ExprP rhs;
  ExprP body;
};

/// `loop (params = inits) for ivar < count do body` — tail-recursive loop
/// with a trip count known before entry (paper Fig. 1).
struct LoopE {
  std::vector<std::string> params;
  std::vector<ExprP> inits;
  std::string ivar;
  ExprP count;
  ExprP body;  // yields as many results as there are params
};

struct MapE {
  Lambda f;
  std::vector<ExprP> arrays;
};

struct ReduceE {
  Lambda op;  // associative; 2k params for k-array reduction
  std::vector<ExprP> neutral;
  std::vector<ExprP> arrays;
};

struct ScanE {
  Lambda op;
  std::vector<ExprP> neutral;
  std::vector<ExprP> arrays;
};

/// redomap ⊕ f d̄ x̄s  ==  reduce ⊕ d̄ (map f x̄s)   (paper Sec. 2).
struct RedomapE {
  Lambda red;
  Lambda mapf;
  std::vector<ExprP> neutral;
  std::vector<ExprP> arrays;
};

/// scanomap ⊕ f d̄ x̄s  ==  scan ⊕ d̄ (map f x̄s).
struct ScanomapE {
  Lambda red;
  Lambda mapf;
  std::vector<ExprP> neutral;
  std::vector<ExprP> arrays;
};

struct ReplicateE {
  Dim count;
  ExprP elem;
};

/// rearrange (d̄) x — static permutation of the dimensions of x.
struct RearrangeE {
  std::vector<int> perm;
  ExprP e;
};

struct IotaE {
  Dim count;
};

/// a[i_1, ..., i_k] — drops k outer dimensions.
struct IndexE {
  ExprP arr;
  std::vector<ExprP> idxs;
};

/// Multi-result aggregation (tuple-of-arrays representation).
struct TupleE {
  std::vector<ExprP> elems;
};

/// Target-language parallel construct: segmap^l / segred^l / segscan^l Σ e.
struct SegOpE {
  enum class Op { Map, Red, Scan };
  Op op = Op::Map;
  int level = 1;    // hardware level l
  SegSpace space;   // Σ, outermost first
  Lambda combine;   // reduction/scan operator (Red/Scan only)
  std::vector<ExprP> neutral;  // neutral elements (Red/Scan only)
  ExprP body;       // innermost mapped expression e

  /// Cost-model attribute: set by the tiling analysis when the body is a
  /// sequential redomap whose inputs vary over distinct space dimensions
  /// (matmul-like), enabling block tiling in scratchpad memory (Sec. 2.2).
  bool block_tiled = false;
};

/// Guard predicate `Par(size) >= threshold` introduced by rule G3/G9; the
/// threshold's concrete value is supplied at run time (autotuned).  For
/// intra-group versions the guard additionally requires the workgroup-level
/// parallelism to fit a single hardware workgroup (`fit <= max_group_size`),
/// mirroring the Futhark runtime's feasibility test.
struct ThresholdCmpE {
  std::string threshold;  // threshold parameter name
  SizeExpr par;           // symbolic degree of parallelism compared
  SizeExpr fit;           // required workgroup size; empty = unconstrained
};

// ---------------------------------------------------------------------------

using ExprNode =
    std::variant<VarE, ConstE, BinOpE, UnOpE, IfE, LetE, LoopE, MapE, ReduceE,
                 ScanE, RedomapE, ScanomapE, ReplicateE, RearrangeE, IotaE,
                 IndexE, TupleE, SegOpE, ThresholdCmpE>;

/// An immutable expression node.  `types` caches the result types (one entry
/// per result; SOACs over k arrays with an n-result lambda have n entries);
/// it is filled by the type checker and required by the flattening pass.
struct Expr {
  ExprNode node;
  std::vector<Type> types;

  explicit Expr(ExprNode n) : node(std::move(n)) {}
  Expr(ExprNode n, std::vector<Type> ts)
      : node(std::move(n)), types(std::move(ts)) {}

  template <typename T>
  const T* as() const {
    return std::get_if<T>(&node);
  }
  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(node);
  }

  /// The single result type; throws if the node has != 1 results.
  const Type& type() const;
};

/// Allocate an expression node (untyped; run the type checker to fill types).
ExprP mk(ExprNode n);
ExprP mk(ExprNode n, std::vector<Type> ts);

/// A complete program: named inputs (whose symbolic dims implicitly declare
/// the size parameters) and a body producing `body->types` results.
struct Program {
  std::string name;
  std::vector<Param> inputs;
  ExprP body;

  /// Size parameters not derivable from input shapes (e.g. loop trip counts
  /// such as LocVolCalib's numT); bound as i64 scalars like shape sizes.
  std::vector<std::string> extra_sizes;

  /// Declared dataset invariants on size variables (see SizeBound).  Used
  /// by the static size analysis to decide guards; never consulted by the
  /// interpreter or the cost model, so semantics are bounds-independent.
  SizeBounds size_bounds;

  /// All size-variable names: those mentioned in the input types (in
  /// first-use order) followed by `extra_sizes`.
  std::vector<std::string> size_params() const;
};

}  // namespace incflat
