#include "src/ir/print.h"

#include <sstream>

#include "src/support/error.h"
#include "src/support/str.h"

namespace incflat {

namespace {

std::string ind(int n) { return std::string(static_cast<size_t>(2 * n), ' '); }

std::string pp(const ExprP& e, int d);

std::string pp_list(const std::vector<ExprP>& es, int d) {
  return join_map(es, " ", [&](const ExprP& x) { return pp(x, d); });
}

std::string pp_lambda(const Lambda& l, int d) {
  std::ostringstream os;
  os << "(\\"
     << join_map(l.params, " ",
                 [](const Param& p) { return p.name; })
     << " -> " << pp(l.body, d) << ")";
  return os.str();
}

std::string pp_space(const SegSpace& space) {
  return join_map(space, " ", [](const SegBind& b) {
    return "<" + join(b.params, " ") + " in " + join(b.arrays, " ") + ">";
  });
}

std::string pp(const ExprP& e, int d) {
  if (!e) return "<null>";
  if (auto* v = e->as<VarE>()) return v->name;
  if (auto* c = e->as<ConstE>()) {
    switch (c->tag) {
      case Scalar::Bool: return c->i ? "true" : "false";
      case Scalar::I32: return std::to_string(c->i) + "i32";
      case Scalar::I64: return std::to_string(c->i);
      case Scalar::F32: return fmt_double(c->f, 4) + "f32";
      case Scalar::F64: return fmt_double(c->f, 4) + "f64";
    }
  }
  if (auto* b = e->as<BinOpE>()) {
    return "(" + pp(b->lhs, d) + " " + b->op + " " + pp(b->rhs, d) + ")";
  }
  if (auto* u = e->as<UnOpE>()) return u->op + "(" + pp(u->e, d) + ")";
  if (auto* i = e->as<IfE>()) {
    std::ostringstream os;
    os << "if " << pp(i->cond, d) << "\n"
       << ind(d + 1) << "then " << pp(i->then_e, d + 1) << "\n"
       << ind(d + 1) << "else " << pp(i->else_e, d + 1);
    return os.str();
  }
  if (auto* l = e->as<LetE>()) {
    std::ostringstream os;
    os << "let " << join(l->vars, " ") << " = " << pp(l->rhs, d + 1) << "\n"
       << ind(d) << "in " << pp(l->body, d);
    return os.str();
  }
  if (auto* lp = e->as<LoopE>()) {
    std::ostringstream os;
    os << "loop " << join(lp->params, " ") << " = "
       << pp_list(lp->inits, d) << " for " << lp->ivar << " < "
       << pp(lp->count, d) << " do\n"
       << ind(d + 1) << pp(lp->body, d + 1);
    return os.str();
  }
  if (auto* m = e->as<MapE>()) {
    return "map " + pp_lambda(m->f, d) + " " + pp_list(m->arrays, d);
  }
  if (auto* r = e->as<ReduceE>()) {
    return "reduce " + pp_lambda(r->op, d) + " (" + pp_list(r->neutral, d) +
           ") " + pp_list(r->arrays, d);
  }
  if (auto* s = e->as<ScanE>()) {
    return "scan " + pp_lambda(s->op, d) + " (" + pp_list(s->neutral, d) +
           ") " + pp_list(s->arrays, d);
  }
  if (auto* rm = e->as<RedomapE>()) {
    return "redomap " + pp_lambda(rm->red, d) + " " + pp_lambda(rm->mapf, d) +
           " (" + pp_list(rm->neutral, d) + ") " + pp_list(rm->arrays, d);
  }
  if (auto* sm = e->as<ScanomapE>()) {
    return "scanomap " + pp_lambda(sm->red, d) + " " +
           pp_lambda(sm->mapf, d) + " (" + pp_list(sm->neutral, d) + ") " +
           pp_list(sm->arrays, d);
  }
  if (auto* rp = e->as<ReplicateE>()) {
    return "replicate " + rp->count.str() + " " + pp(rp->elem, d);
  }
  if (auto* ra = e->as<RearrangeE>()) {
    return "rearrange (" +
           join_map(ra->perm, ",", [](int k) { return std::to_string(k); }) +
           ") " + pp(ra->e, d);
  }
  if (auto* io = e->as<IotaE>()) return "iota " + io->count.str();
  if (auto* ix = e->as<IndexE>()) {
    return pp(ix->arr, d) + "[" +
           join_map(ix->idxs, ",",
                    [&](const ExprP& x) { return pp(x, d); }) +
           "]";
  }
  if (auto* t = e->as<TupleE>()) {
    return "(" +
           join_map(t->elems, ", ",
                    [&](const ExprP& x) { return pp(x, d); }) +
           ")";
  }
  if (auto* so = e->as<SegOpE>()) {
    std::ostringstream os;
    const char* nm = so->op == SegOpE::Op::Map   ? "segmap"
                     : so->op == SegOpE::Op::Red ? "segred"
                                                 : "segscan";
    os << nm << "^" << so->level;
    if (so->block_tiled) os << "[tiled]";
    os << " " << pp_space(so->space) << " ";
    if (so->op != SegOpE::Op::Map) {
      os << pp_lambda(so->combine, d) << " (" << pp_list(so->neutral, d)
         << ") ";
    }
    os << "(\n" << ind(d + 1) << pp(so->body, d + 1) << ")";
    return os.str();
  }
  if (auto* tc = e->as<ThresholdCmpE>()) {
    return tc->par.str() + " >= " + tc->threshold;
  }
  INCFLAT_FAIL("pretty: unhandled node");
}

}  // namespace

std::string pretty(const ExprP& e, int indent) { return pp(e, indent); }

std::string pretty(const Program& p) {
  std::ostringstream os;
  os << "def " << p.name << " ";
  for (const auto& in : p.inputs) {
    os << "(" << in.name << ": " << in.type.str() << ") ";
  }
  os << "=\n  " << pp(p.body, 1) << "\n";
  return os.str();
}

}  // namespace incflat
