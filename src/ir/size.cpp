#include "src/ir/size.h"

#include <algorithm>
#include <sstream>

#include "src/support/str.h"

namespace incflat {

SizeProd SizeProd::of(const Dim& d) {
  SizeProd p;
  p *= d;
  return p;
}

SizeProd& SizeProd::operator*=(const Dim& d) {
  if (d.is_const()) {
    konst *= d.cval;
  } else {
    vars.push_back(d);
  }
  return *this;
}

SizeProd& SizeProd::operator*=(const SizeProd& o) {
  konst *= o.konst;
  vars.insert(vars.end(), o.vars.begin(), o.vars.end());
  return *this;
}

int64_t SizeProd::eval(const SizeEnv& env) const {
  int64_t n = konst;
  for (const auto& d : vars) n *= d.eval(env);
  return n;
}

std::string SizeProd::str() const {
  if (vars.empty()) return std::to_string(konst);
  std::string s;
  if (konst != 1) s = std::to_string(konst) + "*";
  return s + join_map(vars, "*", [](const Dim& d) { return d.str(); });
}

bool SizeProd::operator==(const SizeProd& o) const {
  if (konst != o.konst || vars.size() != o.vars.size()) return false;
  auto a = vars, b = o.vars;
  auto lt = [](const Dim& x, const Dim& y) { return x.var < y.var; };
  std::sort(a.begin(), a.end(), lt);
  std::sort(b.begin(), b.end(), lt);
  return a == b;
}

SizeExpr SizeExpr::one() { return of(SizeProd::one()); }

SizeExpr SizeExpr::of(const SizeProd& p) {
  SizeExpr e;
  e.alts.push_back(p);
  return e;
}

SizeExpr SizeExpr::of(const Dim& d) { return of(SizeProd::of(d)); }

SizeExpr SizeExpr::times(const SizeProd& p) const {
  SizeExpr out;
  if (alts.empty()) {
    out.alts.push_back(p);
    return out;
  }
  for (const auto& a : alts) {
    SizeProd q = a;
    q *= p;
    out.alts.push_back(q);
  }
  return out;
}

SizeExpr SizeExpr::max_with(const SizeExpr& o) const {
  SizeExpr out = *this;
  for (const auto& a : o.alts) {
    if (std::find(out.alts.begin(), out.alts.end(), a) == out.alts.end()) {
      out.alts.push_back(a);
    }
  }
  if (out.alts.empty()) out.alts.push_back(SizeProd::one());
  return out;
}

int64_t SizeExpr::eval(const SizeEnv& env) const {
  int64_t best = 1;
  for (const auto& a : alts) best = std::max(best, a.eval(env));
  return best;
}

std::string SizeExpr::str() const {
  if (alts.empty()) return "1";
  if (alts.size() == 1) return alts[0].str();
  return "max(" +
         join_map(alts, ", ", [](const SizeProd& p) { return p.str(); }) + ")";
}

bool SizeExpr::operator==(const SizeExpr& o) const { return alts == o.alts; }

}  // namespace incflat
