// Pretty-printer producing Futhark-like concrete syntax for both languages.
// Used for golden tests, debugging, and the code-size ablation report.
#pragma once

#include <string>

#include "src/ir/expr.h"

namespace incflat {

/// Render an expression; `indent` is the starting indentation depth.
std::string pretty(const ExprP& e, int indent = 0);

/// Render a whole program with its input signature.
std::string pretty(const Program& p);

}  // namespace incflat
