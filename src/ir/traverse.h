// Structural traversals over the expression AST: free variables, SOAC
// occurrence checks, binder-aware renaming, and node counting.
#pragma once

#include <map>
#include <set>
#include <string>

#include "src/ir/expr.h"

namespace incflat {

/// Free variable names of `e`.  Size variables inside Dims (iota/replicate
/// counts) are included, since datasets bind them in the value environment
/// too.  Names bound by lambdas, lets, loops, and seg-space binders are
/// excluded within their scope.
std::set<std::string> free_vars(const ExprP& e);

/// True if `e` contains any source-language SOAC (map/reduce/scan/redomap/
/// scanomap) or target seg-op anywhere, including inside lambdas.  This is
/// the "has inner SOACs" test of rules G2/G3.
bool has_soacs(const ExprP& e);

/// True if `e` contains a *parallel recurrence* worth exploiting: any SOAC,
/// or a loop whose body has SOACs (rule G7's side condition).
bool has_exploitable_parallelism(const ExprP& e);

/// Capture-avoiding renaming of free variables according to `sub`.  Bound
/// names shadow entries of `sub`.  The input tree is not modified.
ExprP rename(const ExprP& e, const std::map<std::string, std::string>& sub);

/// Substitute expressions for free variables (used by the flattening pass to
/// sink cheap sequential bindings into distributed kernels).  Binders shadow
/// substituted names; programs are assumed to use globally unique binder
/// names so substituted expressions cannot be captured.
ExprP subst_vars(const ExprP& e, const std::map<std::string, ExprP>& sub);

/// Number of AST nodes (code-size metric for the ablation experiments).
int64_t count_nodes(const ExprP& e);

/// Number of seg-op nodes (generated kernel versions metric).
int64_t count_segops(const ExprP& e);

/// Names of all threshold parameters occurring in guard predicates, in
/// left-to-right discovery order.
std::vector<std::string> collect_thresholds(const ExprP& e);

}  // namespace incflat
