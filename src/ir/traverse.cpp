#include "src/ir/traverse.h"

#include <algorithm>

#include "src/support/error.h"

namespace incflat {

namespace {

void fv(const ExprP& e, std::set<std::string>& bound,
        std::set<std::string>& out);

void fv_dim(const Dim& d, std::set<std::string>& bound,
            std::set<std::string>& out) {
  if (!d.is_const() && !bound.count(d.var)) out.insert(d.var);
}

void fv_lambda(const Lambda& l, std::set<std::string> bound,
               std::set<std::string>& out) {
  for (const auto& p : l.params) bound.insert(p.name);
  fv(l.body, bound, out);
}

void fv(const ExprP& e, std::set<std::string>& bound,
        std::set<std::string>& out) {
  if (!e) return;
  if (auto* v = e->as<VarE>()) {
    if (!bound.count(v->name)) out.insert(v->name);
  } else if (e->is<ConstE>()) {
    // nothing
  } else if (auto* b = e->as<BinOpE>()) {
    fv(b->lhs, bound, out);
    fv(b->rhs, bound, out);
  } else if (auto* u = e->as<UnOpE>()) {
    fv(u->e, bound, out);
  } else if (auto* i = e->as<IfE>()) {
    fv(i->cond, bound, out);
    fv(i->then_e, bound, out);
    fv(i->else_e, bound, out);
  } else if (auto* l = e->as<LetE>()) {
    fv(l->rhs, bound, out);
    auto b2 = bound;
    for (const auto& v : l->vars) b2.insert(v);
    fv(l->body, b2, out);
  } else if (auto* lp = e->as<LoopE>()) {
    for (const auto& in : lp->inits) fv(in, bound, out);
    fv(lp->count, bound, out);
    auto b2 = bound;
    for (const auto& p : lp->params) b2.insert(p);
    b2.insert(lp->ivar);
    fv(lp->body, b2, out);
  } else if (auto* m = e->as<MapE>()) {
    for (const auto& a : m->arrays) fv(a, bound, out);
    fv_lambda(m->f, bound, out);
  } else if (auto* r = e->as<ReduceE>()) {
    for (const auto& a : r->neutral) fv(a, bound, out);
    for (const auto& a : r->arrays) fv(a, bound, out);
    fv_lambda(r->op, bound, out);
  } else if (auto* s = e->as<ScanE>()) {
    for (const auto& a : s->neutral) fv(a, bound, out);
    for (const auto& a : s->arrays) fv(a, bound, out);
    fv_lambda(s->op, bound, out);
  } else if (auto* rm = e->as<RedomapE>()) {
    for (const auto& a : rm->neutral) fv(a, bound, out);
    for (const auto& a : rm->arrays) fv(a, bound, out);
    fv_lambda(rm->red, bound, out);
    fv_lambda(rm->mapf, bound, out);
  } else if (auto* sm = e->as<ScanomapE>()) {
    for (const auto& a : sm->neutral) fv(a, bound, out);
    for (const auto& a : sm->arrays) fv(a, bound, out);
    fv_lambda(sm->red, bound, out);
    fv_lambda(sm->mapf, bound, out);
  } else if (auto* rp = e->as<ReplicateE>()) {
    fv_dim(rp->count, bound, out);
    fv(rp->elem, bound, out);
  } else if (auto* ra = e->as<RearrangeE>()) {
    fv(ra->e, bound, out);
  } else if (auto* io = e->as<IotaE>()) {
    fv_dim(io->count, bound, out);
  } else if (auto* ix = e->as<IndexE>()) {
    fv(ix->arr, bound, out);
    for (const auto& i2 : ix->idxs) fv(i2, bound, out);
  } else if (auto* t = e->as<TupleE>()) {
    for (const auto& x : t->elems) fv(x, bound, out);
  } else if (auto* so = e->as<SegOpE>()) {
    auto b2 = bound;
    for (const auto& lvl : so->space) {
      for (const auto& a : lvl.arrays) {
        if (!b2.count(a)) out.insert(a);
      }
      fv_dim(lvl.dim, b2, out);
      for (const auto& pn : lvl.params) b2.insert(pn);
    }
    for (const auto& n : so->neutral) fv(n, bound, out);
    if (so->op != SegOpE::Op::Map) fv_lambda(so->combine, b2, out);
    fv(so->body, b2, out);
  } else if (auto* tc = e->as<ThresholdCmpE>()) {
    for (const auto& alt : tc->par.alts) {
      for (const auto& d : alt.vars) fv_dim(d, bound, out);
    }
  } else {
    INCFLAT_FAIL("free_vars: unhandled node");
  }
}

template <typename Pred>
bool any_node(const ExprP& e, Pred pred);

template <typename Pred>
bool any_lambda(const Lambda& l, Pred pred) {
  return any_node(l.body, pred);
}

template <typename Pred>
bool any_list(const std::vector<ExprP>& es, Pred pred) {
  return std::any_of(es.begin(), es.end(),
                     [&](const ExprP& x) { return any_node(x, pred); });
}

template <typename Pred>
bool any_node(const ExprP& e, Pred pred) {
  if (!e) return false;
  if (pred(*e)) return true;
  if (auto* b = e->as<BinOpE>()) {
    return any_node(b->lhs, pred) || any_node(b->rhs, pred);
  }
  if (auto* u = e->as<UnOpE>()) return any_node(u->e, pred);
  if (auto* i = e->as<IfE>()) {
    return any_node(i->cond, pred) || any_node(i->then_e, pred) ||
           any_node(i->else_e, pred);
  }
  if (auto* l = e->as<LetE>()) {
    return any_node(l->rhs, pred) || any_node(l->body, pred);
  }
  if (auto* lp = e->as<LoopE>()) {
    return any_list(lp->inits, pred) || any_node(lp->count, pred) ||
           any_node(lp->body, pred);
  }
  if (auto* m = e->as<MapE>()) {
    return any_list(m->arrays, pred) || any_lambda(m->f, pred);
  }
  if (auto* r = e->as<ReduceE>()) {
    return any_list(r->neutral, pred) || any_list(r->arrays, pred) ||
           any_lambda(r->op, pred);
  }
  if (auto* s = e->as<ScanE>()) {
    return any_list(s->neutral, pred) || any_list(s->arrays, pred) ||
           any_lambda(s->op, pred);
  }
  if (auto* rm = e->as<RedomapE>()) {
    return any_list(rm->neutral, pred) || any_list(rm->arrays, pred) ||
           any_lambda(rm->red, pred) || any_lambda(rm->mapf, pred);
  }
  if (auto* sm = e->as<ScanomapE>()) {
    return any_list(sm->neutral, pred) || any_list(sm->arrays, pred) ||
           any_lambda(sm->red, pred) || any_lambda(sm->mapf, pred);
  }
  if (auto* rp = e->as<ReplicateE>()) return any_node(rp->elem, pred);
  if (auto* ra = e->as<RearrangeE>()) return any_node(ra->e, pred);
  if (e->is<IotaE>()) return false;
  if (auto* ix = e->as<IndexE>()) {
    return any_node(ix->arr, pred) || any_list(ix->idxs, pred);
  }
  if (auto* t = e->as<TupleE>()) return any_list(t->elems, pred);
  if (auto* so = e->as<SegOpE>()) {
    return any_list(so->neutral, pred) || any_node(so->body, pred) ||
           (so->op != SegOpE::Op::Map && any_lambda(so->combine, pred));
  }
  return false;  // Var, Const, ThresholdCmp
}

}  // namespace

std::set<std::string> free_vars(const ExprP& e) {
  std::set<std::string> bound, out;
  fv(e, bound, out);
  return out;
}

bool has_soacs(const ExprP& e) {
  return any_node(e, [](const Expr& x) {
    return x.is<MapE>() || x.is<ReduceE>() || x.is<ScanE>() ||
           x.is<RedomapE>() || x.is<ScanomapE>() || x.is<SegOpE>();
  });
}

bool has_exploitable_parallelism(const ExprP& e) { return has_soacs(e); }

namespace {

Lambda rename_lambda(const Lambda& l,
                     std::map<std::string, std::string> sub) {
  for (const auto& p : l.params) sub.erase(p.name);
  return Lambda{l.params, rename(l.body, sub)};
}

std::vector<ExprP> rename_list(const std::vector<ExprP>& es,
                               const std::map<std::string, std::string>& sub) {
  std::vector<ExprP> out;
  out.reserve(es.size());
  for (const auto& e : es) out.push_back(rename(e, sub));
  return out;
}

Dim rename_dim(const Dim& d, const std::map<std::string, std::string>& sub) {
  if (d.is_const()) return d;
  auto it = sub.find(d.var);
  return it == sub.end() ? d : Dim::v(it->second);
}

}  // namespace

ExprP rename(const ExprP& e, const std::map<std::string, std::string>& sub) {
  if (!e || sub.empty()) return e;
  if (auto* v = e->as<VarE>()) {
    auto it = sub.find(v->name);
    if (it == sub.end()) return e;
    return mk(VarE{it->second}, e->types);
  }
  if (e->is<ConstE>()) return e;
  if (auto* b = e->as<BinOpE>()) {
    return mk(BinOpE{b->op, rename(b->lhs, sub), rename(b->rhs, sub)},
              e->types);
  }
  if (auto* u = e->as<UnOpE>()) {
    return mk(UnOpE{u->op, rename(u->e, sub)}, e->types);
  }
  if (auto* i = e->as<IfE>()) {
    return mk(IfE{rename(i->cond, sub), rename(i->then_e, sub),
                  rename(i->else_e, sub)},
              e->types);
  }
  if (auto* l = e->as<LetE>()) {
    auto sub2 = sub;
    for (const auto& v : l->vars) sub2.erase(v);
    return mk(LetE{l->vars, rename(l->rhs, sub), rename(l->body, sub2)},
              e->types);
  }
  if (auto* lp = e->as<LoopE>()) {
    auto sub2 = sub;
    for (const auto& p : lp->params) sub2.erase(p);
    sub2.erase(lp->ivar);
    return mk(LoopE{lp->params, rename_list(lp->inits, sub), lp->ivar,
                    rename(lp->count, sub), rename(lp->body, sub2)},
              e->types);
  }
  if (auto* m = e->as<MapE>()) {
    return mk(MapE{rename_lambda(m->f, sub), rename_list(m->arrays, sub)},
              e->types);
  }
  if (auto* r = e->as<ReduceE>()) {
    return mk(ReduceE{rename_lambda(r->op, sub), rename_list(r->neutral, sub),
                      rename_list(r->arrays, sub)},
              e->types);
  }
  if (auto* s = e->as<ScanE>()) {
    return mk(ScanE{rename_lambda(s->op, sub), rename_list(s->neutral, sub),
                    rename_list(s->arrays, sub)},
              e->types);
  }
  if (auto* rm = e->as<RedomapE>()) {
    return mk(RedomapE{rename_lambda(rm->red, sub),
                       rename_lambda(rm->mapf, sub),
                       rename_list(rm->neutral, sub),
                       rename_list(rm->arrays, sub)},
              e->types);
  }
  if (auto* sm = e->as<ScanomapE>()) {
    return mk(ScanomapE{rename_lambda(sm->red, sub),
                        rename_lambda(sm->mapf, sub),
                        rename_list(sm->neutral, sub),
                        rename_list(sm->arrays, sub)},
              e->types);
  }
  if (auto* rp = e->as<ReplicateE>()) {
    return mk(ReplicateE{rename_dim(rp->count, sub), rename(rp->elem, sub)},
              e->types);
  }
  if (auto* ra = e->as<RearrangeE>()) {
    return mk(RearrangeE{ra->perm, rename(ra->e, sub)}, e->types);
  }
  if (auto* io = e->as<IotaE>()) {
    return mk(IotaE{rename_dim(io->count, sub)}, e->types);
  }
  if (auto* ix = e->as<IndexE>()) {
    return mk(IndexE{rename(ix->arr, sub), rename_list(ix->idxs, sub)},
              e->types);
  }
  if (auto* t = e->as<TupleE>()) {
    return mk(TupleE{rename_list(t->elems, sub)}, e->types);
  }
  if (auto* so = e->as<SegOpE>()) {
    SegOpE out = *so;
    auto sub2 = sub;
    for (auto& lvl : out.space) {
      for (auto& a : lvl.arrays) {
        auto it = sub2.find(a);
        if (it != sub2.end()) a = it->second;
      }
      lvl.dim = rename_dim(lvl.dim, sub2);
      for (const auto& pn : lvl.params) sub2.erase(pn);
    }
    out.neutral = rename_list(so->neutral, sub);
    if (so->op != SegOpE::Op::Map) out.combine = rename_lambda(so->combine, sub2);
    out.body = rename(so->body, sub2);
    return mk(std::move(out), e->types);
  }
  if (e->is<ThresholdCmpE>()) return e;
  INCFLAT_FAIL("rename: unhandled node");
}

namespace {

// subst_vars is rename with expression-valued targets; implemented by
// rewriting the substitution through rename's structure via a var-to-var
// fast path plus a generic walk.
Lambda subst_lambda(const Lambda& l, std::map<std::string, ExprP> sub) {
  for (const auto& p : l.params) sub.erase(p.name);
  return Lambda{l.params, subst_vars(l.body, sub)};
}

std::vector<ExprP> subst_list(const std::vector<ExprP>& es,
                              const std::map<std::string, ExprP>& sub) {
  std::vector<ExprP> out;
  out.reserve(es.size());
  for (const auto& e : es) out.push_back(subst_vars(e, sub));
  return out;
}

}  // namespace

ExprP subst_vars(const ExprP& e, const std::map<std::string, ExprP>& sub) {
  if (!e || sub.empty()) return e;
  if (auto* v = e->as<VarE>()) {
    auto it = sub.find(v->name);
    return it == sub.end() ? e : it->second;
  }
  if (e->is<ConstE>() || e->is<IotaE>() || e->is<ThresholdCmpE>()) return e;
  if (auto* b = e->as<BinOpE>()) {
    return mk(BinOpE{b->op, subst_vars(b->lhs, sub), subst_vars(b->rhs, sub)},
              e->types);
  }
  if (auto* u = e->as<UnOpE>()) {
    return mk(UnOpE{u->op, subst_vars(u->e, sub)}, e->types);
  }
  if (auto* i = e->as<IfE>()) {
    return mk(IfE{subst_vars(i->cond, sub), subst_vars(i->then_e, sub),
                  subst_vars(i->else_e, sub)},
              e->types);
  }
  if (auto* l = e->as<LetE>()) {
    auto sub2 = sub;
    for (const auto& v : l->vars) sub2.erase(v);
    return mk(LetE{l->vars, subst_vars(l->rhs, sub), subst_vars(l->body, sub2)},
              e->types);
  }
  if (auto* lp = e->as<LoopE>()) {
    auto sub2 = sub;
    for (const auto& p : lp->params) sub2.erase(p);
    sub2.erase(lp->ivar);
    return mk(LoopE{lp->params, subst_list(lp->inits, sub), lp->ivar,
                    subst_vars(lp->count, sub), subst_vars(lp->body, sub2)},
              e->types);
  }
  if (auto* m = e->as<MapE>()) {
    return mk(MapE{subst_lambda(m->f, sub), subst_list(m->arrays, sub)},
              e->types);
  }
  if (auto* r = e->as<ReduceE>()) {
    return mk(ReduceE{subst_lambda(r->op, sub), subst_list(r->neutral, sub),
                      subst_list(r->arrays, sub)},
              e->types);
  }
  if (auto* s = e->as<ScanE>()) {
    return mk(ScanE{subst_lambda(s->op, sub), subst_list(s->neutral, sub),
                    subst_list(s->arrays, sub)},
              e->types);
  }
  if (auto* rm = e->as<RedomapE>()) {
    return mk(RedomapE{subst_lambda(rm->red, sub), subst_lambda(rm->mapf, sub),
                       subst_list(rm->neutral, sub),
                       subst_list(rm->arrays, sub)},
              e->types);
  }
  if (auto* sm = e->as<ScanomapE>()) {
    return mk(ScanomapE{subst_lambda(sm->red, sub),
                        subst_lambda(sm->mapf, sub),
                        subst_list(sm->neutral, sub),
                        subst_list(sm->arrays, sub)},
              e->types);
  }
  if (auto* rp = e->as<ReplicateE>()) {
    return mk(ReplicateE{rp->count, subst_vars(rp->elem, sub)}, e->types);
  }
  if (auto* ra = e->as<RearrangeE>()) {
    return mk(RearrangeE{ra->perm, subst_vars(ra->e, sub)}, e->types);
  }
  if (auto* ix = e->as<IndexE>()) {
    return mk(IndexE{subst_vars(ix->arr, sub), subst_list(ix->idxs, sub)},
              e->types);
  }
  if (auto* t = e->as<TupleE>()) {
    return mk(TupleE{subst_list(t->elems, sub)}, e->types);
  }
  if (e->is<SegOpE>()) {
    // Seg-ops reference arrays by *name* in their space, so expression
    // substitution cannot be applied; the flattening pass never sinks
    // bindings into already-flattened code.
    INCFLAT_FAIL("subst_vars: cannot substitute into a seg-op");
  }
  INCFLAT_FAIL("subst_vars: unhandled node");
}

namespace {

int64_t count_nodes_impl(const ExprP& e) {
  int64_t n = 0;
  any_node(e, [&](const Expr&) {
    ++n;
    return false;  // never match, so the walk visits everything
  });
  return n;
}

}  // namespace

int64_t count_nodes(const ExprP& e) { return count_nodes_impl(e); }

int64_t count_segops(const ExprP& e) {
  int64_t n = 0;
  any_node(e, [&](const Expr& x) {
    if (x.is<SegOpE>()) ++n;
    return false;
  });
  return n;
}

std::vector<std::string> collect_thresholds(const ExprP& e) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  any_node(e, [&](const Expr& x) {
    if (auto* tc = x.as<ThresholdCmpE>()) {
      if (seen.insert(tc->threshold).second) out.push_back(tc->threshold);
    }
    return false;
  });
  return out;
}

}  // namespace incflat
