// Terse construction DSL for source-language programs.
//
// Benchmark programs and tests build IR through these helpers rather than a
// parser; the names mirror the paper's surface syntax.  All constructors
// produce *untyped* nodes — run typecheck_program/typecheck_expr to annotate
// result types before flattening or interpretation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/expr.h"

namespace incflat::ib {

// -- atoms ------------------------------------------------------------------
ExprP var(const std::string& name);
ExprP ci64(int64_t v);
ExprP ci32(int64_t v);
ExprP cf32(double v);
ExprP cf64(double v);
ExprP cbool(bool v);

// -- scalar operators ---------------------------------------------------------
ExprP bin(const std::string& op, ExprP a, ExprP b);
ExprP add(ExprP a, ExprP b);
ExprP sub(ExprP a, ExprP b);
ExprP mul(ExprP a, ExprP b);
ExprP divide(ExprP a, ExprP b);
ExprP min_(ExprP a, ExprP b);
ExprP max_(ExprP a, ExprP b);
ExprP lt(ExprP a, ExprP b);
ExprP le(ExprP a, ExprP b);
ExprP eq(ExprP a, ExprP b);
ExprP un(const std::string& op, ExprP e);
ExprP exp_(ExprP e);
ExprP sqrt_(ExprP e);
ExprP abs_(ExprP e);
ExprP neg(ExprP e);

// -- control ------------------------------------------------------------------
ExprP iff(ExprP c, ExprP t, ExprP f);
ExprP let1(const std::string& v, ExprP rhs, ExprP body);
ExprP letn(std::vector<std::string> vs, ExprP rhs, ExprP body);
ExprP loop(std::vector<std::string> params, std::vector<ExprP> inits,
           const std::string& ivar, ExprP count, ExprP body);

// -- lambdas ------------------------------------------------------------------
Param p(const std::string& name, Type t);
Lambda lam(std::vector<Param> params, ExprP body);
/// Binary scalar operator lambda over `t`, e.g. binlam("+", f32) is λx y→x+y.
Lambda binlam(const std::string& op, Scalar t);

// -- SOACs --------------------------------------------------------------------
ExprP map(Lambda f, std::vector<ExprP> arrays);
ExprP map1(Lambda f, ExprP array);
ExprP reduce(Lambda op, std::vector<ExprP> neutral, std::vector<ExprP> arrays);
ExprP scan(Lambda op, std::vector<ExprP> neutral, std::vector<ExprP> arrays);
ExprP redomap(Lambda red, Lambda mapf, std::vector<ExprP> neutral,
              std::vector<ExprP> arrays);
ExprP scanomap(Lambda red, Lambda mapf, std::vector<ExprP> neutral,
               std::vector<ExprP> arrays);

// -- array operations ----------------------------------------------------------
ExprP replicate(Dim count, ExprP e);
ExprP rearrange(std::vector<int> perm, ExprP e);
ExprP transpose(ExprP e);
ExprP iota(Dim count);
ExprP index(ExprP arr, std::vector<ExprP> idxs);
ExprP tuple(std::vector<ExprP> elems);

/// Fresh-name supply; deterministic per instance.
class NameGen {
 public:
  std::string fresh(const std::string& base);

 private:
  int counter_ = 0;
};

}  // namespace incflat::ib
