#include "src/ir/expr.h"

#include <set>

#include "src/support/error.h"

namespace incflat {

const Type& Expr::type() const {
  INCFLAT_CHECK(types.size() == 1,
                "type() on expression with " + std::to_string(types.size()) +
                    " results");
  return types[0];
}

ExprP mk(ExprNode n) { return std::make_shared<Expr>(std::move(n)); }

ExprP mk(ExprNode n, std::vector<Type> ts) {
  return std::make_shared<Expr>(std::move(n), std::move(ts));
}

std::vector<std::string> Program::size_params() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto& p : inputs) {
    for (const auto& d : p.type.shape) {
      if (!d.is_const() && seen.insert(d.var).second) {
        out.push_back(d.var);
      }
    }
  }
  for (const auto& s : extra_sizes) {
    if (seen.insert(s).second) out.push_back(s);
  }
  return out;
}

}  // namespace incflat
