// On-demand structural verification of compiler IR.
//
// The pipeline's correctness contract is property-tested end to end
// (tests/test_property.cpp), but property tests only run in the test suite.
// verify_program promotes the structural parts of those invariants into
// checks that any pipeline stage can run on its current program:
//
//   * types   — the program re-typechecks from scratch (source or target);
//   * levels  — target level discipline: a level-0 seg-op is fully
//               sequential, a level-l seg-op directly contains only
//               level-(l-1) seg-ops;
//   * guards  — guard exhaustiveness: threshold comparisons appear only as
//               `if` conditions, and every intra-group code version (a
//               level>=1 seg-op with parallel body, which must fit a
//               hardware workgroup) sits in the then-arm of a guard that
//               carries the matching workgroup-fit bound — so the else-most
//               fallback arm of every guard chain is feasible on any device;
//   * segbinds — seg-space well-formedness: per-level params/arrays arity
//               match, no duplicate parameter within a space, and every
//               source array resolves to an enclosing binding or an outer
//               level of the same space (no dangling seg-space bindings).
//
// All checks are vacuously true on source programs (which contain no
// seg-ops and no thresholds), so a verifier can run after *any* pass.
//
// Unlike a fail-fast assert, verification *collects*: every enabled check
// runs to completion and each violation becomes one structured Diagnostic
// (src/support/diag.h) with an IR path locating the node.  If any were
// found, VerifyError is thrown carrying the complete list, so a failing
// `--verify-each` run reports everything wrong with the program at once.
#pragma once

#include <string>
#include <vector>

#include "src/ir/expr.h"
#include "src/support/diag.h"
#include "src/support/error.h"

namespace incflat {

/// Verification failure: one or more structural invariants do not hold.
/// Carries every Diagnostic collected over the whole program; `check()` and
/// `context()` report the first finding's attribution (the historical
/// single-violation interface).
class VerifyError : public CompilerError {
 public:
  VerifyError(std::string check, std::string context,
              const std::string& detail);
  explicit VerifyError(std::vector<Diagnostic> diags);

  const std::string& check() const { return diags_.front().check; }
  const std::string& context() const { return diags_.front().context; }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

 private:
  std::vector<Diagnostic> diags_;
};

struct VerifyOptions {
  bool types = true;
  bool levels = true;
  bool guards = true;
  bool segbinds = true;
};

/// Run the selected checks on `p` and return every violation found (empty
/// means the program verifies).  `context` names the pipeline position for
/// attribution.
std::vector<Diagnostic> verify_diagnostics(const Program& p,
                                           const std::string& context =
                                               "verify",
                                           const VerifyOptions& opts = {});

/// Run the selected checks on `p`; throws VerifyError carrying the full
/// diagnostic list if any violation was found.
void verify_program(const Program& p, const std::string& context = "verify",
                    const VerifyOptions& opts = {});

}  // namespace incflat
