// On-demand structural verification of compiler IR.
//
// The pipeline's correctness contract is property-tested end to end
// (tests/test_property.cpp), but property tests only run in the test suite.
// verify_program promotes the structural parts of those invariants into
// checks that any pipeline stage can run on its current program:
//
//   * types   — the program re-typechecks from scratch (source or target);
//   * levels  — target level discipline: a level-0 seg-op is fully
//               sequential, a level-l seg-op directly contains only
//               level-(l-1) seg-ops;
//   * guards  — guard exhaustiveness: threshold comparisons appear only as
//               `if` conditions, and every intra-group code version (a
//               level>=1 seg-op with parallel body, which must fit a
//               hardware workgroup) sits in the then-arm of a guard that
//               carries the matching workgroup-fit bound — so the else-most
//               fallback arm of every guard chain is feasible on any device;
//   * segbinds — seg-space well-formedness: per-level params/arrays arity
//               match, no duplicate parameter within a space, and every
//               source array resolves to an enclosing binding or an outer
//               level of the same space (no dangling seg-space bindings).
//
// All checks are vacuously true on source programs (which contain no
// seg-ops and no thresholds), so a verifier can run after *any* pass.
// Violations throw VerifyError whose message names the failed check and the
// pipeline context (typically "after pass '<name>'").
#pragma once

#include <string>

#include "src/ir/expr.h"
#include "src/support/error.h"

namespace incflat {

/// Verification failure: a structural invariant does not hold.  `check` is
/// the failed check's name ("types", "levels", "guards", "segbinds");
/// `context` attributes the failure to a pipeline position.
class VerifyError : public CompilerError {
 public:
  VerifyError(std::string check, std::string context,
              const std::string& detail);

  const std::string& check() const { return check_; }
  const std::string& context() const { return context_; }

 private:
  std::string check_;
  std::string context_;
};

struct VerifyOptions {
  bool types = true;
  bool levels = true;
  bool guards = true;
  bool segbinds = true;
};

/// Run the selected checks on `p`; throws VerifyError on the first
/// violation.  `context` names the pipeline position for attribution.
void verify_program(const Program& p, const std::string& context = "verify",
                    const VerifyOptions& opts = {});

}  // namespace incflat
