// Type checker for the source and target languages.
//
// Checking is also *annotation*: because Expr is immutable, the checker
// rebuilds the tree with every node's `types` field filled in.  The
// flattening pass requires annotated input (it reads array dims off types),
// and the type-preservation property test re-checks flattened output.
//
// The target-language level discipline (paper Sec. 2.1) is enforced by
// check_level_discipline: a construct at level 0 contains only sequential
// code, and a construct at level l >= 1 directly contains only constructs at
// level l-1.
#pragma once

#include "src/ir/expr.h"

namespace incflat {

/// Type-check and annotate an expression under `env`.  Throws CompilerError
/// with a descriptive message on ill-typed input.
ExprP typecheck_expr(const ExprP& e, const TypeEnv& env);

/// Type-check and annotate a whole program (inputs seed the environment;
/// size parameters are bound as i64 scalars).
Program typecheck_program(Program p);

/// Verify the target-language level constraint; `ambient_level` is the level
/// of the innermost enclosing parallel construct (-1 at host level... the
/// host may contain any level).  Throws CompilerError on violation.
void check_level_discipline(const ExprP& e);

}  // namespace incflat
