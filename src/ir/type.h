// Types of the source and target languages (paper Fig. 1 / Sec. 2.1).
//
// A type is a scalar element type plus a shape of symbolic dimensions.  The
// language supports only *regular* nested parallelism, so every dimension is
// either a compile-time constant or a named size variable bound by the
// program inputs; a concrete dataset supplies a SizeEnv mapping size
// variables to integers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace incflat {

/// Scalar element types.  F32/I32 match the paper's benchmarks (which are
/// f32-heavy); F64/I64 are provided for completeness and index arithmetic.
enum class Scalar { I32, I64, F32, F64, Bool };

const char* scalar_name(Scalar s);

/// Element width in bytes as seen by the GPU cost model.
int scalar_bytes(Scalar s);

bool scalar_is_float(Scalar s);
bool scalar_is_int(Scalar s);

/// Concrete sizes for symbolic dimension variables (one per dataset).
using SizeEnv = std::map<std::string, int64_t>;

/// One symbolic array dimension: a constant or a named size variable.
struct Dim {
  enum class Kind { Const, Var };
  Kind kind = Kind::Const;
  int64_t cval = 0;
  std::string var;

  static Dim c(int64_t v);
  static Dim v(std::string name);

  bool is_const() const { return kind == Kind::Const; }

  /// Evaluate under a size environment; throws EvalError on unbound vars.
  int64_t eval(const SizeEnv& env) const;

  bool operator==(const Dim& o) const;
  bool operator!=(const Dim& o) const { return !(*this == o); }

  std::string str() const;
};

/// An array (or scalar, when shape is empty) type.
struct Type {
  Scalar elem = Scalar::F32;
  std::vector<Dim> shape;

  Type() = default;
  Type(Scalar e, std::vector<Dim> s) : elem(e), shape(std::move(s)) {}

  static Type scalar(Scalar e) { return Type(e, {}); }
  static Type array(Scalar e, std::vector<Dim> s) {
    return Type(e, std::move(s));
  }

  int rank() const { return static_cast<int>(shape.size()); }
  bool is_scalar() const { return shape.empty(); }
  bool is_array() const { return !shape.empty(); }

  /// The type of one row (drops the outermost dimension).  Requires rank>=1.
  Type row() const;

  /// The type of an element after indexing with `n` indices.
  Type peel(int n) const;

  /// This type with extra outer dimensions prepended (array expansion, as
  /// performed by rules G6/G7 when a binding is distributed over a map nest).
  Type expand(const std::vector<Dim>& outer) const;

  /// Total element count under a size environment.
  int64_t count(const SizeEnv& env) const;

  bool operator==(const Type& o) const;
  bool operator!=(const Type& o) const { return !(*this == o); }

  std::string str() const;
};

/// Mapping from variable names to their types; threaded through the type
/// checker and the flattening pass.
using TypeEnv = std::map<std::string, Type>;

}  // namespace incflat
