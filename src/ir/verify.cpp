#include "src/ir/verify.h"

#include <algorithm>
#include <set>

#include "src/ir/print.h"
#include "src/ir/traverse.h"
#include "src/ir/typecheck.h"

namespace incflat {

VerifyError::VerifyError(std::string check, std::string context,
                         const std::string& detail)
    : CompilerError("verification failed (" + check + ") " + context + ": " +
                    detail),
      check_(std::move(check)),
      context_(std::move(context)) {}

namespace {

struct Verifier {
  const std::string& context;

  [[noreturn]] void fail(const char* check, const std::string& detail,
                         const ExprP& site) const {
    std::string d = detail;
    if (site) d += "\n  in: " + pretty(site).substr(0, 300);
    throw VerifyError(check, context, d);
  }

  // -- guards ---------------------------------------------------------------

  /// True if `e` contains an intra-group code version: a seg-op at hardware
  /// level >= 1 whose body still has parallel constructs.  Running one
  /// requires the inner parallelism to fit a single workgroup, so it must be
  /// guarded by a threshold comparison carrying that fit bound.
  static bool has_intra_group(const ExprP& e) {
    if (!e) return false;
    if (auto* so = e->as<SegOpE>()) {
      if (so->level >= 1 && count_segops(so->body) > 0) return true;
      return has_intra_group(so->body) || any_has_intra(so->neutral);
    }
    if (auto* b = e->as<BinOpE>()) {
      return has_intra_group(b->lhs) || has_intra_group(b->rhs);
    }
    if (auto* u = e->as<UnOpE>()) return has_intra_group(u->e);
    if (auto* i = e->as<IfE>()) {
      return has_intra_group(i->cond) || has_intra_group(i->then_e) ||
             has_intra_group(i->else_e);
    }
    if (auto* l = e->as<LetE>()) {
      return has_intra_group(l->rhs) || has_intra_group(l->body);
    }
    if (auto* lp = e->as<LoopE>()) {
      return any_has_intra(lp->inits) || has_intra_group(lp->body);
    }
    if (auto* t = e->as<TupleE>()) return any_has_intra(t->elems);
    if (auto* rp = e->as<ReplicateE>()) return has_intra_group(rp->elem);
    if (auto* ra = e->as<RearrangeE>()) return has_intra_group(ra->e);
    if (auto* ix = e->as<IndexE>()) {
      return has_intra_group(ix->arr) || any_has_intra(ix->idxs);
    }
    return false;
  }

  static bool any_has_intra(const std::vector<ExprP>& es) {
    return std::any_of(es.begin(), es.end(), has_intra_group);
  }

  /// `fit_guarded` is true while inside the then-arm of a guard whose
  /// comparison carries a workgroup-fit bound; only there may intra-group
  /// versions appear, because every other position is reachable when the
  /// inner parallelism does not fit the device's workgroups.
  void check_guards(const ExprP& e, bool fit_guarded) const {
    if (!e) return;
    if (auto* i = e->as<IfE>()) {
      if (auto* tc = i->cond->as<ThresholdCmpE>()) {
        check_guards(i->then_e, fit_guarded || !tc->fit.alts.empty());
        check_guards(i->else_e, fit_guarded);
        return;
      }
      check_guards(i->cond, fit_guarded);
      check_guards(i->then_e, fit_guarded);
      check_guards(i->else_e, fit_guarded);
      return;
    }
    if (e->is<ThresholdCmpE>()) {
      fail("guards", "threshold comparison outside an if-condition", e);
    }
    if (auto* so = e->as<SegOpE>()) {
      if (!fit_guarded && so->level >= 1 && count_segops(so->body) > 0) {
        fail("guards",
             "intra-group version (level-" + std::to_string(so->level) +
                 " seg-op with parallel body) reachable without a "
                 "workgroup-fit guard: no feasible fallback arm",
             e);
      }
      check_guards(so->body, fit_guarded);
      for (const auto& n : so->neutral) check_guards(n, fit_guarded);
      if (so->op != SegOpE::Op::Map) check_guards(so->combine.body, fit_guarded);
      return;
    }
    if (auto* b = e->as<BinOpE>()) {
      check_guards(b->lhs, fit_guarded);
      check_guards(b->rhs, fit_guarded);
    } else if (auto* u = e->as<UnOpE>()) {
      check_guards(u->e, fit_guarded);
    } else if (auto* l = e->as<LetE>()) {
      check_guards(l->rhs, fit_guarded);
      check_guards(l->body, fit_guarded);
    } else if (auto* lp = e->as<LoopE>()) {
      for (const auto& x : lp->inits) check_guards(x, fit_guarded);
      check_guards(lp->count, fit_guarded);
      check_guards(lp->body, fit_guarded);
    } else if (auto* t = e->as<TupleE>()) {
      for (const auto& x : t->elems) check_guards(x, fit_guarded);
    } else if (auto* rp = e->as<ReplicateE>()) {
      check_guards(rp->elem, fit_guarded);
    } else if (auto* ra = e->as<RearrangeE>()) {
      check_guards(ra->e, fit_guarded);
    } else if (auto* ix = e->as<IndexE>()) {
      check_guards(ix->arr, fit_guarded);
      for (const auto& x : ix->idxs) check_guards(x, fit_guarded);
    } else if (auto* m = e->as<MapE>()) {
      for (const auto& x : m->arrays) check_guards(x, fit_guarded);
      check_guards(m->f.body, fit_guarded);
    } else if (auto* r = e->as<ReduceE>()) {
      for (const auto& x : r->neutral) check_guards(x, fit_guarded);
      for (const auto& x : r->arrays) check_guards(x, fit_guarded);
      check_guards(r->op.body, fit_guarded);
    } else if (auto* s = e->as<ScanE>()) {
      for (const auto& x : s->neutral) check_guards(x, fit_guarded);
      for (const auto& x : s->arrays) check_guards(x, fit_guarded);
      check_guards(s->op.body, fit_guarded);
    } else if (auto* rm = e->as<RedomapE>()) {
      for (const auto& x : rm->neutral) check_guards(x, fit_guarded);
      for (const auto& x : rm->arrays) check_guards(x, fit_guarded);
      check_guards(rm->red.body, fit_guarded);
      check_guards(rm->mapf.body, fit_guarded);
    } else if (auto* sm = e->as<ScanomapE>()) {
      for (const auto& x : sm->neutral) check_guards(x, fit_guarded);
      for (const auto& x : sm->arrays) check_guards(x, fit_guarded);
      check_guards(sm->red.body, fit_guarded);
      check_guards(sm->mapf.body, fit_guarded);
    }
    // VarE / ConstE / IotaE: leaves.
  }

  // -- segbinds -------------------------------------------------------------

  /// Scope-tracking walk: `scope` holds every name bound at this point.
  /// For each seg-op, each level's source arrays must resolve to the scope
  /// extended with the params of strictly outer levels of the same space.
  void check_segbinds(const ExprP& e, std::set<std::string> scope) const {
    if (!e) return;
    if (auto* so = e->as<SegOpE>()) {
      std::set<std::string> inner = scope;
      std::set<std::string> space_params;
      for (size_t lvl = 0; lvl < so->space.size(); ++lvl) {
        const SegBind& b = so->space[lvl];
        if (b.params.size() != b.arrays.size()) {
          fail("segbinds",
               "seg-space level " + std::to_string(lvl) + " binds " +
                   std::to_string(b.params.size()) + " params to " +
                   std::to_string(b.arrays.size()) + " arrays",
               e);
        }
        for (const auto& a : b.arrays) {
          if (!inner.count(a)) {
            fail("segbinds",
                 "dangling seg-space binding: array '" + a +
                     "' is not bound by an enclosing binder or an outer "
                     "level of this space",
                 e);
          }
        }
        for (const auto& p : b.params) {
          if (!space_params.insert(p).second) {
            fail("segbinds",
                 "seg-space binds parameter '" + p + "' twice", e);
          }
          inner.insert(p);
        }
      }
      for (const auto& n : so->neutral) check_segbinds(n, scope);
      if (so->op != SegOpE::Op::Map) {
        std::set<std::string> cs = inner;
        for (const auto& p : so->combine.params) cs.insert(p.name);
        check_segbinds(so->combine.body, cs);
      }
      check_segbinds(so->body, inner);
      return;
    }
    if (auto* b = e->as<BinOpE>()) {
      check_segbinds(b->lhs, scope);
      check_segbinds(b->rhs, scope);
    } else if (auto* u = e->as<UnOpE>()) {
      check_segbinds(u->e, scope);
    } else if (auto* i = e->as<IfE>()) {
      check_segbinds(i->cond, scope);
      check_segbinds(i->then_e, scope);
      check_segbinds(i->else_e, scope);
    } else if (auto* l = e->as<LetE>()) {
      check_segbinds(l->rhs, scope);
      std::set<std::string> s2 = scope;
      s2.insert(l->vars.begin(), l->vars.end());
      check_segbinds(l->body, std::move(s2));
    } else if (auto* lp = e->as<LoopE>()) {
      for (const auto& x : lp->inits) check_segbinds(x, scope);
      check_segbinds(lp->count, scope);
      std::set<std::string> s2 = scope;
      s2.insert(lp->params.begin(), lp->params.end());
      s2.insert(lp->ivar);
      check_segbinds(lp->body, std::move(s2));
    } else if (auto* t = e->as<TupleE>()) {
      for (const auto& x : t->elems) check_segbinds(x, scope);
    } else if (auto* rp = e->as<ReplicateE>()) {
      check_segbinds(rp->elem, scope);
    } else if (auto* ra = e->as<RearrangeE>()) {
      check_segbinds(ra->e, scope);
    } else if (auto* ix = e->as<IndexE>()) {
      check_segbinds(ix->arr, scope);
      for (const auto& x : ix->idxs) check_segbinds(x, scope);
    } else if (auto* m = e->as<MapE>()) {
      for (const auto& x : m->arrays) check_segbinds(x, scope);
      check_segbinds(m->f.body, with_params(scope, m->f.params));
    } else if (auto* r = e->as<ReduceE>()) {
      soac_lambda(r->neutral, r->arrays, r->op, scope);
    } else if (auto* s = e->as<ScanE>()) {
      soac_lambda(s->neutral, s->arrays, s->op, scope);
    } else if (auto* rm = e->as<RedomapE>()) {
      soac_lambda(rm->neutral, rm->arrays, rm->red, scope);
      check_segbinds(rm->mapf.body, with_params(scope, rm->mapf.params));
    } else if (auto* sm = e->as<ScanomapE>()) {
      soac_lambda(sm->neutral, sm->arrays, sm->red, scope);
      check_segbinds(sm->mapf.body, with_params(scope, sm->mapf.params));
    }
    // VarE / ConstE / IotaE / ThresholdCmpE: nothing to resolve here (plain
    // unbound variables are the types check's job).
  }

  static std::set<std::string> with_params(const std::set<std::string>& scope,
                                           const std::vector<Param>& ps) {
    std::set<std::string> out = scope;
    for (const auto& p : ps) out.insert(p.name);
    return out;
  }

  void soac_lambda(const std::vector<ExprP>& neutral,
                   const std::vector<ExprP>& arrays, const Lambda& op,
                   const std::set<std::string>& scope) const {
    for (const auto& x : neutral) check_segbinds(x, scope);
    for (const auto& x : arrays) check_segbinds(x, scope);
    check_segbinds(op.body, with_params(scope, op.params));
  }
};

}  // namespace

void verify_program(const Program& p, const std::string& context,
                    const VerifyOptions& opts) {
  Verifier v{context};
  if (opts.types) {
    try {
      typecheck_program(p);
    } catch (const VerifyError&) {
      throw;
    } catch (const CompilerError& e) {
      throw VerifyError("types", context, e.what());
    }
  }
  if (opts.levels) {
    try {
      check_level_discipline(p.body);
    } catch (const CompilerError& e) {
      throw VerifyError("levels", context, e.what());
    }
  }
  if (opts.guards) v.check_guards(p.body, false);
  if (opts.segbinds) {
    std::set<std::string> scope;
    for (const auto& in : p.inputs) scope.insert(in.name);
    for (const auto& sp : p.size_params()) scope.insert(sp);
    v.check_segbinds(p.body, std::move(scope));
  }
}

}  // namespace incflat
