#include "src/ir/verify.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/ir/print.h"
#include "src/ir/traverse.h"
#include "src/ir/typecheck.h"

namespace incflat {

namespace {

std::string render(const std::vector<Diagnostic>& ds) {
  // First line keeps the historical single-violation format; further
  // findings are appended one per line so what() carries the full list.
  std::string s = "verification failed (" + ds.front().check + ") " +
                  ds.front().context + ": " + ds.front().message;
  if (ds.size() > 1) {
    s += "\n  ... " + std::to_string(ds.size() - 1) + " more finding(s):";
    for (size_t i = 1; i < ds.size(); ++i) s += "\n  " + ds[i].str();
  }
  return s;
}

std::string segop_label(const SegOpE& so) {
  const char* kind = so.op == SegOpE::Op::Map
                         ? "segmap"
                         : so.op == SegOpE::Op::Red ? "segred" : "segscan";
  return std::string(kind) + "^" + std::to_string(so.level);
}

struct Verifier {
  const std::string& context;
  std::vector<Diagnostic>& out;

  void note(const char* check, const std::string& at,
            const std::string& detail, const ExprP& site) const {
    Diagnostic d;
    d.severity = Severity::Error;
    d.check = check;
    d.context = context;
    d.path = at;
    d.message = detail;
    if (site) d.message += "\n  in: " + pretty(site).substr(0, 300);
    out.push_back(std::move(d));
  }

  // -- guards ---------------------------------------------------------------

  /// `fit_guarded` is true while inside the then-arm of a guard whose
  /// comparison carries a workgroup-fit bound; only there may intra-group
  /// versions appear, because every other position is reachable when the
  /// inner parallelism does not fit the device's workgroups.
  void check_guards(const ExprP& e, bool fit_guarded,
                    const std::string& at) const {
    if (!e) return;
    if (auto* i = e->as<IfE>()) {
      if (auto* tc = i->cond->as<ThresholdCmpE>()) {
        check_guards(i->then_e, fit_guarded || !tc->fit.alts.empty(),
                     at + ".then");
        check_guards(i->else_e, fit_guarded, at + ".else");
        return;
      }
      check_guards(i->cond, fit_guarded, at + ".cond");
      check_guards(i->then_e, fit_guarded, at + ".then");
      check_guards(i->else_e, fit_guarded, at + ".else");
      return;
    }
    if (e->is<ThresholdCmpE>()) {
      note("guards", at, "threshold comparison outside an if-condition", e);
      return;
    }
    if (auto* so = e->as<SegOpE>()) {
      const std::string here = at + "." + segop_label(*so);
      if (!fit_guarded && so->level >= 1 && count_segops(so->body) > 0) {
        note("guards", here,
             "intra-group version (level-" + std::to_string(so->level) +
                 " seg-op with parallel body) reachable without a "
                 "workgroup-fit guard: no feasible fallback arm",
             e);
      }
      check_guards(so->body, fit_guarded, here + ".body");
      for (const auto& n : so->neutral) {
        check_guards(n, fit_guarded, here + ".neutral");
      }
      if (so->op != SegOpE::Op::Map) {
        check_guards(so->combine.body, fit_guarded, here + ".combine");
      }
      return;
    }
    if (auto* b = e->as<BinOpE>()) {
      check_guards(b->lhs, fit_guarded, at);
      check_guards(b->rhs, fit_guarded, at);
    } else if (auto* u = e->as<UnOpE>()) {
      check_guards(u->e, fit_guarded, at);
    } else if (auto* l = e->as<LetE>()) {
      const std::string v = l->vars.empty() ? std::string("_") : l->vars[0];
      check_guards(l->rhs, fit_guarded, at + "." + v + "=");
      check_guards(l->body, fit_guarded, at);
    } else if (auto* lp = e->as<LoopE>()) {
      for (const auto& x : lp->inits) check_guards(x, fit_guarded, at);
      check_guards(lp->count, fit_guarded, at);
      check_guards(lp->body, fit_guarded, at + ".loop");
    } else if (auto* t = e->as<TupleE>()) {
      for (size_t i = 0; i < t->elems.size(); ++i) {
        check_guards(t->elems[i], fit_guarded,
                     at + "[" + std::to_string(i) + "]");
      }
    } else if (auto* rp = e->as<ReplicateE>()) {
      check_guards(rp->elem, fit_guarded, at);
    } else if (auto* ra = e->as<RearrangeE>()) {
      check_guards(ra->e, fit_guarded, at);
    } else if (auto* ix = e->as<IndexE>()) {
      check_guards(ix->arr, fit_guarded, at);
      for (const auto& x : ix->idxs) check_guards(x, fit_guarded, at);
    } else if (auto* m = e->as<MapE>()) {
      for (const auto& x : m->arrays) check_guards(x, fit_guarded, at);
      check_guards(m->f.body, fit_guarded, at + ".map");
    } else if (auto* r = e->as<ReduceE>()) {
      for (const auto& x : r->neutral) check_guards(x, fit_guarded, at);
      for (const auto& x : r->arrays) check_guards(x, fit_guarded, at);
      check_guards(r->op.body, fit_guarded, at + ".reduce");
    } else if (auto* s = e->as<ScanE>()) {
      for (const auto& x : s->neutral) check_guards(x, fit_guarded, at);
      for (const auto& x : s->arrays) check_guards(x, fit_guarded, at);
      check_guards(s->op.body, fit_guarded, at + ".scan");
    } else if (auto* rm = e->as<RedomapE>()) {
      for (const auto& x : rm->neutral) check_guards(x, fit_guarded, at);
      for (const auto& x : rm->arrays) check_guards(x, fit_guarded, at);
      check_guards(rm->red.body, fit_guarded, at + ".redomap");
      check_guards(rm->mapf.body, fit_guarded, at + ".redomap");
    } else if (auto* sm = e->as<ScanomapE>()) {
      for (const auto& x : sm->neutral) check_guards(x, fit_guarded, at);
      for (const auto& x : sm->arrays) check_guards(x, fit_guarded, at);
      check_guards(sm->red.body, fit_guarded, at + ".scanomap");
      check_guards(sm->mapf.body, fit_guarded, at + ".scanomap");
    }
    // VarE / ConstE / IotaE: leaves.
  }

  // -- segbinds -------------------------------------------------------------

  /// Scope-tracking walk: `scope` holds every name bound at this point.
  /// For each seg-op, each level's source arrays must resolve to the scope
  /// extended with the params of strictly outer levels of the same space.
  void check_segbinds(const ExprP& e, std::set<std::string> scope,
                      const std::string& at) const {
    if (!e) return;
    if (auto* so = e->as<SegOpE>()) {
      const std::string here = at + "." + segop_label(*so);
      std::set<std::string> inner = scope;
      std::set<std::string> space_params;
      for (size_t lvl = 0; lvl < so->space.size(); ++lvl) {
        const SegBind& b = so->space[lvl];
        if (b.params.size() != b.arrays.size()) {
          note("segbinds", here,
               "seg-space level " + std::to_string(lvl) + " binds " +
                   std::to_string(b.params.size()) + " params to " +
                   std::to_string(b.arrays.size()) + " arrays",
               e);
          continue;  // arity is broken; pairwise checks would misfire
        }
        for (const auto& a : b.arrays) {
          if (!inner.count(a)) {
            note("segbinds", here,
                 "dangling seg-space binding: array '" + a +
                     "' is not bound by an enclosing binder or an outer "
                     "level of this space",
                 e);
          }
        }
        for (const auto& p : b.params) {
          if (!space_params.insert(p).second) {
            note("segbinds", here,
                 "seg-space binds parameter '" + p + "' twice", e);
          }
          inner.insert(p);
        }
      }
      for (const auto& n : so->neutral) {
        check_segbinds(n, scope, here + ".neutral");
      }
      if (so->op != SegOpE::Op::Map) {
        std::set<std::string> cs = inner;
        for (const auto& p : so->combine.params) cs.insert(p.name);
        check_segbinds(so->combine.body, cs, here + ".combine");
      }
      check_segbinds(so->body, inner, here + ".body");
      return;
    }
    if (auto* b = e->as<BinOpE>()) {
      check_segbinds(b->lhs, scope, at);
      check_segbinds(b->rhs, scope, at);
    } else if (auto* u = e->as<UnOpE>()) {
      check_segbinds(u->e, scope, at);
    } else if (auto* i = e->as<IfE>()) {
      check_segbinds(i->cond, scope, at + ".cond");
      check_segbinds(i->then_e, scope, at + ".then");
      check_segbinds(i->else_e, scope, at + ".else");
    } else if (auto* l = e->as<LetE>()) {
      const std::string v = l->vars.empty() ? std::string("_") : l->vars[0];
      check_segbinds(l->rhs, scope, at + "." + v + "=");
      std::set<std::string> s2 = scope;
      s2.insert(l->vars.begin(), l->vars.end());
      check_segbinds(l->body, std::move(s2), at);
    } else if (auto* lp = e->as<LoopE>()) {
      for (const auto& x : lp->inits) check_segbinds(x, scope, at);
      check_segbinds(lp->count, scope, at);
      std::set<std::string> s2 = scope;
      s2.insert(lp->params.begin(), lp->params.end());
      s2.insert(lp->ivar);
      check_segbinds(lp->body, std::move(s2), at + ".loop");
    } else if (auto* t = e->as<TupleE>()) {
      for (size_t i = 0; i < t->elems.size(); ++i) {
        check_segbinds(t->elems[i], scope, at + "[" + std::to_string(i) + "]");
      }
    } else if (auto* rp = e->as<ReplicateE>()) {
      check_segbinds(rp->elem, scope, at);
    } else if (auto* ra = e->as<RearrangeE>()) {
      check_segbinds(ra->e, scope, at);
    } else if (auto* ix = e->as<IndexE>()) {
      check_segbinds(ix->arr, scope, at);
      for (const auto& x : ix->idxs) check_segbinds(x, scope, at);
    } else if (auto* m = e->as<MapE>()) {
      for (const auto& x : m->arrays) check_segbinds(x, scope, at);
      check_segbinds(m->f.body, with_params(scope, m->f.params), at + ".map");
    } else if (auto* r = e->as<ReduceE>()) {
      soac_lambda(r->neutral, r->arrays, r->op, scope, at + ".reduce");
    } else if (auto* s = e->as<ScanE>()) {
      soac_lambda(s->neutral, s->arrays, s->op, scope, at + ".scan");
    } else if (auto* rm = e->as<RedomapE>()) {
      soac_lambda(rm->neutral, rm->arrays, rm->red, scope, at + ".redomap");
      check_segbinds(rm->mapf.body, with_params(scope, rm->mapf.params),
                     at + ".redomap");
    } else if (auto* sm = e->as<ScanomapE>()) {
      soac_lambda(sm->neutral, sm->arrays, sm->red, scope, at + ".scanomap");
      check_segbinds(sm->mapf.body, with_params(scope, sm->mapf.params),
                     at + ".scanomap");
    }
    // VarE / ConstE / IotaE / ThresholdCmpE: nothing to resolve here (plain
    // unbound variables are the types check's job).
  }

  static std::set<std::string> with_params(const std::set<std::string>& scope,
                                           const std::vector<Param>& ps) {
    std::set<std::string> out = scope;
    for (const auto& p : ps) out.insert(p.name);
    return out;
  }

  void soac_lambda(const std::vector<ExprP>& neutral,
                   const std::vector<ExprP>& arrays, const Lambda& op,
                   const std::set<std::string>& scope,
                   const std::string& at) const {
    for (const auto& x : neutral) check_segbinds(x, scope, at);
    for (const auto& x : arrays) check_segbinds(x, scope, at);
    check_segbinds(op.body, with_params(scope, op.params), at);
  }
};

}  // namespace

VerifyError::VerifyError(std::string check, std::string context,
                         const std::string& detail)
    : VerifyError(std::vector<Diagnostic>{Diagnostic{
          Severity::Error, std::move(check), std::move(context), "",
          detail}}) {}

VerifyError::VerifyError(std::vector<Diagnostic> diags)
    : CompilerError(render(diags)), diags_(std::move(diags)) {}

std::vector<Diagnostic> verify_diagnostics(const Program& p,
                                           const std::string& context,
                                           const VerifyOptions& opts) {
  std::vector<Diagnostic> ds;
  Verifier v{context, ds};
  if (opts.types) {
    // The type checker is fail-fast, so this check contributes at most one
    // diagnostic; the structural checks below still run on an ill-typed
    // program (they never consult types).
    try {
      typecheck_program(p);
    } catch (const CompilerError& e) {
      ds.push_back(
          Diagnostic{Severity::Error, "types", context, "", e.what()});
    }
  }
  if (opts.levels) {
    try {
      check_level_discipline(p.body);
    } catch (const CompilerError& e) {
      ds.push_back(
          Diagnostic{Severity::Error, "levels", context, "", e.what()});
    }
  }
  if (opts.guards) v.check_guards(p.body, false, "body");
  if (opts.segbinds) {
    std::set<std::string> scope;
    for (const auto& in : p.inputs) scope.insert(in.name);
    for (const auto& sp : p.size_params()) scope.insert(sp);
    v.check_segbinds(p.body, std::move(scope), "body");
  }
  return ds;
}

void verify_program(const Program& p, const std::string& context,
                    const VerifyOptions& opts) {
  std::vector<Diagnostic> ds = verify_diagnostics(p, context, opts);
  if (!ds.empty()) throw VerifyError(std::move(ds));
}

}  // namespace incflat
