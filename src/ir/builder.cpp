#include "src/ir/builder.h"

namespace incflat::ib {

ExprP var(const std::string& name) { return mk(VarE{name}); }

ExprP ci64(int64_t v) { return mk(ConstE{Scalar::I64, v, 0.0}); }
ExprP ci32(int64_t v) { return mk(ConstE{Scalar::I32, v, 0.0}); }
ExprP cf32(double v) { return mk(ConstE{Scalar::F32, 0, v}); }
ExprP cf64(double v) { return mk(ConstE{Scalar::F64, 0, v}); }
ExprP cbool(bool v) { return mk(ConstE{Scalar::Bool, v ? 1 : 0, 0.0}); }

ExprP bin(const std::string& op, ExprP a, ExprP b) {
  return mk(BinOpE{op, std::move(a), std::move(b)});
}
ExprP add(ExprP a, ExprP b) { return bin("+", std::move(a), std::move(b)); }
ExprP sub(ExprP a, ExprP b) { return bin("-", std::move(a), std::move(b)); }
ExprP mul(ExprP a, ExprP b) { return bin("*", std::move(a), std::move(b)); }
ExprP divide(ExprP a, ExprP b) { return bin("/", std::move(a), std::move(b)); }
ExprP min_(ExprP a, ExprP b) { return bin("min", std::move(a), std::move(b)); }
ExprP max_(ExprP a, ExprP b) { return bin("max", std::move(a), std::move(b)); }
ExprP lt(ExprP a, ExprP b) { return bin("<", std::move(a), std::move(b)); }
ExprP le(ExprP a, ExprP b) { return bin("<=", std::move(a), std::move(b)); }
ExprP eq(ExprP a, ExprP b) { return bin("==", std::move(a), std::move(b)); }

ExprP un(const std::string& op, ExprP e) { return mk(UnOpE{op, std::move(e)}); }
ExprP exp_(ExprP e) { return un("exp", std::move(e)); }
ExprP sqrt_(ExprP e) { return un("sqrt", std::move(e)); }
ExprP abs_(ExprP e) { return un("abs", std::move(e)); }
ExprP neg(ExprP e) { return un("neg", std::move(e)); }

ExprP iff(ExprP c, ExprP t, ExprP f) {
  return mk(IfE{std::move(c), std::move(t), std::move(f)});
}

ExprP let1(const std::string& v, ExprP rhs, ExprP body) {
  return mk(LetE{{v}, std::move(rhs), std::move(body)});
}

ExprP letn(std::vector<std::string> vs, ExprP rhs, ExprP body) {
  return mk(LetE{std::move(vs), std::move(rhs), std::move(body)});
}

ExprP loop(std::vector<std::string> params, std::vector<ExprP> inits,
           const std::string& ivar, ExprP count, ExprP body) {
  return mk(LoopE{std::move(params), std::move(inits), ivar, std::move(count),
                  std::move(body)});
}

Param p(const std::string& name, Type t) { return Param{name, std::move(t)}; }

Lambda lam(std::vector<Param> params, ExprP body) {
  return Lambda{std::move(params), std::move(body)};
}

Lambda binlam(const std::string& op, Scalar t) {
  return lam({p("_x", Type::scalar(t)), p("_y", Type::scalar(t))},
             bin(op, var("_x"), var("_y")));
}

ExprP map(Lambda f, std::vector<ExprP> arrays) {
  return mk(MapE{std::move(f), std::move(arrays)});
}

ExprP map1(Lambda f, ExprP array) {
  return map(std::move(f), {std::move(array)});
}

ExprP reduce(Lambda op, std::vector<ExprP> neutral,
             std::vector<ExprP> arrays) {
  return mk(ReduceE{std::move(op), std::move(neutral), std::move(arrays)});
}

ExprP scan(Lambda op, std::vector<ExprP> neutral, std::vector<ExprP> arrays) {
  return mk(ScanE{std::move(op), std::move(neutral), std::move(arrays)});
}

ExprP redomap(Lambda red, Lambda mapf, std::vector<ExprP> neutral,
              std::vector<ExprP> arrays) {
  return mk(RedomapE{std::move(red), std::move(mapf), std::move(neutral),
                     std::move(arrays)});
}

ExprP scanomap(Lambda red, Lambda mapf, std::vector<ExprP> neutral,
               std::vector<ExprP> arrays) {
  return mk(ScanomapE{std::move(red), std::move(mapf), std::move(neutral),
                      std::move(arrays)});
}

ExprP replicate(Dim count, ExprP e) {
  return mk(ReplicateE{std::move(count), std::move(e)});
}

ExprP rearrange(std::vector<int> perm, ExprP e) {
  return mk(RearrangeE{std::move(perm), std::move(e)});
}

ExprP transpose(ExprP e) { return rearrange({1, 0}, std::move(e)); }

ExprP iota(Dim count) { return mk(IotaE{std::move(count)}); }

ExprP index(ExprP arr, std::vector<ExprP> idxs) {
  return mk(IndexE{std::move(arr), std::move(idxs)});
}

ExprP tuple(std::vector<ExprP> elems) { return mk(TupleE{std::move(elems)}); }

std::string NameGen::fresh(const std::string& base) {
  return base + "_" + std::to_string(++counter_);
}

}  // namespace incflat::ib
