#include "src/ir/typecheck.h"

#include <algorithm>

#include "src/ir/print.h"
#include "src/ir/traverse.h"
#include "src/support/error.h"
#include "src/support/str.h"

namespace incflat {

namespace {

[[noreturn]] void type_fail(const std::string& what, const ExprP& e) {
  INCFLAT_FAIL("type error: " + what + "\n  in: " + pretty(e).substr(0, 400));
}

struct Checker {
  // Re-annotate a list of expressions, each required to have one result.
  std::vector<ExprP> check_each(const std::vector<ExprP>& es,
                                const TypeEnv& env, std::vector<Type>* tys) {
    std::vector<ExprP> out;
    for (const auto& e : es) {
      ExprP a = check(e, env);
      if (a->types.size() != 1) type_fail("expected single-result operand", e);
      if (tys) tys->push_back(a->type());
      out.push_back(a);
    }
    return out;
  }

  // Check a lambda against given parameter types; returns annotated lambda
  // and its result types.
  Lambda check_lambda(const Lambda& l, const std::vector<Type>& param_tys,
                      const TypeEnv& env, std::vector<Type>* result_tys) {
    if (l.params.size() != param_tys.size()) {
      INCFLAT_FAIL("lambda arity mismatch: has " +
                   std::to_string(l.params.size()) + " params, applied to " +
                   std::to_string(param_tys.size()) + " values");
    }
    TypeEnv env2 = env;
    Lambda out;
    out.params = l.params;
    for (size_t i = 0; i < l.params.size(); ++i) {
      out.params[i].type = param_tys[i];
      env2[l.params[i].name] = param_tys[i];
    }
    out.body = check(l.body, env2);
    if (result_tys) *result_tys = out.body->types;
    return out;
  }

  // Types of lambda results for a reduction operator over element types tys:
  // op : tys -> tys -> tys.
  Lambda check_reduce_op(const Lambda& op, const std::vector<Type>& tys,
                         const TypeEnv& env, const ExprP& site) {
    std::vector<Type> double_tys = tys;
    double_tys.insert(double_tys.end(), tys.begin(), tys.end());
    std::vector<Type> res;
    Lambda out = check_lambda(op, double_tys, env, &res);
    if (res != tys) {
      type_fail("reduction operator result types do not match element types",
                site);
    }
    return out;
  }

  void require_equal_outer(const std::vector<Type>& arr_tys, const ExprP& e,
                           Dim* outer) {
    if (arr_tys.empty()) type_fail("SOAC with no arrays", e);
    for (const auto& t : arr_tys) {
      if (t.rank() < 1) type_fail("SOAC over non-array operand", e);
      if (t.shape[0] != arr_tys[0].shape[0]) {
        type_fail("SOAC arrays disagree on outer dimension (" +
                      t.shape[0].str() + " vs " + arr_tys[0].shape[0].str() +
                      ")",
                  e);
      }
    }
    *outer = arr_tys[0].shape[0];
  }

  std::vector<Type> rows_of(const std::vector<Type>& arr_tys) {
    std::vector<Type> out;
    for (const auto& t : arr_tys) out.push_back(t.row());
    return out;
  }

  ExprP check(const ExprP& e, const TypeEnv& env) {
    if (!e) INCFLAT_FAIL("null expression");

    if (auto* v = e->as<VarE>()) {
      auto it = env.find(v->name);
      if (it == env.end()) type_fail("unbound variable " + v->name, e);
      return mk(*v, {it->second});
    }

    if (auto* c = e->as<ConstE>()) {
      return mk(*c, {Type::scalar(c->tag)});
    }

    if (auto* b = e->as<BinOpE>()) {
      ExprP l = check(b->lhs, env), r = check(b->rhs, env);
      if (l->types.size() != 1 || r->types.size() != 1) {
        type_fail("binop on tuple", e);
      }
      const Type &tl = l->type(), &tr = r->type();
      if (!tl.is_scalar() || !tr.is_scalar() || tl.elem != tr.elem) {
        type_fail("binop '" + b->op + "' operand mismatch: " + tl.str() +
                      " vs " + tr.str(),
                  e);
      }
      Type res = tl;
      if (b->op == "<" || b->op == "<=" || b->op == "==") {
        res = Type::scalar(Scalar::Bool);
      } else if (b->op == "&&" || b->op == "||") {
        if (tl.elem != Scalar::Bool) type_fail("logic op on non-bool", e);
        res = Type::scalar(Scalar::Bool);
      } else if (b->op == "+" || b->op == "-" || b->op == "*" ||
                 b->op == "/" || b->op == "min" || b->op == "max" ||
                 b->op == "pow" || b->op == "%") {
        if (tl.elem == Scalar::Bool) type_fail("arith on bool", e);
      } else {
        type_fail("unknown binop '" + b->op + "'", e);
      }
      return mk(BinOpE{b->op, l, r}, {res});
    }

    if (auto* u = e->as<UnOpE>()) {
      ExprP x = check(u->e, env);
      if (x->types.size() != 1 || !x->type().is_scalar()) {
        type_fail("unop on non-scalar", e);
      }
      Scalar s = x->type().elem;
      Type res = x->type();
      if (u->op == "!") {
        if (s != Scalar::Bool) type_fail("! on non-bool", e);
      } else if (u->op == "i2f") {
        if (!scalar_is_int(s)) type_fail("i2f on non-int", e);
        res = Type::scalar(Scalar::F32);
      } else if (u->op == "i2f64") {
        if (!scalar_is_int(s)) type_fail("i2f64 on non-int", e);
        res = Type::scalar(Scalar::F64);
      } else if (u->op == "f2i") {
        if (!scalar_is_float(s)) type_fail("f2i on non-float", e);
        res = Type::scalar(Scalar::I64);
      } else if (u->op == "exp" || u->op == "log" || u->op == "sqrt") {
        if (!scalar_is_float(s)) type_fail(u->op + " on non-float", e);
      } else if (u->op == "neg" || u->op == "abs") {
        if (s == Scalar::Bool) type_fail(u->op + " on bool", e);
      } else {
        type_fail("unknown unop '" + u->op + "'", e);
      }
      return mk(UnOpE{u->op, x}, {res});
    }

    if (auto* i = e->as<IfE>()) {
      ExprP c = check(i->cond, env);
      if (c->types.size() != 1 || c->type() != Type::scalar(Scalar::Bool)) {
        type_fail("if condition must be bool", e);
      }
      ExprP t = check(i->then_e, env), f = check(i->else_e, env);
      if (t->types != f->types) type_fail("if branches disagree on type", e);
      return mk(IfE{c, t, f}, t->types);
    }

    if (auto* l = e->as<LetE>()) {
      ExprP rhs = check(l->rhs, env);
      if (rhs->types.size() != l->vars.size()) {
        type_fail("let binds " + std::to_string(l->vars.size()) +
                      " names but rhs has " +
                      std::to_string(rhs->types.size()) + " results",
                  e);
      }
      TypeEnv env2 = env;
      for (size_t i2 = 0; i2 < l->vars.size(); ++i2) {
        env2[l->vars[i2]] = rhs->types[i2];
      }
      ExprP body = check(l->body, env2);
      return mk(LetE{l->vars, rhs, body}, body->types);
    }

    if (auto* lp = e->as<LoopE>()) {
      std::vector<Type> ptys;
      std::vector<ExprP> inits = check_each(lp->inits, env, &ptys);
      if (inits.size() != lp->params.size()) {
        type_fail("loop param/init arity mismatch", e);
      }
      ExprP count = check(lp->count, env);
      if (!count->type().is_scalar() || !scalar_is_int(count->type().elem)) {
        type_fail("loop count must be an integer scalar", e);
      }
      TypeEnv env2 = env;
      for (size_t i2 = 0; i2 < lp->params.size(); ++i2) {
        env2[lp->params[i2]] = ptys[i2];
      }
      env2[lp->ivar] = Type::scalar(Scalar::I64);
      ExprP body = check(lp->body, env2);
      if (body->types != ptys) {
        type_fail("loop body results do not match loop parameter types", e);
      }
      return mk(LoopE{lp->params, inits, lp->ivar, count, body}, ptys);
    }

    if (auto* m = e->as<MapE>()) {
      std::vector<Type> atys;
      std::vector<ExprP> arrays = check_each(m->arrays, env, &atys);
      Dim outer;
      require_equal_outer(atys, e, &outer);
      std::vector<Type> rtys;
      Lambda f = check_lambda(m->f, rows_of(atys), env, &rtys);
      std::vector<Type> out;
      for (const auto& t : rtys) out.push_back(t.expand({outer}));
      return mk(MapE{f, arrays}, out);
    }

    if (auto* r = e->as<ReduceE>()) {
      std::vector<Type> atys, ntys;
      std::vector<ExprP> arrays = check_each(r->arrays, env, &atys);
      std::vector<ExprP> neutral = check_each(r->neutral, env, &ntys);
      Dim outer;
      require_equal_outer(atys, e, &outer);
      std::vector<Type> etys = rows_of(atys);
      if (ntys != etys) type_fail("reduce neutral/element type mismatch", e);
      Lambda op = check_reduce_op(r->op, etys, env, e);
      return mk(ReduceE{op, neutral, arrays}, etys);
    }

    if (auto* s = e->as<ScanE>()) {
      std::vector<Type> atys, ntys;
      std::vector<ExprP> arrays = check_each(s->arrays, env, &atys);
      std::vector<ExprP> neutral = check_each(s->neutral, env, &ntys);
      Dim outer;
      require_equal_outer(atys, e, &outer);
      std::vector<Type> etys = rows_of(atys);
      if (ntys != etys) type_fail("scan neutral/element type mismatch", e);
      Lambda op = check_reduce_op(s->op, etys, env, e);
      std::vector<Type> out;
      for (const auto& t : etys) out.push_back(t.expand({outer}));
      return mk(ScanE{op, neutral, arrays}, out);
    }

    if (auto* rm = e->as<RedomapE>()) {
      std::vector<Type> atys, ntys;
      std::vector<ExprP> arrays = check_each(rm->arrays, env, &atys);
      std::vector<ExprP> neutral = check_each(rm->neutral, env, &ntys);
      Dim outer;
      require_equal_outer(atys, e, &outer);
      std::vector<Type> mtys;
      Lambda mapf = check_lambda(rm->mapf, rows_of(atys), env, &mtys);
      if (ntys != mtys) type_fail("redomap neutral/map-result mismatch", e);
      Lambda red = check_reduce_op(rm->red, mtys, env, e);
      return mk(RedomapE{red, mapf, neutral, arrays}, mtys);
    }

    if (auto* sm = e->as<ScanomapE>()) {
      std::vector<Type> atys, ntys;
      std::vector<ExprP> arrays = check_each(sm->arrays, env, &atys);
      std::vector<ExprP> neutral = check_each(sm->neutral, env, &ntys);
      Dim outer;
      require_equal_outer(atys, e, &outer);
      std::vector<Type> mtys;
      Lambda mapf = check_lambda(sm->mapf, rows_of(atys), env, &mtys);
      if (ntys != mtys) type_fail("scanomap neutral/map-result mismatch", e);
      Lambda red = check_reduce_op(sm->red, mtys, env, e);
      std::vector<Type> out;
      for (const auto& t : mtys) out.push_back(t.expand({outer}));
      return mk(ScanomapE{red, mapf, neutral, arrays}, out);
    }

    if (auto* rp = e->as<ReplicateE>()) {
      ExprP x = check(rp->elem, env);
      if (x->types.size() != 1) type_fail("replicate of tuple", e);
      return mk(ReplicateE{rp->count, x}, {x->type().expand({rp->count})});
    }

    if (auto* ra = e->as<RearrangeE>()) {
      ExprP x = check(ra->e, env);
      const Type& t = x->type();
      if (static_cast<int>(ra->perm.size()) != t.rank()) {
        type_fail("rearrange permutation rank mismatch", e);
      }
      std::vector<int> sorted = ra->perm;
      std::sort(sorted.begin(), sorted.end());
      for (int k = 0; k < static_cast<int>(sorted.size()); ++k) {
        if (sorted[k] != k) type_fail("rearrange: not a permutation", e);
      }
      std::vector<Dim> shape;
      for (int k : ra->perm) shape.push_back(t.shape[static_cast<size_t>(k)]);
      return mk(RearrangeE{ra->perm, x}, {Type(t.elem, shape)});
    }

    if (auto* io = e->as<IotaE>()) {
      return mk(*io, {Type::array(Scalar::I64, {io->count})});
    }

    if (auto* ix = e->as<IndexE>()) {
      ExprP arr = check(ix->arr, env);
      const Type& t = arr->type();
      if (static_cast<int>(ix->idxs.size()) > t.rank()) {
        type_fail("index rank exceeds array rank", e);
      }
      std::vector<Type> itys;
      std::vector<ExprP> idxs = check_each(ix->idxs, env, &itys);
      for (const auto& it : itys) {
        if (!it.is_scalar() || !scalar_is_int(it.elem)) {
          type_fail("non-integer index", e);
        }
      }
      return mk(IndexE{arr, idxs},
                {t.peel(static_cast<int>(ix->idxs.size()))});
    }

    if (auto* t = e->as<TupleE>()) {
      std::vector<Type> tys;
      std::vector<ExprP> elems = check_each(t->elems, env, &tys);
      return mk(TupleE{elems}, tys);
    }

    if (auto* so = e->as<SegOpE>()) {
      return check_segop(*so, env, e);
    }

    if (auto* tc = e->as<ThresholdCmpE>()) {
      return mk(*tc, {Type::scalar(Scalar::Bool)});
    }

    INCFLAT_FAIL("typecheck: unhandled node");
  }

  ExprP check_segop(const SegOpE& so, const TypeEnv& env, const ExprP& e) {
    if (so.space.empty()) type_fail("seg-op with empty space", e);
    TypeEnv env2 = env;
    std::vector<Dim> dims;
    SegSpace space = so.space;
    for (auto& lvl : space) {
      if (lvl.params.size() != lvl.arrays.size()) {
        type_fail("seg-space binder arity mismatch", e);
      }
      for (size_t i = 0; i < lvl.params.size(); ++i) {
        auto it = env2.find(lvl.arrays[i]);
        if (it == env2.end()) {
          type_fail("seg-space array " + lvl.arrays[i] + " unbound", e);
        }
        const Type& at = it->second;
        if (at.rank() < 1) type_fail("seg-space over scalar", e);
        if (at.shape[0] != lvl.dim) {
          type_fail("seg-space dim mismatch for " + lvl.arrays[i] + ": " +
                        at.shape[0].str() + " vs " + lvl.dim.str(),
                    e);
        }
        env2[lvl.params[i]] = at.row();
      }
      dims.push_back(lvl.dim);
    }
    SegOpE out = so;
    out.space = space;
    out.body = check(so.body, env2);
    const std::vector<Type>& btys = out.body->types;

    std::vector<Type> result;
    if (so.op == SegOpE::Op::Map) {
      for (const auto& t : btys) result.push_back(t.expand(dims));
    } else {
      std::vector<Type> ntys;
      out.neutral = check_each(so.neutral, env, &ntys);
      if (ntys != btys) {
        type_fail("seg-red/scan neutral/body type mismatch", e);
      }
      out.combine = check_reduce_op(so.combine, btys, env2, e);
      if (so.op == SegOpE::Op::Red) {
        // The innermost level is reduced away.
        std::vector<Dim> outer(dims.begin(), dims.end() - 1);
        for (const auto& t : btys) result.push_back(t.expand(outer));
      } else {
        for (const auto& t : btys) result.push_back(t.expand(dims));
      }
    }
    return mk(std::move(out), result);
  }
};

// Level-discipline walk: returns true if `e` contains any seg-op; checks
// that seg-ops at level l contain only seg-ops at level l-1 and that level-0
// bodies are fully sequential.
void level_walk(const ExprP& e, int enclosing);

void level_list(const std::vector<ExprP>& es, int enclosing) {
  for (const auto& x : es) level_walk(x, enclosing);
}

void level_walk(const ExprP& e, int enclosing) {
  if (!e) return;
  if (auto* so = e->as<SegOpE>()) {
    if (enclosing == -2) {
      // host level: any level allowed
    } else if (so->level != enclosing - 1) {
      INCFLAT_FAIL("level discipline violated: seg-op at level " +
                   std::to_string(so->level) +
                   " directly inside construct at level " +
                   std::to_string(enclosing));
    }
    if (so->level == 0) {
      // Body must have no parallel constructs at all.
      if (count_segops(so->body) > 0) {
        INCFLAT_FAIL("level-0 seg-op with parallel body");
      }
    } else {
      level_walk(so->body, so->level);
    }
    level_list(so->neutral, enclosing);
    return;
  }
  if (auto* b = e->as<BinOpE>()) {
    level_walk(b->lhs, enclosing);
    level_walk(b->rhs, enclosing);
  } else if (auto* u = e->as<UnOpE>()) {
    level_walk(u->e, enclosing);
  } else if (auto* i = e->as<IfE>()) {
    level_walk(i->cond, enclosing);
    level_walk(i->then_e, enclosing);
    level_walk(i->else_e, enclosing);
  } else if (auto* l = e->as<LetE>()) {
    level_walk(l->rhs, enclosing);
    level_walk(l->body, enclosing);
  } else if (auto* lp = e->as<LoopE>()) {
    level_list(lp->inits, enclosing);
    level_walk(lp->body, enclosing);
  } else if (auto* m = e->as<MapE>()) {
    level_list(m->arrays, enclosing);
    level_walk(m->f.body, enclosing);
  } else if (auto* r = e->as<ReduceE>()) {
    level_list(r->arrays, enclosing);
    level_walk(r->op.body, enclosing);
  } else if (auto* s = e->as<ScanE>()) {
    level_list(s->arrays, enclosing);
    level_walk(s->op.body, enclosing);
  } else if (auto* rm = e->as<RedomapE>()) {
    level_list(rm->arrays, enclosing);
    level_walk(rm->red.body, enclosing);
    level_walk(rm->mapf.body, enclosing);
  } else if (auto* sm = e->as<ScanomapE>()) {
    level_list(sm->arrays, enclosing);
    level_walk(sm->red.body, enclosing);
    level_walk(sm->mapf.body, enclosing);
  } else if (auto* rp = e->as<ReplicateE>()) {
    level_walk(rp->elem, enclosing);
  } else if (auto* ra = e->as<RearrangeE>()) {
    level_walk(ra->e, enclosing);
  } else if (auto* ix = e->as<IndexE>()) {
    level_walk(ix->arr, enclosing);
    level_list(ix->idxs, enclosing);
  } else if (auto* t = e->as<TupleE>()) {
    level_list(t->elems, enclosing);
  }
}

}  // namespace

ExprP typecheck_expr(const ExprP& e, const TypeEnv& env) {
  Checker c;
  return c.check(e, env);
}

Program typecheck_program(Program p) {
  TypeEnv env;
  for (const auto& in : p.inputs) env[in.name] = in.type;
  for (const auto& sp : p.size_params()) env[sp] = Type::scalar(Scalar::I64);
  p.body = typecheck_expr(p.body, env);
  return p;
}

void check_level_discipline(const ExprP& e) { level_walk(e, -2); }

}  // namespace incflat
