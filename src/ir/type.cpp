#include "src/ir/type.h"

#include <sstream>

#include "src/support/error.h"
#include "src/support/str.h"

namespace incflat {

const char* scalar_name(Scalar s) {
  switch (s) {
    case Scalar::I32: return "i32";
    case Scalar::I64: return "i64";
    case Scalar::F32: return "f32";
    case Scalar::F64: return "f64";
    case Scalar::Bool: return "bool";
  }
  return "?";
}

int scalar_bytes(Scalar s) {
  switch (s) {
    case Scalar::I32:
    case Scalar::F32: return 4;
    case Scalar::I64:
    case Scalar::F64: return 8;
    case Scalar::Bool: return 1;
  }
  return 4;
}

bool scalar_is_float(Scalar s) {
  return s == Scalar::F32 || s == Scalar::F64;
}

bool scalar_is_int(Scalar s) { return s == Scalar::I32 || s == Scalar::I64; }

Dim Dim::c(int64_t v) {
  Dim d;
  d.kind = Kind::Const;
  d.cval = v;
  return d;
}

Dim Dim::v(std::string name) {
  Dim d;
  d.kind = Kind::Var;
  d.var = std::move(name);
  return d;
}

int64_t Dim::eval(const SizeEnv& env) const {
  if (kind == Kind::Const) return cval;
  auto it = env.find(var);
  if (it == env.end()) {
    throw EvalError("unbound size variable: " + var);
  }
  return it->second;
}

bool Dim::operator==(const Dim& o) const {
  if (kind != o.kind) return false;
  return kind == Kind::Const ? cval == o.cval : var == o.var;
}

std::string Dim::str() const {
  return kind == Kind::Const ? std::to_string(cval) : var;
}

Type Type::row() const {
  INCFLAT_CHECK(rank() >= 1, "row() of scalar type");
  return Type(elem, std::vector<Dim>(shape.begin() + 1, shape.end()));
}

Type Type::peel(int n) const {
  INCFLAT_CHECK(n <= rank(), "peel() beyond rank");
  return Type(elem, std::vector<Dim>(shape.begin() + n, shape.end()));
}

Type Type::expand(const std::vector<Dim>& outer) const {
  std::vector<Dim> s = outer;
  s.insert(s.end(), shape.begin(), shape.end());
  return Type(elem, std::move(s));
}

int64_t Type::count(const SizeEnv& env) const {
  int64_t n = 1;
  for (const auto& d : shape) n *= d.eval(env);
  return n;
}

bool Type::operator==(const Type& o) const {
  return elem == o.elem && shape == o.shape;
}

std::string Type::str() const {
  std::ostringstream os;
  for (const auto& d : shape) os << "[" << d.str() << "]";
  os << scalar_name(elem);
  return os.str();
}

}  // namespace incflat
