// Symbolic size algebra for degree-of-parallelism expressions.
//
// Rule G3 guards code versions with predicates `Par(Σ') >= t_top` and
// `Par(e_middle) >= t_intra` (paper Sec. 3.2).  Par(...) is a symbolic
// expression over dataset-dependent dimensions.  A SizeProd is a product of
// dimensions; a SizeExpr is the maximum over several products (needed for
// Par(e) of a body whose branches expose different inner parallelism).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/ir/type.h"

namespace incflat {

/// Declared range of a size variable: `lo <= v` and, when `hi >= 0`, also
/// `v <= hi`.  Size variables are at least 1 even without a declaration
/// (an empty dimension makes the whole nest empty).  Bounds are *dataset
/// invariants* stated by the program author — e.g. "Heston always prices
/// 1024 paths of 32 steps" — and every evaluation/tuning dataset must
/// satisfy them.  They feed the static size analysis (src/analysis/) only;
/// program semantics never depend on them, so running a program on
/// out-of-bounds sizes still computes the right values (all guarded code
/// versions are semantically equivalent) — only version *selection* quality
/// is promised for in-bounds datasets.
struct SizeBound {
  int64_t lo = 1;
  int64_t hi = -1;  // < 0: unbounded above

  bool bounded_above() const { return hi >= 0; }
};

/// Declared bounds per size-variable name; absent names default to [1, inf).
using SizeBounds = std::map<std::string, SizeBound>;

/// Product of symbolic dimensions; the constant factors are folded eagerly.
struct SizeProd {
  int64_t konst = 1;
  std::vector<Dim> vars;  // only Kind::Var dims

  static SizeProd one() { return SizeProd{}; }
  static SizeProd of(const Dim& d);

  SizeProd& operator*=(const Dim& d);
  SizeProd& operator*=(const SizeProd& o);

  int64_t eval(const SizeEnv& env) const;
  bool is_one() const { return konst == 1 && vars.empty(); }
  std::string str() const;
  bool operator==(const SizeProd& o) const;
};

/// max over a set of products (empty set denotes the degenerate size 1).
struct SizeExpr {
  std::vector<SizeProd> alts;

  static SizeExpr one();
  static SizeExpr of(const SizeProd& p);
  static SizeExpr of(const Dim& d);

  /// Pointwise product: (max_i a_i) * p  ==  max_i (a_i * p).
  SizeExpr times(const SizeProd& p) const;

  /// Maximum of two size expressions.
  SizeExpr max_with(const SizeExpr& o) const;

  int64_t eval(const SizeEnv& env) const;
  std::string str() const;
  bool operator==(const SizeExpr& o) const;
};

}  // namespace incflat
