// The compile pipeline as named, composable passes.
//
// Each phase of compilation (fusion, A-normalisation, the mode transform
// G0–G9, dead seg-binding pruning, tiling detection, kernel-plan build) is a
// `Pass` object transforming a `PipelineState` in place.  A `PassManager`
// runs a sequence of passes, timing each one under a `pass.<name>` trace
// span and optionally verifying structural IR invariants (src/ir/verify.h)
// after every pass.  The canned pipelines reproduce the historical
// monolithic `flatten()` / `exec::compile()` behaviour exactly; custom
// sequences (e.g. `incflatc --passes=...`) can reorder, skip, or inspect.
//
// Pass registry (see make_pass / pass_names):
//
//   fusion          producer-consumer fusion (skipped if !options.fuse)
//   normalize       A-normalisation w.r.t. parallelism
//   moderate        the mode transform, one pass per mode; fills
//   incremental       state.thresholds with the guard thresholds it
//   full              creates (empty for moderate/full)
//   prune-segbinds  drop dead seg-space bindings, re-typecheck
//   tiling          mark block-tilable segmaps, check level discipline
//   simplify-guards fold guards decided by the size analysis (opt-in; see
//                     src/analysis/simplify.h), drop dead versions and
//                     their thresholds
//   plan-build      lower the target program into a KernelPlan
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/range.h"
#include "src/flatten/flatten.h"
#include "src/flatten/thresholds.h"
#include "src/ir/expr.h"
#include "src/plan/plan.h"

namespace incflat {

/// What one finished pass looked like: name, wall time, whether the
/// verifier ran (and passed) afterwards.
struct PassRecord {
  const char* name = nullptr;
  double wall_us = 0.0;
  bool verified = false;
};

/// The state a pipeline threads through its passes.  `program` starts as
/// the type-annotated source program and ends as the target program;
/// `thresholds` is filled by the mode transform; `plan` by plan-build.
struct PipelineState {
  Program program;
  FlattenMode mode = FlattenMode::Incremental;
  FlattenOptions options;
  ThresholdRegistry thresholds;
  std::shared_ptr<const KernelPlan> plan;
  std::vector<PassRecord> history;  // diagnostics, appended by PassManager
  /// Device limits consulted by simplify-guards; negative fields (the
  /// default) make every device-dependent fold rule inapplicable.
  analysis::AnalysisLimits limits;
};

/// A named pipeline stage.  `name()` and `span_name()` must return string
/// literals: trace::Span stores the pointer, not a copy.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;       // e.g. "prune-segbinds"
  virtual const char* span_name() const = 0;  // e.g. "pass.prune-segbinds"
  virtual void run(PipelineState& st) const = 0;
};

/// Look a pass up by registry name; throws CompilerError (listing the known
/// passes) on an unknown name.
std::unique_ptr<Pass> make_pass(const std::string& name);

/// Registry names accepted by make_pass, in canned-pipeline order.
std::vector<std::string> pass_names();

struct PassManagerOptions {
  /// Run verify_program after every pass (also forced by the
  /// INCFLAT_VERIFY_EACH environment variable).  Violations throw
  /// VerifyError attributed to "after pass '<name>'".
  bool verify_each = false;
  /// Observer called after each pass (and after its verification), e.g. to
  /// print intermediate IR.
  std::function<void(const Pass&, const PipelineState&)> after_pass;
};

class PassManager {
 public:
  PassManager& add(std::unique_ptr<Pass> p);
  PassManager& add(const std::string& name);  // via make_pass

  /// Run all passes in order over `st`, recording a PassRecord per pass.
  void run(PipelineState& st, const PassManagerOptions& opts = {}) const;

  const std::vector<std::unique_ptr<Pass>>& passes() const { return passes_; }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// The canned flattening pipeline for `mode`:
/// fusion, normalize, <mode>, prune-segbinds, tiling.
PassManager flatten_pipeline(FlattenMode mode);

/// flatten_pipeline plus plan-build — what exec::compile runs.  With
/// `simplify`, simplify-guards and a second prune-segbinds run between
/// tiling and plan-build (the rerun removes bindings orphaned by deleted
/// versions); without it the sequence — and hence the output — is exactly
/// the historical one.
PassManager compile_pipeline(FlattenMode mode, bool simplify = false);

}  // namespace incflat
