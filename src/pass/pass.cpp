#include "src/pass/pass.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "src/analysis/simplify.h"
#include "src/flatten/fusion.h"
#include "src/flatten/normalize.h"
#include "src/flatten/prune.h"
#include "src/flatten/tiling.h"
#include "src/flatten/transform.h"
#include "src/ir/traverse.h"
#include "src/ir/typecheck.h"
#include "src/ir/verify.h"
#include "src/support/error.h"
#include "src/support/trace.h"

namespace incflat {

namespace {

struct FusionPass final : Pass {
  const char* name() const override { return "fusion"; }
  const char* span_name() const override { return "pass.fusion"; }
  void run(PipelineState& st) const override {
    if (!st.options.fuse) return;  // Sec. 5.3 no-fusion ablation
    st.program = fuse_program(std::move(st.program));
  }
};

struct NormalizePass final : Pass {
  const char* name() const override { return "normalize"; }
  const char* span_name() const override { return "pass.normalize"; }
  void run(PipelineState& st) const override {
    st.program = normalize_program(std::move(st.program));
    if (trace::enabled()) {
      trace::count("flatten.fused_soacs", count_fused(st.program.body));
    }
  }
};

struct TransformPass final : Pass {
  explicit TransformPass(FlattenMode mode) : mode_(mode) {}
  const char* name() const override { return mode_name(mode_); }
  const char* span_name() const override {
    switch (mode_) {
      case FlattenMode::Moderate: return "pass.moderate";
      case FlattenMode::Incremental: return "pass.incremental";
      case FlattenMode::Full: return "pass.full";
    }
    return "pass.?";
  }
  void run(PipelineState& st) const override {
    TransformResult r = transform_program(st.program, mode_);
    st.mode = mode_;
    st.program.body = std::move(r.body);
    st.thresholds = std::move(r.thresholds);
  }

 private:
  FlattenMode mode_;
};

struct PruneSegbindsPass final : Pass {
  const char* name() const override { return "prune-segbinds"; }
  const char* span_name() const override { return "pass.prune-segbinds"; }
  void run(PipelineState& st) const override {
    st.program.body = prune_seg_spaces(st.program.body);
    st.program = typecheck_program(std::move(st.program));
  }
};

struct TilingPass final : Pass {
  const char* name() const override { return "tiling"; }
  const char* span_name() const override { return "pass.tiling"; }
  void run(PipelineState& st) const override {
    st.program = apply_tiling(std::move(st.program));
    // The target level discipline is part of the pipeline's contract, not
    // just an opt-in verification — always enforced, as it always was.
    check_level_discipline(st.program.body);
    if (trace::enabled()) {
      trace::count("flatten.tiled_kernels", count_tiled(st.program.body));
    }
  }
};

struct SimplifyGuardsPass final : Pass {
  const char* name() const override { return "simplify-guards"; }
  const char* span_name() const override { return "pass.simplify-guards"; }
  void run(PipelineState& st) const override {
    analysis::simplify_guards(st.program, st.thresholds, st.limits);
  }
};

struct PlanBuildPass final : Pass {
  const char* name() const override { return "plan-build"; }
  const char* span_name() const override { return "pass.plan-build"; }
  void run(PipelineState& st) const override {
    st.plan =
        std::make_shared<const KernelPlan>(build_kernel_plan(st.program));
  }
};

bool env_verify_each() {
  const char* v = std::getenv("INCFLAT_VERIFY_EACH");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

}  // namespace

std::unique_ptr<Pass> make_pass(const std::string& name) {
  if (name == "fusion") return std::make_unique<FusionPass>();
  if (name == "normalize") return std::make_unique<NormalizePass>();
  if (name == "moderate") {
    return std::make_unique<TransformPass>(FlattenMode::Moderate);
  }
  if (name == "incremental") {
    return std::make_unique<TransformPass>(FlattenMode::Incremental);
  }
  if (name == "full") {
    return std::make_unique<TransformPass>(FlattenMode::Full);
  }
  if (name == "prune-segbinds") return std::make_unique<PruneSegbindsPass>();
  if (name == "tiling") return std::make_unique<TilingPass>();
  if (name == "simplify-guards") {
    return std::make_unique<SimplifyGuardsPass>();
  }
  if (name == "plan-build") return std::make_unique<PlanBuildPass>();
  std::string known;
  for (const auto& n : pass_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  INCFLAT_FAIL("unknown pass '" + name + "' (known passes: " + known + ")");
}

std::vector<std::string> pass_names() {
  return {"fusion",         "normalize", "moderate",
          "incremental",    "full",      "prune-segbinds",
          "tiling",         "simplify-guards", "plan-build"};
}

PassManager& PassManager::add(std::unique_ptr<Pass> p) {
  passes_.push_back(std::move(p));
  return *this;
}

PassManager& PassManager::add(const std::string& name) {
  return add(make_pass(name));
}

void PassManager::run(PipelineState& st, const PassManagerOptions& opts) const {
  const bool verify_each = opts.verify_each || env_verify_each();
  for (const auto& p : passes_) {
    PassRecord rec;
    rec.name = p->name();
    const auto t0 = std::chrono::steady_clock::now();
    {
      trace::Span span(p->span_name(), "pass");
      p->run(st);
    }
    rec.wall_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (verify_each) {
      verify_program(st.program,
                     "after pass '" + std::string(p->name()) + "'");
      rec.verified = true;
    }
    st.history.push_back(rec);
    if (opts.after_pass) opts.after_pass(*p, st);
  }
}

PassManager flatten_pipeline(FlattenMode mode) {
  PassManager pm;
  pm.add("fusion").add("normalize").add(mode_name(mode));
  pm.add("prune-segbinds").add("tiling");
  return pm;
}

PassManager compile_pipeline(FlattenMode mode, bool simplify) {
  PassManager pm = flatten_pipeline(mode);
  if (simplify) {
    // The prune rerun removes seg-space bindings whose only consumer was a
    // version simplify-guards deleted (and re-typechecks).
    pm.add("simplify-guards").add("prune-segbinds");
  }
  pm.add("plan-build");
  return pm;
}

}  // namespace incflat
