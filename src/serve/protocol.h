// Wire protocol of the compile-and-serve daemon (incflatd).
//
// A connection carries a sequence of *frames* in each direction.  A frame
// is a 4-byte big-endian unsigned payload length followed by exactly that
// many bytes of UTF-8 JSON — the same length-prefix framing MoarVM's async
// socket layer uses to delimit messages on a byte stream, chosen over
// newline-delimited JSON so payloads may contain raw newlines and so a
// reader can size its buffer before parsing.  Payloads are parsed with the
// strict Json::parse: the daemon is the first internet-facing consumer of
// that parser, so framing enforces a hard payload cap *before* any bytes
// reach it (a hostile length prefix must not allocate gigabytes).
//
// Requests are JSON objects with an "op" field:
//
//   {"op":"compile","benchmark":B,"mode":M?,"device":D?}
//   {"op":"run","benchmark":B,"dataset":S,"mode":M?,"device":D?,
//    "thresholds":{name:int,...}?,"tuned":bool?}
//   {"op":"tune","benchmark":B,"mode":M?,"device":D?,"trials":N?}
//   {"op":"stats"}      {"op":"ping"}      {"op":"shutdown"}
//
// plus an optional "id" (any JSON value) echoed verbatim in the response,
// so clients that pipeline requests can match reordered responses, and an
// optional "deadline_ms" (number > 0): the end-to-end budget the client
// grants the daemon for this request, counted from the moment the frame is
// decoded.  A request still queued past its deadline is answered "timeout"
// without running; a request caught mid-execution returns "timeout" at the
// next cooperative cancellation check instead of burning its worker.
//
// Every response is an object with "ok":bool; failures carry "error"
// (message) and "code" ("bad-request" | "unknown-op" | "protocol" |
// "internal" | "run-failed" | "timeout" | "cancelled" | "overloaded" |
// "draining").  Failures the client should simply retry later — load sheds,
// deadline expiries, a draining daemon — additionally carry
// "retriable":true (see retriable_error below).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/support/json.h"

namespace incflat::serve {

/// Hard cap on a frame payload (bytes).  A length prefix above the cap is
/// a protocol error: the connection is poisoned and must be closed (the
/// stream offset can no longer be trusted).
constexpr size_t kMaxFramePayload = size_t{8} << 20;  // 8 MiB

/// Malformed framing (oversized or truncated declared length).  Distinct
/// from JsonParseError: framing errors poison the whole connection while a
/// malformed payload only fails its one request.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Wrap a payload in a length-prefixed frame.
std::string encode_frame(const std::string& payload);

/// Incremental frame decoder for a nonblocking byte stream: feed() whatever
/// chunk the socket produced, then drain complete payloads with next().
/// feed() throws ProtocolError as soon as a declared length exceeds
/// `max_payload` — before buffering the body.
class FrameReader {
 public:
  explicit FrameReader(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void feed(const char* data, size_t n);
  void feed(const std::string& bytes) { feed(bytes.data(), bytes.size()); }

  /// Move the next complete payload into *payload; false when no complete
  /// frame is buffered yet.
  bool next(std::string* payload);

  /// Bytes buffered but not yet returned (header + partial body).
  size_t pending() const { return buf_.size(); }

 private:
  size_t max_payload_;
  std::string buf_;
};

/// Error codes carried in failure responses.
namespace code {
inline constexpr const char* kBadRequest = "bad-request";
inline constexpr const char* kUnknownOp = "unknown-op";
inline constexpr const char* kProtocol = "protocol";
inline constexpr const char* kInternal = "internal";
inline constexpr const char* kRunFailed = "run-failed";
inline constexpr const char* kTimeout = "timeout";
inline constexpr const char* kCancelled = "cancelled";
/// Load shed: the daemon is over capacity (connection cap, queue cap or
/// per-connection in-flight cap).  Always retriable.
inline constexpr const char* kOverloaded = "overloaded";
/// The daemon is draining for shutdown; retry against another instance.
inline constexpr const char* kDraining = "draining";
}  // namespace code

/// A failure response: {"ok":false,"code":...,"error":...}.
Json error_response(const std::string& code, const std::string& message);

/// A *retriable* failure response: error_response plus "retriable":true —
/// the structured contract of every shed / deadline / drain outcome.  A
/// client seeing it knows the request itself was fine, the daemon just
/// could not serve it right now: back off and retry (incflat_client
/// --retries and serve_loadgen both key on this field, not on the code
/// list, so new retriable conditions need no client updates).
Json retriable_error(const std::string& code, const std::string& message);

/// True iff the parsed response is a structured retriable failure.
bool is_retriable(const Json& response);

/// Echo the request's "id" field (if any) into a response object.
void echo_id(const Json& request, Json& response);

}  // namespace incflat::serve
