#include "src/serve/server.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <sstream>
#include <utility>
#include <vector>

#include "src/autotune/autotune.h"
#include "src/autotune/journal.h"
#include "src/benchsuite/benchmark.h"
#include "src/exec/exec.h"
#include "src/exec/runtime.h"
#include "src/flatten/flatten.h"
#include "src/gpusim/device.h"
#include "src/ir/print.h"
#include "src/support/error.h"
#include "src/support/trace.h"

namespace incflat::serve {

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string hex64(uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

DeviceProfile device_from_name(const std::string& name) {
  if (name.empty() || name == "k40") return device_k40();
  if (name == "vega64") return device_vega64();
  if (name == "multicore") return device_multicore();
  throw CompilerError("unknown device '" + name +
                      "' (k40, vega64, multicore)");
}

/// Resident-byte estimate of a served entry.  Plans are in-memory object
/// graphs, not flat buffers, so this is an approximation — what matters for
/// the budget is that it is monotone in plan size and stable per key.
size_t approx_entry_bytes(const Compiled& c, bool has_runtime) {
  size_t b = 4096;  // entry fixed cost (key, runtime scaffolding)
  if (c.plan) {
    const KernelPlan& p = *c.plan;
    b += p.arena.size() * 48;
    b += p.kernels.size() * 256;
    b += p.nodes.size() * 64;
    b += p.guards.size() * 128;
    for (const auto& t : p.thresholds) b += t.size() + 32;
    // A run entry's TieredRuntime keeps a per-shape dataset cache (one
    // priced cost row per arena node) plus profile state.
    if (has_runtime) b += p.arena.size() * 16 + 1024;
  }
  return b;
}

const std::string& req_string(const Json& req, const std::string& key) {
  const Json* v = req.find(key);
  if (!v || !v->is_string())
    throw CompilerError("request field '" + key + "' must be a string");
  return v->as_string();
}

std::string opt_string(const Json& req, const std::string& key,
                       const std::string& dflt) {
  const Json* v = req.find(key);
  if (!v) return dflt;
  if (!v->is_string())
    throw CompilerError("request field '" + key + "' must be a string");
  return v->as_string();
}

}  // namespace

std::string program_key(const std::string& benchmark, const std::string& mode,
                        const std::string& device) {
  return benchmark + "|" + mode + "|" + device;
}

std::string shape_fingerprint(const std::map<std::string, int64_t>& sizes) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : sizes) {
    if (!first) os << ",";
    first = false;
    os << k << "=" << v;
  }
  return os.str();
}

/// One cache entry: the compiled plan plus — for shape-keyed run entries —
/// the tiered runtime and the batch queue.  The runtime is single-threaded
/// by design; exclusivity is the batch-leader protocol below, not a lock
/// held across execution (followers must be able to enqueue mid-batch).
struct ServerCore::ServedPlan : CacheValue {
  std::string key;
  std::string benchmark, mode, device;
  uint64_t program_hash = 0;
  Compiled compiled;
  DeviceProfile dev;
  double compile_us = 0;    // cold cost; 0 when the plan was reused
  bool plan_reused = false; // run entry adopted the program entry's plan

  // Run-entry state.
  SizeEnv sizes;
  std::unique_ptr<TieredRuntime> rt;
  FaultPlan faults;

  // Ticket fields are deliberately *not* GUARDED_BY(mu): ownership is
  // phased, not locked.  Until done flips, only the leader writes (under
  // mu); once done, only the waiting follower reads — the leader never
  // touches a finished ticket again.  The flip itself happens under mu.
  struct Ticket {
    Json req;
    Json resp;
    // The requester's deadline token (not owned; the requester's handle()
    // stack frame outlives the ticket — follower blocks on cv, leader
    // drains its own ticket).  The leader honors it per ticket: an expired
    // follower is answered "timeout" without running, and a live one's
    // token rides into the tiered runtime for mid-run cancellation.
    const CancelToken* cancel = nullptr;
    int batch = 0;  // members of the batch that answered this ticket
    bool done = false;
  };
  sync::Mutex mu{"serve.entry"};
  sync::CondVar cv;
  std::deque<std::shared_ptr<Ticket>> pending GUARDED_BY(mu);
  bool leader_active GUARDED_BY(mu) = false;
};

namespace testing {
std::atomic<void (*)()> batch_abort_hook{nullptr};
}  // namespace testing

ServerCore::ServerCore(ServeOptions opts)
    : opts_(std::move(opts)),
      fspec_(parse_fault_spec(opts_.faults)),
      cache_(opts_.cache_bytes, opts_.cache_shards),
      sched_(opts_.workers, /*promote_after_ms=*/1000.0, opts_.queue_cap) {}

ServerCore::~ServerCore() = default;

JobPriority ServerCore::priority_for(const std::string& op) {
  if (op == "compile") return JobPriority::Normal;
  if (op == "tune") return JobPriority::Low;
  // run / stats / ping / shutdown: latency-sensitive client traffic.
  return JobPriority::High;
}

RequestStats ServerCore::request_stats() const {
  sync::MutexLock lk(stats_mu_);
  return rstats_;
}

std::string ServerCore::handle_text(const std::string& payload) {
  Json req;
  try {
    req = Json::parse(payload);
  } catch (const JsonParseError& e) {
    {
      sync::MutexLock lk(stats_mu_);
      ++rstats_.total;
      ++rstats_.errors;
    }
    return error_response(code::kBadRequest,
                          std::string("malformed request json: ") + e.what())
        .str(-1);
  }
  return handle(req).str(-1);
}

Json ServerCore::handle(const Json& request, const CancelToken* cancel) {
  Json resp;
  if (cancel && cancel->expired()) {
    // The deadline passed before any work started (typically: the job sat
    // in the scheduler queue, or the leader got to this ticket late).
    // Answer without touching the cache or a runtime.
    resp = retriable_error(code::kTimeout,
                           "deadline expired before the request ran");
    echo_id(request, resp);
    {
      sync::MutexLock lk(stats_mu_);
      ++rstats_.total;
      ++rstats_.errors;
      ++rstats_.deadline_expired;
    }
    if (trace::enabled()) trace::count("serve.deadline_expired");
    return resp;
  }
  try {
    resp = dispatch(request, cancel);
  } catch (const JsonParseError& e) {
    resp = error_response(code::kBadRequest, e.what());
  } catch (const CompilerError& e) {
    resp = error_response(code::kBadRequest, e.what());
  } catch (const EvalError& e) {
    resp = error_response(code::kBadRequest, e.what());
  } catch (const std::exception& e) {
    resp = error_response(code::kInternal, e.what());
  }
  echo_id(request, resp);
  {
    sync::MutexLock lk(stats_mu_);
    ++rstats_.total;
    const Json* ok = resp.find("ok");
    if (!ok || !ok->is_bool() || !ok->as_bool()) ++rstats_.errors;
  }
  return resp;
}

Json ServerCore::dispatch(const Json& req, const CancelToken* cancel) {
  if (!req.is_object())
    return error_response(code::kBadRequest, "request must be a json object");
  const Json* opv = req.find("op");
  if (!opv || !opv->is_string())
    return error_response(code::kBadRequest, "missing string field 'op'");
  const std::string& op = opv->as_string();

  if (op == "compile") return do_compile(req);
  if (op == "run") return do_run(req, cancel);
  if (op == "tune") return do_tune(req, cancel);
  if (op == "stats") return do_stats();
  if (op == "ping") {
    Json r = Json::object();
    r.set("ok", true);
    r.set("pong", true);
    return r;
  }
  if (op == "shutdown") {
    // The core has no event loop to stop; the socket layer watches for this
    // op and winds down after writing the acknowledgement.
    Json r = Json::object();
    r.set("ok", true);
    r.set("shutdown", true);
    return r;
  }
  return error_response(code::kUnknownOp, "unknown op '" + op + "'");
}

std::shared_ptr<ServerCore::ServedPlan> ServerCore::lookup_or_compile(
    const std::string& benchmark, const std::string& mode,
    const std::string& device, const std::string& dataset, bool* cached) {
  const std::string pkey = program_key(benchmark, mode, device);
  std::string key = pkey;
  SizeEnv sizes;
  const bool is_run = !dataset.empty();
  if (is_run) {
    // The shape fingerprint needs the dataset's SizeEnv, which lives on the
    // Benchmark; memoise it so warm-path lookups skip get_benchmark().
    {
      sync::ReaderMutexLock lk(shapes_mu_);
      auto it = shapes_.find(benchmark + "|" + dataset);
      if (it != shapes_.end()) sizes = it->second;
    }
    if (sizes.empty()) {
      Benchmark b = get_benchmark(benchmark);
      const BenchDataset* found = nullptr;
      for (const auto& d : b.datasets)
        if (d.name == dataset) found = &d;
      if (!found)
        for (const auto& d : b.tuning)
          if (d.name == dataset) found = &d;
      if (!found) {
        std::string msg = "benchmark '";
        msg += benchmark;
        msg += "' has no dataset '";
        msg += dataset;
        msg += "'";
        throw CompilerError(msg);
      }
      sizes = found->sizes;
      sync::WriterMutexLock lk(shapes_mu_);
      shapes_.emplace(benchmark + "|" + dataset, sizes);
    }
    key += "|";
    key += shape_fingerprint(sizes);
  }

  if (auto hit = cache_.find(key)) {
    *cached = true;
    return std::static_pointer_cast<ServedPlan>(hit);
  }
  *cached = false;

  auto sp = std::make_shared<ServedPlan>();
  sp->key = key;
  sp->benchmark = benchmark;
  sp->mode = mode;
  sp->device = device;
  sp->dev = device_from_name(device);

  // A run miss first tries to adopt the program-level entry's plan — the
  // compile-once promise: a new dataset shape costs a runtime, never a
  // re-flatten.  The probe is uncounted (it is bookkeeping, not traffic).
  std::shared_ptr<ServedPlan> base;
  if (is_run)
    base = std::static_pointer_cast<ServedPlan>(cache_.find(pkey, false));
  if (base) {
    sp->compiled = base->compiled;
    sp->program_hash = base->program_hash;
    sp->plan_reused = true;
  } else {
    Benchmark b = get_benchmark(benchmark);
    const FlattenMode m = mode_from_name(mode);
    const double t0 = now_us();
    {
      trace::Span span("serve.compile", "serve");
      sp->compiled = compile(b.program, m);
    }
    sp->compile_us = now_us() - t0;
    const std::string canon = pretty(sp->compiled.flat.program);
    sp->program_hash = journal_hash(canon.data(), canon.size());
    if (is_run) {
      // Also publish the program-level entry so future shapes reuse it.
      auto pe = std::make_shared<ServedPlan>();
      pe->key = pkey;
      pe->benchmark = benchmark;
      pe->mode = mode;
      pe->device = device;
      pe->dev = sp->dev;
      pe->compiled = sp->compiled;
      pe->program_hash = sp->program_hash;
      pe->compile_us = sp->compile_us;
      cache_.insert(pkey, pe, approx_entry_bytes(pe->compiled, false));
    }
  }

  if (is_run) {
    sp->sizes = std::move(sizes);
    TierPolicy tp;
    tp.specialize = opts_.specialize;
    tp.hot_runs = opts_.hot_runs;
    sp->rt = std::make_unique<TieredRuntime>(sp->dev, *sp->compiled.plan, tp);
    // Per-entry fault stream, decorrelated across keys by the key hash so
    // two entries do not fault in lockstep.
    sp->faults = FaultPlan(
        fspec_, opts_.fault_seed ^ journal_hash(key.data(), key.size()));
  }

  // Insert; on a compile race the first entry wins and we adopt it (one
  // runtime and one batch queue per key).
  auto winner =
      cache_.insert(key, sp, approx_entry_bytes(sp->compiled, is_run));
  return std::static_pointer_cast<ServedPlan>(winner);
}

Json ServerCore::do_compile(const Json& req) {
  {
    sync::MutexLock lk(stats_mu_);
    ++rstats_.compiles;
  }
  const std::string& bench = req_string(req, "benchmark");
  const std::string mode = opt_string(req, "mode", "incremental");
  const std::string device = opt_string(req, "device", "k40");
  mode_from_name(mode);  // validate before keying

  bool cached = false;
  auto entry = lookup_or_compile(bench, mode, device, "", &cached);

  Json r = Json::object();
  r.set("ok", true);
  r.set("cached", cached);
  r.set("key", entry->key);
  r.set("program_hash", hex64(entry->program_hash));
  r.set("compile_us", cached ? 0.0 : entry->compile_us);
  if (entry->compiled.plan) {
    const KernelPlan& p = *entry->compiled.plan;
    r.set("kernels", p.kernels.size());
    r.set("guards", p.guards.size());
    r.set("thresholds", p.thresholds.size());
    r.set("legacy_fallback", p.legacy_fallback);
  }
  return r;
}

Json ServerCore::run_one(ServedPlan& entry, const Json& req,
                         const CancelToken* cancel) {
  ThresholdEnv thr;
  if (const Json* tv = req.find("thresholds")) {
    if (!tv->is_object())
      throw CompilerError("'thresholds' must be an object");
    for (const auto& info : entry.compiled.flat.thresholds.all()) {
      if (const Json* v = tv->find(info.name))
        thr.values[info.name] = static_cast<int64_t>(v->as_double());
    }
  } else if (const Json* tuned = req.find("tuned");
             tuned && tuned->is_bool() && tuned->as_bool()) {
    const std::string pkey =
        program_key(entry.benchmark, entry.mode, entry.device);
    sync::MutexLock lk(tuned_mu_);
    auto it = tuned_.find(pkey);
    if (it == tuned_.end())
      throw CompilerError("no tuned thresholds published for " + pkey +
                          " (tune first)");
    thr.values = it->second;
  }

  TieredOutcome t;
  {
    trace::Span span("serve.run", "serve");
    t = entry.rt->run(entry.sizes, thr, entry.faults, cancel);
  }

  if (t.run.cancelled) {
    // Expired mid-execution: a scheduling outcome, answered retriable —
    // the request itself was fine, the daemon just ran out of its budget.
    {
      sync::MutexLock lk(stats_mu_);
      ++rstats_.deadline_expired;
    }
    if (trace::enabled()) trace::count("serve.deadline_expired");
    return retriable_error(code::kTimeout,
                           "deadline expired during execution");
  }

  Json r = Json::object();
  r.set("ok", t.run.ok);
  r.set("time_us", t.run.time_us);
  r.set("overhead_us", t.run.overhead_us);
  r.set("estimate_us", t.run.estimate.time_us);
  r.set("kernel_launches", t.run.estimate.kernel_launches);
  r.set("tier", t.specialized ? "specialized" : "tree");
  if (t.deopted) {
    r.set("deopted", true);
    r.set("deopt_reason", t.deopt_reason);
  }
  if (t.run.faults > 0) {
    r.set("faults", t.run.faults);
    r.set("retries", t.run.retries);
    r.set("degradations", t.run.degradations);
  }
  if (!t.run.ok) {
    r.set("code", code::kRunFailed);
    r.set("error", t.run.error ? t.run.error->message : "run failed");
  }
  return r;
}

Json ServerCore::do_run(const Json& req, const CancelToken* cancel) {
  {
    sync::MutexLock lk(stats_mu_);
    ++rstats_.runs;
  }
  const std::string& bench = req_string(req, "benchmark");
  const std::string& dataset = req_string(req, "dataset");
  const std::string mode = opt_string(req, "mode", "incremental");
  const std::string device = opt_string(req, "device", "k40");
  mode_from_name(mode);

  bool cached = false;
  auto entry = lookup_or_compile(bench, mode, device, dataset, &cached);

  auto ticket = std::make_shared<ServedPlan::Ticket>();
  ticket->req = req;
  ticket->cancel = cancel;

  sync::UniqueLock lk(entry->mu);
  entry->pending.push_back(ticket);
  if (entry->leader_active) {
    // Follower: a leader is already draining this entry's queue; it will
    // execute our request in its next batch and wake us.  Explicit loop
    // instead of a predicate lambda so the thread-safety analysis sees the
    // guarded read under the lock it requires.
    while (!ticket->done) entry->cv.wait(entry->mu);
    Json r = ticket->resp;
    lk.unlock();
    {
      sync::MutexLock slk(stats_mu_);
      ++rstats_.batched_runs;
    }
    r.set("cached", cached);
    r.set("batched", true);
    if (ticket->batch > 1) r.set("batch", ticket->batch);
    return r;
  }

  // Leader: drain the queue in batches until it is empty.  The entry mutex
  // is *released* during execution — leader_active is what excludes other
  // executors — so followers can keep enqueueing while a batch runs, and a
  // burst of N requests against one plan becomes one leader executing N
  // back-to-back runs on the entry's single TieredRuntime.
  //
  // Leadership must be released on every exit path: an exception escaping
  // with leader_active still set would leave followers waiting on the cv
  // forever and wedge the key for the life of the daemon.  run_one failures
  // are caught per ticket so each offending request gets its own error
  // response (a follower's bad thresholds must not surface as the leader's
  // failure, nor abort its batchmates); the guard covers anything else that
  // escapes the drain, failing open tickets and waking every waiter.
  entry->leader_active = true;
  std::deque<std::shared_ptr<ServedPlan::Ticket>> batch;
  struct LeaderGuard {
    ServedPlan& e;
    sync::UniqueLock& lk;
    std::deque<std::shared_ptr<ServedPlan::Ticket>>& batch;
    bool released = false;
    static void fail(ServedPlan::Ticket& t) {
      if (t.done) return;
      t.resp = error_response(code::kInternal, "batch leader aborted");
      t.done = true;
    }
    // The conditional re-lock is invisible to the (intraprocedural,
    // owns_lock-blind) thread-safety analysis; correctness here is covered
    // by the leader-abort regression test instead.
    ~LeaderGuard() NO_THREAD_SAFETY_ANALYSIS {
      if (released) return;
      try {
        if (!lk.owns_lock()) lk.lock();
        for (auto& t : batch) fail(*t);
        for (auto& t : e.pending) fail(*t);
        e.pending.clear();
        e.leader_active = false;
        e.cv.notify_all();
        lk.unlock();
      } catch (...) {
        // Unlockable or unallocatable mid-unwind: nothing safer remains.
      }
    }
  } guard{*entry, lk, batch};
  while (!entry->pending.empty()) {
    batch.clear();
    batch.swap(entry->pending);
    lk.unlock();
    if (auto* hook =
            testing::batch_abort_hook.load(std::memory_order_relaxed)) {
      hook();  // outside the per-ticket barriers: simulates a leader abort
    }
    const int bsz = static_cast<int>(batch.size());
    for (auto& t : batch) {
      // Honor each ticket's own deadline before spending runtime on it: a
      // follower that waited out its budget in this queue is answered
      // "timeout" (retriable) without running — its client stopped waiting.
      if (t->cancel && t->cancel->expired()) {
        t->resp = retriable_error(code::kTimeout,
                                  "deadline expired in the batch queue");
        t->batch = bsz;
        {
          sync::MutexLock slk(stats_mu_);
          ++rstats_.deadline_expired;
        }
        if (trace::enabled()) trace::count("serve.deadline_expired");
        continue;
      }
      try {
        t->resp = run_one(*entry, t->req, t->cancel);
      } catch (const JsonParseError& e) {
        t->resp = error_response(code::kBadRequest, e.what());
      } catch (const CompilerError& e) {
        t->resp = error_response(code::kBadRequest, e.what());
      } catch (const EvalError& e) {
        t->resp = error_response(code::kBadRequest, e.what());
      } catch (const std::exception& e) {
        t->resp = error_response(code::kInternal, e.what());
      }
      t->batch = bsz;
    }
    lk.lock();
    for (auto& t : batch) t->done = true;
    entry->cv.notify_all();
    if (bsz > 1) {
      if (trace::enabled()) trace::count("serve.batches");
      sync::MutexLock slk(stats_mu_);
      ++rstats_.batches;
    }
  }
  entry->leader_active = false;
  guard.released = true;
  Json r = ticket->resp;
  lk.unlock();

  r.set("cached", cached);
  if (entry->plan_reused && !cached) r.set("plan_cached", true);
  if (ticket->batch > 1) r.set("batch", ticket->batch);
  return r;
}

Json ServerCore::do_tune(const Json& req, const CancelToken* cancel) {
  {
    sync::MutexLock lk(stats_mu_);
    ++rstats_.tunes;
  }
  const std::string& bench = req_string(req, "benchmark");
  const std::string mode = opt_string(req, "mode", "incremental");
  const std::string device = opt_string(req, "device", "k40");

  bool cached = false;
  auto entry = lookup_or_compile(bench, mode, device, "", &cached);

  Benchmark b = get_benchmark(bench);
  std::vector<TuningDataset> train;
  train.reserve(b.tuning.size());
  for (const auto& d : b.tuning) train.push_back({d.name, d.sizes, 1.0});
  if (train.empty())
    throw CompilerError("benchmark '" + bench + "' has no tuning datasets");

  TunerOptions topts;
  topts.max_trials = opts_.tune_trials;
  if (const Json* tv = req.find("trials")) {
    if (!tv->is_number() || tv->as_double() < 1)
      throw CompilerError("'trials' must be a positive number");
    topts.max_trials = static_cast<int>(tv->as_double());
  }
  // Served tuning measures under the daemon's fault regime, so published
  // thresholds reflect the conditions runs will actually see.
  topts.noise = fspec_.noise;
  topts.measure_seed = opts_.fault_seed;
  topts.workers = 1;  // the scheduler owns server parallelism
  if (cancel) {
    // Spend at most the request's remaining budget: the tuner's wall-clock
    // stop returns the incumbent gracefully, so a deadline-bounded tune
    // still publishes the best thresholds it found in time.
    const double left = cancel->remaining_ms();
    if (left < 1e17) {
      topts.budget_ms = std::max(1.0, left);
      if (topts.budget_ms < 1.5) {
        // Effectively nothing left; answer timeout instead of a 1ms farce.
        sync::MutexLock lk(stats_mu_);
        ++rstats_.deadline_expired;
        if (trace::enabled()) trace::count("serve.deadline_expired");
        return retriable_error(code::kTimeout,
                               "deadline expired before tuning started");
      }
    }
  }

  TuningReport rep;
  {
    trace::Span span("serve.tune", "serve");
    rep = autotune(entry->dev, entry->compiled.source,
                   entry->compiled.flat.thresholds, train, topts);
  }

  const std::string pkey = program_key(bench, mode, device);
  {
    sync::MutexLock lk(tuned_mu_);
    tuned_[pkey] = rep.best.values;
  }

  Json thrj = Json::object();
  for (const auto& [name, v] : rep.best.values) thrj.set(name, v);
  Json r = Json::object();
  r.set("ok", true);
  r.set("cached", cached);
  r.set("thresholds", thrj);
  r.set("best_cost_us", rep.best_cost_us);
  r.set("default_cost_us", rep.default_cost_us);
  r.set("trials", rep.trials);
  r.set("evaluations", rep.evaluations);
  return r;
}

Json ServerCore::do_stats() {
  // Snapshot before tallying this call: the report uniformly covers
  // requests completed before it (handle() counts "total" the same way).
  const CacheStats cs = cache_.stats();
  const SchedulerStats ss = sched_.stats();
  const RequestStats rs = request_stats();
  {
    sync::MutexLock lk(stats_mu_);
    ++rstats_.stats_calls;
  }

  Json cache = Json::object();
  cache.set("hits", cs.hits);
  cache.set("misses", cs.misses);
  cache.set("evictions", cs.evictions);
  cache.set("inserts", cs.inserts);
  cache.set("bytes", cs.bytes);
  cache.set("entries", cs.entries);
  cache.set("byte_budget", cache_.byte_budget());

  Json sched = Json::object();
  sched.set("submitted", ss.submitted);
  sched.set("executed", ss.executed);
  sched.set("failed", ss.failed);
  sched.set("cancelled", ss.cancelled);
  sched.set("expired", ss.expired);
  sched.set("shed", ss.shed);
  sched.set("queued", ss.queued);
  sched.set("running", ss.running);
  sched.set("max_queue_depth", ss.max_queue_depth);
  sched.set("workers", sched_.width());

  Json reqs = Json::object();
  reqs.set("total", rs.total);
  reqs.set("compiles", rs.compiles);
  reqs.set("runs", rs.runs);
  reqs.set("tunes", rs.tunes);
  reqs.set("stats", rs.stats_calls);
  reqs.set("errors", rs.errors);
  reqs.set("batches", rs.batches);
  reqs.set("batched_runs", rs.batched_runs);
  reqs.set("deadline_expired", rs.deadline_expired);

  Json r = Json::object();
  r.set("ok", true);
  r.set("cache", cache);
  r.set("scheduler", sched);
  r.set("requests", reqs);
  // Fold finished span events into aggregates: a traced daemon answering
  // stats periodically keeps its trace buffer bounded for months of uptime.
  r.set("spans_flushed", trace::flush_spans());
  return r;
}

}  // namespace incflat::serve
