// Deterministic network-chaos injection for the serve stack.
//
// The gpusim fault model (src/gpusim/faults.*) makes the *compute* path
// hostile; this layer does the same for the *serving* path.  A NetChaos
// plan is a seeded, replayable oracle consulted by the socket front-end at
// its syscall boundaries, perturbing exactly the conditions a daemon on a
// real network must survive:
//
//   * dribble       — a read is capped to a few bytes, so frames arrive one
//                     length-prefix byte at a time (the slow-loris shape);
//   * partial-write — a write is truncated short, exercising the outbuf
//                     offset/flush machinery the way a zero-window or
//                     congested peer would;
//   * stall         — a connection goes quiet for stall-us microseconds:
//                     its readable data is left in the kernel buffer and
//                     revisited later (a half-open or paused peer);
//   * reset         — the connection is torn down mid-stream, as if the
//                     peer sent RST with frames half-delivered;
//   * accept-fail   — a freshly accepted connection is dropped before its
//                     first byte (handshake races, immediate peer death).
//
// Chaos never rewrites bytes — it only re-chunks, delays and severs.  The
// protocol invariants under chaos are therefore exact: no frame is ever
// corrupted in flight, every response a surviving connection receives is
// well-formed and in request order, and a severed connection is *visibly*
// severed (EOF/RST at the peer), never wedged.  tools/soak_faults asserts
// exactly that, and the chaos-soak CI job runs it under ASan.
//
// Everything is splitmix64-deterministic from (spec, seed), like FaultPlan:
// the same chaos plan makes the same decisions in the same order on every
// platform.  Enable with `incflatd --net-chaos SPEC` or INCFLAT_NET_CHAOS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/support/rng.h"

namespace incflat::serve {

/// Per-event chaos rates (probabilities in [0,1]) plus the stall length.
struct NetChaosSpec {
  double dribble = 0;
  double partial_write = 0;
  double stall = 0;
  double reset = 0;
  double accept_fail = 0;
  /// How long a stalled connection stays quiet (simulated peer silence).
  double stall_us = 2000;

  bool enabled() const {
    return dribble > 0 || partial_write > 0 || stall > 0 || reset > 0 ||
           accept_fail > 0;
  }
};

/// Parse a `--net-chaos` SPEC: "off" / "" disables everything; otherwise a
/// comma-separated list of `key=rate` entries with keys dribble,
/// partial-write, stall, reset, accept-fail, stall-us, and the shorthand
/// `all=R` which applies R to the two re-chunking kinds (dribble,
/// partial-write) and R/10 to the destructive ones (stall, reset,
/// accept-fail).  Throws IoError on malformed specs or out-of-range rates.
NetChaosSpec parse_net_chaos(const std::string& spec);

/// One-line canonical rendering of a spec (parse round-trips it).
std::string net_chaos_str(const NetChaosSpec& spec);

/// The seeded chaos oracle.  Stateful: every decision advances one
/// splitmix64 stream, so a plan's verdict sequence is a pure function of
/// (spec, seed).  Disabled plans draw nothing and always answer "no chaos",
/// so a chaos-free daemon pays one branch per consultation.  Fired events
/// are tallied in the chaos.* trace counters (when tracing is on) and in
/// the local counters below (always), which the drain report prints.
class NetChaos {
 public:
  NetChaos() = default;
  NetChaos(const NetChaosSpec& spec, uint64_t seed)
      : spec_(spec), rng_(seed ^ kStream) {}

  const NetChaosSpec& spec() const { return spec_; }
  bool enabled() const { return spec_.enabled(); }

  /// Cap for the next read of up to `want` bytes; a dribble caps it to a
  /// uniform 1..16 bytes.  Never returns 0.
  size_t read_cap(size_t want);

  /// Cap for the next write of up to `want` bytes.  Never returns 0: a
  /// partial write still makes one byte of progress, like a real socket
  /// whose buffer is nearly — not exactly — full (zero-byte write chaos
  /// would be EAGAIN, which the poll loop already models natively).
  size_t write_cap(size_t want);

  /// True: tear this connection down now (mid-stream reset).
  bool reset_conn();

  /// Microseconds this connection should stay quiet; 0 = no stall.
  double stall_us();

  /// True: drop this freshly accepted connection before serving it.
  bool accept_fail();

  /// Lifetime tallies of fired events, for the drain report and the soak.
  struct Counts {
    int64_t dribbles = 0;
    int64_t partial_writes = 0;
    int64_t stalls = 0;
    int64_t resets = 0;
    int64_t accept_fails = 0;
    int64_t total() const {
      return dribbles + partial_writes + stalls + resets + accept_fails;
    }
  };
  const Counts& counts() const { return counts_; }

 private:
  static constexpr uint64_t kStream = 0xc4a05b17e5ULL;

  NetChaosSpec spec_;
  Rng rng_{0};
  Counts counts_;
};

}  // namespace incflat::serve
