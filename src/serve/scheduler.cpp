#include "src/serve/scheduler.h"

#include <algorithm>

#include "src/support/pool.h"
#include "src/support/trace.h"

namespace incflat::serve {

namespace {
/// Terminal records kept for late wait() callers; bounded so a daemon that
/// never waits (the socket layer consumes results via callbacks) cannot
/// grow this map forever.
constexpr size_t kFinishedCap = 4096;
}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    case JobState::Expired: return "expired";
    case JobState::Shed: return "shed";
  }
  return "?";
}

JobScheduler::JobScheduler(int workers, double promote_after_ms,
                           int64_t queue_cap)
    : promote_after_ms_(promote_after_ms), queue_cap_(queue_cap) {
  const int n = WorkerPool::pick_width(
      workers, std::thread::hardware_concurrency());
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

JobScheduler::~JobScheduler() {
  {
    sync::MutexLock lk(mu_);
    for (auto& q : queues_) {
      std::deque<std::shared_ptr<Job>> drained;
      drained.swap(q);
      for (const auto& job : drained) {
        --stats_.queued;
        ++stats_.cancelled;
        finish_locked(job, JobState::Cancelled);
      }
    }
    stop_ = true;
  }
  cv_work_.notify_all();
  cv_done_.notify_all();
  for (auto& t : threads_) t.join();
}

uint64_t JobScheduler::submit(JobFn fn, JobPriority pri,
                              double queue_timeout_ms, DropFn on_drop) {
  const Clock::time_point now = Clock::now();
  auto job = std::make_shared<Job>();
  job->fn = std::move(fn);
  job->on_drop = std::move(on_drop);
  job->pri = pri;
  job->enqueued = now;
  job->deadline =
      queue_timeout_ms > 0
          ? now + std::chrono::microseconds(
                      static_cast<int64_t>(queue_timeout_ms * 1000.0))
          : Clock::time_point::max();
  {
    sync::MutexLock lk(mu_);
    job->id = next_id_++;
    ++stats_.submitted;
    if (trace::enabled()) trace::count("serve.jobs_submitted");
    if (queue_cap_ > 0 &&
        static_cast<int64_t>(queues_[static_cast<int>(pri)].size()) >=
            queue_cap_) {
      // Reject-newest: the admitted jobs keep their promise; this one is
      // answered immediately (DropFn with Shed) instead of enqueued.
      ++stats_.shed;
      if (trace::enabled()) trace::count("serve.jobs_shed");
      finish_locked(job, JobState::Shed);
      return job->id;
    }
    queues_[static_cast<int>(pri)].push_back(job);
    jobs_.emplace(job->id, job);
    ++stats_.queued;
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, stats_.queued);
  }
  cv_work_.notify_one();
  return job->id;
}

bool JobScheduler::cancel(uint64_t id) {
  sync::MutexLock lk(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  // By value: finish_locked erases the jobs_ entry, and with the queue's
  // copy removed below that erase drops the last other reference.
  const std::shared_ptr<Job> job = it->second;
  if (job->state == JobState::Running) {
    // Cooperative only: the job observes JobContext::cancelled() or not.
    job->cancel_flag.store(true, std::memory_order_relaxed);
    return false;
  }
  if (job->state != JobState::Queued) return false;
  auto& q = queues_[static_cast<int>(job->pri)];
  q.erase(std::remove(q.begin(), q.end(), job), q.end());
  --stats_.queued;
  ++stats_.cancelled;
  finish_locked(job, JobState::Cancelled);
  return true;
}

std::shared_ptr<JobScheduler::Job> JobScheduler::pick_locked(
    Clock::time_point now) {
  // Each class deque is FIFO, so its head is its oldest — and therefore
  // most-promoted — member: comparing the three heads by (effective
  // priority, enqueue time) finds the global pick in O(1).
  std::shared_ptr<Job> best;
  int best_eff = 99;
  for (int pri = 0; pri < 3; ++pri) {
    auto& q = queues_[pri];
    // Jobs whose queue deadline already passed complete as Expired without
    // running: their client stopped waiting long ago.
    while (!q.empty() && q.front()->deadline <= now) {
      std::shared_ptr<Job> dead = q.front();
      q.pop_front();
      --stats_.queued;
      ++stats_.expired;
      if (trace::enabled()) trace::count("serve.jobs_expired");
      finish_locked(dead, JobState::Expired);
    }
    if (q.empty()) continue;
    const std::shared_ptr<Job>& head = q.front();
    int eff = pri;
    if (promote_after_ms_ > 0) {
      const double age_ms =
          std::chrono::duration<double, std::milli>(now - head->enqueued)
              .count();
      eff = std::max(0, pri - static_cast<int>(age_ms / promote_after_ms_));
    }
    if (!best || eff < best_eff ||
        (eff == best_eff && head->enqueued < best->enqueued)) {
      best = head;
      best_eff = eff;
    }
  }
  if (best) {
    auto& q = queues_[static_cast<int>(best->pri)];
    q.erase(std::remove(q.begin(), q.end(), best), q.end());
    --stats_.queued;
  }
  return best;
}

void JobScheduler::finish_locked(const std::shared_ptr<Job>& job, JobState st) {
  job->state = st;
  jobs_.erase(job->id);
  if (finished_.size() >= kFinishedCap) finished_.erase(finished_.begin());
  finished_[job->id] = Finished{st, job->error};
  if (job->on_drop && (st == JobState::Cancelled ||
                       st == JobState::Expired || st == JobState::Shed)) {
    job->on_drop(st);
  }
  cv_done_.notify_all();
}

void JobScheduler::worker_loop() {
  sync::UniqueLock lk(mu_);
  for (;;) {
    // Explicit loop instead of a predicate lambda: clang's thread-safety
    // analysis is intraprocedural and would treat the lambda as a separate,
    // lock-free function reading guarded state.
    while (!stop_ && stats_.queued == 0) cv_work_.wait(mu_);
    if (stop_) return;
    std::shared_ptr<Job> job = pick_locked(Clock::now());
    if (!job) continue;  // everything queued had expired
    job->state = JobState::Running;
    ++stats_.running;
    lk.unlock();
    JobContext ctx(&job->cancel_flag);
    std::exception_ptr err;
    try {
      job->fn(ctx);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    job->error = err;
    --stats_.running;
    ++stats_.executed;
    if (err) ++stats_.failed;
    if (trace::enabled()) trace::count("serve.jobs_executed");
    finish_locked(job, err ? JobState::Failed : JobState::Done);
  }
}

JobState JobScheduler::wait(uint64_t id) {
  sync::MutexLock lk(mu_);
  // Not gated on stop_: shutdown cancels queued jobs (erasing them from
  // jobs_ under this mutex) and workers finish running jobs before joining,
  // so every submitted id still leaves jobs_ — returning early on stop_
  // would report a still-Running job as Done and swallow its exception.
  while (jobs_.find(id) != jobs_.end()) cv_done_.wait(mu_);
  auto it = finished_.find(id);
  if (it == finished_.end()) return JobState::Done;  // reaped long ago
  const Finished fin = it->second;
  finished_.erase(it);
  if (fin.error) std::rethrow_exception(fin.error);
  return fin.state;
}

SchedulerStats JobScheduler::stats() const {
  sync::MutexLock lk(mu_);
  return stats_;
}

}  // namespace incflat::serve
