#include "src/serve/plan_cache.h"

#include <algorithm>
#include <functional>

#include "src/support/trace.h"

namespace incflat::serve {

PlanCache::PlanCache(size_t byte_budget, int shards) : byte_budget_(byte_budget) {
  const int n = std::max(shards, 1);
  shard_budget_ = byte_budget == 0 ? 0 : std::max(byte_budget / n, size_t{1});
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

PlanCache::Shard& PlanCache::shard_for(const std::string& key) {
  const size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

std::shared_ptr<CacheValue> PlanCache::find(const std::string& key,
                                            bool count) {
  Shard& s = shard_for(key);
  sync::MutexLock lk(s.mu);
  auto it = s.index.find(key);
  if (it == s.index.end()) {
    if (count) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (trace::enabled()) trace::count("serve.cache_miss");
    }
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  if (count) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (trace::enabled()) trace::count("serve.cache_hit");
  }
  return it->second->value;
}

void PlanCache::evict_locked(Shard& s, size_t need) {
  if (shard_budget_ == 0) return;
  // Evict cold entries until `need` more bytes fit; never below zero
  // entries (an oversized value is admitted alone and evicted by the next
  // insert — refusing it would make its key recompile forever).
  while (!s.lru.empty() && s.bytes + need > shard_budget_) {
    const Entry& victim = s.lru.back();
    s.bytes -= victim.bytes;
    s.index.erase(victim.key);
    s.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (trace::enabled()) trace::count("serve.evictions");
  }
}

std::shared_ptr<CacheValue> PlanCache::insert(const std::string& key,
                                              std::shared_ptr<CacheValue> value,
                                              size_t bytes) {
  Shard& s = shard_for(key);
  sync::MutexLock lk(s.mu);
  auto it = s.index.find(key);
  if (it != s.index.end()) {
    // Lost a compile race: the first insert wins so every requester shares
    // one entry (and its runtime / batch queue).
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->value;
  }
  evict_locked(s, bytes);
  s.lru.push_front(Entry{key, std::move(value), bytes});
  s.index.emplace(key, s.lru.begin());
  s.bytes += bytes;
  inserts_.fetch_add(1, std::memory_order_relaxed);
  return s.lru.front().value;
}

bool PlanCache::erase(const std::string& key) {
  Shard& s = shard_for(key);
  sync::MutexLock lk(s.mu);
  auto it = s.index.find(key);
  if (it == s.index.end()) return false;
  s.bytes -= it->second->bytes;
  s.lru.erase(it->second);
  s.index.erase(it);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  if (trace::enabled()) trace::count("serve.evictions");
  return true;
}

void PlanCache::clear() {
  for (auto& sp : shards_) {
    sync::MutexLock lk(sp->mu);
    sp->lru.clear();
    sp->index.clear();
    sp->bytes = 0;
  }
}

CacheStats PlanCache::stats() const {
  CacheStats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.inserts = inserts_.load(std::memory_order_relaxed);
  for (const auto& sp : shards_) {
    sync::MutexLock lk(sp->mu);
    st.bytes += sp->bytes;
    st.entries += sp->lru.size();
  }
  return st;
}

}  // namespace incflat::serve
