#include "src/serve/chaos.h"

#include <algorithm>

#include "src/support/error.h"
#include "src/support/str.h"
#include "src/support/trace.h"

namespace incflat::serve {

namespace {

double parse_rate(const std::string& key, const std::string& text,
                  double hi = 1.0) {
  try {
    size_t consumed = 0;
    const double v = std::stod(text, &consumed);
    if (consumed != text.size()) throw IoError("trailing junk");
    if (v < 0 || v > hi) throw IoError("out of range");
    return v;
  } catch (const std::exception&) {
    throw IoError("net-chaos: bad value for '" + key + "': '" + text +
                  "' (want a number in [0, " + fmt_double(hi, 0) + "])");
  }
}

}  // namespace

NetChaosSpec parse_net_chaos(const std::string& spec) {
  NetChaosSpec s;
  if (spec.empty() || spec == "off") return s;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw IoError("net-chaos: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "dribble") {
      s.dribble = parse_rate(key, val);
    } else if (key == "partial-write") {
      s.partial_write = parse_rate(key, val);
    } else if (key == "stall") {
      s.stall = parse_rate(key, val);
    } else if (key == "reset") {
      s.reset = parse_rate(key, val);
    } else if (key == "accept-fail") {
      s.accept_fail = parse_rate(key, val);
    } else if (key == "stall-us") {
      s.stall_us = parse_rate(key, val, 1e9);
    } else if (key == "all") {
      // Re-chunking kinds at the full rate, destructive kinds at a tenth:
      // "all=0.3" is a usefully hostile network, not an unusable one.
      const double r = parse_rate(key, val);
      s.dribble = s.partial_write = r;
      s.stall = s.reset = s.accept_fail = r / 10;
    } else {
      throw IoError("net-chaos: unknown key '" + key + "'");
    }
  }
  return s;
}

std::string net_chaos_str(const NetChaosSpec& spec) {
  if (!spec.enabled()) return "off";
  std::string out;
  const auto add = [&out](const char* key, double v) {
    if (v <= 0) return;
    if (!out.empty()) out += ",";
    out += key;
    out += "=";
    out += fmt_double(v, 6);
  };
  add("dribble", spec.dribble);
  add("partial-write", spec.partial_write);
  add("stall", spec.stall);
  add("reset", spec.reset);
  add("accept-fail", spec.accept_fail);
  if (spec.stall > 0) add("stall-us", spec.stall_us);
  return out;
}

size_t NetChaos::read_cap(size_t want) {
  if (spec_.dribble <= 0 || want <= 1 || !rng_.flip(spec_.dribble)) {
    return want;
  }
  ++counts_.dribbles;
  if (trace::enabled()) trace::count("chaos.dribbles");
  const size_t cap = static_cast<size_t>(rng_.uniform_int(1, 16));
  return std::min(want, cap);
}

size_t NetChaos::write_cap(size_t want) {
  if (spec_.partial_write <= 0 || want <= 1 ||
      !rng_.flip(spec_.partial_write)) {
    return want;
  }
  ++counts_.partial_writes;
  if (trace::enabled()) trace::count("chaos.partial_writes");
  // Truncate somewhere strictly inside the buffer; length-prefix frames
  // make the first few bytes the interesting place to cut.
  return static_cast<size_t>(
      rng_.uniform_int(1, static_cast<int64_t>(want) - 1));
}

bool NetChaos::reset_conn() {
  if (spec_.reset <= 0 || !rng_.flip(spec_.reset)) return false;
  ++counts_.resets;
  if (trace::enabled()) trace::count("chaos.resets");
  return true;
}

double NetChaos::stall_us() {
  if (spec_.stall <= 0 || !rng_.flip(spec_.stall)) return 0;
  ++counts_.stalls;
  if (trace::enabled()) trace::count("chaos.stalls");
  return spec_.stall_us;
}

bool NetChaos::accept_fail() {
  if (spec_.accept_fail <= 0 || !rng_.flip(spec_.accept_fail)) return false;
  ++counts_.accept_fails;
  if (trace::enabled()) trace::count("chaos.accept_fails");
  return true;
}

}  // namespace incflat::serve
