// Priority job scheduler: the WorkerPool, generalised for a long-lived
// server.
//
// WorkerPool (src/support/pool.h) runs one homogeneous batch and blocks the
// caller — exactly what the autotuner wants and exactly what a daemon
// cannot use: server work arrives continuously, tune jobs take seconds
// while run jobs take microseconds, and a disconnecting client should be
// able to abandon work it queued.  JobScheduler keeps the pool's
// worker-loop skeleton (one mutex, condition-variable dispatch, the
// pick_width() worker-count rule) and adds:
//
//   * three priority classes (High = run, Normal = compile, Low = tune)
//     drained in strict priority order, with age promotion — a job waiting
//     longer than `promote_after_ms` is treated as the next class up — so a
//     burst of High traffic delays Low jobs but never starves them;
//   * cancellation: cancel(id) unschedules a still-queued job, and flips a
//     cooperative flag a *running* job can poll via JobContext::cancelled()
//     (the tuner's budget hook polls it between evaluations);
//   * per-job queue timeouts: a job still queued past its deadline is
//     completed as Expired instead of run — a tune job that sat behind a
//     run burst for too long is dropped, not executed against a client
//     that gave up on it long ago;
//   * bounded queues with reject-newest shedding: each priority class
//     holds at most `queue_cap` waiting jobs; a submit against a full
//     class completes the *new* job as Shed without enqueueing it.
//     Reject-newest (not drop-oldest) keeps the answered set FIFO — the
//     jobs already admitted were promised progress, and the shed client
//     gets an immediate structured "overloaded" answer it can retry,
//     instead of silently displacing someone older.
//
// Jobs never throw across the scheduler: an escaping exception is captured
// and rethrown by the first wait() on that job.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "src/support/sync.h"

namespace incflat::serve {

enum class JobPriority { High = 0, Normal = 1, Low = 2 };

enum class JobState {
  Queued,
  Running,
  Done,
  Failed,
  Cancelled,
  Expired,
  Shed,  // rejected at submit: the priority class's queue was full
};

const char* job_state_name(JobState s);

/// Handed to a running job for cooperative cancellation checks.
class JobContext {
 public:
  bool cancelled() const { return cancelled_->load(std::memory_order_relaxed); }

 private:
  friend class JobScheduler;
  explicit JobContext(const std::atomic<bool>* flag) : cancelled_(flag) {}
  const std::atomic<bool>* cancelled_;
};

struct SchedulerStats {
  int64_t submitted = 0;
  int64_t executed = 0;   // ran to completion (Done or Failed)
  int64_t failed = 0;     // executed jobs that threw
  int64_t cancelled = 0;  // unscheduled while still queued
  int64_t expired = 0;    // queue deadline passed before a worker got there
  int64_t shed = 0;       // rejected at submit against a full class queue
  int64_t queued = 0;     // currently waiting
  int64_t running = 0;    // currently executing
  int64_t max_queue_depth = 0;
};

class JobScheduler {
 public:
  /// `workers` <= 0 picks WorkerPool::pick_width's default: min(hardware
  /// concurrency, 8), at least 1.  `promote_after_ms` is the age at which a
  /// waiting job is drained as if it were one priority class higher
  /// (anti-starvation); <= 0 disables promotion.  `queue_cap` bounds each
  /// priority class's waiting queue: a submit against a full class sheds
  /// the new job (see the header comment); <= 0 = unbounded.
  explicit JobScheduler(int workers = 0, double promote_after_ms = 1000.0,
                        int64_t queue_cap = 0);

  /// Cancels every queued job, waits for running ones, joins the workers.
  ~JobScheduler();
  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  using JobFn = std::function<void(JobContext&)>;
  /// Notification that a job was dropped — completed as Cancelled, Expired
  /// or Shed *without running*.  Callers that owe someone an answer per
  /// submitted job (the socket layer's in-order response queue) use it to
  /// substitute a timeout/cancelled/overloaded response; without it a
  /// dropped job would stall every response sequenced after it.  Invoked
  /// with the scheduler lock held: must be cheap and must not call back
  /// in.  Fires exactly once per dropped job, never for a job that ran.
  using DropFn = std::function<void(JobState)>;

  /// Enqueue a job; returns its id (monotonic from 1).  `queue_timeout_ms`
  /// > 0 expires the job if no worker has started it within that long.
  /// When the class queue is at queue_cap the job is shed instead of
  /// enqueued (its DropFn fires with Shed before submit returns; wait(id)
  /// reports Shed).
  uint64_t submit(JobFn fn, JobPriority pri = JobPriority::Normal,
                  double queue_timeout_ms = 0, DropFn on_drop = nullptr)
      EXCLUDES(mu_);

  /// Unschedule a queued job (true) or flag a running one for cooperative
  /// cancellation (false — it still runs to wherever it checks the flag;
  /// wait() reports its final state).  False for finished/unknown ids too.
  bool cancel(uint64_t id) EXCLUDES(mu_);

  /// Block until the job reached a terminal state; rethrows the job's
  /// exception if it Failed.  Returns the terminal state.  Ids are
  /// remembered until waited on exactly once (a second wait on the same id
  /// returns Done immediately).
  JobState wait(uint64_t id) EXCLUDES(mu_);

  int width() const { return static_cast<int>(threads_.size()); }
  SchedulerStats stats() const EXCLUDES(mu_);

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    uint64_t id = 0;
    JobFn fn;
    DropFn on_drop;
    JobPriority pri = JobPriority::Normal;
    Clock::time_point enqueued;
    Clock::time_point deadline;  // time_point::max() = no timeout
    JobState state = JobState::Queued;
    std::atomic<bool> cancel_flag{false};
    std::exception_ptr error;
  };

  void worker_loop() EXCLUDES(mu_);
  /// Highest-effective-priority oldest queued job, honoring expiry; null
  /// when the queue is empty.
  std::shared_ptr<Job> pick_locked(Clock::time_point now) REQUIRES(mu_);
  void finish_locked(const std::shared_ptr<Job>& job, JobState st)
      REQUIRES(mu_);

  /// Terminal record kept for wait(): bounded (oldest-dropped), since the
  /// daemon's socket layer consumes results via callbacks and never waits.
  struct Finished {
    JobState state = JobState::Done;
    std::exception_ptr error;
  };

  mutable sync::Mutex mu_{"serve.scheduler"};
  sync::CondVar cv_work_, cv_done_;
  std::vector<std::thread> threads_;
  std::deque<std::shared_ptr<Job>> queues_[3] GUARDED_BY(mu_);  // by priority
  // Queued + running, by id.
  std::map<uint64_t, std::shared_ptr<Job>> jobs_ GUARDED_BY(mu_);
  std::map<uint64_t, Finished> finished_ GUARDED_BY(mu_);
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  double promote_after_ms_;
  int64_t queue_cap_;  // per-class waiting-queue bound; <= 0 = unbounded
  bool stop_ GUARDED_BY(mu_) = false;
  SchedulerStats stats_ GUARDED_BY(mu_);
};

}  // namespace incflat::serve
