// Socket front-end of the compile-and-serve daemon.
//
// ServeSocket wraps one listening endpoint — a Unix-domain socket path
// ("unix:/tmp/incflatd.sock") or a TCP loopback port ("tcp:127.0.0.1:7465",
// host optional) — and pumps a poll(2) event loop: accept connections, slice
// the byte stream into frames (serve::FrameReader), hand each payload to
// ServerCore through the JobScheduler at the op's priority class, and write
// back length-prefixed responses in request order per connection.
//
// Threading: the poll loop runs on the caller of serve_forever(); request
// execution runs on the scheduler's workers.  Responses are handed back to
// the loop through a completion queue + self-pipe wakeup (the standard trick
// for unblocking poll() from another thread).  A connection that sends a
// malformed frame (oversized or garbled length prefix) is answered with one
// "protocol" error and closed — the stream offset can no longer be trusted;
// a frame that is merely malformed JSON fails only that request.
//
// The "shutdown" op stops the loop after its response drains, so tests and
// the CI smoke job can wind the daemon down cleanly from a client.
//
// Overload protection (SocketOptions): a connection cap — connections past
// it are answered one "overloaded" (retriable) frame and closed — and a
// per-connection in-flight cap shedding pipelined requests beyond it.
// EMFILE/ENFILE at accept time pauses accepting briefly instead of spinning.
//
// Graceful drain (request_drain, async-signal-safe): stop accepting, answer
// new requests "draining" (retriable) fail-fast, let in-flight work finish
// or deadline out, flush every owed response, then exit the loop — bounded
// by SocketOptions::drain_ms, after which surviving connections are severed
// and counted in DrainStats::forced_conns.
//
// Network chaos (SocketOptions::chaos, src/serve/chaos.h) perturbs the
// loop's syscall boundaries — dribbled reads, partial writes, stalls,
// mid-stream resets, accept-time drops — deterministically from a seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/serve/chaos.h"
#include "src/serve/server.h"

namespace incflat::serve {

/// A parsed endpoint spec.
struct Endpoint {
  enum class Kind { Unix, Tcp } kind = Kind::Unix;
  std::string path;         // unix socket path
  std::string host;         // tcp host (loopback default)
  uint16_t port = 0;        // tcp port (0 = ephemeral, see bound_port)
};

/// Parse "unix:PATH" or "tcp:[HOST:]PORT"; throws IoError on bad specs.
Endpoint parse_endpoint(const std::string& spec);

/// Front-end knobs: admission control, drain bound, chaos injection.
struct SocketOptions {
  /// Maximum simultaneously served connections; a connection accepted past
  /// the cap is answered one "overloaded" (retriable) frame and closed.
  /// <= 0 = unlimited.
  int max_conns = 0;
  /// Maximum pipelined requests in flight per connection; requests past it
  /// are answered "overloaded" (retriable) in order, without being queued.
  /// <= 0 = unlimited.
  int max_inflight_per_conn = 0;
  /// Bound on a graceful drain (milliseconds): connections still alive
  /// this long after request_drain() are severed.
  double drain_ms = 5000;
  /// Network chaos plan (disabled by default).
  NetChaosSpec chaos;
  uint64_t chaos_seed = 0xc4a05eedULL;
};

/// Outcome of a graceful drain, for the daemon's exit report and the soak's
/// drained-clean assertion.
struct DrainStats {
  bool requested = false;   // request_drain() was observed
  bool clean = false;       // every connection flushed + closed in time
  int64_t forced_conns = 0; // connections severed at the drain deadline
};

class ServeSocket {
 public:
  /// Bind + listen on `ep` (IoError on failure).  Unix paths are unlinked
  /// first so a stale socket from a crashed daemon does not block restart.
  ServeSocket(ServerCore& core, const Endpoint& ep, SocketOptions sopts = {});
  ~ServeSocket();
  ServeSocket(const ServeSocket&) = delete;
  ServeSocket& operator=(const ServeSocket&) = delete;

  /// Run the poll loop until a client sends "shutdown", stop() is called,
  /// or a requested drain completes (or hits its drain_ms bound).
  void serve_forever();

  /// Ask the loop to exit; safe from any thread / signal context (writes
  /// one byte to the self-pipe).
  void stop();

  /// Begin a graceful drain; safe from any thread / signal context (one
  /// atomic store + one self-pipe write) — the SIGTERM/SIGINT handler of
  /// incflatd calls this.  The loop stops accepting, fail-fasts new
  /// requests with "draining" (retriable), finishes or deadlines-out
  /// in-flight work, flushes owed responses, and serve_forever returns.
  void request_drain();

  /// Valid after serve_forever returned.
  const DrainStats& drain_stats() const;

  /// Lifetime chaos-event tallies (all zero when chaos is disabled).
  const NetChaos::Counts& chaos_counts() const;

  /// The bound TCP port (after an ephemeral bind), or 0 for unix sockets.
  uint16_t bound_port() const { return bound_port_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  uint16_t bound_port_ = 0;
};

/// Blocking client for the daemon's protocol: connect, exchange frames.
/// Used by incflat_client, the load generator and the smoke tests.
class ServeClient {
 public:
  /// Connect to `ep`; IoError on failure.  `timeout_ms` > 0 bounds both
  /// the connect and each call's wait for a response (poll-based); a
  /// breached bound throws IoError("timed out ...").  <= 0 = block forever
  /// (the original behaviour).
  explicit ServeClient(const Endpoint& ep, double timeout_ms = 0);
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Send one request payload (already-serialised JSON) and block for the
  /// response payload.  Throws IoError on transport failure or response
  /// timeout, ProtocolError on malformed response framing.
  std::string call_text(const std::string& payload);

  /// Convenience: serialise, call, parse.
  Json call(const Json& request);

 private:
  int fd_ = -1;
  double timeout_ms_ = 0;
  FrameReader reader_;
};

}  // namespace incflat::serve
