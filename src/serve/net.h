// Socket front-end of the compile-and-serve daemon.
//
// ServeSocket wraps one listening endpoint — a Unix-domain socket path
// ("unix:/tmp/incflatd.sock") or a TCP loopback port ("tcp:127.0.0.1:7465",
// host optional) — and pumps a poll(2) event loop: accept connections, slice
// the byte stream into frames (serve::FrameReader), hand each payload to
// ServerCore through the JobScheduler at the op's priority class, and write
// back length-prefixed responses in request order per connection.
//
// Threading: the poll loop runs on the caller of serve_forever(); request
// execution runs on the scheduler's workers.  Responses are handed back to
// the loop through a completion queue + self-pipe wakeup (the standard trick
// for unblocking poll() from another thread).  A connection that sends a
// malformed frame (oversized or garbled length prefix) is answered with one
// "protocol" error and closed — the stream offset can no longer be trusted;
// a frame that is merely malformed JSON fails only that request.
//
// The "shutdown" op stops the loop after its response drains, so tests and
// the CI smoke job can wind the daemon down cleanly from a client.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/serve/server.h"

namespace incflat::serve {

/// A parsed endpoint spec.
struct Endpoint {
  enum class Kind { Unix, Tcp } kind = Kind::Unix;
  std::string path;         // unix socket path
  std::string host;         // tcp host (loopback default)
  uint16_t port = 0;        // tcp port (0 = ephemeral, see bound_port)
};

/// Parse "unix:PATH" or "tcp:[HOST:]PORT"; throws IoError on bad specs.
Endpoint parse_endpoint(const std::string& spec);

class ServeSocket {
 public:
  /// Bind + listen on `ep` (IoError on failure).  Unix paths are unlinked
  /// first so a stale socket from a crashed daemon does not block restart.
  ServeSocket(ServerCore& core, const Endpoint& ep);
  ~ServeSocket();
  ServeSocket(const ServeSocket&) = delete;
  ServeSocket& operator=(const ServeSocket&) = delete;

  /// Run the poll loop until a client sends "shutdown" (or stop() is
  /// called from another thread).
  void serve_forever();

  /// Ask the loop to exit; safe from any thread / signal context (writes
  /// one byte to the self-pipe).
  void stop();

  /// The bound TCP port (after an ephemeral bind), or 0 for unix sockets.
  uint16_t bound_port() const { return bound_port_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  uint16_t bound_port_ = 0;
};

/// Blocking client for the daemon's protocol: connect, exchange frames.
/// Used by incflat_client, the load generator and the smoke tests.
class ServeClient {
 public:
  /// Connect to `ep`; IoError on failure.
  explicit ServeClient(const Endpoint& ep);
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Send one request payload (already-serialised JSON) and block for the
  /// response payload.  Throws IoError on transport failure, ProtocolError
  /// on malformed response framing.
  std::string call_text(const std::string& payload);

  /// Convenience: serialise, call, parse.
  Json call(const Json& request);

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace incflat::serve
