#include "src/serve/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <map>
#include <system_error>
#include <vector>

#include "src/exec/runtime.h"
#include "src/support/error.h"
#include "src/support/sync.h"
#include "src/support/trace.h"

namespace incflat::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  // std::strerror is not thread-safe (clang-tidy concurrency-mt-unsafe);
  // error_code::message() allocates its own buffer.
  throw IoError(
      what + ": " + std::error_code(errno, std::generic_category()).message());
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    sys_fail("fcntl(O_NONBLOCK)");
}

void write_fully(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE to
    // this call, not raise SIGPIPE in a host that never installed a
    // handler (tests, embedding programs).
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      sys_fail("write");
    }
    off += static_cast<size_t>(w);
  }
}

void set_blocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) < 0)
    sys_fail("fcntl(~O_NONBLOCK)");
}

/// Finish a nonblocking connect within `timeout_ms` (must be > 0): poll for
/// writability, then read the final verdict from SO_ERROR.  Throws IoError
/// (closing `fd`) on timeout or failure.
void await_connect(int fd, double timeout_ms, const std::string& where) {
  pollfd p{fd, POLLOUT, 0};
  const int rc = ::poll(&p, 1, std::max(1, static_cast<int>(timeout_ms)));
  if (rc == 0) {
    ::close(fd);
    throw IoError("timed out connecting to " + where);
  }
  if (rc < 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    sys_fail("poll(connect " + where + ")");
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
    ::close(fd);
    errno = err ? err : errno;
    sys_fail("connect(" + where + ")");
  }
}

int connect_endpoint(const Endpoint& ep, double timeout_ms) {
  const bool bounded = timeout_ms > 0;
  if (ep.kind == Endpoint::Kind::Unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      throw IoError("unix socket path too long: " + ep.path);
    }
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (bounded) set_nonblocking(fd);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      if (bounded && (errno == EINPROGRESS || errno == EAGAIN)) {
        await_connect(fd, timeout_ms, ep.path);
      } else {
        const int e = errno;
        ::close(fd);
        errno = e;
        sys_fail("connect(" + ep.path + ")");
      }
    }
    if (bounded) set_blocking(fd);
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  const std::string host = ep.host.empty() ? "127.0.0.1" : ep.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw IoError("bad tcp host (numeric IPv4 required): " + host);
  }
  const std::string where = host + ":" + std::to_string(ep.port);
  if (bounded) set_nonblocking(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (bounded && errno == EINPROGRESS) {
      await_connect(fd, timeout_ms, where);
    } else {
      const int e = errno;
      ::close(fd);
      errno = e;
      sys_fail("connect(" + where + ")");
    }
  }
  if (bounded) set_blocking(fd);
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::Unix;
    ep.path = spec.substr(5);
    if (ep.path.empty())
      throw IoError("empty unix socket path in '" + spec + "'");
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::Tcp;
    std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon != std::string::npos) {
      ep.host = rest.substr(0, colon);
      rest = rest.substr(colon + 1);
    }
    try {
      const int port = std::stoi(rest);
      if (port < 0 || port > 65535) throw std::out_of_range("port");
      ep.port = static_cast<uint16_t>(port);
    } catch (const std::exception&) {
      throw IoError("bad tcp port in '" + spec + "'");
    }
    return ep;
  }
  throw IoError("endpoint must be unix:PATH or tcp:[HOST:]PORT, got '" +
                spec + "'");
}

// ---------------------------------------------------------------------------
// Server.

namespace {

/// Completion queue + self-pipe wakeup, shared (shared_ptr) between the
/// poll loop and every scheduler job.  It is a separate allocation on
/// purpose: a job can still be running when the socket front-end is torn
/// down, and its completion must land somewhere valid — the last owner
/// (possibly a scheduler worker) frees it.
struct DoneQueue {
  int wake_r = -1, wake_w = -1;
  sync::Mutex mu{"serve.done_queue"};
  std::deque<std::tuple<uint64_t, uint64_t, std::string>> q GUARDED_BY(mu);

  DoneQueue() {
    int pipefd[2];
    if (::pipe(pipefd) < 0) sys_fail("pipe");
    wake_r = pipefd[0];
    wake_w = pipefd[1];
    set_nonblocking(wake_r);
    set_nonblocking(wake_w);
  }
  ~DoneQueue() {
    ::close(wake_r);
    ::close(wake_w);
  }

  void wake() {
    const char b = 1;
    // Best-effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t r = ::write(wake_w, &b, 1);
  }

  void push(uint64_t conn_id, uint64_t seq, std::string payload) {
    {
      sync::MutexLock lk(mu);
      q.emplace_back(conn_id, seq, std::move(payload));
    }
    wake();
  }
};

}  // namespace

struct ServeSocket::Impl {
  using Clock = std::chrono::steady_clock;

  ServerCore& core;
  Endpoint ep;
  SocketOptions sopts;
  int listen_fd = -1;
  std::shared_ptr<DoneQueue> dq = std::make_shared<DoneQueue>();
  std::atomic<bool> stop{false};

  // Drain state machine.  drain_req is the only cross-thread (and
  // signal-context) entry point: one atomic store, observed by the loop at
  // the top of each iteration.  Everything else is loop-thread-local.
  std::atomic<bool> drain_req{false};
  bool draining = false;
  Clock::time_point drain_deadline{};
  DrainStats dstats;

  // EMFILE/ENFILE cooldown: accepting resumes after this instant instead of
  // busy-looping on a level-triggered listen fd we cannot accept from.
  Clock::time_point accept_pause_until{};

  NetChaos chaos;

  struct Conn {
    int fd = -1;
    FrameReader reader;
    std::string outbuf;
    size_t outoff = 0;       // written prefix of outbuf; compacted on drain
    uint64_t next_seq = 0;   // next request sequence number to assign
    uint64_t next_write = 0; // next sequence number to write out
    std::map<uint64_t, std::string> ready;  // out-of-order completions
    uint64_t inflight = 0;
    bool closing = false;         // flush outbuf, then close
    bool shutdown_after = false;  // stop the loop once flushed
    // Chaos stall: the connection is not polled until this instant.
    Clock::time_point stalled_until{};
  };
  uint64_t next_conn_id = 1;
  std::map<uint64_t, std::shared_ptr<Conn>> conns;

  Impl(ServerCore& c, Endpoint e, SocketOptions so)
      : core(c),
        ep(std::move(e)),
        sopts(so),
        chaos(so.chaos, so.chaos_seed) {}

  ~Impl() {
    for (auto& [id, conn] : conns)
      if (conn->fd >= 0) ::close(conn->fd);
    if (listen_fd >= 0) ::close(listen_fd);
    if (ep.kind == Endpoint::Kind::Unix) ::unlink(ep.path.c_str());
  }

  void enqueue_response(Conn& c, const std::string& payload) {
    c.outbuf += encode_frame(payload);
  }

  /// Move in-order completions from `ready` into the write buffer.
  void drain_ready(Conn& c) {
    for (auto it = c.ready.find(c.next_write); it != c.ready.end();
         it = c.ready.find(c.next_write)) {
      enqueue_response(c, it->second);
      c.ready.erase(it);
      ++c.next_write;
      --c.inflight;
    }
  }

  void flush(uint64_t id, Conn& c) {
    while (c.outoff < c.outbuf.size()) {
      const size_t avail = c.outbuf.size() - c.outoff;
      size_t cap = avail;
      if (chaos.enabled()) {
        if (chaos.reset_conn()) {  // mid-frame RST on the write side
          close_conn(id);
          return;
        }
        cap = chaos.write_cap(avail);
      }
      // MSG_NOSIGNAL for the same reason as write_fully: dying peers are
      // an errno here, never a process-wide signal.
      const ssize_t w =
          ::send(c.fd, c.outbuf.data() + c.outoff, cap, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        close_conn(id);  // peer vanished mid-response
        return;
      }
      c.outoff += static_cast<size_t>(w);
      // A chaos-truncated write behaves like EAGAIN: stop here and let
      // POLLOUT resume the flush, exercising the offset machinery exactly
      // the way a congested peer would.
      if (cap < avail) return;
    }
    // Fully drained: compact.  The written prefix is tracked as an offset,
    // not erased per write — erasing the front of a large buffer on every
    // partial write to a slow client would be quadratic.
    c.outbuf.clear();
    c.outoff = 0;
    // Close only once everything owed has been written: responses still in
    // flight (queued or waiting for in-order drain) count as owed, so a
    // shutdown acked via the done queue is flushed before the fd closes.
    if (c.closing && c.inflight == 0) {
      if (c.shutdown_after) stop.store(true);
      close_conn(id);
    }
  }

  void close_conn(uint64_t id) {
    auto it = conns.find(id);
    if (it == conns.end()) return;
    if (it->second->fd >= 0) ::close(it->second->fd);
    it->second->fd = -1;
    conns.erase(it);
  }

  /// Answer `seq` on the loop thread through the ordinary in-order drain —
  /// no completion-queue round-trip.  The caller flushes.
  void answer_inline(Conn& c, uint64_t seq, const Json& resp) {
    c.ready.emplace(seq, resp.str(-1));
    drain_ready(c);
  }

  void handle_payload(uint64_t id, const std::shared_ptr<Conn>& conn,
                      const std::string& payload) {
    const uint64_t seq = conn->next_seq++;
    ++conn->inflight;
    Json req;
    try {
      req = Json::parse(payload);
    } catch (const JsonParseError& e) {
      // Malformed JSON fails this one request; framing is still intact.
      dq->push(id, seq,
               error_response(code::kBadRequest,
                              std::string("malformed request json: ") +
                                  e.what())
                   .str(-1));
      return;
    }
    std::string op;
    if (req.is_object()) {
      if (const Json* opv = req.find("op"); opv && opv->is_string())
        op = opv->as_string();
    }
    if (op == "shutdown" || op == "ping") {
      // Cheap control ops answer inline on the loop thread — shutdown must
      // not sit in a queue behind the very work it is trying to stop, and
      // ping must answer even while draining (it is how the soak verifies
      // the daemon never wedges).
      Json resp = core.handle(req);
      answer_inline(*conn, seq, resp);
      if (op == "shutdown") {
        conn->closing = true;
        conn->shutdown_after = true;
      }
      return;
    }
    if (draining) {
      // Fail-fast: no new work enters the scheduler once a drain began.
      Json resp = retriable_error(code::kDraining,
                                  "daemon is draining; retry elsewhere");
      echo_id(req, resp);
      answer_inline(*conn, seq, resp);
      if (trace::enabled()) trace::count("serve.draining_rejected");
      return;
    }
    if (sopts.max_inflight_per_conn > 0 &&
        conn->inflight >
            static_cast<uint64_t>(sopts.max_inflight_per_conn)) {
      // Pipelining past the per-connection cap: shed this request (the
      // newest) with an immediate in-order answer; admitted ones proceed.
      Json resp = retriable_error(
          code::kOverloaded,
          "per-connection in-flight cap (" +
              std::to_string(sopts.max_inflight_per_conn) + ") reached");
      echo_id(req, resp);
      answer_inline(*conn, seq, resp);
      if (trace::enabled()) trace::count("serve.inflight_shed");
      return;
    }
    // End-to-end deadline: minted here (frame decode time) so queue wait,
    // batch wait and execution all burn the same budget.  The shared_ptr
    // keeps the token alive for the job lambda regardless of how the
    // request ends; ServerCore borrows it only inside handle().
    std::shared_ptr<CancelToken> token;
    if (const Json* dl = req.find("deadline_ms");
        dl && dl->is_number() && dl->as_double() > 0) {
      token = std::make_shared<CancelToken>(dl->as_double());
    }
    const JobPriority pri = ServerCore::priority_for(op);
    // The request deadline bounds the queue wait for *every* priority; the
    // server-wide tune queue timeout still applies to Low jobs, and the
    // tighter of the two wins.
    double timeout = token ? token->remaining_ms() : 0;
    if (pri == JobPriority::Low) {
      const double tq = core.options().tune_queue_timeout_ms;
      if (tq > 0) timeout = timeout > 0 ? std::min(timeout, tq) : tq;
    }
    // Jobs capture the shared queue and the core — never Impl, which a
    // still-running job may outlive.  The drop hook substitutes a timeout /
    // overloaded / cancelled response so the connection's in-order writer
    // never stalls on a job that was dropped from the queue.
    std::shared_ptr<DoneQueue> q = dq;
    ServerCore* corep = &core;
    Json req_copy = std::move(req);
    core.scheduler().submit(
        [q, corep, id, seq, req_copy, token](JobContext&) {
          q->push(id, seq,
                  corep->handle(req_copy, token.get()).str(-1));
        },
        pri, timeout, [q, id, seq, req_copy](JobState st) {
          const char* c = st == JobState::Expired    ? code::kTimeout
                          : st == JobState::Shed     ? code::kOverloaded
                                                     : code::kCancelled;
          // All three drops are "the daemon could not get to it": shed and
          // expired are load conditions, cancelled happens at teardown —
          // retriable against a healthy (or another) instance either way.
          Json resp = retriable_error(
              c, std::string("request ") + job_state_name(st) +
                     " before execution");
          echo_id(req_copy, resp);
          q->push(id, seq, resp.str(-1));
        });
  }

  void on_readable(uint64_t id, const std::shared_ptr<Conn>& conn) {
    char buf[64 * 1024];
    for (;;) {
      size_t want = sizeof(buf);
      if (chaos.enabled()) {
        if (chaos.reset_conn()) {  // mid-stream RST: visibly severed
          close_conn(id);
          return;
        }
        if (const double us = chaos.stall_us(); us > 0) {
          // Go quiet: leave whatever else arrived in the kernel buffer and
          // revisit after the stall (the loop skips stalled connections).
          conn->stalled_until =
              Clock::now() +
              std::chrono::microseconds(static_cast<int64_t>(us));
          break;
        }
        want = chaos.read_cap(want);
      }
      const ssize_t n = ::read(conn->fd, buf, want);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(id);
        return;
      }
      if (n == 0) {  // peer closed; flush what we owe, then drop
        conn->closing = true;
        if (conn->outbuf.empty() && conn->inflight == 0) close_conn(id);
        return;
      }
      try {
        // Both feed() and next() can surface a poisoned length prefix:
        // feed() when it heads the buffer, next() when draining a valid
        // frame exposes it.
        conn->reader.feed(buf, static_cast<size_t>(n));
        std::string payload;
        while (conn->reader.next(&payload)) handle_payload(id, conn, payload);
      } catch (const ProtocolError& e) {
        // Framing is poisoned: answer once, then close after the flush.
        // The error takes the connection's next sequence number and goes
        // through the ordinary in-order drain, so it is written *after*
        // every response still in flight — the in-order guarantee holds
        // through the connection's final frames.
        const uint64_t seq = conn->next_seq++;
        ++conn->inflight;
        conn->ready.emplace(seq,
                            error_response(code::kProtocol, e.what()).str(-1));
        conn->closing = true;
        drain_ready(*conn);
        flush(id, *conn);
        return;
      }
      if (static_cast<size_t>(n) < want) break;
    }
    flush(id, *conn);
  }

  void accept_ready() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EMFILE || errno == ENFILE) {
          // Out of descriptors: the listen fd stays level-triggered
          // readable, so polling it again immediately would spin.  Pause
          // accepting briefly; pending connections wait in the backlog.
          accept_pause_until =
              Clock::now() + std::chrono::milliseconds(100);
          if (trace::enabled()) trace::count("serve.accept_emfile");
        }
        break;  // EAGAIN or transient accept failure: back to poll
      }
      if (chaos.enabled() && chaos.accept_fail()) {
        // Chaos: the peer died during the handshake.
        ::close(fd);
        continue;
      }
      set_nonblocking(fd);
      if (ep.kind == Endpoint::Kind::Tcp) {
        const int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      if (sopts.max_conns > 0 &&
          conns.size() >= static_cast<size_t>(sopts.max_conns)) {
        // Over the connection cap: the peer gets one structured retriable
        // "overloaded" frame, then the connection closes — through the
        // ordinary outbuf/flush path so a slow reader still receives it.
        conn->outbuf = encode_frame(
            retriable_error(code::kOverloaded,
                            "connection limit (" +
                                std::to_string(sopts.max_conns) +
                                ") reached; retry later")
                .str(-1));
        conn->closing = true;
        if (trace::enabled()) trace::count("serve.conns_rejected");
        const uint64_t id = next_conn_id++;
        conns.emplace(id, conn);
        flush(id, *conn);
        continue;
      }
      conns.emplace(next_conn_id++, std::move(conn));
    }
  }

  void drain_done() {
    std::deque<std::tuple<uint64_t, uint64_t, std::string>> batch;
    {
      sync::MutexLock lk(dq->mu);
      batch.swap(dq->q);
    }
    for (auto& [conn_id, seq, payload] : batch) {
      auto it = conns.find(conn_id);
      if (it == conns.end()) continue;  // connection already went away
      Conn& c = *it->second;
      c.ready.emplace(seq, std::move(payload));
      drain_ready(c);
      flush(conn_id, c);
    }
  }

  /// Flip into draining: close the listen socket, arm the deadline, mark
  /// every connection closing (flush-what-is-owed-then-close) and reap the
  /// ones that owe nothing right away.
  void begin_drain(Clock::time_point now) {
    draining = true;
    dstats.requested = true;
    drain_deadline =
        now + std::chrono::microseconds(
                  static_cast<int64_t>(std::max(0.0, sopts.drain_ms) *
                                       1000.0));
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    if (trace::enabled()) trace::count("serve.drains");
    std::vector<uint64_t> all;
    all.reserve(conns.size());
    for (auto& [id, conn] : conns) all.push_back(id);
    for (const uint64_t id : all) {
      auto it = conns.find(id);
      if (it == conns.end()) continue;
      it->second->closing = true;
      flush(id, *it->second);  // reaps idle connections immediately
    }
  }

  void loop() {
    std::vector<pollfd> pfds;
    std::vector<uint64_t> ids;
    while (!stop.load()) {
      const Clock::time_point now = Clock::now();
      if (drain_req.load(std::memory_order_relaxed) && !draining)
        begin_drain(now);
      if (draining) {
        if (conns.empty()) {
          dstats.clean = true;
          break;
        }
        if (now >= drain_deadline) {
          // Out of patience: sever the stragglers.  Their scheduler jobs
          // may still complete; the completions land in the done queue and
          // are dropped there (the connection is gone).
          dstats.forced_conns = static_cast<int64_t>(conns.size());
          std::vector<uint64_t> left;
          left.reserve(conns.size());
          for (auto& [id, conn] : conns) left.push_back(id);
          for (const uint64_t id : left) close_conn(id);
          break;
        }
      }

      pfds.clear();
      ids.clear();
      int timeout = -1;
      const auto consider = [&](Clock::time_point tp) {
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(tp - now)
                .count();
        const int t = static_cast<int>(std::clamp<int64_t>(ms + 1, 1, 60000));
        timeout = timeout < 0 ? t : std::min(timeout, t);
      };

      int listen_idx = -1;
      if (!draining) {
        if (now < accept_pause_until) {
          consider(accept_pause_until);  // resume accepting on schedule
        } else {
          listen_idx = static_cast<int>(pfds.size());
          pfds.push_back({listen_fd, POLLIN, 0});
        }
      } else {
        consider(drain_deadline);
      }
      const size_t wake_idx = pfds.size();
      pfds.push_back({dq->wake_r, POLLIN, 0});
      const size_t base = pfds.size();
      for (auto& [id, conn] : conns) {
        if (conn->stalled_until > now) {
          // Chaos-stalled: not polled at all until the stall elapses.
          consider(conn->stalled_until);
          continue;
        }
        short ev = POLLIN;
        if (!conn->outbuf.empty()) ev |= POLLOUT;
        pfds.push_back({conn->fd, ev, 0});
        ids.push_back(id);
      }
      const int rc = ::poll(pfds.data(), pfds.size(), timeout);
      if (rc < 0) {
        if (errno == EINTR) continue;
        sys_fail("poll");
      }
      if (pfds[wake_idx].revents & POLLIN) {
        char buf[256];
        while (::read(dq->wake_r, buf, sizeof(buf)) > 0) {
        }
      }
      drain_done();
      if (listen_idx >= 0 && (pfds[listen_idx].revents & POLLIN))
        accept_ready();
      for (size_t i = 0; i < ids.size(); ++i) {
        const pollfd& p = pfds[i + base];
        auto it = conns.find(ids[i]);
        if (it == conns.end()) continue;
        std::shared_ptr<Conn> conn = it->second;
        if (p.revents & (POLLERR | POLLNVAL)) {
          close_conn(ids[i]);
          continue;
        }
        if (p.revents & POLLOUT) flush(ids[i], *conn);
        if (conns.contains(ids[i]) && (p.revents & (POLLIN | POLLHUP)))
          on_readable(ids[i], conn);
      }
      // A stall that just elapsed may have left a full outbuf unpolled;
      // give such connections a flush kick so progress never depends on
      // fresh traffic arriving.  (Ids snapshotted first: flush may close.)
      std::vector<uint64_t> unstalled;
      for (auto& [id, conn] : conns) {
        if (conn->stalled_until != Clock::time_point{} &&
            conn->stalled_until <= now)
          unstalled.push_back(id);
      }
      for (const uint64_t id : unstalled) {
        auto it = conns.find(id);
        if (it == conns.end()) continue;
        it->second->stalled_until = Clock::time_point{};
        flush(id, *it->second);
      }
    }
  }
};

ServeSocket::ServeSocket(ServerCore& core, const Endpoint& ep,
                         SocketOptions sopts)
    : impl_(std::make_unique<Impl>(core, ep, sopts)) {
  if (ep.kind == Endpoint::Kind::Unix) {
    ::unlink(ep.path.c_str());
    impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (impl_->listen_fd < 0) sys_fail("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path))
      throw IoError("unix socket path too long: " + ep.path);
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0)
      sys_fail("bind(" + ep.path + ")");
  } else {
    impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (impl_->listen_fd < 0) sys_fail("socket(AF_INET)");
    const int one = 1;
    setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    const std::string host = ep.host.empty() ? "127.0.0.1" : ep.host;
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
      throw IoError("bad tcp host (numeric IPv4 required): " + host);
    if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0)
      sys_fail("bind(port " + std::to_string(ep.port) + ")");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0)
      bound_port_ = ntohs(bound.sin_port);
  }
  if (::listen(impl_->listen_fd, 64) < 0) sys_fail("listen");
  set_nonblocking(impl_->listen_fd);
}

ServeSocket::~ServeSocket() = default;

void ServeSocket::serve_forever() { impl_->loop(); }

void ServeSocket::stop() {
  impl_->stop.store(true);
  impl_->dq->wake();
}

void ServeSocket::request_drain() {
  // Async-signal-safe: one atomic store plus one write(2) on the self-pipe.
  impl_->drain_req.store(true, std::memory_order_relaxed);
  impl_->dq->wake();
}

const DrainStats& ServeSocket::drain_stats() const { return impl_->dstats; }

const NetChaos::Counts& ServeSocket::chaos_counts() const {
  return impl_->chaos.counts();
}

// ---------------------------------------------------------------------------
// Client.

ServeClient::ServeClient(const Endpoint& ep, double timeout_ms)
    : fd_(connect_endpoint(ep, timeout_ms)), timeout_ms_(timeout_ms) {}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string ServeClient::call_text(const std::string& payload) {
  const std::string frame = encode_frame(payload);
  // A server may answer-and-close before our request even lands — the
  // over-capacity rejection does exactly that.  An EPIPE/RST on the send
  // must not discard the parting frame already sitting in our receive
  // buffer: fall through to the read, and only if nothing arrives either
  // rethrow the transport error.
  std::exception_ptr send_err;
  try {
    write_fully(fd_, frame.data(), frame.size());
  } catch (const IoError&) {
    send_err = std::current_exception();
  }
  std::string resp;
  if (send_err) {
    try {
      char buf[64 * 1024];
      for (;;) {
        if (reader_.next(&resp)) return resp;
        const ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        reader_.feed(buf, static_cast<size_t>(n));
      }
    } catch (const ProtocolError&) {
      // Poisoned framing on a dead connection: the send error tells the
      // truer story.
    }
    std::rethrow_exception(send_err);
  }
  const auto start = std::chrono::steady_clock::now();
  while (!reader_.next(&resp)) {
    if (timeout_ms_ > 0) {
      // The deadline covers the whole response, not each read: a dribbling
      // server cannot stretch one call forever by staying barely alive.
      const double left =
          timeout_ms_ - std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (left <= 0)
        throw IoError("timed out waiting for response (" +
                      std::to_string(static_cast<int>(timeout_ms_)) + "ms)");
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, std::max(1, static_cast<int>(left)));
      if (rc == 0) continue;  // re-check the deadline
      if (rc < 0) {
        if (errno == EINTR) continue;
        sys_fail("poll(read)");
      }
    }
    char buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("read");
    }
    if (n == 0) throw IoError("server closed connection mid-response");
    reader_.feed(buf, static_cast<size_t>(n));
  }
  return resp;
}

Json ServeClient::call(const Json& request) {
  return Json::parse(call_text(request.str(-1)));
}

}  // namespace incflat::serve
