#include "src/serve/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <system_error>
#include <vector>

#include "src/support/error.h"
#include "src/support/sync.h"

namespace incflat::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  // std::strerror is not thread-safe (clang-tidy concurrency-mt-unsafe);
  // error_code::message() allocates its own buffer.
  throw IoError(
      what + ": " + std::error_code(errno, std::generic_category()).message());
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    sys_fail("fcntl(O_NONBLOCK)");
}

void write_fully(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      sys_fail("write");
    }
    off += static_cast<size_t>(w);
  }
}

int connect_endpoint(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::Unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      throw IoError("unix socket path too long: " + ep.path);
    }
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      sys_fail("connect(" + ep.path + ")");
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  const std::string host = ep.host.empty() ? "127.0.0.1" : ep.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw IoError("bad tcp host (numeric IPv4 required): " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    sys_fail("connect(" + host + ":" + std::to_string(ep.port) + ")");
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::Unix;
    ep.path = spec.substr(5);
    if (ep.path.empty())
      throw IoError("empty unix socket path in '" + spec + "'");
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::Tcp;
    std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon != std::string::npos) {
      ep.host = rest.substr(0, colon);
      rest = rest.substr(colon + 1);
    }
    try {
      const int port = std::stoi(rest);
      if (port < 0 || port > 65535) throw std::out_of_range("port");
      ep.port = static_cast<uint16_t>(port);
    } catch (const std::exception&) {
      throw IoError("bad tcp port in '" + spec + "'");
    }
    return ep;
  }
  throw IoError("endpoint must be unix:PATH or tcp:[HOST:]PORT, got '" +
                spec + "'");
}

// ---------------------------------------------------------------------------
// Server.

namespace {

/// Completion queue + self-pipe wakeup, shared (shared_ptr) between the
/// poll loop and every scheduler job.  It is a separate allocation on
/// purpose: a job can still be running when the socket front-end is torn
/// down, and its completion must land somewhere valid — the last owner
/// (possibly a scheduler worker) frees it.
struct DoneQueue {
  int wake_r = -1, wake_w = -1;
  sync::Mutex mu{"serve.done_queue"};
  std::deque<std::tuple<uint64_t, uint64_t, std::string>> q GUARDED_BY(mu);

  DoneQueue() {
    int pipefd[2];
    if (::pipe(pipefd) < 0) sys_fail("pipe");
    wake_r = pipefd[0];
    wake_w = pipefd[1];
    set_nonblocking(wake_r);
    set_nonblocking(wake_w);
  }
  ~DoneQueue() {
    ::close(wake_r);
    ::close(wake_w);
  }

  void wake() {
    const char b = 1;
    // Best-effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t r = ::write(wake_w, &b, 1);
  }

  void push(uint64_t conn_id, uint64_t seq, std::string payload) {
    {
      sync::MutexLock lk(mu);
      q.emplace_back(conn_id, seq, std::move(payload));
    }
    wake();
  }
};

}  // namespace

struct ServeSocket::Impl {
  ServerCore& core;
  Endpoint ep;
  int listen_fd = -1;
  std::shared_ptr<DoneQueue> dq = std::make_shared<DoneQueue>();
  std::atomic<bool> stop{false};

  struct Conn {
    int fd = -1;
    FrameReader reader;
    std::string outbuf;
    size_t outoff = 0;       // written prefix of outbuf; compacted on drain
    uint64_t next_seq = 0;   // next request sequence number to assign
    uint64_t next_write = 0; // next sequence number to write out
    std::map<uint64_t, std::string> ready;  // out-of-order completions
    uint64_t inflight = 0;
    bool closing = false;         // flush outbuf, then close
    bool shutdown_after = false;  // stop the loop once flushed
  };
  uint64_t next_conn_id = 1;
  std::map<uint64_t, std::shared_ptr<Conn>> conns;

  explicit Impl(ServerCore& c, Endpoint e) : core(c), ep(std::move(e)) {}

  ~Impl() {
    for (auto& [id, conn] : conns)
      if (conn->fd >= 0) ::close(conn->fd);
    if (listen_fd >= 0) ::close(listen_fd);
    if (ep.kind == Endpoint::Kind::Unix) ::unlink(ep.path.c_str());
  }

  void enqueue_response(Conn& c, const std::string& payload) {
    c.outbuf += encode_frame(payload);
  }

  /// Move in-order completions from `ready` into the write buffer.
  void drain_ready(Conn& c) {
    for (auto it = c.ready.find(c.next_write); it != c.ready.end();
         it = c.ready.find(c.next_write)) {
      enqueue_response(c, it->second);
      c.ready.erase(it);
      ++c.next_write;
      --c.inflight;
    }
  }

  void flush(uint64_t id, Conn& c) {
    while (c.outoff < c.outbuf.size()) {
      const ssize_t w = ::write(c.fd, c.outbuf.data() + c.outoff,
                                c.outbuf.size() - c.outoff);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        close_conn(id);  // peer vanished mid-response
        return;
      }
      c.outoff += static_cast<size_t>(w);
    }
    // Fully drained: compact.  The written prefix is tracked as an offset,
    // not erased per write — erasing the front of a large buffer on every
    // partial write to a slow client would be quadratic.
    c.outbuf.clear();
    c.outoff = 0;
    // Close only once everything owed has been written: responses still in
    // flight (queued or waiting for in-order drain) count as owed, so a
    // shutdown acked via the done queue is flushed before the fd closes.
    if (c.closing && c.inflight == 0) {
      if (c.shutdown_after) stop.store(true);
      close_conn(id);
    }
  }

  void close_conn(uint64_t id) {
    auto it = conns.find(id);
    if (it == conns.end()) return;
    if (it->second->fd >= 0) ::close(it->second->fd);
    it->second->fd = -1;
    conns.erase(it);
  }

  void handle_payload(uint64_t id, const std::shared_ptr<Conn>& conn,
                      const std::string& payload) {
    const uint64_t seq = conn->next_seq++;
    ++conn->inflight;
    Json req;
    try {
      req = Json::parse(payload);
    } catch (const JsonParseError& e) {
      // Malformed JSON fails this one request; framing is still intact.
      dq->push(id, seq,
               error_response(code::kBadRequest,
                              std::string("malformed request json: ") +
                                  e.what())
                   .str(-1));
      return;
    }
    std::string op;
    if (req.is_object()) {
      if (const Json* opv = req.find("op"); opv && opv->is_string())
        op = opv->as_string();
    }
    if (op == "shutdown" || op == "ping") {
      // Cheap control ops answer inline on the loop thread — shutdown must
      // not sit in a queue behind the very work it is trying to stop.
      Json resp = core.handle(req);
      dq->push(id, seq, resp.str(-1));
      if (op == "shutdown") {
        conn->closing = true;
        conn->shutdown_after = true;
      }
      return;
    }
    const JobPriority pri = ServerCore::priority_for(op);
    const double timeout = pri == JobPriority::Low
                               ? core.options().tune_queue_timeout_ms
                               : 0;
    // Jobs capture the shared queue and the core — never Impl, which a
    // still-running job may outlive.  The drop hook substitutes a timeout /
    // cancelled response so the connection's in-order writer never stalls
    // on a job that was expired out of the queue.
    std::shared_ptr<DoneQueue> q = dq;
    ServerCore* corep = &core;
    Json req_copy = std::move(req);
    core.scheduler().submit(
        [q, corep, id, seq, req_copy](JobContext&) {
          q->push(id, seq, corep->handle(req_copy).str(-1));
        },
        pri, timeout, [q, id, seq](JobState st) {
          const char* c =
              st == JobState::Expired ? code::kTimeout : code::kCancelled;
          q->push(id, seq,
                  error_response(c, std::string("request ") + job_state_name(st) +
                                        " before execution")
                      .str(-1));
        });
  }

  void on_readable(uint64_t id, const std::shared_ptr<Conn>& conn) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(id);
        return;
      }
      if (n == 0) {  // peer closed; flush what we owe, then drop
        conn->closing = true;
        if (conn->outbuf.empty() && conn->inflight == 0) close_conn(id);
        return;
      }
      try {
        // Both feed() and next() can surface a poisoned length prefix:
        // feed() when it heads the buffer, next() when draining a valid
        // frame exposes it.
        conn->reader.feed(buf, static_cast<size_t>(n));
        std::string payload;
        while (conn->reader.next(&payload)) handle_payload(id, conn, payload);
      } catch (const ProtocolError& e) {
        // Framing is poisoned: answer once, then close after the flush.
        // The error takes the connection's next sequence number and goes
        // through the ordinary in-order drain, so it is written *after*
        // every response still in flight — the in-order guarantee holds
        // through the connection's final frames.
        const uint64_t seq = conn->next_seq++;
        ++conn->inflight;
        conn->ready.emplace(seq,
                            error_response(code::kProtocol, e.what()).str(-1));
        conn->closing = true;
        drain_ready(*conn);
        flush(id, *conn);
        return;
      }
      if (static_cast<size_t>(n) < sizeof(buf)) break;
    }
    flush(id, *conn);
  }

  void accept_ready() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or transient accept failure: back to poll
      }
      set_nonblocking(fd);
      if (ep.kind == Endpoint::Kind::Tcp) {
        const int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      conns.emplace(next_conn_id++, std::move(conn));
    }
  }

  void drain_done() {
    std::deque<std::tuple<uint64_t, uint64_t, std::string>> batch;
    {
      sync::MutexLock lk(dq->mu);
      batch.swap(dq->q);
    }
    for (auto& [conn_id, seq, payload] : batch) {
      auto it = conns.find(conn_id);
      if (it == conns.end()) continue;  // connection already went away
      Conn& c = *it->second;
      c.ready.emplace(seq, std::move(payload));
      drain_ready(c);
      flush(conn_id, c);
    }
  }

  void loop() {
    std::vector<pollfd> pfds;
    std::vector<uint64_t> ids;
    while (!stop.load()) {
      pfds.clear();
      ids.clear();
      pfds.push_back({listen_fd, POLLIN, 0});
      pfds.push_back({dq->wake_r, POLLIN, 0});
      for (auto& [id, conn] : conns) {
        short ev = POLLIN;
        if (!conn->outbuf.empty()) ev |= POLLOUT;
        pfds.push_back({conn->fd, ev, 0});
        ids.push_back(id);
      }
      const int rc = ::poll(pfds.data(), pfds.size(), -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        sys_fail("poll");
      }
      if (pfds[1].revents & POLLIN) {
        char buf[256];
        while (::read(dq->wake_r, buf, sizeof(buf)) > 0) {
        }
      }
      drain_done();
      if (pfds[0].revents & POLLIN) accept_ready();
      for (size_t i = 0; i < ids.size(); ++i) {
        const pollfd& p = pfds[i + 2];
        auto it = conns.find(ids[i]);
        if (it == conns.end()) continue;
        std::shared_ptr<Conn> conn = it->second;
        if (p.revents & (POLLERR | POLLNVAL)) {
          close_conn(ids[i]);
          continue;
        }
        if (p.revents & POLLOUT) flush(ids[i], *conn);
        if (conns.contains(ids[i]) && (p.revents & (POLLIN | POLLHUP)))
          on_readable(ids[i], conn);
      }
    }
  }
};

ServeSocket::ServeSocket(ServerCore& core, const Endpoint& ep)
    : impl_(std::make_unique<Impl>(core, ep)) {
  if (ep.kind == Endpoint::Kind::Unix) {
    ::unlink(ep.path.c_str());
    impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (impl_->listen_fd < 0) sys_fail("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path))
      throw IoError("unix socket path too long: " + ep.path);
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0)
      sys_fail("bind(" + ep.path + ")");
  } else {
    impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (impl_->listen_fd < 0) sys_fail("socket(AF_INET)");
    const int one = 1;
    setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    const std::string host = ep.host.empty() ? "127.0.0.1" : ep.host;
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
      throw IoError("bad tcp host (numeric IPv4 required): " + host);
    if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0)
      sys_fail("bind(port " + std::to_string(ep.port) + ")");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0)
      bound_port_ = ntohs(bound.sin_port);
  }
  if (::listen(impl_->listen_fd, 64) < 0) sys_fail("listen");
  set_nonblocking(impl_->listen_fd);
}

ServeSocket::~ServeSocket() = default;

void ServeSocket::serve_forever() { impl_->loop(); }

void ServeSocket::stop() {
  impl_->stop.store(true);
  impl_->dq->wake();
}

// ---------------------------------------------------------------------------
// Client.

ServeClient::ServeClient(const Endpoint& ep) : fd_(connect_endpoint(ep)) {}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string ServeClient::call_text(const std::string& payload) {
  const std::string frame = encode_frame(payload);
  write_fully(fd_, frame.data(), frame.size());
  std::string resp;
  while (!reader_.next(&resp)) {
    char buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("read");
    }
    if (n == 0) throw IoError("server closed connection mid-response");
    reader_.feed(buf, static_cast<size_t>(n));
  }
  return resp;
}

Json ServeClient::call(const Json& request) {
  return Json::parse(call_text(request.str(-1)));
}

}  // namespace incflat::serve
