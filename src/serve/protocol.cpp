#include "src/serve/protocol.h"

#include <cstring>

namespace incflat::serve {

std::string encode_frame(const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    throw ProtocolError("frame payload too large: " +
                        std::to_string(payload.size()) + " bytes");
  }
  const auto n = static_cast<uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out += payload;
  return out;
}

void FrameReader::feed(const char* data, size_t n) {
  buf_.append(data, n);
  // Validate the declared length eagerly: a hostile prefix must be rejected
  // before its body is ever buffered, not after max_payload_ bytes arrived.
  if (buf_.size() >= 4) {
    const auto* b = reinterpret_cast<const unsigned char*>(buf_.data());
    const uint32_t len = (uint32_t{b[0]} << 24) | (uint32_t{b[1]} << 16) |
                         (uint32_t{b[2]} << 8) | uint32_t{b[3]};
    if (len > max_payload_) {
      throw ProtocolError("frame payload too large: " + std::to_string(len) +
                          " bytes (cap " + std::to_string(max_payload_) + ")");
    }
  }
}

bool FrameReader::next(std::string* payload) {
  if (buf_.size() < 4) return false;
  const auto* b = reinterpret_cast<const unsigned char*>(buf_.data());
  const uint32_t len = (uint32_t{b[0]} << 24) | (uint32_t{b[1]} << 16) |
                       (uint32_t{b[2]} << 8) | uint32_t{b[3]};
  // Validated on *entry*, not after the drain: a valid frame followed by a
  // poisoned header must still be delivered (it was fully received and owed
  // an answer) — the poison then throws on the next drain attempt, still
  // within the read burst that buffered it.
  if (len > max_payload_) {
    throw ProtocolError("frame payload too large: " + std::to_string(len) +
                        " bytes (cap " + std::to_string(max_payload_) + ")");
  }
  if (buf_.size() < 4 + size_t{len}) return false;
  payload->assign(buf_, 4, len);
  buf_.erase(0, 4 + size_t{len});
  return true;
}

Json error_response(const std::string& code, const std::string& message) {
  Json j = Json::object();
  j.set("ok", false).set("code", code).set("error", message);
  return j;
}

Json retriable_error(const std::string& code, const std::string& message) {
  Json j = error_response(code, message);
  j.set("retriable", true);
  return j;
}

bool is_retriable(const Json& response) {
  if (!response.is_object()) return false;
  const Json* ok = response.find("ok");
  if (!ok || !ok->is_bool() || ok->as_bool()) return false;
  const Json* r = response.find("retriable");
  return r && r->is_bool() && r->as_bool();
}

void echo_id(const Json& request, Json& response) {
  if (const Json* id = request.find("id")) response.set("id", *id);
}

}  // namespace incflat::serve
