// Transport-independent core of the compile-and-serve daemon.
//
// ServerCore::handle() answers one protocol request (src/serve/protocol.h)
// and is fully thread-safe: the socket layer (src/serve/net.h) calls it
// from JobScheduler workers, the serve bench and the tests call it from
// plain threads with no sockets at all — both exercise exactly the code
// the daemon runs.
//
// Request flow:
//
//   compile  -> PlanCache lookup under (program, mode, device); miss
//               compiles via exec::compile() and inserts.  The response
//               reports `cached`, the flattened-program content hash, and
//               the cold compile cost, so clients (and the bench's 50x
//               cold-vs-warm gate) can see amortization happen.
//   run      -> lookup under (program, mode, device, dataset shape); a miss
//               reuses the program-level entry's plan when one exists (the
//               compile-once promise: a new shape never re-flattens) and
//               builds a TieredRuntime for the shape.  Concurrent runs
//               against one entry are *batched*: the first requester
//               becomes the batch leader, drains every queued request for
//               the key, and executes them back-to-back through the
//               entry's single TieredRuntime — followers block on their
//               ticket.  One runtime means the tiered profile/specialize
//               machinery keeps working server-side: a hot key crosses its
//               stability window and subsequent batches replay the
//               specialized schedule.
//   tune     -> autotunes the program's thresholds on its training
//               datasets and publishes them; runs with "tuned":true select
//               them.  The socket layer queues tune jobs at Low priority
//               so they never starve run traffic.
//   stats    -> cache / request / scheduler counters, plus a trace-layer
//               span flush (trace::flush_spans) so a traced daemon's event
//               buffer stays bounded over months of uptime.
//
// Fault injection (ServeOptions::faults, also INCFLAT_FAULTS in incflatd)
// routes every run through the fault-tolerant executor with a per-entry
// FaultPlan; an unrecoverable run answers ok=false/"run-failed" — a
// structured response, not a protocol error.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/gpusim/faults.h"
#include "src/serve/plan_cache.h"
#include "src/serve/protocol.h"
#include "src/serve/scheduler.h"
#include "src/support/json.h"
#include "src/support/sync.h"

namespace incflat {
class CancelToken;  // src/exec/runtime.h
}

namespace incflat::serve {

struct ServeOptions {
  size_t cache_bytes = size_t{64} << 20;
  int cache_shards = 8;
  /// Scheduler width; <= 0 picks WorkerPool::pick_width's default.
  int workers = 0;
  /// Fault spec (parse_fault_spec syntax) applied to run execution.
  std::string faults;
  uint64_t fault_seed = 0xfa0175eedULL;
  /// Tiered-runtime knobs for served runs.
  bool specialize = true;
  int64_t hot_runs = 8;
  /// Default trial budget of a `tune` request (overridable per request).
  int tune_trials = 64;
  /// Queue timeout for Low-priority (tune) jobs submitted by the socket
  /// layer; 0 = none.  A request's own deadline_ms, when tighter, wins.
  double tune_queue_timeout_ms = 0;
  /// Per-priority-class bound on the scheduler's waiting queue; a submit
  /// against a full class is shed (answered "overloaded", retriable).
  /// <= 0 = unbounded.
  int64_t queue_cap = 0;
};

/// Request tallies, reported by the stats op.
struct RequestStats {
  int64_t total = 0;
  int64_t compiles = 0;
  int64_t runs = 0;
  int64_t tunes = 0;
  int64_t stats_calls = 0;
  int64_t errors = 0;        // responses with ok=false
  int64_t batches = 0;       // run batches with more than one member
  int64_t batched_runs = 0;  // run requests answered as batch followers
  /// Requests answered "timeout" because their end-to-end deadline expired
  /// (at entry, waiting in a batch queue, or mid-run via the CancelToken).
  /// Scheduler-queue expiries are counted by SchedulerStats::expired.
  int64_t deadline_expired = 0;
};

class ServerCore {
 public:
  explicit ServerCore(ServeOptions opts = {});
  ~ServerCore();
  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  /// Answer one request.  Thread-safe; never throws (failures become
  /// ok=false responses).  `cancel` (optional, not owned, must outlive the
  /// call) carries the request's end-to-end deadline: an already-expired
  /// token answers "timeout" (retriable) without any work, and run/tune
  /// requests check it cooperatively mid-execution — in the batch leader's
  /// drain before each ticket, between kernel launches inside the tiered
  /// runtime, and between tuner evaluations via the tuner's budget hook.
  Json handle(const Json& request, const CancelToken* cancel = nullptr);

  /// Parse + handle + serialise (compact).  Malformed JSON answers a
  /// structured "protocol" error; this never throws either.
  std::string handle_text(const std::string& payload);

  /// Scheduler priority class for an op ("run"/"stats"/"ping"/"shutdown"
  /// High, "compile" Normal, "tune" Low): the socket layer's dispatch rule.
  static JobPriority priority_for(const std::string& op);

  PlanCache& cache() { return cache_; }
  JobScheduler& scheduler() { return sched_; }
  const ServeOptions& options() const { return opts_; }
  RequestStats request_stats() const EXCLUDES(stats_mu_);

 private:
  struct ServedPlan;

  Json dispatch(const Json& req, const CancelToken* cancel);
  Json do_compile(const Json& req);
  Json do_run(const Json& req, const CancelToken* cancel);
  Json do_tune(const Json& req, const CancelToken* cancel);
  Json do_stats();

  /// Find or build the (program, mode, device[, shape]) entry.  `sizes`
  /// null = compile-only entry.
  std::shared_ptr<ServedPlan> lookup_or_compile(const std::string& benchmark,
                                                const std::string& mode,
                                                const std::string& device,
                                                const std::string& dataset,
                                                bool* cached);

  /// Execute one run request against an entry (leader-only; entry state is
  /// exclusively owned while ServedPlan::leader_active).  `cancel` is the
  /// *ticket's* token, not the leader's: in a batch the leader runs other
  /// requests' work under their deadlines.
  Json run_one(ServedPlan& entry, const Json& req, const CancelToken* cancel);

  ServeOptions opts_;
  FaultSpec fspec_;
  PlanCache cache_;

  /// Published tuned thresholds per program key ("tuned":true runs).
  sync::Mutex tuned_mu_{"serve.tuned"};
  std::map<std::string, std::map<std::string, int64_t>> tuned_
      GUARDED_BY(tuned_mu_);

  /// Memoised dataset shapes ("bench|dataset" -> SizeEnv), so warm-path run
  /// lookups never pay get_benchmark() just to compute the cache key.
  /// Reader/writer: the warm path only reads; a miss upgrades to a writer.
  sync::SharedMutex shapes_mu_{"serve.shapes"};
  std::map<std::string, std::map<std::string, int64_t>> shapes_
      GUARDED_BY(shapes_mu_);

  mutable sync::Mutex stats_mu_{"serve.stats"};
  RequestStats rstats_ GUARDED_BY(stats_mu_);

  /// Declared LAST on purpose: the scheduler's destructor joins workers
  /// whose jobs call handle(), which touches every member above — member
  /// destruction runs in reverse declaration order, so the join must come
  /// first.
  JobScheduler sched_;
};

/// Cache key helpers (exposed for tests): "bench|mode|dev" for the program
/// entry, plus "|k=v,k=v" of the dataset's SizeEnv for a run entry.
std::string program_key(const std::string& benchmark, const std::string& mode,
                        const std::string& device);
std::string shape_fingerprint(const std::map<std::string, int64_t>& sizes);

namespace testing {
/// Misuse-injection hook for regression tests: a batch leader calls it once
/// per drained batch, *outside* the per-ticket exception barriers and with
/// the entry mutex released.  Tests install a throwing hook to reconstruct
/// the PR-7 "leader wedge" bug shape and assert the leader guard fails the
/// open tickets instead of wedging the key.  Null (one relaxed atomic load)
/// in production.
extern std::atomic<void (*)()> batch_abort_hook;
}  // namespace testing

}  // namespace incflat::serve
