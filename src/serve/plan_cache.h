// Sharded in-memory LRU cache for served kernel plans.
//
// The daemon's value proposition is that a plan is compiled and tuned once
// and then selected cheaply forever (ROADMAP item 1): every client request
// keyed by (program hash, device profile, dataset shape) after the first
// answers from this cache.  The cache is sharded by key hash so concurrent
// server threads rarely contend on one mutex, each shard keeps an intrusive
// LRU list, and a global byte budget (spread evenly over the shards) bounds
// resident plan memory — eviction walks a shard's LRU tail until the new
// entry fits.
//
// Values are shared_ptrs to a CacheValue subclass: eviction only drops the
// cache's reference, so an in-flight request batch keeps executing against
// an entry that was just evicted under it (the shared_ptr pins it) — the
// same drop-the-table-reference discipline the tiered runtime uses for
// invalidated specialized plans.
//
// Counters: per-cache atomics (always on, reported by the `stats` request)
// plus serve.cache_hit / serve.cache_miss / serve.evictions trace counters
// when the trace layer is enabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/sync.h"

namespace incflat::serve {

/// Base class of cached values; the server derives its served-plan state
/// from it, tests derive synthetic payloads.
struct CacheValue {
  virtual ~CacheValue() = default;
};

struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t inserts = 0;
  size_t bytes = 0;    // resident value bytes
  size_t entries = 0;  // resident entry count
};

class PlanCache {
 public:
  /// `byte_budget` caps the sum of entry byte sizes (split evenly across
  /// shards); 0 means unlimited.  `shards` is clamped to >= 1.
  explicit PlanCache(size_t byte_budget = size_t{64} << 20, int shards = 8);

  /// Look up `key`, refreshing its LRU position.  Counts a hit or a miss
  /// unless `count` is false (internal probes — e.g. the server reusing a
  /// program-level plan while building a shape entry — must not inflate
  /// the hit rate the smoke test asserts on).
  std::shared_ptr<CacheValue> find(const std::string& key, bool count = true);

  /// Insert `value` (of `bytes` bytes) under `key`, evicting from the
  /// shard's LRU tail until the shard budget holds.  When another thread
  /// inserted `key` first, the existing entry wins and is returned — the
  /// compile race loser adopts the winner's plan, keeping one runtime per
  /// key so request batches never split across duplicates.  The returned
  /// pointer is therefore the entry callers must use.
  std::shared_ptr<CacheValue> insert(const std::string& key,
                                     std::shared_ptr<CacheValue> value,
                                     size_t bytes);

  /// Drop one key; false when absent.  (Counts as an eviction.)
  bool erase(const std::string& key);

  /// Drop everything (bytes/entries to zero; counters keep accumulating).
  void clear();

  CacheStats stats() const;
  size_t byte_budget() const { return byte_budget_; }
  int shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<CacheValue> value;
    size_t bytes = 0;
  };
  struct Shard {
    sync::Mutex mu{"serve.cache_shard"};
    // Most-recently-used at the front; eviction pops from the back.
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu) = 0;
  };

  Shard& shard_for(const std::string& key);
  void evict_locked(Shard& s, size_t need) REQUIRES(s.mu);

  size_t byte_budget_;
  size_t shard_budget_;  // byte_budget_ / shards (0 = unlimited)
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> inserts_{0};
};

}  // namespace incflat::serve
