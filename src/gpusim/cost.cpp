#include "src/gpusim/cost.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/ir/traverse.h"
#include "src/support/error.h"

namespace incflat {

double unop_flop_cost(const std::string& op) {
  if (op == "exp" || op == "log" || op == "pow") return 8;
  if (op == "sqrt") return 4;
  return 1;
}

double binop_flop_cost(const std::string& op) { return op == "pow" ? 8 : 1; }

namespace {

double bytes_of(const Type& t, const SizeEnv& sizes) {
  return static_cast<double>(t.count(sizes)) * scalar_bytes(t.elem);
}

double bytes_of(const std::vector<Type>& ts, const SizeEnv& sizes) {
  double b = 0;
  for (const auto& t : ts) b += bytes_of(t, sizes);
  return b;
}

Work work_max(const Work& a, const Work& b) {
  const double wa = a.flops + a.gbytes + a.lbytes;
  const double wb = b.flops + b.gbytes + b.lbytes;
  return wa >= wb ? a : b;
}

struct CostWalker {
  const DeviceProfile& dev;
  const SizeEnv& sizes;
  const ThresholdEnv& thr;
  RunEstimate out;
  TypeEnv env;

  // ------------------------------------------------------------------
  // Sequential (per-thread) cost.  `tile_div` divides global array reads
  // when the enclosing kernel is block-tiled.  `priv` holds the names of
  // thread-private values (loop state, in-thread let bindings): traversing
  // them costs fast-memory (register/local) traffic, not global bandwidth.
  // ------------------------------------------------------------------
  using Privates = std::set<std::string>;

  Work seq(const ExprP& e, double tile_div) {
    Privates priv;
    return seqp(e, tile_div, priv);
  }

  Work seqp(const ExprP& e, double tile_div, Privates priv) {
    if (!e) return {};
    Work w;
    if (e->is<VarE>() || e->is<ConstE>() || e->is<ThresholdCmpE>() ||
        e->is<IotaE>()) {
      return w;
    }
    if (auto* b = e->as<BinOpE>()) {
      w += seqp(b->lhs, tile_div, priv);
      w += seqp(b->rhs, tile_div, priv);
      w.flops += binop_flop_cost(b->op);
      return w;
    }
    if (auto* u = e->as<UnOpE>()) {
      w = seqp(u->e, tile_div, priv);
      w.flops += unop_flop_cost(u->op);
      return w;
    }
    if (auto* i = e->as<IfE>()) {
      w = seqp(i->cond, tile_div, priv);
      w += work_max(seqp(i->then_e, tile_div, priv),
                    seqp(i->else_e, tile_div, priv));
      return w;
    }
    if (auto* l = e->as<LetE>()) {
      w = seqp(l->rhs, tile_div, priv);
      priv.insert(l->vars.begin(), l->vars.end());
      w += seqp(l->body, tile_div, priv);
      return w;
    }
    if (auto* lp = e->as<LoopE>()) {
      for (const auto& in : lp->inits) w += seqp(in, tile_div, priv);
      const double trips =
          static_cast<double>(eval_size_scalar(lp->count, sizes));
      priv.insert(lp->params.begin(), lp->params.end());
      priv.insert(lp->ivar);
      w += seqp(lp->body, tile_div, priv) * trips;
      return w;
    }
    if (auto* m = e->as<MapE>()) {
      const double n = soac_len(m->arrays);
      Privates priv2 = priv;
      for (const auto& p : m->f.params) priv2.insert(p.name);
      Work body = seqp(m->f.body, tile_div, priv2);
      body += read_work(m->arrays, priv, tile_div);
      // Per-element result write: thread-private arrays spill to global
      // memory (they exceed the register file; OpenCL "private" arrays
      // live in DRAM).
      body.gbytes += bytes_of_rows(e->types);
      return body * n;
    }
    if (auto* r = e->as<ReduceE>()) {
      const double n = soac_len(r->arrays);
      Work body = seqp(r->op.body, tile_div, priv);
      body += read_work(r->arrays, priv, tile_div);
      return body * n;
    }
    if (auto* s = e->as<ScanE>()) {
      const double n = soac_len(s->arrays);
      Work body = seqp(s->op.body, tile_div, priv);
      body += read_work(s->arrays, priv, tile_div);
      body.gbytes += bytes_of_rows(e->types);  // spilled private result
      return body * n;
    }
    if (auto* rm = e->as<RedomapE>()) {
      const double n = soac_len(rm->arrays);
      Privates priv2 = priv;
      for (const auto& p : rm->mapf.params) priv2.insert(p.name);
      Work body = seqp(rm->mapf.body, tile_div, priv2);
      body += seqp(rm->red.body, tile_div, priv);
      // A tile cannot be larger than the traversed dimension.
      body += read_work(rm->arrays, priv,
                        std::min(tile_div, std::max(n, 1.0)));
      return body * n;
    }
    if (auto* sm = e->as<ScanomapE>()) {
      const double n = soac_len(sm->arrays);
      Privates priv2 = priv;
      for (const auto& p : sm->mapf.params) priv2.insert(p.name);
      Work body = seqp(sm->mapf.body, tile_div, priv2);
      body += seqp(sm->red.body, tile_div, priv);
      body += read_work(sm->arrays, priv, tile_div);
      body.gbytes += bytes_of_rows(e->types);  // spilled private result
      return body * n;
    }
    if (auto* rp = e->as<ReplicateE>()) {
      w = seqp(rp->elem, tile_div, priv);
      w.gbytes += bytes_of(e->types, sizes);  // spilled private array
      return w;
    }
    if (auto* ra = e->as<RearrangeE>()) {
      return seqp(ra->e, tile_div, priv);  // metadata only
    }
    if (auto* ix = e->as<IndexE>()) {
      w = seqp(ix->arr, tile_div, priv);
      for (const auto& i : ix->idxs) w += seqp(i, tile_div, priv);
      auto* av = ix->arr->as<VarE>();
      if (av && priv.count(av->name)) {
        w.gbytes += bytes_of(e->types, sizes);  // spilled private array
      } else {
        w.gbytes += bytes_of(e->types, sizes) / tile_div;
      }
      return w;
    }
    if (auto* t = e->as<TupleE>()) {
      for (const auto& x : t->elems) w += seqp(x, tile_div, priv);
      return w;
    }
    INCFLAT_FAIL("seq cost: parallel construct in sequential context");
  }

  double soac_len(const std::vector<ExprP>& arrays) {
    INCFLAT_CHECK(!arrays.empty(), "SOAC with no arrays in cost");
    return static_cast<double>(arrays[0]->type().shape[0].eval(sizes));
  }

  /// Traffic of reading one row of each SOAC operand: iota rows are free
  /// (computed), thread-private rows hit fast memory, the rest hit global
  /// memory (divided by the effective tile factor).
  Work read_work(const std::vector<ExprP>& arrays, const Privates& priv,
                 double tile_div) {
    Work w;
    for (const auto& a : arrays) {
      if (a->is<IotaE>()) continue;
      const double b = bytes_of(a->type().row(), sizes);
      auto* av = a->as<VarE>();
      if (av && priv.count(av->name)) {
        w.gbytes += b;  // spilled private array, uncacheable but untiled
      } else {
        w.gbytes += b / tile_div;
      }
    }
    return w;
  }

  /// Bytes of one element (row) of each result array type.
  double bytes_of_rows(const std::vector<Type>& ts) {
    double b = 0;
    for (const auto& t : ts) {
      b += t.rank() >= 1 ? bytes_of(t.row(), sizes)
                         : static_cast<double>(scalar_bytes(t.elem));
    }
    return b;
  }

  // ------------------------------------------------------------------
  // Host-level walk.
  // ------------------------------------------------------------------
  double host(const ExprP& e) {
    if (!e) return 0;
    if (e->is<VarE>() || e->is<ConstE>() || e->is<ThresholdCmpE>() ||
        e->is<IotaE>()) {
      return 0;
    }
    if (auto* l = e->as<LetE>()) {
      double t = host(l->rhs);
      for (size_t i = 0; i < l->vars.size(); ++i) {
        env[l->vars[i]] = l->rhs->types[i];
      }
      return t + host(l->body);
    }
    if (auto* lp = e->as<LoopE>()) {
      double t = 0;
      for (size_t i = 0; i < lp->params.size(); ++i) {
        t += host(lp->inits[i]);
        env[lp->params[i]] = lp->inits[i]->types.at(0);
      }
      env[lp->ivar] = Type::scalar(Scalar::I64);
      const double trips =
          static_cast<double>(eval_size_scalar(lp->count, sizes));
      const int64_t k0 = out.kernel_launches;
      const Work w0 = out.total;
      const size_t kc0 = out.kernels.size();
      double body_t = host(lp->body);
      // Scale the body's contribution by the trip count.
      out.kernel_launches = k0 + (out.kernel_launches - k0) *
                                     static_cast<int64_t>(trips);
      Work dw = out.total;
      dw.flops = w0.flops + (dw.flops - w0.flops) * trips;
      dw.gbytes = w0.gbytes + (dw.gbytes - w0.gbytes) * trips;
      dw.lbytes = w0.lbytes + (dw.lbytes - w0.lbytes) * trips;
      out.total = dw;
      for (size_t k = kc0; k < out.kernels.size(); ++k) {
        out.kernels[k].what += " x" + std::to_string(static_cast<int64_t>(trips));
      }
      return t + body_t * trips;
    }
    if (auto* i = e->as<IfE>()) {
      if (auto* tc = i->cond->as<ThresholdCmpE>()) {
        const bool taken = guard_taken(*tc);
        out.guards.emplace_back(tc->threshold, taken);
        return host(taken ? i->then_e : i->else_e);
      }
      // Data-dependent host-level branch: price the worse branch.
      CostWalker a{dev, sizes, thr, {}, env};
      CostWalker b{dev, sizes, thr, {}, env};
      const double ta = a.host(i->then_e), tb = b.host(i->else_e);
      CostWalker& worse = ta >= tb ? a : b;
      out.kernel_launches += worse.out.kernel_launches;
      out.total += worse.out.total;
      out.kernels.insert(out.kernels.end(), worse.out.kernels.begin(),
                         worse.out.kernels.end());
      out.guards.insert(out.guards.end(), worse.out.guards.begin(),
                        worse.out.guards.end());
      return std::max(ta, tb);
    }
    if (auto* so = e->as<SegOpE>()) return kernel(*so);
    if (auto* t = e->as<TupleE>()) {
      double tt = 0;
      for (const auto& x : t->elems) tt += host(x);
      return tt;
    }
    if (auto* rp = e->as<ReplicateE>()) {
      // Device-side fill of the replicated array.
      Work w;
      w.gbytes = bytes_of(e->types, sizes);
      return price_kernel("replicate", w, sizes_threads(e->types), 1);
    }
    if (e->is<RearrangeE>()) return 0;  // metadata
    if (e->is<IndexE>() || e->is<BinOpE>() || e->is<UnOpE>()) {
      return 0;  // host scalar code
    }
    // Residual sequential SOACs at host level: executed on one GPU thread
    // (the catastrophic case the flatteners avoid).
    Work w = seq(e, 1.0);
    return price_kernel("sequential", w, 1, 1);
  }

  /// Guard evaluation: parallelism threshold plus the workgroup-size
  /// feasibility of intra-group versions on this device.
  bool guard_taken(const ThresholdCmpE& tc) const {
    if (!tc.fit.alts.empty() &&
        tc.fit.eval(sizes) > dev.max_group_size) {
      return false;
    }
    return tc.par.eval(sizes) >= thr.get(tc.threshold);
  }

  int64_t sizes_threads(const std::vector<Type>& ts) {
    int64_t n = 0;
    for (const auto& t : ts) n += t.count(sizes);
    return std::max<int64_t>(n, 1);
  }

  // ------------------------------------------------------------------
  // Kernel pricing.
  // ------------------------------------------------------------------
  double price_kernel(const std::string& what, const Work& w,
                      int64_t threads, int launches,
                      bool local_fallback = false) {
    const double t = roofline_time(dev, w, threads, launches);
    out.kernel_launches += launches;
    out.total += w;
    out.kernels.push_back(KernelCost{what, t, threads, w, local_fallback});
    return t;
  }

  int64_t space_points(const SegSpace& space) const {
    int64_t n = 1;
    for (const auto& b : space) n *= b.dim.eval(sizes);
    return n;
  }

  /// Bytes of scalar (rank-0) space-bound parameters: one read per point.
  double scalar_param_bytes(const SegSpace& space) {
    double b = 0;
    TypeEnv scratch = env;
    for (const auto& lvl : space) {
      for (size_t i = 0; i < lvl.params.size(); ++i) {
        auto it = scratch.find(lvl.arrays[i]);
        INCFLAT_CHECK(it != scratch.end(),
                      "cost: seg array untyped: " + lvl.arrays[i]);
        const Type row = it->second.row();
        scratch[lvl.params[i]] = row;
        if (row.is_scalar()) b += scalar_bytes(row.elem);
      }
    }
    return b;
  }

  /// Bytes of array-typed rows bound by the space — the per-group staged
  /// inputs.  Parameters that only feed a deeper binder (pass-through
  /// chains from rules G6/G7) are peeled, not staged, and are excluded.
  double array_param_bytes(const SegSpace& space) {
    std::set<std::string> pass_through;
    for (const auto& lvl : space) {
      pass_through.insert(lvl.arrays.begin(), lvl.arrays.end());
    }
    double b = 0;
    TypeEnv scratch = env;
    for (const auto& lvl : space) {
      for (size_t i = 0; i < lvl.params.size(); ++i) {
        auto it = scratch.find(lvl.arrays[i]);
        INCFLAT_CHECK(it != scratch.end(), "cost: seg array untyped");
        const Type row = it->second.row();
        scratch[lvl.params[i]] = row;
        if (row.is_array() && !pass_through.count(lvl.params[i])) {
          b += bytes_of(row, sizes);
        }
      }
    }
    return b;
  }

  void bind_space(const SegSpace& space) {
    for (const auto& lvl : space) {
      for (size_t i = 0; i < lvl.params.size(); ++i) {
        env[lvl.params[i]] = env.at(lvl.arrays[i]).row();
      }
    }
  }

  double kernel(const SegOpE& so) {
    TypeEnv saved = env;
    const int64_t points = space_points(so.space);
    const bool has_inner = count_segops(so.body) > 0;
    double t;
    if (has_inner) {
      INCFLAT_CHECK(so.op == SegOpE::Op::Map,
                    "only segmap kernels may contain intra-group parallelism");
      t = group_kernel(so, points);
    } else {
      t = thread_kernel(so, points);
    }
    env = saved;
    return t;
  }

  double thread_kernel(const SegOpE& so, int64_t points) {
    const double tile_div =
        so.block_tiled ? static_cast<double>(dev.tile_size) : 1.0;
    const double scalar_reads = scalar_param_bytes(so.space);
    bind_space(so.space);
    Work per = seq(so.body, tile_div);
    per.gbytes += scalar_reads;

    std::string what;
    int launches = 1;
    Work total = per * static_cast<double>(points);
    if (so.op == SegOpE::Op::Map) {
      what = "segmap^" + std::to_string(so.level);
      total.gbytes += static_cast<double>(points) *
                      bytes_per_point_results(so);
    } else if (so.op == SegOpE::Op::Red) {
      what = "segred^" + std::to_string(so.level);
      Work comb = seq(so.combine.body, 1.0);
      total += comb * static_cast<double>(points);
      // Partials + final pass.
      const int64_t segments =
          points / std::max<int64_t>(so.space.back().dim.eval(sizes), 1);
      total.gbytes += static_cast<double>(segments) *
                      bytes_per_point_results(so);
      launches = 2;
    } else {
      what = "segscan^" + std::to_string(so.level);
      Work comb = seq(so.combine.body, 1.0);
      total += comb * (2.0 * static_cast<double>(points));
      // Multi-pass scan: ~3 global accesses per element (Sec. 5.2).
      total.gbytes += 3.0 * static_cast<double>(points) *
                      bytes_per_point_results(so);
      launches = 2;
    }
    if (so.block_tiled) what += "[tiled]";
    return price_kernel(what, total, points, launches);
  }

  double bytes_per_point_results(const SegOpE& so) {
    double b = 0;
    for (const auto& t : so.body->types) {
      b += t.is_scalar() ? scalar_bytes(t.elem) : bytes_of(t, sizes);
    }
    return b;
  }

  // Accumulated intra-group cost of a segmap^1 body.
  struct GroupAcc {
    Work per_group;
    int64_t max_inner = 1;       // widest level-0 parallelism
    double local_peak = 0;       // scratchpad bytes required
    std::set<std::string> local_names;  // arrays resident in scratchpad
  };

  void group_walk(const ExprP& e, GroupAcc& acc) {
    if (!e) return;
    if (auto* so = e->as<SegOpE>()) {
      const int64_t pts = space_points(so->space);
      acc.max_inner = std::max(acc.max_inner, pts);
      TypeEnv saved = env;
      Work w;
      // Per-point reads of the space-bound parameters: local-memory traffic
      // when the source array lives in scratchpad (staged input or an
      // intermediate produced inside this group), global otherwise.
      for (const auto& lvl : so->space) {
        for (size_t i = 0; i < lvl.params.size(); ++i) {
          const Type row = env.at(lvl.arrays[i]).row();
          env[lvl.params[i]] = row;
          const double b = static_cast<double>(pts) * bytes_of(row, sizes);
          if (acc.local_names.count(lvl.arrays[i])) {
            w.lbytes += b;
          } else {
            w.gbytes += b;
          }
        }
      }
      Work body = seq(so->body, 1.0);
      env = saved;
      const double elem_bytes = bytes_per_point_results(*so);
      const double dpts = static_cast<double>(pts);
      w += body * dpts;
      if (so->op == SegOpE::Op::Scan) {
        // Work-inefficient intra-group scan: log2(n) local sweeps
        // (Hillis-Steele), each reading and writing every element.
        const double logp = std::max(1.0, std::ceil(std::log2(dpts)));
        w.lbytes += 2.0 * logp * dpts * elem_bytes;
        w += seq(so->combine.body, 1.0) * (logp * dpts);
      } else if (so->op == SegOpE::Op::Red) {
        // Tree reduction: ~2n local traffic and n combine applications.
        w.lbytes += 2.0 * dpts * elem_bytes;
        w += seq(so->combine.body, 1.0) * dpts;
      } else {
        w.lbytes += dpts * elem_bytes;  // per-point result write
      }
      acc.per_group += w;
      acc.local_peak = std::max(
          acc.local_peak, 2.0 * static_cast<double>(pts) * elem_bytes);
      return;
    }
    if (auto* l = e->as<LetE>()) {
      group_walk(l->rhs, acc);
      for (size_t i = 0; i < l->vars.size(); ++i) {
        env[l->vars[i]] = l->rhs->types[i];
        acc.local_names.insert(l->vars[i]);  // group-produced intermediate
      }
      group_walk(l->body, acc);
      return;
    }
    if (auto* lp = e->as<LoopE>()) {
      for (size_t i = 0; i < lp->params.size(); ++i) {
        env[lp->params[i]] = lp->inits[i]->types.at(0);
        acc.local_names.insert(lp->params[i]);  // loop state stays resident
      }
      env[lp->ivar] = Type::scalar(Scalar::I64);
      const double trips =
          static_cast<double>(eval_size_scalar(lp->count, sizes));
      GroupAcc inner;
      inner.max_inner = acc.max_inner;
      inner.local_names = acc.local_names;
      group_walk(lp->body, inner);
      acc.per_group += inner.per_group * trips;
      acc.max_inner = std::max(acc.max_inner, inner.max_inner);
      acc.local_peak = std::max(acc.local_peak, inner.local_peak);
      return;
    }
    if (auto* i = e->as<IfE>()) {
      if (auto* tc = i->cond->as<ThresholdCmpE>()) {
        const bool taken = guard_taken(*tc);
        out.guards.emplace_back(tc->threshold, taken);
        group_walk(taken ? i->then_e : i->else_e, acc);
        return;
      }
      GroupAcc a = acc, b = acc;
      group_walk(i->then_e, a);
      group_walk(i->else_e, b);
      const double wa = a.per_group.flops + a.per_group.gbytes + a.per_group.lbytes;
      const double wb = b.per_group.flops + b.per_group.gbytes + b.per_group.lbytes;
      acc = wa >= wb ? a : b;
      return;
    }
    if (auto* t = e->as<TupleE>()) {
      for (const auto& x : t->elems) group_walk(x, acc);
      return;
    }
    // Sequential code inside the group (runs redundantly / on one lane).
    acc.per_group += seq(e, 1.0);
  }

  double group_kernel(const SegOpE& so, int64_t groups) {
    TypeEnv saved = env;
    bind_space(so.space);
    const double staged_in = array_param_bytes(so.space) +
                             scalar_param_bytes(so.space);
    GroupAcc acc;
    // The kernel's space-bound rows are staged into scratchpad up front.
    for (const auto& lvl : so.space) {
      acc.local_names.insert(lvl.params.begin(), lvl.params.end());
    }
    group_walk(so.body, acc);
    env = saved;

    const int64_t group_size = std::min<int64_t>(
        std::max<int64_t>(acc.max_inner, 1), dev.max_group_size);
    Work per = acc.per_group;
    // One-time staging: inputs in, results out, through global memory.
    per.gbytes += staged_in;
    double out_bytes = 0;
    for (const auto& t : so.body->types) out_bytes += bytes_of(t, sizes);
    per.gbytes += out_bytes;

    // Only intermediates must be resident in scratchpad; staged inputs can
    // be streamed from global memory.
    const double local_need = acc.local_peak;
    bool fallback = false;
    if (local_need > static_cast<double>(dev.local_mem_bytes)) {
      // Sec. 4.1's "fallback kernel": intermediates spill to global memory.
      fallback = true;
      per.gbytes += per.lbytes * 1.2;
      per.lbytes = 0;
    }

    Work total = per * static_cast<double>(groups);
    const int64_t threads = groups * group_size;
    std::string what = "segmap^" + std::to_string(so.level) + "{intra}";
    return price_kernel(what, total, threads, 1, fallback);
  }
};

}  // namespace

int64_t eval_size_scalar(const ExprP& e, const SizeEnv& sizes) {
  if (auto* v = e->as<VarE>()) {
    auto it = sizes.find(v->name);
    if (it == sizes.end()) {
      throw EvalError("size scalar: unbound " + v->name);
    }
    return it->second;
  }
  if (auto* c = e->as<ConstE>()) return c->i;
  if (auto* b = e->as<BinOpE>()) {
    const int64_t x = eval_size_scalar(b->lhs, sizes);
    const int64_t y = eval_size_scalar(b->rhs, sizes);
    if (b->op == "+") return x + y;
    if (b->op == "-") return x - y;
    if (b->op == "*") return x * y;
    if (b->op == "/") return y == 0 ? 0 : x / y;
    if (b->op == "min") return std::min(x, y);
    if (b->op == "max") return std::max(x, y);
  }
  throw EvalError("size scalar: unsupported expression");
}

double roofline_time(const DeviceProfile& dev, const Work& w, int64_t threads,
                     int launches) {
  const double n = std::max<double>(static_cast<double>(threads), 1.0);
  const double u = std::min(
      1.0, n / static_cast<double>(dev.saturation_threads));
  // Each resource rate scales linearly with utilised parallelism, floored
  // by the latency-bound per-thread streaming rate of `n` lone threads.
  auto rate = [&](double peak, double st) {
    return std::min(peak, std::max(u * peak, n * st));
  };
  return launches * dev.launch_overhead_us +
         std::max({w.flops / rate(dev.flop_rate, dev.st_flop_rate),
                   w.gbytes / rate(dev.gmem_bw, dev.st_gmem_rate),
                   w.lbytes / rate(dev.lmem_bw, dev.st_lmem_rate)});
}

RunEstimate estimate_run(const DeviceProfile& dev, const Program& p,
                         const SizeEnv& sizes,
                         const ThresholdEnv& thresholds) {
  CostWalker w{dev, sizes, thresholds, {}, {}};
  for (const auto& in : p.inputs) w.env[in.name] = in.type;
  for (const auto& sp : p.size_params()) {
    w.env[sp] = Type::scalar(Scalar::I64);
  }
  w.out.time_us = w.host(p.body);
  RunEstimate out = std::move(w.out);
  return out;
}

}  // namespace incflat
