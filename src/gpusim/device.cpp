#include "src/gpusim/device.h"

namespace incflat {

DeviceProfile device_k40() {
  DeviceProfile d;
  d.name = "k40";
  d.num_cus = 15;
  d.max_group_size = 1024;
  d.default_group_size = 256;
  d.local_mem_bytes = 48 * 1024;
  d.flop_rate = 4.29e6;   // 4.29 Tflop/s SP
  d.gmem_bw = 288e3;      // 288 GB/s
  d.lmem_bw = 1.8e6;      // aggregate shared-memory bandwidth
  d.launch_overhead_us = 5.0;
  d.saturation_threads = 15 * 2048;  // 30720 ~= 2^15
  d.tile_size = 16;
  d.st_gmem_rate = 10.0;
  d.st_lmem_rate = 40.0;
  d.st_flop_rate = 140.0;
  return d;
}

DeviceProfile device_vega64() {
  DeviceProfile d;
  d.name = "vega64";
  d.num_cus = 64;
  d.max_group_size = 256;
  d.default_group_size = 256;
  d.local_mem_bytes = 64 * 1024;
  d.flop_rate = 12.5e6;   // 12.5 Tflop/s SP
  d.gmem_bw = 484e3;      // 484 GB/s HBM2
  d.lmem_bw = 9.0e6;
  d.launch_overhead_us = 8.0;
  d.saturation_threads = 64 * 2560;  // 163840
  d.tile_size = 16;
  d.st_gmem_rate = 4.0;
  d.st_lmem_rate = 16.0;
  d.st_flop_rate = 80.0;
  return d;
}

DeviceProfile device_multicore() {
  DeviceProfile d;
  d.name = "multicore";
  d.num_cus = 32;            // cores
  d.max_group_size = 16;     // AVX-512 f32 lanes
  d.default_group_size = 16;
  d.local_mem_bytes = 1024 * 1024;  // per-core L2 slice as "scratchpad"
  d.flop_rate = 2.0e6;       // 2 Tflop/s SP across the socket
  d.gmem_bw = 200e3;         // 200 GB/s DRAM
  d.lmem_bw = 4.0e6;         // aggregate L2 bandwidth
  d.launch_overhead_us = 1.0;  // a parallel-for dispatch, not a kernel
  d.saturation_threads = 32 * 16;  // cores x lanes = 512
  d.tile_size = 8;
  d.st_gmem_rate = 4000.0;   // one core streams ~4 GB/s
  d.st_lmem_rate = 16000.0;
  d.st_flop_rate = 60000.0;  // one core ~60 Gflop/s with SIMD+ILP
  return d;
}

}  // namespace incflat
