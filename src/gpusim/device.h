// GPU device profiles for the analytic performance model.
//
// No physical GPU is available in this reproduction, so the paper's two
// testbeds are replaced by analytic profiles capturing the characteristics
// the paper's results actually depend on:
//   * saturation thread count (the origin of the 2^15 default threshold),
//   * global-memory bandwidth vs. peak FLOP rate (Vega 64 is relatively
//     more memory-bound than the K40 — Sec. 5.2's explanation for why
//     the local-memory version wins there),
//   * workgroup size limits (K40: 1024, Vega 64: 256 — Sec. 5.1),
//   * local (scratchpad) memory capacity (Sec. 4.1: 32-64 KiB),
//   * kernel launch overhead.
#pragma once

#include <cstdint>
#include <string>

namespace incflat {

struct DeviceProfile {
  std::string name;

  /// Compute units (SMs / CUs), informational.
  int num_cus = 15;

  /// Largest supported workgroup size.
  int max_group_size = 1024;

  /// Default workgroup size used when a kernel has no intra-group
  /// parallelism (the paper uses 256 everywhere, Sec. 5.1).
  int default_group_size = 256;

  /// Scratchpad (OpenCL local / CUDA shared) memory per workgroup, bytes.
  int64_t local_mem_bytes = 48 * 1024;

  /// Peak single-precision rate, flops per microsecond.
  double flop_rate = 4.29e6;

  /// Global-memory bandwidth, bytes per microsecond.
  double gmem_bw = 288e3;

  /// Aggregate local-memory bandwidth, bytes per microsecond.
  double lmem_bw = 2.8e6;

  /// Fixed cost of one kernel launch, microseconds.
  double launch_overhead_us = 5.0;

  /// Number of resident threads needed to saturate the device.  Rates scale
  /// linearly below this (the basis of the paper's 2^15 default threshold).
  int64_t saturation_threads = 30720;

  /// Block-tiling factor assumed by the cost model when a kernel is marked
  /// block_tiled (square tiles of this side staged in scratchpad).
  int tile_size = 16;

  /// Single-thread floors: a lone thread is latency-bound, not
  /// bandwidth-share-bound, so a kernel with very few threads still streams
  /// memory at threads * st_* instead of the (much smaller) linear
  /// utilisation share.  Units: bytes/us and flops/us per thread.
  double st_gmem_rate = 10.0;
  double st_lmem_rate = 40.0;
  double st_flop_rate = 140.0;

  /// flops per byte at peak — how compute-rich the device is.
  double compute_intensity() const { return flop_rate / gmem_bw; }
};

/// NVIDIA Tesla K40-like profile (the paper's CUDA testbed).
DeviceProfile device_k40();

/// AMD Vega 64-like profile (the paper's OpenCL testbed; relatively more
/// memory-bound, smaller max workgroup, larger scratchpad).
DeviceProfile device_vega64();

/// Experimental SIMD-multicore profile (the paper's closing remark: the
/// rules "set a solid foundation for approaching other types of
/// heterogeneous hardware, such as multicores with SIMD support").
/// Level 1 = cores, level 0 = SIMD lanes; saturation is reached with just
/// a few dozen threads, so the tuned thresholds land orders of magnitude
/// below the GPU defaults — exercised by tests/test_multicore.cpp.
DeviceProfile device_multicore();

}  // namespace incflat
