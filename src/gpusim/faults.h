// Deterministic fault injection for the simulated device.
//
// No physical GPU means no real launch failures either — but the production
// story (ROADMAP: survive flaky devices and interrupted runs) needs the
// executor and autotuner exercised against them.  A FaultPlan is a seeded,
// replayable oracle consulted once per simulated kernel launch: it answers
// "does this launch fault, and how?" from per-kind rates, with an optional
// scripted schedule that pins exact faults to exact launch indices for
// tests.  Measurement noise (the autotuner's enemy) is a separate stream on
// the same seed so launch faults and noise draws never perturb each other.
//
// Everything is splitmix64-deterministic: the same spec and seed produce
// the same fault sequence on every platform, which is what makes degraded
// runs and resumed tuning searches reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/support/rng.h"

namespace incflat {

/// The typed faults a simulated kernel launch can suffer.
enum class FaultKind {
  None = 0,
  LaunchFailed,     // transient: the launch never started; retryable
  LaunchTimeout,    // transient: the launch overran its timeout; retryable
  LocalAllocFailed, // persistent: scratchpad allocation failed; degrade
  DeviceLost,       // transient: device reset mid-launch; retryable
};

const char* fault_kind_name(FaultKind k);

/// Per-launch fault rates plus the relative measurement-noise amplitude.
/// All rates are probabilities in [0, 1]; their sum must stay <= 1.
struct FaultSpec {
  double launch_failed = 0;
  double launch_timeout = 0;
  double local_alloc = 0;
  double device_lost = 0;
  /// Relative amplitude of multiplicative measurement noise: a measured
  /// time is the true time scaled by a uniform factor in [1-noise, 1+noise].
  double noise = 0;
  /// Scripted faults pinned to exact launch indices (`kind@index` in the
  /// spec syntax); they fire regardless of the rates and consume no draw.
  std::vector<std::pair<int64_t, FaultKind>> script;

  double launch_rate() const {
    return launch_failed + launch_timeout + local_alloc + device_lost;
  }
  /// True when any launch can fault (randomly or scripted).
  bool faults_launches() const {
    return launch_rate() > 0 || !script.empty();
  }
  bool enabled() const { return faults_launches() || noise > 0; }
};

/// Parse a `--faults` SPEC: "off" / "" disables everything; otherwise a
/// comma-separated list of `key=rate` entries with keys launch-failed,
/// launch-timeout, local-alloc, device-lost, noise, the shorthand `all=R`
/// which spreads R evenly over the four launch-fault kinds, and scripted
/// `kind@index` entries that pin a fault to one launch ordinal.  Throws
/// IoError on malformed specs or out-of-range rates.
FaultSpec parse_fault_spec(const std::string& spec);

/// One-line canonical rendering of a spec (parse round-trips it).
std::string fault_spec_str(const FaultSpec& spec);

/// The seeded per-launch fault oracle.  Stateful: every next_launch() call
/// advances the launch index, every noise_factor() call advances the noise
/// stream.  Scripted entries override the random draw at their index (and
/// consume no randomness, so script-only plans are exact).
class FaultPlan {
 public:
  /// Default-constructed plans inject nothing and draw nothing.
  FaultPlan() : FaultPlan(FaultSpec{}, 0) {}
  FaultPlan(const FaultSpec& spec, uint64_t seed)
      : spec_(spec), seed_(seed), launch_rng_(seed ^ kLaunchStream),
        noise_rng_(seed ^ kNoiseStream) {
    for (const auto& [ix, kind] : spec.script) script_[ix] = kind;
  }

  const FaultSpec& spec() const { return spec_; }
  uint64_t seed() const { return seed_; }
  bool enabled() const { return spec_.enabled() || !script_.empty(); }

  /// Pin the fault for one specific launch index (0-based, in consultation
  /// order).  Scripted faults fire regardless of the rates.
  void script(int64_t launch_index, FaultKind kind) {
    script_[launch_index] = kind;
  }

  /// Decide the fault for the next simulated launch and advance the
  /// sequence.  Scripted index -> scripted kind (no draw); otherwise one
  /// uniform draw partitioned by the per-kind rates (no draw at all when
  /// every rate is zero, so disabled plans are free).
  FaultKind next_launch();

  /// Multiplicative noise factor for one measurement: uniform in
  /// [1-noise, 1+noise]; exactly 1.0 (and no draw) when noise is zero.
  double noise_factor();

  /// Launches consulted so far (the index the next next_launch() decides).
  int64_t launches() const { return launch_ix_; }

  /// Restart both streams from the seed; the scripted schedule is kept.
  void reset() {
    launch_rng_ = Rng(seed_ ^ kLaunchStream);
    noise_rng_ = Rng(seed_ ^ kNoiseStream);
    launch_ix_ = 0;
  }

 private:
  static constexpr uint64_t kLaunchStream = 0x1a0c4fa171bee5ULL;
  static constexpr uint64_t kNoiseStream = 0x9015ebadf00dULL;

  FaultSpec spec_;
  uint64_t seed_ = 0;
  Rng launch_rng_;
  Rng noise_rng_;
  int64_t launch_ix_ = 0;
  std::map<int64_t, FaultKind> script_;
};

}  // namespace incflat
