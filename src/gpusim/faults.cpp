#include "src/gpusim/faults.h"

#include <sstream>

#include "src/support/error.h"
#include "src/support/str.h"

namespace incflat {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::None: return "none";
    case FaultKind::LaunchFailed: return "launch-failed";
    case FaultKind::LaunchTimeout: return "launch-timeout";
    case FaultKind::LocalAllocFailed: return "local-alloc-failed";
    case FaultKind::DeviceLost: return "device-lost";
  }
  return "?";
}

namespace {

double parse_rate(const std::string& key, const std::string& text) {
  try {
    size_t consumed = 0;
    const double v = std::stod(text, &consumed);
    if (consumed != text.size()) throw IoError("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw IoError("faults: bad rate for '" + key + "': '" + text + "'");
  }
}

FaultKind scriptable_kind(const std::string& key) {
  if (key == "launch-failed") return FaultKind::LaunchFailed;
  if (key == "launch-timeout") return FaultKind::LaunchTimeout;
  if (key == "local-alloc") return FaultKind::LocalAllocFailed;
  if (key == "device-lost") return FaultKind::DeviceLost;
  throw IoError("faults: unknown fault kind '" + key + "'");
}

const char* scriptable_key(FaultKind k) {
  switch (k) {
    case FaultKind::LaunchFailed: return "launch-failed";
    case FaultKind::LaunchTimeout: return "launch-timeout";
    case FaultKind::LocalAllocFailed: return "local-alloc";
    case FaultKind::DeviceLost: return "device-lost";
    case FaultKind::None: break;
  }
  throw IoError("faults: kind cannot be scripted");
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec s;
  if (spec.empty() || spec == "off" || spec == "none") return s;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    const size_t at = item.find('@');
    if (at != std::string::npos && (eq == std::string::npos || at < eq)) {
      // Scripted entry: kind@launch-index.
      const std::string key = item.substr(0, at);
      const std::string ix_text = item.substr(at + 1);
      int64_t ix = 0;
      try {
        size_t consumed = 0;
        ix = std::stoll(ix_text, &consumed);
        if (consumed != ix_text.size() || ix < 0) throw IoError("bad index");
      } catch (const std::exception&) {
        throw IoError("faults: bad launch index in '" + item + "'");
      }
      s.script.emplace_back(ix, scriptable_kind(key));
      continue;
    }
    if (eq == std::string::npos) {
      throw IoError("faults: expected key=rate or kind@index, got '" + item +
                    "'");
    }
    const std::string key = item.substr(0, eq);
    const double v = parse_rate(key, item.substr(eq + 1));
    if (key == "noise") {
      if (v < 0 || v >= 1) {
        throw IoError("faults: noise must be in [0, 1): " + item);
      }
      s.noise = v;
      continue;
    }
    if (v < 0 || v > 1) {
      throw IoError("faults: rate must be in [0, 1]: " + item);
    }
    if (key == "launch-failed") {
      s.launch_failed = v;
    } else if (key == "launch-timeout") {
      s.launch_timeout = v;
    } else if (key == "local-alloc") {
      s.local_alloc = v;
    } else if (key == "device-lost") {
      s.device_lost = v;
    } else if (key == "all") {
      s.launch_failed = s.launch_timeout = s.local_alloc = s.device_lost =
          v / 4;
    } else {
      throw IoError("faults: unknown fault kind '" + key + "'");
    }
  }
  if (s.launch_rate() > 1.0) {
    throw IoError("faults: launch fault rates sum to more than 1");
  }
  return s;
}

std::string fault_spec_str(const FaultSpec& spec) {
  if (!spec.enabled()) return "off";
  std::ostringstream os;
  const char* sep = "";
  const auto emit = [&](const char* key, double v) {
    if (v <= 0) return;
    os << sep << key << "=" << fmt_double(v, 6);
    sep = ",";
  };
  emit("launch-failed", spec.launch_failed);
  emit("launch-timeout", spec.launch_timeout);
  emit("local-alloc", spec.local_alloc);
  emit("device-lost", spec.device_lost);
  emit("noise", spec.noise);
  for (const auto& [ix, kind] : spec.script) {
    os << sep << scriptable_key(kind) << "@" << ix;
    sep = ",";
  }
  return os.str();
}

FaultKind FaultPlan::next_launch() {
  const int64_t ix = launch_ix_++;
  const auto it = script_.find(ix);
  if (it != script_.end()) return it->second;
  if (spec_.launch_rate() <= 0) return FaultKind::None;
  const double u = launch_rng_.uniform();
  double edge = spec_.launch_failed;
  if (u < edge) return FaultKind::LaunchFailed;
  edge += spec_.launch_timeout;
  if (u < edge) return FaultKind::LaunchTimeout;
  edge += spec_.local_alloc;
  if (u < edge) return FaultKind::LocalAllocFailed;
  edge += spec_.device_lost;
  if (u < edge) return FaultKind::DeviceLost;
  return FaultKind::None;
}

double FaultPlan::noise_factor() {
  if (spec_.noise <= 0) return 1.0;
  return 1.0 + spec_.noise * (2.0 * noise_rng_.uniform() - 1.0);
}

}  // namespace incflat
