// Analytic cost model over target-language programs.
//
// The model walks a flattened (target) program with concrete dataset sizes
// and a threshold assignment, follows exactly the code versions the guards
// select, and prices every kernel with a roofline-style formula:
//
//   time = launch_overhead
//        + max(flops / (flop_rate * u),
//              global_bytes / (gmem_bw * u),
//              local_bytes  / (lmem_bw * u))
//   u    = min(1, total_threads / saturation_threads)
//
// Level-1 kernels with intra-group (level-0) content stage their per-group
// inputs/outputs through global memory once and run all intermediate
// traffic through local memory (the Sec. 5.2 "two global accesses per
// element for all three scans" behaviour); their per-group scratchpad
// requirement is checked against the device limit, falling back to global
// memory with a penalty when exceeded (the Sec. 4.1 "fallback kernel").
// Sequentialised redomaps inside block_tiled segmaps read tile_size times
// less global traffic (block tiling, Sec. 2.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/gpusim/device.h"
#include "src/interp/interp.h"
#include "src/ir/expr.h"

namespace incflat {

/// flop / byte tallies of a region of code.
struct Work {
  double flops = 0;
  double gbytes = 0;  // global-memory traffic
  double lbytes = 0;  // local-memory traffic

  Work& operator+=(const Work& o) {
    flops += o.flops;
    gbytes += o.gbytes;
    lbytes += o.lbytes;
    return *this;
  }
  Work operator*(double s) const { return Work{flops * s, gbytes * s, lbytes * s}; }
};

/// One priced kernel (for reports and tests).
struct KernelCost {
  std::string what;      // segmap^1 / segred^1 / ...
  double time_us = 0;
  int64_t threads = 0;
  Work work;
  bool used_local_fallback = false;  // scratchpad exceeded -> global fallback
};

/// Whole-run estimate.
struct RunEstimate {
  double time_us = 0;
  int64_t kernel_launches = 0;
  Work total;
  std::vector<KernelCost> kernels;
  /// Branch taken by every guard evaluated, in evaluation order.
  std::vector<std::pair<std::string, bool>> guards;
};

/// Price one whole program run on `dev` with dataset `sizes` under the given
/// threshold assignment.
RunEstimate estimate_run(const DeviceProfile& dev, const Program& p,
                         const SizeEnv& sizes, const ThresholdEnv& thresholds);

/// Evaluate a scalar integer expression (loop counts, size arithmetic) under
/// a size environment.  Supports vars, constants and integer arithmetic.
int64_t eval_size_scalar(const ExprP& e, const SizeEnv& sizes);

/// Roofline time (microseconds) of one hand-priced kernel on `dev`: the
/// same formula the cost walker uses, exposed for the reference-
/// implementation models of cuBLAS / FinPar / Rodinia kernels.
double roofline_time(const DeviceProfile& dev, const Work& w, int64_t threads,
                     int launches);

/// flop charge of a scalar unary / binary operator.  Shared by the legacy
/// walker and the plan builder (src/plan/) so the two models cannot drift.
double unop_flop_cost(const std::string& op);
double binop_flop_cost(const std::string& op);

}  // namespace incflat
