// Rodinia benchmarks with native nested parallelism (paper Sec. 5.3):
// Backprop, LavaMD, NW.  The numerical payloads are simplified but every
// benchmark keeps the parallel structure the paper's analysis relies on.
#include <cmath>

#include "src/benchsuite/benchmark.h"
#include "src/benchsuite/reference.h"
#include "src/ir/builder.h"
#include "src/ir/typecheck.h"

namespace incflat {

namespace {

using namespace ib;

Type f32s() { return Type::scalar(Scalar::F32); }

// ------------------------------------------------------------- Backprop
//
// Forward layer: map over output neurons of a redomap over the (huge) input
// layer, plus the weight-update sweep.  Under MF the redomap is
// sequentialised — 16 threads for a 2^20-wide reduction; AIF parallelises
// it (the paper attributes AIF's win to keeping the map-reduce fused).
Program backprop_program() {
  Program p;
  p.name = "Backprop";
  p.inputs = {
      {"wss", Type::array(Scalar::F32, {Dim::v("n_out"), Dim::v("n_in")})},
      {"xs", Type::array(Scalar::F32, {Dim::v("n_in")})},
  };
  // Dataset invariant: the Rodinia input layer is 2^13..2^20 wide, so a
  // per-neuron row never fits one workgroup (size analysis folds the
  // intra-group guard away).  test_sizes stay tiny and out-of-bounds.
  p.size_bounds["n_in"] = SizeBound{4096, -1};
  // The map-into-reduce chain is written *unfused*; the fusion pass turns
  // it into a redomap for incremental flattening, while the harness keeps
  // it unfused under moderate flattening (fuse_moderate = false below),
  // reproducing the paper's Sec. 5.3 setup.
  Lambda wx = lam({ib::p("w", f32s()), ib::p("x", f32s())},
                  mul(var("w"), var("x")));
  Lambda neuron =
      lam({ib::p("ws", Type())},
          let1("prods", map(wx, {var("ws"), var("xs")}),
               let1("s",
                    reduce(binlam("+", Scalar::F32), {cf32(0)},
                           {var("prods")}),
                    divide(cf32(1), add(cf32(1), exp_(neg(var("s"))))))));
  Lambda upd_elem = lam({ib::p("w2", f32s()), ib::p("x2", f32s())},
                        add(var("w2"), mul(mul(cf32(0.3), var("d")),
                                           var("x2"))));
  Lambda upd_row =
      lam({ib::p("ws2", Type()), ib::p("d", f32s())},
          map(upd_elem, {var("ws2"), var("xs")}));
  Lambda dsig = lam({ib::p("h", f32s())},
                    mul(var("h"), sub(cf32(1), var("h"))));
  p.body = let1("hidden", map1(neuron, var("wss")),
                let1("delta", map1(dsig, var("hidden")),
                     map(upd_row, {var("wss"), var("delta")})));
  return typecheck_program(std::move(p));
}

Values backprop_golden(const SizeEnv& sz, const std::vector<Value>& in) {
  const int64_t no = sz.at("n_out"), ni = sz.at("n_in");
  const Value &wss = in[0], &xs = in[1];
  Value out = Value::zeros(Scalar::F32, {no, ni});
  for (int64_t o = 0; o < no; ++o) {
    double acc = 0;
    for (int64_t i = 0; i < ni; ++i) acc += wss.fget(o * ni + i) * xs.fget(i);
    const double h = 1.0 / (1.0 + std::exp(-acc));
    const double d = h * (1.0 - h);
    for (int64_t i = 0; i < ni; ++i) {
      out.fset(o * ni + i, wss.fget(o * ni + i) + 0.3 * d * xs.fget(i));
    }
  }
  return {out};
}

// --------------------------------------------------------------- LavaMD
//
// map over boxes { map over particles { loop over neighbour boxes
// { redomap over the neighbour's particles } } }.  Both Rodinia and MF
// exploit the two outer levels and tile the inner redomap (optimal on D1);
// on D2 (27 boxes) AIF wins by parallelising the inner redomap at
// workgroup level.
Program lavamd_program() {
  Program p;
  p.name = "LavaMD";
  p.inputs = {
      {"pos", Type::array(Scalar::F32, {Dim::v("boxes"), Dim::v("ppb")})},
  };
  p.extra_sizes = {"nbr"};
  // Dataset invariant: Rodinia fixes 100-ish particles per box (ours use
  // 50); guard decisions may rely on ppb >= 40.
  p.size_bounds["ppb"] = SizeBound{40, -1};
  // Interaction with one particle of the neighbour box, gathered by index.
  Lambda inter =
      lam({ib::p("qi", Type::scalar(Scalar::I64))},
          let1("q",
               index(var("pos"), {bin("%", add(var("bid"), var("j")),
                                      var("boxes")),
                                  var("qi")}),
               divide(cf32(1),
                      add(mul(sub(var("pp"), var("q")),
                              sub(var("pp"), var("q"))),
                          cf32(0.1)))));
  ExprP nbr_force = redomap(binlam("+", Scalar::F32), inter, {cf32(0)},
                            {iota(Dim::v("ppb"))});
  Lambda per_particle =
      lam({ib::p("pp", f32s())},
          loop({"acc"}, {cf32(0)}, "j", var("nbr"),
               let1("f", nbr_force, add(var("acc"), var("f")))));
  Lambda per_box = lam({ib::p("box_ps", Type()),
                        ib::p("bid", Type::scalar(Scalar::I64))},
                       map1(per_particle, var("box_ps")));
  p.body = map(per_box, {var("pos"), iota(Dim::v("boxes"))});
  return typecheck_program(std::move(p));
}

Values lavamd_golden(const SizeEnv& sz, const std::vector<Value>& in) {
  const int64_t nb = sz.at("boxes"), pp = sz.at("ppb"), K = sz.at("nbr");
  const Value& pos = in[0];
  Value out = Value::zeros(Scalar::F32, {nb, pp});
  for (int64_t b = 0; b < nb; ++b) {
    for (int64_t i = 0; i < pp; ++i) {
      const double pi = pos.fget(b * pp + i);
      double acc = 0;
      for (int64_t j = 0; j < K; ++j) {
        const int64_t nbx = (b + j) % nb;
        for (int64_t qi = 0; qi < pp; ++qi) {
          const double q = pos.fget(nbx * pp + qi);
          acc += 1.0 / ((pi - q) * (pi - q) + 0.1);
        }
      }
      out.fset(b * pp + i, acc);
    }
  }
  return {out};
}

// ------------------------------------------------------------------- NW
//
// Needleman-Wunsch is a blocked wavefront; each anti-diagonal wave relaxes
// blocks whose cells carry a scan-like dependence.  Diagonal in-place
// slices are not expressible (the paper makes the same observation about
// its Futhark port), so this program keeps the performance-relevant
// structure: a sequential wave loop over a map of per-block scans.
Program nw_program() {
  Program p;
  p.name = "NW";
  p.inputs = {
      {"mat0", Type::array(Scalar::F32, {Dim::v("nblocks"), Dim::v("bsize")})},
  };
  p.extra_sizes = {"waves"};
  Lambda blend = lam({ib::p("s", f32s()), ib::p("c", f32s())},
                     add(mul(cf32(0.9), var("s")), mul(cf32(0.1), var("c"))));
  Lambda per_block =
      lam({ib::p("blk", Type())},
          let1("ss",
               scan(binlam("max", Scalar::F32), {cf32(-1e30)}, {var("blk")}),
               map(blend, {var("ss"), var("blk")})));
  p.body = loop({"mat"}, {var("mat0")}, "w", var("waves"),
                map1(per_block, var("mat")));
  return typecheck_program(std::move(p));
}

Values nw_golden(const SizeEnv& sz, const std::vector<Value>& in) {
  const int64_t nb = sz.at("nblocks"), bs = sz.at("bsize");
  const int64_t waves = sz.at("waves");
  Value mat = in[0];
  for (int64_t w = 0; w < waves; ++w) {
    for (int64_t b = 0; b < nb; ++b) {
      double mx = -1e30;
      for (int64_t c = 0; c < bs; ++c) {
        mx = std::max(mx, mat.fget(b * bs + c));
        mat.fset(b * bs + c, 0.9 * mx + 0.1 * mat.fget(b * bs + c));
      }
    }
  }
  return {mat};
}

}  // namespace

Benchmark bench_backprop() {
  Benchmark b;
  b.name = "Backprop";
  b.program = backprop_program();
  b.datasets = {
      {"D1", {{"n_out", 16}, {"n_in", 1 << 14}}, "2^14 neurons"},
      {"D2", {{"n_out", 16}, {"n_in", 1 << 20}}, "2^20 neurons"},
  };
  b.tuning = {
      {"t-D1", {{"n_out", 16}, {"n_in", 1 << 13}}, ""},
      {"t-D2", {{"n_out", 16}, {"n_in", 1 << 19}}, ""},
  };
  b.test_sizes = {{"n_out", 3}, {"n_in", 7}};
  b.gen_inputs = [](Rng& rng, const SizeEnv& sz) {
    return std::vector<Value>{
        random_f32(rng, {sz.at("n_out"), sz.at("n_in")}, -0.1, 0.1),
        random_f32(rng, {sz.at("n_in")}, -1, 1)};
  };
  b.golden = backprop_golden;
  b.reference = reference_rodinia_backprop;
  b.reference_name = "Rodinia";
  b.fuse_moderate = false;  // Sec. 5.3: fusion prevented for MF
  return b;
}

Benchmark bench_lavamd() {
  Benchmark b;
  b.name = "LavaMD";
  b.program = lavamd_program();
  b.datasets = {
      {"D1", {{"boxes", 1000}, {"ppb", 50}, {"nbr", 27}},
       "10^3 boxes, 50 per box"},
      {"D2", {{"boxes", 27}, {"ppb", 50}, {"nbr", 27}},
       "3^3 boxes, 50 per box"},
  };
  b.tuning = {
      {"t-D1", {{"boxes", 512}, {"ppb", 50}, {"nbr", 27}}, ""},
      {"t-D2", {{"boxes", 8}, {"ppb", 50}, {"nbr", 27}}, ""},
  };
  b.test_sizes = {{"boxes", 4}, {"ppb", 5}, {"nbr", 3}};
  b.gen_inputs = [](Rng& rng, const SizeEnv& sz) {
    return std::vector<Value>{
        random_f32(rng, {sz.at("boxes"), sz.at("ppb")}, -1, 1)};
  };
  b.golden = lavamd_golden;
  b.reference = reference_rodinia_lavamd;
  b.reference_name = "Rodinia";
  return b;
}

Benchmark bench_nw() {
  Benchmark b;
  b.name = "NW";
  b.program = nw_program();
  b.datasets = {
      {"D1", {{"nblocks", 128}, {"bsize", 256}, {"waves", 32}},
       "2048 edge length"},
      {"D2", {{"nblocks", 64}, {"bsize", 128}, {"waves", 16}},
       "1024 edge length"},
  };
  b.tuning = {
      {"t-D1", {{"nblocks", 64}, {"bsize", 256}, {"waves", 8}}, ""},
      {"t-D2", {{"nblocks", 32}, {"bsize", 128}, {"waves", 8}}, ""},
  };
  b.test_sizes = {{"nblocks", 3}, {"bsize", 6}, {"waves", 2}};
  b.gen_inputs = [](Rng& rng, const SizeEnv& sz) {
    return std::vector<Value>{
        random_f32(rng, {sz.at("nblocks"), sz.at("bsize")}, -1, 1)};
  };
  b.golden = nw_golden;
  b.reference = reference_rodinia_nw;
  b.reference_name = "Rodinia";
  return b;
}

}  // namespace incflat
