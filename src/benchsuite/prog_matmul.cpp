// Matrix multiplication (paper Sec. 2.2 / Fig. 2):
//   map (\xs -> map (\ys -> redomap (+) (*) 0 xs ys) (transpose yss)) xss
// The Fig. 2 sweep multiplies 2^n x 2^m by 2^m x 2^n with constant total
// work 2^k; the bench binary drives the sweep, this file provides the
// program, representative datasets, the golden implementation, and wiring
// to the cuBLAS/Parboil reference model.
#include "src/benchsuite/benchmark.h"
#include "src/benchsuite/reference.h"
#include "src/ir/builder.h"
#include "src/ir/typecheck.h"

namespace incflat {

namespace {

using namespace ib;

Program matmul_program() {
  Program p;
  p.name = "matmul";
  p.inputs = {
      {"xss", Type::array(Scalar::F32, {Dim::v("n"), Dim::v("m")})},
      {"yss", Type::array(Scalar::F32, {Dim::v("m"), Dim::v("k")})},
  };
  Lambda dot = lam({ib::p("x", Type::scalar(Scalar::F32)),
                    ib::p("y", Type::scalar(Scalar::F32))},
                   mul(var("x"), var("y")));
  Lambda inner = lam({ib::p("ys", Type())},
                     redomap(binlam("+", Scalar::F32), dot, {cf32(0)},
                             {var("xs"), var("ys")}));
  Lambda outer = lam({ib::p("xs", Type())}, map1(inner, transpose(var("yss"))));
  p.body = map1(outer, var("xss"));
  return typecheck_program(std::move(p));
}

SizeEnv mm_sizes(int64_t n, int64_t m, int64_t k) {
  return SizeEnv{{"n", n}, {"m", m}, {"k", k}};
}

Values matmul_golden(const SizeEnv& sz, const std::vector<Value>& in) {
  const int64_t n = sz.at("n"), m = sz.at("m"), k = sz.at("k");
  const Value &a = in[0], &b = in[1];
  Value c = Value::zeros(Scalar::F32, {n, k});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      double acc = 0;
      for (int64_t l = 0; l < m; ++l) {
        acc += a.fget(i * m + l) * b.fget(l * k + j);
      }
      c.fset(i * k + j, acc);
    }
  }
  return {c};
}

}  // namespace

Benchmark bench_matmul() {
  Benchmark b;
  b.name = "matmul";
  b.program = matmul_program();
  // Representative square/skinny shapes; the Fig. 2 binary sweeps n itself.
  b.datasets = {
      {"square", mm_sizes(1024, 1024, 1024), "1024^3"},
      {"skinny", mm_sizes(4, 1 << 16, 4), "4 x 2^16 x 4"},
  };
  b.tuning = {
      {"t-square", mm_sizes(512, 512, 512), ""},
      {"t-skinny", mm_sizes(8, 1 << 14, 8), ""},
  };
  b.test_sizes = mm_sizes(5, 7, 3);
  b.gen_inputs = [](Rng& rng, const SizeEnv& sz) {
    return std::vector<Value>{
        random_f32(rng, {sz.at("n"), sz.at("m")}, -1, 1),
        random_f32(rng, {sz.at("m"), sz.at("k")}, -1, 1)};
  };
  b.golden = matmul_golden;
  b.reference = [](const DeviceProfile& dev, const SizeEnv& sz) {
    return reference_gemm(dev, sz.at("n"), sz.at("m"), sz.at("k"));
  };
  b.reference_name = "cuBLAS/Parboil";
  return b;
}

}  // namespace incflat
