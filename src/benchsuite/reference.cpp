#include "src/benchsuite/reference.h"

#include <algorithm>
#include <cmath>

namespace incflat {

namespace {

constexpr double kF32 = 4.0;

int64_t env(const SizeEnv& sz, const char* key) { return sz.at(key); }

}  // namespace

double cpu_reduce_cost(double bytes) {
  // ~6 GB/s PCIe transfer + ~4 GB/s single-core CPU sweep, in bytes/us.
  return bytes / 6e3 + bytes / 4e3;
}

double reference_gemm(const DeviceProfile& dev, int64_t n, int64_t m,
                      int64_t k) {
  // Library GEMMs tile the output in (at least) 16x16 register/block tiles;
  // degenerate shapes pay for the padding (the Fig. 2 n<3 regime).
  const double neff = static_cast<double>(std::max<int64_t>(n, 16));
  const double keff = static_cast<double>(std::max<int64_t>(k, 16));
  const double md = static_cast<double>(m);
  Work w;
  w.flops = 2.0 * neff * keff * md;
  // Register+block tiling: ~64x traffic reduction, floored by compulsory
  // reads/writes of the padded operands.
  w.gbytes = std::max(2.0 * kF32 * neff * keff * md / 64.0,
                      kF32 * (neff * md + md * keff + neff * keff));
  // Split-k style kernels keep skinny shapes occupied; each register-tile
  // thread issues ~16 independent FMAs, so the effective parallelism is the
  // full padded output (not the thread count).
  const int64_t threads =
      std::max<int64_t>(static_cast<int64_t>(neff * keff),
                        std::min<int64_t>(m, dev.saturation_threads));
  return roofline_time(dev, w, threads, 1) + dev.launch_overhead_us;
}

double reference_finpar_out(const DeviceProfile& dev, const SizeEnv& sz) {
  const double S = static_cast<double>(env(sz, "numS"));
  const double T = static_cast<double>(env(sz, "numT"));
  const double X = static_cast<double>(env(sz, "numX"));
  const double Y = static_cast<double>(env(sz, "numY"));
  // One thread per (s, x) runs the work-efficient sequential tridag
  // (Thomas algorithm): ~10 flops and ~2.5 global accesses per element —
  // significantly less work than the scan-based parallel formulation
  // (Sec. 5.2's explanation of why FinPar-Out wins on the large dataset).
  double total = 0;
  for (int half = 0; half < 2; ++half) {
    Work w;
    w.flops = 10.0 * S * X * Y;
    w.gbytes = 2.5 * kF32 * S * X * Y;
    total += roofline_time(dev, w, static_cast<int64_t>(S * X), 1);
  }
  return T * total;
}

double reference_finpar_all(const DeviceProfile& dev, const SizeEnv& sz) {
  const double S = static_cast<double>(env(sz, "numS"));
  const double T = static_cast<double>(env(sz, "numT"));
  const double X = static_cast<double>(env(sz, "numX"));
  const double Y = static_cast<double>(env(sz, "numY"));
  // One workgroup per (s, x); the three scans run in local memory with
  // hand-tuned reuse (slightly better than compiler-generated intra-group
  // code: "AIF is slightly slower than FinPar-All ... due to suboptimal
  // memory reuse").
  double total = 0;
  const int64_t group = std::min<int64_t>(env(sz, "numY"),
                                          dev.max_group_size);
  const double logp =
      std::max(1.0, std::ceil(std::log2(static_cast<double>(group))));
  for (int half = 0; half < 2; ++half) {
    Work w;
    w.flops = 18.0 * S * X * Y;
    w.gbytes = 2.0 * kF32 * S * X * Y;                  // in + out, once
    w.lbytes = 3.0 * 2.0 * logp * kF32 * S * X * Y;     // three local scans
    total += roofline_time(dev, w, static_cast<int64_t>(S * X) * group, 1);
  }
  return T * total;
}

double reference_optionpricing(const DeviceProfile& dev, const SizeEnv& sz) {
  const double paths = static_cast<double>(env(sz, "paths"));
  const double dates = static_cast<double>(env(sz, "dates"));
  const double und = static_cast<double>(env(sz, "und"));
  // Outer parallelism only: one thread per Monte-Carlo path ("The reference
  // implementation utilizes only the outer parallelism, which explains the
  // slowdown on D2").  The hand-written kernel recomputes the Brownian
  // bridge and sobol directions per thread and suffers payoff-branch
  // divergence — substantially more per-path work than the synthetic core.
  Work w;
  w.flops = paths * dates * und * 48.0;
  w.gbytes = paths * (dates * kF32 + und * kF32 * 2.0);
  double t = roofline_time(dev, w, static_cast<int64_t>(paths), 1);
  // Final payoff reduction on the GPU (cheap).
  Work r;
  r.gbytes = paths * kF32;
  t += roofline_time(dev, r, static_cast<int64_t>(paths), 1);
  return t;
}

double reference_rodinia_backprop(const DeviceProfile& dev,
                                  const SizeEnv& sz) {
  const double nin = static_cast<double>(env(sz, "n_in"));
  const double nout = static_cast<double>(env(sz, "n_out"));
  // Forward pass: partial products on the GPU, parallel over n_in...
  Work w;
  w.flops = 2.0 * nin * nout;
  w.gbytes = kF32 * (nin * nout + nin);
  double t = roofline_time(dev, w, static_cast<int64_t>(nin), 1);
  // ...but the per-neuron summation finishes on the CPU (the paper:
  // "Rodinia's slowdown is due to a reduce being executed on the CPU"):
  // per-block partials are shipped to the host and swept there.
  t += cpu_reduce_cost(kF32 * nout * (nin / 8.0));
  // Weight-update kernel (well parallelised in Rodinia).
  Work upd;
  upd.flops = 4.0 * nin * nout;
  upd.gbytes = 2.0 * kF32 * nin * nout;
  t += roofline_time(dev, upd, static_cast<int64_t>(nin * nout), 1);
  return t;
}

double reference_rodinia_lavamd(const DeviceProfile& dev, const SizeEnv& sz) {
  const double nb = static_cast<double>(env(sz, "boxes"));
  const double pp = static_cast<double>(env(sz, "ppb"));
  const double K = static_cast<double>(env(sz, "nbr"));
  // One workgroup per box, one thread per particle; neighbour-box particles
  // staged in local memory (two outer levels of parallelism only — optimal
  // on D1, underutilised on D2).
  Work w;
  w.flops = nb * pp * K * pp * 10.0;
  w.gbytes = kF32 * nb * K * pp;           // each neighbour box staged once
  w.lbytes = kF32 * nb * pp * K * pp;      // per-interaction local reads
  return roofline_time(dev, w, static_cast<int64_t>(nb * pp), 1);
}

double reference_rodinia_nw(const DeviceProfile& dev, const SizeEnv& sz) {
  const double nb = static_cast<double>(env(sz, "nblocks"));
  const double bs = static_cast<double>(env(sz, "bsize"));
  const double waves = static_cast<double>(env(sz, "waves"));
  // Rodinia processes only the blocks on the current anti-diagonal per
  // launch, each block relaxed in local memory — roughly half the traffic
  // of a whole-matrix sweep (the paper reports AIF ~2x slower because the
  // Futhark port cannot update diagonal slices in place).
  const double blocks_per_wave = std::max(nb / 2.0, 1.0);
  Work w;
  w.flops = blocks_per_wave * bs * 6.0;
  w.gbytes = kF32 * blocks_per_wave * bs;
  w.lbytes = 3.0 * kF32 * blocks_per_wave * bs;
  const int64_t threads = static_cast<int64_t>(
      blocks_per_wave * std::min<double>(bs, dev.max_group_size));
  return waves * roofline_time(dev, w, threads, 1);
}

double reference_rodinia_nn(const DeviceProfile& dev, const SizeEnv& sz) {
  const double nq = static_cast<double>(env(sz, "nq"));
  const double np = static_cast<double>(env(sz, "npts"));
  // Distance kernel on the GPU, min-selection on the CPU (the paper:
  // "an important reduce being executed on CPU (NN)").
  Work w;
  w.flops = nq * np * 6.0;
  w.gbytes = kF32 * np * (1.0 + nq);
  double t = roofline_time(dev, w, static_cast<int64_t>(np), 1);
  t += cpu_reduce_cost(kF32 * nq * np);
  return t;
}

double reference_rodinia_srad(const DeviceProfile& dev, const SizeEnv& sz) {
  const double ni = static_cast<double>(env(sz, "nimg"));
  const double h = static_cast<double>(env(sz, "h"));
  const double wd = static_cast<double>(env(sz, "w"));
  const double iters = static_cast<double>(env(sz, "iters"));
  // Per iteration: a parallel image reduction plus an update sweep.
  const double pix = ni * h * wd;
  Work red;
  red.flops = pix;
  red.gbytes = kF32 * pix;
  Work upd;
  upd.flops = 8.0 * pix;
  upd.gbytes = 2.0 * kF32 * pix;
  const int64_t threads = static_cast<int64_t>(pix);
  return iters * (roofline_time(dev, red, threads, 2) +
                  roofline_time(dev, upd, threads, 1));
}

double reference_rodinia_pathfinder(const DeviceProfile& dev,
                                    const SizeEnv& sz) {
  const double nb = static_cast<double>(env(sz, "nbatch"));
  const double rows = static_cast<double>(env(sz, "rows"));
  const double cols = static_cast<double>(env(sz, "cols"));
  // Pyramidal tiling fuses rows per launch at the price of halo
  // recomputation, per-row workgroup barriers, and residency limited by the
  // per-block scratch footprint.  The paper measures that on both test GPUs
  // the scheme ends up *slower* than the straightforward one-kernel-per-row
  // schedule ("pyramidal tiling ... does not seem to pay off on the tested
  // hardware"), so the model prices the row schedule with the measured
  // ~30% pyramid penalty on top.
  Work per_row;
  per_row.flops = nb * cols * 5.0;
  per_row.gbytes = kF32 * nb * cols * 5.0;
  const int64_t threads = static_cast<int64_t>(nb * cols);
  return 1.3 * rows * roofline_time(dev, per_row, threads, 1);
}

}  // namespace incflat
