// LocVolCalib from the FinPar suite (paper Sec. 5.2, Fig. 6/7): an outer
// map of degree numS over a sequential loop of numT iterations whose body
// maps `tridag` (a composition of three scans) over xss [numX][numY] and
// yss [numY][numX].
//
// The exact tridag recurrences are proprietary-benchmark detail; what the
// experiment depends on is the *parallel structure* — three chained scans
// per row inside two maps inside a loop inside a map — which is reproduced
// faithfully (Fig. 6a/6b).  Incremental flattening then produces exactly
// the paper's three code versions (Fig. 6c): (1) outer numS*numX
// parallelism with sequential tridag, (2) the same plus the scans at
// workgroup level in scratchpad, (3) fully flattened segmented scans.
#include <cmath>

#include "src/benchsuite/benchmark.h"
#include "src/benchsuite/reference.h"
#include "src/ir/builder.h"
#include "src/ir/typecheck.h"

namespace incflat {

namespace {

using namespace ib;

constexpr double kMaxNeutral = -1e30;

// tridag xs = let bs = scan (+) 0 xs
//             let cs = scan (max) -inf bs
//             in  scan (+) 0 cs                  (Fig. 6b's ⊕ / ⊗ / ⊙)
ExprP tridag_body(const std::string& xs) {
  return let1(
      "bs_" + xs, scan(binlam("+", Scalar::F32), {cf32(0)}, {var(xs)}),
      let1("cs_" + xs,
           scan(binlam("max", Scalar::F32), {cf32(kMaxNeutral)},
                {var("bs_" + xs)}),
           scan(binlam("+", Scalar::F32), {cf32(0)}, {var("cs_" + xs)})));
}

Program locvolcalib_program() {
  Program p;
  p.name = "LocVolCalib";
  p.inputs = {
      {"xsss0", Type::array(Scalar::F32,
                            {Dim::v("numS"), Dim::v("numX"), Dim::v("numY")})},
      {"ysss0", Type::array(Scalar::F32,
                            {Dim::v("numS"), Dim::v("numY"), Dim::v("numX")})},
  };
  p.extra_sizes = {"numT"};

  Lambda tridag_x = lam({ib::p("txs", Type())}, tridag_body("txs"));
  Lambda tridag_y = lam({ib::p("tys", Type())}, tridag_body("tys"));

  ExprP loop_body = letn(
      {"xss2"}, map1(tridag_x, var("xss")),
      letn({"yss2"}, map1(tridag_y, var("yss")),
           tuple({var("xss2"), var("yss2")})));

  Lambda outer = lam(
      {ib::p("xss0", Type()), ib::p("yss0", Type())},
      loop({"xss", "yss"}, {var("xss0"), var("yss0")}, "t", var("numT"),
           loop_body));

  p.body = map(outer, {var("xsss0"), var("ysss0")});
  return typecheck_program(std::move(p));
}

SizeEnv lvc_sizes(int64_t s, int64_t t, int64_t x, int64_t y) {
  return SizeEnv{{"numS", s}, {"numT", t}, {"numX", x}, {"numY", y}};
}

// Golden: the same three chained scans, straight C++.
void tridag_rows(Value& m, int64_t rows, int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    double acc = 0;  // scan (+)
    std::vector<double> bs(static_cast<size_t>(cols));
    for (int64_t c = 0; c < cols; ++c) {
      acc += m.fget(r * cols + c);
      bs[static_cast<size_t>(c)] = acc;
    }
    double mx = kMaxNeutral;  // scan (max)
    std::vector<double> cs(static_cast<size_t>(cols));
    for (int64_t c = 0; c < cols; ++c) {
      mx = std::max(mx, bs[static_cast<size_t>(c)]);
      cs[static_cast<size_t>(c)] = mx;
    }
    acc = 0;  // scan (+)
    for (int64_t c = 0; c < cols; ++c) {
      acc += cs[static_cast<size_t>(c)];
      m.fset(r * cols + c, acc);
    }
  }
}

Values locvolcalib_golden(const SizeEnv& sz, const std::vector<Value>& in) {
  const int64_t S = sz.at("numS"), T = sz.at("numT");
  const int64_t X = sz.at("numX"), Y = sz.at("numY");
  Value xsss = in[0], ysss = in[1];
  for (int64_t s = 0; s < S; ++s) {
    for (int64_t t = 0; t < T; ++t) {
      Value xss = xsss.row(s), yss = ysss.row(s);
      tridag_rows(xss, X, Y);
      tridag_rows(yss, Y, X);
      xsss.set_row(s, xss);
      ysss.set_row(s, yss);
    }
  }
  return {xsss, ysss};
}

}  // namespace

Benchmark bench_locvolcalib() {
  Benchmark b;
  b.name = "LocVolCalib";
  b.program = locvolcalib_program();
  // The paper's three datasets (Sec. 5.2).
  b.datasets = {
      {"small", lvc_sizes(16, 256, 32, 256), "numS=16 numT=256 numX=32 numY=256"},
      {"medium", lvc_sizes(128, 64, 256, 32), "numS=128 numT=64 numX=256 numY=32"},
      {"large", lvc_sizes(256, 64, 256, 256), "numS=256 numT=64 numX=256 numY=256"},
  };
  // Training datasets differ from the evaluation ones (Sec. 5.1).
  b.tuning = {
      {"t-small", lvc_sizes(8, 64, 32, 128), ""},
      {"t-medium", lvc_sizes(64, 32, 128, 32), ""},
      {"t-large", lvc_sizes(192, 32, 192, 192), ""},
  };
  b.test_sizes = lvc_sizes(2, 3, 4, 5);
  b.gen_inputs = [](Rng& rng, const SizeEnv& sz) {
    return std::vector<Value>{
        random_f32(rng, {sz.at("numS"), sz.at("numX"), sz.at("numY")}, -0.5,
                   0.5),
        random_f32(rng, {sz.at("numS"), sz.at("numY"), sz.at("numX")}, -0.5,
                   0.5)};
  };
  b.golden = locvolcalib_golden;
  b.reference = reference_finpar_out;  // FinPar-Out; Fig. 7 also uses -All
  b.reference_name = "FinPar";
  return b;
}

}  // namespace incflat
