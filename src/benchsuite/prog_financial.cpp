// The two LexiFi real-world financial kernels (paper Sec. 5.3, Fig. 8).
//
// Heston: calibration with three layers of parallelism — "an outer map,
// which contains a redomap, which contains a reduce".  Moderate flattening
// exploits only the outer map (its heuristic sequentialises redomaps), which
// the paper reports as poor; incremental flattening exposes all layers.
//
// OptionPricing: Monte-Carlo pricing — an outer map over paths containing a
// sequential loop over dates with an inner map over underlyings, followed by
// a global payoff reduction.  D1 (2^20 paths, 5 dates) is best with outer
// parallelism only; D2 (500 paths, 367 dates) needs the inner layers.
// The proprietary LexiFi math is replaced by synthetic arithmetic with the
// same shape/structure (see DESIGN.md).
#include <cmath>

#include "src/benchsuite/benchmark.h"
#include "src/benchsuite/reference.h"
#include "src/ir/builder.h"
#include "src/ir/typecheck.h"

namespace incflat {

namespace {

using namespace ib;

Type f32s() { return Type::scalar(Scalar::F32); }

// ---------------------------------------------------------------- Heston

Program heston_program() {
  Program p;
  p.name = "Heston";
  p.inputs = {
      {"quotes", Type::array(Scalar::F32, {Dim::v("nq")})},
      {"paths", Type::array(Scalar::F32, {Dim::v("np"), Dim::v("ns")})},
  };
  // Dataset invariants (see SizeBound): realistic calibrations use at
  // least 256 Monte-Carlo paths of at least 8 steps, so np*ns can never
  // fit one workgroup — the size analysis uses this to discard the
  // intra-group version.  Semantics never depend on these (the tiny
  // test_sizes below deliberately violate them).
  p.size_bounds["np"] = SizeBound{256, -1};
  p.size_bounds["ns"] = SizeBound{8, -1};
  // Innermost layer: a reduce over the path's steps.
  Lambda sq = lam({ib::p("z", f32s())}, mul(var("z"), var("z")));
  ExprP path_val = redomap(binlam("+", Scalar::F32), sq, {cf32(0)},
                           {var("path")});
  // Middle layer: redomap over paths.
  Lambda per_path =
      lam({ib::p("path", Type())},
          mul(var("q"), exp_(neg(sqrt_(add(path_val, cf32(1e-6)))))));
  ExprP calib = redomap(binlam("+", Scalar::F32), per_path, {cf32(0)},
                        {var("paths")});
  // Outer layer: map over quotes.
  Lambda per_quote = lam({ib::p("q", f32s())}, calib);
  p.body = map1(per_quote, var("quotes"));
  return typecheck_program(std::move(p));
}

Values heston_golden(const SizeEnv& sz, const std::vector<Value>& in) {
  const int64_t nq = sz.at("nq"), np = sz.at("np"), ns = sz.at("ns");
  const Value &quotes = in[0], &paths = in[1];
  Value out = Value::zeros(Scalar::F32, {nq});
  for (int64_t q = 0; q < nq; ++q) {
    double acc = 0;
    for (int64_t i = 0; i < np; ++i) {
      double s = 0;
      for (int64_t j = 0; j < ns; ++j) {
        const double z = paths.fget(i * ns + j);
        s += z * z;
      }
      acc += quotes.fget(q) * std::exp(-std::sqrt(s + 1e-6));
    }
    out.fset(q, acc);
  }
  return {out};
}

// --------------------------------------------------------- OptionPricing

Program optionpricing_program() {
  Program p;
  p.name = "OptionPricing";
  p.inputs = {
      {"zs", Type::array(Scalar::F32, {Dim::v("paths"), Dim::v("dates")})},
      {"und0", Type::array(Scalar::F32, {Dim::v("und")})},
  };
  // Per date: evolve every underlying by the path's Brownian increment.
  Lambda evolve = lam({ib::p("s", f32s())},
                      mul(var("s"), add(cf32(0.9995),
                                        mul(cf32(0.01),
                                            index(var("zrow"), {var("d")})))));
  ExprP date_loop = loop({"st"}, {var("und0")}, "d", var("dates"),
                         map1(evolve, var("st")));
  Lambda ident = lam({ib::p("v", f32s())}, var("v"));
  Lambda per_path =
      lam({ib::p("zrow", Type())},
          let1("stT", date_loop,
               redomap(binlam("+", Scalar::F32), ident, {cf32(0)},
                       {var("stT")})));
  p.body = let1(
      "payoffs", map1(per_path, var("zs")),
      divide(redomap(binlam("+", Scalar::F32), ident, {cf32(0)},
                     {var("payoffs")}),
             un("i2f", var("paths"))));
  return typecheck_program(std::move(p));
}

Values optionpricing_golden(const SizeEnv& sz, const std::vector<Value>& in) {
  const int64_t paths = sz.at("paths"), dates = sz.at("dates");
  const int64_t und = sz.at("und");
  const Value &zs = in[0], &und0 = in[1];
  double total = 0;
  for (int64_t i = 0; i < paths; ++i) {
    std::vector<double> st(static_cast<size_t>(und));
    for (int64_t u = 0; u < und; ++u) st[static_cast<size_t>(u)] = und0.fget(u);
    for (int64_t d = 0; d < dates; ++d) {
      const double z = zs.fget(i * dates + d);
      for (auto& s : st) s *= 0.9995 + 0.01 * z;
    }
    for (double s : st) total += s;
  }
  Value out = Value::scalar_float(
      Scalar::F32, total / static_cast<double>(paths));
  return {out};
}

}  // namespace

Benchmark bench_heston() {
  Benchmark b;
  b.name = "Heston";
  b.program = heston_program();
  b.datasets = {
      {"D1", {{"nq", 1062}, {"np", 1024}, {"ns", 32}}, "1062 quotes"},
      {"D2", {{"nq", 10000}, {"np", 1024}, {"ns", 32}}, "10000 quotes"},
  };
  b.tuning = {
      {"t-D1", {{"nq", 512}, {"np", 1024}, {"ns", 32}}, ""},
      {"t-D2", {{"nq", 20000}, {"np", 1024}, {"ns", 32}}, ""},
  };
  b.test_sizes = {{"nq", 5}, {"np", 4}, {"ns", 3}};
  b.gen_inputs = [](Rng& rng, const SizeEnv& sz) {
    return std::vector<Value>{
        random_f32(rng, {sz.at("nq")}, 0.5, 1.5),
        random_f32(rng, {sz.at("np"), sz.at("ns")}, -1, 1)};
  };
  b.golden = heston_golden;
  b.reference = nullptr;  // "a hand-written OpenCL implementation is not
                          //  available" (Sec. 5.3)
  b.reference_name = "";
  return b;
}

Benchmark bench_optionpricing() {
  Benchmark b;
  b.name = "OptionPricing";
  b.program = optionpricing_program();
  b.datasets = {
      {"D1", {{"paths", 1048576}, {"dates", 5}, {"und", 32}},
       "1048576 MC, 5 dates"},
      {"D2", {{"paths", 500}, {"dates", 367}, {"und", 32}},
       "500 MC, 367 dates"},
  };
  b.tuning = {
      {"t-D1", {{"paths", 262144}, {"dates", 5}, {"und", 32}}, ""},
      {"t-D2", {{"paths", 250}, {"dates", 128}, {"und", 32}}, ""},
  };
  b.test_sizes = {{"paths", 6}, {"dates", 4}, {"und", 3}};
  b.gen_inputs = [](Rng& rng, const SizeEnv& sz) {
    return std::vector<Value>{
        random_f32(rng, {sz.at("paths"), sz.at("dates")}, -1, 1),
        random_f32(rng, {sz.at("und")}, 0.8, 1.2)};
  };
  b.golden = optionpricing_golden;
  b.reference = reference_optionpricing;
  b.reference_name = "FinPar";
  return b;
}

}  // namespace incflat
