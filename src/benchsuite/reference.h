// Analytic cost models of the paper's hand-written reference
// implementations (Sec. 5): cuBLAS / Parboil register-tiled GEMM, the two
// FinPar OpenCL LocVolCalib implementations, the outer-parallel
// OptionPricing reference, and the six Rodinia OpenCL kernels.
//
// Each model prices the algorithmic structure the paper describes for that
// reference — including its known weaknesses: cuBLAS's degenerate-shape
// padding (Fig. 2, n < 3), FinPar-Out's work-efficient sequential tridag,
// Rodinia Backprop/NN's final reduction on the *CPU* (Sec. 5.3), and
// Pathfinder's pyramidal tiling that "does not seem to pay off".  All run on
// the same simulated device profiles as the compiled Futhark-like code, so
// speedup *shapes* are comparable.
#pragma once

#include "src/gpusim/cost.h"
#include "src/gpusim/device.h"
#include "src/ir/type.h"

namespace incflat {

/// Register+block-tiled GEMM (cuBLAS on the K40, Parboil on the Vega 64):
/// C[n][k] = A[n][m] * B[m][k].
double reference_gemm(const DeviceProfile& dev, int64_t n, int64_t m,
                      int64_t k);

/// FinPar LocVolCalib, outerparallel version (sequential work-efficient
/// tridag per thread).  Sizes: numS, numT, numX, numY.
double reference_finpar_out(const DeviceProfile& dev, const SizeEnv& sz);

/// FinPar LocVolCalib, all-parallel version (tridag in local memory).
double reference_finpar_all(const DeviceProfile& dev, const SizeEnv& sz);

/// LexiFi OptionPricing reference: outer (path-level) parallelism only.
/// Sizes: paths, dates, und.
double reference_optionpricing(const DeviceProfile& dev, const SizeEnv& sz);

/// Rodinia kernels.  Size keys match the corresponding bench_* programs.
double reference_rodinia_backprop(const DeviceProfile& dev, const SizeEnv& sz);
double reference_rodinia_lavamd(const DeviceProfile& dev, const SizeEnv& sz);
double reference_rodinia_nw(const DeviceProfile& dev, const SizeEnv& sz);
double reference_rodinia_nn(const DeviceProfile& dev, const SizeEnv& sz);
double reference_rodinia_srad(const DeviceProfile& dev, const SizeEnv& sz);
double reference_rodinia_pathfinder(const DeviceProfile& dev,
                                    const SizeEnv& sz);

/// Cost of shipping `bytes` to the host and reducing there — the Rodinia
/// Backprop/NN pattern the paper calls out.  PCIe-class transfer plus a
/// single-core CPU sweep.
double cpu_reduce_cost(double bytes);

}  // namespace incflat
