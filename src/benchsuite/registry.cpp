#include <map>

#include "src/benchsuite/benchmark.h"
#include "src/support/error.h"

namespace incflat {

Value random_f32(Rng& rng, std::vector<int64_t> shape, double lo, double hi) {
  Value v = Value::zeros(Scalar::F32, std::move(shape));
  for (int64_t i = 0; i < v.count(); ++i) v.fset(i, rng.uniform(lo, hi));
  return v;
}

const std::vector<Benchmark>& bulk_benchmarks() {
  static const std::vector<Benchmark> all = [] {
    std::vector<Benchmark> v;
    v.push_back(bench_heston());
    v.push_back(bench_optionpricing());
    v.push_back(bench_backprop());
    v.push_back(bench_lavamd());
    v.push_back(bench_nw());
    v.push_back(bench_nn());
    v.push_back(bench_srad());
    v.push_back(bench_pathfinder());
    return v;
  }();
  return all;
}

Benchmark get_benchmark(const std::string& name) {
  if (name == "matmul") return bench_matmul();
  if (name == "LocVolCalib") return bench_locvolcalib();
  for (const auto& b : bulk_benchmarks()) {
    if (b.name == name) return b;
  }
  INCFLAT_FAIL("unknown benchmark: " + name);
}

std::vector<std::string> all_benchmark_names() {
  std::vector<std::string> out{"matmul", "LocVolCalib"};
  for (const auto& b : bulk_benchmarks()) out.push_back(b.name);
  return out;
}

}  // namespace incflat
