// Rodinia benchmarks extended with an extra outer map (paper Sec. 5.3):
// NN, SRAD, Pathfinder.  "The Futhark ports ... have been extended with an
// extra layer of parallelism by adding a map on top; essentially performing
// multiple batches of the original benchmark in parallel."  D1 uses batch
// factor 1 (comparable to the unmodified Rodinia code); D2 batches.
#include <cmath>

#include "src/benchsuite/benchmark.h"
#include "src/benchsuite/reference.h"
#include "src/ir/builder.h"
#include "src/ir/typecheck.h"

namespace incflat {

namespace {

using namespace ib;

Type f32s() { return Type::scalar(Scalar::F32); }

// ------------------------------------------------------------------- NN
//
// map over query batches of a min-distance redomap over the points.
Program nn_program() {
  Program p;
  p.name = "NN";
  p.inputs = {
      {"qs", Type::array(Scalar::F32, {Dim::v("nq")})},
      {"points", Type::array(Scalar::F32, {Dim::v("npts")})},
  };
  Lambda dist = lam({ib::p("pt", f32s())}, abs_(sub(var("pt"), var("q"))));
  Lambda per_query =
      lam({ib::p("q", f32s())},
          redomap(binlam("min", Scalar::F32), dist, {cf32(1e30)},
                  {var("points")}));
  p.body = map1(per_query, var("qs"));
  return typecheck_program(std::move(p));
}

Values nn_golden(const SizeEnv& sz, const std::vector<Value>& in) {
  const int64_t nq = sz.at("nq"), np = sz.at("npts");
  const Value &qs = in[0], &pts = in[1];
  Value out = Value::zeros(Scalar::F32, {nq});
  for (int64_t i = 0; i < nq; ++i) {
    double best = 1e30;
    for (int64_t j = 0; j < np; ++j) {
      best = std::min(best, std::fabs(pts.fget(j) - qs.fget(i)));
    }
    out.fset(i, best);
  }
  return {out};
}

// ----------------------------------------------------------------- SRAD
//
// map over images of an iteration loop: a whole-image reduction feeding an
// elementwise update (the diffusion-coefficient structure of SRAD).
Program srad_program() {
  Program p;
  p.name = "SRAD";
  p.inputs = {
      {"imgs", Type::array(Scalar::F32,
                           {Dim::v("nimg"), Dim::v("h"), Dim::v("w")})},
  };
  p.extra_sizes = {"iters"};
  Lambda ident = lam({ib::p("v", f32s())}, var("v"));
  Lambda row_sum =
      lam({ib::p("row", Type())},
          redomap(binlam("+", Scalar::F32), ident, {cf32(0)}, {var("row")}));
  ExprP img_sum = redomap(binlam("+", Scalar::F32), row_sum, {cf32(0)},
                          {var("im")});
  Lambda upd_px =
      lam({ib::p("x", f32s())},
          add(var("x"), mul(cf32(0.1), sub(var("mu"), var("x")))));
  Lambda upd_row = lam({ib::p("row2", Type())}, map1(upd_px, var("row2")));
  ExprP iter_body =
      let1("s", img_sum,
           let1("mu",
                divide(var("s"), un("i2f", mul(var("h"), var("w")))),
                map1(upd_row, var("im"))));
  Lambda per_img = lam({ib::p("img", Type())},
                       loop({"im"}, {var("img")}, "it", var("iters"),
                            iter_body));
  p.body = map1(per_img, var("imgs"));
  return typecheck_program(std::move(p));
}

Values srad_golden(const SizeEnv& sz, const std::vector<Value>& in) {
  const int64_t ni = sz.at("nimg"), h = sz.at("h"), w = sz.at("w");
  const int64_t iters = sz.at("iters");
  Value imgs = in[0];
  for (int64_t n = 0; n < ni; ++n) {
    for (int64_t t = 0; t < iters; ++t) {
      double s = 0;
      for (int64_t k = 0; k < h * w; ++k) s += imgs.fget(n * h * w + k);
      const double mu = s / static_cast<double>(h * w);
      for (int64_t k = 0; k < h * w; ++k) {
        const double x = imgs.fget(n * h * w + k);
        imgs.fset(n * h * w + k, x + 0.1 * (mu - x));
      }
    }
  }
  return {imgs};
}

// ------------------------------------------------------------ Pathfinder
//
// map over batches of the classic dynamic program: a sequential loop over
// rows, each row a map over columns reading the three predecessors.
Program pathfinder_program() {
  Program p;
  p.name = "Pathfinder";
  p.inputs = {
      {"grids", Type::array(Scalar::F32,
                            {Dim::v("nbatch"), Dim::v("rows"),
                             Dim::v("cols")})},
  };
  ExprP jm1 = max_(ci64(0), sub(var("jj"), ci64(1)));
  ExprP jp1 = min_(sub(var("cols"), ci64(1)), add(var("jj"), ci64(1)));
  Lambda per_col =
      lam({ib::p("jj", Type::scalar(Scalar::I64))},
          add(index(var("grid"), {var("r"), var("jj")}),
              min_(index(var("cur"), {jm1}),
                   min_(index(var("cur"), {var("jj")}),
                        index(var("cur"), {jp1})))));
  Lambda per_grid =
      lam({ib::p("grid", Type())},
          loop({"cur"}, {replicate(Dim::v("cols"), cf32(0))}, "r",
               var("rows"), map1(per_col, iota(Dim::v("cols")))));
  p.body = map1(per_grid, var("grids"));
  return typecheck_program(std::move(p));
}

Values pathfinder_golden(const SizeEnv& sz, const std::vector<Value>& in) {
  const int64_t nb = sz.at("nbatch"), rows = sz.at("rows");
  const int64_t cols = sz.at("cols");
  const Value& grids = in[0];
  Value out = Value::zeros(Scalar::F32, {nb, cols});
  for (int64_t b = 0; b < nb; ++b) {
    std::vector<double> cur(static_cast<size_t>(cols), 0.0);
    for (int64_t r = 0; r < rows; ++r) {
      std::vector<double> next(static_cast<size_t>(cols));
      for (int64_t j = 0; j < cols; ++j) {
        const double up = cur[static_cast<size_t>(j)];
        const double ul = cur[static_cast<size_t>(std::max<int64_t>(0, j - 1))];
        const double ur =
            cur[static_cast<size_t>(std::min<int64_t>(cols - 1, j + 1))];
        next[static_cast<size_t>(j)] =
            grids.fget((b * rows + r) * cols + j) +
            std::min(ul, std::min(up, ur));
      }
      cur = next;
    }
    for (int64_t j = 0; j < cols; ++j) out.fset(b * cols + j, cur[static_cast<size_t>(j)]);
  }
  return {out};
}

}  // namespace

Benchmark bench_nn() {
  Benchmark b;
  b.name = "NN";
  b.program = nn_program();
  b.datasets = {
      {"D1", {{"nq", 1}, {"npts", 855280}}, "1 x 855280 points"},
      {"D2", {{"nq", 4096}, {"npts", 128}}, "4096 x 128 points"},
  };
  b.tuning = {
      {"t-D1", {{"nq", 1}, {"npts", 400000}}, ""},
      {"t-D2", {{"nq", 2048}, {"npts", 128}}, ""},
  };
  b.test_sizes = {{"nq", 4}, {"npts", 9}};
  b.gen_inputs = [](Rng& rng, const SizeEnv& sz) {
    return std::vector<Value>{random_f32(rng, {sz.at("nq")}, 0, 10),
                              random_f32(rng, {sz.at("npts")}, 0, 10)};
  };
  b.golden = nn_golden;
  b.reference = reference_rodinia_nn;
  b.reference_name = "Rodinia";
  return b;
}

Benchmark bench_srad() {
  Benchmark b;
  b.name = "SRAD";
  b.program = srad_program();
  b.datasets = {
      {"D1", {{"nimg", 1}, {"h", 502}, {"w", 458}, {"iters", 8}},
       "1 x 502x458 image"},
      {"D2", {{"nimg", 1024}, {"h", 16}, {"w", 16}, {"iters", 8}},
       "1024 16x16 images"},
  };
  b.tuning = {
      {"t-D1", {{"nimg", 1}, {"h", 256}, {"w", 256}, {"iters", 4}}, ""},
      {"t-D2", {{"nimg", 512}, {"h", 16}, {"w", 16}, {"iters", 4}}, ""},
  };
  b.test_sizes = {{"nimg", 2}, {"h", 3}, {"w", 4}, {"iters", 3}};
  b.gen_inputs = [](Rng& rng, const SizeEnv& sz) {
    return std::vector<Value>{
        random_f32(rng, {sz.at("nimg"), sz.at("h"), sz.at("w")}, 0, 1)};
  };
  b.golden = srad_golden;
  b.reference = reference_rodinia_srad;
  b.reference_name = "Rodinia";
  return b;
}

Benchmark bench_pathfinder() {
  Benchmark b;
  b.name = "Pathfinder";
  b.program = pathfinder_program();
  b.datasets = {
      {"D1", {{"nbatch", 1}, {"rows", 100}, {"cols", 100000}},
       "1 x 100 x 10^5 points"},
      {"D2", {{"nbatch", 391}, {"rows", 100}, {"cols", 256}},
       "391 x 100 x 256 points"},
  };
  b.tuning = {
      {"t-D1", {{"nbatch", 1}, {"rows", 50}, {"cols", 50000}}, ""},
      {"t-D2", {{"nbatch", 200}, {"rows", 50}, {"cols", 256}}, ""},
  };
  b.test_sizes = {{"nbatch", 2}, {"rows", 3}, {"cols", 5}};
  b.gen_inputs = [](Rng& rng, const SizeEnv& sz) {
    return std::vector<Value>{random_f32(
        rng, {sz.at("nbatch"), sz.at("rows"), sz.at("cols")}, 0, 1)};
  };
  b.golden = pathfinder_golden;
  b.reference = reference_rodinia_pathfinder;
  b.reference_name = "Rodinia";
  return b;
}

}  // namespace incflat
