// The paper's benchmark suite as source-IR programs.
//
// Sec. 5 evaluates: matrix multiplication (Fig. 2), LocVolCalib from FinPar
// (Fig. 6/7), two LexiFi financial kernels (Heston, OptionPricing) and six
// Rodinia benchmarks (Backprop, LavaMD, NW, NN, SRAD, Pathfinder) — Fig. 8,
// with the D1/D2 datasets of Table 1.  Each benchmark here carries:
//   * the source program, with the nesting structure the paper describes,
//   * the Table 1 evaluation datasets plus separate tuning datasets
//     ("the datasets used for tuning are different than the ones used for
//     testing", Sec. 5.1),
//   * an input generator (deterministic) and, where practical, a golden
//     plain-C++ implementation used to validate the IR encoding,
//   * the applicable reference-implementation cost model (reference.h).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/gpusim/device.h"
#include "src/interp/value.h"
#include "src/ir/expr.h"
#include "src/support/rng.h"

namespace incflat {

struct BenchDataset {
  std::string name;     // "D1" / "D2" / "small" / ...
  SizeEnv sizes;
  std::string summary;  // the Table 1 description
};

struct Benchmark {
  std::string name;
  Program program;  // type-annotated source program

  std::vector<BenchDataset> datasets;  // evaluation datasets (Table 1)
  std::vector<BenchDataset> tuning;    // training datasets (disjoint)

  /// Scaled-down size environment usable by the reference interpreter in
  /// correctness tests (the evaluation sizes are simulation-only).
  SizeEnv test_sizes;

  /// Deterministic input generation for a given size environment.
  std::function<std::vector<Value>(Rng&, const SizeEnv&)> gen_inputs;

  /// Optional independent plain-C++ implementation of the same math,
  /// used to validate the IR encoding on test_sizes.
  std::function<Values(const SizeEnv&, const std::vector<Value>&)> golden;

  /// Optional hand-written reference implementation (FinPar / Rodinia /
  /// cuBLAS) cost model; returns simulated microseconds.
  std::function<double(const DeviceProfile&, const SizeEnv&)> reference;
  std::string reference_name;

  /// Whether fusion is applied before *moderate* flattening.  The paper
  /// explicitly prevents the map-reduce fusion for MF on Backprop
  /// ("which otherwise would have resulted in poor performance", Sec. 5.3).
  bool fuse_moderate = true;
};

/// All Fig. 8 bulk-validation benchmarks (Heston, OptionPricing, Backprop,
/// LavaMD, NW, NN, SRAD, Pathfinder), in the paper's order.
const std::vector<Benchmark>& bulk_benchmarks();

/// Individual benchmark constructors (also used by Figs. 2 and 7).
Benchmark bench_matmul();
Benchmark bench_locvolcalib();
Benchmark bench_heston();
Benchmark bench_optionpricing();
Benchmark bench_backprop();
Benchmark bench_lavamd();
Benchmark bench_nw();
Benchmark bench_nn();
Benchmark bench_srad();
Benchmark bench_pathfinder();

/// Lookup by name; throws on unknown.
Benchmark get_benchmark(const std::string& name);

/// Names of all benchmarks (matmul + LocVolCalib + the bulk eight).
std::vector<std::string> all_benchmark_names();

/// Shared helper: random F32 array of the given shape.
Value random_f32(Rng& rng, std::vector<int64_t> shape, double lo = 0.0,
                 double hi = 1.0);

}  // namespace incflat
