// Symbolic size/range analysis over intervals in the program's size
// variables.
//
// The domain has two cooperating halves:
//
//  * IntInterval — a saturating integer interval [lo, hi] with open ends,
//    the lattice Value of RangeDomain (plugged into ForwardInterp).  It
//    abstracts integer-valued scalars; floats and opaque array elements
//    degrade to top.
//
//  * symbolic SizeProd/SizeExpr comparison — `Par(...)` degrees and
//    workgroup-fit bounds are *monomials* (max of products of size
//    variables, src/ir/size.h), so questions like "is this fit bound ever
//    <= max_group_size" reduce to (a) concretizing the monomial to an
//    interval under the program's declared SizeBounds, and (b) a sound
//    monomial dominance test (prod_leq / expr_leq) for guard-vs-guard
//    comparisons that stay symbolic.
//
// Soundness invariant (property-tested in tests/test_analysis.cpp): for
// every size assignment satisfying the declared bounds — size variables
// default to [1, inf) — every concrete evaluation lies inside the inferred
// interval.  The guard decision procedure only answers AlwaysTrue /
// AlwaysFalse when that holds for *all* in-bounds assignments and *all*
// threshold values; everything else is Unknown.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/dataflow.h"
#include "src/gpusim/device.h"
#include "src/ir/expr.h"
#include "src/ir/size.h"

namespace incflat {
namespace analysis {

// ---------------------------------------------------------------------------
// Intervals.

/// Integer interval with optionally-open ends.  Arithmetic saturates at
/// int64 range (treated as infinite), which is sound: a saturated bound is
/// simply reported as open.
struct IntInterval {
  bool lo_finite = false;
  bool hi_finite = false;
  int64_t lo = 0;  // meaningful only when lo_finite
  int64_t hi = 0;  // meaningful only when hi_finite

  static IntInterval top() { return {}; }
  static IntInterval point(int64_t v) { return {true, true, v, v}; }
  static IntInterval range(int64_t lo, int64_t hi) {
    return {true, true, lo, hi};
  }
  static IntInterval at_least(int64_t lo) { return {true, false, lo, 0}; }
  static IntInterval at_most(int64_t hi) { return {false, true, 0, hi}; }

  bool is_top() const { return !lo_finite && !hi_finite; }
  bool contains(int64_t v) const {
    return (!lo_finite || v >= lo) && (!hi_finite || v <= hi);
  }
  std::string str() const;
  bool operator==(const IntInterval& o) const {
    return lo_finite == o.lo_finite && hi_finite == o.hi_finite &&
           (!lo_finite || lo == o.lo) && (!hi_finite || hi == o.hi);
  }
};

IntInterval interval_join(const IntInterval& a, const IntInterval& b);
/// Intersection a ∩ b.  When the intersection contains no integer the
/// result is meaningless and `*empty` (if supplied) is set; callers that
/// conjoin constraints (the specializer's shape-guard merger) must check it.
IntInterval interval_meet(const IntInterval& a, const IntInterval& b,
                          bool* empty = nullptr);
/// Containment a ⊆ b.
bool interval_leq(const IntInterval& a, const IntInterval& b);
/// Classic interval widening: bounds that grew become open.
IntInterval interval_widen(const IntInterval& old, const IntInterval& next);

IntInterval interval_add(const IntInterval& a, const IntInterval& b);
IntInterval interval_sub(const IntInterval& a, const IntInterval& b);
IntInterval interval_mul(const IntInterval& a, const IntInterval& b);
IntInterval interval_min(const IntInterval& a, const IntInterval& b);
IntInterval interval_max(const IntInterval& a, const IntInterval& b);
IntInterval interval_neg(const IntInterval& a);

// ---------------------------------------------------------------------------
// Symbolic sizes under declared bounds.

/// Declared interval of one size variable: [lo, hi] from SizeBounds, or the
/// implicit [1, inf) when undeclared.
IntInterval size_var_interval(const std::string& name, const SizeBounds& b);

/// Interval of a monomial / size expression for all in-bounds assignments.
/// SizeExpr evaluation clamps to >= 1 (src/ir/size.cpp), mirrored here.
IntInterval interval_of(const SizeProd& p, const SizeBounds& b);
IntInterval interval_of(const SizeExpr& e, const SizeBounds& b);

/// Sound monomial dominance: true only if p <= q for *every* in-bounds
/// assignment.  Holds when q's variable multiset covers p's and the
/// constant slack does, too; incomplete (false means "don't know").
bool prod_leq(const SizeProd& p, const SizeProd& q, const SizeBounds& b);

/// expr_leq(a, b): every alternative of a is dominated by some alternative
/// of b, or the concrete intervals already separate them.
bool expr_leq(const SizeExpr& a, const SizeExpr& b, const SizeBounds& b_env);

// ---------------------------------------------------------------------------
// Guard decisions.

/// Device limits consulted when deciding guards.  Negative = unknown: only
/// device-independent decisions are made.
struct AnalysisLimits {
  int64_t max_group_size = -1;
  int64_t local_mem_bytes = -1;
};

AnalysisLimits limits_for(const DeviceProfile& dev);

enum class GuardDecision { AlwaysTrue, AlwaysFalse, Unknown };

const char* guard_decision_name(GuardDecision d);

/// A guard comparison known to have evaluated to `taken` on the current
/// path (an enclosing guard over the same threshold parameter).
struct GuardFact {
  SizeExpr par;
  SizeExpr fit;
  bool taken = false;
};
using GuardFacts = std::map<std::string, std::vector<GuardFact>>;

/// Decide `par >= t && (fit empty || fit <= max_group_size)` for all
/// in-bounds size assignments and all values of threshold t:
///
///   AlwaysFalse — the fit bound's *lower* bound exceeds max_group_size
///                 (the intra-group version can never fit a workgroup), or
///                 an enclosing guard over the same t failed with a
///                 dominating par (par' >= par, fit' vacuous), so
///                 par >= par' >= ... is impossible here too.
///   AlwaysTrue  — an enclosing guard over the same t succeeded with a
///                 dominated par (par' <= par) and this guard's fit is
///                 implied (empty, <= the enclosing fit, or provably
///                 <= max_group_size).
///   Unknown     — everything else.  In particular a guard with no fit
///                 bound is *never* AlwaysTrue/False on its own: t is a
///                 free tuning parameter, so both branches are reachable.
GuardDecision decide_guard(const ThresholdCmpE& tc, const AnalysisLimits& lim,
                           const SizeBounds& bounds, const GuardFacts& facts);

// ---------------------------------------------------------------------------
// Whole-program analysis table.

/// RangeDomain: the interval instantiation of ForwardInterp (see
/// src/analysis/dataflow.h for the interface contract).
struct RangeDomain {
  using Value = IntInterval;

  SizeBounds bounds;

  Value top() const { return IntInterval::top(); }
  Value join(const Value& a, const Value& b) const {
    return interval_join(a, b);
  }
  bool leq(const Value& a, const Value& b) const {
    return interval_leq(a, b);
  }
  Value widen(const Value& old, const Value& next) const {
    return interval_widen(old, next);
  }
  Value constant(const ConstE& c) const;
  Value binop(const std::string& op, const Value& a, const Value& b) const;
  Value unop(const std::string& op, const Value& a) const;
  Value size_var(const std::string& name) const {
    return size_var_interval(name, bounds);
  }
  Value input(const Param& p) const;
  Value dim(const Dim& d) const;
  Value iota_elem(const Dim& count) const;
  Value loop_index(const Value& count) const;
};

/// Everything the size analysis knows about one binding.
struct BindingFacts {
  std::vector<Type> types;  // declared shape (from the type annotations)
  IntInterval range;        // elementwise scalar interval
  SizeExpr par;             // exposed parallel degree of the defining expr
  SizeExpr local_mem;       // symbolic scratchpad footprint, bytes
  bool has_local = false;   // local_mem is meaningful (intra-group def)
};

struct ProgramAnalysis {
  std::map<std::string, BindingFacts> bindings;
  DefUse defuse;
};

/// Run the dataflow framework over `p` (which must be type-annotated) under
/// its declared size bounds, producing the per-binding table: shape, scalar
/// interval, Par(...) degree, and — for bindings whose definition contains
/// an intra-group seg-op — the symbolic local-memory footprint mirroring
/// the cost model's `local_peak = 2 * points * elem_bytes`.
ProgramAnalysis analyze_program(const Program& p);

/// Exposed parallel degree of an expression: max over contained seg-ops of
/// the product of their space dimensions (times nested seg-op degrees).
SizeExpr par_of(const ExprP& e);

/// Symbolic scratchpad footprint in bytes of the widest intra-group seg-op
/// in `e` (the cost model's local_peak).  Empty alts = no intra-group work.
SizeExpr local_mem_of(const ExprP& e);

}  // namespace analysis
}  // namespace incflat
