#include "src/analysis/lint.h"

#include <set>

#include "src/ir/traverse.h"

namespace incflat {
namespace analysis {

namespace {

std::string segop_label(const SegOpE& so) {
  const char* kind = so.op == SegOpE::Op::Map
                         ? "segmap"
                         : so.op == SegOpE::Op::Red ? "segred" : "segscan";
  return std::string(kind) + "^" + std::to_string(so.level);
}

struct Linter {
  const LintOptions& opts;
  const SizeBounds& bounds;
  std::vector<Diagnostic>& out;
  GuardFacts facts;

  void emit(Severity sev, const char* check, const std::string& at,
            const std::string& msg) {
    out.push_back(Diagnostic{sev, check, "lint", at, msg});
  }

  bool fit_vacuous(const SizeExpr& fit) const {
    if (fit.alts.empty() || opts.limits.max_group_size < 0) return false;
    const IntInterval fi = interval_of(fit, bounds);
    return fi.hi_finite && fi.hi <= opts.limits.max_group_size;
  }

  std::string on_device() const {
    return opts.device_name.empty() ? std::string("this device")
                                    : "device '" + opts.device_name + "'";
  }

  void walk(const ExprP& e, const std::string& at) {  // NOLINT(misc-no-recursion)
    if (!e) return;
    if (auto* i = e->as<IfE>()) {
      if (auto* tc = i->cond->as<ThresholdCmpE>()) {
        const GuardDecision d = decide_guard(*tc, opts.limits, bounds, facts);
        if (d != GuardDecision::Unknown) {
          const bool taken = d == GuardDecision::AlwaysTrue;
          emit(Severity::Warning, "dead-version", at,
               "guard on '" + tc->threshold + "' is " +
                   guard_decision_name(d) + " for every in-bounds dataset on " +
                   on_device() + ": the " + (taken ? "else" : "then") +
                   "-arm (" +
                   std::to_string(count_segops(taken ? i->else_e : i->then_e)) +
                   " seg-op version(s)) is dead code; "
                   "simplify-guards removes it");
        } else if (fit_vacuous(tc->fit)) {
          emit(Severity::Note, "guard-constant-fit", at,
               "workgroup-fit bound " + tc->fit.str() + " of guard '" +
                   tc->threshold + "' always fits " + on_device() +
                   " (max_group_size " +
                   std::to_string(opts.limits.max_group_size) +
                   "): the comparison degenerates to a pure threshold test");
        }
        push(*tc, true);
        walk(i->then_e, at + ".then");
        pop(tc->threshold);
        push(*tc, false);
        walk(i->else_e, at + ".else");
        pop(tc->threshold);
        return;
      }
      walk(i->cond, at + ".cond");
      walk(i->then_e, at + ".then");
      walk(i->else_e, at + ".else");
      return;
    }
    if (auto* so = e->as<SegOpE>()) {
      const std::string here = at + "." + segop_label(*so);
      if (so->level >= 1) {
        const SizeExpr lmem = local_mem_of(e);
        if (!lmem.alts.empty() && opts.limits.local_mem_bytes >= 0) {
          const IntInterval li = interval_of(lmem, bounds);
          if (li.lo_finite && li.lo > opts.limits.local_mem_bytes) {
            emit(Severity::Error, "local-mem-overflow", here,
                 "intra-group version needs at least " +
                     std::to_string(li.lo) + " bytes of scratchpad (" +
                     lmem.str() + ") but " + on_device() + " has " +
                     std::to_string(opts.limits.local_mem_bytes) +
                     ": the local-memory fallback always fires");
          }
        }
      }
      check_segbinds(*so, here);
      for (const auto& n : so->neutral) walk(n, here + ".neutral");
      if (so->op != SegOpE::Op::Map) walk(so->combine.body, here + ".combine");
      walk(so->body, here + ".body");
      return;
    }
    if (auto* b = e->as<BinOpE>()) {
      walk(b->lhs, at);
      walk(b->rhs, at);
    } else if (auto* u = e->as<UnOpE>()) {
      walk(u->e, at);
    } else if (auto* l = e->as<LetE>()) {
      const std::string v = l->vars.empty() ? std::string("_") : l->vars[0];
      walk(l->rhs, at + "." + v + "=");
      walk(l->body, at);
    } else if (auto* lp = e->as<LoopE>()) {
      for (const auto& x : lp->inits) walk(x, at);
      walk(lp->count, at);
      walk(lp->body, at + ".loop");
    } else if (auto* t = e->as<TupleE>()) {
      for (size_t i = 0; i < t->elems.size(); ++i) {
        walk(t->elems[i], at + "[" + std::to_string(i) + "]");
      }
    } else if (auto* rp = e->as<ReplicateE>()) {
      walk(rp->elem, at);
    } else if (auto* ra = e->as<RearrangeE>()) {
      walk(ra->e, at);
    } else if (auto* ix = e->as<IndexE>()) {
      walk(ix->arr, at);
      for (const auto& x : ix->idxs) walk(x, at);
    } else if (auto* m = e->as<MapE>()) {
      for (const auto& x : m->arrays) walk(x, at);
      walk(m->f.body, at + ".map");
    } else if (auto* r = e->as<ReduceE>()) {
      for (const auto& x : r->neutral) walk(x, at);
      for (const auto& x : r->arrays) walk(x, at);
      walk(r->op.body, at + ".reduce");
    } else if (auto* s = e->as<ScanE>()) {
      for (const auto& x : s->neutral) walk(x, at);
      for (const auto& x : s->arrays) walk(x, at);
      walk(s->op.body, at + ".scan");
    } else if (auto* rm = e->as<RedomapE>()) {
      for (const auto& x : rm->neutral) walk(x, at);
      for (const auto& x : rm->arrays) walk(x, at);
      walk(rm->red.body, at + ".redomap");
      walk(rm->mapf.body, at + ".redomap");
    } else if (auto* sm = e->as<ScanomapE>()) {
      for (const auto& x : sm->neutral) walk(x, at);
      for (const auto& x : sm->arrays) walk(x, at);
      walk(sm->red.body, at + ".scanomap");
      walk(sm->mapf.body, at + ".scanomap");
    }
  }

  /// Same used-set construction as prune-segbinds (innermost level first):
  /// a binding is live if the body, the combine operator, or a deeper
  /// level's source array references it.
  void check_segbinds(const SegOpE& so, const std::string& here) {
    std::set<std::string> used = free_vars(so.body);
    if (so.op != SegOpE::Op::Map) {
      for (const auto& fv : free_vars(so.combine.body)) used.insert(fv);
      for (const auto& p : so.combine.params) used.erase(p.name);
    }
    for (size_t k = so.space.size(); k > 0; --k) {
      const SegBind& b = so.space[k - 1];
      for (size_t i = 0; i < b.params.size(); ++i) {
        if (used.count(b.params[i])) {
          used.insert(b.arrays[i]);
        } else {
          emit(Severity::Warning, "unused-segbind", here,
               "seg-space binding '" + b.params[i] + " in " + b.arrays[i] +
                   "' at level " + std::to_string(k - 1) +
                   " is used neither by the body nor by a deeper binding "
                   "(prune-segbinds should have removed it)");
        }
      }
    }
  }

  void push(const ThresholdCmpE& tc, bool taken) {
    facts[tc.threshold].push_back(GuardFact{tc.par, tc.fit, taken});
  }
  void pop(const std::string& name) {
    auto it = facts.find(name);
    it->second.pop_back();
    if (it->second.empty()) facts.erase(it);
  }
};

}  // namespace

std::vector<Diagnostic> lint_program(const Program& p,
                                     const ThresholdRegistry& reg,
                                     const LintOptions& opts) {
  std::vector<Diagnostic> ds;
  Linter lint{opts, p.size_bounds, ds, {}};
  lint.walk(p.body, "body");

  std::set<std::string> mentioned;
  for (const auto& name : collect_thresholds(p.body)) mentioned.insert(name);
  for (const auto& ti : reg.all()) {
    if (!mentioned.count(ti.name)) {
      ds.push_back(Diagnostic{
          Severity::Warning, "unused-threshold", "lint", "",
          "threshold parameter '" + ti.name + "' (par " + ti.par.str() +
              ") is mentioned by no guard in the IR: it only widens the "
              "autotuner's search space"});
    }
  }

  for (const auto& name : dead_defs(def_use(p))) {
    const auto& info = def_use(p).defs.at(name);
    ds.push_back(Diagnostic{
        Severity::Note, "dead-binding", "lint", "",
        std::string(def_kind_name(info.kind)) + " binding '" + name +
            "' is never used"});
  }
  return ds;
}

}  // namespace analysis
}  // namespace incflat
