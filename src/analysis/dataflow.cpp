#include "src/analysis/dataflow.h"

namespace incflat {
namespace analysis {

const char* def_kind_name(DefKind k) {
  switch (k) {
    case DefKind::Input: return "input";
    case DefKind::SizeParam: return "size-param";
    case DefKind::Let: return "let";
    case DefKind::LoopParam: return "loop-param";
    case DefKind::LoopIndex: return "loop-index";
    case DefKind::LambdaParam: return "lambda-param";
    case DefKind::SegParam: return "seg-param";
    case DefKind::CombineParam: return "combine-param";
  }
  return "?";
}

namespace {

struct DefUseBuilder {
  DefUse& out;

  void def(const std::string& name, DefKind kind) {
    auto [it, fresh] = out.defs.emplace(name, DefInfo{kind, 0});
    if (!fresh) it->second.kind = kind;  // shadowing: last definition wins
  }

  void use(const std::string& name) {
    auto it = out.defs.find(name);
    if (it == out.defs.end()) {
      out.undefined.insert(name);
    } else {
      ++it->second.uses;
    }
  }

  void use_dim(const Dim& d) {
    if (!d.is_const()) use(d.var);
  }

  void use_type(const Type& t) {
    for (const auto& d : t.shape) use_dim(d);
  }

  void lambda(const Lambda& f, DefKind kind) {
    for (const auto& p : f.params) def(p.name, kind);
    walk(f.body);
  }

  void walk_all(const std::vector<ExprP>& es) {
    for (const auto& x : es) walk(x);
  }

  void walk(const ExprP& e) {  // NOLINT(misc-no-recursion)
    if (!e) return;
    if (auto* v = e->as<VarE>()) {
      use(v->name);
    } else if (e->is<ConstE>()) {
      // leaf
    } else if (auto* b = e->as<BinOpE>()) {
      walk(b->lhs);
      walk(b->rhs);
    } else if (auto* u = e->as<UnOpE>()) {
      walk(u->e);
    } else if (auto* i = e->as<IfE>()) {
      walk(i->cond);
      walk(i->then_e);
      walk(i->else_e);
    } else if (auto* l = e->as<LetE>()) {
      walk(l->rhs);
      for (const auto& v : l->vars) def(v, DefKind::Let);
      walk(l->body);
    } else if (auto* lp = e->as<LoopE>()) {
      walk_all(lp->inits);
      walk(lp->count);
      for (const auto& p : lp->params) def(p, DefKind::LoopParam);
      def(lp->ivar, DefKind::LoopIndex);
      walk(lp->body);
    } else if (auto* m = e->as<MapE>()) {
      walk_all(m->arrays);
      lambda(m->f, DefKind::LambdaParam);
    } else if (auto* r = e->as<ReduceE>()) {
      walk_all(r->neutral);
      walk_all(r->arrays);
      lambda(r->op, DefKind::LambdaParam);
    } else if (auto* s = e->as<ScanE>()) {
      walk_all(s->neutral);
      walk_all(s->arrays);
      lambda(s->op, DefKind::LambdaParam);
    } else if (auto* rm = e->as<RedomapE>()) {
      walk_all(rm->neutral);
      walk_all(rm->arrays);
      lambda(rm->red, DefKind::LambdaParam);
      lambda(rm->mapf, DefKind::LambdaParam);
    } else if (auto* sm = e->as<ScanomapE>()) {
      walk_all(sm->neutral);
      walk_all(sm->arrays);
      lambda(sm->red, DefKind::LambdaParam);
      lambda(sm->mapf, DefKind::LambdaParam);
    } else if (auto* rp = e->as<ReplicateE>()) {
      use_dim(rp->count);
      walk(rp->elem);
    } else if (auto* ra = e->as<RearrangeE>()) {
      walk(ra->e);
    } else if (auto* io = e->as<IotaE>()) {
      use_dim(io->count);
    } else if (auto* ix = e->as<IndexE>()) {
      walk(ix->arr);
      walk_all(ix->idxs);
    } else if (auto* t = e->as<TupleE>()) {
      walk_all(t->elems);
    } else if (auto* so = e->as<SegOpE>()) {
      for (const auto& lvl : so->space) {
        for (const auto& a : lvl.arrays) use(a);
        use_dim(lvl.dim);
        for (const auto& p : lvl.params) def(p, DefKind::SegParam);
      }
      walk_all(so->neutral);
      if (so->op != SegOpE::Op::Map) {
        lambda(so->combine, DefKind::CombineParam);
      }
      walk(so->body);
    } else if (e->is<ThresholdCmpE>()) {
      // Threshold parameters live in their own namespace (the registry),
      // not the value environment; the size variables inside par/fit are
      // dataset bindings, counted as uses so bounds declarations stay live.
      auto* tc = e->as<ThresholdCmpE>();
      for (const auto& alt : tc->par.alts) {
        for (const auto& d : alt.vars) use_dim(d);
      }
      for (const auto& alt : tc->fit.alts) {
        for (const auto& d : alt.vars) use_dim(d);
      }
    }
  }
};

}  // namespace

DefUse def_use(const Program& p) {
  DefUse du;
  DefUseBuilder b{du};
  for (const auto& sp : p.size_params()) b.def(sp, DefKind::SizeParam);
  for (const auto& in : p.inputs) {
    b.def(in.name, DefKind::Input);
    b.use_type(in.type);
  }
  b.walk(p.body);
  return du;
}

std::vector<std::string> dead_defs(const DefUse& du) {
  std::vector<std::string> out;
  for (const auto& [name, info] : du.defs) {
    if (info.uses > 0) continue;
    if (info.kind == DefKind::Input || info.kind == DefKind::SizeParam) {
      continue;
    }
    out.push_back(name);
  }
  return out;
}

}  // namespace analysis
}  // namespace incflat
