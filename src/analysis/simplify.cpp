#include "src/analysis/simplify.h"

#include <set>
#include <utility>

#include "src/ir/print.h"
#include "src/ir/traverse.h"
#include "src/support/trace.h"

namespace incflat {
namespace analysis {

namespace {

struct GuardFolder {
  const AnalysisLimits& lim;
  const SizeBounds& bounds;
  SimplifyStats& stats;

  /// Fold guards under the established facts about enclosing guard
  /// outcomes.  Only the spine positions where guards can occur (verified
  /// by src/ir/verify.cpp: if-conditions) are rewritten; everything that
  /// cannot contain a guard is returned unchanged, preserving sharing so a
  /// disabled pass is bit-identical by construction.
  ExprP fold(const ExprP& e, GuardFacts& facts) {  // NOLINT(misc-no-recursion)
    if (!e) return e;
    if (auto* i = e->as<IfE>()) {
      if (auto* tc = i->cond->as<ThresholdCmpE>()) {
        const GuardDecision d = decide_guard(*tc, lim, bounds, facts);
        if (d != GuardDecision::Unknown) {
          const bool taken = d == GuardDecision::AlwaysTrue;
          const ExprP& kept = taken ? i->then_e : i->else_e;
          const ExprP& dropped = taken ? i->else_e : i->then_e;
          ++stats.guards_folded;
          stats.versions_pruned += count_segops(dropped);
          push_fact(facts, *tc, taken);
          ExprP out = fold(kept, facts);
          pop_fact(facts, tc->threshold);
          return out;
        }
        push_fact(facts, *tc, true);
        ExprP then_e = fold(i->then_e, facts);
        pop_fact(facts, tc->threshold);
        push_fact(facts, *tc, false);
        ExprP else_e = fold(i->else_e, facts);
        pop_fact(facts, tc->threshold);
        if (pretty(then_e) == pretty(else_e)) {
          // F3: the guard distinguishes nothing.
          ++stats.guards_folded;
          return then_e;
        }
        if (then_e == i->then_e && else_e == i->else_e) return e;
        return mk(IfE{i->cond, std::move(then_e), std::move(else_e)},
                  e->types);
      }
      ExprP then_e = fold(i->then_e, facts);
      ExprP else_e = fold(i->else_e, facts);
      if (then_e == i->then_e && else_e == i->else_e) return e;
      return mk(IfE{i->cond, std::move(then_e), std::move(else_e)}, e->types);
    }
    if (auto* l = e->as<LetE>()) {
      ExprP rhs = fold(l->rhs, facts);
      ExprP body = fold(l->body, facts);
      if (rhs == l->rhs && body == l->body) return e;
      return mk(LetE{l->vars, std::move(rhs), std::move(body)}, e->types);
    }
    if (auto* lp = e->as<LoopE>()) {
      ExprP body = fold(lp->body, facts);
      if (body == lp->body) return e;
      return mk(LoopE{lp->params, lp->inits, lp->ivar, lp->count,
                      std::move(body)},
                e->types);
    }
    if (auto* t = e->as<TupleE>()) {
      std::vector<ExprP> elems;
      elems.reserve(t->elems.size());
      bool changed = false;
      for (const auto& x : t->elems) {
        elems.push_back(fold(x, facts));
        changed = changed || elems.back() != x;
      }
      if (!changed) return e;
      return mk(TupleE{std::move(elems)}, e->types);
    }
    if (auto* so = e->as<SegOpE>()) {
      // Guards can sit inside intra-group bodies (data-dependent nests).
      ExprP body = fold(so->body, facts);
      if (body == so->body) return e;
      SegOpE out = *so;
      out.body = std::move(body);
      return mk(std::move(out), e->types);
    }
    return e;
  }

  static void push_fact(GuardFacts& facts, const ThresholdCmpE& tc,
                        bool taken) {
    facts[tc.threshold].push_back(GuardFact{tc.par, tc.fit, taken});
  }

  static void pop_fact(GuardFacts& facts, const std::string& name) {
    auto it = facts.find(name);
    it->second.pop_back();
    if (it->second.empty()) facts.erase(it);
  }
};

}  // namespace

SimplifyStats simplify_guards(Program& p, ThresholdRegistry& reg,
                              const AnalysisLimits& lim) {
  SimplifyStats stats;
  GuardFolder folder{lim, p.size_bounds, stats};
  GuardFacts facts;
  p.body = folder.fold(p.body, facts);

  std::set<std::string> surviving;
  for (const auto& name : collect_thresholds(p.body)) surviving.insert(name);
  stats.thresholds_dropped =
      static_cast<int64_t>(reg.retain(surviving));

  if (trace::enabled()) {
    trace::count("analysis.guards_folded", stats.guards_folded);
    trace::count("analysis.versions_pruned", stats.versions_pruned);
    trace::count("analysis.thresholds_dropped", stats.thresholds_dropped);
  }
  return stats;
}

}  // namespace analysis
}  // namespace incflat
