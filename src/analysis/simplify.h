// The simplify-guards transformation: fold branch-tree guards the symbolic
// size analysis proves constant, delete the unreachable code versions, and
// drop the threshold parameters no surviving guard mentions.
//
// Three folding rules, each sound for *every* in-bounds dataset and every
// threshold assignment (see decide_guard in src/analysis/range.h):
//
//   F1 (device infeasibility)  — a guard whose workgroup-fit bound has an
//      interval lower bound above the device's max_group_size can never be
//      taken: keep only the else-version.
//   F2 (dominance)             — a guard over threshold t nested under an
//      enclosing guard over the *same* t whose outcome already determines
//      this one (par/fit dominance): keep the determined branch.
//   F3 (degenerate versions)   — both arms print identically: the guard
//      distinguishes nothing, keep the then-arm.
//
// Because all code versions are semantically equivalent by construction,
// folding never changes program results — only which version the plan can
// select — and for in-bounds datasets the folded branch is exactly the one
// the unsimplified program would have taken, so gpusim cost estimates are
// bit-identical (asserted by bench/ablation_codesize and
// tests/test_analysis.cpp).
#pragma once

#include <cstdint>

#include "src/analysis/range.h"
#include "src/flatten/thresholds.h"
#include "src/ir/expr.h"

namespace incflat {
namespace analysis {

struct SimplifyStats {
  int64_t guards_folded = 0;      // If nodes whose guard was removed
  int64_t versions_pruned = 0;    // seg-ops deleted with unreachable arms
  int64_t thresholds_dropped = 0; // registry parameters removed
};

/// Fold decidable guards in `p` (in place) under its declared size bounds
/// and the given device limits, then drop unreferenced thresholds from
/// `reg` (their registry paths are rewritten to skip the folded guards).
/// Unknown limits (negative fields) restrict folding to device-independent
/// rules.  The caller re-runs prune-segbinds / typecheck afterwards.
SimplifyStats simplify_guards(Program& p, ThresholdRegistry& reg,
                              const AnalysisLimits& lim);

}  // namespace analysis
}  // namespace incflat
