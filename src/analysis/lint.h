// Static-analysis lint over a compiled (target) program: structured
// diagnostics for findings that are not verification *errors* — the
// program is well-formed — but indicate wasted versions, impossible
// configurations, or leftover bindings.  Backs `incflatc --lint`.
//
// Catalogue (check names as emitted):
//
//   dead-version   (warning) — a guard the size analysis decides constant
//                   for every in-bounds dataset on the given device: one
//                   arm (and every seg-op version inside it) can never run.
//                   simplify-guards would delete it.
//   local-mem-overflow (error) — an intra-group seg-op whose symbolic
//                   scratchpad footprint's *lower* bound exceeds the
//                   device's local memory: the cost model will always take
//                   the global-memory fallback, so the version is never an
//                   improvement.
//   unused-segbind (warning) — a seg-space binding whose parameters are
//                   used neither by the body nor by deeper bindings
//                   (prune-segbinds should have removed it; firing means a
//                   pass regressed).
//   unused-threshold (warning) — a registry threshold parameter mentioned
//                   by no guard in the IR: it only widens the autotuner's
//                   search space.
//   guard-constant-fit (note) — a guard whose workgroup-fit conjunct is
//                   vacuously true on this device (fit's upper bound <=
//                   max_group_size): the comparison degenerates to a pure
//                   threshold test there.
//   dead-binding   (note) — a let/loop/lambda binding with zero uses.
#pragma once

#include <string>
#include <vector>

#include "src/analysis/range.h"
#include "src/flatten/thresholds.h"
#include "src/ir/expr.h"
#include "src/support/diag.h"

namespace incflat {
namespace analysis {

struct LintOptions {
  AnalysisLimits limits;    // negative fields: device-independent lints only
  std::string device_name;  // named in device-dependent messages
};

/// Lint `p` (a compiled target program, type-annotated) against its
/// threshold registry under the program's declared size bounds.
/// Diagnostics come back in IR-walk order, errors first within a site.
std::vector<Diagnostic> lint_program(const Program& p,
                                     const ThresholdRegistry& reg,
                                     const LintOptions& opts = {});

}  // namespace analysis
}  // namespace incflat
