// Reusable dataflow framework over the SOAC IR.
//
// Two layers:
//
//  1. def-use chains and liveness (def_use / dead_defs): every binder in a
//     program — inputs, size parameters, lets, loop params and indices,
//     lambda and seg-space params — with its use count.  In a pure
//     expression language with single-assignment binders, classic backward
//     liveness degenerates to "is the binding referenced anywhere in its
//     scope", so a zero use count *is* the dead-code verdict.
//
//  2. a forward abstract-interpretation driver (ForwardInterp<D>)
//     parameterized by a lattice domain D.  The driver owns the traversal
//     and environment plumbing (binders, branch joins, loop fixpoints with
//     widening); the domain owns the value algebra.  Arrays are abstracted
//     *elementwise*: the abstract value of an array is an over-approximation
//     of every element, so indexing and SOAC element binding are sound
//     without tracking per-index precision.
//
// The concrete instantiation used by the size analysis is RangeDomain
// (src/analysis/range.h), whose Value is an integer interval.
//
// Domain requirements (duck-typed; see RangeDomain for a model):
//
//   using Value = ...;                          // lattice element
//   Value top();                                // no information
//   Value join(Value, Value);                   // least upper bound
//   bool  leq(Value, Value);                    // a ⊑ b (fixpoint test)
//   Value widen(Value old, Value next);         // forces loop termination
//   Value constant(const ConstE&);              // literal
//   Value binop(const std::string&, Value, Value);
//   Value unop(const std::string&, Value);
//   Value size_var(const std::string&);         // value of a size variable
//   Value input(const Param&);                  // elementwise input value
//   Value dim(const Dim&);                      // value of a Dim
//   Value iota_elem(const Dim& count);          // element of iota(count)
//   Value loop_index(Value count);              // ivar of `for i < count`
#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ir/expr.h"

namespace incflat {
namespace analysis {

enum class DefKind {
  Input,
  SizeParam,
  Let,
  LoopParam,
  LoopIndex,
  LambdaParam,
  SegParam,
  CombineParam,
};

const char* def_kind_name(DefKind k);

struct DefInfo {
  DefKind kind = DefKind::Let;
  int uses = 0;
};

/// Def-use summary of one program.  Binder names are assumed globally
/// unique (the pipeline's NameGen guarantees it); shadowed re-definitions
/// merge their use counts, which only ever *over*-approximates liveness.
struct DefUse {
  std::map<std::string, DefInfo> defs;
  std::set<std::string> undefined;  // used but never defined
};

DefUse def_use(const Program& p);

/// Names of let/loop/lambda/seg bindings with zero uses — dead code.
/// Inputs and size parameters are excluded (an unused input is an API
/// choice, not dead IR).
std::vector<std::string> dead_defs(const DefUse& du);

// ---------------------------------------------------------------------------

/// Forward abstract interpretation of a program under domain D.  eval()
/// returns one abstract value per result of the expression; run() seeds the
/// environment from the program's size parameters and inputs.  Every binder
/// encountered is recorded in bindings() (joined over multiple visits, e.g.
/// loop iterations), giving the per-binding analysis table.
template <typename D>
class ForwardInterp {
 public:
  using Value = typename D::Value;

  explicit ForwardInterp(D dom) : d_(std::move(dom)) {}

  std::vector<Value> run(const Program& p) {
    env_.clear();
    bindings_.clear();
    for (const auto& sp : p.size_params()) bind(sp, d_.size_var(sp));
    for (const auto& in : p.inputs) bind(in.name, d_.input(in));
    return eval(p.body);
  }

  /// Abstract value of every binding encountered, keyed by name.
  const std::map<std::string, Value>& bindings() const { return bindings_; }

  std::vector<Value> eval(const ExprP& e) {
    if (!e) return {};
    if (auto* v = e->as<VarE>()) {
      auto it = env_.find(v->name);
      return {it == env_.end() ? d_.top() : it->second};
    }
    if (auto* c = e->as<ConstE>()) return {d_.constant(*c)};
    if (auto* b = e->as<BinOpE>()) {
      return {d_.binop(b->op, one(b->lhs), one(b->rhs))};
    }
    if (auto* u = e->as<UnOpE>()) return {d_.unop(u->op, one(u->e))};
    if (auto* i = e->as<IfE>()) {
      eval(i->cond);
      return join_all(eval(i->then_e), eval(i->else_e));
    }
    if (auto* l = e->as<LetE>()) {
      std::vector<Value> vs = eval(l->rhs);
      for (size_t k = 0; k < l->vars.size(); ++k) {
        bind(l->vars[k], k < vs.size() ? vs[k] : d_.top());
      }
      return eval(l->body);
    }
    if (auto* lp = e->as<LoopE>()) return eval_loop(*lp);
    if (auto* m = e->as<MapE>()) {
      bind_lambda(m->f, eval_list(m->arrays));
      return eval(m->f.body);
    }
    if (auto* r = e->as<ReduceE>()) {
      return eval_fold(r->op, eval_list(r->neutral), eval_list(r->arrays));
    }
    if (auto* s = e->as<ScanE>()) {
      // Elementwise view of the partial-result array: every prefix fold.
      std::vector<Value> acc =
          eval_fold(s->op, eval_list(s->neutral), eval_list(s->arrays));
      return join_all(acc, eval_list(s->neutral));
    }
    if (auto* rm = e->as<RedomapE>()) {
      bind_lambda(rm->mapf, eval_list(rm->arrays));
      return eval_fold(rm->red, eval_list(rm->neutral), eval(rm->mapf.body));
    }
    if (auto* sm = e->as<ScanomapE>()) {
      bind_lambda(sm->mapf, eval_list(sm->arrays));
      std::vector<Value> acc =
          eval_fold(sm->red, eval_list(sm->neutral), eval(sm->mapf.body));
      return join_all(acc, eval_list(sm->neutral));
    }
    if (auto* rp = e->as<ReplicateE>()) return eval(rp->elem);
    if (auto* ra = e->as<RearrangeE>()) return eval(ra->e);
    if (auto* io = e->as<IotaE>()) return {d_.iota_elem(io->count)};
    if (auto* ix = e->as<IndexE>()) {
      for (const auto& x : ix->idxs) eval(x);
      return eval(ix->arr);  // elementwise: indexing loses nothing
    }
    if (auto* t = e->as<TupleE>()) {
      std::vector<Value> out;
      out.reserve(t->elems.size());
      for (const auto& x : t->elems) out.push_back(one(x));
      return out;
    }
    if (auto* so = e->as<SegOpE>()) return eval_segop(*so);
    if (e->is<ThresholdCmpE>()) return {d_.top()};  // a runtime boolean
    return {d_.top()};
  }

 private:
  Value one(const ExprP& e) {
    std::vector<Value> vs = eval(e);
    return vs.size() == 1 ? vs[0] : d_.top();
  }

  std::vector<Value> eval_list(const std::vector<ExprP>& es) {
    std::vector<Value> out;
    out.reserve(es.size());
    for (const auto& x : es) out.push_back(one(x));
    return out;
  }

  std::vector<Value> join_all(std::vector<Value> a,
                              const std::vector<Value>& b) {
    if (a.size() != b.size()) {
      return std::vector<Value>(std::max(a.size(), b.size()), d_.top());
    }
    for (size_t i = 0; i < a.size(); ++i) a[i] = d_.join(a[i], b[i]);
    return a;
  }

  void bind(const std::string& name, Value v) {
    env_[name] = v;
    auto it = bindings_.find(name);
    if (it == bindings_.end()) {
      bindings_.emplace(name, v);
    } else {
      it->second = d_.join(it->second, v);  // re-visited binder (loop body)
    }
  }

  void bind_lambda(const Lambda& f, const std::vector<Value>& args) {
    for (size_t i = 0; i < f.params.size(); ++i) {
      bind(f.params[i].name, i < args.size() ? args[i] : d_.top());
    }
  }

  /// Loop fixpoint: params start at the inits and are widened with each
  /// abstract body evaluation until stable.  Interval widening jumps to
  /// ±inf, so this converges in a couple of rounds; the iteration cap is a
  /// safety net for ill-behaved domains.
  std::vector<Value> eval_loop(const LoopE& lp) {
    std::vector<Value> cur = eval_list(lp.inits);
    cur.resize(lp.params.size(), d_.top());
    bind(lp.ivar, d_.loop_index(one(lp.count)));
    for (int round = 0; round < 8; ++round) {
      for (size_t i = 0; i < lp.params.size(); ++i) bind(lp.params[i], cur[i]);
      std::vector<Value> next = eval(lp.body);
      next.resize(lp.params.size(), d_.top());
      bool stable = true;
      for (size_t i = 0; i < cur.size(); ++i) {
        Value joined = d_.join(cur[i], next[i]);
        if (!d_.leq(joined, cur[i])) {
          stable = false;
          cur[i] = d_.widen(cur[i], joined);
        }
      }
      if (stable) break;
    }
    for (size_t i = 0; i < lp.params.size(); ++i) bind(lp.params[i], cur[i]);
    return cur;
  }

  /// Reduction fixpoint: the accumulator absorbs elements through the
  /// combine operator until stable under widening.  The operator binds its
  /// 2k params as k accumulators followed by k elements.
  std::vector<Value> eval_fold(const Lambda& op, std::vector<Value> acc,
                               const std::vector<Value>& elems) {
    const size_t k = op.params.size() / 2;
    acc.resize(k, d_.top());
    for (int round = 0; round < 8; ++round) {
      for (size_t i = 0; i < k; ++i) bind(op.params[i].name, acc[i]);
      for (size_t i = 0; i + k < op.params.size(); ++i) {
        bind(op.params[k + i].name, i < elems.size() ? elems[i] : d_.top());
      }
      std::vector<Value> next = eval(op.body);
      next.resize(k, d_.top());
      bool stable = true;
      for (size_t i = 0; i < k; ++i) {
        Value joined = d_.join(acc[i], next[i]);
        if (!d_.leq(joined, acc[i])) {
          stable = false;
          acc[i] = d_.widen(acc[i], joined);
        }
      }
      if (stable) break;
    }
    return acc;
  }

  std::vector<Value> eval_segop(const SegOpE& so) {
    for (const auto& lvl : so.space) {
      for (size_t i = 0; i < lvl.params.size(); ++i) {
        auto it = env_.find(lvl.arrays[i]);
        bind(lvl.params[i], it == env_.end() ? d_.top() : it->second);
      }
    }
    std::vector<Value> body = eval(so.body);
    if (so.op == SegOpE::Op::Map) return body;
    std::vector<Value> acc = eval_fold(so.combine, eval_list(so.neutral), body);
    if (so.op == SegOpE::Op::Scan) return join_all(acc, eval_list(so.neutral));
    return acc;
  }

  D d_;
  std::map<std::string, Value> env_;
  std::map<std::string, Value> bindings_;
};

}  // namespace analysis
}  // namespace incflat
