#include "src/analysis/range.h"

#include <algorithm>
#include <limits>

#include "src/support/error.h"

namespace incflat {
namespace analysis {

namespace {

constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
constexpr int64_t kMin = std::numeric_limits<int64_t>::min();

int64_t sat_add(int64_t a, int64_t b) {
  if (a > 0 && b > kMax - a) return kMax;
  if (a < 0 && b < kMin - a) return kMin;
  return a + b;
}

int64_t sat_mul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kMin || b == kMin) return (a > 0) == (b > 0) ? kMax : kMin;
  const int64_t hi = kMax / (a < 0 ? -a : a);
  if ((b < 0 ? -b : b) > hi) return (a > 0) == (b > 0) ? kMax : kMin;
  return a * b;
}

/// Saturated bounds are indistinguishable from overflow — report them open.
IntInterval desaturate(IntInterval v) {
  if (v.lo_finite && v.lo == kMin) v.lo_finite = false;
  if (v.hi_finite && v.hi == kMax) v.hi_finite = false;
  return v;
}

}  // namespace

std::string IntInterval::str() const {
  std::string s = lo_finite ? "[" + std::to_string(lo) : "(-inf";
  s += ", ";
  s += hi_finite ? std::to_string(hi) + "]" : "+inf)";
  return s;
}

IntInterval interval_join(const IntInterval& a, const IntInterval& b) {
  IntInterval out;
  out.lo_finite = a.lo_finite && b.lo_finite;
  out.hi_finite = a.hi_finite && b.hi_finite;
  if (out.lo_finite) out.lo = std::min(a.lo, b.lo);
  if (out.hi_finite) out.hi = std::max(a.hi, b.hi);
  return out;
}

IntInterval interval_meet(const IntInterval& a, const IntInterval& b,
                          bool* empty) {
  IntInterval out;
  out.lo_finite = a.lo_finite || b.lo_finite;
  out.hi_finite = a.hi_finite || b.hi_finite;
  if (out.lo_finite) {
    out.lo = a.lo_finite && b.lo_finite ? std::max(a.lo, b.lo)
                                        : (a.lo_finite ? a.lo : b.lo);
  }
  if (out.hi_finite) {
    out.hi = a.hi_finite && b.hi_finite ? std::min(a.hi, b.hi)
                                        : (a.hi_finite ? a.hi : b.hi);
  }
  if (empty) *empty = out.lo_finite && out.hi_finite && out.lo > out.hi;
  return out;
}

bool interval_leq(const IntInterval& a, const IntInterval& b) {
  if (b.lo_finite && (!a.lo_finite || a.lo < b.lo)) return false;
  if (b.hi_finite && (!a.hi_finite || a.hi > b.hi)) return false;
  return true;
}

IntInterval interval_widen(const IntInterval& old, const IntInterval& next) {
  IntInterval out = next;
  if (!old.lo_finite || (next.lo_finite && next.lo < old.lo)) {
    out.lo_finite = false;
  } else {
    out.lo_finite = old.lo_finite;
    out.lo = old.lo;
  }
  if (!old.hi_finite || (next.hi_finite && next.hi > old.hi)) {
    out.hi_finite = false;
  } else {
    out.hi_finite = old.hi_finite;
    out.hi = old.hi;
  }
  return out;
}

IntInterval interval_add(const IntInterval& a, const IntInterval& b) {
  IntInterval out;
  out.lo_finite = a.lo_finite && b.lo_finite;
  out.hi_finite = a.hi_finite && b.hi_finite;
  if (out.lo_finite) out.lo = sat_add(a.lo, b.lo);
  if (out.hi_finite) out.hi = sat_add(a.hi, b.hi);
  return desaturate(out);
}

IntInterval interval_neg(const IntInterval& a) {
  IntInterval out;
  out.lo_finite = a.hi_finite;
  out.hi_finite = a.lo_finite;
  if (out.lo_finite) out.lo = a.hi == kMin ? kMax : -a.hi;
  if (out.hi_finite) out.hi = a.lo == kMin ? kMax : -a.lo;
  return desaturate(out);
}

IntInterval interval_sub(const IntInterval& a, const IntInterval& b) {
  return interval_add(a, interval_neg(b));
}

IntInterval interval_mul(const IntInterval& a, const IntInterval& b) {
  // With open ends, the product of bound candidates only works when both
  // sides are fully finite; otherwise reason by sign.
  if (a.lo_finite && a.hi_finite && b.lo_finite && b.hi_finite) {
    const int64_t c[4] = {sat_mul(a.lo, b.lo), sat_mul(a.lo, b.hi),
                          sat_mul(a.hi, b.lo), sat_mul(a.hi, b.hi)};
    IntInterval out;
    out.lo_finite = out.hi_finite = true;
    out.lo = *std::min_element(c, c + 4);
    out.hi = *std::max_element(c, c + 4);
    return desaturate(out);
  }
  // Both sides non-negative: lower bound survives even with open tops.
  if (a.lo_finite && a.lo >= 0 && b.lo_finite && b.lo >= 0) {
    IntInterval out = IntInterval::at_least(sat_mul(a.lo, b.lo));
    if (a.hi_finite && b.hi_finite) {
      out.hi_finite = true;
      out.hi = sat_mul(a.hi, b.hi);
    }
    return desaturate(out);
  }
  return IntInterval::top();
}

IntInterval interval_min(const IntInterval& a, const IntInterval& b) {
  IntInterval out;
  out.lo_finite = a.lo_finite && b.lo_finite;
  if (out.lo_finite) out.lo = std::min(a.lo, b.lo);
  out.hi_finite = a.hi_finite || b.hi_finite;
  if (out.hi_finite) {
    out.hi = a.hi_finite && b.hi_finite ? std::min(a.hi, b.hi)
                                        : (a.hi_finite ? a.hi : b.hi);
  }
  return out;
}

IntInterval interval_max(const IntInterval& a, const IntInterval& b) {
  return interval_neg(interval_min(interval_neg(a), interval_neg(b)));
}

// ---------------------------------------------------------------------------

IntInterval size_var_interval(const std::string& name, const SizeBounds& b) {
  auto it = b.find(name);
  if (it == b.end()) return IntInterval::at_least(1);
  IntInterval out = IntInterval::at_least(std::max<int64_t>(1, it->second.lo));
  if (it->second.bounded_above()) {
    out.hi_finite = true;
    out.hi = std::max(it->second.hi, out.lo);
  }
  return out;
}

IntInterval interval_of(const SizeProd& p, const SizeBounds& b) {
  IntInterval out = IntInterval::point(p.konst);
  for (const auto& d : p.vars) {
    out = interval_mul(out, size_var_interval(d.var, b));
  }
  return out;
}

IntInterval interval_of(const SizeExpr& e, const SizeBounds& b) {
  // SizeExpr::eval is max(1, max over alts) — mirror the clamp exactly.
  IntInterval out = IntInterval::point(1);
  for (const auto& alt : e.alts) {
    out = interval_max(out, interval_of(alt, b));
  }
  return out;
}

bool prod_leq(const SizeProd& p, const SizeProd& q, const SizeBounds& b) {
  // q's variable multiset must cover p's; the leftover variables' lower
  // bounds (each >= 1) plus the constants must absorb p's constant:
  //   p = kp * Πv,  q = kq * Πv * Πextra  >=  kq * Πlo(extra) * Πv.
  std::vector<std::string> pv, qv;
  for (const auto& d : p.vars) pv.push_back(d.var);
  for (const auto& d : q.vars) qv.push_back(d.var);
  std::sort(pv.begin(), pv.end());
  std::sort(qv.begin(), qv.end());
  int64_t slack = q.konst;
  size_t i = 0;
  for (const auto& v : qv) {
    if (i < pv.size() && pv[i] == v) {
      ++i;
    } else {
      const IntInterval vi = size_var_interval(v, b);
      slack = sat_mul(slack, vi.lo_finite ? vi.lo : 1);
    }
  }
  if (i < pv.size()) return false;  // p has a variable q lacks
  return p.konst <= slack;
}

bool expr_leq(const SizeExpr& a, const SizeExpr& b, const SizeBounds& b_env) {
  const std::vector<SizeProd> one{SizeProd::one()};
  const auto& alts_a = a.alts.empty() ? one : a.alts;
  const auto& alts_b = b.alts.empty() ? one : b.alts;
  bool all = true;
  for (const auto& pa : alts_a) {
    bool dominated = false;
    for (const auto& pb : alts_b) {
      if (prod_leq(pa, pb, b_env)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      all = false;
      break;
    }
  }
  if (all) return true;
  // Fallback: the concrete intervals may already separate the expressions.
  const IntInterval ia = interval_of(a, b_env);
  const IntInterval ib = interval_of(b, b_env);
  return ia.hi_finite && ib.lo_finite && ia.hi <= ib.lo;
}

// ---------------------------------------------------------------------------

AnalysisLimits limits_for(const DeviceProfile& dev) {
  AnalysisLimits lim;
  lim.max_group_size = dev.max_group_size;
  lim.local_mem_bytes = dev.local_mem_bytes;
  return lim;
}

const char* guard_decision_name(GuardDecision d) {
  switch (d) {
    case GuardDecision::AlwaysTrue: return "always-true";
    case GuardDecision::AlwaysFalse: return "always-false";
    case GuardDecision::Unknown: return "unknown";
  }
  return "?";
}

namespace {

/// The fit conjunct `fit <= max_group_size` is vacuously true for every
/// in-bounds assignment (or there is no fit bound at all).
bool fit_always_ok(const SizeExpr& fit, const AnalysisLimits& lim,
                   const SizeBounds& bounds) {
  if (fit.alts.empty()) return true;
  if (lim.max_group_size < 0) return false;
  const IntInterval fi = interval_of(fit, bounds);
  return fi.hi_finite && fi.hi <= lim.max_group_size;
}

}  // namespace

GuardDecision decide_guard(const ThresholdCmpE& tc, const AnalysisLimits& lim,
                           const SizeBounds& bounds, const GuardFacts& facts) {
  // Device infeasibility: the fit bound's lower bound already exceeds the
  // workgroup limit, so the intra-group version can never be selected.
  if (!tc.fit.alts.empty() && lim.max_group_size >= 0) {
    const IntInterval fi = interval_of(tc.fit, bounds);
    if (fi.lo_finite && fi.lo > lim.max_group_size) {
      return GuardDecision::AlwaysFalse;
    }
  }
  // Dominance by enclosing guards over the same threshold parameter.  The
  // threshold's value t is shared, so one observed comparison constrains t
  // relative to its par.
  auto it = facts.find(tc.threshold);
  if (it != facts.end()) {
    for (const GuardFact& f : it->second) {
      if (f.taken) {
        // f.par >= t and f's fit passed.  If our par dominates f's and our
        // fit is implied, the comparison repeats an established truth.
        const bool par_ok = expr_leq(f.par, tc.par, bounds);
        const bool fit_ok =
            fit_always_ok(tc.fit, lim, bounds) ||
            (!f.fit.alts.empty() && expr_leq(tc.fit, f.fit, bounds));
        if (par_ok && fit_ok) return GuardDecision::AlwaysTrue;
      } else {
        // !(f.par >= t && f's fit ok).  Only if f's fit conjunct could not
        // have been the failing part do we learn f.par < t.
        if (fit_always_ok(f.fit, lim, bounds) &&
            expr_leq(tc.par, f.par, bounds)) {
          return GuardDecision::AlwaysFalse;  // tc.par <= f.par < t
        }
      }
    }
  }
  return GuardDecision::Unknown;
}

// ---------------------------------------------------------------------------
// RangeDomain transfer functions.

IntInterval RangeDomain::constant(const ConstE& c) const {
  switch (c.tag) {
    case Scalar::I32:
    case Scalar::I64:
    case Scalar::Bool:
      return IntInterval::point(c.i);
    default:
      return IntInterval::top();  // float payloads are not tracked
  }
}

IntInterval RangeDomain::binop(const std::string& op, const IntInterval& a,
                               const IntInterval& b) const {
  if (op == "+") return interval_add(a, b);
  if (op == "-") return interval_sub(a, b);
  if (op == "*") return interval_mul(a, b);
  if (op == "min") return interval_min(a, b);
  if (op == "max") return interval_max(a, b);
  if (op == "/") {
    // Conservative: only the easy all-positive case.
    if (a.lo_finite && a.lo >= 0 && b.lo_finite && b.lo >= 1) {
      IntInterval out = IntInterval::at_least(0);
      if (a.hi_finite) {
        out.hi_finite = true;
        out.hi = a.hi / b.lo;
      }
      return out;
    }
    return IntInterval::top();
  }
  if (op == "<" || op == "<=" || op == "==" || op == "&&" || op == "||") {
    return IntInterval::range(0, 1);
  }
  return IntInterval::top();  // "pow" and anything unrecognised
}

IntInterval RangeDomain::unop(const std::string& op,
                              const IntInterval& a) const {
  if (op == "neg") return interval_neg(a);
  if (op == "!") return IntInterval::range(0, 1);
  if (op == "abs") {
    if (a.lo_finite && a.lo >= 0) return a;
    IntInterval out = IntInterval::at_least(0);
    if (a.lo_finite && a.hi_finite) {
      out.hi_finite = true;
      out.hi = std::max(a.lo == kMin ? kMax : -a.lo, a.hi);
    }
    return desaturate(out);
  }
  if (op == "i2f") return a;  // value-preserving for tracked (integer) inputs
  if (op == "f2i") {
    // Truncation toward zero moves the value by strictly less than 1.
    IntInterval out = a;
    if (out.lo_finite) out.lo = sat_add(out.lo, -1);
    if (out.hi_finite) out.hi = sat_add(out.hi, 1);
    return desaturate(out);
  }
  return IntInterval::top();  // exp/log/sqrt: float-valued
}

IntInterval RangeDomain::input(const Param&) const {
  return IntInterval::top();  // input data is unconstrained
}

IntInterval RangeDomain::dim(const Dim& d) const {
  return d.is_const() ? IntInterval::point(d.cval) : size_var(d.var);
}

IntInterval RangeDomain::iota_elem(const Dim& count) const {
  const IntInterval c = dim(count);
  IntInterval out = IntInterval::at_least(0);
  if (c.hi_finite) {
    out.hi_finite = true;
    out.hi = std::max<int64_t>(0, sat_add(c.hi, -1));
  }
  return out;
}

IntInterval RangeDomain::loop_index(const IntInterval& count) const {
  IntInterval out = IntInterval::at_least(0);
  if (count.hi_finite) {
    out.hi_finite = true;
    out.hi = std::max<int64_t>(0, sat_add(count.hi, -1));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Par degrees and local-memory footprints.

namespace {

SizeProd space_prod(const SegSpace& space) {
  SizeProd p;
  for (const auto& b : space) p *= b.dim;
  return p;
}

void par_walk(const ExprP& e, SizeExpr& acc);  // NOLINT(misc-no-recursion)

void par_walk_all(const std::vector<ExprP>& es, SizeExpr& acc) {
  for (const auto& x : es) par_walk(x, acc);
}

void par_walk(const ExprP& e, SizeExpr& acc) {
  if (!e) return;
  if (auto* so = e->as<SegOpE>()) {
    SizeExpr inner;
    par_walk(so->body, inner);
    const SizeProd mine = space_prod(so->space);
    const SizeExpr exposed = inner.alts.empty()
                                 ? SizeExpr::of(mine)
                                 : inner.times(mine);
    acc = acc.max_with(exposed);
    // Sequential SOACs inside the body were already covered by the walk;
    // neutral elements run per segment, sequentially.
    return;
  }
  if (auto* b = e->as<BinOpE>()) {
    par_walk(b->lhs, acc);
    par_walk(b->rhs, acc);
  } else if (auto* u = e->as<UnOpE>()) {
    par_walk(u->e, acc);
  } else if (auto* i = e->as<IfE>()) {
    par_walk(i->then_e, acc);
    par_walk(i->else_e, acc);
  } else if (auto* l = e->as<LetE>()) {
    par_walk(l->rhs, acc);
    par_walk(l->body, acc);
  } else if (auto* lp = e->as<LoopE>()) {
    par_walk_all(lp->inits, acc);
    par_walk(lp->body, acc);
  } else if (auto* t = e->as<TupleE>()) {
    par_walk_all(t->elems, acc);
  } else if (auto* rp = e->as<ReplicateE>()) {
    par_walk(rp->elem, acc);
  } else if (auto* ra = e->as<RearrangeE>()) {
    par_walk(ra->e, acc);
  } else if (auto* ix = e->as<IndexE>()) {
    par_walk(ix->arr, acc);
    par_walk_all(ix->idxs, acc);
  } else if (auto* m = e->as<MapE>()) {
    par_walk_all(m->arrays, acc);
    par_walk(m->f.body, acc);
  } else if (auto* r = e->as<ReduceE>()) {
    par_walk_all(r->neutral, acc);
    par_walk_all(r->arrays, acc);
    par_walk(r->op.body, acc);
  } else if (auto* s = e->as<ScanE>()) {
    par_walk_all(s->neutral, acc);
    par_walk_all(s->arrays, acc);
    par_walk(s->op.body, acc);
  } else if (auto* rm = e->as<RedomapE>()) {
    par_walk_all(rm->neutral, acc);
    par_walk_all(rm->arrays, acc);
    par_walk(rm->red.body, acc);
    par_walk(rm->mapf.body, acc);
  } else if (auto* sm = e->as<ScanomapE>()) {
    par_walk_all(sm->neutral, acc);
    par_walk_all(sm->arrays, acc);
    par_walk(sm->red.body, acc);
    par_walk(sm->mapf.body, acc);
  }
}

/// Per-point result bytes of a seg-op body, symbolically: scalars
/// contribute their width; per-point arrays contribute width times their
/// (symbolic) element count — mirroring cost.cpp's bytes_per_point_results.
SizeExpr point_bytes(const SegOpE& so) {
  SizeExpr total;
  for (const auto& t : so.body->types) {
    SizeProd p;
    p.konst = scalar_bytes(t.elem);
    for (const auto& d : t.shape) p *= d;
    total = total.alts.empty() ? SizeExpr::of(p) : total.max_with(SizeExpr::of(p));
  }
  return total;
}

void local_walk(const ExprP& e, bool in_group,
                SizeExpr& acc);  // NOLINT(misc-no-recursion)

void local_walk(const ExprP& e, bool in_group, SizeExpr& acc) {
  if (!e) return;
  if (auto* so = e->as<SegOpE>()) {
    if (in_group) {
      // The cost model stages 2 * points * elem_bytes of intermediates in
      // scratchpad for each inner seg-op (double-buffered tree/sweep).
      const SizeExpr pb = point_bytes(*so);
      SizeProd pts = space_prod(so->space);
      pts.konst = sat_mul(pts.konst, 2);
      SizeExpr mine = pb.times(pts);
      acc = acc.max_with(mine);
    }
    local_walk(so->body, in_group || so->level >= 1, acc);
    return;
  }
  if (auto* b = e->as<BinOpE>()) {
    local_walk(b->lhs, in_group, acc);
    local_walk(b->rhs, in_group, acc);
  } else if (auto* u = e->as<UnOpE>()) {
    local_walk(u->e, in_group, acc);
  } else if (auto* i = e->as<IfE>()) {
    local_walk(i->then_e, in_group, acc);
    local_walk(i->else_e, in_group, acc);
  } else if (auto* l = e->as<LetE>()) {
    local_walk(l->rhs, in_group, acc);
    local_walk(l->body, in_group, acc);
  } else if (auto* lp = e->as<LoopE>()) {
    for (const auto& x : lp->inits) local_walk(x, in_group, acc);
    local_walk(lp->body, in_group, acc);
  } else if (auto* t = e->as<TupleE>()) {
    for (const auto& x : t->elems) local_walk(x, in_group, acc);
  } else if (auto* rp = e->as<ReplicateE>()) {
    local_walk(rp->elem, in_group, acc);
  } else if (auto* ra = e->as<RearrangeE>()) {
    local_walk(ra->e, in_group, acc);
  } else if (auto* ix = e->as<IndexE>()) {
    local_walk(ix->arr, in_group, acc);
    for (const auto& x : ix->idxs) local_walk(x, in_group, acc);
  }
  // Sequential SOACs do not stage intermediates in scratchpad.
}

}  // namespace

SizeExpr par_of(const ExprP& e) {
  SizeExpr acc;
  par_walk(e, acc);
  return acc;
}

SizeExpr local_mem_of(const ExprP& e) {
  SizeExpr acc;
  local_walk(e, false, acc);
  return acc;
}

ProgramAnalysis analyze_program(const Program& p) {
  ProgramAnalysis out;
  out.defuse = def_use(p);

  RangeDomain dom;
  dom.bounds = p.size_bounds;
  ForwardInterp<RangeDomain> interp(dom);
  interp.run(p);
  for (const auto& [name, interval] : interp.bindings()) {
    out.bindings[name].range = interval;
  }

  // Shape / Par / local-memory facts come from the defining expressions of
  // let bindings (the only binders whose right-hand side is a whole
  // expression).
  struct Walk {
    ProgramAnalysis& out;
    void visit(const ExprP& e) {  // NOLINT(misc-no-recursion)
      if (!e) return;
      if (auto* l = e->as<LetE>()) {
        for (size_t i = 0; i < l->vars.size(); ++i) {
          BindingFacts& f = out.bindings[l->vars[i]];
          if (l->rhs && i < l->rhs->types.size()) {
            f.types = {l->rhs->types[i]};
          }
          f.par = par_of(l->rhs);
          f.local_mem = local_mem_of(l->rhs);
          f.has_local = !f.local_mem.alts.empty();
        }
        visit(l->rhs);
        visit(l->body);
        return;
      }
      if (auto* b = e->as<BinOpE>()) {
        visit(b->lhs);
        visit(b->rhs);
      } else if (auto* u = e->as<UnOpE>()) {
        visit(u->e);
      } else if (auto* i = e->as<IfE>()) {
        visit(i->cond);
        visit(i->then_e);
        visit(i->else_e);
      } else if (auto* lp = e->as<LoopE>()) {
        for (const auto& x : lp->inits) visit(x);
        visit(lp->count);
        visit(lp->body);
      } else if (auto* t = e->as<TupleE>()) {
        for (const auto& x : t->elems) visit(x);
      } else if (auto* rp = e->as<ReplicateE>()) {
        visit(rp->elem);
      } else if (auto* ra = e->as<RearrangeE>()) {
        visit(ra->e);
      } else if (auto* ix = e->as<IndexE>()) {
        visit(ix->arr);
        for (const auto& x : ix->idxs) visit(x);
      } else if (auto* m = e->as<MapE>()) {
        for (const auto& x : m->arrays) visit(x);
        visit(m->f.body);
      } else if (auto* r = e->as<ReduceE>()) {
        for (const auto& x : r->neutral) visit(x);
        for (const auto& x : r->arrays) visit(x);
        visit(r->op.body);
      } else if (auto* s = e->as<ScanE>()) {
        for (const auto& x : s->neutral) visit(x);
        for (const auto& x : s->arrays) visit(x);
        visit(s->op.body);
      } else if (auto* rm = e->as<RedomapE>()) {
        for (const auto& x : rm->neutral) visit(x);
        for (const auto& x : rm->arrays) visit(x);
        visit(rm->red.body);
        visit(rm->mapf.body);
      } else if (auto* sm = e->as<ScanomapE>()) {
        for (const auto& x : sm->neutral) visit(x);
        for (const auto& x : sm->arrays) visit(x);
        visit(sm->red.body);
        visit(sm->mapf.body);
      } else if (auto* so = e->as<SegOpE>()) {
        for (const auto& x : so->neutral) visit(x);
        if (so->op != SegOpE::Op::Map) visit(so->combine.body);
        visit(so->body);
      }
    }
  };
  Walk w{out};
  w.visit(p.body);
  return out;
}

}  // namespace analysis
}  // namespace incflat
